// Package repro is a from-scratch Go reproduction of
//
//	Mäcker, Malatyali, Meyer auf der Heide:
//	"Online Top-k-Position Monitoring of Distributed Data Streams"
//	(IPDPS 2015, arXiv:1410.7912).
//
// The public API lives in the repro/topk package. Internal packages hold
// the model substrates (communication accounting, filters, ordered keys,
// protocols, the wire codec and transports, stream generators, baselines,
// the sans-I/O coordinator core and the four execution engines that drive
// it, and the experiment harness); see DESIGN.md for the full inventory
// and EXPERIMENTS.md for the paper-vs-measured record. The benchmarks in
// this directory regenerate every experiment at reduced scale;
// cmd/experiments runs them at full scale.
//
// # Sparse ingestion and the zero-allocation hot path
//
// The paper optimizes communication on "similar" inputs — steps where most
// streams barely move cost no messages. The implementation mirrors that on
// the computational side: topk.Monitor.ObserveDelta ingests only the
// streams whose value changed, so a violation-free step costs
// O(#changed nodes) and performs zero heap allocations (asserted by an
// AllocsPerRun regression test and reported by the benchmarks' allocs/op
// column). Dense Observe is implemented on top of the sparse path; the two
// may be interleaved and are report- and message-count-identical. The
// concurrent engine batches its channel traffic per shard, so a protocol
// round costs O(shards) channel operations rather than O(n) while
// remaining bit-identical in counts to the sequential engine.
//
// # Wire format and the networked engine
//
// The protocol has a real wire format (internal/wire: a compact varint
// codec with one canonical encoding per message) and a transport layer
// (internal/transport: in-process loopback pipes and length-prefixed
// TCP). The third engine, internal/netrun, drives Algorithm 1 over those
// links so a monitor can span processes — cmd/topkmon's -serve and -join
// modes — while staying message-count- and byte-identical to the other
// engines for the same seed. Every charged message has an exact encoded
// size, so all ledgers report a bytes column (the quantity Theorem 4.2
// bounds) next to message counts; the transport separately reports the
// framed volume that actually crossed each link. DESIGN.md documents the
// split.
//
// The networked and sharded engines pipeline their I/O by default
// (topk.Config.Pipeline, topkmon -lockstep for the strict peer-by-peer
// baseline): links buffer writes behind an explicit Flush, exchanges fan
// out to every peer before the replies are gathered concurrently, and
// ack-only commands coalesce into wire.Batch envelopes — so step latency
// follows the slowest peer rather than the peer count, while reports and
// all ledgers stay bit-identical to the lockstep cycle (DESIGN.md
// "Pipelined substrate"; EXPERIMENTS.md E20). The zero-allocation
// guarantee extends across the wire: a violation-free networked step
// over loopback pipes performs no heap allocation.
//
// # One coordinator core, four substrates
//
// Algorithm 1's coordinator-side decision logic exists exactly once, as
// the sans-I/O state machine of internal/coord: engines feed it events
// and execute its effects over their own substrate (direct calls in
// internal/core, batched shard channels in internal/runtime, wire frames
// in internal/netrun, delegated shard executions in internal/shardrun).
// The fourth engine shards the coordinator itself — topk.Config.Shards
// or topkmon -shards splits the node space across S sub-coordinators
// under a root merge layer, report-exact at any S and bit-identical to
// the sequential engine at S=1, with the root-to-shard coordination cost
// ledgered separately (EXPERIMENTS.md E18). topk.Config.Tree (topkmon
// -tree b^d) stacks that split into a coordinator tree: interior
// coordinators merge their children's digests and forward one digest up,
// so the root serves Branch^Depth leaf shards through Branch links —
// bit-identical to the flat star in reports and every model ledger, with
// each level's coordination traffic reported separately
// (Monitor.TreeStats) and, under Epsilon, a per-level tightened band
// ladder whose absorption counters show how much drift each level hides
// from its parent (EXPERIMENTS.md E22).
//
// # Approximate monitoring (ε tolerance)
//
// topk.Config.Epsilon selects the ε-tolerant variant of the follow-up
// paper (Mäcker et al., arXiv:1601.04448) on any engine: filters widen
// to (1±ε) bands around the separating threshold, within-tolerance
// violations re-anchor the band instead of running a full FILTERRESET,
// and protocol participants retire early once they cannot beat the
// running best by more than the tolerance. Reports are then valid
// ε-approximations of the true top-k (internal/sim's ε-oracle checks
// every step) in exchange for orders of magnitude less communication on
// drifting inputs (EXPERIMENTS.md E19, BenchmarkApproxComm); Epsilon 0
// is bit-identical to the exact algorithm on every engine.
//
// # Asynchronous ingestion and the Drain barrier
//
// topk.Config.Ingest decouples ingestion from protocol execution on any
// engine: observation calls stage updates into a bounded last-write-wins
// queue (one slot per node — the algorithm only needs current values, so
// a later observation coalesces with a queued one) while a worker runs
// the protocol, with overflow as an explicit policy (block, drop-oldest,
// or a typed ErrQueueFull rejection). Monitor.Drain is the barrier that
// recovers synchronous semantics: after it returns, reports, counts,
// bytes and per-phase ledgers are bit-identical to a synchronous monitor
// fed the applied trace, which the equivalence-under-async suites
// enforce per engine under randomized barrier schedules (DESIGN.md
// "Asynchronous ingestion & the Drain barrier"; EXPERIMENTS.md E21;
// topkmon -async -queue N).
//
// # Durable checkpointing and crash-restart
//
// topk.Config.Checkpoint gives any engine a durable store
// (internal/ckpt: an atomic write-temp+fsync+rename file backend, an
// in-memory store, and a fault-injecting wrapper): the monitor persists
// CRC-sealed, generation-numbered frames at idle step boundaries —
// automatically every Checkpoint.Every applied steps, or on demand via
// Monitor.Checkpoint, which drains the async queue first — and after a
// coordinator-process crash topk.Restore rebuilds a monitor from the
// newest frame that still validates; torn, corrupt and stale frames are
// rejected, never half-loaded. The sequential and concurrent engines
// restore bit-identically (frames carry the full machine and node-bank
// state, RNG included); the networked and sharded engines re-handshake
// their peers, replay the coordinator's value mirror and force one
// FILTERRESET, so restored reports are oracle-exact from the first step
// (DESIGN.md "Durable checkpointing & crash-restart"; EXPERIMENTS.md
// E23; topkmon -serve ... -checkpoint DIR survives kill-and-restart).
//
// # The value-domain boundary
//
// No input to the public topk API can panic the monitor. Keys are the
// injection value·Nodes + tiebreak, so observation magnitudes are
// bounded by topk.Monitor.MaxValue() (shrinking with Nodes); Observe,
// ObserveDelta and Oracle reject out-of-domain values with a descriptive
// error before any engine state changes, the remote node hosts surface
// the same condition as a serve-loop error instead of a crash, and
// boundary fuzz plus overflow-regression tests pin the contract on all
// four engines.
package repro
