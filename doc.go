// Package repro is a from-scratch Go reproduction of
//
//	Mäcker, Malatyali, Meyer auf der Heide:
//	"Online Top-k-Position Monitoring of Distributed Data Streams"
//	(IPDPS 2015, arXiv:1410.7912).
//
// The public API lives in the repro/topk package. Internal packages hold
// the model substrates (communication accounting, filters, ordered keys,
// protocols, stream generators, baselines, the two execution engines, and
// the experiment harness); see DESIGN.md for the full inventory and
// EXPERIMENTS.md for the paper-vs-measured record. The benchmarks in this
// directory regenerate every experiment at reduced scale; cmd/experiments
// runs them at full scale.
//
// # Sparse ingestion and the zero-allocation hot path
//
// The paper optimizes communication on "similar" inputs — steps where most
// streams barely move cost no messages. The implementation mirrors that on
// the computational side: topk.Monitor.ObserveDelta ingests only the
// streams whose value changed, so a violation-free step costs
// O(#changed nodes) and performs zero heap allocations (asserted by an
// AllocsPerRun regression test and reported by the benchmarks' allocs/op
// column). Dense Observe is implemented on top of the sparse path; the two
// may be interleaved and are report- and message-count-identical. The
// concurrent engine batches its channel traffic per shard, so a protocol
// round costs O(shards) channel operations rather than O(n) while
// remaining bit-identical in counts to the sequential engine.
package repro
