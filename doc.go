// Package repro is a from-scratch Go reproduction of
//
//	Mäcker, Malatyali, Meyer auf der Heide:
//	"Online Top-k-Position Monitoring of Distributed Data Streams"
//	(IPDPS 2015, arXiv:1410.7912).
//
// The public API lives in the repro/topk package. Internal packages hold
// the model substrates (communication accounting, filters, ordered keys,
// protocols, stream generators, baselines, the two execution engines, and
// the experiment harness); see DESIGN.md for the full inventory and
// EXPERIMENTS.md for the paper-vs-measured record. The benchmarks in this
// directory regenerate every experiment at reduced scale; cmd/experiments
// runs them at full scale.
package repro
