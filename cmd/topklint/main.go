// Command topklint runs the repo's custom static-analysis suite — the
// five analyzers in internal/analysis that machine-enforce the protocol
// invariants the paper's bounds depend on — over the module, go vet
// style:
//
//	go run ./cmd/topklint ./...
//
// It prints one line per finding (file:line:col: analyzer: message) and
// exits non-zero when anything fires, which is what makes the CI step
// blocking. Intentional exceptions are annotated in the source with
// line-scoped //lint:topk directives; topklint audits those too, so an
// unused or reasonless suppression is itself a finding.
//
// Run with -list to print the analyzer inventory and the invariant each
// one guards.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "print the analyzer inventory and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: topklint [-list] [packages]\n\nRuns the repo's invariant analyzers (default pattern ./...).\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	suite := analysis.Suite()
	if *list {
		for _, a := range suite {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	root, err := moduleRoot()
	if err != nil {
		fatal(err)
	}
	loader, err := analysis.NewModuleLoader(root)
	if err != nil {
		fatal(err)
	}
	pkgs, err := loader.LoadPatterns(root, patterns...)
	if err != nil {
		fatal(err)
	}
	diags, err := analysis.RunPackages(loader.Fset, pkgs, suite)
	if err != nil {
		fatal(err)
	}
	for _, d := range diags {
		pos := loader.Fset.Position(d.Pos)
		rel := pos.Filename
		if r, err := filepath.Rel(root, pos.Filename); err == nil {
			rel = r
		}
		fmt.Printf("%s:%d:%d: %s: %s\n", rel, pos.Line, pos.Column, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "topklint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

// moduleRoot walks up from the working directory to the enclosing go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("topklint: no go.mod above the working directory")
		}
		dir = parent
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "topklint:", err)
	os.Exit(1)
}
