// Command topkmon runs the top-k-position monitor over a synthetic
// workload or a recorded trace and prints message statistics, optionally
// with the competitive ratio against the offline OPT.
//
// Examples:
//
//	topkmon -n 32 -k 3 -steps 2000 -workload walk
//	topkmon -n 64 -k 5 -workload converging -opt
//	topkmon -trace trace.csv -k 2 -engine conc
//	topkmon -n 16 -k 2 -compare
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/runtime"
	"repro/internal/sim"
	"repro/internal/stream"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("topkmon: ")

	var (
		n        = flag.Int("n", 32, "number of nodes (ignored with -trace)")
		k        = flag.Int("k", 3, "top set size")
		steps    = flag.Int("steps", 2000, "time steps to simulate (capped by trace length)")
		seed     = flag.Uint64("seed", 1, "random seed for workload and protocols")
		workload = flag.String("workload", "walk", "one of: "+strings.Join(stream.Names(), " | "))
		traceIn  = flag.String("trace", "", "CSV trace file to replay instead of a synthetic workload")
		engine   = flag.String("engine", "seq", "seq (sequential) | conc (sharded concurrent)")
		opt      = flag.Bool("opt", false, "compute offline OPT segments and the competitive ratio")
		compare  = flag.Bool("compare", false, "also run all baseline algorithms on the same workload")
		ordered  = flag.Bool("ordered", false, "monitor the exact ranking of the top-k (§5 extension)")
	)
	flag.Parse()

	matrix, err := loadMatrix(*traceIn, *workload, *n, *steps, *seed)
	if err != nil {
		log.Fatal(err)
	}
	nn, ss := len(matrix[0]), len(matrix)
	if *k < 1 || *k > nn {
		log.Fatalf("k=%d out of range for n=%d", *k, nn)
	}

	var alg sim.Algorithm
	name := "algorithm1(" + *engine + ")"
	switch {
	case *ordered && *engine == "seq":
		alg = core.NewOrdered(core.Config{N: nn, K: *k, Seed: *seed + 1})
		name = "ordered(seq)"
	case *ordered && *engine == "conc":
		ot := runtime.NewOrdered(runtime.Config{N: nn, K: *k, Seed: *seed + 1})
		defer ot.Close()
		alg = ot
		name = "ordered(conc)"
	case *engine == "seq":
		alg = core.New(core.Config{N: nn, K: *k, Seed: *seed + 1})
	case *engine == "conc":
		rt := runtime.New(runtime.Config{N: nn, K: *k, Seed: *seed + 1})
		defer rt.Close()
		alg = rt
	default:
		log.Fatalf("unknown engine %q", *engine)
	}

	cfg := sim.Config{Steps: ss, K: *k, CheckEvery: 1, ComputeOpt: *opt}
	if *ordered {
		// The set oracle in sim expects ascending ids; the ordered monitor
		// reports by rank. Disable the set check (rank exactness is
		// asserted by the ordered monitor's own test suite).
		cfg.CheckEvery = 0
	}
	rep := sim.Run(alg, stream.NewTraceSource(matrix), cfg)
	fmt.Println(sim.Describe(name, rep))
	if rep.Errors > 0 {
		log.Fatalf("oracle mismatches: %d (this is a bug)", rep.Errors)
	}
	if *opt {
		delta := sim.MeasureDelta(matrix, *k)
		fmt.Printf("workload ∆ (max k/k+1 key gap): %d\n", delta)
	}
	if mon, ok := alg.(*core.Monitor); ok {
		st := mon.Stats()
		fmt.Printf("stats: violations=%d handlers=%d resets=%d top-changes=%d\n",
			st.ViolationSteps, st.HandlerCalls, st.Resets, st.TopChanges)
	}

	if *compare {
		fmt.Println()
		baselines := []struct {
			name string
			alg  sim.Algorithm
		}{
			{"per-round", baseline.NewPerRound(nn, *k, *seed+2)},
			{"naive", baseline.NewNaive(nn, *k, false)},
			{"naive-change", baseline.NewNaive(nn, *k, true)},
			{"point-filter", baseline.NewPointFilter(nn, *k)},
			{"lam-midpoint", baseline.NewLamMidpoint(nn, *k)},
		}
		for _, b := range baselines {
			r := sim.Run(b.alg, stream.NewTraceSource(matrix), cfg)
			fmt.Println(sim.Describe(b.name, r))
		}
	}
}

// loadMatrix materializes the workload: either a CSV trace or a synthetic
// generator collected for the requested horizon.
func loadMatrix(tracePath, workload string, n, steps int, seed uint64) ([][]int64, error) {
	if tracePath != "" {
		f, err := os.Open(tracePath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		rows, err := stream.ReadCSV(f)
		if err != nil {
			return nil, err
		}
		if steps < len(rows) {
			rows = rows[:steps]
		}
		return rows, nil
	}
	src, err := stream.FromSpec(stream.Spec{Name: workload, N: n, Steps: steps, Seed: seed})
	if err != nil {
		return nil, err
	}
	if c, ok := src.(*stream.Converging); ok {
		steps = c.CycleLen() // one full cycle is the natural horizon
	}
	return stream.Collect(src, steps), nil
}
