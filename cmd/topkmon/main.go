// Command topkmon runs the top-k-position monitor over a synthetic
// workload or a recorded trace and prints message and byte statistics,
// optionally with the competitive ratio against the offline OPT.
//
// Three engines are available: the sequential reference (seq), the
// sharded goroutine engine (conc), and the networked engine (net), which
// drives the wire protocol either over in-process loopback links or — in
// the -serve / -join modes — over TCP between real processes.
//
// Examples:
//
//	topkmon -n 32 -k 3 -steps 2000 -workload walk
//	topkmon -n 64 -k 5 -workload converging -opt
//	topkmon -trace trace.csv -k 2 -engine conc
//	topkmon -n 16 -k 2 -compare
//	topkmon -n 64 -k 4 -engine net -peers 4
//	topkmon -n 256 -k 8 -shards 4
//	topkmon -n 256 -k 8 -tree 2^3
//	topkmon -n 64 -k 8 -epsilon 0.05
//	topkmon -n 256 -k 8 -async -queue 128 -engine net
//
// Two-process demo (run the joins in separate terminals or machines; the
// coordinator waits for all peers before streaming the workload):
//
//	topkmon -serve 127.0.0.1:7070 -peers 2 -n 64 -k 4 -steps 2000
//	topkmon -join 127.0.0.1:7070
//	topkmon -join 127.0.0.1:7070
//
// Kill-and-restart demo: add -checkpoint to the coordinator and it
// persists CRC-sealed frames while serving. Ctrl-C it mid-run, rerun
// the same command (and fresh joins), and it restores from the newest
// valid frame and streams only the remaining steps:
//
//	topkmon -serve 127.0.0.1:7070 -peers 2 -steps 2000 -checkpoint /tmp/ckpt
//	^C                                      (coordinator dies at step ~1200)
//	topkmon -serve 127.0.0.1:7070 -peers 2 -steps 2000 -checkpoint /tmp/ckpt
//	restored from checkpoint generation 48 (step 1200); ...
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/baseline"
	"repro/internal/ckpt"
	"repro/internal/comm"
	"repro/internal/coord"
	"repro/internal/core"
	"repro/internal/ingest"
	"repro/internal/netrun"
	"repro/internal/runtime"
	"repro/internal/shardrun"
	"repro/internal/sim"
	"repro/internal/stream"
	"repro/internal/transport"
	"repro/internal/wire"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("topkmon: ")

	var (
		n        = flag.Int("n", 32, "number of nodes (ignored with -trace)")
		k        = flag.Int("k", 3, "top set size")
		steps    = flag.Int("steps", 2000, "time steps to simulate (capped by trace length)")
		seed     = flag.Uint64("seed", 1, "random seed for workload and protocols")
		workload = flag.String("workload", "walk", "one of: "+strings.Join(stream.Names(), " | "))
		traceIn  = flag.String("trace", "", "CSV trace file to replay instead of a synthetic workload")
		engine   = flag.String("engine", "seq", "seq (sequential) | conc (sharded concurrent) | net (wire protocol over loopback links)")
		peers    = flag.Int("peers", 4, "peer count: node hosts for -engine net, expected -join connections for -serve")
		shards   = flag.Int("shards", 0, "split the coordinator into this many sub-coordinators with a root merge layer (0 = single coordinator)")
		tree     = flag.String("tree", "", "coordinator tree shape branch^depth (e.g. 2^3): interior coordinators merge digests so the root serves branch^depth leaf shards through branch links; prints the per-level traffic table")
		serve    = flag.String("serve", "", "run as TCP coordinator on this address and wait for -peers joins")
		join     = flag.String("join", "", "run as TCP node host: dial this coordinator address and serve until shutdown")
		opt      = flag.Bool("opt", false, "compute offline OPT segments and the competitive ratio")
		compare  = flag.Bool("compare", false, "also run all baseline algorithms on the same workload")
		ordered  = flag.Bool("ordered", false, "monitor the exact ranking of the top-k (§5 extension)")
		epsilon  = flag.Float64("epsilon", 0, "tolerance of ε-approximate monitoring in [0, 1): filters widen to (1±ε) bands and reports are ε-approximate instead of exact (arXiv:1601.04448)")
		lockstep = flag.Bool("lockstep", false, "disable the pipelined transport fan-out of the net and sharded engines: send, flush and await every command peer by peer (bit-identical results, higher step latency)")
		async    = flag.Bool("async", false, "decouple ingestion from protocol execution: stage observations in a bounded coalescing queue, Drain once at the end, and verify the final report against the oracle")
		queue    = flag.Int("queue", 64, "per-node ingest queue depth for -async (capped at n)")
		ckptDir  = flag.String("checkpoint", "", "with -serve: durable checkpoint directory; the coordinator persists CRC-sealed frames while serving and restores from the newest valid one on startup (kill-and-restart survives)")
		ckptN    = flag.Int("ckpt-every", 25, "with -serve -checkpoint: auto-checkpoint every this many steps")
	)
	flag.Parse()

	if !(*epsilon >= 0) || *epsilon >= 1 { // NaN-proof form, as in topk.New
		log.Fatalf("-epsilon must be in [0, 1), got %v", *epsilon)
	}
	if *epsilon != 0 && *ordered {
		log.Fatal("-epsilon is not supported with -ordered")
	}
	if *async {
		switch {
		case *ordered:
			log.Fatal("-async is not supported with -ordered (the ordered monitor is strictly lockstep)")
		case *opt || *compare:
			log.Fatal("-async skips per-step reports, so -opt and -compare have nothing to grade")
		case *serve != "" || *join != "":
			log.Fatal("-async is not wired into the -serve/-join demo; use -engine net for async over loopback links")
		case *queue < 1:
			log.Fatalf("-queue must be >= 1, got %d", *queue)
		}
	}

	if *ckptDir != "" {
		if *serve == "" {
			log.Fatal("-checkpoint requires -serve (the coordinator process is what gets checkpointed)")
		}
		if *ckptN < 1 {
			log.Fatalf("-ckpt-every must be >= 1, got %d", *ckptN)
		}
	}

	if *join != "" {
		runJoin(*join)
		return
	}

	matrix, err := loadMatrix(*traceIn, *workload, *n, *steps, *seed)
	if err != nil {
		log.Fatal(err)
	}
	nn, ss := len(matrix[0]), len(matrix)
	if *k < 1 || *k > nn {
		log.Fatalf("k=%d out of range for n=%d", *k, nn)
	}

	if *serve != "" {
		if *ordered {
			log.Fatal("-ordered is not supported by the networked engine yet")
		}
		runServe(*serve, *peers, nn, *k, *seed, *epsilon, *lockstep, matrix, *ckptDir, *ckptN)
		return
	}

	var alg sim.Algorithm
	name := "algorithm1(" + *engine + ")"
	if *epsilon != 0 {
		name = fmt.Sprintf("algorithm1(%s,ε=%g)", *engine, *epsilon)
	}
	switch {
	case *tree != "":
		shape, err := parseTree(*tree)
		if err != nil {
			log.Fatalf("-tree: %v", err)
		}
		if *ordered {
			log.Fatal("-ordered is not supported by the tree engine yet")
		}
		if *shards > 0 {
			log.Fatalf("-tree implies the shard split; drop -shards %d", *shards)
		}
		if *engine != "seq" {
			log.Fatalf("-tree runs its own engine; drop -engine %s", *engine)
		}
		te, err := shardrun.NewLoopbackTree(shardrun.Config{N: nn, K: *k, Seed: *seed + 1, Epsilon: *epsilon, Lockstep: *lockstep}, shape.Branch, shape.Depth)
		if err != nil {
			log.Fatalf("tree engine: %v", err)
		}
		defer te.Close()
		alg = te
		name = fmt.Sprintf("algorithm1(tree %d^%d)", shape.Branch, shape.Depth)
		if *epsilon != 0 {
			name = fmt.Sprintf("algorithm1(tree %d^%d,ε=%g)", shape.Branch, shape.Depth, *epsilon)
		}
	case *shards > 0:
		if *ordered {
			log.Fatal("-ordered is not supported by the sharded engine yet")
		}
		if *engine != "seq" {
			log.Fatalf("-shards runs its own engine; drop -engine %s", *engine)
		}
		if *shards > nn {
			log.Fatalf("-shards must be in [1, n], got %d for n=%d", *shards, nn)
		}
		se, err := shardrun.NewLoopback(shardrun.Config{N: nn, K: *k, Seed: *seed + 1, Epsilon: *epsilon, Lockstep: *lockstep}, *shards)
		if err != nil {
			log.Fatalf("sharded engine: %v", err)
		}
		defer se.Close()
		alg = se
		name = fmt.Sprintf("algorithm1(shard×%d)", *shards)
		if *epsilon != 0 {
			name = fmt.Sprintf("algorithm1(shard×%d,ε=%g)", *shards, *epsilon)
		}
	case *ordered && *engine == "seq":
		alg = core.NewOrdered(core.Config{N: nn, K: *k, Seed: *seed + 1})
		name = "ordered(seq)"
	case *ordered && *engine == "conc":
		ot := runtime.NewOrdered(runtime.Config{N: nn, K: *k, Seed: *seed + 1})
		defer ot.Close()
		alg = ot
		name = "ordered(conc)"
	case *ordered:
		log.Fatal("-ordered is not supported by the networked engine yet")
	case *engine == "seq":
		alg = core.New(core.Config{N: nn, K: *k, Seed: *seed + 1, Epsilon: *epsilon})
	case *engine == "conc":
		rt := runtime.New(runtime.Config{N: nn, K: *k, Seed: *seed + 1, Epsilon: *epsilon})
		defer rt.Close()
		alg = rt
	case *engine == "net":
		if *peers < 1 || *peers > nn {
			log.Fatalf("-peers must be in [1, n], got %d for n=%d", *peers, nn)
		}
		ne, err := netrun.NewLoopback(netrun.Config{N: nn, K: *k, Seed: *seed + 1, Epsilon: *epsilon, Lockstep: *lockstep}, *peers)
		if err != nil {
			log.Fatalf("networked engine: %v", err)
		}
		defer ne.Close()
		alg = ne
	default:
		log.Fatalf("unknown engine %q", *engine)
	}

	if *async {
		runAsync(alg, matrix, *k, *queue, *epsilon, name)
		return
	}

	cfg := sim.Config{Steps: ss, K: *k, CheckEvery: 1, ComputeOpt: *opt, Epsilon: *epsilon}
	if *ordered {
		// The set oracle in sim expects ascending ids; the ordered monitor
		// reports by rank. Disable the set check (rank exactness is
		// asserted by the ordered monitor's own test suite).
		cfg.CheckEvery = 0
	}
	rep := sim.Run(alg, stream.NewTraceSource(matrix), cfg)
	fmt.Println(sim.Describe(name, rep))
	checkEngineErr(alg)
	if rep.Errors > 0 {
		if *epsilon != 0 {
			log.Fatalf("ε-oracle violations: %d (this is a bug)", rep.Errors)
		}
		log.Fatalf("oracle mismatches: %d (this is a bug)", rep.Errors)
	}
	if *opt {
		delta := sim.MeasureDelta(matrix, *k)
		fmt.Printf("workload ∆ (max k/k+1 key gap): %d\n", delta)
	}
	if mon, ok := alg.(*core.Monitor); ok {
		st := mon.Stats()
		fmt.Printf("stats: violations=%d handlers=%d resets=%d top-changes=%d\n",
			st.ViolationSteps, st.HandlerCalls, st.Resets, st.TopChanges)
	}
	if led, ok := alg.(interface{ Ledger() *comm.Ledger }); ok {
		printLedger(led.Ledger())
	}
	if ne, ok := alg.(*netrun.Engine); ok {
		printTransport(ne.TransportStats(), ne.Peers())
	}
	if se, ok := alg.(*shardrun.Engine); ok {
		oc, ob := se.Overhead(), se.OverheadBytes()
		if tr := se.Tree(); tr.Depth >= 1 {
			fmt.Printf("tree %d^%d: %d leaf shards through %d root links; root overhead: %d frames (%d down / %d up), %d bytes\n",
				tr.Branch, tr.Depth, se.Leaves(), se.Shards(), oc.Total(), oc.Down, oc.Up, ob.Total())
			printTreeStats(se)
		} else {
			fmt.Printf("shard coordination overhead (%d shards): %d frames (%d down / %d up), %d bytes\n",
				se.Shards(), oc.Total(), oc.Down, oc.Up, ob.Total())
		}
		printTransport(se.TransportStats(), se.Shards())
	}

	if *compare {
		fmt.Println()
		baselines := []struct {
			name string
			alg  sim.Algorithm
		}{
			{"per-round", baseline.NewPerRound(nn, *k, *seed+2)},
			{"naive", baseline.NewNaive(nn, *k, false)},
			{"naive-change", baseline.NewNaive(nn, *k, true)},
			{"point-filter", baseline.NewPointFilter(nn, *k)},
			{"lam-midpoint", baseline.NewLamMidpoint(nn, *k)},
		}
		for _, b := range baselines {
			r := sim.Run(b.alg, stream.NewTraceSource(matrix), cfg)
			fmt.Println(sim.Describe(b.name, r))
		}
	}
}

// runAsync drives the -async mode: each step's changed values are staged
// into a bounded last-write-wins ingest queue (Block overflow policy, so
// a slow protocol round applies backpressure instead of dropping data),
// a single Drain barrier flushes the tail, and the final report is
// verified against the offline oracle. Because queued updates of the
// same node coalesce, the worker usually executes far fewer protocol
// steps than the producer enqueued calls — the printed coalesce ratio is
// the whole point of the mode.
func runAsync(alg sim.Algorithm, matrix [][]int64, k, queue int, epsilon float64, name string) {
	type deltaEngine interface {
		ObserveDelta(ids []int, vals []int64) []int
		AppendTop(dst []int) []int
	}
	de, ok := alg.(deltaEngine)
	if !ok {
		log.Fatalf("engine %s does not support async ingestion", name)
	}
	n := len(matrix[0])
	if queue > n {
		queue = n
	}
	drv, err := ingest.New(ingest.Config{
		N: n, Depth: queue, Policy: ingest.Block,
		Apply: func(ids []int, vals []int64) error {
			de.ObserveDelta(ids, vals)
			if fe, ok := alg.(interface{ Err() error }); ok {
				return fe.Err()
			}
			return nil
		},
	})
	if err != nil {
		log.Fatalf("ingest driver: %v", err)
	}
	defer drv.Close()

	ids := make([]int, n)
	vals := make([]int64, n)
	prev := make([]int64, n)
	start := time.Now()
	for s, row := range matrix {
		c := 0
		for i, v := range row {
			if s == 0 || v != prev[i] {
				ids[c], vals[c] = i, v
				c++
			}
		}
		copy(prev, row)
		if err := drv.Enqueue(ids[:c], vals[:c]); err != nil {
			log.Fatalf("step %d: enqueue: %v", s, err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	err = drv.Drain(ctx)
	cancel()
	if err != nil {
		log.Fatalf("drain: %v", err)
	}
	elapsed := time.Since(start)
	checkEngineErr(alg)

	final := matrix[len(matrix)-1]
	got := de.AppendTop(nil)
	if epsilon == 0 {
		want := sim.Oracle(final, k)
		if len(got) != len(want) {
			log.Fatalf("final report %v != oracle %v (this is a bug)", got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				log.Fatalf("final report %v != oracle %v (this is a bug)", got, want)
			}
		}
	} else if !sim.EpsValid(final, got, k, epsilon) {
		log.Fatalf("final report %v is not ε-valid for ε=%g (this is a bug)", got, epsilon)
	}

	st := drv.Stats()
	fmt.Printf("%s async: %d calls -> %d protocol steps in %s (queue %d, policy block)\n",
		name, len(matrix), st.Steps, elapsed.Round(time.Microsecond), queue)
	ratio := 0.0
	if st.Enqueued > 0 {
		ratio = float64(st.Coalesced) / float64(st.Enqueued)
	}
	fmt.Printf("ingest: enqueued=%d coalesced=%d (ratio %.3f) dropped=%d max-queue=%d\n",
		st.Enqueued, st.Coalesced, ratio, st.Dropped, st.MaxQueue)
	fmt.Printf("final top-%d %v verified against the oracle\n", k, got)
	if led, ok := alg.(interface{ Ledger() *comm.Ledger }); ok {
		printLedger(led.Ledger())
	}
}

// parseTree decodes the -tree shape "branch^depth".
func parseTree(s string) (shardrun.Tree, error) {
	bs, ds, ok := strings.Cut(s, "^")
	if !ok {
		return shardrun.Tree{}, fmt.Errorf("want branch^depth (e.g. 2^3), got %q", s)
	}
	branch, err := strconv.Atoi(bs)
	if err != nil {
		return shardrun.Tree{}, fmt.Errorf("branch %q: %v", bs, err)
	}
	depth, err := strconv.Atoi(ds)
	if err != nil {
		return shardrun.Tree{}, fmt.Errorf("depth %q: %v", ds, err)
	}
	return shardrun.Tree{Branch: branch, Depth: depth}, nil
}

// printTreeStats renders the per-level traffic of a coordinator tree —
// who carried the frames at each level, leaf-most level first, with the
// root's own overhead ledger as the last row — and, in ε mode, the
// per-level band-exit counters of the tightened ladder.
func printTreeStats(se *shardrun.Engine) {
	ts, err := se.TreeStats()
	if err != nil {
		fmt.Printf("tree stats unavailable: %v\n", err)
		return
	}
	fmt.Println("per-level traffic:     down-frames  up-frames  down-bytes  up-bytes")
	for i, lv := range ts.Levels {
		label := fmt.Sprintf("level %d", i)
		switch {
		case i == len(ts.Levels)-1:
			label += " (root)"
		case i == 0:
			label += " (leaf-most)"
		}
		fmt.Printf("  %-20s %11d %10d %11d %9d\n", label, lv.Down, lv.Up, lv.DownBytes, lv.UpBytes)
	}
	if len(ts.Absorbs) > 0 {
		fmt.Printf("ε ladder band exits per level (leaf-most first): %v\n", ts.Absorbs)
	}
}

// checkEngineErr aborts when a link-backed engine wedged on a dead peer
// mid-run: its remaining reports were the frozen last-good set, so the
// ledgers and reports above it are not a completed run.
func checkEngineErr(alg sim.Algorithm) {
	if fe, ok := alg.(interface{ Err() error }); ok && fe.Err() != nil {
		log.Fatalf("engine failed mid-run (reports froze at the last good step): %v", fe.Err())
	}
}

// printLedger renders the per-phase message and byte breakdown.
func printLedger(led *comm.Ledger) {
	fmt.Println("phase ledger:        msgs        up      down     bcast     bytes")
	for _, p := range comm.Phases() {
		c := led.PhaseCounts(p)
		b := led.PhaseBytes(p)
		fmt.Printf("  %-12s %9d %9d %9d %9d %9d\n", p, c.Total(), c.Up, c.Down, c.Bcast, b.Total())
	}
	c, b := led.Total(), led.TotalBytes()
	fmt.Printf("  %-12s %9d %9d %9d %9d %9d\n", "total", c.Total(), c.Up, c.Down, c.Bcast, b.Total())
}

// printTransport renders what actually crossed the links.
func printTransport(ts transport.LinkStats, peers int) {
	fmt.Printf("transport (%d peers): sent %d frames / %d bytes, received %d frames / %d bytes\n",
		peers, ts.SentFrames, ts.SentBytes, ts.RecvFrames, ts.RecvBytes)
}

// runServe is the TCP coordinator: accept the peers, restore from the
// checkpoint directory when one is configured and holds a valid frame,
// drive the (remaining) workload while auto-checkpointing, report, shut
// down.
func runServe(addr string, peers, n, k int, seed uint64, epsilon float64, lockstep bool, matrix [][]int64, ckptDir string, ckptEvery int) {
	if peers < 1 || peers > n {
		log.Fatalf("-peers must be in [1, n], got %d for n=%d", peers, n)
	}
	var store *ckpt.File
	if ckptDir != "" {
		var err error
		if store, err = ckpt.NewFile(ckptDir); err != nil {
			log.Fatalf("checkpoint dir: %v", err)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ln, err := transport.Listen(ctx, addr)
	if err != nil {
		log.Fatalf("listen %s: %v", addr, err)
	}
	defer ln.Close()
	fmt.Printf("coordinator on %s: waiting for %d peers (topkmon -join %s)...\n", ln.Addr(), peers, ln.Addr())
	links, err := ln.AcceptN(peers)
	if err != nil {
		log.Fatalf("accepting peers: %v", err)
	}
	necfg := netrun.Config{
		N: n, K: k, Seed: seed + 1, Epsilon: epsilon, Lockstep: lockstep,
		// A dead peer is replaced by the next process that runs
		// `topkmon -join`; the coordinator blocks mid-recovery until one
		// arrives (Ctrl-C the coordinator to give up instead).
		Redial: func() (transport.Link, error) {
			fmt.Printf("peer lost; waiting for a replacement (topkmon -join %s)...\n", ln.Addr())
			return ln.Accept()
		},
		OnEvent: func(ev coord.Event) {
			if ev.Err != nil {
				fmt.Printf("failover: %s [%d, %d): %v\n", ev.Kind, ev.Lo, ev.Hi, ev.Err)
			} else {
				fmt.Printf("failover: %s [%d, %d)\n", ev.Kind, ev.Lo, ev.Hi)
			}
		},
	}
	var eng *netrun.Engine
	var lastGen uint64
	if store != nil {
		gen, frame, lerr := store.Load()
		switch {
		case errors.Is(lerr, ckpt.ErrNoCheckpoint):
			fmt.Printf("checkpointing to %s every %d steps (no frame yet: fresh start)\n", ckptDir, ckptEvery)
		case lerr != nil:
			log.Fatalf("checkpoint load: %v", lerr)
		default:
			var c wire.Checkpoint
			if err := c.Decode(frame); err != nil {
				log.Fatalf("checkpoint generation %d: %v", gen, err)
			}
			if c.Engine != wire.EngineNet || c.Seed != seed+1 || c.Distinct {
				log.Fatalf("checkpoint generation %d was not taken by this configuration (engine %d, seed %d)", gen, c.Engine, c.Seed)
			}
			eng, err = netrun.Restore(necfg, links, c.Machine, c.Last)
			if err != nil {
				log.Fatalf("restore: %v", err)
			}
			lastGen = gen
			fmt.Printf("restored from checkpoint generation %d (step %d); checkpointing to %s every %d steps\n",
				gen, eng.Stats().Steps, ckptDir, ckptEvery)
		}
	}
	if eng == nil {
		if eng, err = netrun.New(necfg, links); err != nil {
			log.Fatalf("handshake: %v", err)
		}
	}
	defer eng.Close()

	// Resume the trace where the checkpoint left off: the restored steps
	// were already streamed by the previous incarnation.
	src := stream.NewTraceSource(matrix)
	skip := int(eng.Stats().Steps)
	if skip > len(matrix) {
		skip = len(matrix)
	}
	discard := make([]int64, n)
	for i := 0; i < skip; i++ {
		src.Step(discard)
	}
	remaining := len(matrix) - skip
	fmt.Printf("all %d peers joined; streaming %d steps of n=%d k=%d\n", peers, remaining, n, k)
	if remaining == 0 {
		fmt.Println("checkpoint is at the end of the workload; nothing left to stream")
		printLedger(eng.Ledger())
		return
	}

	alg := &ckptAlg{Engine: eng, store: store, every: ckptEvery, seed: seed + 1, gen: lastGen}
	rep := sim.Run(alg, src, sim.Config{Steps: remaining, K: k, CheckEvery: 1, Epsilon: epsilon})
	fmt.Println(sim.Describe("algorithm1(tcp)", rep))
	checkEngineErr(eng)
	if rep.Errors > 0 {
		log.Fatalf("oracle mismatches: %d (this is a bug)", rep.Errors)
	}
	if store != nil {
		fmt.Printf("checkpoints: %d written, newest generation %d in %s\n", alg.saves, alg.gen, ckptDir)
	}
	printLedger(eng.Ledger())
	printTransport(eng.TransportStats(), eng.Peers())
}

// ckptAlg wraps the networked engine for sim.Run, persisting a sealed
// checkpoint frame every `every` observed steps (no-op without a store).
// A failed attempt — e.g. a snapshot refused while peer recovery is
// pending — is reported and retried at the next boundary, never fatal:
// the previous generations stay restorable.
type ckptAlg struct {
	*netrun.Engine
	store *ckpt.File
	every int
	seed  uint64
	gen   uint64
	since int
	saves int
}

func (a *ckptAlg) Observe(vals []int64) []int {
	top := a.Engine.Observe(vals)
	if a.store == nil {
		return top
	}
	a.since++
	if a.since >= a.every {
		a.since = 0
		if err := a.checkpoint(); err != nil {
			fmt.Printf("checkpoint failed (will retry): %v\n", err)
		}
	}
	return top
}

func (a *ckptAlg) checkpoint() error {
	mach, last, err := a.Engine.Snapshot()
	if err != nil {
		return err
	}
	gen := a.gen + 1
	frame := wire.Checkpoint{Gen: gen, Engine: wire.EngineNet, Seed: a.seed, Machine: mach, Last: last}.Append(nil)
	if err := a.store.Save(gen, frame); err != nil {
		return err
	}
	a.gen = gen
	a.saves++
	return nil
}

// runJoin is the TCP node host: dial the coordinator and serve its node
// range until shutdown. DialRetry tolerates a coordinator that is not
// listening yet (or is between runs), so the two sides can start in
// either order.
func runJoin(addr string) {
	ctx := context.Background()
	link, err := transport.DialRetry(ctx, addr, 20, 250*time.Millisecond)
	if err != nil {
		log.Fatalf("dial %s: %v", addr, err)
	}
	fmt.Printf("joined coordinator at %s; serving...\n", addr)
	if err := netrun.Serve(link); err != nil {
		log.Fatalf("serve: %v", err)
	}
	ts := transport.StatsOf(link)
	fmt.Printf("shutdown: sent %d frames / %d bytes, received %d frames / %d bytes\n",
		ts.SentFrames, ts.SentBytes, ts.RecvFrames, ts.RecvBytes)
}

// loadMatrix materializes the workload: either a CSV trace or a synthetic
// generator collected for the requested horizon.
func loadMatrix(tracePath, workload string, n, steps int, seed uint64) ([][]int64, error) {
	if tracePath != "" {
		f, err := os.Open(tracePath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		rows, err := stream.ReadCSV(f)
		if err != nil {
			return nil, err
		}
		if steps < len(rows) {
			rows = rows[:steps]
		}
		return rows, nil
	}
	src, err := stream.FromSpec(stream.Spec{Name: workload, N: n, Steps: steps, Seed: seed})
	if err != nil {
		return nil, err
	}
	if c, ok := src.(*stream.Converging); ok {
		steps = c.CycleLen() // one full cycle is the natural horizon
	}
	return stream.Collect(src, steps), nil
}
