// Command tracegen generates synthetic observation traces and writes them
// as CSV (one time step per row, one column per node) or gob files for
// replay with topkmon -trace or stream.TraceSource.
//
// Examples:
//
//	tracegen -workload walk -n 32 -steps 5000 -o walk.csv
//	tracegen -workload bursty -n 64 -steps 10000 -format gob -o bursty.gob
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/stream"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tracegen: ")

	var (
		n        = flag.Int("n", 32, "number of nodes")
		steps    = flag.Int("steps", 5000, "time steps")
		seed     = flag.Uint64("seed", 1, "random seed")
		workload = flag.String("workload", "walk", "one of: "+strings.Join(stream.Names(), " | "))
		format   = flag.String("format", "csv", "csv | gob")
		out      = flag.String("o", "", "output file (default stdout, csv only)")
	)
	flag.Parse()

	src, err := stream.FromSpec(stream.Spec{Name: *workload, N: *n, Steps: *steps, Seed: *seed})
	if err != nil {
		log.Fatal(err)
	}
	if c, ok := src.(*stream.Converging); ok && *steps%c.CycleLen() != 0 {
		log.Printf("note: converging cycle length is %d steps; %d steps cover %.1f cycles",
			c.CycleLen(), *steps, float64(*steps)/float64(c.CycleLen()))
	}
	matrix := stream.Collect(src, *steps)

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}()
		w = f
	}
	switch *format {
	case "csv":
		err = stream.WriteCSV(w, matrix)
	case "gob":
		if *out == "" {
			log.Fatal("gob output requires -o")
		}
		err = stream.WriteGob(w, matrix)
	default:
		err = fmt.Errorf("unknown format %q", *format)
	}
	if err != nil {
		log.Fatal(err)
	}
	if *out != "" {
		log.Printf("wrote %d steps x %d nodes to %s (%s)", *steps, *n, *out, *format)
	}
}
