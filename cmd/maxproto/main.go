// Command maxproto studies the distributed maximum protocol (Algorithm 2)
// in isolation: message distribution against the Theorem 4.2 bound and a
// comparison with the gather-all, sequential-probe and shout-echo domain
// search baselines.
//
// Example:
//
//	maxproto -n 4096 -trials 5000
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"sort"

	"repro/internal/comm"
	"repro/internal/order"
	"repro/internal/protocol"
	"repro/internal/rng"
	"repro/internal/stats"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("maxproto: ")

	var (
		n      = flag.Int("n", 1024, "number of nodes")
		trials = flag.Int("trials", 2000, "protocol executions to sample")
		seed   = flag.Uint64("seed", 1, "random seed")
	)
	flag.Parse()
	if *n < 1 || *trials < 1 {
		log.Fatal("need n >= 1 and trials >= 1")
	}

	mkParts := func(trial int) []protocol.Participant {
		root := rng.New(*seed+uint64(trial), 0x3a9)
		perm := root.Perm(*n)
		parts := make([]protocol.Participant, *n)
		for i := range parts {
			parts[i] = protocol.Participant{ID: i, Key: order.Key(perm[i] + 1), RNG: root.Split(uint64(i))}
		}
		return parts
	}

	ups := make([]float64, *trials)
	bcasts := make([]float64, *trials)
	wrong := 0
	for trial := 0; trial < *trials; trial++ {
		var c comm.Counter
		res := protocol.Maximum(mkParts(trial), *n, &c, nil, 0)
		if res.Key != order.Key(*n) {
			wrong++
		}
		ups[trial] = float64(c.Get(comm.Up))
		bcasts[trial] = float64(c.Get(comm.Bcast))
	}
	s := stats.Summarize(ups)
	bound := 2*math.Log2(float64(*n)) + 1
	fmt.Printf("MAXIMUMPROTOCOL over n=%d nodes, %d trials\n", *n, *trials)
	fmt.Printf("  node msgs: mean=%.2f median=%.0f p90=%.0f p99=%.0f max=%.0f\n", s.Mean, s.Median, s.P90, s.P99, s.Max)
	fmt.Printf("  theorem bound 2*log2(n)+1 = %.2f  (mean within bound: %v)\n", bound, s.Mean <= bound)
	fmt.Printf("  broadcasts per execution: %.0f (= ceil(log2 n)+1 rounds)\n", stats.Mean(bcasts))
	fmt.Printf("  wrong results: %d (protocol is Las Vegas; must be 0)\n", wrong)

	fmt.Println()
	fmt.Println("baseline protocols (same instances, messages per execution):")
	var gUp, sUp, dTot float64
	const cmpTrials = 50
	for trial := 0; trial < cmpTrials; trial++ {
		var cg, cs, cd comm.Counter
		protocol.GatherAll(mkParts(trial), &cg, nil, 0)
		protocol.SequentialMaxima(mkParts(trial), &cs, nil, 0)
		protocol.DomainSearch(mkParts(trial), 0, order.Key(*n+1), &cd, nil, 0)
		gUp += float64(cg.Get(comm.Up))
		sUp += float64(cs.Get(comm.Up))
		dTot += float64(cd.Snapshot().Total())
	}
	fmt.Printf("  gather-all:        %.1f up msgs (Θ(n))\n", gUp/cmpTrials)
	fmt.Printf("  sequential probe:  %.1f up msgs (H_n ≈ %.1f, the Ω(log n) instrument)\n",
		sUp/cmpTrials, math.Log(float64(*n))+0.5772)
	fmt.Printf("  domain search:     %.1f total msgs (shout-echo style, minimizes rounds not messages)\n", dTot/cmpTrials)

	// Empirical distribution sketch.
	sort.Float64s(ups)
	h := stats.NewHistogram(0, s.Max+1, 10)
	for _, u := range ups {
		h.Add(u)
	}
	fmt.Println()
	fmt.Println("message-count histogram:")
	for i := range h.Counts {
		lo, hi := h.BucketBounds(i)
		bar := ""
		width := 60 * h.Counts[i] / *trials
		for w := 0; w < width; w++ {
			bar += "#"
		}
		fmt.Printf("  [%5.1f, %5.1f) %6d %s\n", lo, hi, h.Counts[i], bar)
	}
}
