// Command experiments regenerates every experiment table (E1..E12) that
// EXPERIMENTS.md records: the empirical validation of the paper's
// theorems, lower bound, competitive-ratio analysis and comparison claims.
//
// Examples:
//
//	experiments                 # full scale, all experiments
//	experiments -scale quick    # fast smoke run
//	experiments -only E4,E5     # a subset
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"
	"time"

	"repro/internal/bench"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")

	var (
		scaleName = flag.String("scale", "full", "full | quick")
		only      = flag.String("only", "", "comma-separated experiment ids, e.g. E1,E4 (default: all)")
	)
	flag.Parse()

	var scale bench.Scale
	switch *scaleName {
	case "full":
		scale = bench.Full()
	case "quick":
		scale = bench.Quick()
	default:
		log.Fatalf("unknown scale %q", *scaleName)
	}

	var selected []bench.Experiment
	if *only == "" {
		selected = bench.All()
	} else {
		for _, id := range strings.Split(*only, ",") {
			e, ok := bench.ByID(strings.TrimSpace(id))
			if !ok {
				log.Fatalf("unknown experiment id %q", id)
			}
			selected = append(selected, e)
		}
	}

	for i, e := range selected {
		start := time.Now()
		tbl := e.Run(scale)
		if i > 0 {
			fmt.Println()
		}
		fmt.Print(tbl.Render())
		fmt.Printf("(%s in %.1fs)\n", e.ID, time.Since(start).Seconds())
	}
}
