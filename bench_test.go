package repro

// One benchmark per experiment (E1..E12, the repository's "tables and
// figures" — the paper is analytical, so each experiment validates a
// theorem or comparison claim; see DESIGN.md §4), plus micro-benchmarks of
// the core data paths with message-count metrics. The experiment
// benchmarks run the same code as cmd/experiments at reduced scale.

import (
	"context"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/netrun"
	"repro/internal/order"
	"repro/internal/protocol"
	"repro/internal/rng"
	"repro/internal/runtime"
	"repro/internal/shardrun"
	"repro/internal/stream"
	"repro/internal/transport"
	"repro/topk"
)

var sinkTable bench.Table

func benchExperiment(b *testing.B, id string) {
	e, ok := bench.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	sc := bench.Quick()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkTable = e.Run(sc)
	}
}

func BenchmarkE1MaxProtocolMessages(b *testing.B) { benchExperiment(b, "E1") }
func BenchmarkE2MaxProtocolTail(b *testing.B)     { benchExperiment(b, "E2") }
func BenchmarkE3SequentialMaxima(b *testing.B)    { benchExperiment(b, "E3") }
func BenchmarkE4RatioVsDelta(b *testing.B)        { benchExperiment(b, "E4") }
func BenchmarkE5RatioVsK(b *testing.B)            { benchExperiment(b, "E5") }
func BenchmarkE6RatioVsN(b *testing.B)            { benchExperiment(b, "E6") }
func BenchmarkE7SimilarInputs(b *testing.B)       { benchExperiment(b, "E7") }
func BenchmarkE8Adversarial(b *testing.B)         { benchExperiment(b, "E8") }
func BenchmarkE9Correctness(b *testing.B)         { benchExperiment(b, "E9") }
func BenchmarkE10ZipfBursty(b *testing.B)         { benchExperiment(b, "E10") }
func BenchmarkE11PhaseBreakdown(b *testing.B)     { benchExperiment(b, "E11") }
func BenchmarkE12Ablations(b *testing.B)          { benchExperiment(b, "E12") }
func BenchmarkE13OrderedMonitoring(b *testing.B)  { benchExperiment(b, "E13") }
func BenchmarkE14SeriesOverTime(b *testing.B)     { benchExperiment(b, "E14") }
func BenchmarkE15OptSensitivity(b *testing.B)     { benchExperiment(b, "E15") }
func BenchmarkE16LoadBalance(b *testing.B)        { benchExperiment(b, "E16") }
func BenchmarkE17BitVolume(b *testing.B)          { benchExperiment(b, "E17") }

// BenchmarkMaximumProtocol measures one Algorithm 2 execution and reports
// the average number of node messages next to the wall-clock cost.
func BenchmarkMaximumProtocol(b *testing.B) {
	for _, n := range []int{64, 1024, 16384} {
		b.Run(bench.F("n=%d", n), func(b *testing.B) {
			root := rng.New(uint64(n), 0xbe)
			perm := root.Perm(n)
			parts := make([]protocol.Participant, n)
			for i := range parts {
				parts[i] = protocol.Participant{ID: i, Key: order.Key(perm[i] + 1), RNG: root.Split(uint64(i))}
			}
			var c comm.Counter
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				protocol.Maximum(parts, n, &c, nil, 0)
			}
			b.ReportMetric(float64(c.Get(comm.Up))/float64(b.N), "up-msgs/op")
		})
	}
}

// BenchmarkMonitorStep measures one Observe call of the sequential engine
// on a calm workload (mostly the violation-free fast path).
func BenchmarkMonitorStep(b *testing.B) {
	for _, n := range []int{32, 256, 2048} {
		b.Run(bench.F("n=%d", n), func(b *testing.B) {
			m := core.New(core.Config{N: n, K: 4, Seed: 1})
			src := stream.NewRandomWalk(stream.WalkConfig{N: n, Lo: 0, Hi: 1 << 24, MaxStep: 8, Seed: 2})
			vals := make([]int64, n)
			src.Step(vals)
			m.Observe(vals)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				src.Step(vals)
				m.Observe(vals)
			}
			b.ReportMetric(float64(m.Counts().Total())/float64(b.N), "msgs/step")
		})
	}
}

// BenchmarkMonitorDelta compares sparse and dense ingestion of the same
// workload — a random walk where 1% of n nodes move per step — on the
// sequential engine. The delta path is the headline: O(#changed) work and
// 0 allocs/op on violation-free steps.
func BenchmarkMonitorDelta(b *testing.B) {
	const n = 2048
	const changed = n / 100
	newSrc := func() *stream.SparseWalk {
		return stream.NewSparseWalk(stream.SparseWalkConfig{
			N: n, Lo: 0, Hi: 1 << 24, MaxStep: 8, Changed: changed, Seed: 9,
		})
	}
	b.Run("delta", func(b *testing.B) {
		m := core.New(core.Config{N: n, K: 4, Seed: 10})
		src := newSrc()
		ids := make([]int, n)
		vals := make([]int64, n)
		c := src.StepDelta(ids, vals)
		m.ObserveDelta(ids[:c], vals[:c])
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c := src.StepDelta(ids, vals)
			m.ObserveDelta(ids[:c], vals[:c])
		}
		b.ReportMetric(float64(m.Counts().Total())/float64(b.N), "msgs/step")
	})
	b.Run("dense", func(b *testing.B) {
		m := core.New(core.Config{N: n, K: 4, Seed: 10})
		src := newSrc()
		vals := make([]int64, n)
		src.Step(vals)
		m.Observe(vals)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			src.Step(vals)
			m.Observe(vals)
		}
		b.ReportMetric(float64(m.Counts().Total())/float64(b.N), "msgs/step")
	})
}

// BenchmarkMonitorStepHot measures Observe under constant violations (IID
// redraw workload): the protocol-heavy slow path.
func BenchmarkMonitorStepHot(b *testing.B) {
	const n = 256
	m := core.New(core.Config{N: n, K: 4, Seed: 3})
	src := stream.NewIID(stream.IIDConfig{N: n, Seed: 4, Dist: stream.Uniform, Lo: 0, Hi: 1 << 24})
	vals := make([]int64, n)
	src.Step(vals)
	m.Observe(vals)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src.Step(vals)
		m.Observe(vals)
	}
	b.ReportMetric(float64(m.Counts().Total())/float64(b.N), "msgs/step")
}

// BenchmarkRuntimeStep measures one Observe of the goroutine-per-node
// engine, including all channel round trips.
func BenchmarkRuntimeStep(b *testing.B) {
	const n = 64
	rt := runtime.New(runtime.Config{N: n, K: 4, Seed: 5})
	defer rt.Close()
	src := stream.NewRandomWalk(stream.WalkConfig{N: n, Lo: 0, Hi: 1 << 24, MaxStep: 8, Seed: 6})
	vals := make([]int64, n)
	src.Step(vals)
	rt.Observe(vals)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src.Step(vals)
		rt.Observe(vals)
	}
}

// BenchmarkShardOverhead measures the multi-coordinator engine across
// shard counts S and node counts n on a random-walk workload, reporting
// the coordination cost next to the wall clock: model messages per step
// (the algorithm ledger, which grows with S because every shard pays its
// own protocol rounds) and root↔shard coordination frames and bytes per
// step (the overhead ledger). This is the experiment seeding the
// overhead-vs-S trajectory (EXPERIMENTS.md E18); CI runs it at
// -benchtime=1x and archives the output as BENCH_shard.json.
func BenchmarkShardOverhead(b *testing.B) {
	const steps = 200
	for _, n := range []int{256, 1024} {
		for _, shards := range []int{1, 2, 4, 8} {
			b.Run(bench.F("n=%d/S=%d", n, shards), func(b *testing.B) {
				vals := make([]int64, n)
				var msgs, frames, obytes int64
				for i := 0; i < b.N; i++ {
					eng, err := shardrun.NewLoopback(shardrun.Config{N: n, K: 8, Seed: 7}, shards)
					if err != nil {
						b.Fatal(err)
					}
					src := stream.NewRandomWalk(stream.WalkConfig{N: n, Lo: 0, Hi: 1 << 24, MaxStep: 1 << 12, Seed: 11})
					for s := 0; s < steps; s++ {
						src.Step(vals)
						eng.Observe(vals)
					}
					msgs = eng.Counts().Total()
					frames = eng.Overhead().Total()
					obytes = eng.OverheadBytes().Total()
					eng.Close()
				}
				b.ReportMetric(float64(msgs)/steps, "msgs/step")
				b.ReportMetric(float64(frames)/steps, "coord-frames/step")
				b.ReportMetric(float64(obytes)/steps, "coord-B/step")
			})
		}
	}
}

// tcpNetEngine builds a networked engine over real loopback TCP links
// with in-process Serve goroutines on the dialing side, mirroring the
// topkmon -serve/-join topology. The cleanup closes the engine, the
// listener and the serve loops.
func tcpNetEngine(b *testing.B, cfg netrun.Config, peers int) *netrun.Engine {
	b.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	ln, err := transport.Listen(ctx, "127.0.0.1:0")
	if err != nil {
		cancel()
		b.Skipf("cannot listen on loopback: %v", err)
	}
	for i := 0; i < peers; i++ {
		go func() {
			link, err := transport.Dial(ctx, ln.Addr())
			if err != nil {
				return
			}
			_ = netrun.Serve(link)
		}()
	}
	links, err := ln.AcceptN(peers)
	if err != nil {
		cancel()
		b.Fatal(err)
	}
	eng, err := netrun.New(cfg, links)
	if err != nil {
		cancel()
		b.Fatal(err)
	}
	b.Cleanup(func() {
		eng.Close()
		ln.Close()
		cancel()
	})
	return eng
}

// BenchmarkNetStepLatency measures one observation step of the networked
// engine across the peer count, over in-process pipes AND real loopback
// TCP, with the pipelined fan-out against the sequential lockstep
// baseline. The workload is an IID redraw, so nearly every step runs
// protocol executions — the regime in which the pipelined engine's
// concurrent gather and its Winner/ResetBegin/Midpoint coalescing pay:
// step latency should follow the slowest peer rather than the peer
// count, with the pipelined-vs-lockstep gap widening as peers grow. Both
// modes are bit-identical in reports and ledgers (msgs/step is reported
// to prove the runs comparable); only wall clock differs. This seeds the
// wall-clock trajectory of EXPERIMENTS.md E20; CI runs it at
// -benchtime=1x and archives the output as BENCH_net.json.
func BenchmarkNetStepLatency(b *testing.B) {
	const n, k = 256, 8
	modes := []struct {
		name     string
		lockstep bool
	}{
		{"pipelined", false},
		{"lockstep", true},
	}
	for _, tr := range []string{"pipe", "tcp"} {
		for _, peers := range []int{1, 4, 8, 16} {
			for _, mode := range modes {
				b.Run(bench.F("%s/peers=%d/%s", tr, peers, mode.name), func(b *testing.B) {
					cfg := netrun.Config{N: n, K: k, Seed: 7, Lockstep: mode.lockstep}
					var eng *netrun.Engine
					if tr == "tcp" {
						eng = tcpNetEngine(b, cfg, peers)
					} else {
						var err error
						eng, err = netrun.NewLoopback(cfg, peers)
						if err != nil {
							b.Fatal(err)
						}
						b.Cleanup(eng.Close)
					}
					src := stream.NewIID(stream.IIDConfig{N: n, Seed: 11, Dist: stream.Uniform, Lo: 0, Hi: 1 << 20})
					vals := make([]int64, n)
					src.Step(vals)
					eng.Observe(vals) // init reset outside the timer
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						src.Step(vals)
						eng.Observe(vals)
					}
					b.StopTimer()
					if err := eng.Err(); err != nil {
						b.Fatal(err)
					}
					b.ReportMetric(float64(eng.Counts().Total())/float64(b.N+1), "msgs/step")
				})
			}
		}
	}
}

// BenchmarkShardParallel measures the step latency of the sharded engine
// against the shard count on a protocol-heavy workload (IID redraws, so
// nearly every step delegates executions): with the pipelined root the S
// local protocols of one delegated execution run concurrently, so a
// fixed node population speeds up as S grows, while the lockstep
// baseline pays every coordination round trip sequentially. Reported
// msgs/step grows with S (each shard pays its own rounds) — that
// trade-off is E18's; this benchmark tracks the wall-clock side for
// EXPERIMENTS.md E20 and ships in CI's BENCH_net.json.
func BenchmarkShardParallel(b *testing.B) {
	const n, k = 1024, 8
	modes := []struct {
		name     string
		lockstep bool
	}{
		{"pipelined", false},
		{"lockstep", true},
	}
	for _, shards := range []int{1, 2, 4, 8} {
		for _, mode := range modes {
			b.Run(bench.F("S=%d/%s", shards, mode.name), func(b *testing.B) {
				eng, err := shardrun.NewLoopback(shardrun.Config{N: n, K: k, Seed: 7, Lockstep: mode.lockstep}, shards)
				if err != nil {
					b.Fatal(err)
				}
				b.Cleanup(eng.Close)
				src := stream.NewIID(stream.IIDConfig{N: n, Seed: 11, Dist: stream.Uniform, Lo: 0, Hi: 1 << 20})
				vals := make([]int64, n)
				src.Step(vals)
				eng.Observe(vals) // init reset outside the timer
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					src.Step(vals)
					eng.Observe(vals)
				}
				b.StopTimer()
				if err := eng.Err(); err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(eng.Counts().Total())/float64(b.N+1), "msgs/step")
			})
		}
	}
}

// BenchmarkTreeFanIn measures the hierarchical coordinator tree against
// the flat star serving the same leaf population: for each branch factor
// b and depth d the tree run drives a b^d-leaf tree (root holds exactly
// b links) and the flat run drives S=b^d shards hanging directly off the
// root. Both execute the identical protocol trajectory — same reports,
// same algorithm ledger — so the comparison isolates coordination
// topology: root-links is the root's fan-in, root-frames/step and
// root-B/step are the frames and bytes the root itself moved (the tree's
// interior levels pay the rest; see Engine.TreeStats), and ns/op is the
// step latency including every tree level's round trip. At equal total ε
// the tree's root sees strictly less traffic than the flat root — depth
// buys fan-in at the price of per-step latency. This seeds EXPERIMENTS.md
// E22; CI runs it at -benchtime=1x and archives the output as
// BENCH_tree.json.
func BenchmarkTreeFanIn(b *testing.B) {
	const n, k, steps = 512, 8, 150
	const eps = 0.05
	for _, branch := range []int{2, 4, 8} {
		for _, depth := range []int{1, 2, 3} {
			leaves := 1
			for i := 0; i < depth; i++ {
				leaves *= branch
			}
			if leaves > n {
				continue
			}
			run := func(name string, mk func() (*shardrun.Engine, error), links int) {
				b.Run(bench.F("b=%d/d=%d/%s", branch, depth, name), func(b *testing.B) {
					vals := make([]int64, n)
					var frames, obytes int64
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						b.StopTimer()
						eng, err := mk()
						if err != nil {
							b.Fatal(err)
						}
						src := stream.NewRandomWalk(stream.WalkConfig{N: n, Lo: 1 << 20, Hi: 1 << 21, MaxStep: 1 << 13, Seed: 11})
						b.StartTimer()
						for s := 0; s < steps; s++ {
							src.Step(vals)
							eng.Observe(vals)
						}
						b.StopTimer()
						if err := eng.Err(); err != nil {
							b.Fatal(err)
						}
						frames = eng.Overhead().Total()
						obytes = eng.OverheadBytes().Total()
						eng.Close()
						b.StartTimer()
					}
					b.ReportMetric(float64(links), "root-links")
					b.ReportMetric(float64(frames)/steps, "root-frames/step")
					b.ReportMetric(float64(obytes)/steps, "root-B/step")
				})
			}
			cfg := shardrun.Config{N: n, K: k, Seed: 7, Epsilon: eps}
			run("tree", func() (*shardrun.Engine, error) {
				return shardrun.NewLoopbackTree(cfg, branch, depth)
			}, branch)
			run("flat", func() (*shardrun.Engine, error) {
				return shardrun.NewLoopback(cfg, leaves)
			}, leaves)
		}
	}
}

// BenchmarkApproxComm sweeps the tolerance of the ε-approximate mode on
// one drifting workload and reports the communication next to the wall
// clock: model messages and charged bytes per step, and the violation
// steps the (1±ε) bands absorbed. ε=0 is the exact baseline on the same
// trace. This is the benchmark-grade mirror of EXPERIMENTS.md E19
// (`cmd/experiments -only E19`); CI runs it at -benchtime=1x and archives
// the output as BENCH_approx.json.
func BenchmarkApproxComm(b *testing.B) {
	const steps = 400
	const n, k = 1024, 8
	for _, eps := range []float64{0, 0.01, 0.05, 0.1} {
		b.Run(bench.F("eps=%.2f", eps), func(b *testing.B) {
			vals := make([]int64, n)
			var msgs, bytes, viol int64
			for i := 0; i < b.N; i++ {
				m := core.New(core.Config{N: n, K: k, Seed: 7, Epsilon: eps})
				src := stream.NewRandomWalk(stream.WalkConfig{N: n, Lo: 1 << 20, Hi: 1 << 21, MaxStep: 1 << 13, Seed: 11})
				for s := 0; s < steps; s++ {
					src.Step(vals)
					m.Observe(vals)
				}
				msgs = m.Counts().Total()
				bytes = m.Bytes().Total()
				viol = m.Stats().ViolationSteps
			}
			b.ReportMetric(float64(msgs)/steps, "msgs/step")
			b.ReportMetric(float64(bytes)/steps, "B/step")
			b.ReportMetric(float64(viol)/steps, "viol-steps/step")
		})
	}
}

// BenchmarkRecovery measures what one peer failure costs the networked
// engine across cohort sizes: the wall clock from the kill to the first
// re-converged report, the observation calls it took (detection plus the
// recovering step), and the transport frames the reassignment handshake,
// value replay and forced reset moved. The dead peer's range is merged
// into a survivor (no Redial), so the figure tracks how reassignment
// scales with the number of surviving peers. CI runs it at -benchtime=1x
// and archives the output as BENCH_recover.json.
func BenchmarkRecovery(b *testing.B) {
	const n, k = 256, 8
	for _, peers := range []int{2, 4, 8, 16} {
		b.Run(bench.F("peers=%d", peers), func(b *testing.B) {
			var steps, frames float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				links := netrun.LoopbackLinks(peers)
				eng, err := netrun.New(netrun.Config{N: n, K: k, Seed: 7, RetryBackoff: time.Millisecond}, links)
				if err != nil {
					b.Fatal(err)
				}
				src := stream.NewIID(stream.IIDConfig{N: n, Seed: 11, Dist: stream.Uniform, Lo: 0, Hi: 1 << 20})
				vals := make([]int64, n)
				for s := 0; s < 30; s++ {
					src.Step(vals)
					eng.Observe(vals)
				}
				// Sum frames over the original link handles: the engine's own
				// TransportStats drops a merged-away peer's counters, which
				// would make the recovery delta negative.
				sumFrames := func() int64 {
					var total int64
					for _, l := range links {
						st := transport.StatsOf(l)
						total += st.SentFrames + st.RecvFrames
					}
					return total
				}
				links[peers-1].Close() // fail-stop one peer under the engine
				before := sumFrames()
				b.StartTimer()
				for h := eng.Health(); h.Recoveries == 0 || h.Degraded; h = eng.Health() {
					src.Step(vals)
					eng.Observe(vals)
					steps++
					if err := eng.Err(); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				frames += float64(sumFrames() - before)
				eng.Close()
			}
			b.ReportMetric(steps/float64(b.N), "steps/recover")
			b.ReportMetric(frames/float64(b.N), "frames/recover")
		})
	}
}

// tcpTopkTransport builds a topk.Transport over real loopback TCP links
// with in-process Serve goroutines on the dialing side — the public-API
// twin of tcpNetEngine. The Monitor takes ownership and closes it.
type tcpTopkTransport struct {
	links  []topk.Link
	ln     *transport.Listener
	cancel context.CancelFunc
}

func (t *tcpTopkTransport) Links() []topk.Link { return t.links }
func (t *tcpTopkTransport) Close() error {
	err := t.ln.Close()
	t.cancel()
	return err
}

func newTCPTopkTransport(b *testing.B, peers int) topk.Transport {
	b.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	ln, err := transport.Listen(ctx, "127.0.0.1:0")
	if err != nil {
		cancel()
		b.Skipf("cannot listen on loopback: %v", err)
	}
	for i := 0; i < peers; i++ {
		go func() {
			link, err := transport.Dial(ctx, ln.Addr())
			if err == nil {
				_ = netrun.Serve(link)
			}
		}()
	}
	links, err := ln.AcceptN(peers)
	if err != nil {
		cancel()
		b.Fatal(err)
	}
	tl := make([]topk.Link, len(links))
	for i, l := range links {
		tl[i] = l
	}
	return &tcpTopkTransport{links: tl, ln: ln, cancel: cancel}
}

// BenchmarkAsyncThroughput measures sustained observation calls per
// second through the public asynchronous ingestion path: one producer
// feeds sparse delta calls (8 of 256 nodes move per call) through the
// bounded coalescing queue, across every engine — including the
// networked engine over both in-process pipes and real loopback TCP —
// and across queue depths, with depth=0 as the synchronous blocking
// baseline on the same workload. Next to the wall clock it reports
// obs/s, the coalescing ratio (updates superseded before execution, the
// work the queue saved), and steps/call (protocol steps actually run
// per observation call; 1.0 means no collapsing happened). Every run
// ends with a Drain so the measurement includes completing the backlog,
// not just staging it. On a single core the async gain is bounded —
// producer and worker share the CPU, so the win comes from coalescing,
// not overlap; see EXPERIMENTS.md E21 for the caveats. CI runs this at
// -benchtime=1x and archives the output as BENCH_async.json.
func BenchmarkAsyncThroughput(b *testing.B) {
	const n, k, changed = 256, 8, 8
	engines := []struct {
		name string
		cfg  func(b *testing.B) topk.Config
	}{
		{"seq", func(b *testing.B) topk.Config { return topk.Config{Nodes: n, K: k, Seed: 7} }},
		{"conc", func(b *testing.B) topk.Config { return topk.Config{Nodes: n, K: k, Seed: 7, Concurrent: true} }},
		{"net-pipe", func(b *testing.B) topk.Config {
			return topk.Config{Nodes: n, K: k, Seed: 7, Transport: topk.Loopback(4)}
		}},
		{"net-tcp", func(b *testing.B) topk.Config {
			return topk.Config{Nodes: n, K: k, Seed: 7, Transport: newTCPTopkTransport(b, 4)}
		}},
		{"shard", func(b *testing.B) topk.Config { return topk.Config{Nodes: n, K: k, Seed: 7, Shards: 2} }},
	}
	for _, eng := range engines {
		for _, depth := range []int{0, 16, n} {
			name := bench.F("%s/sync", eng.name)
			if depth > 0 {
				name = bench.F("%s/queue=%d", eng.name, depth)
			}
			b.Run(name, func(b *testing.B) {
				cfg := eng.cfg(b)
				cfg.Ingest = topk.Ingest{QueueDepth: depth, Overflow: topk.OverflowBlock}
				mon, err := topk.New(cfg)
				if err != nil {
					b.Fatal(err)
				}
				b.Cleanup(mon.Close)
				src := stream.NewSparseWalk(stream.SparseWalkConfig{
					N: n, Changed: changed, MaxStep: 1 << 11, Lo: 1 << 18, Hi: 1 << 24, Seed: 6,
				})
				ids := make([]int, n)
				vals := make([]int64, n)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					c := src.StepDelta(ids, vals)
					if _, err := mon.ObserveDelta(ids[:c], vals[:c]); err != nil {
						b.Fatal(err)
					}
				}
				ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
				err = mon.Drain(ctx)
				cancel()
				b.StopTimer()
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "obs/s")
				if depth > 0 {
					st := mon.IngestStats()
					if st.Enqueued > 0 {
						b.ReportMetric(float64(st.Coalesced)/float64(st.Enqueued), "coalesce-ratio")
					}
					b.ReportMetric(float64(st.Batches)/float64(b.N), "steps/call")
				}
			})
		}
	}
}

// BenchmarkOracle measures the reference top-k computation used by the
// correctness checks.
func BenchmarkOracle(b *testing.B) {
	const n = 1024
	src := stream.NewIID(stream.IIDConfig{N: n, Seed: 7, Dist: stream.Uniform, Lo: 0, Hi: 1 << 24})
	vals := make([]int64, n)
	src.Step(vals)
	m := core.New(core.Config{N: n, K: 8, Seed: 8})
	keys := make([]order.Key, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.EncodeAll(vals, keys)
	}
}

// BenchmarkCheckpoint measures the durable-checkpoint layer (E23): the
// size and write latency of a full-state frame at several node counts —
// against the copy-only in-memory store and the fsync-backed atomic file
// store — and the latency of topk.Restore from the newest valid frame.
// The restored sequential monitor is bit-identical to an uninterrupted
// twin, so re-convergence costs zero steps; the networked engines instead
// pay one forced FILTERRESET and are oracle-exact from the first
// post-restore step (DESIGN.md "Durable checkpointing & crash-restart").
func BenchmarkCheckpoint(b *testing.B) {
	const k, warm = 8, 64
	ctx := context.Background()
	walk := func(b *testing.B, mon *topk.Monitor, n, steps int, seed uint64) {
		src := stream.NewSparseWalk(stream.SparseWalkConfig{
			N: n, Changed: n / 16, MaxStep: 1 << 11, Lo: 1 << 18, Hi: 1 << 24, Seed: seed,
		})
		ids := make([]int, n)
		vals := make([]int64, n)
		for s := 0; s < steps; s++ {
			c := src.StepDelta(ids, vals)
			if _, err := mon.ObserveDelta(ids[:c], vals[:c]); err != nil {
				b.Fatal(err)
			}
		}
	}
	for _, n := range []int{256, 1024, 4096} {
		for _, eps := range []float64{0, 0.05} {
			cfg := topk.Config{Nodes: n, K: k, Seed: 7, Epsilon: eps}
			stores := []struct {
				name string
				mk   func(b *testing.B) topk.CheckpointStore
			}{
				{"mem", func(b *testing.B) topk.CheckpointStore { return topk.MemCheckpoints() }},
				{"file", func(b *testing.B) topk.CheckpointStore {
					st, err := topk.FileCheckpoints(b.TempDir())
					if err != nil {
						b.Fatal(err)
					}
					return st
				}},
			}
			for _, st := range stores {
				b.Run(bench.F("save/%s/n=%d/eps=%g", st.name, n, eps), func(b *testing.B) {
					c := cfg
					c.Checkpoint = topk.Checkpoint{Store: st.mk(b)}
					mon, err := topk.New(c)
					if err != nil {
						b.Fatal(err)
					}
					b.Cleanup(mon.Close)
					walk(b, mon, n, warm, 6)
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						if _, err := mon.Checkpoint(ctx); err != nil {
							b.Fatal(err)
						}
					}
					b.StopTimer()
					if _, frame, err := c.Checkpoint.Store.Load(); err == nil {
						b.ReportMetric(float64(len(frame)), "frame-bytes")
					}
				})
			}
			b.Run(bench.F("restore/n=%d/eps=%g", n, eps), func(b *testing.B) {
				c := cfg
				c.Checkpoint = topk.Checkpoint{Store: topk.MemCheckpoints()}
				mon, err := topk.New(c)
				if err != nil {
					b.Fatal(err)
				}
				walk(b, mon, n, warm, 6)
				if _, err := mon.Checkpoint(ctx); err != nil {
					b.Fatal(err)
				}
				mon.Close()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					r, err := topk.Restore(c.Checkpoint.Store, c)
					if err != nil {
						b.Fatal(err)
					}
					r.Close()
				}
			})
		}
	}
}
