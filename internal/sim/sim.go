// Package sim drives any online top-k monitoring algorithm over a
// workload, collecting message metrics, verifying exactness against a
// locally computed oracle every step, and optionally computing the offline
// OPT segmentation for competitive-ratio reporting. It is the substrate
// every experiment and benchmark in the repository runs on.
package sim

import (
	"fmt"
	"sort"

	"repro/internal/baseline"
	"repro/internal/comm"
	"repro/internal/order"
	"repro/internal/stream"
)

// Algorithm is the common shape of all online monitors in this repository:
// core.Monitor and every baseline satisfy it structurally.
type Algorithm interface {
	// Observe consumes one step of observations and returns the reported
	// top-k node ids in ascending order.
	Observe(vals []int64) []int
	// Counts returns the total messages charged so far.
	Counts() comm.Counts
}

// Config parameterizes a run.
type Config struct {
	// Steps is the number of observation steps to simulate (> 0).
	Steps int
	// K is the top-set size used by the oracle and OPT (must match the
	// algorithm's configuration).
	K int
	// CheckEvery verifies the report against the oracle every so many
	// steps; 1 checks always, 0 disables checking (for pure benchmarks).
	CheckEvery int
	// Epsilon is the tolerance the algorithm under test runs with. At 0
	// (the default) every checked report must equal the exact oracle; for
	// a positive tolerance the check instead requires each report to be a
	// valid ε-approximation of the true top-k (EpsValid).
	Epsilon float64
	// ComputeOpt additionally records the full observation matrix and
	// computes the offline OPT segmentation for the competitive ratio.
	ComputeOpt bool
	// RecordSeries retains the cumulative message count after every step
	// (for message-over-time figures).
	RecordSeries bool
}

// ByteCounter is implemented by algorithms whose ledger also tracks the
// encoded size of the charged messages (all three Algorithm 1 engines).
type ByteCounter interface {
	Bytes() comm.Bytes
}

// Report summarizes one run.
type Report struct {
	Steps      int
	K          int
	Messages   comm.Counts
	Bytes      comm.Bytes // encoded message volume; zero for count-only algorithms
	Errors     int        // oracle mismatches observed (always 0 for correct algorithms)
	TopChanges int        // steps where the reported set differed from the previous step

	// MsgsPerStep is Messages.Total() / Steps.
	MsgsPerStep float64

	// OptSegments and CompetitiveRatio are filled when Config.ComputeOpt
	// is set: the ratio is Messages.Total() / max(1, OptSegments), i.e.
	// online messages per OPT filter update — the quantity Theorem 3.3
	// bounds by O((log ∆ + k)·M(n)).
	OptSegments      int
	CompetitiveRatio float64

	// Series holds the cumulative total message count after each step when
	// Config.RecordSeries is set.
	Series []int64
}

// Run simulates the algorithm over src for cfg.Steps steps.
func Run(alg Algorithm, src stream.Source, cfg Config) Report {
	n := src.N()
	vals := make([]int64, n)
	rep := runLoop(n, cfg, alg.Counts, func() ([]int, []int64) {
		src.Step(vals)
		return alg.Observe(vals), vals
	})
	if bc, ok := alg.(ByteCounter); ok {
		rep.Bytes = bc.Bytes()
	}
	return rep
}

// DeltaAlgorithm is an online monitor with a sparse ingestion path:
// core.Monitor and runtime.Runtime satisfy it structurally.
type DeltaAlgorithm interface {
	// ObserveDelta consumes one step in which only the listed nodes
	// (strictly increasing ids) changed and returns the reported top-k
	// node ids in ascending order.
	ObserveDelta(ids []int, vals []int64) []int
	// Counts returns the total messages charged so far.
	Counts() comm.Counts
}

// RunDelta simulates a sparse-ingestion algorithm over a delta-emitting
// source for cfg.Steps steps. It maintains the dense observation vector on
// the side (nodes start at value 0, matching the monitors' convention) and
// verifies the sparse path's reports against the same oracle Run uses on
// the dense state — the end-to-end check that sparse and dense ingestion
// report identically.
func RunDelta(alg DeltaAlgorithm, src stream.DeltaSource, cfg Config) Report {
	n := src.N()
	ids := make([]int, n)
	vals := make([]int64, n)
	dense := make([]int64, n)
	rep := runLoop(n, cfg, alg.Counts, func() ([]int, []int64) {
		c := src.StepDelta(ids, vals)
		for j := 0; j < c; j++ {
			dense[ids[j]] = vals[j]
		}
		return alg.ObserveDelta(ids[:c], vals[:c]), dense
	})
	if bc, ok := alg.(ByteCounter); ok {
		rep.Bytes = bc.Bytes()
	}
	return rep
}

// runLoop is the shared per-step and report-finalization bookkeeping of
// Run and RunDelta. step advances the workload and the algorithm by one
// time step, returning the report and the dense observation vector the
// oracle and OPT should see (the vector may be reused across steps).
func runLoop(n int, cfg Config, counts func() comm.Counts, step func() ([]int, []int64)) Report {
	if cfg.Steps <= 0 {
		panic("sim: need Steps > 0")
	}
	if cfg.K < 1 || cfg.K > n {
		panic("sim: need 1 <= K <= N")
	}
	rep := Report{Steps: cfg.Steps, K: cfg.K}
	var matrix [][]int64
	if cfg.ComputeOpt {
		matrix = make([][]int64, 0, cfg.Steps)
	}
	var prevTop []int
	tol, err := order.NewTol(cfg.Epsilon)
	if err != nil {
		panic("sim: " + err.Error())
	}
	for s := 0; s < cfg.Steps; s++ {
		top, dense := step()
		if cfg.CheckEvery > 0 && s%cfg.CheckEvery == 0 {
			if !tol.Zero() {
				if !epsValid(dense, top, cfg.K, tol) {
					rep.Errors++
				}
			} else if want := Oracle(dense, cfg.K); !equalInts(top, want) {
				rep.Errors++
			}
		}
		// Copy the report: engines may return a view into internal state
		// that the next step overwrites.
		if prevTop != nil && !equalInts(prevTop, top) {
			rep.TopChanges++
		}
		prevTop = append(prevTop[:0], top...)
		if cfg.ComputeOpt {
			row := make([]int64, n)
			copy(row, dense)
			matrix = append(matrix, row)
		}
		if cfg.RecordSeries {
			rep.Series = append(rep.Series, counts().Total())
		}
	}
	rep.Messages = counts()
	rep.MsgsPerStep = float64(rep.Messages.Total()) / float64(cfg.Steps)
	if cfg.ComputeOpt {
		opt := baseline.OptFromValues(matrix, cfg.K)
		rep.OptSegments = opt.Segments
		denom := opt.Segments
		if denom < 1 {
			denom = 1
		}
		rep.CompetitiveRatio = float64(rep.Messages.Total()) / float64(denom)
	}
	return rep
}

// Oracle computes the exact top-k ids (ascending) for one observation
// vector under the shared tie-break injection (equal values: smaller id
// wins), which is the ranking every algorithm in the repository uses.
func Oracle(vals []int64, k int) []int {
	codec := order.NewCodec(len(vals))
	keys := make([]order.Key, len(vals))
	for i, v := range vals {
		keys[i] = codec.Encode(v, i)
	}
	ids := make([]int, len(vals))
	for i := range ids {
		ids[i] = i
	}
	sort.Slice(ids, func(a, b int) bool { return keys[ids[a]] > keys[ids[b]] })
	top := append([]int(nil), ids[:k]...)
	sort.Ints(top)
	return top
}

// EpsValid reports whether top is a valid ε-approximate top-k report for
// the observation vector vals under the shared tie-break injection: top
// must hold k distinct ascending in-range ids, and some threshold's
// (1±ε) band must cover both the smallest reported key and the largest
// unreported key (order.Tol.Separated — the band generalization of the
// filter separation lemma). At ε = 0 this is exactly "top equals the
// oracle", since the injected keys are pairwise distinct.
func EpsValid(vals []int64, top []int, k int, eps float64) bool {
	tol, err := order.NewTol(eps)
	if err != nil {
		panic("sim: " + err.Error())
	}
	return epsValid(vals, top, k, tol)
}

func epsValid(vals []int64, top []int, k int, tol order.Tol) bool {
	if len(top) != k || k < 1 || k > len(vals) {
		return false
	}
	codec := order.NewCodec(len(vals))
	inTop := make([]bool, len(vals))
	prev := -1
	for _, id := range top {
		if id <= prev || id >= len(vals) {
			return false // not strictly ascending in range, or duplicate
		}
		inTop[id] = true
		prev = id
	}
	minTop, maxOut := order.PosInf, order.NegInf
	for i, v := range vals {
		key := codec.Encode(v, i)
		if inTop[i] {
			minTop = order.Min(minTop, key)
		} else {
			maxOut = order.Max(maxOut, key)
		}
	}
	if maxOut == order.NegInf {
		return true // k == n: nothing is excluded
	}
	return tol.Separated(minTop, maxOut)
}

// MeasureDelta computes the paper's ∆ for a recorded workload: the maximum
// over time of the gap between the k-th and (k+1)-st largest keys
// (0 when k == n). Experiment E4 reports it next to the measured ratios.
func MeasureDelta(matrix [][]int64, k int) int64 {
	if len(matrix) == 0 {
		panic("sim: MeasureDelta on empty matrix")
	}
	n := len(matrix[0])
	if k < 1 || k > n {
		panic("sim: MeasureDelta needs 1 <= k <= n")
	}
	if k == n {
		return 0
	}
	codec := order.NewCodec(n)
	var maxGap int64
	keys := make([]order.Key, n)
	for _, row := range matrix {
		for i, v := range row {
			keys[i] = codec.Encode(v, i)
		}
		sorted := append([]order.Key(nil), keys...)
		sort.Slice(sorted, func(a, b int) bool { return sorted[a] > sorted[b] })
		gap := int64(sorted[k-1] - sorted[k])
		if gap > maxGap {
			maxGap = gap
		}
	}
	return maxGap
}

// Describe renders a one-line summary of a report for logs and CLIs.
func Describe(name string, r Report) string {
	s := fmt.Sprintf("%-14s steps=%d msgs=%d (%.2f/step) up=%d down=%d bcast=%d changes=%d errors=%d",
		name, r.Steps, r.Messages.Total(), r.MsgsPerStep, r.Messages.Up, r.Messages.Down, r.Messages.Bcast, r.TopChanges, r.Errors)
	if b := r.Bytes.Total(); b > 0 {
		s += fmt.Sprintf(" bytes=%d (%.1f/step)", b, float64(b)/float64(r.Steps))
	}
	if r.OptSegments > 0 {
		s += fmt.Sprintf(" opt=%d ratio=%.1f", r.OptSegments, r.CompetitiveRatio)
	}
	return s
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
