package sim

import (
	"testing"

	"repro/internal/core"
	"repro/internal/runtime"
	"repro/internal/stream"
)

// TestRunDeltaMatchesDenseRun drives the same sparse trajectory through
// RunDelta (sparse ingestion) and Run (dense ingestion) and requires
// identical oracle-verified reports and identical message bills.
func TestRunDeltaMatchesDenseRun(t *testing.T) {
	const n, k, seed, steps = 64, 6, 31, 400
	mk := func() *stream.SparseWalk {
		return stream.NewSparseWalk(stream.SparseWalkConfig{
			N: n, Lo: 0, Hi: 1 << 22, MaxStep: 1 << 11, Changed: 3, Seed: 32,
		})
	}
	cfg := Config{Steps: steps, K: k, CheckEvery: 1}

	sparse := RunDelta(core.New(core.Config{N: n, K: k, Seed: seed}), mk(), cfg)
	dense := Run(core.New(core.Config{N: n, K: k, Seed: seed}), mk(), cfg)

	if sparse.Errors != 0 {
		t.Fatalf("sparse run had %d oracle mismatches", sparse.Errors)
	}
	if dense.Errors != 0 {
		t.Fatalf("dense run had %d oracle mismatches", dense.Errors)
	}
	if sparse.Messages != dense.Messages {
		t.Fatalf("message bills differ: sparse=%v dense=%v", sparse.Messages, dense.Messages)
	}
	if sparse.TopChanges != dense.TopChanges {
		t.Fatalf("top changes differ: sparse=%d dense=%d", sparse.TopChanges, dense.TopChanges)
	}
}

// TestRunDeltaConcurrentEngine runs the sparse path on the sharded
// goroutine engine under the oracle.
func TestRunDeltaConcurrentEngine(t *testing.T) {
	const n, k, steps = 24, 4, 200
	rt := runtime.New(runtime.Config{N: n, K: k, Seed: 41, Shards: 5})
	defer rt.Close()
	src := stream.NewSparseWalk(stream.SparseWalkConfig{
		N: n, Lo: 0, Hi: 1 << 20, MaxStep: 1 << 10, Changed: 2, Seed: 42,
	})
	rep := RunDelta(rt, src, Config{Steps: steps, K: k, CheckEvery: 1})
	if rep.Errors != 0 {
		t.Fatalf("concurrent sparse run had %d oracle mismatches", rep.Errors)
	}
	if rep.Messages.Total() == 0 {
		t.Fatal("run recorded no communication at all")
	}
}
