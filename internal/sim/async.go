package sim

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/comm"
	"repro/internal/coord"
	"repro/internal/ingest"
	"repro/internal/rng"
	"repro/internal/stream"
)

// AsyncEngine is the engine surface the equivalence-under-async harness
// drives: the sparse observation entry point plus every ledger the
// equivalence contract pins. core.Monitor, runtime.Runtime,
// netrun.Engine and shardrun.Engine all satisfy it structurally.
type AsyncEngine interface {
	ObserveDelta(ids []int, vals []int64) []int
	AppendTop(dst []int) []int
	Counts() comm.Counts
	Bytes() comm.Bytes
	Ledger() *comm.Ledger
	Stats() coord.Stats
}

// AsyncBatch is one applied protocol step recorded from the ingest
// worker: the coalesced batch exactly as the engine executed it.
type AsyncBatch struct {
	IDs  []int
	Vals []int64
}

// AsyncConfig parameterizes one equivalence-under-async run.
type AsyncConfig struct {
	// Steps is the number of observation calls to stage (> 0).
	Steps int
	// K is the top set size (for the oracle check).
	K int
	// Epsilon is the tolerance the engines under test run with: 0
	// demands oracle-exact reports at every barrier, a positive value
	// demands EpsValid ones.
	Epsilon float64
	// QueueDepth and Policy configure the ingest driver under test.
	QueueDepth int
	Policy     ingest.Policy
	// Dense stages every node's current value per observation call (the
	// public dense Observe shape); otherwise only the step's delta is
	// staged.
	Dense bool
	// DrainEvery issues a Drain barrier after every so many observation
	// calls; 0 draws the barrier schedule at random instead, with
	// probability DrainProb per call from a generator seeded by Seed.
	// A final barrier always runs after the last call.
	DrainEvery int
	DrainProb  float64
	// Seed seeds the barrier schedule (not the workload: the caller
	// owns the stream source and the engines' protocol seeds).
	Seed uint64
	// Timeout bounds every Drain so a lost wakeup fails the run instead
	// of hanging it (default 30s).
	Timeout time.Duration
}

// AsyncReport records what one run did — most importantly the applied
// trace and the barrier schedule, which together make any failure
// replayable: feeding Trace to ObserveDelta on a fresh engine of the
// same configuration is, by construction, the synchronous run the
// asynchronous one was compared against.
type AsyncReport struct {
	// ObserveCalls is the number of staged observation calls (Steps).
	ObserveCalls int
	// Batches is the number of coalesced batches the worker applied;
	// under backlog it is below ObserveCalls, and with a barrier after
	// every call it must equal it.
	Batches int
	// Barriers records the schedule: the number of applied batches at
	// the moment each Drain barrier completed.
	Barriers []int
	// Coalesced counts updates superseded before execution.
	Coalesced int64
	// Trace is the applied trace (batch copies, in execution order).
	Trace []AsyncBatch
}

// Schedule renders the recorded coalescing and barrier schedule as one
// line, for attaching to failures.
func (r *AsyncReport) Schedule() string {
	var b strings.Builder
	fmt.Fprintf(&b, "calls=%d batches=%d coalesced=%d barriers=%v sizes=[", r.ObserveCalls, r.Batches, r.Coalesced, r.Barriers)
	for i, t := range r.Trace {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d", len(t.IDs))
	}
	b.WriteByte(']')
	return b.String()
}

// RunAsync stages cfg.Steps observation calls from src onto async
// through a bounded coalescing ingest driver, issuing Drain barriers on
// the configured schedule. At every barrier it replays the recorded
// applied trace into twin — a second engine of identical configuration
// and seed, driven synchronously — and demands bit-identical reports,
// message counts, charged bytes, per-phase ledgers and stats, plus an
// oracle-exact (ε-valid for Epsilon > 0) report against the applied
// values. The returned report carries the schedule; a non-nil error
// quotes it, so the failing interleaving can be replayed synchronously.
//
// The equivalence this pins is the coalescing-correctness argument of
// DESIGN.md: the protocol consumes only current values, so an
// asynchronous run is indistinguishable — ledgers included — from the
// synchronous run over its applied trace, and with a barrier after
// every call the applied trace is the input trace itself.
func RunAsync(async, twin AsyncEngine, src stream.DeltaSource, cfg AsyncConfig) (*AsyncReport, error) {
	if cfg.Steps <= 0 {
		panic("sim: RunAsync needs Steps > 0")
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 30 * time.Second
	}
	n := src.N()
	rep := &AsyncReport{ObserveCalls: cfg.Steps}

	var mu sync.Mutex // guards rep.Trace between worker appends and barrier reads
	drv, err := ingest.New(ingest.Config{
		N:      n,
		Depth:  cfg.QueueDepth,
		Policy: cfg.Policy,
		Apply: func(ids []int, vals []int64) error {
			async.ObserveDelta(ids, vals)
			return nil
		},
		OnApply: func(ids []int, vals []int64) {
			mu.Lock()
			rep.Trace = append(rep.Trace, AsyncBatch{
				IDs:  append([]int(nil), ids...),
				Vals: append([]int64(nil), vals...),
			})
			mu.Unlock()
		},
	})
	if err != nil {
		return rep, err
	}
	defer drv.Close()

	sched := rng.New(cfg.Seed, 0xa57c)
	ids := make([]int, n)
	vals := make([]int64, n)
	dense := make([]int64, n)   // producer-side dense mirror (Dense staging)
	applied := make([]int64, n) // values the engines have executed
	allIDs := make([]int, n)
	for i := range allIDs {
		allIDs[i] = i
	}
	replayed := 0 // batches already fed to the twin

	barrier := func(call int) error {
		ctx, cancel := context.WithTimeout(context.Background(), cfg.Timeout)
		err := drv.Drain(ctx)
		cancel()
		if err != nil {
			return fmt.Errorf("sim: Drain after call %d: %w [%s]", call, err, rep.Schedule())
		}
		mu.Lock()
		trace := rep.Trace
		mu.Unlock()
		rep.Batches = len(trace)
		rep.Barriers = append(rep.Barriers, len(trace))
		for ; replayed < len(trace); replayed++ {
			b := trace[replayed]
			twin.ObserveDelta(b.IDs, b.Vals)
			for j, id := range b.IDs {
				applied[id] = b.Vals[j]
			}
		}
		if err := compareEngines(async, twin); err != nil {
			return fmt.Errorf("sim: async diverged from its synchronous replay at call %d: %w [%s]", call, err, rep.Schedule())
		}
		top := async.AppendTop(nil)
		if cfg.Epsilon > 0 {
			if !EpsValid(applied, top, cfg.K, cfg.Epsilon) {
				return fmt.Errorf("sim: barrier report %v not ε-valid for the applied values at call %d [%s]", top, call, rep.Schedule())
			}
		} else if want := Oracle(applied, cfg.K); !equalInts(top, want) {
			return fmt.Errorf("sim: barrier report %v != oracle %v at call %d [%s]", top, want, call, rep.Schedule())
		}
		return nil
	}

	for s := 0; s < cfg.Steps; s++ {
		c := src.StepDelta(ids, vals)
		for j := 0; j < c; j++ {
			dense[ids[j]] = vals[j]
		}
		if cfg.Dense {
			err = drv.Enqueue(allIDs, dense)
		} else {
			err = drv.Enqueue(ids[:c], vals[:c])
		}
		if err != nil {
			return rep, fmt.Errorf("sim: enqueue of call %d: %w [%s]", s, err, rep.Schedule())
		}
		due := false
		if cfg.DrainEvery > 0 {
			due = (s+1)%cfg.DrainEvery == 0
		} else {
			due = sched.Float64() < cfg.DrainProb
		}
		if due || s == cfg.Steps-1 {
			if err := barrier(s); err != nil {
				return rep, err
			}
		}
	}
	rep.Coalesced = drv.Stats().Coalesced
	return rep, nil
}

// compareEngines demands that two quiescent engines are bit-identical
// in everything the equivalence suites pin: report, message counts,
// charged bytes, the per-phase ledger breakdowns, and stats.
func compareEngines(a, b AsyncEngine) error {
	if at, bt := a.AppendTop(nil), b.AppendTop(nil); !equalInts(at, bt) {
		return fmt.Errorf("reports %v vs %v", at, bt)
	}
	if ac, bc := a.Counts(), b.Counts(); ac != bc {
		return fmt.Errorf("counts %+v vs %+v", ac, bc)
	}
	if ab, bb := a.Bytes(), b.Bytes(); ab != bb {
		return fmt.Errorf("bytes %+v vs %+v", ab, bb)
	}
	if as, bs := a.Stats(), b.Stats(); as != bs {
		return fmt.Errorf("stats %+v vs %+v", as, bs)
	}
	al, bl := a.Ledger(), b.Ledger()
	for _, ph := range []comm.Phase{comm.PhaseViolation, comm.PhaseHandler, comm.PhaseReset} {
		if ac, bc := al.PhaseCounts(ph), bl.PhaseCounts(ph); ac != bc {
			return fmt.Errorf("phase %v counts %+v vs %+v", ph, ac, bc)
		}
		if ab, bb := al.PhaseBytes(ph), bl.PhaseBytes(ph); ab != bb {
			return fmt.Errorf("phase %v bytes %+v vs %+v", ph, ab, bb)
		}
	}
	return nil
}
