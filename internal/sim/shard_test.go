package sim_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/shardrun"
	"repro/internal/sim"
	"repro/internal/stream"
)

// TestShardedEngineExactInSim is the tentpole's report-equivalence proof
// at the simulation layer: the sharded engine runs under the sim harness
// with the oracle checked at every step, for S ∈ {1, 2, 4}, on both the
// dense and the sparse ingestion path, and its per-run report (reports,
// top-change count) matches the sequential engine's.
func TestShardedEngineExactInSim(t *testing.T) {
	const n, k, seed, steps = 20, 4, 31, 400
	for _, shards := range []int{1, 2, 4} {
		cfg := sim.Config{Steps: steps, K: k, CheckEvery: 1}

		seq := core.New(core.Config{N: n, K: k, Seed: seed})
		seqRep := sim.Run(seq, stream.NewRandomWalk(stream.WalkConfig{N: n, Lo: 0, Hi: 1 << 18, MaxStep: 700, Seed: 5}), cfg)

		sh := mustShard(t, shardrun.Config{N: n, K: k, Seed: seed}, shards)
		shRep := sim.Run(sh, stream.NewRandomWalk(stream.WalkConfig{N: n, Lo: 0, Hi: 1 << 18, MaxStep: 700, Seed: 5}), cfg)
		sh.Close()

		if shRep.Errors != 0 {
			t.Fatalf("S=%d: %d oracle mismatches", shards, shRep.Errors)
		}
		if shRep.TopChanges != seqRep.TopChanges {
			t.Fatalf("S=%d: top-change trajectories differ: %d vs %d", shards, shRep.TopChanges, seqRep.TopChanges)
		}
		if shards == 1 {
			if shRep.Messages != seqRep.Messages || shRep.Bytes != seqRep.Bytes {
				t.Fatalf("S=1 ledgers differ: %+v/%+v vs %+v/%+v", shRep.Messages, shRep.Bytes, seqRep.Messages, seqRep.Bytes)
			}
		}

		// Sparse path under the delta harness, oracle-checked every step.
		shd := mustShard(t, shardrun.Config{N: n, K: k, Seed: seed}, shards)
		deltaRep := sim.RunDelta(shd, stream.NewSparseWalk(stream.SparseWalkConfig{
			N: n, Changed: 2, MaxStep: 900, Lo: 0, Hi: 1 << 18, Seed: 6,
		}), cfg)
		shd.Close()
		if deltaRep.Errors != 0 {
			t.Fatalf("S=%d delta: %d oracle mismatches", shards, deltaRep.Errors)
		}
	}
}
