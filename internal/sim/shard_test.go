package sim_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/shardrun"
	"repro/internal/sim"
	"repro/internal/stream"
)

// TestShardedEngineExactInSim is the tentpole's report-equivalence proof
// at the simulation layer: the sharded engine runs under the sim harness
// with the oracle checked at every step, for S ∈ {1, 2, 4}, on both the
// dense and the sparse ingestion path, and its per-run report (reports,
// top-change count) matches the sequential engine's.
func TestShardedEngineExactInSim(t *testing.T) {
	const n, k, seed, steps = 20, 4, 31, 400
	for _, shards := range []int{1, 2, 4} {
		cfg := sim.Config{Steps: steps, K: k, CheckEvery: 1}

		seq := core.New(core.Config{N: n, K: k, Seed: seed})
		seqRep := sim.Run(seq, stream.NewRandomWalk(stream.WalkConfig{N: n, Lo: 0, Hi: 1 << 18, MaxStep: 700, Seed: 5}), cfg)

		sh := mustShard(t, shardrun.Config{N: n, K: k, Seed: seed}, shards)
		shRep := sim.Run(sh, stream.NewRandomWalk(stream.WalkConfig{N: n, Lo: 0, Hi: 1 << 18, MaxStep: 700, Seed: 5}), cfg)
		sh.Close()

		if shRep.Errors != 0 {
			t.Fatalf("S=%d: %d oracle mismatches", shards, shRep.Errors)
		}
		if shRep.TopChanges != seqRep.TopChanges {
			t.Fatalf("S=%d: top-change trajectories differ: %d vs %d", shards, shRep.TopChanges, seqRep.TopChanges)
		}
		if shards == 1 {
			if shRep.Messages != seqRep.Messages || shRep.Bytes != seqRep.Bytes {
				t.Fatalf("S=1 ledgers differ: %+v/%+v vs %+v/%+v", shRep.Messages, shRep.Bytes, seqRep.Messages, seqRep.Bytes)
			}
		}

		// Sparse path under the delta harness, oracle-checked every step.
		shd := mustShard(t, shardrun.Config{N: n, K: k, Seed: seed}, shards)
		deltaRep := sim.RunDelta(shd, stream.NewSparseWalk(stream.SparseWalkConfig{
			N: n, Changed: 2, MaxStep: 900, Lo: 0, Hi: 1 << 18, Seed: 6,
		}), cfg)
		shd.Close()
		if deltaRep.Errors != 0 {
			t.Fatalf("S=%d delta: %d oracle mismatches", shards, deltaRep.Errors)
		}
	}
}

// TestTreeEngineExactInSim extends the proof to the hierarchical
// coordinator: trees of depth 2 and 3 run under the sim harness with the
// oracle checked at every step, dense and sparse, and their top-change
// trajectories match the sequential engine's — the tree changes where
// merging happens, never what is reported.
func TestTreeEngineExactInSim(t *testing.T) {
	const n, k, seed, steps = 20, 4, 31, 400
	walk := func(seed uint64) stream.Source {
		return stream.NewRandomWalk(stream.WalkConfig{N: n, Lo: 0, Hi: 1 << 18, MaxStep: 700, Seed: seed})
	}
	cfg := sim.Config{Steps: steps, K: k, CheckEvery: 1}
	seq := core.New(core.Config{N: n, K: k, Seed: seed})
	seqRep := sim.Run(seq, walk(5), cfg)

	for _, shape := range []struct{ branch, depth int }{{2, 2}, {4, 2}, {2, 3}} {
		tr, err := shardrun.NewLoopbackTree(shardrun.Config{N: n, K: k, Seed: seed}, shape.branch, shape.depth)
		if err != nil {
			t.Fatalf("%d^%d: %v", shape.branch, shape.depth, err)
		}
		trRep := sim.Run(tr, walk(5), cfg)
		tr.Close()
		if trRep.Errors != 0 {
			t.Fatalf("%d^%d: %d oracle mismatches", shape.branch, shape.depth, trRep.Errors)
		}
		if trRep.TopChanges != seqRep.TopChanges {
			t.Fatalf("%d^%d: top-change trajectories differ: %d vs %d", shape.branch, shape.depth, trRep.TopChanges, seqRep.TopChanges)
		}

		trd, err := shardrun.NewLoopbackTree(shardrun.Config{N: n, K: k, Seed: seed}, shape.branch, shape.depth)
		if err != nil {
			t.Fatalf("%d^%d: %v", shape.branch, shape.depth, err)
		}
		deltaRep := sim.RunDelta(trd, stream.NewSparseWalk(stream.SparseWalkConfig{
			N: n, Changed: 2, MaxStep: 900, Lo: 0, Hi: 1 << 18, Seed: 6,
		}), cfg)
		trd.Close()
		if deltaRep.Errors != 0 {
			t.Fatalf("%d^%d delta: %d oracle mismatches", shape.branch, shape.depth, deltaRep.Errors)
		}
	}
}

// TestTreeEngineEpsValidInSim runs the ε mode — per-level ladder live —
// under the harness's ε oracle at every step.
func TestTreeEngineEpsValidInSim(t *testing.T) {
	const n, k, seed, steps = 20, 4, 31, 400
	tr, err := shardrun.NewLoopbackTree(shardrun.Config{N: n, K: k, Seed: seed, Epsilon: 0.05}, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	rep := sim.Run(tr, stream.NewRandomWalk(stream.WalkConfig{N: n, Lo: 0, Hi: 1 << 18, MaxStep: 700, Seed: 5}),
		sim.Config{Steps: steps, K: k, CheckEvery: 1, Epsilon: 0.05})
	if rep.Errors != 0 {
		t.Fatalf("%d ε-oracle mismatches", rep.Errors)
	}
}
