package sim_test

import (
	"testing"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/netrun"
	"repro/internal/runtime"
	"repro/internal/shardrun"
	"repro/internal/sim"
	"repro/internal/stream"
)

// epsWalk is the E19-style workload the ε tests run on: large positive
// values packed into one octave, drifting fast enough that the exact
// monitor sees frequent filter violations while the (1±ε) bands — a few
// percent of the value magnitude, i.e. several inter-rank gaps wide —
// absorb most of them.
func epsWalk(n int, seed uint64) *stream.RandomWalk {
	return stream.NewRandomWalk(stream.WalkConfig{
		N: n, Lo: 1 << 20, Hi: 1 << 21, MaxStep: 1 << 13, Seed: seed,
	})
}

// closer is implemented by the engines that own goroutines or links.
type closer interface{ Close() }

// mustNet and mustShard build loopback engines, failing the test on
// constructor errors (impossible for the valid configs used here).
func mustNet(tb testing.TB, cfg netrun.Config, peers int) *netrun.Engine {
	tb.Helper()
	e, err := netrun.NewLoopback(cfg, peers)
	if err != nil {
		tb.Fatalf("netrun.NewLoopback: %v", err)
	}
	return e
}

func mustShard(tb testing.TB, cfg shardrun.Config, shards int) *shardrun.Engine {
	tb.Helper()
	e, err := shardrun.NewLoopback(cfg, shards)
	if err != nil {
		tb.Fatalf("shardrun.NewLoopback: %v", err)
	}
	return e
}

// epsEngines builds one instance of every engine at the given tolerance.
func epsEngines(tb testing.TB, n, k int, seed uint64, eps float64) map[string]sim.Algorithm {
	return map[string]sim.Algorithm{
		"core":    core.New(core.Config{N: n, K: k, Seed: seed, Epsilon: eps}),
		"runtime": runtime.New(runtime.Config{N: n, K: k, Seed: seed, Epsilon: eps}),
		"netrun":  mustNet(tb, netrun.Config{N: n, K: k, Seed: seed, Epsilon: eps}, 3),
		"shard=1": mustShard(tb, shardrun.Config{N: n, K: k, Seed: seed, Epsilon: eps}, 1),
		"shard=3": mustShard(tb, shardrun.Config{N: n, K: k, Seed: seed, Epsilon: eps}, 3),
	}
}

// TestEpsOracleAllEngines is the tentpole's validity proof: for every
// engine and every tolerance in the E19 sweep, each step's report is a
// valid ε-approximation of the true top-k (sim's ε-oracle), on the dense
// path.
func TestEpsOracleAllEngines(t *testing.T) {
	const n, k, seed, steps = 24, 4, 9, 400
	for _, eps := range []float64{0.01, 0.05, 0.1} {
		for name, alg := range epsEngines(t, n, k, seed, eps) {
			rep := sim.Run(alg, epsWalk(n, 5), sim.Config{Steps: steps, K: k, CheckEvery: 1, Epsilon: eps})
			if c, ok := alg.(closer); ok {
				c.Close()
			}
			if rep.Errors != 0 {
				t.Errorf("eps=%v %s: %d ε-oracle violations in %d steps", eps, name, rep.Errors, steps)
			}
		}
	}
}

// TestEpsOracleDelta covers the sparse ingestion path at tolerance.
func TestEpsOracleDelta(t *testing.T) {
	const n, k, seed, steps = 24, 4, 9, 400
	src := func() *stream.SparseWalk {
		return stream.NewSparseWalk(stream.SparseWalkConfig{
			N: n, Changed: 3, MaxStep: 1 << 11, Lo: 1 << 18, Hi: 1 << 24, Seed: 6,
		})
	}
	for _, eps := range []float64{0.05, 0.1} {
		algs := map[string]sim.DeltaAlgorithm{
			"core":    core.New(core.Config{N: n, K: k, Seed: seed, Epsilon: eps}),
			"runtime": runtime.New(runtime.Config{N: n, K: k, Seed: seed, Epsilon: eps}),
			"netrun":  mustNet(t, netrun.Config{N: n, K: k, Seed: seed, Epsilon: eps}, 3),
			"shard=2": mustShard(t, shardrun.Config{N: n, K: k, Seed: seed, Epsilon: eps}, 2),
		}
		for name, alg := range algs {
			rep := sim.RunDelta(alg, src(), sim.Config{Steps: steps, K: k, CheckEvery: 1, Epsilon: eps})
			if c, ok := alg.(closer); ok {
				c.Close()
			}
			if rep.Errors != 0 {
				t.Errorf("eps=%v %s delta: %d ε-oracle violations", eps, name, rep.Errors)
			}
		}
	}
}

// TestEpsEngineEquivalence pins that the three flat engines and the
// S=1 sharded engine stay bit-identical to each other at a non-zero
// tolerance too: same reports, same message counts, same charged bytes.
// (At ε=0 the pre-existing equivalence suites already pin this.)
func TestEpsEngineEquivalence(t *testing.T) {
	const n, k, seed, steps, eps = 20, 3, 41, 300, 0.05
	type snap struct {
		rep   sim.Report
		count comm.Counts
	}
	got := map[string]snap{}
	for name, alg := range epsEngines(t, n, k, seed, eps) {
		rep := sim.Run(alg, epsWalk(n, 11), sim.Config{Steps: steps, K: k, CheckEvery: 1, Epsilon: eps})
		count := alg.Counts()
		if c, ok := alg.(closer); ok {
			c.Close()
		}
		if rep.Errors != 0 {
			t.Fatalf("%s: %d ε-oracle violations", name, rep.Errors)
		}
		got[name] = snap{rep: rep, count: count}
	}
	ref := got["core"]
	for _, name := range []string{"runtime", "netrun", "shard=1"} {
		g := got[name]
		if g.count != ref.count {
			t.Errorf("%s counts %+v != core %+v at eps=%v", name, g.count, ref.count, eps)
		}
		if g.rep.Bytes != ref.rep.Bytes {
			t.Errorf("%s bytes %+v != core %+v at eps=%v", name, g.rep.Bytes, ref.rep.Bytes, eps)
		}
		if g.rep.TopChanges != ref.rep.TopChanges {
			t.Errorf("%s top-change trajectory %d != core %d", name, g.rep.TopChanges, ref.rep.TopChanges)
		}
	}
}

// TestEpsSavesCommunication is the point of the approximate mode: on the
// same drifting workload, a tolerant monitor must exchange strictly
// fewer messages (and reset strictly less often) than the exact one,
// and larger tolerances must not cost more than smaller ones.
func TestEpsSavesCommunication(t *testing.T) {
	const n, k, seed, steps = 64, 8, 17, 1500
	totals := map[float64]int64{}
	for _, eps := range []float64{0, 0.01, 0.1} {
		m := core.New(core.Config{N: n, K: k, Seed: seed, Epsilon: eps})
		rep := sim.Run(m, epsWalk(n, 23), sim.Config{Steps: steps, K: k, CheckEvery: 1, Epsilon: eps})
		if rep.Errors != 0 {
			t.Fatalf("eps=%v: %d oracle violations", eps, rep.Errors)
		}
		totals[eps] = rep.Messages.Total()
	}
	if totals[0.01] >= totals[0] {
		t.Errorf("eps=0.01 used %d messages, exact used %d — no saving", totals[0.01], totals[0])
	}
	if totals[0.1] >= totals[0.01] {
		t.Errorf("eps=0.1 used %d messages, eps=0.01 used %d — saving did not grow", totals[0.1], totals[0.01])
	}
}

// TestEpsValidUnit pins the ε-oracle predicate itself on hand-built
// vectors.
func TestEpsValidUnit(t *testing.T) {
	vals := []int64{1000, 1040, 900, 10}
	// Exact top-2 is {0, 1}.
	if !sim.EpsValid(vals, []int{0, 1}, 2, 0) {
		t.Error("exact top set rejected at eps=0")
	}
	if sim.EpsValid(vals, []int{0, 2}, 2, 0) {
		t.Error("wrong set accepted at eps=0")
	}
	// {0, 2}: excluded node 1 (1040) vs included node 2 (900) — about 15%
	// apart, too far for eps=0.05 but fine for eps=0.2.
	if sim.EpsValid(vals, []int{0, 2}, 2, 0.05) {
		t.Error("15-percent-off set accepted at eps=0.05")
	}
	if !sim.EpsValid(vals, []int{0, 2}, 2, 0.2) {
		t.Error("15-percent-off set rejected at eps=0.2")
	}
	// Malformed reports never validate.
	for _, bad := range [][]int{nil, {0}, {0, 0}, {1, 0}, {0, 9}} {
		if sim.EpsValid(vals, bad, 2, 0.5) {
			t.Errorf("malformed report %v accepted", bad)
		}
	}
	// k == n excludes nothing and is always valid.
	if !sim.EpsValid(vals, []int{0, 1, 2, 3}, 4, 0) {
		t.Error("k=n report rejected")
	}
}
