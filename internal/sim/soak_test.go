package sim

import (
	"testing"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/order"
	"repro/internal/rng"
	"repro/internal/runtime"
	"repro/internal/stream"
)

// buildMixedMatrix concatenates phases from different generator families,
// including abrupt regime switches, which stress reset/handler paths in
// ways no single generator does.
func buildMixedMatrix(n, phaseLen int, seed uint64) [][]int64 {
	sources := []stream.Source{
		stream.NewTwoBand(stream.TwoBandConfig{N: n, K: 3, Seed: seed, Gap: 1 << 16, BandWidth: 1 << 8, MaxStep: 8}),
		stream.NewIID(stream.IIDConfig{N: n, Seed: seed + 1, Dist: stream.Uniform, Lo: 0, Hi: 1 << 20}),
		stream.NewRotation(stream.RotationConfig{N: n, Period: 2, Base: 10, Peak: 1 << 18}),
		stream.NewBursty(stream.BurstyConfig{N: n, Seed: seed + 2, Lo: 0, Hi: 1 << 20, Noise: 3, BurstProb: 0.05, BurstMax: 1 << 16}),
		stream.NewRandomWalk(stream.WalkConfig{N: n, Lo: 0, Hi: 1 << 20, MaxStep: 100, Seed: seed + 3}),
		stream.NewRegime(stream.RegimeConfig{N: n, Seed: seed + 4, Lo: 0, Hi: 1 << 20, CalmStep: 2, WildStep: 1 << 10, SwitchProb: 0.05}),
		stream.NewConst(stream.ConstConfig{N: n, Values: firstRow(n)}),
	}
	var matrix [][]int64
	for _, src := range sources {
		matrix = append(matrix, stream.Collect(src, phaseLen)...)
	}
	return matrix
}

func firstRow(n int) []int64 {
	row := make([]int64, n)
	for i := range row {
		row[i] = int64(i * 37)
	}
	return row
}

// TestSoakMixedRegimes drives every algorithm through six abrupt regime
// switches with per-step oracle checking and filter-validity assertions
// for the core monitor.
func TestSoakMixedRegimes(t *testing.T) {
	phaseLen := 300
	if testing.Short() {
		phaseLen = 60
	}
	const n, k = 24, 3
	matrix := buildMixedMatrix(n, phaseLen, 4001)
	steps := len(matrix)

	t.Run("monitor", func(t *testing.T) {
		m := core.New(core.Config{N: n, K: k, Seed: 4002})
		keys := make([]order.Key, n)
		for s, vals := range matrix {
			got := m.Observe(vals)
			if want := Oracle(vals, k); !equalInts(got, want) {
				t.Fatalf("step %d: got %v want %v", s, got, want)
			}
			m.EncodeAll(vals, keys)
			if err := m.Filters().Validate(keys); err != nil {
				t.Fatalf("step %d: %v", s, err)
			}
		}
	})

	t.Run("ordered", func(t *testing.T) {
		om := core.NewOrdered(core.Config{N: n, K: k, Seed: 4003})
		for s, vals := range matrix {
			got := om.Observe(vals)
			want := Oracle(vals, k)
			// Oracle returns ascending ids; compare as sets plus verify
			// the rank order against a direct sort.
			if !sameSet(got, want) {
				t.Fatalf("step %d: membership %v vs %v", s, got, want)
			}
			if !ranksDescending(vals, got) {
				t.Fatalf("step %d: ranks not descending: %v", s, got)
			}
		}
	})

	t.Run("baselines", func(t *testing.T) {
		algs := map[string]Algorithm{
			"per-round": baseline.NewPerRound(n, k, 4004),
			"lam":       baseline.NewLamMidpoint(n, k),
			"point":     baseline.NewPointFilter(n, k),
		}
		for name, alg := range algs {
			rep := Run(alg, stream.NewTraceSource(matrix), Config{Steps: steps, K: k, CheckEvery: 1})
			if rep.Errors != 0 {
				t.Fatalf("%s: %d errors", name, rep.Errors)
			}
		}
	})

	t.Run("engine-equivalence", func(t *testing.T) {
		seq := core.New(core.Config{N: n, K: k, Seed: 4005})
		conc := runtime.New(runtime.Config{N: n, K: k, Seed: 4005})
		defer conc.Close()
		for s, vals := range matrix {
			a, b := seq.Observe(vals), conc.Observe(vals)
			if !equalInts(a, b) || seq.Counts() != conc.Counts() {
				t.Fatalf("step %d: engines diverged", s)
			}
		}
	})
}

func sameSet(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	seen := make(map[int]bool, len(a))
	for _, v := range a {
		seen[v] = true
	}
	for _, v := range b {
		if !seen[v] {
			return false
		}
	}
	return true
}

// ranksDescending verifies the rank order under (value, smaller-id-wins).
func ranksDescending(vals []int64, ranked []int) bool {
	for i := 1; i < len(ranked); i++ {
		hi, lo := ranked[i-1], ranked[i]
		if vals[hi] < vals[lo] {
			return false
		}
		if vals[hi] == vals[lo] && hi > lo {
			return false
		}
	}
	return true
}

// TestFuzzEngineEquivalence randomizes (n, k, seed, workload volatility)
// and asserts report- and count-equivalence of the two engines.
func TestFuzzEngineEquivalence(t *testing.T) {
	iters := 40
	steps := 120
	if testing.Short() {
		iters, steps = 10, 60
	}
	r := rng.New(515, 0)
	for it := 0; it < iters; it++ {
		n := 2 + r.Intn(20)
		k := 1 + r.Intn(n)
		seed := r.Uint64()
		maxStep := 1 + r.Int63n(5000)
		src1 := stream.NewRandomWalk(stream.WalkConfig{N: n, Lo: 0, Hi: 1 << 18, MaxStep: maxStep, Seed: seed})
		src2 := stream.NewRandomWalk(stream.WalkConfig{N: n, Lo: 0, Hi: 1 << 18, MaxStep: maxStep, Seed: seed})
		seq := core.New(core.Config{N: n, K: k, Seed: seed + 1})
		conc := runtime.New(runtime.Config{N: n, K: k, Seed: seed + 1})
		va, vb := make([]int64, n), make([]int64, n)
		for s := 0; s < steps; s++ {
			src1.Step(va)
			src2.Step(vb)
			a, b := seq.Observe(va), conc.Observe(vb)
			if !equalInts(a, b) {
				t.Fatalf("iter %d (n=%d k=%d): reports differ at step %d", it, n, k, s)
			}
			if seq.Counts() != conc.Counts() {
				t.Fatalf("iter %d (n=%d k=%d): counts differ at step %d", it, n, k, s)
			}
			if want := Oracle(va, k); !equalInts(a, want) {
				t.Fatalf("iter %d: oracle mismatch at step %d", it, s)
			}
		}
		conc.Close()
	}
}

// TestFuzzMonitorRandomMatrices feeds completely arbitrary small matrices
// (including negative values and many ties) through the monitor.
func TestFuzzMonitorRandomMatrices(t *testing.T) {
	iters := 60
	if testing.Short() {
		iters = 15
	}
	r := rng.New(616, 0)
	for it := 0; it < iters; it++ {
		n := 1 + r.Intn(10)
		k := 1 + r.Intn(n)
		steps := 30 + r.Intn(50)
		m := core.New(core.Config{N: n, K: k, Seed: r.Uint64()})
		vals := make([]int64, n)
		for s := 0; s < steps; s++ {
			for i := range vals {
				// Small value range to force heavy tie-breaking.
				vals[i] = r.Int63n(9) - 4
			}
			got := m.Observe(vals)
			if want := Oracle(vals, k); !equalInts(got, want) {
				t.Fatalf("iter %d (n=%d k=%d): step %d got %v want %v vals %v", it, n, k, s, got, want, vals)
			}
		}
	}
}
