package sim

import (
	"strings"
	"testing"

	"repro/internal/baseline"
	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/stream"
)

func walkSrc(n int, seed uint64) stream.Source {
	return stream.NewRandomWalk(stream.WalkConfig{N: n, Lo: 0, Hi: 100000, MaxStep: 300, Seed: seed})
}

func TestRunMonitorNoErrors(t *testing.T) {
	m := core.New(core.Config{N: 12, K: 3, Seed: 1})
	rep := Run(m, walkSrc(12, 2), Config{Steps: 300, K: 3, CheckEvery: 1})
	if rep.Errors != 0 {
		t.Fatalf("monitor produced %d oracle mismatches", rep.Errors)
	}
	if rep.Steps != 300 || rep.Messages.Total() == 0 {
		t.Fatalf("report incomplete: %+v", rep)
	}
	if rep.MsgsPerStep <= 0 {
		t.Fatalf("MsgsPerStep: %v", rep.MsgsPerStep)
	}
}

func TestRunAllBaselinesNoErrors(t *testing.T) {
	algs := map[string]Algorithm{
		"naive":  baseline.NewNaive(8, 2, false),
		"change": baseline.NewNaive(8, 2, true),
		"round":  baseline.NewPerRound(8, 2, 3),
		"point":  baseline.NewPointFilter(8, 2),
		"lam":    baseline.NewLamMidpoint(8, 2),
	}
	for name, alg := range algs {
		rep := Run(alg, walkSrc(8, 4), Config{Steps: 150, K: 2, CheckEvery: 1})
		if rep.Errors != 0 {
			t.Fatalf("%s produced %d errors", name, rep.Errors)
		}
	}
}

func TestRunComputesOpt(t *testing.T) {
	m := core.New(core.Config{N: 10, K: 2, Seed: 5})
	rep := Run(m, walkSrc(10, 6), Config{Steps: 200, K: 2, CheckEvery: 1, ComputeOpt: true})
	if rep.OptSegments < 1 {
		t.Fatalf("opt segments: %d", rep.OptSegments)
	}
	if rep.CompetitiveRatio <= 0 {
		t.Fatalf("ratio: %v", rep.CompetitiveRatio)
	}
	wantRatio := float64(rep.Messages.Total()) / float64(rep.OptSegments)
	if rep.CompetitiveRatio != wantRatio {
		t.Fatalf("ratio %v, want %v", rep.CompetitiveRatio, wantRatio)
	}
}

func TestRunRecordSeries(t *testing.T) {
	m := core.New(core.Config{N: 6, K: 1, Seed: 7})
	rep := Run(m, walkSrc(6, 8), Config{Steps: 100, K: 1, RecordSeries: true})
	if len(rep.Series) != 100 {
		t.Fatalf("series length: %d", len(rep.Series))
	}
	for i := 1; i < len(rep.Series); i++ {
		if rep.Series[i] < rep.Series[i-1] {
			t.Fatalf("cumulative series must be non-decreasing at %d", i)
		}
	}
	if rep.Series[99] != rep.Messages.Total() {
		t.Fatalf("series end %d != total %d", rep.Series[99], rep.Messages.Total())
	}
}

func TestRunDetectsWrongAlgorithm(t *testing.T) {
	// A deliberately broken algorithm must be flagged by the oracle check.
	rep := Run(brokenAlg{}, walkSrc(5, 9), Config{Steps: 50, K: 2, CheckEvery: 1})
	if rep.Errors == 0 {
		t.Fatal("oracle failed to flag a broken algorithm")
	}
}

type brokenAlg struct{}

func (brokenAlg) Observe(vals []int64) []int { return []int{0, 1} }
func (brokenAlg) Counts() comm.Counts        { return comm.Counts{} }

func TestRunPanics(t *testing.T) {
	m := core.New(core.Config{N: 4, K: 1, Seed: 1})
	for i, f := range []func(){
		func() { Run(m, walkSrc(4, 1), Config{Steps: 0, K: 1}) },
		func() { Run(m, walkSrc(4, 1), Config{Steps: 10, K: 0}) },
		func() { Run(m, walkSrc(4, 1), Config{Steps: 10, K: 5}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestOracle(t *testing.T) {
	if got := Oracle([]int64{5, 30, 10, 20}, 2); !equalInts(got, []int{1, 3}) {
		t.Fatalf("oracle: %v", got)
	}
	// Ties break toward smaller ids.
	if got := Oracle([]int64{7, 7, 7}, 2); !equalInts(got, []int{0, 1}) {
		t.Fatalf("tie oracle: %v", got)
	}
}

func TestMeasureDelta(t *testing.T) {
	matrix := [][]int64{
		{100, 50, 10}, // gap between 1st and 2nd = 50 (in raw values)
		{100, 90, 10}, // gap 10
	}
	d := MeasureDelta(matrix, 1)
	// The injection multiplies raw gaps by n=3 (plus id offsets).
	if d < 3*10 || d > 3*60 {
		t.Fatalf("delta out of plausible range: %d", d)
	}
	if MeasureDelta(matrix, 3) != 0 {
		t.Fatal("k=n delta should be 0")
	}
}

func TestMeasureDeltaGrowsWithGap(t *testing.T) {
	mk := func(gap int64) int64 {
		return MeasureDelta([][]int64{{gap, 0}}, 1)
	}
	if mk(1000) <= mk(10) {
		t.Fatal("delta must grow with the configured gap")
	}
}

func TestMeasureDeltaPanics(t *testing.T) {
	for i, f := range []func(){
		func() { MeasureDelta(nil, 1) },
		func() { MeasureDelta([][]int64{{1, 2}}, 0) },
		func() { MeasureDelta([][]int64{{1, 2}}, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestDescribe(t *testing.T) {
	m := core.New(core.Config{N: 5, K: 1, Seed: 11})
	rep := Run(m, walkSrc(5, 12), Config{Steps: 50, K: 1, ComputeOpt: true})
	s := Describe("algo", rep)
	for _, frag := range []string{"algo", "steps=50", "msgs=", "ratio="} {
		if !strings.Contains(s, frag) {
			t.Fatalf("describe missing %q: %s", frag, s)
		}
	}
}

func TestFilterMonitorBeatsNaiveOnCalmInput(t *testing.T) {
	// End-to-end sanity for the paper's whole premise.
	mkSrc := func(seed uint64) stream.Source {
		return stream.NewTwoBand(stream.TwoBandConfig{N: 24, K: 4, Seed: seed, Gap: 1 << 18, BandWidth: 1 << 8, MaxStep: 3})
	}
	mon := Run(core.New(core.Config{N: 24, K: 4, Seed: 13}), mkSrc(14), Config{Steps: 500, K: 4, CheckEvery: 1})
	nai := Run(baseline.NewNaive(24, 4, false), mkSrc(14), Config{Steps: 500, K: 4, CheckEvery: 1})
	if mon.Errors != 0 || nai.Errors != 0 {
		t.Fatal("unexpected errors")
	}
	if mon.Messages.Total()*10 > nai.Messages.Total() {
		t.Fatalf("filter monitor (%d) should be >=10x cheaper than naive (%d)", mon.Messages.Total(), nai.Messages.Total())
	}
}
