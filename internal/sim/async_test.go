package sim_test

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/ingest"
	"repro/internal/netrun"
	"repro/internal/runtime"
	"repro/internal/shardrun"
	"repro/internal/sim"
	"repro/internal/stream"
	"repro/internal/transport"
)

// asyncPair builds the engine under asynchronous ingestion and its
// synchronous twin: same type, same configuration, same seed. The
// equivalence suites compare the two bit for bit, so the twin must be
// an independent instance — never a shared one.
type asyncPair struct {
	name string
	make func(tb testing.TB) (async, twin sim.AsyncEngine, done func())
}

func asyncPairs(n, k int, seed uint64, eps float64) []asyncPair {
	return []asyncPair{
		{"core", func(tb testing.TB) (sim.AsyncEngine, sim.AsyncEngine, func()) {
			a := core.New(core.Config{N: n, K: k, Seed: seed, Epsilon: eps})
			b := core.New(core.Config{N: n, K: k, Seed: seed, Epsilon: eps})
			return a, b, func() {}
		}},
		{"runtime", func(tb testing.TB) (sim.AsyncEngine, sim.AsyncEngine, func()) {
			a := runtime.New(runtime.Config{N: n, K: k, Seed: seed, Epsilon: eps})
			b := runtime.New(runtime.Config{N: n, K: k, Seed: seed, Epsilon: eps})
			return a, b, func() { a.Close(); b.Close() }
		}},
		{"netrun", func(tb testing.TB) (sim.AsyncEngine, sim.AsyncEngine, func()) {
			a := mustNet(tb, netrun.Config{N: n, K: k, Seed: seed, Epsilon: eps}, 3)
			b := mustNet(tb, netrun.Config{N: n, K: k, Seed: seed, Epsilon: eps}, 3)
			return a, b, func() { a.Close(); b.Close() }
		}},
		{"shard=1", func(tb testing.TB) (sim.AsyncEngine, sim.AsyncEngine, func()) {
			a := mustShard(tb, shardrun.Config{N: n, K: k, Seed: seed, Epsilon: eps}, 1)
			b := mustShard(tb, shardrun.Config{N: n, K: k, Seed: seed, Epsilon: eps}, 1)
			return a, b, func() { a.Close(); b.Close() }
		}},
		{"shard=2", func(tb testing.TB) (sim.AsyncEngine, sim.AsyncEngine, func()) {
			a := mustShard(tb, shardrun.Config{N: n, K: k, Seed: seed, Epsilon: eps}, 2)
			b := mustShard(tb, shardrun.Config{N: n, K: k, Seed: seed, Epsilon: eps}, 2)
			return a, b, func() { a.Close(); b.Close() }
		}},
	}
}

// asyncSrc picks the workload for one cell of the matrix: the E19-style
// drifting walk for the dense path, the sparse walk for the delta path.
func asyncSrc(n int, dense bool) stream.DeltaSource {
	if dense {
		return epsWalk(n, 5)
	}
	return stream.NewSparseWalk(stream.SparseWalkConfig{
		N: n, Changed: 3, MaxStep: 1 << 11, Lo: 1 << 18, Hi: 1 << 24, Seed: 6,
	})
}

// TestAsyncDrainEveryStepBitIdentical is the acceptance criterion of
// the async tentpole, cell by cell: for every engine × dense/delta ×
// ε ∈ {0, 0.05}, staging each observation call asynchronously and
// draining immediately must be bit-identical — reports, message counts,
// charged bytes, per-phase ledgers, stats — to the synchronous run over
// the same trace. With a barrier after every call nothing can coalesce,
// so the applied trace RunAsync replays into the twin *is* the input
// trace, and every applied batch must map one-to-one to a call.
func TestAsyncDrainEveryStepBitIdentical(t *testing.T) {
	const n, k, seed, steps = 20, 4, 33, 150
	for _, eps := range []float64{0, 0.05} {
		for _, dense := range []bool{true, false} {
			feed := map[bool]string{true: "dense", false: "delta"}[dense]
			for _, p := range asyncPairs(n, k, seed, eps) {
				p := p
				t.Run(fmtCell(p.name, feed, eps), func(t *testing.T) {
					async, twin, done := p.make(t)
					defer done()
					rep, err := sim.RunAsync(async, twin, asyncSrc(n, dense), sim.AsyncConfig{
						Steps: steps, K: k, Epsilon: eps,
						QueueDepth: n, Policy: ingest.Block,
						Dense: dense, DrainEvery: 1,
					})
					if err != nil {
						t.Fatal(err)
					}
					if rep.Batches != rep.ObserveCalls {
						t.Fatalf("drain-per-call run applied %d batches for %d calls [%s]",
							rep.Batches, rep.ObserveCalls, rep.Schedule())
					}
				})
			}
		}
	}
}

// TestAsyncRandomBarriersEquivalence is the randomized-interleaving half
// of the suite: barriers land with probability 0.2 per call (three
// schedule seeds per cell), the delta path runs at a deliberately small
// queue depth so Block backpressure and mid-run coalescing both happen,
// and at every barrier the async engine must still be bit-identical to
// the synchronous replay of its recorded applied trace — and ε-valid
// (oracle-exact at ε=0) against the applied values. Failures quote the
// recorded barrier schedule for replay.
func TestAsyncRandomBarriersEquivalence(t *testing.T) {
	const n, k, seed, steps = 20, 4, 33, 150
	for _, eps := range []float64{0, 0.05} {
		for _, dense := range []bool{true, false} {
			feed := map[bool]string{true: "dense", false: "delta"}[dense]
			depth := n
			if !dense {
				depth = 4
			}
			for _, p := range asyncPairs(n, k, seed, eps) {
				p := p
				t.Run(fmtCell(p.name, feed, eps), func(t *testing.T) {
					for schedSeed := uint64(1); schedSeed <= 3; schedSeed++ {
						async, twin, done := p.make(t)
						rep, err := sim.RunAsync(async, twin, asyncSrc(n, dense), sim.AsyncConfig{
							Steps: steps, K: k, Epsilon: eps,
							QueueDepth: depth, Policy: ingest.Block,
							Dense: dense, DrainProb: 0.2, Seed: schedSeed,
						})
						done()
						if err != nil {
							t.Fatalf("schedule seed %d: %v", schedSeed, err)
						}
						if rep.Batches > rep.ObserveCalls && dense {
							t.Fatalf("schedule seed %d: more batches (%d) than dense calls (%d) [%s]",
								schedSeed, rep.Batches, rep.ObserveCalls, rep.Schedule())
						}
					}
				})
			}
		}
	}
}

// TestAsyncDropOldestStaysValid runs the lossy policy on the delta path:
// equivalence to the applied trace must hold exactly as under Block (the
// twin replays what was *applied*, evictions included), and the report
// at every barrier must be oracle-exact for the applied values.
func TestAsyncDropOldestStaysValid(t *testing.T) {
	const n, k, seed, steps = 20, 4, 33, 200
	a := core.New(core.Config{N: n, K: k, Seed: seed})
	b := core.New(core.Config{N: n, K: k, Seed: seed})
	rep, err := sim.RunAsync(a, b, asyncSrc(n, false), sim.AsyncConfig{
		Steps: steps, K: k,
		QueueDepth: 2, Policy: ingest.DropOldest,
		DrainProb: 0.1, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Batches == 0 {
		t.Fatalf("no batches applied [%s]", rep.Schedule())
	}
}

// TestAsyncTCP pins the equivalence over a real TCP transport: the
// asynchronous netrun engine speaks to its peers over loopback sockets
// while its twin runs on in-process pipes, and the two must still be bit
// bit-identical at every barrier.
func TestAsyncTCP(t *testing.T) {
	const n, k, seed, steps, peers = 12, 3, 17, 120, 2
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ln, err := transport.Listen(ctx, "127.0.0.1:0")
	if err != nil {
		t.Skipf("cannot listen on loopback: %v", err)
	}
	defer ln.Close()
	serveErr := make(chan error, peers)
	for i := 0; i < peers; i++ {
		go func() {
			link, err := transport.Dial(ctx, ln.Addr())
			if err != nil {
				serveErr <- err
				return
			}
			serveErr <- netrun.Serve(link)
		}()
	}
	links, err := ln.AcceptN(peers)
	if err != nil {
		t.Fatal(err)
	}
	async, err := netrun.New(netrun.Config{N: n, K: k, Seed: seed}, links)
	if err != nil {
		t.Fatal(err)
	}
	twin := mustNet(t, netrun.Config{N: n, K: k, Seed: seed}, peers)
	defer twin.Close()

	rep, runErr := sim.RunAsync(async, twin, asyncSrc(n, true), sim.AsyncConfig{
		Steps: steps, K: k,
		QueueDepth: n, Policy: ingest.Block,
		Dense: true, DrainProb: 0.25, Seed: 3,
	})
	async.Close()
	if runErr != nil {
		t.Fatal(runErr)
	}
	if rep.Batches == 0 {
		t.Fatalf("no batches applied over TCP [%s]", rep.Schedule())
	}
	for i := 0; i < peers; i++ {
		if err := <-serveErr; err != nil {
			t.Errorf("peer agent: %v", err)
		}
	}
}

func fmtCell(engine, feed string, eps float64) string {
	if eps == 0 {
		return engine + "/" + feed + "/exact"
	}
	return engine + "/" + feed + "/eps"
}
