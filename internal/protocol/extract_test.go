package protocol

import (
	"testing"

	"repro/internal/comm"
	"repro/internal/order"
)

func TestGatherAllMinCorrectAndCounted(t *testing.T) {
	parts := makeParts(17, 100, 21)
	var c comm.Counter
	res := GatherAllMin(parts, &c, nil, 0)
	if want := trueMin(parts); !res.OK || res.ID != want.ID || res.Key != want.Key {
		t.Fatalf("gather-min wrong: %+v want %+v", res, want)
	}
	if c.Get(comm.Up) != 17 || c.Get(comm.Bcast) != 1 {
		t.Fatalf("gather-min counts: %v", c.Snapshot())
	}
}

func TestGatherAllMinEmpty(t *testing.T) {
	if res := GatherAllMin(nil, comm.Discard, nil, 0); res.OK {
		t.Fatal("empty gather-min should not be OK")
	}
}

func TestTopExtractWithGatherMatchesSampled(t *testing.T) {
	// Both extraction strategies must produce the same ranking; only the
	// message bill differs.
	parts := makeParts(15, 0, 22)
	sampled := TopExtract(parts, 6, 15, comm.Discard, nil, 0)

	var gc comm.Counter
	gathered := TopExtractWith(makeParts(15, 0, 22), 6, func(ps []Participant) Result {
		return GatherAll(ps, &gc, nil, 0)
	})
	if len(sampled) != len(gathered) {
		t.Fatalf("lengths differ: %d vs %d", len(sampled), len(gathered))
	}
	for i := range sampled {
		if sampled[i].ID != gathered[i].ID || sampled[i].Key != gathered[i].Key {
			t.Fatalf("rank %d differs: %+v vs %+v", i, sampled[i], gathered[i])
		}
	}
	// Gather extraction sends every remaining participant each time:
	// 15 + 14 + 13 + 12 + 11 + 10 = 75 up messages.
	if gc.Get(comm.Up) != 75 {
		t.Fatalf("gather extraction up messages: %d", gc.Get(comm.Up))
	}
}

func TestTopExtractWithStopsWhenExhausted(t *testing.T) {
	res := TopExtractWith(makeParts(3, 0, 23), 10, func(ps []Participant) Result {
		return GatherAll(ps, comm.Discard, nil, 0)
	})
	if len(res) != 3 {
		t.Fatalf("extracted %d, want 3", len(res))
	}
}

func TestMinimumWithLooseBound(t *testing.T) {
	parts := makeParts(9, -50, 24)
	var c comm.Counter
	res := Minimum(parts, 64, &c, nil, 0)
	if want := trueMin(parts); res.ID != want.ID {
		t.Fatalf("minimum with loose bound wrong: %+v", res)
	}
	if c.Get(comm.Bcast) != int64(Rounds(64)) {
		t.Fatalf("broadcast rounds should follow the bound: %v", c.Snapshot())
	}
}

func TestMinimumSentinelKeys(t *testing.T) {
	// Keys far into the negative range must survive the negation trick.
	parts := []Participant{
		{ID: 0, Key: order.Key(-1 << 40), RNG: makeParts(1, 0, 25)[0].RNG},
		{ID: 1, Key: order.Key(-1 << 50), RNG: makeParts(1, 0, 26)[0].RNG},
	}
	res := Minimum(parts, 2, comm.Discard, nil, 0)
	if res.ID != 1 {
		t.Fatalf("extreme negative minimum wrong: %+v", res)
	}
}
