package protocol

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/comm"
	"repro/internal/order"
	"repro/internal/rng"
)

// makeParts builds participants holding a random permutation of the keys
// base+1 .. base+n with per-node generators split from seed.
func makeParts(n int, base int64, seed uint64) []Participant {
	root := rng.New(seed, 0)
	perm := root.Perm(n)
	parts := make([]Participant, n)
	for i := 0; i < n; i++ {
		parts[i] = Participant{
			ID:  i,
			Key: order.Key(base + int64(perm[i]) + 1),
			RNG: root.Split(uint64(i)),
		}
	}
	return parts
}

func trueMax(parts []Participant) Participant {
	best := parts[0]
	for _, p := range parts {
		if p.Key > best.Key {
			best = p
		}
	}
	return best
}

func trueMin(parts []Participant) Participant {
	best := parts[0]
	for _, p := range parts {
		if p.Key < best.Key {
			best = p
		}
	}
	return best
}

func TestRounds(t *testing.T) {
	cases := map[int]int{1: 1, 2: 2, 3: 3, 4: 3, 5: 4, 8: 4, 9: 5, 1024: 11}
	for n, want := range cases {
		if got := Rounds(n); got != want {
			t.Fatalf("Rounds(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestRoundsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Rounds(0)
}

func TestMaximumAlwaysCorrect(t *testing.T) {
	// Las Vegas property: across many seeds and sizes the protocol must
	// always return the true maximum.
	for seed := uint64(0); seed < 50; seed++ {
		n := int(seed%37) + 1
		parts := makeParts(n, int64(seed)*1000, seed)
		var c comm.Counter
		res := Maximum(parts, n, &c, nil, 0)
		want := trueMax(parts)
		if !res.OK || res.ID != want.ID || res.Key != want.Key {
			t.Fatalf("seed %d n %d: got (%d,%d), want (%d,%d)", seed, n, res.ID, res.Key, want.ID, want.Key)
		}
	}
}

func TestMinimumAlwaysCorrect(t *testing.T) {
	for seed := uint64(0); seed < 50; seed++ {
		n := int(seed%29) + 1
		parts := makeParts(n, -500, seed+100)
		var c comm.Counter
		res := Minimum(parts, n, &c, nil, 0)
		want := trueMin(parts)
		if !res.OK || res.ID != want.ID || res.Key != want.Key {
			t.Fatalf("seed %d: got (%d,%d), want (%d,%d)", seed, res.ID, res.Key, want.ID, want.Key)
		}
	}
}

func TestMaximumWithLooseBound(t *testing.T) {
	// The population bound may exceed the participant count (Algorithm 1
	// invokes MAXIMUMPROTOCOL(n-k) on fewer violators). Correctness must
	// be unaffected.
	parts := makeParts(10, 0, 42)
	var c comm.Counter
	res := Maximum(parts, 1000, &c, nil, 0)
	if want := trueMax(parts); res.ID != want.ID {
		t.Fatalf("loose bound broke correctness: %+v", res)
	}
	if res.Rounds != Rounds(1000) {
		t.Fatalf("rounds should follow the bound: %d", res.Rounds)
	}
}

func TestMaximumEmpty(t *testing.T) {
	var c comm.Counter
	res := Maximum(nil, 5, &c, nil, 0)
	if res.OK {
		t.Fatal("empty participant set should not return OK")
	}
	if c.Total() != 0 {
		t.Fatalf("empty protocol should be free: %d msgs", c.Total())
	}
}

func TestMaximumBoundPanics(t *testing.T) {
	parts := makeParts(5, 0, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for bound below participant count")
		}
	}()
	Maximum(parts, 4, comm.Discard, nil, 0)
}

func TestMaximumSingleParticipant(t *testing.T) {
	parts := makeParts(1, 7, 3)
	var c comm.Counter
	res := Maximum(parts, 1, &c, nil, 0)
	if !res.OK || res.ID != 0 {
		t.Fatalf("single participant: %+v", res)
	}
	// One round with p = 1: exactly one up message, one broadcast.
	if c.Get(comm.Up) != 1 || c.Get(comm.Bcast) != 1 {
		t.Fatalf("single participant counts: %v", c.Snapshot())
	}
}

func TestMaximumExpectedMessages(t *testing.T) {
	// Theorem 4.2: E[up messages] <= 2*log2(N) + 1. Check the empirical
	// mean over many trials stays below the bound (with slack for noise).
	for _, n := range []int{16, 64, 256, 1024} {
		const trials = 300
		total := 0.0
		for trial := 0; trial < trials; trial++ {
			parts := makeParts(n, 0, uint64(n*1000+trial))
			var c comm.Counter
			Maximum(parts, n, &c, nil, 0)
			total += float64(c.Get(comm.Up))
		}
		mean := total / trials
		bound := 2*math.Log2(float64(n)) + 1
		if mean > bound {
			t.Fatalf("n=%d: mean up messages %.2f exceeds theorem bound %.2f", n, mean, bound)
		}
		if mean < 1 {
			t.Fatalf("n=%d: mean %.2f implausibly low", n, mean)
		}
	}
}

func TestMaximumBroadcastCount(t *testing.T) {
	parts := makeParts(100, 0, 9)
	var c comm.Counter
	res := Maximum(parts, 100, &c, nil, 0)
	if want := int64(Rounds(100)); c.Get(comm.Bcast) != want {
		t.Fatalf("broadcasts = %d, want %d", c.Get(comm.Bcast), want)
	}
	if res.Rounds != Rounds(100) {
		t.Fatalf("rounds = %d", res.Rounds)
	}
}

func TestMaximumTraceEvents(t *testing.T) {
	parts := makeParts(8, 0, 5)
	tr := comm.NewTrace(1000)
	Maximum(parts, 8, comm.Discard, tr, 7)
	if tr.Len() == 0 {
		t.Fatal("trace should capture events")
	}
	for _, e := range tr.Events() {
		if e.Step != 7 {
			t.Fatalf("event step not tagged: %+v", e)
		}
	}
}

func TestSamplerDeactivation(t *testing.T) {
	rg := rng.New(1, 1)
	s := NewSampler(10, 4)
	if !s.Active() {
		t.Fatal("fresh sampler should be active")
	}
	// A broadcast best above the key deactivates without sending.
	if s.Round(20, 0, rg) {
		t.Fatal("dominated node must not send")
	}
	if s.Active() {
		t.Fatal("dominated node must deactivate")
	}
	// Subsequent rounds are inert.
	if s.Round(order.NegInf, 3, rg) {
		t.Fatal("inactive sampler must not send")
	}
}

func TestSamplerFinalRoundSends(t *testing.T) {
	rg := rng.New(2, 2)
	// Final round for bound 8 is r = 3 with p = 1.
	s := NewSampler(10, 8)
	if !s.Round(order.NegInf, 3, rg) {
		t.Fatal("final round has p=1 and must send")
	}
	if s.Active() {
		t.Fatal("sender must deactivate")
	}
}

func TestSamplerBoundaryEqualBest(t *testing.T) {
	rg := rng.New(3, 3)
	// best == key keeps the node active (strict comparison in the paper).
	s := NewSampler(10, 1)
	if !s.Round(10, 0, rg) {
		t.Fatal("bound 1 round 0 has p=1; node with key == best must still send")
	}
}

func TestSamplerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewSampler(1, 0)
}

func TestTopExtractDescending(t *testing.T) {
	parts := makeParts(20, 0, 11)
	var c comm.Counter
	res := TopExtract(parts, 5, 20, &c, nil, 0)
	if len(res) != 5 {
		t.Fatalf("extracted %d, want 5", len(res))
	}
	for i := 1; i < len(res); i++ {
		if res[i].Key >= res[i-1].Key {
			t.Fatalf("not descending: %+v", res)
		}
	}
	// Must be the true top-5.
	want := append([]Participant(nil), parts...)
	for i := 0; i < len(want); i++ {
		for j := i + 1; j < len(want); j++ {
			if want[j].Key > want[i].Key {
				want[i], want[j] = want[j], want[i]
			}
		}
	}
	for i := 0; i < 5; i++ {
		if res[i].ID != want[i].ID {
			t.Fatalf("rank %d: got node %d, want %d", i, res[i].ID, want[i].ID)
		}
	}
}

func TestTopExtractMoreThanAvailable(t *testing.T) {
	parts := makeParts(3, 0, 12)
	res := TopExtract(parts, 10, 3, comm.Discard, nil, 0)
	if len(res) != 3 {
		t.Fatalf("extracted %d, want all 3", len(res))
	}
}

func TestTopExtractZero(t *testing.T) {
	parts := makeParts(3, 0, 13)
	if res := TopExtract(parts, 0, 3, comm.Discard, nil, 0); len(res) != 0 {
		t.Fatalf("zero extraction returned %d", len(res))
	}
}

func TestTopExtractNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	TopExtract(nil, -1, 1, comm.Discard, nil, 0)
}

func TestGatherAllCounts(t *testing.T) {
	parts := makeParts(25, 0, 14)
	var c comm.Counter
	res := GatherAll(parts, &c, nil, 0)
	if want := trueMax(parts); res.ID != want.ID {
		t.Fatalf("gather wrong winner: %+v", res)
	}
	if c.Get(comm.Up) != 25 || c.Get(comm.Bcast) != 1 {
		t.Fatalf("gather counts: %v", c.Snapshot())
	}
}

func TestGatherAllEmpty(t *testing.T) {
	if res := GatherAll(nil, comm.Discard, nil, 0); res.OK {
		t.Fatal("empty gather should not be OK")
	}
}

func TestSequentialMaximaCorrectAndLogarithmic(t *testing.T) {
	const n, trials = 1024, 200
	total := 0.0
	for trial := 0; trial < trials; trial++ {
		parts := makeParts(n, 0, uint64(5000+trial))
		var c comm.Counter
		res := SequentialMaxima(parts, &c, nil, 0)
		if want := trueMax(parts); res.ID != want.ID {
			t.Fatalf("sequential maxima wrong winner")
		}
		total += float64(c.Get(comm.Up))
	}
	mean := total / trials
	// Expected number of left-to-right maxima is H_n ≈ ln n ≈ 6.93.
	want := math.Log(float64(n))
	if mean < want-1.5 || mean > want+2.5 {
		t.Fatalf("left-to-right maxima mean %.2f far from H_n ≈ %.2f", mean, want)
	}
}

func TestSequentialMaximaEmpty(t *testing.T) {
	if res := SequentialMaxima(nil, comm.Discard, nil, 0); res.OK {
		t.Fatal("empty should not be OK")
	}
}

func TestDomainSearchCorrect(t *testing.T) {
	for seed := uint64(0); seed < 20; seed++ {
		n := int(seed%15) + 1
		parts := makeParts(n, 100, seed)
		var c comm.Counter
		res := DomainSearch(parts, 0, 2000, &c, nil, 0)
		if want := trueMax(parts); res.ID != want.ID || res.Key != want.Key {
			t.Fatalf("seed %d: domain search wrong: %+v want %+v", seed, res, want)
		}
	}
}

func TestDomainSearchPanics(t *testing.T) {
	parts := makeParts(3, 100, 1)
	for i, f := range []func(){
		func() { DomainSearch(parts, 10, 5, comm.Discard, nil, 0) },
		func() { DomainSearch(parts, 0, 50, comm.Discard, nil, 0) }, // keys outside domain
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestDomainSearchEmpty(t *testing.T) {
	if res := DomainSearch(nil, 0, 10, comm.Discard, nil, 0); res.OK {
		t.Fatal("empty should not be OK")
	}
}

func TestMaximumPropertyRandomKeys(t *testing.T) {
	// Arbitrary (possibly negative, non-contiguous) distinct keys.
	r := rng.New(99, 0)
	check := func(nRaw uint8) bool {
		n := int(nRaw%50) + 1
		used := make(map[order.Key]bool)
		parts := make([]Participant, n)
		for i := 0; i < n; i++ {
			k := order.Key(r.Int63n(1<<40) - 1<<39)
			for used[k] {
				k++
			}
			used[k] = true
			parts[i] = Participant{ID: i, Key: k, RNG: r.Split(uint64(i) + 1)}
		}
		res := Maximum(parts, n, comm.Discard, nil, 0)
		return res.OK && res.ID == trueMax(parts).ID
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestMaximumDeterministicGivenSeeds(t *testing.T) {
	// Identical participants (same RNG seeds) must reproduce identical
	// message counts — the property the engine-equivalence tests rely on.
	mk := func() []Participant { return makeParts(64, 0, 777) }
	var c1, c2 comm.Counter
	Maximum(mk(), 64, &c1, nil, 0)
	Maximum(mk(), 64, &c2, nil, 0)
	if c1.Snapshot() != c2.Snapshot() {
		t.Fatalf("non-deterministic counts: %v vs %v", c1.Snapshot(), c2.Snapshot())
	}
}
