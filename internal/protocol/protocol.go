// Package protocol implements the distributed maximum/minimum computation
// of the paper's §4 (Algorithm 2, MAXIMUMPROTOCOL) together with the
// baseline protocols used in experiments: gather-everything, the
// sequential-probe scheme underlying the Ω(log n) lower bound of Theorem
// 4.3, and a shout-echo style domain binary search from the related work.
//
// Algorithm 2 proceeds in rounds r = 0..ceil(log2 N). In round r every
// still-active node whose key exceeds the best value broadcast so far
// sends its key to the coordinator with probability min(1, 2^r/N) and
// deactivates itself afterwards; nodes whose key is below the broadcast
// best silently deactivate. The final round has sending probability 1, so
// the protocol is Las Vegas: the result is always the true maximum and
// only the message count is random. Theorem 4.2 bounds the expected number
// of node-to-coordinator messages by 2·log2(N) + 1.
//
// The node-side per-round behaviour lives in Sampler so that the
// sequential engine (this package's Maximum) and the sharded concurrent
// runtime (internal/runtime) share one implementation and can be checked
// for message-count equivalence under identical seeds.
//
// For the ε-approximate mode (arXiv:1601.04448), an execution may run
// with a tolerance (NewSamplerTol, MaximumTol/MinimumTol): participants
// retire from the remaining rounds early once the broadcast best is
// within the (1±ε) band of their own key, trading the exactness of the
// result — the winner is then only guaranteed ε-close to the true
// extremum — for fewer expected bids. A zero tolerance is bit-identical
// to the exact protocol, randomness consumption included.
package protocol

import (
	"fmt"
	"math/bits"

	"repro/internal/comm"
	"repro/internal/order"
	"repro/internal/rng"
	"repro/internal/wire"
)

// Participant describes one node taking part in a protocol execution at a
// fixed time instant: its id, its current key, and its private generator
// for the Bernoulli trials the paper's node model provides.
type Participant struct {
	ID  int
	Key order.Key
	RNG *rng.RNG
}

// Result is the outcome of one protocol execution.
type Result struct {
	// OK is false when the participant set was empty; the remaining fields
	// are then meaningless.
	OK bool
	// ID and Key identify the winning node and its value.
	ID  int
	Key order.Key
	// Rounds is the number of broadcast rounds executed.
	Rounds int
}

// Rounds returns the number of sampling rounds Algorithm 2 executes for an
// upper bound of n participants: ceil(log2 n) + 1 (rounds 0..ceil(log2 n)).
// It panics for n <= 0.
func Rounds(n int) int {
	return ceilLog2(n) + 1
}

func ceilLog2(n int) int {
	if n <= 0 {
		panic("protocol: population bound must be positive")
	}
	if n == 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

// Sampler is the node-local state of one MAXIMUMPROTOCOL execution. A
// fresh Sampler is active; Round advances it by one protocol round.
type Sampler struct {
	key    order.Key
	bound  uint64
	tol    order.Tol
	active bool
}

// NewSampler creates the node-side state for an exact protocol execution
// with the given local key and population upper bound N (the protocol
// parameter).
func NewSampler(key order.Key, bound int) Sampler {
	return NewSamplerTol(key, bound, order.Tol{})
}

// NewSamplerTol creates the node-side state for an ε-tolerant execution:
// the node additionally retires from the remaining rounds as soon as the
// broadcast best is within the (1±ε) band of its own key — it cannot
// improve the result by more than the tolerance, so it stops bidding
// early. With a zero tolerance the behaviour (and, crucially, the
// randomness consumption) is bit-identical to NewSampler.
func NewSamplerTol(key order.Key, bound int, tol order.Tol) Sampler {
	if bound <= 0 {
		panic("protocol: sampler bound must be positive")
	}
	return Sampler{key: key, bound: uint64(bound), tol: tol, active: true}
}

// Active reports whether the node still participates.
func (s *Sampler) Active() bool { return s.active }

// Round processes round r given the best key broadcast by the coordinator
// so far (order.NegInf before the first round). It returns true when the
// node sends its key this round. Nodes that observe a broadcast best above
// their own key — above the upper band end of the best, for tolerant
// executions — deactivate without sending (Algorithm 2 lines 8-10); nodes
// that send deactivate immediately afterwards (line 14). A tolerant
// execution therefore guarantees that every participant's key is at most
// WidenHi(winner key) in the comparison domain, rather than at most the
// winner key exactly.
func (s *Sampler) Round(best order.Key, r uint, rg *rng.RNG) bool {
	if !s.active {
		return false
	}
	if s.tol.WidenHi(best) > s.key {
		s.active = false
		return false
	}
	if rg.BernoulliPow2(r, s.bound) {
		s.active = false
		return true
	}
	return false
}

// Scratch holds reusable per-execution buffers so that a protocol run on a
// hot path performs no heap allocation. The zero value is ready to use; a
// Scratch may be reused across executions but not shared concurrently.
type Scratch struct {
	samplers []Sampler
}

// Maximum executes Algorithm 2 over the given participants with population
// upper bound N >= len(parts), recording one Up message per node send and
// one Bcast per round on rec. step tags optional trace events with the
// simulation time. The empty participant set yields Result{OK: false} and
// no messages.
func Maximum(parts []Participant, bound int, rec comm.Recorder, tr *comm.Trace, step int64) Result {
	return run(parts, bound, order.Tol{}, rec, tr, step, false, nil)
}

// Minimum is the order-dual of Maximum: it executes Algorithm 2 on negated
// keys, returning the participant holding the smallest key.
func Minimum(parts []Participant, bound int, rec comm.Recorder, tr *comm.Trace, step int64) Result {
	return run(parts, bound, order.Tol{}, rec, tr, step, true, nil)
}

// Maximum is Maximum using s's buffers: allocation-free once the buffers
// have grown to the largest participant count seen.
func (s *Scratch) Maximum(parts []Participant, bound int, rec comm.Recorder, tr *comm.Trace, step int64) Result {
	return run(parts, bound, order.Tol{}, rec, tr, step, false, s)
}

// Minimum is Minimum using s's buffers.
func (s *Scratch) Minimum(parts []Participant, bound int, rec comm.Recorder, tr *comm.Trace, step int64) Result {
	return run(parts, bound, order.Tol{}, rec, tr, step, true, s)
}

// MaximumTol is Maximum with ε-tolerant samplers: the winner's key is
// within the (1±ε) band of the true maximum and every participant's key
// is at most WidenHi(winner key), with correspondingly fewer expected
// bids. A zero tolerance is bit-identical to Maximum.
func (s *Scratch) MaximumTol(parts []Participant, bound int, tol order.Tol, rec comm.Recorder, tr *comm.Trace, step int64) Result {
	return run(parts, bound, tol, rec, tr, step, false, s)
}

// MinimumTol is the order-dual of MaximumTol.
func (s *Scratch) MinimumTol(parts []Participant, bound int, tol order.Tol, rec comm.Recorder, tr *comm.Trace, step int64) Result {
	return run(parts, bound, tol, rec, tr, step, true, s)
}

// Exec is the coordinator-side round driver of one Algorithm 2 execution:
// it tracks the best value broadcast so far, charges one Up per delivered
// bid and one Bcast per finished round, and remembers the winner. It is
// the single copy of that loop shared by every execution substrate — the
// in-process run below, the sharded channel engine (internal/runtime), the
// networked engine (internal/netrun) and the shard agents
// (internal/shardrun) all drive it:
//
//	ex := protocol.NewExec(bound, minimum, rec, nil, step)
//	for ex.More() {
//	    r, best := ex.Round(), ex.Best()
//	    // substrate-specific: run sampler round r against best on the
//	    // cohort, delivering every send in ascending node-id order
//	    ex.Bid(id, key) // per send
//	    ex.EndRound()
//	}
//	res := ex.Result()
//
// Bids within a round must be delivered in ascending node id order — the
// order every engine's fan-in produces — so that ties (possible only
// before the distinctness injection is established) resolve identically
// everywhere.
type Exec struct {
	minimum bool
	rounds  int
	r       int
	step    int64
	rec     comm.Recorder
	tr      *comm.Trace

	best   order.Key // running best in the comparison domain
	winID  int
	winKey order.Key
	any    bool
}

// NewExec starts one execution with the given population bound, in the
// minimum (order-dual) sense when minimum is set, charging onto rec and
// optionally tracing with the given step tag.
func NewExec(bound int, minimum bool, rec comm.Recorder, tr *comm.Trace, step int64) Exec {
	return Exec{
		minimum: minimum,
		rounds:  Rounds(bound),
		step:    step,
		rec:     rec,
		tr:      tr,
		best:    order.NegInf,
		winID:   -1,
		winKey:  order.NegInf,
	}
}

// More reports whether another round remains to be executed.
func (e *Exec) More() bool { return e.r < e.rounds }

// Round returns the index of the current round.
func (e *Exec) Round() int { return e.r }

// Best returns the best value broadcast at the end of the previous round
// (the paper's max_{r-1}), in the execution's comparison domain — the
// value the current round's sampler decisions compare against.
func (e *Exec) Best() order.Key { return e.best }

// Bid delivers one node's send of the current round: it charges the Up
// message and advances the running best. key is the node's true key; the
// order-dual negation for minimum executions happens internally.
func (e *Exec) Bid(id int, key order.Key) {
	comm.RecordSized(e.rec, comm.Up, 1, wire.SizeBid(id, int64(key)))
	e.tr.Append(comm.Event{Step: e.step, Kind: comm.Up, From: id, To: comm.Coordinator, Payload: int64(key), Note: "proto send"})
	e.any = true
	cmp := key
	if e.minimum {
		cmp = order.Neg(cmp)
	}
	if cmp > e.best {
		e.best = cmp
		e.winID = id
		e.winKey = key
	}
}

// EndRound closes the current round: it charges the end-of-round broadcast
// (carrying the running best, updated with this round's bids) and advances
// to the next round.
func (e *Exec) EndRound() {
	if !e.More() {
		panic("protocol: EndRound past the final round")
	}
	comm.RecordSized(e.rec, comm.Bcast, 1, wire.SizeBest(e.r, int64(e.best)))
	e.tr.Append(comm.Event{Step: e.step, Kind: comm.Bcast, From: comm.Coordinator, To: comm.Everyone, Payload: int64(e.best), Note: "proto round"})
	e.r++
}

// Result returns the execution's outcome: OK is false when no participant
// ever sent (the cohort was empty).
func (e *Exec) Result() Result {
	if !e.any {
		return Result{OK: false, ID: -1, Key: order.NegInf, Rounds: e.r}
	}
	return Result{OK: true, ID: e.winID, Key: e.winKey, Rounds: e.r}
}

func run(parts []Participant, bound int, tol order.Tol, rec comm.Recorder, tr *comm.Trace, step int64, negate bool, s *Scratch) Result {
	if len(parts) == 0 {
		return Result{OK: false, ID: -1, Key: order.NegInf}
	}
	if bound < len(parts) {
		panic(fmt.Sprintf("protocol: bound %d below participant count %d", bound, len(parts)))
	}
	key := func(p Participant) order.Key {
		if negate {
			return order.Neg(p.Key)
		}
		return p.Key
	}
	var samplers []Sampler
	if s != nil {
		if cap(s.samplers) < len(parts) {
			s.samplers = make([]Sampler, len(parts))
		}
		samplers = s.samplers[:len(parts)]
	} else {
		samplers = make([]Sampler, len(parts))
	}
	for i, p := range parts {
		samplers[i] = NewSamplerTol(key(p), bound, tol)
	}
	ex := NewExec(bound, negate, rec, tr, step)
	for ex.More() {
		r, roundBest := ex.Round(), ex.Best()
		for i, p := range parts {
			if samplers[i].Round(roundBest, uint(r), p.RNG) {
				ex.Bid(p.ID, p.Key)
			}
		}
		ex.EndRound()
	}
	// The final round samples with probability 1, so every participant not
	// dominated earlier has sent; the tracked winner is the true extremum.
	return ex.Result()
}

// Extractor computes the maximum over a participant set; Maximum and
// GatherAll (suitably curried) both fit.
type Extractor func(parts []Participant) Result

// TopExtract repeatedly applies Maximum to find the `count` largest keys in
// descending order, excluding prior winners, exactly as FILTERRESET does
// (Algorithm 1 lines 37-39). Each application uses the same population
// bound. If fewer than count participants exist, all of them are returned.
func TopExtract(parts []Participant, count, bound int, rec comm.Recorder, tr *comm.Trace, step int64) []Result {
	return TopExtractWith(parts, count, func(ps []Participant) Result {
		return Maximum(ps, bound, rec, tr, step)
	})
}

// TopExtractWith is TopExtract parameterized over the maximum protocol, for
// the gather-all ablation.
func TopExtractWith(parts []Participant, count int, extract Extractor) []Result {
	if count < 0 {
		panic("protocol: negative extraction count")
	}
	remaining := append([]Participant(nil), parts...)
	out := make([]Result, 0, count)
	for len(out) < count && len(remaining) > 0 {
		res := extract(remaining)
		out = append(out, res)
		for i, p := range remaining {
			if p.ID == res.ID {
				remaining = append(remaining[:i], remaining[i+1:]...)
				break
			}
		}
	}
	return out
}

// GatherAll is the naive protocol: every participant sends its key once and
// the coordinator takes the maximum locally. It uses exactly len(parts) Up
// messages plus one broadcast to announce the query, and serves as the
// trivially correct baseline.
func GatherAll(parts []Participant, rec comm.Recorder, tr *comm.Trace, step int64) Result {
	if len(parts) == 0 {
		return Result{OK: false, ID: -1, Key: order.NegInf}
	}
	comm.RecordSized(rec, comm.Bcast, 1, wire.SizeQuery())
	tr.Append(comm.Event{Step: step, Kind: comm.Bcast, From: comm.Coordinator, To: comm.Everyone, Note: "gather"})
	best := parts[0]
	for _, p := range parts {
		comm.RecordSized(rec, comm.Up, 1, wire.SizeBid(p.ID, int64(p.Key)))
		if p.Key > best.Key {
			best = p
		}
	}
	return Result{OK: true, ID: best.ID, Key: best.Key, Rounds: 1}
}

// GatherAllMin is the order-dual of GatherAll: every participant sends and
// the coordinator takes the minimum.
func GatherAllMin(parts []Participant, rec comm.Recorder, tr *comm.Trace, step int64) Result {
	if len(parts) == 0 {
		return Result{OK: false, ID: -1, Key: order.NegInf}
	}
	comm.RecordSized(rec, comm.Bcast, 1, wire.SizeQuery())
	tr.Append(comm.Event{Step: step, Kind: comm.Bcast, From: comm.Coordinator, To: comm.Everyone, Note: "gather-min"})
	best := parts[0]
	for _, p := range parts {
		comm.RecordSized(rec, comm.Up, 1, wire.SizeBid(p.ID, int64(p.Key)))
		if p.Key < best.Key {
			best = p
		}
	}
	return Result{OK: true, ID: best.ID, Key: best.Key, Rounds: 1}
}

// SequentialMaxima models the optimal deterministic probing scheme from the
// proof of Theorem 4.3: the coordinator visits nodes in the given order and
// a node replies only when its key exceeds the running maximum (the
// coordinator keeps nodes informed of the running maximum for free in this
// accounting, matching the proof's "skipping nodes that cannot deliver new
// information"). The number of Up messages is therefore the number of
// left-to-right maxima of the key sequence, whose expectation on a random
// permutation is the harmonic number H_n = Θ(log n) — the quantity the
// lower bound is built from.
func SequentialMaxima(parts []Participant, rec comm.Recorder, tr *comm.Trace, step int64) Result {
	if len(parts) == 0 {
		return Result{OK: false, ID: -1, Key: order.NegInf}
	}
	best := parts[0]
	first := true
	for _, p := range parts {
		if first || p.Key > best.Key {
			comm.RecordSized(rec, comm.Up, 1, wire.SizeBid(p.ID, int64(p.Key)))
			tr.Append(comm.Event{Step: step, Kind: comm.Up, From: p.ID, To: comm.Coordinator, Payload: int64(p.Key), Note: "seq maxima"})
			best = p
			first = false
		}
	}
	return Result{OK: true, ID: best.ID, Key: best.Key, Rounds: len(parts)}
}

// DomainSearch finds the maximum by shout-echo style binary search over the
// key domain [lo, hi]: the coordinator broadcasts a threshold, every node
// above it replies, and the search narrows until a single node remains.
// This is the style of selection protocol from the shout-echo literature
// the paper contrasts with ([13, 14]); it minimizes rounds, not messages,
// and serves as an ablation baseline. Keys must lie within [lo, hi].
func DomainSearch(parts []Participant, lo, hi order.Key, rec comm.Recorder, tr *comm.Trace, step int64) Result {
	if len(parts) == 0 {
		return Result{OK: false, ID: -1, Key: order.NegInf}
	}
	if lo > hi {
		panic("protocol: DomainSearch with inverted domain")
	}
	rounds := 0
	// Invariant: the maximum key lies in [lo, hi] and above is the set of
	// nodes known to be > lo (candidates for the maximum).
	for lo < hi {
		mid := order.Midpoint(lo, hi)
		rounds++
		comm.RecordSized(rec, comm.Bcast, 1, wire.SizeMidpoint(int64(mid)))
		tr.Append(comm.Event{Step: step, Kind: comm.Bcast, From: comm.Coordinator, To: comm.Everyone, Payload: int64(mid), Note: "domain search"})
		any := false
		for _, p := range parts {
			if p.Key > mid {
				comm.RecordSized(rec, comm.Up, 1, wire.SizePresence(p.ID))
				any = true
			}
		}
		if any {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	// lo == hi == the maximum key; find its holder locally.
	for _, p := range parts {
		if p.Key == lo {
			return Result{OK: true, ID: p.ID, Key: p.Key, Rounds: rounds}
		}
	}
	panic("protocol: DomainSearch domain did not contain all keys")
}
