package coord

import (
	"slices"
	"testing"
)

func TestPendingLastWriteWins(t *testing.T) {
	p := NewPending(8, 8)
	if c := p.Put(3, 10); c {
		t.Fatal("first Put reported coalesced")
	}
	if c := p.Put(3, 20); !c {
		t.Fatal("second Put of the same node did not coalesce")
	}
	if p.Len() != 1 {
		t.Fatalf("Len = %d after coalescing, want 1", p.Len())
	}
	if v := p.Value(3); v != 20 {
		t.Fatalf("Value(3) = %d, want the newest observation 20", v)
	}
	ids, vals := p.Take(nil, nil)
	if !slices.Equal(ids, []int{3}) || !slices.Equal(vals, []int64{20}) {
		t.Fatalf("Take = %v/%v, want [3]/[20]", ids, vals)
	}
}

func TestPendingDepthBoundAndFull(t *testing.T) {
	p := NewPending(16, 3)
	for i := 0; i < 3; i++ {
		p.Put(i, int64(i))
	}
	if !p.Full() {
		t.Fatal("buffer with Cap distinct nodes not Full")
	}
	// Coalescing never needs space: Put on a queued node works while full.
	p.Put(1, 100)
	if p.Len() != 3 {
		t.Fatalf("Len = %d, want 3", p.Len())
	}
	// A new node on a full buffer is a caller bug and must panic.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Put of a new node on a full buffer did not panic")
			}
		}()
		p.Put(9, 9)
	}()
}

func TestPendingDepthCappedAtN(t *testing.T) {
	if c := NewPending(4, 100).Cap(); c != 4 {
		t.Fatalf("Cap = %d, want capped at n=4", c)
	}
}

// TestPendingEvictionOrder pins first-queued-first-evicted, and that
// coalescing does not refresh a node's queue position: the oldest node
// is the one whose first un-applied observation is stalest, even if it
// was overwritten since.
func TestPendingEvictionOrder(t *testing.T) {
	p := NewPending(8, 3)
	p.Put(5, 1)
	p.Put(2, 2)
	p.Put(7, 3)
	p.Put(5, 99) // coalesce: must NOT move node 5 to the back
	id, v := p.EvictOldest()
	if id != 5 || v != 99 {
		t.Fatalf("EvictOldest = (%d, %d), want node 5 with its newest value 99", id, v)
	}
	if id, _ = p.EvictOldest(); id != 2 {
		t.Fatalf("second eviction = node %d, want 2", id)
	}
	// The ring must stay coherent across wrap-around.
	p.Put(1, 10)
	p.Put(4, 11)
	ids, vals := p.Take(nil, nil)
	if !slices.Equal(ids, []int{1, 4, 7}) {
		t.Fatalf("Take ids = %v, want ascending [1 4 7]", ids)
	}
	if !slices.Equal(vals, []int64{10, 11, 3}) {
		t.Fatalf("Take vals = %v, want [10 11 3]", vals)
	}
}

func TestPendingTakeSortedAndClears(t *testing.T) {
	p := NewPending(10, 10)
	for _, id := range []int{7, 1, 9, 0, 4} {
		p.Put(id, int64(id)*10)
	}
	ids, vals := p.Take(make([]int, 0, 10), make([]int64, 0, 10))
	if !slices.IsSorted(ids) {
		t.Fatalf("Take ids not ascending: %v", ids)
	}
	for j, id := range ids {
		if vals[j] != int64(id)*10 {
			t.Fatalf("Take vals misaligned at %d: id %d has %d", j, id, vals[j])
		}
	}
	if p.Len() != 0 {
		t.Fatalf("Len = %d after Take, want 0", p.Len())
	}
	// Idempotence: a second Take yields nothing.
	if ids2, _ := p.Take(nil, nil); len(ids2) != 0 {
		t.Fatalf("second Take returned %v, want empty", ids2)
	}
	// And the buffer is fully reusable after clearing.
	p.Put(3, 3)
	if ids3, _ := p.Take(nil, nil); !slices.Equal(ids3, []int{3}) {
		t.Fatalf("Take after reuse = %v, want [3]", ids3)
	}
}

func TestPendingConstructorPanics(t *testing.T) {
	for _, tc := range []struct{ n, depth int }{{0, 1}, {-1, 1}, {4, 0}, {4, -2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewPending(%d, %d) did not panic", tc.n, tc.depth)
				}
			}()
			NewPending(tc.n, tc.depth)
		}()
	}
}

// FuzzCoalesce drives a Pending buffer with an arbitrary op sequence
// against a reference model (a map plus an explicit queue-order list,
// with DropOldest overflow) and pins the coalescing contract: the depth
// bound is never exceeded, last-write-wins per node, eviction order is
// first-queued, and the decode→apply round trip is idempotent — applying
// Take's batch to a dense mirror yields exactly the model state, and a
// second Take is empty.
func FuzzCoalesce(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9})
	f.Add([]byte{1, 1, 1, 1, 1, 1})
	f.Add([]byte{255, 0, 128, 7, 7, 7, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		const n, depth = 8, 3
		p := NewPending(n, depth)
		model := make(map[int]int64)
		var order []int // queue order of the model

		for i := 0; i+1 < len(data); i += 2 {
			id := int(data[i]) % n
			v := int64(int8(data[i+1]))
			if _, queued := model[id]; !queued && len(order) == depth {
				// DropOldest: evict per both the buffer and the model.
				evID, evV := p.EvictOldest()
				if evID != order[0] {
					t.Fatalf("op %d: evicted node %d, model says oldest is %d", i/2, evID, order[0])
				}
				if evV != model[evID] {
					t.Fatalf("op %d: evicted value %d, model has %d", i/2, evV, model[evID])
				}
				delete(model, evID)
				order = order[1:]
			}
			coalesced := p.Put(id, v)
			if _, queued := model[id]; queued != coalesced {
				t.Fatalf("op %d: Put(%d) coalesced=%v, model queued=%v", i/2, id, coalesced, queued)
			}
			if !coalesced {
				order = append(order, id)
			}
			model[id] = v
			if p.Len() != len(model) {
				t.Fatalf("op %d: Len=%d, model has %d", i/2, p.Len(), len(model))
			}
			if p.Len() > depth {
				t.Fatalf("op %d: depth bound exceeded: %d > %d", i/2, p.Len(), depth)
			}
		}

		// Take must be the model, ascending; applying it to a dense
		// mirror must land every node on its last written value.
		ids, vals := p.Take(nil, nil)
		if !slices.IsSorted(ids) {
			t.Fatalf("Take ids not ascending: %v", ids)
		}
		if len(ids) != len(model) {
			t.Fatalf("Take returned %d nodes, model has %d", len(ids), len(model))
		}
		var mirror [n]int64
		for j, id := range ids {
			want, ok := model[id]
			if !ok {
				t.Fatalf("Take returned node %d that the model never queued", id)
			}
			if vals[j] != want {
				t.Fatalf("node %d: Take value %d, model (last write) %d", id, vals[j], want)
			}
			mirror[id] = vals[j]
		}
		for id, want := range model {
			if mirror[id] != want {
				t.Fatalf("mirror[%d] = %d after apply, want %d", id, mirror[id], want)
			}
		}
		if ids2, _ := p.Take(nil, nil); len(ids2) != 0 {
			t.Fatalf("second Take not empty: %v", ids2)
		}
	})
}
