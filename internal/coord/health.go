package coord

import "fmt"

// Failover observability types, shared by both networked engines
// (internal/netrun, internal/shardrun) and mirrored by the public topk
// API. They are pure data: the coord package defines them so the two
// engines and their adapters agree on vocabulary without importing each
// other.

// EventKind classifies a failover event.
type EventKind uint8

const (
	// EventPeerDown: a peer's link failed; its range is pending
	// reassignment. Err carries the transport error.
	EventPeerDown EventKind = iota
	// EventPeerReplaced: a redial produced a fresh link that adopted the
	// failed peer's exact range.
	EventPeerReplaced
	// EventRangeMerged: no replacement was available; the failed peer's
	// range [Lo, Hi) was merged into a surviving neighbor.
	EventRangeMerged
	// EventPeerJoined: a late joiner adopted the range [Lo, Hi) mid-stream.
	EventPeerJoined
	// EventRecovered: reassignment, value replay and the forced
	// FILTERRESET completed; reports re-converge from the next step.
	EventRecovered
	// EventTerminal: recovery was abandoned (retry budget exhausted or no
	// survivors); the engine is permanently degraded and Err carries the
	// terminal error.
	EventTerminal
)

// String returns the event kind's name.
func (k EventKind) String() string {
	switch k {
	case EventPeerDown:
		return "peer-down"
	case EventPeerReplaced:
		return "peer-replaced"
	case EventRangeMerged:
		return "range-merged"
	case EventPeerJoined:
		return "peer-joined"
	case EventRecovered:
		return "recovered"
	case EventTerminal:
		return "terminal"
	default:
		return fmt.Sprintf("event(%d)", uint8(k))
	}
}

// Event is one failover occurrence: which node range was affected and,
// for failures, the underlying error. Events are delivered synchronously
// from the engine's own goroutine; callbacks must not call back into the
// engine.
type Event struct {
	Kind   EventKind
	Lo, Hi int // affected node range [Lo, Hi)
	Err    error
}

// PeerHealth describes one live peer connection.
type PeerHealth struct {
	Lo, Hi   int   // owned node range [Lo, Hi)
	Failures int64 // link failures attributed to this slot so far
}

// Health is a point-in-time engine health report.
type Health struct {
	// Terminal is non-nil once the engine has permanently given up;
	// reports are frozen at the last good step.
	Terminal error
	// Degraded reports that a failure happened and recovery has not yet
	// completed (it runs at the next observation call).
	Degraded bool
	// Failures counts peer link failures seen; Recoveries counts completed
	// reassignment+reset cycles.
	Failures   int64
	Recoveries int64
	// Peers lists the live peer slots in ascending range order.
	Peers []PeerHealth
}
