// Package coord is the sans-I/O core of Algorithm 1: the coordinator's
// decision logic — filter-violation handling, T+/T− tightening, midpoint
// broadcasts and FILTERRESET — as a pure state machine that consumes
// events and emits effects, with no knowledge of goroutines, channels or
// links.
//
// Every execution engine in the repository is a thin adapter that drives
// one Machine over its substrate:
//
//   - internal/core executes effects by direct calls on monitor-owned
//     node state (protocol executions via internal/protocol),
//   - internal/runtime ships them as batched commands to shard goroutines,
//   - internal/netrun encodes them as internal/wire frames on
//     transport.Links,
//   - internal/shardrun delegates whole protocol executions to per-shard
//     sub-coordinators and merges their digests.
//
// The Machine owns the message ledger: it charges the midpoint broadcasts
// itself and hands adapters phase-scoped recorders for the protocol
// traffic they deliver, so all engines produce bit-identical counts and
// bytes for the same seed by construction.
//
// # Event/effect protocol
//
// One observation step is processed as
//
//	step := m.BeginStep()
//	// substrate: deliver observations, collect filter-violation flags
//	eff := m.FinishStep(anyTopViol, anyOutViol)
//	for eff.Kind != coord.EffDone {
//	    switch eff.Kind {
//	    case coord.EffExec:        // run one min/max protocol over the
//	        res := ...             // cohort eff.Tag with bound eff.Bound,
//	        eff = m.ExecDone(res)  // charging to m.Recorder(eff.Phase)
//	    case coord.EffResetBegin:  // clear extraction state on all nodes
//	        eff = m.Ack()
//	    case coord.EffWinner:      // tell node eff.Target it was extracted
//	        eff = m.Ack()          // (eff.IsTop: it joins the top set)
//	    case coord.EffMidpoint:    // install filters around eff.Mid
//	        eff = m.Ack()          // (eff.Full: [-inf, +inf], k == n)
//	    case coord.EffBounds:      // ε mode: install the band [eff.Lo,
//	        eff = m.Ack()          // eff.Hi] instead of a point midpoint
//	    }
//	}
//	report := m.Top()
//
// Exactly one event answers each effect; the Machine panics on protocol
// misuse. Effects are emitted in the deterministic order Algorithm 1
// prescribes, which is what keeps the engines' randomness consumption
// identical.
package coord

import (
	"fmt"

	"repro/internal/comm"
	"repro/internal/filter"
	"repro/internal/order"
	"repro/internal/wire"
)

// Protocol cohort tags. A tag names the node population of one protocol
// execution; membership is evaluated node-locally (see Nodes). The values
// are stable and ride verbatim in wire.Round.Tag.
const (
	// TagViolMin: former top-k nodes whose filter broke this step run
	// MINIMUMPROTOCOL (Algorithm 1 line 5).
	TagViolMin uint8 = iota
	// TagViolMax: violating outsiders run MAXIMUMPROTOCOL (line 7).
	TagViolMax
	// TagHandMin: all current top-k nodes, minimum (line 25).
	TagHandMin
	// TagHandMax: all current outsiders, maximum (line 23).
	TagHandMax
	// TagReset: all not-yet-extracted nodes, maximum (lines 37-39).
	TagReset
)

// MinimumTag reports whether the tag's protocol computes a minimum (the
// order-dual execution over negated keys).
func MinimumTag(t uint8) bool { return t == TagViolMin || t == TagHandMin }

// TolerantTag reports whether the tag's protocol execution may run with
// ε-tolerant samplers in the approximate mode. Violation and handler
// executions only feed the T+/T− style bound tracking, where an ε-sharp
// extremum (suitably widened) is sound; FILTERRESET extractions decide
// membership and always run exactly, so the extraction keys come out in
// true descending order and the post-reset band provably contains every
// node.
func TolerantTag(t uint8) bool { return t != TagReset }

// EffectKind enumerates what a Machine can ask its adapter to do.
type EffectKind uint8

const (
	// EffDone: the step is fully processed; the report is available via
	// Top. Not answered by an event.
	EffDone EffectKind = iota
	// EffExec: run one protocol execution over cohort Tag with population
	// bound Bound, charging Up/Bcast traffic to Recorder(Phase), and
	// answer with ExecDone.
	EffExec
	// EffResetBegin: clear every node's extraction state and membership
	// flag ahead of a FILTERRESET. Answer with Ack.
	EffResetBegin
	// EffWinner: notify node Target that it won the current extraction and
	// whether it joins the top-k set (IsTop). Key carries the winning key
	// for adapters that track revealed values (the ordered variant); the
	// node itself only needs Target/IsTop. Answer with Ack.
	EffWinner
	// EffMidpoint: have every node re-anchor its filter on Mid (top-k
	// nodes install [Mid, +inf], outsiders [-inf, Mid]); Full installs
	// [-inf, +inf] everywhere (the k == n degenerate case). The broadcast
	// is already charged. Answer with Ack.
	EffMidpoint
	// EffBounds: the ε-approximate counterpart of EffMidpoint — have every
	// node re-anchor on the tolerance band [Lo, Hi] (top-k nodes install
	// [Lo, +inf], outsiders [-inf, Hi]). Emitted only by machines with a
	// non-zero tolerance; the broadcast is already charged. Answer with
	// Ack.
	EffBounds
)

// Effect is one instruction from the Machine to its adapter. Fields are
// meaningful per Kind; see the EffectKind constants.
type Effect struct {
	Kind  EffectKind
	Tag   uint8      // EffExec: cohort
	Bound int        // EffExec: population bound of the execution
	Phase comm.Phase // EffExec: ledger phase protocol traffic charges to

	Target int       // EffWinner: extracted node id
	IsTop  bool      // EffWinner: winner joins the top-k set
	Key    order.Key // EffWinner: the winning key

	Mid  order.Key // EffMidpoint: filter bound
	Full bool      // EffMidpoint: install [-inf, +inf] (k == n)

	Lo, Hi order.Key // EffBounds: tolerance band ends
}

// Stats exposes counters describing a Machine's execution so far. All
// engines report them identically for the same seed.
type Stats struct {
	Steps          int64 // observation steps processed
	ViolationSteps int64 // steps in which at least one filter was violated
	HandlerCalls   int64 // FILTERVIOLATIONHANDLER executions
	Resets         int64 // FILTERRESET executions (including initialization)
	// TopChanges counts steps whose reported set differed from the
	// previous step's, including the initial transition from the empty
	// pre-observation state to the first report.
	TopChanges int64
}

// Config parameterizes a Machine.
type Config struct {
	// N is the number of nodes, K the size of the monitored top set
	// (1 <= K <= N).
	N, K int
	// Tol is the relative tolerance ε of the approximate mode. The zero
	// value selects exact monitoring (bit-identical to a machine built
	// before the approximate mode existed); a non-zero tolerance anchors
	// filters on (1±ε) bands (EffBounds instead of EffMidpoint), lets
	// violation steps whose learned extrema still fit one band skip the
	// FILTERRESET, and marks violation/handler protocol executions as
	// tolerance-eligible (see TolerantTag).
	Tol order.Tol
}

// machState is the continuation point of the Machine between events.
type machState uint8

const (
	stIdle       machState = iota // between steps
	stObserving                   // BeginStep issued, FinishStep pending
	stViolMin                     // awaiting ExecDone of TagViolMin
	stViolMax                     // awaiting ExecDone of TagViolMax
	stHandMin                     // awaiting ExecDone of TagHandMin
	stHandMax                     // awaiting ExecDone of TagHandMax
	stMidAck                      // awaiting Ack of a midpoint install
	stResetBegin                  // awaiting Ack of EffResetBegin
	stResetExec                   // awaiting ExecDone of TagReset
	stResetWin                    // awaiting Ack of EffWinner
)

// Machine is the sans-I/O coordinator. Create with New; it is not safe
// for concurrent use (the model's time steps are globally ordered).
type Machine struct {
	cfg Config
	led comm.Ledger

	// Pre-built phase recorders (constructing one per charge would box an
	// interface value on the heap).
	recViol  comm.Recorder
	recHand  comm.Recorder
	recReset comm.Recorder

	inTop []bool // current membership, by node id
	top   []int  // current membership, ascending; alias returned by Top
	tmp   []int  // scratch for membership rebuilds (swapped with top)

	keys []order.Key // reset extraction keys, in extraction order

	tPlus  order.Key // T+(t0, t): min over top-k values since last reset
	tMinus order.Key // T−(t0, t): max over outside values since last reset

	// Approximate-mode band tracking: the ends of the currently installed
	// filter band — every top-k key is >= curLo and every outside key is
	// <= curHi between violations. Maintained only when cfg.Tol is
	// non-zero.
	curLo order.Key
	curHi order.Key

	step  int64
	init  bool
	stats Stats

	state    machState
	minKey   order.Key
	maxKey   order.Key
	minOK    bool
	maxOK    bool
	anyOut   bool
	resetIdx int
	want     int       // number of reset extractions (min(K+1, N))
	winID    int       // pending extraction winner
	winKey   order.Key //
	winTop   bool      //
}

// New validates the configuration and returns an idle Machine.
func New(cfg Config) *Machine {
	if cfg.N <= 0 {
		panic("coord: need N > 0")
	}
	if cfg.K < 1 || cfg.K > cfg.N {
		panic("coord: need 1 <= K <= N")
	}
	m := &Machine{
		cfg:   cfg,
		inTop: make([]bool, cfg.N),
		top:   make([]int, 0, cfg.K),
		tmp:   make([]int, 0, cfg.K),
		keys:  make([]order.Key, 0, cfg.K+1),
		curLo: order.NegInf,
		curHi: order.PosInf,
	}
	m.recViol = m.led.InPhase(comm.PhaseViolation)
	m.recHand = m.led.InPhase(comm.PhaseHandler)
	m.recReset = m.led.InPhase(comm.PhaseReset)
	return m
}

// N returns the node count.
func (m *Machine) N() int { return m.cfg.N }

// K returns the monitored top set size.
func (m *Machine) K() int { return m.cfg.K }

// Tol returns the machine's tolerance (zero for exact monitoring).
func (m *Machine) Tol() order.Tol { return m.cfg.Tol }

// Step returns the current observation step (0 before the first
// BeginStep).
func (m *Machine) Step() int64 { return m.step }

// Stats returns execution counters.
func (m *Machine) Stats() Stats { return m.stats }

// Ledger returns the machine's message ledger (total and per-phase).
func (m *Machine) Ledger() *comm.Ledger { return &m.led }

// Counts returns the total message counts charged so far.
func (m *Machine) Counts() comm.Counts { return m.led.Total() }

// Bytes returns the total encoded size of the charged messages.
func (m *Machine) Bytes() comm.Bytes { return m.led.TotalBytes() }

// Recorder returns the pre-built recorder attributing to phase p — the
// recorder adapters charge protocol traffic to when executing EffExec.
func (m *Machine) Recorder(p comm.Phase) comm.Recorder {
	switch p {
	case comm.PhaseViolation:
		return m.recViol
	case comm.PhaseHandler:
		return m.recHand
	case comm.PhaseReset:
		return m.recReset
	default:
		panic("coord: unknown phase")
	}
}

// InTop reports whether node id is in the current top-k set.
func (m *Machine) InTop(id int) bool { return m.inTop[id] }

// Top returns the current top-k ids ascending. The slice is a read-only
// view owned by the machine: it stays valid (reporting the last completed
// membership) while a step is in flight and is invalidated by the
// completion of a step that changes the top set. Use AppendTop to copy.
func (m *Machine) Top() []int { return m.top }

// AppendTop appends the current top-k ids (ascending) to dst and returns
// the extended slice. The appended values are copies; mutating them never
// affects the machine.
func (m *Machine) AppendTop(dst []int) []int { return append(dst, m.top...) }

// BeginStep starts one observation step and returns its step number, the
// value adapters stamp observation commands with (node-side violation
// cohorts are selected per step).
func (m *Machine) BeginStep() int64 {
	if m.state != stIdle {
		panic("coord: BeginStep with a step in flight")
	}
	m.state = stObserving
	m.step++
	m.stats.Steps++
	return m.step
}

// FinishStep delivers the aggregated node-side filter-check outcome of the
// step begun by BeginStep — whether any former top-k node and whether any
// outsider violated — and returns the first effect to execute.
func (m *Machine) FinishStep(anyTopViol, anyOutViol bool) Effect {
	if m.state != stObserving {
		panic("coord: FinishStep without BeginStep")
	}
	if !m.init {
		// The paper's time-0 initialization: a full FILTERRESET.
		m.init = true
		return m.startReset()
	}
	if !anyTopViol && !anyOutViol {
		m.state = stIdle
		return Effect{Kind: EffDone}
	}
	m.stats.ViolationSteps++
	m.minOK, m.maxOK = false, false
	m.minKey, m.maxKey = order.NegInf, order.NegInf
	m.anyOut = anyOutViol
	if anyTopViol {
		m.state = stViolMin
		return Effect{Kind: EffExec, Tag: TagViolMin, Bound: m.cfg.K, Phase: comm.PhaseViolation}
	}
	return m.startViolMax()
}

// startViolMax continues the violation phase with the outsider maximum (or
// straight into the handler when no outsider violated).
func (m *Machine) startViolMax() Effect {
	if m.anyOut {
		m.state = stViolMax
		return Effect{Kind: EffExec, Tag: TagViolMax, Bound: m.cfg.N - m.cfg.K, Phase: comm.PhaseViolation}
	}
	return m.startHandler()
}

// startHandler is FILTERVIOLATIONHANDLER's missing-side protocol
// (Algorithm 1 lines 22-25).
func (m *Machine) startHandler() Effect {
	m.stats.HandlerCalls++
	if !m.maxOK {
		m.state = stHandMax
		return Effect{Kind: EffExec, Tag: TagHandMax, Bound: m.cfg.N - m.cfg.K, Phase: comm.PhaseHandler}
	}
	m.state = stHandMin
	return Effect{Kind: EffExec, Tag: TagHandMin, Bound: m.cfg.K, Phase: comm.PhaseHandler}
}

// tighten applies lines 27-33: update T+/T− with the learned extrema, then
// either reset or broadcast a fresh midpoint.
func (m *Machine) tighten() Effect {
	if !m.cfg.Tol.Zero() {
		return m.tightenTol()
	}
	if m.minOK {
		m.tPlus = order.Min(m.tPlus, m.minKey)
	}
	if m.maxOK {
		m.tMinus = order.Max(m.tMinus, m.maxKey)
	}
	if m.tPlus < m.tMinus {
		return m.startReset() // line 30
	}
	mid := order.Midpoint(m.tMinus, m.tPlus)
	comm.RecordSized(m.recHand, comm.Bcast, 1, wire.SizeMidpoint(int64(mid)))
	m.state = stMidAck
	return Effect{Kind: EffMidpoint, Mid: mid}
}

// tightenTol is the approximate mode's violation-handler conclusion.
// From this step's protocol results it derives conservative bounds on the
// two sides — every top-k key is >= lb, every outside key is <= ub — and,
// when some threshold's (1±ε) band still covers both, re-anchors the
// filters on that band instead of resetting: the current membership is
// then still a valid ε-approximation, so the k+1 protocol executions of a
// FILTERRESET are saved. Only when no band fits does it fall through to
// the exact FILTERRESET.
//
// The widening accounts for the ε-tolerant samplers of the violation and
// handler executions: a tolerant MINIMUM's result m̃ only guarantees that
// every cohort key is >= WidenLo(m̃), and dually for a MAXIMUM.
func (m *Machine) tightenTol() Effect {
	var lb, ub order.Key
	if m.anyOut {
		// The handler ran MINIMUM over all current top-k nodes: minKey is
		// an ε-sharp minimum of the whole top side.
		lb = m.cfg.Tol.WidenLo(m.minKey)
		// Outsiders: the non-violating ones are still <= curHi, the
		// violating ones <= the widened violation maximum.
		ub = m.curHi
		if m.maxOK {
			ub = order.Max(ub, m.cfg.Tol.WidenHi(m.maxKey))
		}
	} else {
		// The handler ran MAXIMUM over all outsiders: maxKey is an ε-sharp
		// maximum of the whole outside.
		ub = m.cfg.Tol.WidenHi(m.maxKey)
		// Top-k nodes: non-violating ones are still >= curLo, violating
		// ones >= the widened violation minimum.
		lb = m.curLo
		if m.minOK {
			lb = order.Min(lb, m.cfg.Tol.WidenLo(m.minKey))
		}
	}
	th, ok := m.cfg.Tol.Witness(lb, ub)
	if !ok {
		return m.startReset()
	}
	band := filter.Band(th, m.cfg.Tol)
	m.curLo, m.curHi = band.Lo, band.Hi
	comm.RecordSized(m.recHand, comm.Bcast, 1, wire.SizeApproxBounds(int64(m.curLo), int64(m.curHi)))
	m.state = stMidAck
	return Effect{Kind: EffBounds, Lo: m.curLo, Hi: m.curHi}
}

// startReset begins FILTERRESET (lines 36-42).
func (m *Machine) startReset() Effect {
	m.stats.Resets++
	m.state = stResetBegin
	return Effect{Kind: EffResetBegin}
}

// nextExtraction issues the next reset extraction, or finishes the reset
// once k+1 winners are known.
func (m *Machine) nextExtraction() Effect {
	if m.resetIdx < m.want {
		m.state = stResetExec
		return Effect{Kind: EffExec, Tag: TagReset, Bound: m.cfg.N, Phase: comm.PhaseReset}
	}
	return m.finishReset()
}

// finishReset installs the new membership and filters from the extraction
// results.
func (m *Machine) finishReset() Effect {
	// Rebuild the reported set, tracking whether it changed.
	m.tmp = m.tmp[:0]
	for id, in := range m.inTop {
		if in {
			m.tmp = append(m.tmp, id)
		}
	}
	if !intsEqual(m.tmp, m.top) {
		m.stats.TopChanges++
	}
	m.top, m.tmp = m.tmp, m.top

	if m.cfg.K == m.cfg.N {
		// Degenerate case: every node is in the top set; filters are
		// unconstrained and the monitor never communicates again. The
		// install broadcast is free — membership never changes.
		m.tPlus = m.keys[len(m.keys)-1]
		m.tMinus = order.NegInf
		m.curLo, m.curHi = order.NegInf, order.PosInf
		m.state = stMidAck
		return Effect{Kind: EffMidpoint, Full: true}
	}
	kth, kPlus1 := m.keys[m.cfg.K-1], m.keys[m.cfg.K]
	m.tPlus, m.tMinus = kth, kPlus1
	mid := order.Midpoint(kPlus1, kth)
	if !m.cfg.Tol.Zero() {
		// Approximate mode: anchor the filters on the (1±ε) band around
		// the midpoint. Reset extractions run exactly, so the extraction
		// keys descend and the band contains every node: top keys are
		// >= kth >= mid >= WidenLo(mid), outside keys <= kPlus1 <= mid <=
		// WidenHi(mid).
		band := filter.Band(mid, m.cfg.Tol)
		m.curLo, m.curHi = band.Lo, band.Hi
		comm.RecordSized(m.recReset, comm.Bcast, 1, wire.SizeApproxBounds(int64(m.curLo), int64(m.curHi)))
		m.state = stMidAck
		return Effect{Kind: EffBounds, Lo: m.curLo, Hi: m.curHi}
	}
	// Line 41: one broadcast lets every node derive its new filter.
	comm.RecordSized(m.recReset, comm.Bcast, 1, wire.SizeMidpoint(int64(mid)))
	m.state = stMidAck
	return Effect{Kind: EffMidpoint, Mid: mid}
}

// ExecDone answers an EffExec with the execution's outcome: ok is false
// when the cohort was empty, otherwise id/key identify the winner. It
// returns the next effect.
func (m *Machine) ExecDone(ok bool, id int, key order.Key) Effect {
	switch m.state {
	case stViolMin:
		m.minOK, m.minKey = ok, key
		return m.startViolMax()
	case stViolMax:
		m.maxOK, m.maxKey = ok, key
		return m.startHandler()
	case stHandMax:
		m.maxOK, m.maxKey = ok, key
		return m.tighten()
	case stHandMin:
		m.minOK, m.minKey = ok, key
		return m.tighten()
	case stResetExec:
		if !ok {
			panic("coord: reset extraction found no participant")
		}
		m.winID, m.winKey = id, key
		m.winTop = m.resetIdx < m.cfg.K
		m.state = stResetWin
		return Effect{Kind: EffWinner, Target: id, IsTop: m.winTop, Key: key}
	default:
		panic(fmt.Sprintf("coord: ExecDone in state %d", m.state))
	}
}

// Abort discards an in-flight step or protocol execution and returns the
// machine to idle. It exists for failover: when a peer dies mid-step the
// adapter cannot deliver the events the machine is waiting for, so it
// aborts, reassigns the dead peer's range, and drives a ForceReset to
// re-converge. Top() still reports the last completed membership (the
// report stream never regresses), but the membership flags may be
// mid-rebuild — an abort must be followed by ForceReset before the next
// regular step, which clears and rebuilds them. Statistics of the aborted
// step remain charged; failover is observable in the counters by design.
func (m *Machine) Abort() {
	m.state = stIdle
}

// ForceReset starts an out-of-band FILTERRESET from the idle state: the
// recovery primitive the ROADMAP names. The adapter drives the returned
// effect exactly like a FinishStep effect chain (extractions, winner
// notifications, the closing filter install). After the chain completes
// the machine's membership, filters and T+/T− bounds are freshly derived
// from current node values, so reports re-converge to the oracle within
// this one reset regardless of what state a failed peer took with it.
// ForceReset panics if a step is in flight (Abort first).
func (m *Machine) ForceReset() Effect {
	if m.state != stIdle {
		panic("coord: ForceReset with a step in flight")
	}
	// A forced reset is also valid initialization: if it runs before the
	// first observation step, the time-0 reset of FinishStep is subsumed.
	m.init = true
	return m.startReset()
}

// Ack answers an EffResetBegin, EffWinner or EffMidpoint and returns the
// next effect.
func (m *Machine) Ack() Effect {
	switch m.state {
	case stResetBegin:
		// Nodes have cleared their extraction state; forget the old
		// membership and start extracting.
		for i := range m.inTop {
			m.inTop[i] = false
		}
		m.keys = m.keys[:0]
		m.resetIdx = 0
		m.want = m.cfg.K + 1
		if m.want > m.cfg.N {
			m.want = m.cfg.N // k == n: there is no (k+1)-st value
		}
		return m.nextExtraction()
	case stResetWin:
		if m.winTop {
			m.inTop[m.winID] = true
		}
		m.keys = append(m.keys, m.winKey)
		m.resetIdx++
		return m.nextExtraction()
	case stMidAck:
		m.state = stIdle
		return Effect{Kind: EffDone}
	default:
		panic(fmt.Sprintf("coord: Ack in state %d", m.state))
	}
}

func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
