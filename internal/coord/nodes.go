package coord

import (
	"fmt"

	"repro/internal/filter"
	"repro/internal/order"
	"repro/internal/protocol"
	"repro/internal/rng"
)

// nodeState is the distributed per-node state of the paper's node model:
// the current key, the assigned filter, membership knowledge from the last
// broadcast, and a private generator for the protocol's Bernoulli trials.
type nodeState struct {
	id        int
	rng       *rng.RNG
	key       order.Key
	iv        filter.Interval
	ordIv     filter.Interval // order filter (ordered variant only)
	inTop     bool
	wasTop    bool  // membership at the time of the last violation
	violStep  int64 // observation step of the last filter violation
	extracted bool
	level     uint8 // current ladder level (hierarchical ε mode)
	sampler   protocol.Sampler
}

// participates evaluates cohort membership node-locally, from knowledge
// the node legitimately has (its own violation history, the membership
// flag from the last broadcast, its extraction state).
func (nd *nodeState) participates(tag uint8, step int64) bool {
	switch tag {
	case TagViolMin:
		return nd.violStep == step && nd.wasTop
	case TagViolMax:
		return nd.violStep == step && !nd.wasTop
	case TagHandMin:
		return nd.inTop
	case TagHandMax:
		return !nd.inTop
	case TagReset:
		return !nd.extracted
	default:
		panic(fmt.Sprintf("coord: unknown protocol tag %d", tag))
	}
}

// Nodes hosts the node-side state of a contiguous id range [Lo, Hi) of an
// n-node monitor: the sans-I/O dual of Machine. Every substrate that hosts
// nodes — the shard goroutines of internal/runtime, the peer processes of
// internal/netrun, the shard sub-coordinators of internal/shardrun — owns
// one Nodes per hosted range and translates its substrate's commands into
// the methods below.
//
// The RNG stream layout is shared by construction: every engine derives
// node i's generator as the i-th Split of the same seeded root, which is
// what makes protocol randomness consume identically across engines.
type Nodes struct {
	lo, hi   int
	distinct bool
	codec    order.Codec
	tol      order.Tol
	maxVal   int64 // cached value-domain bound; Observe checks it per value
	ns       []nodeState

	// Per-level ε ladder of the hierarchical engine (SetLadder): level l's
	// tolerance induces the band bands[l], nested inside the installed
	// root filter; absorbs[l] counts observations that left the level-l
	// band. The ladder never changes which violations the protocol sees —
	// reported flags always come from the installed root filter — it
	// tracks, per level, how many band exits a level-(l+1) coordinator
	// would have absorbed without any traffic above it.
	ladder  []order.Tol
	bands   []filter.Interval
	absorbs []int64
}

// NewNodes builds the node state for the range [lo, hi) of an n-node
// monitor with the given protocol seed, tie-break mode and tolerance
// (zero for exact monitoring). The constructor walks the root generator's
// full split sequence (Split mutates the root) and keeps its slice of it,
// exactly as every other engine does.
func NewNodes(n, lo, hi int, seed uint64, distinct bool, tol order.Tol) *Nodes {
	if n <= 0 {
		panic("coord: need n > 0")
	}
	if lo < 0 || hi > n || lo >= hi {
		panic(fmt.Sprintf("coord: bad node range [%d, %d) of %d", lo, hi, n))
	}
	b := &Nodes{
		lo:       lo,
		hi:       hi,
		distinct: distinct,
		codec:    order.NewCodec(n),
		tol:      tol,
		maxVal:   order.MaxValueFor(n, distinct),
		ns:       make([]nodeState, hi-lo),
	}
	root := rng.New(seed, 0xc02e)
	for i := 0; i < n; i++ {
		r := root.Split(uint64(i))
		if i < lo || i >= hi {
			continue
		}
		key := order.Key(0)
		if !distinct {
			key = b.codec.Encode(0, i)
		}
		b.ns[i-lo] = nodeState{
			id:       i,
			rng:      r,
			key:      key,
			iv:       filter.Full(),
			ordIv:    filter.Full(),
			violStep: -1,
		}
	}
	return b
}

// Sub returns a view of the sub-range [lo, hi) sharing this bank's node
// state. The parent covers construction cost once; disjoint sub-views may
// then be driven from different goroutines (internal/runtime's shards).
func (b *Nodes) Sub(lo, hi int) *Nodes {
	if lo < b.lo || hi > b.hi || lo >= hi {
		panic(fmt.Sprintf("coord: sub-range [%d, %d) outside [%d, %d)", lo, hi, b.lo, b.hi))
	}
	return &Nodes{
		lo:       lo,
		hi:       hi,
		distinct: b.distinct,
		codec:    b.codec,
		tol:      b.tol,
		maxVal:   b.maxVal,
		ns:       b.ns[lo-b.lo : hi-b.lo : hi-b.lo],
	}
}

// Lo returns the first hosted node id.
func (b *Nodes) Lo() int { return b.lo }

// Hi returns one past the last hosted node id.
func (b *Nodes) Hi() int { return b.hi }

// Len returns the number of hosted nodes.
func (b *Nodes) Len() int { return len(b.ns) }

// Key returns node id's current key (for invariant checks in tests).
func (b *Nodes) Key(id int) order.Key { return b.node(id).key }

// node resolves a global id into the local array.
func (b *Nodes) node(id int) *nodeState {
	if id < b.lo || id >= b.hi {
		panic(fmt.Sprintf("coord: node %d outside hosted range [%d, %d)", id, b.lo, b.hi))
	}
	return &b.ns[id-b.lo]
}

// SetLadder installs the per-level tolerance ladder of the hierarchical
// ε mode (tightest level first; order.Tol.Ladder builds a valid one).
// The ladder is pure bookkeeping on top of the protocol: reported
// violation flags still come from the installed root filter alone, so a
// laddered bank is bit-identical to a plain one in everything the
// coordinator observes. What the ladder adds is the per-level absorption
// profile (Absorbs): at each filter install the bank derives the nested
// bands B_0 ⊆ … ⊆ B_{L-1} ⊆ [lo, hi] around the installed band's
// midpoint, every node starts at level 0, and an observation that exits
// the node's current band deterministically escalates it to the first
// level whose band still holds it, counting one exit per level crossed.
// A nil ladder (or one installed on an exact-tolerance bank) disables
// the bookkeeping.
func (b *Nodes) SetLadder(tols []order.Tol) {
	b.ladder = tols
	b.bands = nil
	b.absorbs = make([]int64, len(tols))
	for i := range b.ns {
		b.ns[i].level = 0
	}
}

// Ladder returns the installed per-level tolerances (nil when the
// hierarchical ε mode is off).
func (b *Nodes) Ladder() []order.Tol { return b.ladder }

// Absorbs returns the per-level band-exit counters as a read-only view:
// Absorbs[l] counts observations that left the level-l band, so
// Absorbs[l] - Absorbs[l+1] of them were absorbed by level l+1 without
// climbing further, and the installed root filter's own violations (the
// ones the protocol acts on) are counted by the coordinator as always.
func (b *Nodes) Absorbs() []int64 { return b.absorbs }

// ladderBands derives the nested per-level bands for an installed root
// band [lo, hi], anchored at its midpoint and clamped inside it, and
// re-arms every node at level 0.
func (b *Nodes) ladderBands(lo, hi order.Key) {
	if len(b.ladder) == 0 {
		return
	}
	root := filter.Interval{Lo: lo, Hi: hi}
	mid := order.Midpoint(lo, hi)
	b.bands = b.bands[:0]
	for _, tol := range b.ladder {
		b.bands = append(b.bands, filter.Band(mid, tol).Clamp(root))
	}
	for i := range b.ns {
		b.ns[i].level = 0
	}
}

// ladderTrack walks one observation through the ladder: from the node's
// current level upward, every band the key has left counts one exit and
// escalates the node; a root-filter violation exits every remaining
// level (nothing below the root could have absorbed it). Membership
// decides the binding side, exactly as for the installed filter: top
// nodes are only constrained from below, outsiders only from above.
func (b *Nodes) ladderTrack(nd *nodeState, rootViol bool) {
	levels := uint8(len(b.ladder))
	if rootViol {
		for l := nd.level; l < levels; l++ {
			b.absorbs[l]++
		}
		nd.level = levels
		return
	}
	for nd.level < levels {
		band := b.bands[nd.level]
		exited := nd.key > band.Hi
		if nd.inTop {
			exited = nd.key < band.Lo
		}
		if !exited {
			return
		}
		b.absorbs[nd.level]++
		nd.level++
	}
}

// MaxValue returns the largest observation magnitude the bank accepts
// (symmetrically, -MaxValue is the smallest): order.MaxValueFor of the
// bank's configuration — the codec capacity for the default tie-break
// injection, which shrinks with n since keys are v·n + tiebreak, or the
// sentinel-free int64 range in DistinctValues mode.
func (b *Nodes) MaxValue() int64 { return b.maxVal }

// Observe ingests one observation for node id at the given step, runs the
// node-local filter check, and reports whether the node violated as a
// former top-k member (topViol) or as an outsider (outViol). A value
// whose magnitude exceeds MaxValue is rejected with a descriptive error
// before any state changes: the key injection would overflow (or, in
// DistinctValues mode, collide with the ±∞ sentinels) and silently
// corrupt the order, so out-of-domain input must never reach the key
// domain. Hosts that face a wire (internal/netrun, internal/shardrun)
// surface the error instead of panicking.
func (b *Nodes) Observe(id int, v int64, step int64) (topViol, outViol bool, err error) {
	nd := b.node(id)
	if v > b.maxVal || v < -b.maxVal {
		return false, false, fmt.Errorf("coord: node %d value %d outside the value domain [-%d, %d] for %d nodes", id, v, b.maxVal, b.maxVal, b.codec.N())
	}
	if b.distinct {
		nd.key = order.Key(v)
	} else {
		nd.key = b.codec.Encode(v, id)
	}
	violated, _ := nd.iv.Violates(nd.key)
	if len(b.bands) == len(b.ladder) && len(b.ladder) > 0 {
		b.ladderTrack(nd, violated)
	}
	if violated {
		nd.violStep = step
		nd.wasTop = nd.inTop
		return nd.inTop, !nd.inTop, nil
	}
	return false, false, nil
}

// Round runs one sampler round over the hosted members of cohort tag:
// round r of an execution with the given population bound, against the
// best value broadcast so far (in the execution's comparison domain).
// Every node that sends is reported to send in ascending id order with its
// true key. Samplers are (re)initialized at round 0, so banks need no
// per-execution setup call.
func (b *Nodes) Round(tag uint8, r int, best order.Key, bound int, step int64, send func(id int, key order.Key)) {
	for i := range b.ns {
		nd := &b.ns[i]
		if !nd.participates(tag, step) {
			continue
		}
		if r == 0 {
			k := nd.key
			if MinimumTag(tag) {
				k = order.Neg(k)
			}
			tol := b.tol
			if !TolerantTag(tag) {
				tol = order.Tol{} // reset extractions always run exactly
			}
			nd.sampler = protocol.NewSamplerTol(k, bound, tol)
		}
		if nd.sampler.Round(best, uint(r), nd.rng) {
			send(nd.id, nd.key)
		}
	}
}

// Winner marks node target as extracted by the current reset, joining the
// top-k set when isTop is set.
func (b *Nodes) Winner(target int, isTop bool) {
	nd := b.node(target)
	nd.extracted = true
	if isTop {
		nd.inTop = true
	}
}

// Midpoint installs the canonical filter assignment around mid: [mid,
// +inf] for top-k members, [-inf, mid] for outsiders — or [-inf, +inf]
// everywhere when full is set (k == n).
func (b *Nodes) Midpoint(mid order.Key, full bool) {
	b.bands = b.bands[:0] // point installs have no band to split
	for i := range b.ns {
		nd := &b.ns[i]
		switch {
		case full:
			nd.iv = filter.Full()
		case nd.inTop:
			nd.iv = filter.AtLeast(mid)
		default:
			nd.iv = filter.AtMost(mid)
		}
	}
}

// ApplyBounds installs the ε-approximate band assignment: [lo, +inf] for
// top-k members, [-inf, hi] for outsiders (the node-side execution of
// coord.EffBounds / wire.ApproxBounds).
func (b *Nodes) ApplyBounds(lo, hi order.Key) {
	b.ladderBands(lo, hi)
	for i := range b.ns {
		nd := &b.ns[i]
		if nd.inTop {
			nd.iv = filter.AtLeast(lo)
		} else {
			nd.iv = filter.AtMost(hi)
		}
	}
}

// ResetBegin clears extraction state and membership ahead of a
// FILTERRESET.
func (b *Nodes) ResetBegin() {
	for i := range b.ns {
		b.ns[i].extracted = false
		b.ns[i].inTop = false
	}
}

// OrderViolated checks node target's order filter (the ordered §5
// variant): it returns the node's current key and whether it left the
// filter.
func (b *Nodes) OrderViolated(target int) (key order.Key, violated bool) {
	nd := b.node(target)
	violated, _ = nd.ordIv.Violates(nd.key)
	return nd.key, violated
}

// SetOrderBounds installs node target's order filter [lo, hi].
func (b *Nodes) SetOrderBounds(target int, lo, hi order.Key) {
	b.node(target).ordIv = filter.Interval{Lo: lo, Hi: hi}
}
