package coord

import (
	"sort"
	"testing"

	"repro/internal/comm"
	"repro/internal/order"
	"repro/internal/protocol"
	"repro/internal/stream"
)

// oracle computes the exact top-k ids (ascending) under the shared
// tie-break injection, mirroring sim.Oracle — which this package cannot
// import since sim's async runner now builds on coord.Pending.
func oracle(vals []int64, k int) []int {
	codec := order.NewCodec(len(vals))
	keys := make([]order.Key, len(vals))
	for i, v := range vals {
		keys[i] = codec.Encode(v, i)
	}
	ids := make([]int, len(vals))
	for i := range ids {
		ids[i] = i
	}
	sort.Slice(ids, func(a, b int) bool { return keys[ids[a]] > keys[ids[b]] })
	top := append([]int(nil), ids[:k]...)
	sort.Ints(top)
	return top
}

// driver is the smallest possible adapter: one Machine over one Nodes
// bank, effects executed by direct calls. It is the skeleton every real
// engine in the repository follows.
type driver struct {
	mach *Machine
	bank *Nodes
}

func newDriver(n, k int, seed uint64) *driver {
	return &driver{
		mach: New(Config{N: n, K: k}),
		bank: NewNodes(n, 0, n, seed, false, order.Tol{}),
	}
}

func (d *driver) observe(vals []int64) []int {
	step := d.mach.BeginStep()
	anyTop, anyOut := false, false
	for id, v := range vals {
		t, o, err := d.bank.Observe(id, v, step)
		if err != nil {
			panic(err)
		}
		anyTop = anyTop || t
		anyOut = anyOut || o
	}
	eff := d.mach.FinishStep(anyTop, anyOut)
	for eff.Kind != EffDone {
		switch eff.Kind {
		case EffExec:
			ex := protocol.NewExec(eff.Bound, MinimumTag(eff.Tag), d.mach.Recorder(eff.Phase), nil, step)
			for ex.More() {
				r, best := ex.Round(), ex.Best()
				d.bank.Round(eff.Tag, r, best, eff.Bound, step, func(id int, key order.Key) {
					ex.Bid(id, key)
				})
				ex.EndRound()
			}
			res := ex.Result()
			eff = d.mach.ExecDone(res.OK, res.ID, res.Key)
		case EffResetBegin:
			d.bank.ResetBegin()
			eff = d.mach.Ack()
		case EffWinner:
			d.bank.Winner(eff.Target, eff.IsTop)
			eff = d.mach.Ack()
		case EffMidpoint:
			d.bank.Midpoint(eff.Mid, eff.Full)
			eff = d.mach.Ack()
		case EffBounds:
			d.bank.ApplyBounds(eff.Lo, eff.Hi)
			eff = d.mach.Ack()
		default:
			t := eff.Kind
			panic(t)
		}
	}
	return d.mach.Top()
}

func equal(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestMachineExactness drives the sans-I/O core directly over a workload
// and asserts the report equals the oracle at every step — Algorithm 1's
// correctness independent of any substrate.
func TestMachineExactness(t *testing.T) {
	for _, tc := range []struct{ n, k int }{{12, 3}, {9, 1}, {7, 7}, {16, 15}} {
		d := newDriver(tc.n, tc.k, 77)
		src := stream.NewRandomWalk(stream.WalkConfig{N: tc.n, Lo: 0, Hi: 1 << 16, MaxStep: 500, Seed: 5})
		vals := make([]int64, tc.n)
		for s := 0; s < 300; s++ {
			src.Step(vals)
			got := d.observe(vals)
			if want := oracle(vals, tc.k); !equal(got, want) {
				t.Fatalf("n=%d k=%d step %d: got %v want %v", tc.n, tc.k, s, got, want)
			}
		}
		st := d.mach.Stats()
		if st.Steps != 300 {
			t.Fatalf("steps=%d", st.Steps)
		}
		if st.Resets < 1 {
			t.Fatal("no reset executed")
		}
		if tc.k < tc.n && d.mach.Counts().Total() == 0 {
			t.Fatal("ledger stayed empty")
		}
	}
}

// TestMachineStatsAndPhases sanity-checks the ledger attribution: the
// initial step charges only the reset phase, and a violation-free step
// charges nothing.
func TestMachineStatsAndPhases(t *testing.T) {
	d := newDriver(8, 2, 3)
	vals := []int64{10, 20, 30, 40, 50, 60, 70, 80}
	d.observe(vals)
	led := d.mach.Ledger()
	if c := led.PhaseCounts(comm.PhaseViolation); c.Total() != 0 {
		t.Fatalf("violation phase charged on init: %v", c)
	}
	if c := led.PhaseCounts(comm.PhaseReset); c.Total() == 0 {
		t.Fatal("reset phase empty after init")
	}
	before := d.mach.Counts()
	d.observe(vals) // unchanged values: no violation, no traffic
	if after := d.mach.Counts(); after != before {
		t.Fatalf("violation-free step charged: %v -> %v", before, after)
	}
	if st := d.mach.Stats(); st.ViolationSteps != 0 || st.TopChanges != 1 {
		t.Fatalf("unexpected stats: %+v", st)
	}
}

// TestAppendTopCopies pins the ownership contract: AppendTop's result is
// a copy that later steps and caller mutations cannot corrupt.
func TestAppendTopCopies(t *testing.T) {
	d := newDriver(6, 2, 9)
	d.observe([]int64{1, 2, 3, 4, 5, 6})
	got := d.mach.AppendTop(nil)
	if !equal(got, []int{4, 5}) {
		t.Fatalf("top=%v", got)
	}
	got[0], got[1] = -1, -2 // caller scribbles on its copy
	d.observe([]int64{6, 5, 4, 3, 2, 1})
	if want := []int{0, 1}; !equal(d.mach.Top(), want) {
		t.Fatalf("machine state corrupted by caller mutation: top=%v want %v", d.mach.Top(), want)
	}
}

// TestMachineMisusePanics pins the event/effect protocol: out-of-order
// events are bugs, not silent corruption.
func TestMachineMisusePanics(t *testing.T) {
	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		f()
	}
	m := New(Config{N: 4, K: 2})
	expectPanic("FinishStep before BeginStep", func() { m.FinishStep(false, false) })
	expectPanic("Ack while idle", func() { m.Ack() })
	expectPanic("ExecDone while idle", func() { m.ExecDone(true, 0, 0) })
	m.BeginStep()
	expectPanic("BeginStep twice", func() { m.BeginStep() })
	expectPanic("bad config", func() { New(Config{N: 4, K: 0}) })
}

// TestNodesRangeChecks pins the hosted-range guard rails.
func TestNodesRangeChecks(t *testing.T) {
	b := NewNodes(10, 2, 6, 1, false, order.Tol{})
	if b.Lo() != 2 || b.Hi() != 6 || b.Len() != 4 {
		t.Fatalf("range [%d, %d) len %d", b.Lo(), b.Hi(), b.Len())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range Observe did not panic")
		}
	}()
	b.Observe(7, 1, 1)
}

// TestNodesValueDomain pins the value-domain boundary: an out-of-range
// observation is rejected with an error — not a panic — before any node
// state changes, in both tie-break modes.
func TestNodesValueDomain(t *testing.T) {
	b := NewNodes(10, 0, 10, 1, false, order.Tol{})
	mv := b.MaxValue()
	if _, _, err := b.Observe(3, mv, 1); err != nil {
		t.Fatalf("in-range value rejected: %v", err)
	}
	before := b.Key(3)
	if _, _, err := b.Observe(3, mv+1, 1); err == nil {
		t.Fatal("over-capacity value accepted")
	}
	if _, _, err := b.Observe(3, -mv-1, 1); err == nil {
		t.Fatal("under-capacity value accepted")
	}
	if b.Key(3) != before {
		t.Fatal("rejected observation mutated the node's key")
	}

	d := NewNodes(4, 0, 4, 1, true, order.Tol{})
	if d.MaxValue() != order.MaxDistinctValue {
		t.Fatalf("distinct-mode MaxValue = %d", d.MaxValue())
	}
	for _, v := range []int64{int64(order.PosInf), int64(order.NegInf), -int64(order.PosInf)} {
		if _, _, err := d.Observe(0, v, 1); err == nil {
			t.Fatalf("distinct mode accepted sentinel-colliding value %d", v)
		}
	}
	if _, _, err := d.Observe(0, order.MaxDistinctValue, 1); err != nil {
		t.Fatalf("distinct mode rejected in-range value: %v", err)
	}
}

// TestNodesSubSharesState verifies Sub views alias the parent bank's node
// state — the runtime's shards all see one coherent node array.
func TestNodesSubSharesState(t *testing.T) {
	parent := NewNodes(8, 0, 8, 4, false, order.Tol{})
	left, right := parent.Sub(0, 4), parent.Sub(4, 8)
	left.Observe(1, 42, 1)
	right.Observe(6, 24, 1)
	if parent.Key(1) != left.Key(1) || parent.Key(6) != right.Key(6) {
		t.Fatal("sub views do not alias parent state")
	}
}

// TestNodesLadderAbsorption pins the hierarchical ε bookkeeping: nested
// bands are derived per install, escalation is deterministic and
// monotone per node, a root violation exits every remaining level, and
// none of it changes the violation flags the protocol sees.
func TestNodesLadderAbsorption(t *testing.T) {
	tol, err := order.NewTol(0.1)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(ladder []order.Tol) *Nodes {
		b := NewNodes(2, 0, 2, 7, true, tol) // distinct mode: keys are raw values
		b.SetLadder(ladder)
		// Make node 0 a top member and install the band [900, 1100]:
		// ladder bands nest around the midpoint 1000.
		b.Winner(0, true)
		b.ApplyBounds(900, 1100)
		return b
	}
	ladder := tol.Ladder(2)
	b := mk(ladder)
	plain := mk(nil)

	// Walk node 0 (top: bound from below) down through the levels. Band
	// half-widths around 1000: level 0 = 33, level 1 = 66, root = 100.
	steps := []struct {
		v           int64
		wantAbsorbs []int64
		wantViol    bool
	}{
		{990, []int64{0, 0}, false}, // inside every band
		{950, []int64{1, 0}, false}, // exits level 0, absorbed by level 1
		{980, []int64{1, 0}, false}, // re-anchored: no de-escalation within an install
		{910, []int64{1, 1}, false}, // exits level 1, absorbed by the root band
		{800, []int64{1, 1}, true},  // exits the root: already at the top level, nothing to count
		{500, []int64{1, 1}, true},  // still violating; counters unchanged
	}
	for i, st := range steps {
		topViol, _, err := b.Observe(0, st.v, int64(i))
		if err != nil {
			t.Fatal(err)
		}
		pViol, _, err := plain.Observe(0, st.v, int64(i))
		if err != nil {
			t.Fatal(err)
		}
		if topViol != st.wantViol || pViol != st.wantViol {
			t.Fatalf("step %d (v=%d): viol=%v plain=%v, want %v — ladder changed protocol flags", i, st.v, topViol, pViol, st.wantViol)
		}
		for l, want := range st.wantAbsorbs {
			if got := b.Absorbs()[l]; got != want {
				t.Fatalf("step %d (v=%d): absorbs[%d] = %d, want %d", i, st.v, l, got, want)
			}
		}
	}

	// A fresh install re-arms every level.
	b.ApplyBounds(400, 600)
	if _, _, err := b.Observe(0, 480, 10); err != nil {
		t.Fatal(err)
	}
	if got := b.Absorbs()[0]; got != 2 {
		t.Fatalf("post-reinstall absorbs[0] = %d, want 2 (one new level-0 exit)", got)
	}

	// Outsiders bind from above: node 1 exits upward.
	if _, outViol, err := b.Observe(1, 560, 11); err != nil || outViol {
		t.Fatalf("within-root upward drift flagged: viol=%v err=%v", outViol, err)
	}
	if got := b.Absorbs()[0]; got != 3 {
		t.Fatalf("outsider exit not counted: absorbs[0] = %d, want 3", got)
	}

	// Midpoint installs (exact/full) disarm the ladder.
	b.Midpoint(500, false)
	if _, _, err := b.Observe(0, 5000, 12); err != nil {
		t.Fatal(err)
	}
	if got := b.Absorbs()[1]; got != 2 {
		t.Fatalf("ladder tracked across a point install: absorbs[1] = %d, want 2", got)
	}
}
