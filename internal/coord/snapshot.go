package coord

import (
	"fmt"

	"repro/internal/comm"
	"repro/internal/filter"
	"repro/internal/order"
	"repro/internal/rng"
	"repro/internal/wire"
)

// Checkpoint/restore for the sans-I/O coordinator. A checkpoint is taken
// between steps (the machine idle, no protocol execution in flight) and
// captures exactly the state the next step reads: configuration, step
// counter, statistics, T+/T− bounds, membership and the message ledger
// for the Machine; per-node keys, filters, membership flags, violation
// history and generator state for a Nodes bank. Everything else — the
// extraction scratch of the Machine, the samplers of the bank — is
// (re)initialized before its next use, so a restored coordinator resumes
// bit-identically to one that never stopped: same reports, same counts,
// same randomness consumption. The equivalence tests in snapshot_test.go
// pin that property.

// Snapshot appends the machine's canonical checkpoint frame
// (wire.MachineState) to dst. It fails if a step is in flight: mid-step
// state references substrate interactions that cannot be serialized.
func (m *Machine) Snapshot(dst []byte) ([]byte, error) {
	if m.state != stIdle {
		return nil, fmt.Errorf("coord: snapshot with a step in flight (state %d)", m.state)
	}
	s := wire.MachineState{
		N:              m.cfg.N,
		K:              m.cfg.K,
		EpsNum:         m.cfg.Tol.Num(),
		Step:           m.step,
		Init:           m.init,
		Steps:          m.stats.Steps,
		ViolationSteps: m.stats.ViolationSteps,
		HandlerCalls:   m.stats.HandlerCalls,
		Resets:         m.stats.Resets,
		TopChanges:     m.stats.TopChanges,
		TPlus:          int64(m.tPlus),
		TMinus:         int64(m.tMinus),
		CurLo:          int64(m.curLo),
		CurHi:          int64(m.curHi),
		Top:            m.top,
	}
	for pi, p := range comm.Phases() {
		c, b := m.led.PhaseCounts(p), m.led.PhaseBytes(p)
		base := pi * len(comm.Kinds())
		s.Counts[base+0], s.Bytes[base+0] = c.Up, b.Up
		s.Counts[base+1], s.Bytes[base+1] = c.Down, b.Down
		s.Counts[base+2], s.Bytes[base+2] = c.Bcast, b.Bcast
	}
	return s.Append(dst), nil
}

// RestoreMachine rebuilds an idle Machine from a Snapshot frame. Beyond
// canonical framing (checked by the decoder) it validates every semantic
// invariant an idle machine holds, so arbitrary bytes either restore a
// machine indistinguishable from the original or fail with an error —
// never a machine that panics later.
func RestoreMachine(p []byte) (*Machine, error) {
	var s wire.MachineState
	if err := s.Decode(p); err != nil {
		return nil, err
	}
	if s.N <= 0 || s.K < 1 || s.K > s.N {
		return nil, fmt.Errorf("coord: restored machine shape n=%d k=%d invalid", s.N, s.K)
	}
	tol, err := order.TolFromNum(s.EpsNum)
	if err != nil {
		return nil, err
	}
	if s.Step < 0 || s.Steps < 0 || s.ViolationSteps < 0 || s.HandlerCalls < 0 ||
		s.Resets < 0 || s.TopChanges < 0 {
		return nil, fmt.Errorf("coord: restored machine has negative counters")
	}
	if s.Init != (s.Step > 0) {
		return nil, fmt.Errorf("coord: restored machine init=%v inconsistent with step %d", s.Init, s.Step)
	}
	want := 0
	if s.Init {
		want = s.K
	}
	if len(s.Top) != want {
		return nil, fmt.Errorf("coord: restored membership has %d ids, want %d", len(s.Top), want)
	}
	for _, id := range s.Top {
		if id >= s.N { // ids decode strictly increasing and non-negative
			return nil, fmt.Errorf("coord: restored membership id %d out of range", id)
		}
	}
	for i := range s.Counts {
		if s.Counts[i] < 0 || s.Bytes[i] < 0 {
			return nil, fmt.Errorf("coord: restored ledger cell %d is negative", i)
		}
	}
	m := New(Config{N: s.N, K: s.K, Tol: tol})
	m.step = s.Step
	m.init = s.Init
	m.stats = Stats{
		Steps:          s.Steps,
		ViolationSteps: s.ViolationSteps,
		HandlerCalls:   s.HandlerCalls,
		Resets:         s.Resets,
		TopChanges:     s.TopChanges,
	}
	m.tPlus = order.Key(s.TPlus)
	m.tMinus = order.Key(s.TMinus)
	m.curLo = order.Key(s.CurLo)
	m.curHi = order.Key(s.CurHi)
	for _, id := range s.Top {
		m.inTop[id] = true
	}
	m.top = append(m.top, s.Top...)
	// Replay the ledger through the phase recorders so the restored
	// breakdown and total agree by construction, as in a live machine.
	for pi, ph := range comm.Phases() {
		rec := m.Recorder(ph)
		base := pi * len(comm.Kinds())
		for ki, kind := range comm.Kinds() {
			comm.RecordSized(rec, kind, s.Counts[base+ki], s.Bytes[base+ki])
		}
	}
	return m, nil
}

// Snapshot appends the bank's canonical checkpoint frame (wire.NodesState)
// to dst. Banks carry no in-flight marker, so the contract is the caller's:
// snapshot only between steps, when no protocol execution is running —
// samplers are (re)initialized at round 0 of every execution and are the
// one piece of node state a between-steps checkpoint can omit.
func (b *Nodes) Snapshot(dst []byte) []byte {
	n := b.hi - b.lo
	s := wire.NodesState{
		N:        b.codec.N(),
		Lo:       b.lo,
		Hi:       b.hi,
		EpsNum:   b.tol.Num(),
		Distinct: b.distinct,
		Keys:     make([]int64, n),
		IvLo:     make([]int64, n),
		IvHi:     make([]int64, n),
		OrdLo:    make([]int64, n),
		OrdHi:    make([]int64, n),
		Flags:    make([]byte, n),
		ViolStep: make([]int64, n),
		RngState: make([]uint64, n),
		RngInc:   make([]uint64, n),
	}
	for i := range b.ns {
		nd := &b.ns[i]
		s.Keys[i] = int64(nd.key)
		s.IvLo[i], s.IvHi[i] = int64(nd.iv.Lo), int64(nd.iv.Hi)
		s.OrdLo[i], s.OrdHi[i] = int64(nd.ordIv.Lo), int64(nd.ordIv.Hi)
		if nd.inTop {
			s.Flags[i] |= wire.FlagNodeInTop
		}
		if nd.wasTop {
			s.Flags[i] |= wire.FlagNodeWasTop
		}
		if nd.extracted {
			s.Flags[i] |= wire.FlagNodeExtracted
		}
		s.ViolStep[i] = nd.violStep
		s.RngState[i], s.RngInc[i] = nd.rng.State()
	}
	return s.Append(dst)
}

// RestoreNodes rebuilds a node bank from a Snapshot frame. The generators
// resume mid-sequence via rng.FromState, so the restored bank consumes
// randomness exactly where the original left off — the property that keeps
// Las Vegas protocol runs bit-identical across the restore. Unlike
// NewNodes it does not walk the root generator's split sequence; the
// snapshot already carries each node's generator.
func RestoreNodes(p []byte) (*Nodes, error) {
	var s wire.NodesState
	if err := s.Decode(p); err != nil {
		return nil, err
	}
	if s.N <= 0 || s.Lo >= s.Hi { // decode checked 0 <= Lo <= Hi <= N
		return nil, fmt.Errorf("coord: restored node range [%d, %d) of %d is empty", s.Lo, s.Hi, s.N)
	}
	tol, err := order.TolFromNum(s.EpsNum)
	if err != nil {
		return nil, err
	}
	b := &Nodes{
		lo:       s.Lo,
		hi:       s.Hi,
		distinct: s.Distinct,
		codec:    order.NewCodec(s.N),
		tol:      tol,
		maxVal:   order.MaxValueFor(s.N, s.Distinct),
		ns:       make([]nodeState, s.Hi-s.Lo),
	}
	for i := range b.ns {
		r, err := rng.FromState(s.RngState[i], s.RngInc[i])
		if err != nil {
			return nil, fmt.Errorf("coord: restored node %d: %w", s.Lo+i, err)
		}
		b.ns[i] = nodeState{
			id:        s.Lo + i,
			rng:       r,
			key:       order.Key(s.Keys[i]),
			iv:        filter.Interval{Lo: order.Key(s.IvLo[i]), Hi: order.Key(s.IvHi[i])},
			ordIv:     filter.Interval{Lo: order.Key(s.OrdLo[i]), Hi: order.Key(s.OrdHi[i])},
			inTop:     s.Flags[i]&wire.FlagNodeInTop != 0,
			wasTop:    s.Flags[i]&wire.FlagNodeWasTop != 0,
			violStep:  s.ViolStep[i],
			extracted: s.Flags[i]&wire.FlagNodeExtracted != 0,
		}
	}
	return b, nil
}
