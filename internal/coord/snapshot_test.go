package coord

import (
	"bytes"
	"testing"

	"repro/internal/comm"
	"repro/internal/order"
	"repro/internal/protocol"
	"repro/internal/stream"
	"repro/internal/wire"
)

// driveEffects executes one out-of-band effect chain (ForceReset) on the
// driver, exactly as observe does for a step's chain.
func driveEffects(d *driver, eff Effect) {
	step := d.mach.Step()
	for eff.Kind != EffDone {
		switch eff.Kind {
		case EffExec:
			ex := protocol.NewExec(eff.Bound, MinimumTag(eff.Tag), d.mach.Recorder(eff.Phase), nil, step)
			for ex.More() {
				r, best := ex.Round(), ex.Best()
				d.bank.Round(eff.Tag, r, best, eff.Bound, step, func(id int, key order.Key) {
					ex.Bid(id, key)
				})
				ex.EndRound()
			}
			res := ex.Result()
			eff = d.mach.ExecDone(res.OK, res.ID, res.Key)
		case EffResetBegin:
			d.bank.ResetBegin()
			eff = d.mach.Ack()
		case EffWinner:
			d.bank.Winner(eff.Target, eff.IsTop)
			eff = d.mach.Ack()
		case EffMidpoint:
			d.bank.Midpoint(eff.Mid, eff.Full)
			eff = d.mach.Ack()
		case EffBounds:
			d.bank.ApplyBounds(eff.Lo, eff.Hi)
			eff = d.mach.Ack()
		default:
			panic(eff.Kind)
		}
	}
}

// checkpoint round-trips the driver through its wire frames and returns
// the restored copy.
func checkpoint(t *testing.T, d *driver) *driver {
	t.Helper()
	mframe, err := d.mach.Snapshot(nil)
	if err != nil {
		t.Fatalf("machine snapshot: %v", err)
	}
	nframe := d.bank.Snapshot(nil)
	mach, err := RestoreMachine(mframe)
	if err != nil {
		t.Fatalf("restore machine: %v", err)
	}
	bank, err := RestoreNodes(nframe)
	if err != nil {
		t.Fatalf("restore nodes: %v", err)
	}
	return &driver{mach: mach, bank: bank}
}

// TestSnapshotRestoreResumesBitIdentically is the acceptance pin for
// coordinator crash recovery: a run that checkpoints and restores halfway
// produces reports, statistics, ledgers and even final checkpoint bytes
// identical to a run that never stopped.
func TestSnapshotRestoreResumesBitIdentically(t *testing.T) {
	const n, k, steps, cut = 12, 3, 300, 150
	ref := newDriver(n, k, 77)
	run := newDriver(n, k, 77)
	src1 := stream.NewRandomWalk(stream.WalkConfig{N: n, Lo: 0, Hi: 1 << 16, MaxStep: 500, Seed: 5})
	src2 := stream.NewRandomWalk(stream.WalkConfig{N: n, Lo: 0, Hi: 1 << 16, MaxStep: 500, Seed: 5})
	v1, v2 := make([]int64, n), make([]int64, n)
	for s := 0; s < steps; s++ {
		if s == cut {
			run = checkpoint(t, run)
		}
		src1.Step(v1)
		src2.Step(v2)
		want := ref.observe(v1)
		got := run.observe(v2)
		if !equal(got, want) {
			t.Fatalf("step %d: restored run reports %v, uninterrupted %v", s, got, want)
		}
	}
	if ref.mach.Stats() != run.mach.Stats() {
		t.Fatalf("stats diverged: %+v vs %+v", run.mach.Stats(), ref.mach.Stats())
	}
	if ref.mach.Counts() != run.mach.Counts() || ref.mach.Bytes() != run.mach.Bytes() {
		t.Fatalf("ledger totals diverged: %v/%v vs %v/%v",
			run.mach.Counts(), run.mach.Bytes(), ref.mach.Counts(), ref.mach.Bytes())
	}
	for _, p := range comm.Phases() {
		if ref.mach.Ledger().PhaseCounts(p) != run.mach.Ledger().PhaseCounts(p) ||
			ref.mach.Ledger().PhaseBytes(p) != run.mach.Ledger().PhaseBytes(p) {
			t.Fatalf("phase %v ledger diverged", p)
		}
	}
	refM, err := ref.mach.Snapshot(nil)
	if err != nil {
		t.Fatal(err)
	}
	runM, err := run.mach.Snapshot(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(refM, runM) {
		t.Fatal("final machine checkpoints differ")
	}
	if !bytes.Equal(ref.bank.Snapshot(nil), run.bank.Snapshot(nil)) {
		t.Fatal("final bank checkpoints differ")
	}
}

// TestSnapshotRequiresIdle pins the in-flight guard: mid-step machine
// state references substrate interactions and must not serialize.
func TestSnapshotRequiresIdle(t *testing.T) {
	m := New(Config{N: 4, K: 2})
	m.BeginStep()
	if _, err := m.Snapshot(nil); err == nil {
		t.Fatal("snapshot of an in-flight machine succeeded")
	}
}

// TestAbortForceResetReconverges exercises the failover primitives the
// engines build on: abandoning a step mid-flight and forcing a reset
// leaves the machine reporting the oracle again on the very next step.
func TestAbortForceResetReconverges(t *testing.T) {
	const n, k = 10, 3
	d := newDriver(n, k, 21)
	src := stream.NewRandomWalk(stream.WalkConfig{N: n, Lo: 0, Hi: 1 << 16, MaxStep: 500, Seed: 9})
	vals := make([]int64, n)
	for s := 0; s < 50; s++ {
		src.Step(vals)
		d.observe(vals)
	}
	// Simulate a peer dying mid-step: the step cannot complete, so the
	// adapter abandons it and re-converges through a forced reset.
	d.mach.BeginStep()
	d.mach.Abort()
	resets := d.mach.Stats().Resets
	driveEffects(d, d.mach.ForceReset())
	if got := d.mach.Stats().Resets; got != resets+1 {
		t.Fatalf("forced reset not counted: %d -> %d", resets, got)
	}
	if want := oracle(vals, k); !equal(d.mach.Top(), want) {
		t.Fatalf("after forced reset: got %v want %v", d.mach.Top(), want)
	}
	for s := 0; s < 50; s++ {
		src.Step(vals)
		got := d.observe(vals)
		if want := oracle(vals, k); !equal(got, want) {
			t.Fatalf("post-recovery step %d: got %v want %v", s, got, want)
		}
	}
}

// TestForceResetPanicsInFlight pins the misuse guard.
func TestForceResetPanicsInFlight(t *testing.T) {
	m := New(Config{N: 4, K: 2})
	m.BeginStep()
	defer func() {
		if recover() == nil {
			t.Fatal("ForceReset mid-step did not panic")
		}
	}()
	m.ForceReset()
}

// TestRestoreRejectsInvalidState feeds semantically corrupt checkpoints to
// the restore functions: each must fail with an error, never build a
// machine or bank that misbehaves later.
func TestRestoreRejectsInvalidState(t *testing.T) {
	base := wire.MachineState{
		N: 8, K: 2, Step: 5, Init: true,
		Steps: 5, Resets: 1, TopChanges: 1,
		Top: []int{1, 5},
	}
	cases := []struct {
		name string
		mut  func(s *wire.MachineState)
	}{
		{"zero n", func(s *wire.MachineState) { s.N, s.K, s.Top = 0, 0, nil }},
		{"k > n", func(s *wire.MachineState) { s.K = 9; s.Top = []int{0, 1, 2, 3, 4, 5, 6, 7} }},
		{"init without steps", func(s *wire.MachineState) { s.Step, s.Steps = 0, 0 }},
		{"steps without init", func(s *wire.MachineState) { s.Init = false }},
		{"membership too small", func(s *wire.MachineState) { s.Top = []int{3} }},
		{"membership id out of range", func(s *wire.MachineState) { s.Top = []int{1, 8} }},
		{"negative step", func(s *wire.MachineState) { s.Step = -1 }},
		{"negative ledger cell", func(s *wire.MachineState) { s.Counts[4] = -1 }},
		{"negative ledger bytes", func(s *wire.MachineState) { s.Bytes[7] = -2 }},
	}
	for _, tc := range cases {
		s := base
		s.Top = append([]int(nil), base.Top...)
		tc.mut(&s)
		if _, err := RestoreMachine(s.Append(nil)); err == nil {
			t.Errorf("%s: restore succeeded", tc.name)
		}
	}

	bank := NewNodes(8, 2, 6, 42, false, order.Tol{})
	frame := bank.Snapshot(nil)
	var ns wire.NodesState
	if err := ns.Decode(frame); err != nil {
		t.Fatal(err)
	}
	ns.RngInc[1] = 4 // even increment: degraded generator
	if _, err := RestoreNodes(ns.Append(nil)); err == nil {
		t.Error("even rng increment accepted")
	}
	empty := wire.NodesState{N: 8, Lo: 3, Hi: 3}
	if _, err := RestoreNodes(empty.Append(nil)); err == nil {
		t.Error("empty node range accepted")
	}
}

// TestRestoreNeverPanics bit-flips every position of valid checkpoint
// frames and requires the restore path to return (value or error) without
// panicking — the wire decoders guarantee framing, this pins the semantic
// layer on top.
func TestRestoreNeverPanics(t *testing.T) {
	d := newDriver(8, 3, 7)
	src := stream.NewRandomWalk(stream.WalkConfig{N: 8, Lo: 0, Hi: 1 << 12, MaxStep: 100, Seed: 3})
	vals := make([]int64, 8)
	for s := 0; s < 20; s++ {
		src.Step(vals)
		d.observe(vals)
	}
	mframe, err := d.mach.Snapshot(nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, frame := range [][]byte{mframe, d.bank.Snapshot(nil)} {
		for i := range frame {
			for bit := 0; bit < 8; bit++ {
				mut := append([]byte(nil), frame...)
				mut[i] ^= 1 << bit
				func() {
					defer func() {
						if r := recover(); r != nil {
							t.Fatalf("restore panicked on byte %d bit %d: %v", i, bit, r)
						}
					}()
					_, _ = RestoreMachine(mut)
					_, _ = RestoreNodes(mut)
				}()
			}
		}
	}
}
