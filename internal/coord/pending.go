package coord

import (
	"fmt"
	"slices"
)

// Pending is the bounded per-node coalescing buffer of the asynchronous
// ingestion path: the staging area between observation producers and the
// coordinator that executes protocol steps. It holds at most one queued
// observation per node — a newer observation of a node that already has
// one queued overwrites it in place (last-write-wins), never appends —
// and at most Cap distinct pending nodes overall. Overwriting is
// semantically free for the Mäcker et al. protocol: every decision the
// coordinator takes depends only on each node's *current* value, so a
// superseded observation could never have influenced anything but the
// intermediate reports of the steps it is coalesced across.
//
// Pending is a pure data structure (no locking, no goroutines); the
// ingest driver that owns one serializes access and implements the
// overflow policies on top of Full/EvictOldest. Eviction order is
// first-queued-first-evicted: coalescing into an already-queued node
// does not refresh its queue position, so the "oldest" pending node is
// the one whose first un-applied observation is stalest.
type Pending struct {
	// slot maps a node id to 1+its ring index while the node has a
	// queued observation, 0 otherwise.
	slot []int32
	// val holds the queued observation of each pending node.
	val []int64
	// ring lists the pending node ids in queue order: the oldest lives
	// at index head, newer insertions follow circularly.
	ring  []int32
	head  int
	count int
}

// NewPending builds a buffer for nodes in [0, n) admitting at most depth
// distinct pending nodes (1 <= depth; a depth beyond n is capped at n,
// since a node never occupies two slots).
func NewPending(n, depth int) *Pending {
	if n <= 0 {
		panic("coord: Pending needs n > 0")
	}
	if depth < 1 {
		panic("coord: Pending needs depth >= 1")
	}
	if depth > n {
		depth = n
	}
	return &Pending{
		slot: make([]int32, n),
		val:  make([]int64, n),
		ring: make([]int32, depth),
	}
}

// Len returns the number of distinct nodes with a queued observation.
func (p *Pending) Len() int { return p.count }

// Cap returns the maximum number of distinct pending nodes.
func (p *Pending) Cap() int { return len(p.ring) }

// Full reports whether a new node's observation cannot be admitted
// without coalescing or eviction.
func (p *Pending) Full() bool { return p.count == len(p.ring) }

// Has reports whether node id has a queued observation.
func (p *Pending) Has(id int) bool { return p.slot[id] != 0 }

// Value returns node id's queued observation; it panics when none is
// queued (check Has first).
func (p *Pending) Value(id int) int64 {
	if p.slot[id] == 0 {
		panic(fmt.Sprintf("coord: node %d has no pending observation", id))
	}
	return p.val[id]
}

// Put queues node id's observation v, overwriting any queued one
// (coalesced reports which). Inserting a new node into a full buffer is
// a caller bug — the driver must consult Full and apply its overflow
// policy first — and panics.
func (p *Pending) Put(id int, v int64) (coalesced bool) {
	if p.slot[id] != 0 {
		p.val[id] = v
		return true
	}
	if p.count == len(p.ring) {
		panic(fmt.Sprintf("coord: Put(%d) on a full Pending buffer", id))
	}
	at := (p.head + p.count) % len(p.ring)
	p.ring[at] = int32(id)
	p.slot[id] = int32(at) + 1
	p.val[id] = v
	p.count++
	return false
}

// EvictOldest removes and returns the oldest queued observation (the
// DropOldest overflow policy). It panics on an empty buffer.
func (p *Pending) EvictOldest() (id int, v int64) {
	if p.count == 0 {
		panic("coord: EvictOldest on an empty Pending buffer")
	}
	id = int(p.ring[p.head])
	v = p.val[id]
	p.slot[id] = 0
	p.head = (p.head + 1) % len(p.ring)
	p.count--
	return id, v
}

// Take appends every queued observation to ids/vals in ascending node
// order — the shape ObserveDelta requires — clears the buffer, and
// returns the extended slices. With capacity >= Len it allocates
// nothing, so a draining worker can reuse one pair of scratch slices
// for the lifetime of the buffer.
func (p *Pending) Take(ids []int, vals []int64) ([]int, []int64) {
	if p.count == 0 {
		return ids, vals
	}
	start := len(ids)
	for i := 0; i < p.count; i++ {
		ids = append(ids, int(p.ring[(p.head+i)%len(p.ring)]))
	}
	taken := ids[start:]
	slices.Sort(taken)
	for _, id := range taken {
		vals = append(vals, p.val[id])
		p.slot[id] = 0
	}
	p.head, p.count = 0, 0
	return ids, vals
}
