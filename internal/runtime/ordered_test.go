package runtime

import (
	"testing"

	"repro/internal/core"
	"repro/internal/stream"
)

// TestOrderedEquivalenceWithSequential pins the ordered concurrent engine
// against core.OrderedMonitor: identical rankings and identical message
// counts at every step, per workload family.
func TestOrderedEquivalenceWithSequential(t *testing.T) {
	cases := []struct {
		name string
		n, k int
		src  func(n int) stream.Source
	}{
		{"walk", 10, 3, func(n int) stream.Source {
			return stream.NewRandomWalk(stream.WalkConfig{N: n, Lo: 0, Hi: 100000, MaxStep: 600, Seed: 31})
		}},
		{"iid", 8, 2, func(n int) stream.Source {
			return stream.NewIID(stream.IIDConfig{N: n, Seed: 32, Dist: stream.Uniform, Lo: 0, Hi: 1 << 18})
		}},
		{"twoband-churn", 12, 4, func(n int) stream.Source {
			return stream.NewTwoBand(stream.TwoBandConfig{N: n, K: 4, Seed: 33, Gap: 1 << 16, BandWidth: 1 << 10, MaxStep: 1 << 8, SwapEvery: 40})
		}},
		{"rotation", 6, 2, func(n int) stream.Source {
			return stream.NewRotation(stream.RotationConfig{N: n, Period: 3, Base: 10, Peak: 5000})
		}},
		{"k-equals-n", 5, 5, func(n int) stream.Source {
			return stream.NewRandomWalk(stream.WalkConfig{N: n, Lo: 0, Hi: 10000, MaxStep: 400, Seed: 34})
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			const seed, steps = 71, 250
			seq := core.NewOrdered(core.Config{N: tc.n, K: tc.k, Seed: seed})
			conc := NewOrdered(Config{N: tc.n, K: tc.k, Seed: seed})
			defer conc.Close()
			srcA, srcB := tc.src(tc.n), tc.src(tc.n)
			va, vb := make([]int64, tc.n), make([]int64, tc.n)
			for s := 0; s < steps; s++ {
				srcA.Step(va)
				srcB.Step(vb)
				a, b := seq.Observe(va), conc.Observe(vb)
				if !equal(a, b) {
					t.Fatalf("step %d: rankings differ: seq=%v conc=%v", s, a, b)
				}
				if seq.Counts() != conc.Counts() {
					t.Fatalf("step %d: counts differ: seq=%v conc=%v", s, seq.Counts(), conc.Counts())
				}
			}
		})
	}
}

func TestOrderedRuntimeExactRanks(t *testing.T) {
	const n, k = 9, 3
	ot := NewOrdered(Config{N: n, K: k, Seed: 35})
	defer ot.Close()
	src := stream.NewBursty(stream.BurstyConfig{N: n, Seed: 36, Lo: 0, Hi: 1 << 20, Noise: 5, BurstProb: 0.05, BurstMax: 1 << 16})
	vals := make([]int64, n)
	for s := 0; s < 250; s++ {
		src.Step(vals)
		got := ot.Observe(vals)
		if len(got) != k {
			t.Fatalf("step %d: rank count %d", s, len(got))
		}
		// Verify descending rank order under (value, smaller-id-wins).
		for i := 1; i < len(got); i++ {
			hi, lo := got[i-1], got[i]
			if vals[hi] < vals[lo] || (vals[hi] == vals[lo] && hi > lo) {
				t.Fatalf("step %d: rank inversion %v (vals %v)", s, got, vals)
			}
		}
		// Membership must match the set oracle.
		want := oracleTop(vals, k)
		set := map[int]bool{}
		for _, id := range got {
			set[id] = true
		}
		for _, id := range want {
			if !set[id] {
				t.Fatalf("step %d: membership wrong: %v vs %v", s, got, want)
			}
		}
	}
}

func TestOrderedRuntimeTopIsCopy(t *testing.T) {
	ot := NewOrdered(Config{N: 4, K: 2, Seed: 37})
	defer ot.Close()
	ot.Observe([]int64{4, 3, 2, 1})
	top := ot.Top()
	top[0] = 99
	if ot.Top()[0] == 99 {
		t.Fatal("Top must return a copy")
	}
}

func TestOrderedRuntimeLedgerConsistent(t *testing.T) {
	ot := NewOrdered(Config{N: 8, K: 3, Seed: 38})
	defer ot.Close()
	src := stream.NewTwoBand(stream.TwoBandConfig{N: 8, K: 3, Seed: 39, Gap: 1 << 14, BandWidth: 1 << 9, MaxStep: 1 << 7})
	vals := make([]int64, 8)
	for s := 0; s < 100; s++ {
		src.Step(vals)
		ot.Observe(vals)
	}
	if ot.Counts() != ot.Ledger().Total() {
		t.Fatal("Counts and Ledger disagree")
	}
	if ot.Counts().Down == 0 {
		t.Fatal("band churn should have reassigned order bounds (Down > 0)")
	}
}
