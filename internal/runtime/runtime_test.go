package runtime

import (
	"sort"
	"testing"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/order"
	"repro/internal/stream"
)

func equal(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func oracleTop(vals []int64, k int) []int {
	codec := order.NewCodec(len(vals))
	keys := make([]order.Key, len(vals))
	for i, v := range vals {
		keys[i] = codec.Encode(v, i)
	}
	ids := make([]int, len(vals))
	for i := range ids {
		ids[i] = i
	}
	sort.Slice(ids, func(a, b int) bool { return keys[ids[a]] > keys[ids[b]] })
	top := append([]int(nil), ids[:k]...)
	sort.Ints(top)
	return top
}

// TestEquivalenceWithSequentialEngine is the central fidelity check: the
// goroutine engine and the sequential engine must produce identical top-k
// reports AND identical message counts at every step, for the same seed.
func TestEquivalenceWithSequentialEngine(t *testing.T) {
	cases := []struct {
		name string
		n, k int
		src  func(n int) stream.Source
	}{
		{"walk", 12, 3, func(n int) stream.Source {
			return stream.NewRandomWalk(stream.WalkConfig{N: n, Lo: 0, Hi: 100000, MaxStep: 400, Seed: 2})
		}},
		{"iid", 9, 2, func(n int) stream.Source {
			return stream.NewIID(stream.IIDConfig{N: n, Seed: 3, Dist: stream.Uniform, Lo: 0, Hi: 1 << 20})
		}},
		{"rotation", 7, 1, func(n int) stream.Source {
			return stream.NewRotation(stream.RotationConfig{N: n, Period: 4, Base: 10, Peak: 1000})
		}},
		{"twoband", 14, 4, func(n int) stream.Source {
			return stream.NewTwoBand(stream.TwoBandConfig{N: n, K: 4, Seed: 5, Gap: 1 << 16, BandWidth: 1 << 8, MaxStep: 40, SwapEvery: 30})
		}},
		{"k-equals-n", 6, 6, func(n int) stream.Source {
			return stream.NewIID(stream.IIDConfig{N: n, Seed: 6, Dist: stream.Uniform, Lo: 0, Hi: 1000})
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			const seed, steps = 41, 200
			seq := core.New(core.Config{N: tc.n, K: tc.k, Seed: seed})
			conc := New(Config{N: tc.n, K: tc.k, Seed: seed})
			defer conc.Close()

			srcA, srcB := tc.src(tc.n), tc.src(tc.n)
			va, vb := make([]int64, tc.n), make([]int64, tc.n)
			for s := 0; s < steps; s++ {
				srcA.Step(va)
				srcB.Step(vb)
				topSeq := seq.Observe(va)
				topCon := conc.Observe(vb)
				if !equal(topSeq, topCon) {
					t.Fatalf("step %d: reports differ: seq=%v conc=%v", s, topSeq, topCon)
				}
				if cs, cc := seq.Counts(), conc.Counts(); cs != cc {
					t.Fatalf("step %d: counts differ: seq=%v conc=%v", s, cs, cc)
				}
				if bs, bc := seq.Ledger().TotalBytes(), conc.Ledger().TotalBytes(); bs != bc {
					t.Fatalf("step %d: bytes differ: seq=%v conc=%v", s, bs, bc)
				}
			}
			// The per-phase breakdown must agree as well.
			for _, p := range comm.Phases() {
				if a, b := seq.Ledger().PhaseCounts(p), conc.Ledger().PhaseCounts(p); a != b {
					t.Fatalf("phase %v differs: seq=%v conc=%v", p, a, b)
				}
				if a, b := seq.Ledger().PhaseBytes(p), conc.Ledger().PhaseBytes(p); a != b {
					t.Fatalf("phase %v bytes differ: seq=%v conc=%v", p, a, b)
				}
			}
		})
	}
}

func TestRuntimeExactAgainstOracle(t *testing.T) {
	rt := New(Config{N: 10, K: 3, Seed: 7})
	defer rt.Close()
	src := stream.NewBursty(stream.BurstyConfig{N: 10, Seed: 8, Lo: 0, Hi: 1 << 22, Noise: 5, BurstProb: 0.05, BurstMax: 1 << 18})
	vals := make([]int64, 10)
	for s := 0; s < 250; s++ {
		src.Step(vals)
		got := rt.Observe(vals)
		if want := oracleTop(vals, 3); !equal(got, want) {
			t.Fatalf("step %d: got %v want %v", s, got, want)
		}
	}
}

func TestRuntimePhaseBreakdown(t *testing.T) {
	rt := New(Config{N: 8, K: 2, Seed: 9})
	defer rt.Close()
	src := stream.NewIID(stream.IIDConfig{N: 8, Seed: 10, Dist: stream.Uniform, Lo: 0, Hi: 1 << 16})
	vals := make([]int64, 8)
	for s := 0; s < 60; s++ {
		src.Step(vals)
		rt.Observe(vals)
	}
	led := rt.Ledger()
	var phaseSum int64
	for _, p := range comm.Phases() {
		phaseSum += led.PhaseCounts(p).Total()
	}
	if total := led.Total().Total(); total == 0 || phaseSum != total {
		t.Fatalf("phase sum %d vs total %d", phaseSum, total)
	}
}

func TestRuntimeCloseIdempotent(t *testing.T) {
	rt := New(Config{N: 4, K: 1, Seed: 11})
	rt.Close()
	rt.Close() // must not panic
}

func TestRuntimeObserveAfterClosePanics(t *testing.T) {
	rt := New(Config{N: 4, K: 1, Seed: 12})
	rt.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	rt.Observe([]int64{1, 2, 3, 4})
}

func TestRuntimePanics(t *testing.T) {
	for i, f := range []func(){
		func() { New(Config{N: 0, K: 1}) },
		func() { New(Config{N: 3, K: 0}) },
		func() { New(Config{N: 3, K: 4}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
	rt := New(Config{N: 3, K: 1, Seed: 1})
	defer rt.Close()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic for wrong observation width")
			}
		}()
		rt.Observe([]int64{1, 2})
	}()
}

func TestRuntimeDistinctValuesMode(t *testing.T) {
	rows := make([][]int64, 60)
	for s := range rows {
		rows[s] = make([]int64, 5)
		for i := range rows[s] {
			rows[s][i] = int64((i*31+s*17)%97)*100 + int64(i)
		}
	}
	rt := New(Config{N: 5, K: 2, Seed: 13, DistinctValues: true})
	defer rt.Close()
	seq := core.New(core.Config{N: 5, K: 2, Seed: 13, DistinctValues: true})
	src1, src2 := stream.NewTraceSource(rows), stream.NewTraceSource(rows)
	va, vb := make([]int64, 5), make([]int64, 5)
	for s := 0; s < 60; s++ {
		src1.Step(va)
		src2.Step(vb)
		if !equal(rt.Observe(va), seq.Observe(vb)) {
			t.Fatalf("distinct mode diverged at step %d", s)
		}
		if rt.Counts() != seq.Counts() {
			t.Fatalf("distinct mode counts diverged at step %d", s)
		}
	}
}

func TestRuntimeTopStableWithoutViolations(t *testing.T) {
	rt := New(Config{N: 6, K: 2, Seed: 14})
	defer rt.Close()
	vals := []int64{60, 50, 40, 30, 20, 10}
	first := rt.Observe(vals)
	after := rt.Counts()
	for s := 0; s < 50; s++ {
		got := rt.Observe(vals)
		if !equal(got, first) {
			t.Fatalf("top changed on constant input: %v -> %v", first, got)
		}
	}
	if rt.Counts() != after {
		t.Fatalf("constant input cost messages: %v -> %v", after, rt.Counts())
	}
}
