package runtime

import (
	"fmt"

	"repro/internal/coord"
	"repro/internal/order"
	"repro/internal/wire"
)

// Snapshot and Restore give the concurrent engine idle-point
// checkpointing. Between steps the shard goroutines are parked on their
// command channels and the last reply receive established a
// happens-before edge over every bank cell they touched, so the
// coordinator may read the whole bank race-free — the same argument the
// step loop itself relies on. A checkpoint is therefore one MachineState
// frame plus the full-range bank's NodesState frame, and Restore rebuilds
// a runtime that resumes bit-identically to an uninterrupted twin (shard
// count may differ across restores; reports and ledgers never depend on
// it).

// Snapshot encodes the runtime's state between steps. It fails if the
// runtime is closed or a step is somehow in flight.
func (rt *Runtime) Snapshot() (mach, nodes []byte, err error) {
	if rt.closed {
		return nil, nil, fmt.Errorf("runtime: snapshot of a closed runtime")
	}
	machFrame, err := rt.mach.Snapshot(nil)
	if err != nil {
		return nil, nil, err
	}
	return machFrame, rt.bank.Snapshot(nil), nil
}

// Restore rebuilds a runtime from Snapshot frames taken under the same
// configuration, validating every frame field against cfg first. The
// restored runtime starts its own shard goroutines sized for this
// process.
func Restore(cfg Config, machFrame, nodesFrame []byte) (*Runtime, error) {
	if cfg.N <= 0 || cfg.K < 1 || cfg.K > cfg.N {
		return nil, fmt.Errorf("runtime: restore config needs 1 <= K <= N, got n=%d k=%d", cfg.N, cfg.K)
	}
	tol, err := order.NewTol(cfg.Epsilon)
	if err != nil {
		return nil, fmt.Errorf("runtime: restore: %v", err)
	}
	var ms wire.MachineState
	if err := ms.Decode(machFrame); err != nil {
		return nil, fmt.Errorf("runtime: restore machine frame: %v", err)
	}
	if ms.N != cfg.N || ms.K != cfg.K {
		return nil, fmt.Errorf("runtime: checkpoint is for n=%d k=%d, config has n=%d k=%d", ms.N, ms.K, cfg.N, cfg.K)
	}
	if ms.EpsNum != tol.Num() {
		return nil, fmt.Errorf("runtime: checkpoint tolerance %d/2^20 differs from configured %d/2^20", ms.EpsNum, tol.Num())
	}
	var ns wire.NodesState
	if err := ns.Decode(nodesFrame); err != nil {
		return nil, fmt.Errorf("runtime: restore nodes frame: %v", err)
	}
	if ns.N != cfg.N || ns.Lo != 0 || ns.Hi != cfg.N {
		return nil, fmt.Errorf("runtime: checkpoint bank covers [%d, %d) of %d, want [0, %d)", ns.Lo, ns.Hi, ns.N, cfg.N)
	}
	if ns.EpsNum != tol.Num() {
		return nil, fmt.Errorf("runtime: checkpoint bank tolerance %d/2^20 differs from configured %d/2^20", ns.EpsNum, tol.Num())
	}
	if ns.Distinct != cfg.DistinctValues {
		return nil, fmt.Errorf("runtime: checkpoint distinct-values mode %v differs from configured %v", ns.Distinct, cfg.DistinctValues)
	}
	mach, err := coord.RestoreMachine(machFrame)
	if err != nil {
		return nil, fmt.Errorf("runtime: restore machine: %v", err)
	}
	bank, err := coord.RestoreNodes(nodesFrame)
	if err != nil {
		return nil, fmt.Errorf("runtime: restore bank: %v", err)
	}
	rt := assemble(cfg, mach, bank)
	rt.step = mach.Step()
	return rt, nil
}
