package runtime

import (
	"testing"

	"repro/internal/core"
	"repro/internal/stream"
)

// TestAppendTopIsACopy is the aliasing regression for the concurrent
// engine: the slice AppendTop returns must be caller-owned — mutating it
// after later steps must not corrupt the engine (unlike the Top / Observe
// views, which are documented as engine-owned and read-only). A pristine
// sequential twin run in lockstep detects any corruption.
func TestAppendTopIsACopy(t *testing.T) {
	const n, k, seed = 14, 4, 11
	rt := New(Config{N: n, K: k, Seed: seed, Shards: 3})
	defer rt.Close()
	twin := core.New(core.Config{N: n, K: k, Seed: seed})

	srcA := stream.NewRandomWalk(stream.WalkConfig{N: n, Lo: 0, Hi: 1 << 16, MaxStep: 600, Seed: 12})
	srcB := stream.NewRandomWalk(stream.WalkConfig{N: n, Lo: 0, Hi: 1 << 16, MaxStep: 600, Seed: 12})
	va, vb := make([]int64, n), make([]int64, n)
	var copies [][]int
	for s := 0; s < 60; s++ {
		srcA.Step(va)
		srcB.Step(vb)
		topConc := rt.Observe(va)
		topSeq := twin.Observe(vb)
		if !equalInts(topConc, topSeq) {
			t.Fatalf("step %d: reports diverged: conc=%v seq=%v", s, topConc, topSeq)
		}
		copies = append(copies, rt.AppendTop(nil))
		// Scribble over every copy taken so far: if any of them aliased
		// engine state, the next steps diverge from the twin.
		for _, c := range copies {
			for i := range c {
				c[i] = -7
			}
		}
	}
	if cs, cc := twin.Counts(), rt.Counts(); cs != cc {
		t.Fatalf("counts diverged after mutations: seq=%v conc=%v", cs, cc)
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
