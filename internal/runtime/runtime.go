// Package runtime executes Algorithm 1 on a concurrent engine: shard
// goroutines hosting the distributed nodes plus a coordinator,
// communicating exclusively over channels. It demonstrates the distributed
// fidelity of the reproduction — nodes hold only their own state (current
// key, filter, membership flag, private RNG) and everything the
// coordinator learns about values arrives in counted messages.
//
// # Synchrony and the control plane
//
// The paper's model is synchronous: observations happen in lockstep and an
// arbitrary protocol may run between two observations, with round
// boundaries being common knowledge. The engine realizes that assumption
// with an uncounted control plane: command delivery, round barriers and
// per-round acknowledgements are channel plumbing that carries no value
// information a real synchronized deployment would not already have.
// Counted messages — node value reports (Up) and coordinator broadcasts
// (Bcast) — are recorded exactly as in the sequential engine
// (internal/core), and the equivalence test in this package asserts that
// both engines produce bit-identical message counts and reports under the
// same seed.
//
// # Sharding
//
// Nodes are partitioned into contiguous shards, one goroutine each, and
// the coordinator exchanges one batched command/reply pair per shard per
// protocol round instead of one per node. A round therefore costs
// O(shards) channel operations rather than O(n), which is what makes the
// engine usable at large n. Batching is pure control-plane mechanics: each
// node still takes exactly the decisions it would take with a private
// channel (its RNG is consulted identically), so message counts are
// unaffected by the shard layout.
package runtime

import (
	"fmt"
	gort "runtime"
	"sort"
	"sync"

	"repro/internal/comm"
	"repro/internal/filter"
	"repro/internal/order"
	"repro/internal/protocol"
	"repro/internal/rng"
	"repro/internal/wire"
)

// Config mirrors core.Config for the concurrent engine.
type Config struct {
	N, K           int
	Seed           uint64
	DistinctValues bool
	// Shards is the number of node-hosting goroutines. 0 selects
	// min(N, GOMAXPROCS). The shard layout does not affect reports or
	// message counts, only scheduling.
	Shards int
}

type cmdKind int

const (
	cObserve      cmdKind = iota // dense observation vector
	cObserveDelta                // sparse observation: only listed ids changed
	cRound
	cWinner
	cMidpoint
	cResetBegin
	cOrderCheck  // ordered variant: report if the order filter broke
	cOrderBounds // ordered variant: install new order-filter bounds
)

// protoTag identifies which cohort participates in a protocol round.
type protoTag int

const (
	tagViolMin protoTag = iota // violating former top-k nodes, minimum
	tagViolMax                 // violating outsiders, maximum
	tagHandMin                 // all top-k nodes, minimum
	tagHandMax                 // all outsiders, maximum
	tagReset                   // all not-yet-extracted nodes, maximum
)

func (t protoTag) minimum() bool { return t == tagViolMin || t == tagHandMin }

// shardCmd is one batched command delivered to a shard. It applies to all
// of the shard's nodes unless target selects a single node.
type shardCmd struct {
	kind  cmdKind
	step  int64     // cObserve*/cRound: current observation step
	vals  []int64   // cObserve: the full dense observation vector
	ids   []int     // cObserveDelta: strictly increasing changed node ids
	dvals []int64   // cObserveDelta: values parallel to ids
	tag   protoTag  // cRound
	round int       // cRound
	best  order.Key // cRound: best-so-far in the sampler's comparison domain
	bound int       // cRound: population bound N of the protocol
	tgt   int       // cWinner/cOrderCheck/cOrderBounds: target node id
	isTop bool      // cWinner: winner belongs to the new top-k
	mid   order.Key // cMidpoint; cOrderBounds upper bound
	lo    order.Key // cOrderBounds lower bound
	full  bool      // cMidpoint: k == n, install [-inf, +inf]
}

// send is one counted node→coordinator message within a batched reply.
type send struct {
	id  int
	key order.Key
}

// shardReply is a shard's batched answer to one command. sends aliases the
// shard's reusable buffer: the coordinator must consume it before issuing
// the next command to that shard (which it always does — commands are
// strictly round-trip).
type shardReply struct {
	shard            int
	topViol, outViol bool
	sends            []send
}

// node is the per-node distributed state, hosted by its shard's goroutine.
type node struct {
	id        int
	rng       *rng.RNG
	key       order.Key
	iv        filter.Interval
	ordIv     filter.Interval // order filter (ordered variant only)
	inTop     bool
	wasTop    bool  // membership at the time of the last violation
	violStep  int64 // observation step of the last filter violation
	extracted bool
	sampler   protocol.Sampler
}

func (nd *node) participates(tag protoTag, step int64) bool {
	switch tag {
	case tagViolMin:
		return nd.violStep == step && nd.wasTop
	case tagViolMax:
		return nd.violStep == step && !nd.wasTop
	case tagHandMin:
		return nd.inTop
	case tagHandMax:
		return !nd.inTop
	case tagReset:
		return !nd.extracted
	default:
		panic(fmt.Sprintf("runtime: unknown protocol tag %d", tag))
	}
}

// shard hosts a contiguous range of nodes [lo, hi) on one goroutine.
type shard struct {
	idx      int
	lo, hi   int
	nodes    []node
	distinct bool
	codec    order.Codec
	cmd      chan shardCmd
	out      chan<- shardReply
	buf      []send // reusable sends buffer, aliased by replies
}

func (sh *shard) observeNode(nd *node, v int64, step int64, rp *shardReply) {
	if sh.distinct {
		nd.key = order.Key(v)
	} else {
		nd.key = sh.codec.Encode(v, nd.id)
	}
	if violated, _ := nd.iv.Violates(nd.key); violated {
		nd.violStep = step
		nd.wasTop = nd.inTop
		if nd.inTop {
			rp.topViol = true
		} else {
			rp.outViol = true
		}
	}
}

func (sh *shard) run() {
	for c := range sh.cmd {
		rp := shardReply{shard: sh.idx}
		sh.buf = sh.buf[:0]
		switch c.kind {
		case cObserve:
			for i := range sh.nodes {
				nd := &sh.nodes[i]
				sh.observeNode(nd, c.vals[nd.id], c.step, &rp)
			}

		case cObserveDelta:
			// Only the shard's slice of the (sorted) changed ids is
			// touched; untouched nodes keep their key and cannot newly
			// violate (per-step filter invariant).
			start := sort.SearchInts(c.ids, sh.lo)
			for j := start; j < len(c.ids) && c.ids[j] < sh.hi; j++ {
				nd := &sh.nodes[c.ids[j]-sh.lo]
				sh.observeNode(nd, c.dvals[j], c.step, &rp)
			}

		case cResetBegin:
			for i := range sh.nodes {
				sh.nodes[i].extracted = false
				sh.nodes[i].inTop = false
			}

		case cRound:
			for i := range sh.nodes {
				nd := &sh.nodes[i]
				if !nd.participates(c.tag, c.step) {
					continue
				}
				if c.round == 0 {
					k := nd.key
					if c.tag.minimum() {
						k = order.Neg(k)
					}
					nd.sampler = protocol.NewSampler(k, c.bound)
				}
				if nd.sampler.Round(c.best, uint(c.round), nd.rng) {
					sh.buf = append(sh.buf, send{id: nd.id, key: nd.key})
				}
			}
			rp.sends = sh.buf

		case cWinner:
			nd := &sh.nodes[c.tgt-sh.lo]
			nd.extracted = true
			if c.isTop {
				nd.inTop = true
			}

		case cMidpoint:
			for i := range sh.nodes {
				nd := &sh.nodes[i]
				switch {
				case c.full:
					nd.iv = filter.Full()
				case nd.inTop:
					nd.iv = filter.AtLeast(c.mid)
				default:
					nd.iv = filter.AtMost(c.mid)
				}
			}

		case cOrderCheck:
			nd := &sh.nodes[c.tgt-sh.lo]
			if violated, _ := nd.ordIv.Violates(nd.key); violated {
				sh.buf = append(sh.buf, send{id: nd.id, key: nd.key})
				rp.sends = sh.buf
			}

		case cOrderBounds:
			sh.nodes[c.tgt-sh.lo].ordIv = filter.Interval{Lo: c.lo, Hi: c.mid}

		default:
			panic(fmt.Sprintf("runtime: unknown command kind %d", c.kind))
		}
		sh.out <- rp
	}
}

// Runtime is the concurrent monitor. It satisfies sim.Algorithm. It is not
// safe for concurrent Observe calls (steps are globally ordered in the
// model); internal node parallelism is managed by the coordinator.
type Runtime struct {
	cfg       Config
	led       comm.Ledger
	nodes     []node
	shards    []*shard
	shardSize int
	in        chan shardReply
	wg        sync.WaitGroup

	replies []shardReply // reusable per-round reply table, indexed by shard
	touched []int        // reusable scratch: shard indices hit by a delta

	inTop  []bool // coordinator's view of the membership
	top    []int  // cached reported top-k ids, ascending
	tPlus  order.Key
	tMinus order.Key
	step   int64
	init   bool
	closed bool

	// Ordered-variant bookkeeping.
	resets   int64             // reset executions, including initialization
	lastKeys map[int]order.Key // keys revealed by the latest reset's extractions
}

// New starts the shard goroutines and returns the runtime. Callers must
// Close it to release the goroutines. As in the sequential engine, nodes
// are treated as holding the value 0 until their first observation.
func New(cfg Config) *Runtime {
	if cfg.N <= 0 {
		panic("runtime: need N > 0")
	}
	if cfg.K < 1 || cfg.K > cfg.N {
		panic("runtime: need 1 <= K <= N")
	}
	nshards := cfg.Shards
	if nshards <= 0 {
		nshards = gort.GOMAXPROCS(0)
	}
	if nshards > cfg.N {
		nshards = cfg.N
	}
	shardSize := (cfg.N + nshards - 1) / nshards
	nshards = (cfg.N + shardSize - 1) / shardSize

	rt := &Runtime{
		cfg:       cfg,
		nodes:     make([]node, cfg.N),
		shardSize: shardSize,
		in:        make(chan shardReply, nshards),
		replies:   make([]shardReply, nshards),
		inTop:     make([]bool, cfg.N),
		top:       make([]int, 0, cfg.K),
		lastKeys:  make(map[int]order.Key),
	}
	codec := order.NewCodec(cfg.N)
	// The RNG stream layout matches core.New exactly; engine equivalence
	// depends on it.
	root := rng.New(cfg.Seed, 0xc02e)
	for i := 0; i < cfg.N; i++ {
		key := order.Key(0)
		if !cfg.DistinctValues {
			key = codec.Encode(0, i)
		}
		rt.nodes[i] = node{
			id:       i,
			rng:      root.Split(uint64(i)),
			key:      key,
			iv:       filter.Full(),
			ordIv:    filter.Full(),
			violStep: -1,
		}
	}
	for s := 0; s < nshards; s++ {
		lo := s * shardSize
		hi := lo + shardSize
		if hi > cfg.N {
			hi = cfg.N
		}
		sh := &shard{
			idx:      s,
			lo:       lo,
			hi:       hi,
			nodes:    rt.nodes[lo:hi:hi],
			distinct: cfg.DistinctValues,
			codec:    codec,
			cmd:      make(chan shardCmd, 1),
			out:      rt.in,
		}
		rt.shards = append(rt.shards, sh)
		rt.wg.Add(1)
		go func() {
			defer rt.wg.Done()
			sh.run()
		}()
	}
	return rt
}

// Close shuts down all shard goroutines. Idempotent.
func (rt *Runtime) Close() {
	if rt.closed {
		return
	}
	rt.closed = true
	for _, sh := range rt.shards {
		close(sh.cmd)
	}
	rt.wg.Wait()
}

// Counts returns the total message counts charged so far.
func (rt *Runtime) Counts() comm.Counts { return rt.led.Total() }

// Bytes returns the total encoded size of the charged messages (the
// sim.ByteCounter accessor).
func (rt *Runtime) Bytes() comm.Bytes { return rt.led.TotalBytes() }

// Ledger exposes the per-phase breakdown.
func (rt *Runtime) Ledger() *comm.Ledger { return &rt.led }

// Top returns the current top-k ids ascending. The returned slice is a
// read-only view owned by the runtime, invalidated by the next reset; use
// AppendTop to copy.
func (rt *Runtime) Top() []int { return rt.top }

// AppendTop appends the current top-k ids (ascending) to dst and returns
// the extended slice.
func (rt *Runtime) AppendTop(dst []int) []int { return append(dst, rt.top...) }

// broadcast sends the command to every shard and collects one batched
// reply per shard into the reusable reply table. The fan-out/fan-in is
// control plane; only explicitly recorded events cost messages.
func (rt *Runtime) broadcast(c shardCmd) []shardReply {
	for _, sh := range rt.shards {
		sh.cmd <- c
	}
	for range rt.shards {
		rp := <-rt.in
		rt.replies[rp.shard] = rp
	}
	return rt.replies
}

// unicast routes a single-node command to the shard owning that node and
// awaits its reply. Like broadcast, the plumbing is control plane.
func (rt *Runtime) unicast(id int, c shardCmd) shardReply {
	c.tgt = id
	rt.shards[id/rt.shardSize].cmd <- c
	return <-rt.in
}

// execProtocol runs one Algorithm 2 execution over the cohort selected by
// tag, with the given population bound, recording Up per node send and
// Bcast per round. It returns the winner (in the tag's extremal sense) and
// whether anyone sent.
func (rt *Runtime) execProtocol(tag protoTag, bound int, rec comm.Recorder) (winID int, winKey order.Key, any bool) {
	rounds := protocol.Rounds(bound)
	best := order.NegInf // in the sampler's comparison domain
	winID = -1
	for r := 0; r < rounds; r++ {
		replies := rt.broadcast(shardCmd{kind: cRound, tag: tag, round: r, best: best, bound: bound, step: rt.step})
		for i := range replies {
			for _, sd := range replies[i].sends {
				comm.RecordSized(rec, comm.Up, 1, wire.SizeBid(sd.id, int64(sd.key)))
				any = true
				cmp := sd.key
				if tag.minimum() {
					cmp = order.Neg(cmp)
				}
				if cmp > best {
					best = cmp
					winID = sd.id
					winKey = sd.key
				}
			}
		}
		comm.RecordSized(rec, comm.Bcast, 1, wire.SizeBest(r, int64(best)))
	}
	return winID, winKey, any
}

// Observe processes one dense time step and returns the reported top-k ids
// ascending (a read-only view, as with Top). It panics after Close.
func (rt *Runtime) Observe(vals []int64) []int {
	if rt.closed {
		panic("runtime: Observe after Close")
	}
	if len(vals) != rt.cfg.N {
		panic(fmt.Sprintf("runtime: observed %d values for %d nodes", len(vals), rt.cfg.N))
	}
	rt.step++
	anyTop, anyOut := false, false
	for _, sh := range rt.shards {
		sh.cmd <- shardCmd{kind: cObserve, vals: vals, step: rt.step}
	}
	for range rt.shards {
		rp := <-rt.in
		anyTop = anyTop || rp.topViol
		anyOut = anyOut || rp.outViol
	}
	return rt.finishStep(anyTop, anyOut)
}

// ObserveDelta processes one sparse time step: vals[j] is node ids[j]'s
// new value and every other node repeats its previous value. ids must be
// strictly increasing. Only shards owning a touched node exchange
// observation commands, so a violation-free sparse step costs channel
// traffic proportional to the number of touched shards. Semantics match
// core.Monitor.ObserveDelta exactly.
func (rt *Runtime) ObserveDelta(ids []int, vals []int64) []int {
	if rt.closed {
		panic("runtime: ObserveDelta after Close")
	}
	if len(ids) != len(vals) {
		panic(fmt.Sprintf("runtime: delta has %d ids but %d values", len(ids), len(vals)))
	}
	prev := -1
	rt.touched = rt.touched[:0]
	for _, id := range ids {
		if id <= prev || id >= rt.cfg.N {
			panic(fmt.Sprintf("runtime: delta ids must be strictly increasing in [0, %d), got %d after %d", rt.cfg.N, id, prev))
		}
		prev = id
		if si := id / rt.shardSize; len(rt.touched) == 0 || rt.touched[len(rt.touched)-1] != si {
			rt.touched = append(rt.touched, si)
		}
	}
	rt.step++
	c := shardCmd{kind: cObserveDelta, ids: ids, dvals: vals, step: rt.step}
	for _, si := range rt.touched {
		rt.shards[si].cmd <- c
	}
	anyTop, anyOut := false, false
	for range rt.touched {
		rp := <-rt.in
		anyTop = anyTop || rp.topViol
		anyOut = anyOut || rp.outViol
	}
	return rt.finishStep(anyTop, anyOut)
}

// finishStep runs the coordinator side of Algorithm 1 after the node-local
// filter checks of one step.
func (rt *Runtime) finishStep(anyTopViol, anyOutViol bool) []int {
	if !rt.init {
		rt.reset()
		rt.init = true
		return rt.top
	}
	if !anyTopViol && !anyOutViol {
		return rt.top
	}

	// Violation phase: cohorts of violators run their protocols
	// (Algorithm 1 lines 4-8). The coordinator's knowledge of which
	// protocol communicated comes from the counted sends themselves.
	vrec := rt.led.InPhase(comm.PhaseViolation)
	var minKey, maxKey order.Key
	minOK, maxOK := false, false
	if anyTopViol {
		_, minKey, minOK = rt.execProtocol(tagViolMin, rt.cfg.K, vrec)
	}
	if anyOutViol {
		_, maxKey, maxOK = rt.execProtocol(tagViolMax, rt.cfg.N-rt.cfg.K, vrec)
	}

	// FILTERVIOLATIONHANDLER (lines 15-34).
	hrec := rt.led.InPhase(comm.PhaseHandler)
	if !maxOK {
		_, maxKey, maxOK = rt.execProtocol(tagHandMax, rt.cfg.N-rt.cfg.K, hrec)
	} else {
		_, minKey, minOK = rt.execProtocol(tagHandMin, rt.cfg.K, hrec)
	}
	if minOK {
		rt.tPlus = order.Min(rt.tPlus, minKey)
	}
	if maxOK {
		rt.tMinus = order.Max(rt.tMinus, maxKey)
	}

	if rt.tPlus < rt.tMinus {
		rt.reset()
		return rt.top
	}
	mid := order.Midpoint(rt.tMinus, rt.tPlus)
	comm.RecordSized(hrec, comm.Bcast, 1, wire.SizeMidpoint(int64(mid)))
	rt.broadcast(shardCmd{kind: cMidpoint, mid: mid})
	return rt.top
}

// reset is FILTERRESET: k+1 maximum extractions with population bound n,
// then fresh midpoint filters.
func (rt *Runtime) reset() {
	rt.resets++
	clear(rt.lastKeys)
	rec := rt.led.InPhase(comm.PhaseReset)
	rt.broadcast(shardCmd{kind: cResetBegin})
	for i := range rt.inTop {
		rt.inTop[i] = false
	}
	want := rt.cfg.K + 1
	if want > rt.cfg.N {
		want = rt.cfg.N
	}
	keys := make([]order.Key, 0, want)
	for j := 0; j < want; j++ {
		id, key, any := rt.execProtocol(tagReset, rt.cfg.N, rec)
		if !any {
			panic("runtime: reset extraction found no participant")
		}
		isTop := j < rt.cfg.K
		rt.unicast(id, shardCmd{kind: cWinner, isTop: isTop})
		if isTop {
			rt.inTop[id] = true
		}
		rt.lastKeys[id] = key
		keys = append(keys, key)
	}
	rt.top = rt.top[:0]
	for id, in := range rt.inTop {
		if in {
			rt.top = append(rt.top, id)
		}
	}
	if rt.cfg.K == rt.cfg.N {
		rt.tPlus = keys[len(keys)-1]
		rt.tMinus = order.NegInf
		rt.broadcast(shardCmd{kind: cMidpoint, full: true})
		return
	}
	kth, kPlus1 := keys[rt.cfg.K-1], keys[rt.cfg.K]
	rt.tPlus, rt.tMinus = kth, kPlus1
	mid := order.Midpoint(kPlus1, kth)
	comm.RecordSized(rec, comm.Bcast, 1, wire.SizeMidpoint(int64(mid)))
	rt.broadcast(shardCmd{kind: cMidpoint, mid: mid})
}
