// Package runtime executes Algorithm 1 on a concurrent engine: one
// goroutine per node plus a coordinator, communicating exclusively over
// channels. It demonstrates the distributed fidelity of the reproduction —
// nodes hold only their own state (current key, filter, membership flag,
// private RNG) and everything the coordinator learns about values arrives
// in counted messages.
//
// # Synchrony and the control plane
//
// The paper's model is synchronous: observations happen in lockstep and an
// arbitrary protocol may run between two observations, with round
// boundaries being common knowledge. The engine realizes that assumption
// with an uncounted control plane: command delivery, round barriers and
// per-round acknowledgements are channel plumbing that carries no value
// information a real synchronized deployment would not already have.
// Counted messages — node value reports (Up) and coordinator broadcasts
// (Bcast) — are recorded exactly as in the sequential engine
// (internal/core), and the equivalence test in this package asserts that
// both engines produce bit-identical message counts and reports under the
// same seed.
package runtime

import (
	"fmt"
	"sync"

	"repro/internal/comm"
	"repro/internal/filter"
	"repro/internal/order"
	"repro/internal/protocol"
	"repro/internal/rng"
)

// Config mirrors core.Config for the concurrent engine.
type Config struct {
	N, K           int
	Seed           uint64
	DistinctValues bool
}

type cmdKind int

const (
	cObserve cmdKind = iota
	cRound
	cWinner
	cMidpoint
	cResetBegin
	cOrderCheck  // ordered variant: report if the order filter broke
	cOrderBounds // ordered variant: install new order-filter bounds
)

// protoTag identifies which cohort participates in a protocol round.
type protoTag int

const (
	tagViolMin protoTag = iota // violating former top-k nodes, minimum
	tagViolMax                 // violating outsiders, maximum
	tagHandMin                 // all top-k nodes, minimum
	tagHandMax                 // all outsiders, maximum
	tagReset                   // all not-yet-extracted nodes, maximum
)

func (t protoTag) minimum() bool { return t == tagViolMin || t == tagHandMin }

type command struct {
	kind  cmdKind
	value int64     // cObserve: the node's new observation
	tag   protoTag  // cRound
	round int       // cRound
	best  order.Key // cRound: best-so-far in the sampler's comparison domain
	bound int       // cRound: population bound N of the protocol
	exec  int       // cRound/cWinner: extraction index within a reset
	win   int       // cWinner: winning node id
	isTop bool      // cWinner: winner belongs to the new top-k
	mid   order.Key // cMidpoint
	full  bool      // cMidpoint: k == n, install [-inf, +inf]
}

type reply struct {
	id   int
	sent bool      // true: a counted Up message carrying key
	key  order.Key // valid when sent
	// observation control flags (cObserve only)
	violated bool
	wasTop   bool
}

// node is the goroutine-local state of one distributed node.
type node struct {
	id       int
	distinct bool
	codec    order.Codec
	rng      *rng.RNG

	key       order.Key
	iv        filter.Interval
	ordIv     filter.Interval // order filter (ordered variant only)
	inTop     bool
	violated  bool
	wasTop    bool
	extracted bool
	sampler   protocol.Sampler

	cmd chan command
	out chan<- reply
}

func (nd *node) run() {
	for c := range nd.cmd {
		switch c.kind {
		case cObserve:
			if nd.distinct {
				nd.key = order.Key(c.value)
			} else {
				nd.key = nd.codec.Encode(c.value, nd.id)
			}
			v, _ := nd.iv.Violates(nd.key)
			nd.violated = v
			nd.wasTop = nd.inTop
			nd.out <- reply{id: nd.id, violated: v, wasTop: nd.inTop}

		case cResetBegin:
			nd.extracted = false
			nd.inTop = false
			nd.out <- reply{id: nd.id}

		case cRound:
			if !nd.participates(c.tag) {
				nd.out <- reply{id: nd.id}
				continue
			}
			if c.round == 0 {
				k := nd.key
				if c.tag.minimum() {
					k = order.Neg(k)
				}
				nd.sampler = protocol.NewSampler(k, c.bound)
			}
			if nd.sampler.Round(c.best, uint(c.round), nd.rng) {
				nd.out <- reply{id: nd.id, sent: true, key: nd.key}
			} else {
				nd.out <- reply{id: nd.id}
			}

		case cWinner:
			if c.win == nd.id {
				nd.extracted = true
				if c.isTop {
					nd.inTop = true
				}
			}
			nd.out <- reply{id: nd.id}

		case cOrderCheck:
			if v, _ := nd.ordIv.Violates(nd.key); v {
				nd.out <- reply{id: nd.id, sent: true, key: nd.key}
			} else {
				nd.out <- reply{id: nd.id}
			}

		case cOrderBounds:
			// best carries the lower bound, mid the upper bound.
			nd.ordIv = filter.Interval{Lo: c.best, Hi: c.mid}
			nd.out <- reply{id: nd.id}

		case cMidpoint:
			switch {
			case c.full:
				nd.iv = filter.Full()
			case nd.inTop:
				nd.iv = filter.AtLeast(c.mid)
			default:
				nd.iv = filter.AtMost(c.mid)
			}
			nd.out <- reply{id: nd.id}

		default:
			panic(fmt.Sprintf("runtime: unknown command kind %d", c.kind))
		}
	}
}

func (nd *node) participates(tag protoTag) bool {
	switch tag {
	case tagViolMin:
		return nd.violated && nd.wasTop
	case tagViolMax:
		return nd.violated && !nd.wasTop
	case tagHandMin:
		return nd.inTop
	case tagHandMax:
		return !nd.inTop
	case tagReset:
		return !nd.extracted
	default:
		panic(fmt.Sprintf("runtime: unknown protocol tag %d", tag))
	}
}

// Runtime is the concurrent monitor. It satisfies sim.Algorithm. It is not
// safe for concurrent Observe calls (steps are globally ordered in the
// model); internal node parallelism is managed by the coordinator.
type Runtime struct {
	cfg   Config
	led   comm.Ledger
	nodes []*node
	in    chan reply
	wg    sync.WaitGroup

	inTop  []bool // coordinator's view of the membership
	tPlus  order.Key
	tMinus order.Key
	init   bool
	closed bool

	// Ordered-variant bookkeeping.
	resets   int64             // reset executions, including initialization
	lastKeys map[int]order.Key // keys revealed by the latest reset's extractions
}

// New starts the node goroutines and returns the runtime. Callers must
// Close it to release the goroutines.
func New(cfg Config) *Runtime {
	if cfg.N <= 0 {
		panic("runtime: need N > 0")
	}
	if cfg.K < 1 || cfg.K > cfg.N {
		panic("runtime: need 1 <= K <= N")
	}
	rt := &Runtime{
		cfg:      cfg,
		nodes:    make([]*node, cfg.N),
		in:       make(chan reply, cfg.N),
		inTop:    make([]bool, cfg.N),
		lastKeys: make(map[int]order.Key),
	}
	codec := order.NewCodec(cfg.N)
	// The RNG stream layout matches core.New exactly; engine equivalence
	// depends on it.
	root := rng.New(cfg.Seed, 0xc02e)
	for i := 0; i < cfg.N; i++ {
		nd := &node{
			id:       i,
			distinct: cfg.DistinctValues,
			codec:    codec,
			rng:      root.Split(uint64(i)),
			iv:       filter.Full(),
			ordIv:    filter.Full(),
			cmd:      make(chan command, 1),
			out:      rt.in,
		}
		rt.nodes[i] = nd
		rt.wg.Add(1)
		go func() {
			defer rt.wg.Done()
			nd.run()
		}()
	}
	return rt
}

// Close shuts down all node goroutines. Idempotent.
func (rt *Runtime) Close() {
	if rt.closed {
		return
	}
	rt.closed = true
	for _, nd := range rt.nodes {
		close(nd.cmd)
	}
	rt.wg.Wait()
}

// Counts returns the total message counts charged so far.
func (rt *Runtime) Counts() comm.Counts { return rt.led.Total() }

// Ledger exposes the per-phase breakdown.
func (rt *Runtime) Ledger() *comm.Ledger { return &rt.led }

// Top returns the current top-k ids ascending.
func (rt *Runtime) Top() []int {
	out := make([]int, 0, rt.cfg.K)
	for id, in := range rt.inTop {
		if in {
			out = append(out, id)
		}
	}
	return out
}

// broadcast sends the command to every node and collects one reply per
// node. The fan-out/fan-in is control plane; only explicitly recorded
// events cost messages.
func (rt *Runtime) broadcast(c command) []reply {
	for _, nd := range rt.nodes {
		nd.cmd <- c
	}
	replies := make([]reply, rt.cfg.N)
	for i := 0; i < rt.cfg.N; i++ {
		r := <-rt.in
		replies[r.id] = r
	}
	return replies
}

// unicast sends a command to a single node and awaits its reply. Like
// broadcast, the plumbing is control plane; cost is recorded explicitly
// by callers.
func (rt *Runtime) unicast(id int, c command) reply {
	rt.nodes[id].cmd <- c
	return <-rt.in
}

// observeCmd delivers per-node observations (sensing is local and free).
func (rt *Runtime) observeCmd(vals []int64) []reply {
	for i, nd := range rt.nodes {
		nd.cmd <- command{kind: cObserve, value: vals[i]}
	}
	replies := make([]reply, rt.cfg.N)
	for i := 0; i < rt.cfg.N; i++ {
		r := <-rt.in
		replies[r.id] = r
	}
	return replies
}

// execProtocol runs one Algorithm 2 execution over the cohort selected by
// tag, with the given population bound, recording Up per node send and
// Bcast per round. It returns the winner (in the tag's extremal sense) and
// whether anyone sent.
func (rt *Runtime) execProtocol(tag protoTag, bound, exec int, rec comm.Recorder) (winID int, winKey order.Key, any bool) {
	rounds := protocol.Rounds(bound)
	best := order.NegInf // in the sampler's comparison domain
	winID = -1
	for r := 0; r < rounds; r++ {
		replies := rt.broadcast(command{kind: cRound, tag: tag, round: r, best: best, bound: bound, exec: exec})
		for _, rp := range replies {
			if !rp.sent {
				continue
			}
			rec.Record(comm.Up, 1)
			any = true
			cmp := rp.key
			if tag.minimum() {
				cmp = order.Neg(cmp)
			}
			if cmp > best {
				best = cmp
				winID = rp.id
				winKey = rp.key
			}
		}
		rec.Record(comm.Bcast, 1)
	}
	return winID, winKey, any
}

// Observe processes one time step and returns the reported top-k ids
// ascending. It panics after Close.
func (rt *Runtime) Observe(vals []int64) []int {
	if rt.closed {
		panic("runtime: Observe after Close")
	}
	if len(vals) != rt.cfg.N {
		panic(fmt.Sprintf("runtime: observed %d values for %d nodes", len(vals), rt.cfg.N))
	}
	replies := rt.observeCmd(vals)

	if !rt.init {
		rt.reset()
		rt.init = true
		return rt.Top()
	}

	anyTopViol, anyOutViol := false, false
	for _, r := range replies {
		if r.violated {
			if r.wasTop {
				anyTopViol = true
			} else {
				anyOutViol = true
			}
		}
	}
	if !anyTopViol && !anyOutViol {
		return rt.Top()
	}

	// Violation phase: cohorts of violators run their protocols
	// (Algorithm 1 lines 4-8). The coordinator's knowledge of which
	// protocol communicated comes from the counted sends themselves.
	vrec := rt.led.InPhase(comm.PhaseViolation)
	var minKey, maxKey order.Key
	minOK, maxOK := false, false
	if anyTopViol {
		_, minKey, minOK = rt.execProtocol(tagViolMin, rt.cfg.K, 0, vrec)
	}
	if anyOutViol {
		_, maxKey, maxOK = rt.execProtocol(tagViolMax, rt.cfg.N-rt.cfg.K, 0, vrec)
	}

	// FILTERVIOLATIONHANDLER (lines 15-34).
	hrec := rt.led.InPhase(comm.PhaseHandler)
	if !maxOK {
		_, maxKey, maxOK = rt.execProtocol(tagHandMax, rt.cfg.N-rt.cfg.K, 0, hrec)
	} else {
		_, minKey, minOK = rt.execProtocol(tagHandMin, rt.cfg.K, 0, hrec)
	}
	if minOK {
		rt.tPlus = order.Min(rt.tPlus, minKey)
	}
	if maxOK {
		rt.tMinus = order.Max(rt.tMinus, maxKey)
	}

	if rt.tPlus < rt.tMinus {
		rt.reset()
		return rt.Top()
	}
	mid := order.Midpoint(rt.tMinus, rt.tPlus)
	hrec.Record(comm.Bcast, 1)
	rt.broadcast(command{kind: cMidpoint, mid: mid})
	return rt.Top()
}

// reset is FILTERRESET: k+1 maximum extractions with population bound n,
// then fresh midpoint filters.
func (rt *Runtime) reset() {
	rt.resets++
	clear(rt.lastKeys)
	rec := rt.led.InPhase(comm.PhaseReset)
	rt.broadcast(command{kind: cResetBegin})
	for i := range rt.inTop {
		rt.inTop[i] = false
	}
	want := rt.cfg.K + 1
	if want > rt.cfg.N {
		want = rt.cfg.N
	}
	keys := make([]order.Key, 0, want)
	for j := 0; j < want; j++ {
		id, key, any := rt.execProtocol(tagReset, rt.cfg.N, j, rec)
		if !any {
			panic("runtime: reset extraction found no participant")
		}
		isTop := j < rt.cfg.K
		rt.broadcast(command{kind: cWinner, win: id, exec: j, isTop: isTop})
		if isTop {
			rt.inTop[id] = true
		}
		rt.lastKeys[id] = key
		keys = append(keys, key)
	}
	if rt.cfg.K == rt.cfg.N {
		rt.tPlus = keys[len(keys)-1]
		rt.tMinus = order.NegInf
		rt.broadcast(command{kind: cMidpoint, full: true})
		return
	}
	kth, kPlus1 := keys[rt.cfg.K-1], keys[rt.cfg.K]
	rt.tPlus, rt.tMinus = kth, kPlus1
	mid := order.Midpoint(kPlus1, kth)
	rec.Record(comm.Bcast, 1)
	rt.broadcast(command{kind: cMidpoint, mid: mid})
}
