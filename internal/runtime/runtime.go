// Package runtime executes Algorithm 1 on a concurrent engine: shard
// goroutines hosting the distributed nodes plus a coordinator,
// communicating exclusively over channels. It demonstrates the distributed
// fidelity of the reproduction — nodes hold only their own state (current
// key, filter, membership flag, private RNG) and everything the
// coordinator learns about values arrives in counted messages.
//
// The coordinator's decision logic is the shared sans-I/O state machine of
// internal/coord; this package contributes only the substrate: it
// translates the machine's effects into batched shard commands, fans the
// replies back in, and hosts the node-side state (one coord.Nodes view per
// shard goroutine).
//
// # Synchrony and the control plane
//
// The paper's model is synchronous: observations happen in lockstep and an
// arbitrary protocol may run between two observations, with round
// boundaries being common knowledge. The engine realizes that assumption
// with an uncounted control plane: command delivery, round barriers and
// per-round acknowledgements are channel plumbing that carries no value
// information a real synchronized deployment would not already have.
// Counted messages — node value reports (Up) and coordinator broadcasts
// (Bcast) — are recorded exactly as in the sequential engine
// (internal/core), and the equivalence test in this package asserts that
// both engines produce bit-identical message counts and reports under the
// same seed.
//
// # Sharding
//
// Nodes are partitioned into contiguous shards, one goroutine each, and
// the coordinator exchanges one batched command/reply pair per shard per
// protocol round instead of one per node. A round therefore costs
// O(shards) channel operations rather than O(n), which is what makes the
// engine usable at large n. Batching is pure control-plane mechanics: each
// node still takes exactly the decisions it would take with a private
// channel (its RNG is consulted identically), so message counts are
// unaffected by the shard layout.
package runtime

import (
	"fmt"
	gort "runtime"
	"sort"
	"sync"

	"repro/internal/comm"
	"repro/internal/coord"
	"repro/internal/order"
	"repro/internal/protocol"
)

// Config mirrors core.Config for the concurrent engine.
type Config struct {
	N, K           int
	Seed           uint64
	DistinctValues bool
	// Epsilon selects the ε-approximate mode, exactly as in core.Config.
	Epsilon float64
	// Shards is the number of node-hosting goroutines. 0 selects
	// min(N, GOMAXPROCS). The shard layout does not affect reports or
	// message counts, only scheduling.
	Shards int
}

type cmdKind int

const (
	cObserve      cmdKind = iota // dense observation vector
	cObserveDelta                // sparse observation: only listed ids changed
	cRound
	cWinner
	cMidpoint
	cBounds // ε mode: install the band [lo, hi] instead of a midpoint
	cResetBegin
	cOrderCheck  // ordered variant: report if the order filter broke
	cOrderBounds // ordered variant: install new order-filter bounds
)

// shardCmd is one batched command delivered to a shard. It applies to all
// of the shard's nodes unless target selects a single node.
type shardCmd struct {
	kind  cmdKind
	step  int64     // cObserve*/cRound: current observation step
	vals  []int64   // cObserve: the full dense observation vector
	ids   []int     // cObserveDelta: strictly increasing changed node ids
	dvals []int64   // cObserveDelta: values parallel to ids
	tag   uint8     // cRound: protocol cohort (coord.Tag* value)
	round int       // cRound
	best  order.Key // cRound: best-so-far in the sampler's comparison domain
	bound int       // cRound: population bound N of the protocol
	tgt   int       // cWinner/cOrderCheck/cOrderBounds: target node id
	isTop bool      // cWinner: winner belongs to the new top-k
	mid   order.Key // cMidpoint; cOrderBounds upper bound
	lo    order.Key // cBounds/cOrderBounds lower bound
	hi    order.Key // cBounds upper band end
	full  bool      // cMidpoint: k == n, install [-inf, +inf]
}

// send is one counted node→coordinator message within a batched reply.
type send struct {
	id  int
	key order.Key
}

// shardReply is a shard's batched answer to one command. sends aliases the
// shard's reusable buffer: the coordinator must consume it before issuing
// the next command to that shard (which it always does — commands are
// strictly round-trip).
type shardReply struct {
	shard            int
	topViol, outViol bool
	sends            []send
}

// shard drives one coord.Nodes view — a contiguous range [lo, hi) — on
// its own goroutine, answering batched commands.
type shard struct {
	idx    int
	lo, hi int
	bank   *coord.Nodes
	cmd    chan shardCmd
	out    chan<- shardReply
	buf    []send // reusable sends buffer, aliased by replies
}

func (sh *shard) run() {
	for c := range sh.cmd {
		rp := shardReply{shard: sh.idx}
		sh.buf = sh.buf[:0]
		switch c.kind {
		case cObserve:
			for id := sh.lo; id < sh.hi; id++ {
				t, o, err := sh.bank.Observe(id, c.vals[id], c.step)
				if err != nil {
					// The public boundary (package topk) validates the value
					// domain before any engine sees a step; reaching this is
					// a caller bug in direct engine use, and the engine's
					// input contract is to panic on those.
					panic("runtime: " + err.Error())
				}
				rp.topViol = rp.topViol || t
				rp.outViol = rp.outViol || o
			}

		case cObserveDelta:
			// Only the shard's slice of the (sorted) changed ids is
			// touched; untouched nodes keep their key and cannot newly
			// violate (per-step filter invariant).
			start := sort.SearchInts(c.ids, sh.lo)
			for j := start; j < len(c.ids) && c.ids[j] < sh.hi; j++ {
				t, o, err := sh.bank.Observe(c.ids[j], c.dvals[j], c.step)
				if err != nil {
					panic("runtime: " + err.Error())
				}
				rp.topViol = rp.topViol || t
				rp.outViol = rp.outViol || o
			}

		case cResetBegin:
			sh.bank.ResetBegin()

		case cRound:
			sh.bank.Round(c.tag, c.round, c.best, c.bound, c.step, func(id int, key order.Key) {
				sh.buf = append(sh.buf, send{id: id, key: key})
			})
			rp.sends = sh.buf

		case cWinner:
			sh.bank.Winner(c.tgt, c.isTop)

		case cMidpoint:
			sh.bank.Midpoint(c.mid, c.full)

		case cBounds:
			sh.bank.ApplyBounds(c.lo, c.hi)

		case cOrderCheck:
			if key, violated := sh.bank.OrderViolated(c.tgt); violated {
				sh.buf = append(sh.buf, send{id: c.tgt, key: key})
				rp.sends = sh.buf
			}

		case cOrderBounds:
			sh.bank.SetOrderBounds(c.tgt, c.lo, c.mid)

		default:
			panic(fmt.Sprintf("runtime: unknown command kind %d", c.kind))
		}
		sh.out <- rp
	}
}

// Runtime is the concurrent monitor. It satisfies sim.Algorithm. It is not
// safe for concurrent Observe calls (steps are globally ordered in the
// model); internal node parallelism is managed by the coordinator.
type Runtime struct {
	cfg       Config
	mach      *coord.Machine
	bank      *coord.Nodes // full-range bank; shards hold disjoint views
	shards    []*shard
	shardSize int
	in        chan shardReply
	wg        sync.WaitGroup

	replies []shardReply // reusable per-round reply table, indexed by shard
	touched []int        // reusable scratch: shard indices hit by a delta

	step   int64
	closed bool

	// Ordered-variant bookkeeping: keys revealed by the latest reset's
	// extractions.
	lastKeys map[int]order.Key
}

// New starts the shard goroutines and returns the runtime. Callers must
// Close it to release the goroutines. As in the sequential engine, nodes
// are treated as holding the value 0 until their first observation.
func New(cfg Config) *Runtime {
	if cfg.N <= 0 {
		panic("runtime: need N > 0")
	}
	if cfg.K < 1 || cfg.K > cfg.N {
		panic("runtime: need 1 <= K <= N")
	}
	tol, err := order.NewTol(cfg.Epsilon)
	if err != nil {
		panic("runtime: " + err.Error())
	}
	// One bank construction pays the RNG split walk; shards take disjoint
	// views of it. The stream layout matches core.New exactly; engine
	// equivalence depends on it.
	bank := coord.NewNodes(cfg.N, 0, cfg.N, cfg.Seed, cfg.DistinctValues, tol)
	return assemble(cfg, coord.New(coord.Config{N: cfg.N, K: cfg.K, Tol: tol}), bank)
}

// assemble wires a machine and a full-range bank into a running Runtime:
// it sizes the shard split, hands each shard goroutine its disjoint bank
// view, and starts them. Both New and Restore funnel through it.
func assemble(cfg Config, mach *coord.Machine, bank *coord.Nodes) *Runtime {
	nshards := cfg.Shards
	if nshards <= 0 {
		nshards = gort.GOMAXPROCS(0)
	}
	if nshards > cfg.N {
		nshards = cfg.N
	}
	shardSize := (cfg.N + nshards - 1) / nshards
	nshards = (cfg.N + shardSize - 1) / shardSize

	rt := &Runtime{
		cfg:       cfg,
		mach:      mach,
		bank:      bank,
		shardSize: shardSize,
		in:        make(chan shardReply, nshards),
		replies:   make([]shardReply, nshards),
		lastKeys:  make(map[int]order.Key),
	}
	for s := 0; s < nshards; s++ {
		lo := s * shardSize
		hi := lo + shardSize
		if hi > cfg.N {
			hi = cfg.N
		}
		sh := &shard{
			idx:  s,
			lo:   lo,
			hi:   hi,
			bank: bank.Sub(lo, hi),
			cmd:  make(chan shardCmd, 1),
			out:  rt.in,
		}
		rt.shards = append(rt.shards, sh)
		rt.wg.Add(1)
		go func() {
			defer rt.wg.Done()
			sh.run()
		}()
	}
	return rt
}

// Close shuts down all shard goroutines. Idempotent.
func (rt *Runtime) Close() {
	if rt.closed {
		return
	}
	rt.closed = true
	for _, sh := range rt.shards {
		close(sh.cmd)
	}
	rt.wg.Wait()
}

// Counts returns the total message counts charged so far.
func (rt *Runtime) Counts() comm.Counts { return rt.mach.Counts() }

// Bytes returns the total encoded size of the charged messages (the
// sim.ByteCounter accessor).
func (rt *Runtime) Bytes() comm.Bytes { return rt.mach.Bytes() }

// Ledger exposes the per-phase breakdown.
func (rt *Runtime) Ledger() *comm.Ledger { return rt.mach.Ledger() }

// Stats returns execution counters (maintained by the shared coordinator
// core, identical across engines for the same seed).
func (rt *Runtime) Stats() coord.Stats { return rt.mach.Stats() }

// Top returns the current top-k ids ascending. The returned slice is a
// read-only view owned by the runtime, invalidated by the next reset, and
// mutating it corrupts the engine; use AppendTop to copy.
func (rt *Runtime) Top() []int { return rt.mach.Top() }

// AppendTop appends the current top-k ids (ascending) to dst and returns
// the extended slice. The appended values are copies owned by the caller:
// they stay valid across later steps, and mutating them never affects the
// engine.
func (rt *Runtime) AppendTop(dst []int) []int { return rt.mach.AppendTop(dst) }

// broadcast sends the command to every shard and collects one batched
// reply per shard into the reusable reply table. The fan-out/fan-in is
// control plane; only explicitly recorded events cost messages.
func (rt *Runtime) broadcast(c shardCmd) []shardReply {
	for _, sh := range rt.shards {
		sh.cmd <- c
	}
	for range rt.shards {
		rp := <-rt.in
		rt.replies[rp.shard] = rp
	}
	return rt.replies
}

// unicast routes a single-node command to the shard owning that node and
// awaits its reply. Like broadcast, the plumbing is control plane.
func (rt *Runtime) unicast(id int, c shardCmd) shardReply {
	c.tgt = id
	rt.shards[id/rt.shardSize].cmd <- c
	return <-rt.in
}

// Observe processes one dense time step and returns the reported top-k ids
// ascending (a read-only view, as with Top). It panics after Close.
func (rt *Runtime) Observe(vals []int64) []int {
	if rt.closed {
		panic("runtime: Observe after Close")
	}
	if len(vals) != rt.cfg.N {
		panic(fmt.Sprintf("runtime: observed %d values for %d nodes", len(vals), rt.cfg.N))
	}
	rt.step = rt.mach.BeginStep()
	anyTop, anyOut := false, false
	for _, sh := range rt.shards {
		sh.cmd <- shardCmd{kind: cObserve, vals: vals, step: rt.step}
	}
	for range rt.shards {
		rp := <-rt.in
		anyTop = anyTop || rp.topViol
		anyOut = anyOut || rp.outViol
	}
	return rt.finishStep(anyTop, anyOut)
}

// ObserveDelta processes one sparse time step: vals[j] is node ids[j]'s
// new value and every other node repeats its previous value. ids must be
// strictly increasing. Only shards owning a touched node exchange
// observation commands, so a violation-free sparse step costs channel
// traffic proportional to the number of touched shards. Semantics match
// core.Monitor.ObserveDelta exactly.
func (rt *Runtime) ObserveDelta(ids []int, vals []int64) []int {
	if rt.closed {
		panic("runtime: ObserveDelta after Close")
	}
	if len(ids) != len(vals) {
		panic(fmt.Sprintf("runtime: delta has %d ids but %d values", len(ids), len(vals)))
	}
	prev := -1
	rt.touched = rt.touched[:0]
	for _, id := range ids {
		if id <= prev || id >= rt.cfg.N {
			panic(fmt.Sprintf("runtime: delta ids must be strictly increasing in [0, %d), got %d after %d", rt.cfg.N, id, prev))
		}
		prev = id
		if si := id / rt.shardSize; len(rt.touched) == 0 || rt.touched[len(rt.touched)-1] != si {
			rt.touched = append(rt.touched, si)
		}
	}
	rt.step = rt.mach.BeginStep()
	c := shardCmd{kind: cObserveDelta, ids: ids, dvals: vals, step: rt.step}
	for _, si := range rt.touched {
		rt.shards[si].cmd <- c
	}
	anyTop, anyOut := false, false
	for range rt.touched {
		rp := <-rt.in
		anyTop = anyTop || rp.topViol
		anyOut = anyOut || rp.outViol
	}
	return rt.finishStep(anyTop, anyOut)
}

// finishStep drives the coordinator machine through the rest of the step,
// executing its effects over the shard channels.
func (rt *Runtime) finishStep(anyTopViol, anyOutViol bool) []int {
	eff := rt.mach.FinishStep(anyTopViol, anyOutViol)
	for eff.Kind != coord.EffDone {
		switch eff.Kind {
		case coord.EffExec:
			res := rt.execProtocol(eff)
			eff = rt.mach.ExecDone(res.OK, res.ID, res.Key)
		case coord.EffResetBegin:
			rt.broadcast(shardCmd{kind: cResetBegin})
			clear(rt.lastKeys)
			eff = rt.mach.Ack()
		case coord.EffWinner:
			rt.unicast(eff.Target, shardCmd{kind: cWinner, isTop: eff.IsTop})
			rt.lastKeys[eff.Target] = eff.Key
			eff = rt.mach.Ack()
		case coord.EffMidpoint:
			rt.broadcast(shardCmd{kind: cMidpoint, mid: eff.Mid, full: eff.Full})
			eff = rt.mach.Ack()
		case coord.EffBounds:
			rt.broadcast(shardCmd{kind: cBounds, lo: eff.Lo, hi: eff.Hi})
			eff = rt.mach.Ack()
		default:
			panic(fmt.Sprintf("runtime: unknown coordinator effect %d", eff.Kind))
		}
	}
	return rt.mach.Top()
}

// execProtocol runs one Algorithm 2 execution over the effect's cohort:
// one batched command/reply pair per shard per round, with replies
// consumed in ascending shard (hence node id) order.
func (rt *Runtime) execProtocol(eff coord.Effect) protocol.Result {
	ex := protocol.NewExec(eff.Bound, coord.MinimumTag(eff.Tag), rt.mach.Recorder(eff.Phase), nil, rt.step)
	for ex.More() {
		replies := rt.broadcast(shardCmd{
			kind: cRound, tag: eff.Tag, round: ex.Round(),
			best: ex.Best(), bound: eff.Bound, step: rt.step,
		})
		for i := range replies {
			for _, sd := range replies[i].sends {
				ex.Bid(sd.id, sd.key)
			}
		}
		ex.EndRound()
	}
	return ex.Result()
}
