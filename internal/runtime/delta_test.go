package runtime

import (
	"testing"

	"repro/internal/core"
	"repro/internal/stream"
)

// TestDeltaEquivalenceWithSequentialEngine extends the central fidelity
// check to the sparse ingestion path: driving both engines with the same
// delta stream must produce identical reports and message counts at every
// step, for any shard layout.
func TestDeltaEquivalenceWithSequentialEngine(t *testing.T) {
	const n, k, seed, steps = 48, 5, 77, 300
	for _, shards := range []int{0, 1, 3, 7, n} {
		t.Run(shardName(shards), func(t *testing.T) {
			seq := core.New(core.Config{N: n, K: k, Seed: seed})
			conc := New(Config{N: n, K: k, Seed: seed, Shards: shards})
			defer conc.Close()

			mk := func() *stream.SparseWalk {
				return stream.NewSparseWalk(stream.SparseWalkConfig{
					N: n, Lo: 0, Hi: 1 << 22, MaxStep: 1 << 10, Changed: 4, Seed: 9,
				})
			}
			srcA, srcB := mk(), mk()
			idsA, valsA := make([]int, n), make([]int64, n)
			idsB, valsB := make([]int, n), make([]int64, n)
			for s := 0; s < steps; s++ {
				ca := srcA.StepDelta(idsA, valsA)
				cb := srcB.StepDelta(idsB, valsB)
				topSeq := seq.ObserveDelta(idsA[:ca], valsA[:ca])
				topCon := conc.ObserveDelta(idsB[:cb], valsB[:cb])
				if !equal(topSeq, topCon) {
					t.Fatalf("step %d: reports differ: seq=%v conc=%v", s, topSeq, topCon)
				}
				if cs, cc := seq.Counts(), conc.Counts(); cs != cc {
					t.Fatalf("step %d: counts differ: seq=%v conc=%v", s, cs, cc)
				}
			}
		})
	}
}

func shardName(s int) string {
	switch s {
	case 0:
		return "shards=auto"
	default:
		return "shards=" + string(rune('0'+s/10)) + string(rune('0'+s%10))
	}
}

// TestRuntimeDeltaMixedWithDense interleaves dense and sparse steps on the
// concurrent engine and pins it against the sequential engine fed the
// equivalent dense vectors.
func TestRuntimeDeltaMixedWithDense(t *testing.T) {
	const n, k, seed, steps = 20, 3, 5, 250
	seq := core.New(core.Config{N: n, K: k, Seed: seed})
	conc := New(Config{N: n, K: k, Seed: seed, Shards: 4})
	defer conc.Close()

	src := stream.NewSparseWalk(stream.SparseWalkConfig{
		N: n, Lo: 0, Hi: 1 << 20, MaxStep: 1 << 9, Changed: 2, Seed: 6,
	})
	ids, vals := make([]int, n), make([]int64, n)
	dense := make([]int64, n)
	for s := 0; s < steps; s++ {
		c := src.StepDelta(ids, vals)
		for j := 0; j < c; j++ {
			dense[ids[j]] = vals[j]
		}
		topSeq := seq.Observe(dense)
		var topCon []int
		if s%2 == 0 {
			topCon = conc.ObserveDelta(ids[:c], vals[:c])
		} else {
			topCon = conc.Observe(dense)
		}
		if !equal(topSeq, topCon) {
			t.Fatalf("step %d: reports differ: seq=%v conc=%v", s, topSeq, topCon)
		}
		if cs, cc := seq.Counts(), conc.Counts(); cs != cc {
			t.Fatalf("step %d: counts differ: seq=%v conc=%v", s, cs, cc)
		}
	}
}

// TestDeltaEquivalenceDistinctValuesTies is the regression test for the
// duplicate-key tie-breaking hazard: in DistinctValues mode a sparse first
// step leaves every unobserved node at key 0, so the reset's extractions
// must break ties identically on both engines — which requires the
// sequential engine's extraction loop to preserve id-ascending participant
// order. Divergence showed up within 30 seeds before the fix.
func TestDeltaEquivalenceDistinctValuesTies(t *testing.T) {
	const n, k = 8, 2
	for seed := uint64(0); seed < 30; seed++ {
		seq := core.New(core.Config{N: n, K: k, Seed: seed, DistinctValues: true})
		conc := New(Config{N: n, K: k, Seed: seed, DistinctValues: true, Shards: 3})
		topSeq := seq.ObserveDelta([]int{0}, []int64{100})
		topCon := conc.ObserveDelta([]int{0}, []int64{100})
		if !equal(topSeq, topCon) {
			conc.Close()
			t.Fatalf("seed %d: tie-broken reports differ: seq=%v conc=%v", seed, topSeq, topCon)
		}
		if cs, cc := seq.Counts(), conc.Counts(); cs != cc {
			conc.Close()
			t.Fatalf("seed %d: counts differ: seq=%v conc=%v", seed, cs, cc)
		}
		conc.Close()
	}
}

// TestObserveDeltaInvalidInputLeavesStateUntouched pins that a rejected
// delta mutates neither engine: the same step can be retried with fixed
// input and both engines still agree.
func TestObserveDeltaInvalidInputLeavesStateUntouched(t *testing.T) {
	const n, k = 6, 2
	seq := core.New(core.Config{N: n, K: k, Seed: 3})
	conc := New(Config{N: n, K: k, Seed: 3, Shards: 2})
	defer conc.Close()
	seq.Observe([]int64{10, 20, 30, 40, 50, 60})
	conc.Observe([]int64{10, 20, 30, 40, 50, 60})

	bad := func(f func()) {
		defer func() { _ = recover() }()
		f()
	}
	// id 3 is valid and precedes the invalid id 9: the key write for 3
	// must not happen.
	bad(func() { seq.ObserveDelta([]int{3, 9}, []int64{999, 1}) })
	bad(func() { conc.ObserveDelta([]int{3, 9}, []int64{999, 1}) })

	topSeq := seq.ObserveDelta([]int{5}, []int64{61})
	topCon := conc.ObserveDelta([]int{5}, []int64{61})
	if !equal(topSeq, topCon) {
		t.Fatalf("post-panic reports differ: seq=%v conc=%v", topSeq, topCon)
	}
	if seq.Counts() != conc.Counts() {
		t.Fatalf("post-panic counts differ: seq=%v conc=%v", seq.Counts(), conc.Counts())
	}
}

// TestRuntimeShardLayoutInvariance pins that the shard count changes
// neither reports nor message counts.
func TestRuntimeShardLayoutInvariance(t *testing.T) {
	const n, k, seed, steps = 30, 4, 13, 150
	ref := New(Config{N: n, K: k, Seed: seed, Shards: 1})
	defer ref.Close()
	alt := New(Config{N: n, K: k, Seed: seed, Shards: 8})
	defer alt.Close()

	mk := func() stream.Source {
		return stream.NewBursty(stream.BurstyConfig{N: n, Seed: 14, Lo: 0, Hi: 1 << 22, Noise: 6, BurstProb: 0.04, BurstMax: 1 << 18})
	}
	srcA, srcB := mk(), mk()
	va, vb := make([]int64, n), make([]int64, n)
	for s := 0; s < steps; s++ {
		srcA.Step(va)
		srcB.Step(vb)
		if !equal(ref.Observe(va), alt.Observe(vb)) {
			t.Fatalf("step %d: shard layouts diverged", s)
		}
		if ref.Counts() != alt.Counts() {
			t.Fatalf("step %d: shard layouts diverged in counts", s)
		}
	}
}
