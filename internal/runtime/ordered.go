package runtime

import (
	"sort"

	"repro/internal/comm"
	"repro/internal/order"
	"repro/internal/wire"
)

// OrderedRuntime runs the ordered top-k monitor (the paper's §5 extension,
// see core.OrderedMonitor) on the sharded concurrent engine. The set layer
// is the unchanged Runtime; the order layer adds a second, node-local
// filter — the interval between the midpoints to the node's ranking
// neighbors' last reports — and a coordinator-driven cascade that settles
// within each time step.
//
// Accounting matches core.OrderedMonitor exactly: one Up per order-filter
// report, one Down per reassigned order interval, and nothing for the
// rebuild after a FILTERRESET (the reset's extraction broadcasts already
// revealed every member's value, so each member can derive its own
// neighbor midpoints locally). The equivalence test in this package pins
// reports and counts against the sequential implementation.
type OrderedRuntime struct {
	rt *Runtime

	est     map[int]order.Key
	ordLo   map[int]order.Key
	ordHi   map[int]order.Key
	ordered []int // member ids, rank 1 first
}

// NewOrdered starts an ordered concurrent monitor. Callers must Close it.
func NewOrdered(cfg Config) *OrderedRuntime {
	return &OrderedRuntime{
		rt:    New(cfg),
		est:   make(map[int]order.Key),
		ordLo: make(map[int]order.Key),
		ordHi: make(map[int]order.Key),
	}
}

// Close releases the node goroutines. Idempotent.
func (ot *OrderedRuntime) Close() { ot.rt.Close() }

// Counts returns total message counts.
func (ot *OrderedRuntime) Counts() comm.Counts { return ot.rt.Counts() }

// Bytes returns the total encoded size of the charged messages.
func (ot *OrderedRuntime) Bytes() comm.Bytes { return ot.rt.Bytes() }

// Ledger exposes the per-phase breakdown; order-layer traffic is in the
// handler phase, mirroring core.OrderedMonitor.
func (ot *OrderedRuntime) Ledger() *comm.Ledger { return ot.rt.Ledger() }

// Top returns the current ranking, largest value first.
func (ot *OrderedRuntime) Top() []int { return append([]int(nil), ot.ordered...) }

// Observe processes one time step and returns the ranking.
func (ot *OrderedRuntime) Observe(vals []int64) []int {
	resetsBefore := ot.rt.Stats().Resets
	ot.rt.Observe(vals)

	if ot.rt.Stats().Resets != resetsBefore || len(ot.ordered) == 0 {
		ot.rebuild()
		return ot.Top()
	}
	ot.cascade()
	return ot.Top()
}

// rebuild reinitializes the order layer after a membership change, using
// the keys the reset extraction already revealed (rt.lastKeys). No
// messages are charged; nodes receive their bounds over the control plane
// because they could derive them from the extraction broadcasts.
func (ot *OrderedRuntime) rebuild() {
	clear(ot.est)
	clear(ot.ordLo)
	clear(ot.ordHi)
	ot.ordered = ot.ordered[:0]
	for _, id := range ot.rt.Top() {
		ot.est[id] = ot.rt.lastKeys[id]
		ot.ordered = append(ot.ordered, id)
	}
	ot.sortByEst()
	ot.installBounds(comm.Discard, true)
}

// cascade settles the order filters for the current step: members whose
// current key left their interval report it (counted Up), the coordinator
// re-sorts and reassigns intervals (counted Down per change), until quiet.
func (ot *OrderedRuntime) cascade() {
	rec := ot.rt.mach.Recorder(comm.PhaseHandler)
	for {
		changed := false
		for _, id := range ot.ordered {
			rp := ot.rt.unicast(id, shardCmd{kind: cOrderCheck})
			if len(rp.sends) > 0 {
				ot.est[id] = rp.sends[0].key
				comm.RecordSized(rec, comm.Up, 1, wire.SizeBid(id, int64(rp.sends[0].key)))
				changed = true
			}
		}
		if !changed {
			return
		}
		ot.sortByEst()
		ot.installBounds(rec, false)
	}
}

// sortByEst orders members by estimate, descending.
func (ot *OrderedRuntime) sortByEst() {
	sort.Slice(ot.ordered, func(a, b int) bool {
		return ot.est[ot.ordered[a]] > ot.est[ot.ordered[b]]
	})
}

// installBounds computes the neighbor-midpoint intervals and ships each
// member's bounds, charging one Down per member whose interval changed.
// With force set (rebuild after a reset), every member receives its
// bounds unconditionally — stale node-side intervals from an earlier
// membership must not survive — but nothing is charged, matching the
// sequential engine (members can derive the bounds from the reset's
// extraction broadcasts).
func (ot *OrderedRuntime) installBounds(rec comm.Recorder, force bool) {
	for pos, id := range ot.ordered {
		lo, hi := order.NegInf, order.PosInf
		if pos > 0 {
			hi = order.Midpoint(ot.est[id], ot.est[ot.ordered[pos-1]])
		}
		if pos < len(ot.ordered)-1 {
			lo = order.Midpoint(ot.est[ot.ordered[pos+1]], ot.est[id])
		}
		changed := lo != ot.ordLo[id] || hi != ot.ordHi[id]
		if changed || force {
			ot.ordLo[id], ot.ordHi[id] = lo, hi
			if changed {
				comm.RecordSized(rec, comm.Down, 1, wire.SizeBounds(id, int64(lo), int64(hi)))
			}
			ot.rt.unicast(id, shardCmd{kind: cOrderBounds, lo: lo, mid: hi})
		}
	}
}
