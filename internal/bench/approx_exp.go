package bench

import (
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/stream"
)

// E19ApproxComm sweeps the tolerance ε of the approximate mode (the
// ε-tolerant variant of Mäcker et al., arXiv:1601.04448) over a drifting
// workload and records the communication next to the exact run on the
// identical trace: the (1±ε) filter bands absorb drift that would
// violate exact filters, and within-tolerance violations skip the
// FILTERRESET, so messages and bytes fall by orders of magnitude while
// every report stays a valid ε-approximation (checked step by step by
// sim's ε-oracle).
func E19ApproxComm(sc Scale) Table {
	t := Table{
		ID:    "E19",
		Title: "ε-approximate monitoring: communication vs tolerance",
		Claim: "tolerance trades a bounded report error for orders of magnitude less communication",
		Columns: []string{
			"eps", "msgs", "msgs/step", "bytes", "viol-steps", "resets", "vs exact", "eps-oracle",
		},
	}
	const n, k = 64, 8
	walk := func() stream.Source {
		return stream.NewRandomWalk(stream.WalkConfig{
			N: n, Lo: 1 << 20, Hi: 1 << 21, MaxStep: 1 << 13, Seed: 19001,
		})
	}
	var exact int64
	for _, eps := range []float64{0, 0.01, 0.05, 0.1} {
		m := core.New(core.Config{N: n, K: k, Seed: 19002, Epsilon: eps})
		rep := sim.Run(m, walk(), sim.Config{Steps: sc.Steps, K: k, CheckEvery: 1, Epsilon: eps})
		if rep.Errors != 0 {
			panic("bench: E19 ε-oracle violation")
		}
		total := rep.Messages.Total()
		if eps == 0 {
			exact = total
		}
		st := m.Stats()
		ratio := "1.0×"
		if eps != 0 && total > 0 {
			ratio = F("%.1f×", float64(exact)/float64(total))
		}
		t.AddRow(F("%.2f", eps), F("%d", total), F("%.2f", rep.MsgsPerStep),
			F("%d", rep.Bytes.Total()), F("%d", st.ViolationSteps), F("%d", st.Resets),
			ratio, "pass")
	}
	t.Note("same trace for every row; ε=0 is bit-identical to the exact engine (pinned by the equivalence suites)")
	t.Note("the ε-oracle requires every report to be ε-separated from the excluded nodes (order.Tol.Separated)")
	return t
}
