package bench

import (
	"math"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/stream"
)

// ratioRun drives a fresh monitor over a recorded matrix and returns
// (total messages, OPT segments, measured ratio).
func ratioRun(matrix [][]int64, k int, seed uint64) (msgs int64, opt int, ratio float64) {
	n := len(matrix[0])
	m := core.New(core.Config{N: n, K: k, Seed: seed})
	rep := sim.Run(m, stream.NewTraceSource(matrix), sim.Config{
		Steps: len(matrix), K: k, CheckEvery: 1, ComputeOpt: true,
	})
	if rep.Errors != 0 {
		panic("bench: monitor produced oracle mismatches")
	}
	return rep.Messages.Total(), rep.OptSegments, rep.CompetitiveRatio
}

// E4RatioVsDelta sweeps the paper's ∆ via the converging-bands workload:
// the offline OPT needs a single filter assignment for the whole horizon
// while the monitor performs ~log2(∆) midpoint updates per descent, so the
// measured ratio should grow linearly in log ∆ (Theorem 3.3's log ∆ term).
func E4RatioVsDelta(sc Scale) Table {
	t := Table{
		ID:    "E4",
		Title: "Competitive ratio vs ∆ (converging bands, one cycle)",
		Claim: "ratio grows ~ log ∆ at fixed k, n (Thm 3.3)",
		Columns: []string{
			"gap", "log2 ∆", "steps", "opt", "mean msgs", "mean ratio", "handler calls",
		},
	}
	const n, k = 32, 4
	var logDeltas, ratios []float64
	for _, g := range []uint{8, 12, 16, 20, 24, 28, 32} {
		gap := int64(1) << g
		var msgsS, ratioS, handlerS []float64
		var steps, optSeg int
		var delta int64
		for trial := 0; trial < sc.Trials; trial++ {
			src := stream.NewConverging(stream.ConvergingConfig{
				N: n, K: k, Seed: uint64(g)*100 + uint64(trial),
				Gap: gap, MinGap: 60, HalvingSteps: 6, Jitter: 8,
			})
			steps = src.CycleLen()
			matrix := stream.Collect(src, steps)
			delta = sim.MeasureDelta(matrix, k)
			mon := core.New(core.Config{N: n, K: k, Seed: uint64(g)*991 + uint64(trial)})
			rep := sim.Run(mon, stream.NewTraceSource(matrix), sim.Config{Steps: steps, K: k, CheckEvery: 1, ComputeOpt: true})
			if rep.Errors != 0 {
				panic("bench: E4 oracle mismatch")
			}
			optSeg = rep.OptSegments
			msgsS = append(msgsS, float64(rep.Messages.Total()))
			ratioS = append(ratioS, rep.CompetitiveRatio)
			handlerS = append(handlerS, float64(mon.Stats().HandlerCalls))
		}
		ld := math.Log2(float64(delta))
		t.AddRow(F("2^%d", g), F("%.1f", ld), F("%d", steps), F("%d", optSeg),
			F("%.0f", stats.Mean(msgsS)), F("%.1f", stats.Mean(ratioS)), F("%.1f", stats.Mean(handlerS)))
		logDeltas = append(logDeltas, ld)
		ratios = append(ratios, stats.Mean(ratioS))
	}
	fit := stats.LinearFit(logDeltas, ratios)
	t.Note("fit: ratio ≈ %.1f*log2(∆) + %.1f (R²=%.3f) — linear in log ∆ as predicted", fit.Slope, fit.Intercept, fit.R2)
	return t
}

// E5RatioVsK sweeps k with fixed n on a band-swap workload: each swap is
// one OPT filter update but forces the monitor through a FILTERRESET of
// k+1 protocol executions, so the ratio should grow roughly linearly in k.
func E5RatioVsK(sc Scale) Table {
	t := Table{
		ID:    "E5",
		Title: "Competitive ratio vs k (band swaps)",
		Claim: "ratio grows ~ +k at fixed ∆, n (reset costs (k+1)·M(n); Thm 3.3)",
		Columns: []string{
			"k", "mean msgs", "mean opt", "mean ratio", "ratio/(k+1)",
		},
	}
	const n = 64
	var ks, ratios []float64
	for _, k := range []int{1, 2, 4, 8, 16, 32} {
		var ratioS, msgsS, optS []float64
		for trial := 0; trial < sc.Trials; trial++ {
			src := stream.NewTwoBand(stream.TwoBandConfig{
				N: n, K: k, Seed: uint64(k)*37 + uint64(trial),
				Gap: 1 << 16, BandWidth: 1 << 8, MaxStep: 6, SwapEvery: sc.Steps / 10,
			})
			matrix := stream.Collect(src, sc.Steps)
			msgs, opt, ratio := ratioRun(matrix, k, uint64(k)*53+uint64(trial))
			msgsS = append(msgsS, float64(msgs))
			optS = append(optS, float64(opt))
			ratioS = append(ratioS, ratio)
		}
		mr := stats.Mean(ratioS)
		t.AddRow(F("%d", k), F("%.0f", stats.Mean(msgsS)), F("%.1f", stats.Mean(optS)),
			F("%.1f", mr), F("%.2f", mr/float64(k+1)))
		ks = append(ks, float64(k))
		ratios = append(ratios, mr)
	}
	fit := stats.LinearFit(ks, ratios)
	t.Note("fit: ratio ≈ %.2f*k + %.1f (R²=%.3f) — linear in k as predicted", fit.Slope, fit.Intercept, fit.R2)
	return t
}

// E6RatioVsN sweeps n with fixed k: the per-reset and per-handler protocol
// cost is M(n) = O(log n), so the ratio should grow logarithmically in n
// (Theorem 4.4's combined bound).
func E6RatioVsN(sc Scale) Table {
	t := Table{
		ID:    "E6",
		Title: "Competitive ratio vs n (band swaps)",
		Claim: "ratio grows ~ log n at fixed k, ∆ (Thm 4.4: M(n) = O(log n))",
		Columns: []string{
			"n", "mean msgs", "mean opt", "mean ratio", "ratio/log2(n)",
		},
	}
	const k = 4
	var ns, ratios []float64
	for e := 3; e <= sc.MonMaxExp; e++ {
		n := 1 << e
		if n <= k {
			continue
		}
		var ratioS, msgsS, optS []float64
		for trial := 0; trial < sc.Trials; trial++ {
			src := stream.NewTwoBand(stream.TwoBandConfig{
				N: n, K: k, Seed: uint64(n)*13 + uint64(trial),
				Gap: 1 << 16, BandWidth: 1 << 8, MaxStep: 6, SwapEvery: sc.Steps / 10,
			})
			matrix := stream.Collect(src, sc.Steps)
			msgs, opt, ratio := ratioRun(matrix, k, uint64(n)*29+uint64(trial))
			msgsS = append(msgsS, float64(msgs))
			optS = append(optS, float64(opt))
			ratioS = append(ratioS, ratio)
		}
		mr := stats.Mean(ratioS)
		t.AddRow(F("%d", n), F("%.0f", stats.Mean(msgsS)), F("%.1f", stats.Mean(optS)),
			F("%.1f", mr), F("%.2f", mr/math.Log2(float64(n))))
		ns = append(ns, float64(n))
		ratios = append(ratios, mr)
	}
	fit := stats.LogXFit(ns, ratios)
	t.Note("log2-fit: ratio ≈ %.1f*log2(n) + %.1f (R²=%.3f) — logarithmic in n as predicted", fit.Slope, fit.Intercept, fit.R2)
	return t
}
