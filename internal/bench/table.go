// Package bench is the experiment harness: it regenerates, as numbered
// experiments E1..E12, the empirical validation of every theorem, lemma and
// comparison claim in the paper (the paper is analytical and has no
// measurement tables of its own; DESIGN.md §4 maps each experiment to the
// claim it validates). cmd/experiments runs the suite at full scale and
// prints the tables recorded in EXPERIMENTS.md; the repository-level
// benchmarks run the same code at reduced scale.
package bench

import (
	"fmt"
	"strings"
)

// Table is one experiment's rendered result.
type Table struct {
	ID      string // experiment id, e.g. "E1"
	Title   string
	Claim   string // the paper's prediction this experiment checks
	Columns []string
	Rows    [][]string
	Notes   []string // fits, verdicts, caveats
}

// AddRow appends one formatted row; the cell count must match Columns.
func (t *Table) AddRow(cells ...string) {
	if len(cells) != len(t.Columns) {
		panic(fmt.Sprintf("bench: row has %d cells, table %s has %d columns", len(cells), t.ID, len(t.Columns)))
	}
	t.Rows = append(t.Rows, cells)
}

// Note appends a formatted note line.
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render produces the ASCII form of the table.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	if t.Claim != "" {
		fmt.Fprintf(&b, "claim: %s\n", t.Claim)
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	line(t.Columns)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total-2))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// F is shorthand for fmt.Sprintf in row construction.
func F(format string, args ...any) string { return fmt.Sprintf(format, args...) }

// Scale controls experiment sizes so the same code serves the full
// reproduction (cmd/experiments) and fast unit tests / benchmarks.
type Scale struct {
	// ProtoTrials is the repetition count for protocol experiments (E1-E3).
	ProtoTrials int
	// Trials is the seed count per monitoring configuration (E4-E12).
	Trials int
	// Steps is the horizon of monitoring runs that do not derive their own
	// length from the workload.
	Steps int
	// ProtoMaxExp bounds protocol population sweeps at n = 2^ProtoMaxExp.
	ProtoMaxExp int
	// MonMaxExp bounds monitor node-count sweeps at n = 2^MonMaxExp.
	MonMaxExp int
}

// Full is the scale used to produce EXPERIMENTS.md.
func Full() Scale {
	return Scale{ProtoTrials: 300, Trials: 5, Steps: 2000, ProtoMaxExp: 14, MonMaxExp: 11}
}

// Quick keeps the whole suite fast enough for unit tests and benchmarks.
func Quick() Scale {
	return Scale{ProtoTrials: 40, Trials: 2, Steps: 200, ProtoMaxExp: 8, MonMaxExp: 6}
}

// Experiment pairs an id with its runner.
type Experiment struct {
	ID    string
	Title string
	Run   func(Scale) Table
}

// All lists every experiment in id order.
func All() []Experiment {
	return []Experiment{
		{"E1", "MAXIMUMPROTOCOL expected messages (Thm 4.2)", E1MaxProtocolMessages},
		{"E2", "MAXIMUMPROTOCOL concentration (Thm 4.2, whp)", E2MaxProtocolTail},
		{"E3", "Sequential-probe lower-bound instrument (Thm 4.3)", E3SequentialMaxima},
		{"E4", "Competitive ratio vs log ∆ (Thm 3.3)", E4RatioVsDelta},
		{"E5", "Competitive ratio vs k (Thm 3.3)", E5RatioVsK},
		{"E6", "Competitive ratio vs n (Thm 4.4)", E6RatioVsN},
		{"E7", "Similar inputs: filters vs baselines (§2.1)", E7SimilarInputs},
		{"E8", "Adversarial inputs: worst-case behaviour (§2.1)", E8Adversarial},
		{"E9", "Las Vegas exactness and engine equivalence", E9Correctness},
		{"E10", "Order-of-magnitude saving vs naive (Babcock-Olston)", E10ZipfBursty},
		{"E11", "Message breakdown by algorithm phase", E11PhaseBreakdown},
		{"E12", "Ablations: wide filters, sampled protocol, top-k focus", E12Ablations},
		{"E13", "Ordered top-k monitoring (§5 future work, implemented)", E13OrderedMonitoring},
		{"E14", "Cumulative messages over time (figure)", E14SeriesOverTime},
		{"E15", "Sensitivity to the OPT cost model", E15OptSensitivity},
		{"E16", "Per-node reporting load balance", E16LoadBalance},
		{"E17", "Bit volume vs message count", E17BitVolume},
		// E18 (shard coordination overhead) lives in the repo-root
		// bench_test.go: its subject is the engine substrate, not a paper
		// claim; see EXPERIMENTS.md.
		{"E19", "ε-approximate monitoring: communication vs tolerance", E19ApproxComm},
	}
}

// ByID returns the experiment with the given id, or false.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}
