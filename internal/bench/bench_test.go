package bench

import (
	"fmt"
	"strings"
	"testing"
)

func TestAllExperimentsRunAtQuickScale(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tbl := e.Run(Quick())
			if tbl.ID != e.ID {
				t.Fatalf("table id %q for experiment %q", tbl.ID, e.ID)
			}
			if len(tbl.Rows) == 0 {
				t.Fatal("experiment produced no rows")
			}
			out := tbl.Render()
			if !strings.Contains(out, e.ID) || !strings.Contains(out, "claim:") {
				t.Fatalf("rendering incomplete:\n%s", out)
			}
		})
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("E4"); !ok {
		t.Fatal("E4 should exist")
	}
	if _, ok := ByID("E99"); ok {
		t.Fatal("E99 should not exist")
	}
}

func TestTableAddRowPanicsOnMismatch(t *testing.T) {
	tbl := Table{ID: "X", Columns: []string{"a", "b"}}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tbl.AddRow("only-one")
}

func TestTableRenderAlignment(t *testing.T) {
	tbl := Table{ID: "T", Title: "demo", Claim: "c", Columns: []string{"col", "value"}}
	tbl.AddRow("short", "1")
	tbl.AddRow("a-much-longer-cell", "22")
	tbl.Note("note %d", 42)
	out := tbl.Render()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 7 { // header, claim, columns, rule, 2 rows, note
		t.Fatalf("unexpected line count %d:\n%s", len(lines), out)
	}
	if !strings.Contains(out, "note: note 42") {
		t.Fatalf("note missing:\n%s", out)
	}
}

func TestE1BoundHolds(t *testing.T) {
	tbl := E1MaxProtocolMessages(Quick())
	// Every row's mean must be below the theorem bound (columns 1 and 3).
	for _, row := range tbl.Rows {
		mean := parseFloat(t, row[1])
		bound := parseFloat(t, row[3])
		if mean > bound {
			t.Fatalf("mean %v exceeds bound %v in row %v", mean, bound, row)
		}
		if row[5] != "0" {
			t.Fatalf("protocol returned wrong results: %v", row)
		}
	}
}

func TestE4RatioGrowsWithDelta(t *testing.T) {
	tbl := E4RatioVsDelta(Quick())
	first := parseFloat(t, tbl.Rows[0][5])
	last := parseFloat(t, tbl.Rows[len(tbl.Rows)-1][5])
	if last <= first {
		t.Fatalf("ratio should grow with delta: first=%v last=%v", first, last)
	}
}

func TestE9AllZeroErrors(t *testing.T) {
	tbl := E9Correctness(Quick())
	for _, row := range tbl.Rows {
		if row[2] != "0" || row[3] != "0" || row[4] != "yes" {
			t.Fatalf("correctness row failed: %v", row)
		}
	}
}

func parseFloat(t *testing.T, s string) float64 {
	t.Helper()
	var v float64
	if _, err := fmt.Sscanf(s, "%f", &v); err != nil {
		t.Fatalf("cannot parse %q: %v", s, err)
	}
	return v
}
