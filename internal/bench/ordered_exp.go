package bench

import (
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/stream"
)

// E13OrderedMonitoring measures the §5 future-work extension: monitoring
// the *ranking* of the top-k, implemented as the paper conjectures by
// combining the Lam et al. neighbor-midpoint strategy (within the band)
// with Algorithm 1 (for the boundary). It sweeps k and positions the
// ordered monitor's cost between plain set monitoring and full-order
// tracking of all n nodes.
func E13OrderedMonitoring(sc Scale) Table {
	t := Table{
		ID:    "E13",
		Title: "Ordered top-k monitoring (paper §5 conjecture, implemented)",
		Claim: "set-monitor <= ordered-monitor <= full-order tracking; gap grows with intra-band churn",
		Columns: []string{
			"k", "set msgs/step", "ordered msgs/step", "full-order msgs/step", "ordered/set",
		},
	}
	const n = 32
	for _, k := range []int{2, 4, 8, 16} {
		src := stream.NewTwoBand(stream.TwoBandConfig{
			N: n, K: k, Seed: 13001 + uint64(k),
			Gap: 1 << 18, BandWidth: 1 << 12, MaxStep: 1 << 10, SwapEvery: sc.Steps / 5,
		})
		matrix := stream.Collect(src, sc.Steps)

		set := sim.Run(core.New(core.Config{N: n, K: k, Seed: 13002}), stream.NewTraceSource(matrix),
			sim.Config{Steps: sc.Steps, K: k, CheckEvery: 1})
		ord := runOrdered(matrix, n, k, 13002)
		lam := sim.Run(baseline.NewLamMidpoint(n, k), stream.NewTraceSource(matrix),
			sim.Config{Steps: sc.Steps, K: k, CheckEvery: 1})
		if set.Errors != 0 || lam.Errors != 0 {
			panic("bench: E13 oracle mismatch")
		}
		t.AddRow(F("%d", k), F("%.2f", set.MsgsPerStep), F("%.2f", ord), F("%.2f", lam.MsgsPerStep),
			F("%.1fx", ord/set.MsgsPerStep))
	}
	t.Note("rank exactness of the ordered monitor is asserted per step inside runOrdered")
	t.Note("full-order tracking pays for all n nodes; the ordered monitor confines Lam-style midpoints to the band")
	return t
}

// runOrdered drives the ordered monitor with per-step rank verification
// and returns messages per step.
func runOrdered(matrix [][]int64, n, k int, seed uint64) float64 {
	om := core.NewOrdered(core.Config{N: n, K: k, Seed: seed})
	for _, vals := range matrix {
		got := om.Observe(vals)
		want := rankOracle(vals, k)
		for i := range got {
			if got[i] != want[i] {
				panic("bench: ordered monitor rank mismatch")
			}
		}
	}
	return float64(om.Counts().Total()) / float64(len(matrix))
}

// rankOracle returns the true top-k ids by rank (largest first) under the
// shared tie-break (equal values: smaller id wins).
func rankOracle(vals []int64, k int) []int {
	type kv struct {
		id int
		v  int64
	}
	s := make([]kv, len(vals))
	for i, v := range vals {
		s[i] = kv{i, v}
	}
	for i := 0; i < len(s); i++ {
		for j := i + 1; j < len(s); j++ {
			if s[j].v > s[i].v || (s[j].v == s[i].v && s[j].id < s[i].id) {
				s[i], s[j] = s[j], s[i]
			}
		}
	}
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = s[i].id
	}
	return out
}

// E14SeriesOverTime is the repository's "figure": cumulative message
// counts over time for Algorithm 1 and the two §2.1 baselines on a
// two-phase workload — calm drift for the first half, adversarial
// rotation for the second. The filter algorithm's curve is flat in the
// calm phase and joins the per-round slope in the adversarial phase,
// which is the visual content of the competitive guarantee.
func E14SeriesOverTime(sc Scale) Table {
	t := Table{
		ID:    "E14",
		Title: "Cumulative messages over time (calm first half, adversarial second half)",
		Claim: "flat curve while inputs are similar; bounded slope once they are not",
		Columns: []string{
			"step", "algorithm1", "per-round", "naive",
		},
	}
	const n, k = 32, 2
	half := sc.Steps / 2
	calm := stream.Collect(stream.NewTwoBand(stream.TwoBandConfig{
		N: n, K: k, Seed: 14001, Gap: 1 << 18, BandWidth: 1 << 8, MaxStep: 4,
	}), half)
	adv := stream.Collect(stream.NewRotation(stream.RotationConfig{
		N: n, Period: 1, Base: 100, Peak: 1 << 20,
	}), sc.Steps-half)
	matrix := append(calm, adv...)

	series := map[string][]int64{}
	for _, entry := range []struct {
		name string
		alg  sim.Algorithm
	}{
		{"algorithm1", core.New(core.Config{N: n, K: k, Seed: 14002})},
		{"per-round", baseline.NewPerRound(n, k, 14003)},
		{"naive", baseline.NewNaive(n, k, false)},
	} {
		rep := sim.Run(entry.alg, stream.NewTraceSource(matrix), sim.Config{
			Steps: len(matrix), K: k, CheckEvery: 1, RecordSeries: true,
		})
		if rep.Errors != 0 {
			panic("bench: E14 oracle mismatch")
		}
		series[entry.name] = rep.Series
	}
	checkpoints := 10
	for c := 1; c <= checkpoints; c++ {
		idx := c*len(matrix)/checkpoints - 1
		t.AddRow(F("%d", idx+1),
			F("%d", series["algorithm1"][idx]),
			F("%d", series["per-round"][idx]),
			F("%d", series["naive"][idx]))
	}
	t.Note("the workload switches from calm to adversarial at step %d", half)
	t.Note("algorithm1's slope is ~0 before the switch and tracks per-round within a constant factor after it")
	return t
}
