package bench

import (
	"math"

	"repro/internal/comm"
	"repro/internal/order"
	"repro/internal/protocol"
	"repro/internal/rng"
	"repro/internal/stats"
)

// protoParts builds n participants holding a random permutation of n
// distinct keys, with independent per-node generators.
func protoParts(n int, seed uint64) []protocol.Participant {
	root := rng.New(seed, 0xe1)
	perm := root.Perm(n)
	parts := make([]protocol.Participant, n)
	for i := 0; i < n; i++ {
		parts[i] = protocol.Participant{ID: i, Key: order.Key(perm[i] + 1), RNG: root.Split(uint64(i))}
	}
	return parts
}

func protoNs(sc Scale) []int {
	var ns []int
	for e := 4; e <= sc.ProtoMaxExp; e += 2 {
		ns = append(ns, 1<<e)
	}
	return ns
}

// E1MaxProtocolMessages measures the expected number of node messages of
// Algorithm 2 against the Theorem 4.2 bound 2·log2(N) + 1.
func E1MaxProtocolMessages(sc Scale) Table {
	t := Table{
		ID:    "E1",
		Title: "MAXIMUMPROTOCOL messages vs n",
		Claim: "E[node msgs] <= 2*log2(n) + 1; protocol always exact (Las Vegas)",
		Columns: []string{
			"n", "mean up", "95% CI", "bound 2log2(n)+1", "mean bcast", "wrong results",
		},
	}
	var logNs, means []float64
	for _, n := range protoNs(sc) {
		ups := make([]float64, sc.ProtoTrials)
		bcasts := make([]float64, sc.ProtoTrials)
		wrong := 0
		for trial := 0; trial < sc.ProtoTrials; trial++ {
			parts := protoParts(n, uint64(n)*7919+uint64(trial))
			var c comm.Counter
			res := protocol.Maximum(parts, n, &c, nil, 0)
			if res.Key != order.Key(n) { // max of permutation 1..n
				wrong++
			}
			ups[trial] = float64(c.Get(comm.Up))
			bcasts[trial] = float64(c.Get(comm.Bcast))
		}
		mean, hw := stats.MeanCI(ups, 1.96)
		bound := 2*math.Log2(float64(n)) + 1
		t.AddRow(F("%d", n), F("%.2f", mean), F("±%.2f", hw), F("%.2f", bound),
			F("%.1f", stats.Mean(bcasts)), F("%d", wrong))
		logNs = append(logNs, float64(n))
		means = append(means, mean)
	}
	fit := stats.LogXFit(logNs, means)
	t.Note("log2-fit: mean up msgs ≈ %.2f*log2(n) + %.2f (R²=%.3f); paper predicts slope <= 2", fit.Slope, fit.Intercept, fit.R2)
	return t
}

// E2MaxProtocolTail measures the upper tail of the message distribution:
// Theorem 4.2 asserts O(log N) with high probability.
func E2MaxProtocolTail(sc Scale) Table {
	t := Table{
		ID:    "E2",
		Title: "MAXIMUMPROTOCOL message concentration",
		Claim: "P[msgs > c*log2(n)] vanishes (whp bound of Thm 4.2)",
		Columns: []string{
			"n", "mean", "p50", "p90", "p99", "max", "frac > 2x bound",
		},
	}
	trials := sc.ProtoTrials * 4
	for _, n := range protoNs(sc) {
		ups := make([]float64, trials)
		for trial := 0; trial < trials; trial++ {
			parts := protoParts(n, uint64(n)*104729+uint64(trial))
			var c comm.Counter
			protocol.Maximum(parts, n, &c, nil, 0)
			ups[trial] = float64(c.Get(comm.Up))
		}
		bound := 2*math.Log2(float64(n)) + 1
		over := 0
		for _, u := range ups {
			if u > 2*bound {
				over++
			}
		}
		s := stats.Summarize(ups)
		t.AddRow(F("%d", n), F("%.2f", s.Mean), F("%.0f", s.Median), F("%.0f", s.P90),
			F("%.0f", s.P99), F("%.0f", s.Max), F("%.4f", float64(over)/float64(trials)))
	}
	t.Note("the tail fraction beyond twice the expectation bound should be near zero and shrink with n")
	return t
}

// E3SequentialMaxima measures the instrument behind the Theorem 4.3 lower
// bound: the optimal deterministic probing scheme answers with one message
// per left-to-right maximum, H_n = Θ(log n) in expectation on random
// permutations — so no algorithm, randomized or not, beats Ω(log n).
func E3SequentialMaxima(sc Scale) Table {
	t := Table{
		ID:    "E3",
		Title: "Sequential probing: left-to-right maxima",
		Claim: "E[msgs] = H_n ≈ ln(n) + 0.577 (Θ(log n) lower-bound instrument)",
		Columns: []string{
			"n", "mean msgs", "95% CI", "ln(n)+γ", "sampled-protocol mean",
		},
	}
	const gamma = 0.5772156649
	trials := sc.ProtoTrials * 4
	var xs, ys []float64
	for _, n := range protoNs(sc) {
		seqMsgs := make([]float64, trials)
		maxMsgs := make([]float64, trials)
		for trial := 0; trial < trials; trial++ {
			parts := protoParts(n, uint64(n)*31337+uint64(trial))
			var c1, c2 comm.Counter
			protocol.SequentialMaxima(parts, &c1, nil, 0)
			protocol.Maximum(protoParts(n, uint64(n)*31337+uint64(trial)), n, &c2, nil, 0)
			seqMsgs[trial] = float64(c1.Get(comm.Up))
			maxMsgs[trial] = float64(c2.Get(comm.Up))
		}
		mean, hw := stats.MeanCI(seqMsgs, 1.96)
		t.AddRow(F("%d", n), F("%.2f", mean), F("±%.2f", hw),
			F("%.2f", math.Log(float64(n))+gamma), F("%.2f", stats.Mean(maxMsgs)))
		xs = append(xs, float64(n))
		ys = append(ys, mean)
	}
	fit := stats.LogXFit(xs, ys)
	t.Note("log2-fit slope %.3f ≈ ln(2) = 0.693 confirms the harmonic growth (R²=%.3f)", fit.Slope, fit.R2)
	t.Note("both schemes grow logarithmically: the randomized protocol is asymptotically optimal (Thm 4.3)")
	return t
}
