package bench

import (
	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/stream"
)

// E17BitVolume re-expresses the headline savings in bits instead of
// messages. The model charges unit cost per message but bounds message
// *size* by O(log n + log max v) bits (§2); this experiment confirms the
// message-count savings carry over to bit volume essentially unchanged —
// protocol messages are no larger than the naive forwarding messages they
// replace.
func E17BitVolume(sc Scale) Table {
	t := Table{
		ID:    "E17",
		Title: "Bit volume vs message count",
		Claim: "message savings translate 1:1 into bit savings (messages carry id + value)",
		Columns: []string{
			"workload", "alg1 msgs", "alg1 bits", "naive bits", "bit saving", "msg saving",
		},
	}
	const n, k = 32, 4
	workloads := []struct {
		name string
		mk   func() stream.Source
	}{
		{"twoband-calm", func() stream.Source {
			return stream.NewTwoBand(stream.TwoBandConfig{N: n, K: k, Seed: 17001, Gap: 1 << 16, BandWidth: 1 << 8, MaxStep: 4})
		}},
		{"bursty", func() stream.Source {
			return stream.NewBursty(stream.BurstyConfig{N: n, Seed: 17002, Lo: 0, Hi: 1 << 22, Noise: 4, BurstProb: 0.02, BurstMax: 1 << 18})
		}},
	}
	for _, w := range workloads {
		matrix := stream.Collect(w.mk(), sc.Steps)
		tr := comm.NewTrace(1 << 22)
		m := core.New(core.Config{N: n, K: k, Seed: 17003, Trace: tr})
		rep := sim.Run(m, stream.NewTraceSource(matrix), sim.Config{Steps: sc.Steps, K: k, CheckEvery: 1})
		if rep.Errors != 0 {
			panic("bench: E17 oracle mismatch")
		}
		if tr.Dropped() > 0 {
			panic("bench: E17 trace overflow")
		}
		algBits := comm.TraceBits(tr, n)

		// Naive forwarding: every node sends (id, value) every step.
		var naiveBits int64
		var naiveMsgs int64
		for _, row := range matrix {
			for _, v := range row {
				naiveBits += int64(comm.IDBits(n) + comm.ValueBits(v))
				naiveMsgs++
			}
		}
		t.AddRow(w.name,
			F("%d", rep.Messages.Total()),
			F("%d", algBits),
			F("%d", naiveBits),
			F("%.0fx", float64(naiveBits)/float64(algBits)),
			F("%.0fx", float64(naiveMsgs)/float64(rep.Messages.Total())))
	}
	t.Note("bit costs use information-theoretic widths (no framing), identical for both sides")
	return t
}
