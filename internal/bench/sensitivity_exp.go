package bench

import (
	"repro/internal/baseline"
	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/stream"
)

// E15OptSensitivity quantifies how the measured competitive ratios depend
// on the OPT cost model. The paper lower-bounds OPT by its number of
// filter updates; we charge 1 message per update (conservative). A
// realistic offline algorithm pays a broadcast plus up to k+1 unicasts
// per update. The measured ratios are therefore upper bounds — this table
// shows by how much.
func E15OptSensitivity(sc Scale) Table {
	t := Table{
		ID:    "E15",
		Title: "Sensitivity of the measured ratio to the OPT cost model",
		Claim: "conservative ratios over-estimate by the (k+2) factor of realistic OPT accounting",
		Columns: []string{
			"workload", "msgs", "opt updates", "ratio (1/update)", "ratio ((k+2)/update)",
		},
	}
	const n, k = 32, 4
	workloads := []struct {
		name string
		mk   func() stream.Source
	}{
		{"converging", func() stream.Source {
			return stream.NewConverging(stream.ConvergingConfig{N: n, K: k, Seed: 15001, Gap: 1 << 24, MinGap: 60, HalvingSteps: 6, Jitter: 8})
		}},
		{"band-swaps", func() stream.Source {
			return stream.NewTwoBand(stream.TwoBandConfig{N: n, K: k, Seed: 15002, Gap: 1 << 16, BandWidth: 1 << 8, MaxStep: 6, SwapEvery: sc.Steps / 10})
		}},
		{"bursty", func() stream.Source {
			return stream.NewBursty(stream.BurstyConfig{N: n, Seed: 15003, Lo: 0, Hi: 1 << 22, Noise: 4, BurstProb: 0.02, BurstMax: 1 << 18})
		}},
	}
	for _, w := range workloads {
		src := w.mk()
		steps := sc.Steps
		if c, ok := src.(*stream.Converging); ok {
			steps = c.CycleLen()
		}
		matrix := stream.Collect(src, steps)
		opt := baseline.OptFromValues(matrix, k)
		rep := sim.Run(core.New(core.Config{N: n, K: k, Seed: 15004}), stream.NewTraceSource(matrix),
			sim.Config{Steps: steps, K: k, CheckEvery: 1})
		if rep.Errors != 0 {
			panic("bench: E15 oracle mismatch")
		}
		msgs := float64(rep.Messages.Total())
		conservative := msgs / float64(opt.FilterUpdates())
		realistic := msgs / float64(opt.RealisticMessages(k))
		t.AddRow(w.name, F("%.0f", msgs), F("%d", opt.Segments),
			F("%.1f", conservative), F("%.1f", realistic))
	}
	t.Note("realistic OPT pays k+2 = %d messages per filter update; both models preserve the growth shapes of E4-E6", k+2)
	return t
}

// E16LoadBalance measures how reporting load spreads across nodes. The
// randomized protocol samples senders, so no single node becomes a
// reporting hotspot beyond what the workload itself forces; naive
// forwarding is perfectly uniform but enormous, and that contrast is the
// interesting trade.
func E16LoadBalance(sc Scale) Table {
	t := Table{
		ID:    "E16",
		Title: "Per-node reporting load (Up messages by sender)",
		Claim: "sampling spreads protocol load; hotspots only where the workload concentrates violations",
		Columns: []string{
			"workload", "total up", "mean/node", "max/node", "gini",
		},
	}
	const n, k = 32, 4
	workloads := []struct {
		name string
		mk   func() stream.Source
	}{
		{"iid-uniform", func() stream.Source {
			return stream.NewIID(stream.IIDConfig{N: n, Seed: 16001, Dist: stream.Uniform, Lo: 0, Hi: 1 << 20})
		}},
		{"twoband-calm", func() stream.Source {
			return stream.NewTwoBand(stream.TwoBandConfig{N: n, K: k, Seed: 16002, Gap: 1 << 16, BandWidth: 1 << 10, MaxStep: 1 << 8})
		}},
		{"rotation", func() stream.Source {
			return stream.NewRotation(stream.RotationConfig{N: n, Period: 1, Base: 100, Peak: 1 << 18})
		}},
	}
	for _, w := range workloads {
		tr := comm.NewTrace(1 << 22)
		m := core.New(core.Config{N: n, K: k, Seed: 16003, Trace: tr})
		rep := sim.Run(m, w.mk(), sim.Config{Steps: sc.Steps, K: k, CheckEvery: 1})
		if rep.Errors != 0 {
			panic("bench: E16 oracle mismatch")
		}
		loads := make([]float64, n)
		var total float64
		for _, e := range tr.Events() {
			if e.Kind == comm.Up && e.From >= 0 {
				loads[e.From]++
				total++
			}
		}
		if tr.Dropped() > 0 {
			panic("bench: E16 trace overflow")
		}
		maxLoad := 0.0
		for _, l := range loads {
			if l > maxLoad {
				maxLoad = l
			}
		}
		t.AddRow(w.name, F("%.0f", total), F("%.1f", total/float64(n)),
			F("%.0f", maxLoad), F("%.2f", stats.Gini(loads)))
	}
	t.Note("gini 0 = perfectly even; iid spreads widely, band workloads concentrate on boundary nodes by necessity")
	return t
}
