package bench

import (
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/runtime"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/stream"
)

// algoSet builds the standard comparison set for n nodes and top size k.
func algoSet(n, k int, seed uint64) []struct {
	Name string
	Alg  sim.Algorithm
} {
	return []struct {
		Name string
		Alg  sim.Algorithm
	}{
		{"algorithm1", core.New(core.Config{N: n, K: k, Seed: seed})},
		{"per-round", baseline.NewPerRound(n, k, seed+1)},
		{"naive", baseline.NewNaive(n, k, false)},
		{"naive-change", baseline.NewNaive(n, k, true)},
		{"point-filter", baseline.NewPointFilter(n, k)},
		{"lam-midpoint", baseline.NewLamMidpoint(n, k)},
	}
}

// compareOn runs the full algorithm set over the same recorded workload
// and adds one row per algorithm, with savings relative to naive.
func compareOn(t *Table, matrix [][]int64, k int, seed uint64) map[string]float64 {
	n := len(matrix[0])
	steps := len(matrix)
	set := algoSet(n, k, seed)
	perStep := make(map[string]float64)
	totals := make(map[string]int64)
	for _, entry := range set {
		rep := sim.Run(entry.Alg, stream.NewTraceSource(matrix), sim.Config{Steps: steps, K: k, CheckEvery: 1})
		if rep.Errors != 0 {
			panic("bench: " + entry.Name + " produced oracle mismatches")
		}
		perStep[entry.Name] = rep.MsgsPerStep
		totals[entry.Name] = rep.Messages.Total()
	}
	for _, entry := range set {
		t.AddRow(entry.Name, F("%d", totals[entry.Name]), F("%.2f", perStep[entry.Name]),
			F("%.1fx", perStep["naive"]/perStep[entry.Name]))
	}
	return perStep
}

// E7SimilarInputs compares all algorithms on the slowly-changing workload
// the paper's filters are designed for (§2.1: "on instances in which the
// new observed values are similar to the values observed in the last
// round, [per-round recomputation] behaves poorly").
func E7SimilarInputs(sc Scale) Table {
	t := Table{
		ID:    "E7",
		Title: "Similar (slowly changing) inputs",
		Claim: "Algorithm 1 ≪ per-round recompute ≪ naive on similar inputs",
		Columns: []string{
			"algorithm", "msgs", "msgs/step", "saving vs naive",
		},
	}
	const n, k = 32, 3
	src := stream.NewTwoBand(stream.TwoBandConfig{
		N: n, K: k, Seed: 7001, Gap: 1 << 18, BandWidth: 1 << 9, MaxStep: 4,
	})
	matrix := stream.Collect(src, sc.Steps)
	per := compareOn(&t, matrix, k, 7002)
	t.Note("algorithm1 beats per-round recomputation by %.0fx and naive by %.0fx on this workload",
		per["per-round"]/per["algorithm1"], per["naive"]/per["algorithm1"])
	return t
}

// E8Adversarial compares all algorithms on the rotating-maximum workload
// from the paper's worst-case discussion: here per-round recomputation is
// near-optimal and Algorithm 1 must not be asymptotically worse.
func E8Adversarial(sc Scale) Table {
	t := Table{
		ID:    "E8",
		Title: "Adversarial inputs (rotating maximum, period 1)",
		Claim: "per-round recompute is near-optimal; Algorithm 1 stays within its O((log∆+k)·log n) factor",
		Columns: []string{
			"algorithm", "msgs", "msgs/step", "saving vs naive",
		},
	}
	const n, k = 32, 1
	src := stream.NewRotation(stream.RotationConfig{N: n, Period: 1, Base: 100, Peak: 100000})
	matrix := stream.Collect(src, sc.Steps)
	per := compareOn(&t, matrix, k, 8001)
	t.Note("every step changes the top-1, so every correct algorithm must communicate every step")
	t.Note("algorithm1 / per-round = %.2f (constant-factor overhead from reset machinery)",
		per["algorithm1"]/per["per-round"])
	return t
}

// E9Correctness verifies the Las Vegas exactness of every algorithm on
// every workload family and the count-equivalence of the two execution
// engines (sequential core vs goroutine runtime).
func E9Correctness(sc Scale) Table {
	t := Table{
		ID:    "E9",
		Title: "Exactness and engine equivalence",
		Claim: "top-k reports are exact at every step; both engines agree bit-for-bit",
		Columns: []string{
			"workload", "steps", "seq errors", "conc errors", "counts equal",
		},
	}
	const n, k = 16, 3
	workloads := []struct {
		name string
		mk   func(seed uint64) stream.Source
	}{
		{"walk", func(s uint64) stream.Source {
			return stream.NewRandomWalk(stream.WalkConfig{N: n, Lo: 0, Hi: 1 << 20, MaxStep: 200, Seed: s})
		}},
		{"iid-uniform", func(s uint64) stream.Source {
			return stream.NewIID(stream.IIDConfig{N: n, Seed: s, Dist: stream.Uniform, Lo: 0, Hi: 1 << 20})
		}},
		{"iid-gauss", func(s uint64) stream.Source {
			return stream.NewIID(stream.IIDConfig{N: n, Seed: s, Dist: stream.Gaussian, Lo: 0, Hi: 1 << 20, Mean: 1 << 19, Std: 1 << 16})
		}},
		{"bursty", func(s uint64) stream.Source {
			return stream.NewBursty(stream.BurstyConfig{N: n, Seed: s, Lo: 0, Hi: 1 << 20, Noise: 4, BurstProb: 0.03, BurstMax: 1 << 17})
		}},
		{"rotation", func(s uint64) stream.Source {
			return stream.NewRotation(stream.RotationConfig{N: n, Period: 5, Base: 10, Peak: 10000})
		}},
		{"twoband-swap", func(s uint64) stream.Source {
			return stream.NewTwoBand(stream.TwoBandConfig{N: n, K: k, Seed: s, Gap: 1 << 16, BandWidth: 1 << 7, MaxStep: 9, SwapEvery: 50})
		}},
	}
	for _, w := range workloads {
		matrix := stream.Collect(w.mk(9001), sc.Steps)
		seq := core.New(core.Config{N: n, K: k, Seed: 9002})
		conc := runtime.New(runtime.Config{N: n, K: k, Seed: 9002})
		seqRep := sim.Run(seq, stream.NewTraceSource(matrix), sim.Config{Steps: sc.Steps, K: k, CheckEvery: 1})
		concRep := sim.Run(conc, stream.NewTraceSource(matrix), sim.Config{Steps: sc.Steps, K: k, CheckEvery: 1})
		conc.Close()
		equal := "yes"
		if seqRep.Messages != concRep.Messages {
			equal = "NO"
		}
		t.AddRow(w.name, F("%d", sc.Steps), F("%d", seqRep.Errors), F("%d", concRep.Errors), equal)
	}
	t.Note("protocols are Las Vegas: randomness affects only cost, never the reported sets")
	return t
}

// E10ZipfBursty reproduces the flavor of Babcock & Olston's experimental
// claim: on realistic skewed workloads the monitoring algorithm saves an
// order of magnitude over naive forwarding.
func E10ZipfBursty(sc Scale) Table {
	t := Table{
		ID:    "E10",
		Title: "Skewed workloads: saving vs naive",
		Claim: "communication an order of magnitude below naive ([1]'s experimental finding)",
		Columns: []string{
			"workload", "algorithm1 msgs/step", "naive msgs/step", "saving",
		},
	}
	const n, k = 64, 5
	workloads := []struct {
		name string
		src  stream.Source
	}{
		{"zipf-drift", zipfDrift(n, 10001)},
		{"bursty", stream.NewBursty(stream.BurstyConfig{N: n, Seed: 10002, Lo: 0, Hi: 1 << 24, Noise: 2, BurstProb: 0.01, BurstMax: 1 << 18})},
		{"calm-walk", stream.NewRandomWalk(stream.WalkConfig{N: n, Lo: 0, Hi: 1 << 24, MaxStep: 16, Seed: 10003})},
	}
	var savings []float64
	for _, w := range workloads {
		matrix := stream.Collect(w.src, sc.Steps)
		mon := sim.Run(core.New(core.Config{N: n, K: k, Seed: 10004}), stream.NewTraceSource(matrix), sim.Config{Steps: sc.Steps, K: k, CheckEvery: 1})
		nai := sim.Run(baseline.NewNaive(n, k, false), stream.NewTraceSource(matrix), sim.Config{Steps: sc.Steps, K: k, CheckEvery: 1})
		if mon.Errors != 0 || nai.Errors != 0 {
			panic("bench: E10 oracle mismatch")
		}
		saving := nai.MsgsPerStep / mon.MsgsPerStep
		savings = append(savings, saving)
		t.AddRow(w.name, F("%.2f", mon.MsgsPerStep), F("%.2f", nai.MsgsPerStep), F("%.0fx", saving))
	}
	t.Note("geometric-mean saving: %.0fx (order-of-magnitude claim holds when >= 10x)", stats.GeometricMean(savings))
	return t
}

// zipfDrift layers a heavy-tailed base level (drawn once per node) under a
// slow random walk: a few nodes dominate persistently, like heavy-hitter
// objects in the Babcock-Olston setting.
func zipfDrift(n int, seed uint64) stream.Source {
	base := stream.NewIID(stream.IIDConfig{N: n, Seed: seed, Dist: stream.Zipf, Lo: 1, Hi: 1 << 24, S: 1.0})
	levels := make([]int64, n)
	base.Step(levels)
	walk := stream.NewRandomWalk(stream.WalkConfig{
		N: n, Lo: -(1 << 10), Hi: 1 << 10, MaxStep: 8, Seed: seed + 1,
		SpreadLo: -(1 << 6), SpreadHi: 1 << 6,
	})
	return &offsetSource{base: levels, inner: walk, buf: make([]int64, n)}
}

// offsetSource adds a fixed per-node offset to an inner source.
type offsetSource struct {
	base  []int64
	inner stream.Source
	buf   []int64
}

func (o *offsetSource) N() int { return o.inner.N() }

func (o *offsetSource) Step(vals []int64) {
	o.inner.Step(o.buf)
	for i := range vals {
		vals[i] = o.base[i] + o.buf[i]
	}
}
