package bench

import (
	"repro/internal/baseline"
	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/stream"
)

// E11PhaseBreakdown attributes every message of Algorithm 1 to its phase —
// the violation protocols, the handler completion + midpoint broadcast, or
// FILTERRESET — on two contrasting workloads. The split mirrors the two
// terms of Theorem 3.3's bound: log ∆ handler executions vs (k+1)·M(n)
// reset executions per OPT segment.
func E11PhaseBreakdown(sc Scale) Table {
	t := Table{
		ID:    "E11",
		Title: "Message breakdown by phase of Algorithm 1",
		Claim: "midpoint workloads are handler-dominated; set-change workloads are reset-dominated",
		Columns: []string{
			"workload", "phase", "up", "bcast", "total", "share",
		},
	}
	const n, k = 32, 4
	workloads := []struct {
		name string
		src  stream.Source
	}{
		{"converging", stream.NewConverging(stream.ConvergingConfig{
			N: n, K: k, Seed: 11001, Gap: 1 << 24, MinGap: 60, HalvingSteps: 6, Jitter: 8,
		})},
		{"band-swaps", stream.NewTwoBand(stream.TwoBandConfig{
			N: n, K: k, Seed: 11002, Gap: 1 << 16, BandWidth: 1 << 8, MaxStep: 6, SwapEvery: sc.Steps / 10,
		})},
	}
	for _, w := range workloads {
		m := core.New(core.Config{N: n, K: k, Seed: 11003})
		rep := sim.Run(m, w.src, sim.Config{Steps: sc.Steps, K: k, CheckEvery: 1})
		if rep.Errors != 0 {
			panic("bench: E11 oracle mismatch")
		}
		total := m.Ledger().Total().Total()
		for _, p := range comm.Phases() {
			c := m.Ledger().PhaseCounts(p)
			t.AddRow(w.name, p.String(), F("%d", c.Up), F("%d", c.Bcast),
				F("%d", c.Total()), F("%.0f%%", 100*float64(c.Total())/float64(total)))
		}
	}
	t.Note("the reset phase includes the mandatory time-0 initialization")
	return t
}

// E12Ablations isolates the three design choices DESIGN.md calls out:
// wide midpoint filters (vs degenerate point filters), the O(log n)
// randomized protocol inside Algorithm 1 (vs gather-all with M(n) = n),
// and monitoring only the k-boundary (vs Lam-style full-order tracking).
func E12Ablations(sc Scale) Table {
	t := Table{
		ID:    "E12",
		Title: "Ablations of Algorithm 1's design choices",
		Claim: "each ingredient (wide filters, sampled protocol, top-k focus) contributes measurably",
		Columns: []string{
			"variant", "msgs", "msgs/step", "overhead vs algorithm1",
		},
	}
	const n, k = 64, 4
	src := stream.NewTwoBand(stream.TwoBandConfig{
		N: n, K: k, Seed: 12001, Gap: 1 << 16, BandWidth: 1 << 9, MaxStep: 24, SwapEvery: sc.Steps / 8,
	})
	matrix := stream.Collect(src, sc.Steps)

	variants := []struct {
		name string
		alg  sim.Algorithm
	}{
		{"algorithm1", core.New(core.Config{N: n, K: k, Seed: 12002})},
		{"gather-all protocol", core.New(core.Config{N: n, K: k, Seed: 12002, UseGather: true})},
		{"point filters", baseline.NewPointFilter(n, k)},
		{"full-order (lam)", baseline.NewLamMidpoint(n, k)},
	}
	var base float64
	rows := make([][2]float64, 0, len(variants))
	for _, v := range variants {
		rep := sim.Run(v.alg, stream.NewTraceSource(matrix), sim.Config{Steps: sc.Steps, K: k, CheckEvery: 1})
		if rep.Errors != 0 {
			panic("bench: E12 oracle mismatch for " + v.name)
		}
		if v.name == "algorithm1" {
			base = rep.MsgsPerStep
		}
		rows = append(rows, [2]float64{float64(rep.Messages.Total()), rep.MsgsPerStep})
	}
	for i, v := range variants {
		t.AddRow(v.name, F("%.0f", rows[i][0]), F("%.2f", rows[i][1]), F("%.1fx", rows[i][1]/base))
	}
	t.Note("gather-all replaces every Algorithm 2 execution with M(n)=n; point filters remove filter width; lam tracks the full order")
	return t
}
