package ingest

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/rng"
)

// gatedApply is the test harness's engine stand-in: it announces each
// Apply on started, then blocks until released, so tests can
// deterministically hold a step in flight while producers enqueue
// against the now-busy worker.
type gatedApply struct {
	mu      sync.Mutex
	batches [][]int
	vals    [][]int64
	started chan struct{} // one send per Apply entry (buffered)
	release chan struct{} // one receive per Apply; closed = free-running
	err     error
}

func newGated() *gatedApply {
	return &gatedApply{started: make(chan struct{}, 64), release: make(chan struct{})}
}

func (g *gatedApply) apply(ids []int, vals []int64) error {
	g.started <- struct{}{}
	<-g.release
	g.mu.Lock()
	defer g.mu.Unlock()
	g.batches = append(g.batches, append([]int(nil), ids...))
	g.vals = append(g.vals, append([]int64(nil), vals...))
	return g.err
}

func (g *gatedApply) applied() [][]int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.batches
}

func newDriver(t *testing.T, g *gatedApply, depth int, pol Policy) *Driver {
	t.Helper()
	d, err := New(Config{N: 8, Depth: depth, Policy: pol, Apply: g.apply})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	return d
}

func drain(t *testing.T, d *Driver) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := d.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
}

func TestDriverConfigValidation(t *testing.T) {
	apply := func([]int, []int64) error { return nil }
	for _, cfg := range []Config{
		{N: 0, Depth: 1, Apply: apply},
		{N: 4, Depth: 0, Apply: apply},
		{N: 4, Depth: 1, Policy: Error + 1, Apply: apply},
		{N: 4, Depth: 1},
	} {
		if _, err := New(cfg); err == nil {
			t.Errorf("New(%+v) accepted", cfg)
		}
	}
}

// TestDriverCoalescesUnderBacklog holds one step in flight and pins the
// tentpole's behavior: a burst of observations of the same node
// collapses into ONE fresher step, not a queue of stale ones.
func TestDriverCoalescesUnderBacklog(t *testing.T) {
	g := newGated()
	d := newDriver(t, g, 8, Block)
	if err := d.Enqueue([]int{0}, []int64{1}); err != nil {
		t.Fatal(err)
	}
	<-g.started // step 1 := {0:1} is in flight; the worker is busy
	for v := int64(2); v <= 5; v++ {
		if err := d.Enqueue([]int{3}, []int64{v}); err != nil {
			t.Fatal(err)
		}
	}
	g.release <- struct{}{} // finish step 1
	<-g.started             // step 2 takes the coalesced {3:5}
	g.release <- struct{}{}
	drain(t, d)
	got := g.applied()
	if len(got) != 2 {
		t.Fatalf("applied %d steps, want 2 (burst must coalesce): %v", len(got), got)
	}
	if len(got[1]) != 1 || got[1][0] != 3 || g.vals[1][0] != 5 {
		t.Fatalf("step 2 = %v/%v, want the last write [3]/[5]", got[1], g.vals[1])
	}
	st := d.Stats()
	if st.Coalesced != 3 || st.Steps != 2 || st.Enqueued != 5 {
		t.Fatalf("stats %+v, want Coalesced=3 Steps=2 Enqueued=5", st)
	}
}

// TestDriverEmptyCallMarksStep pins that an empty observation call still
// schedules an (empty) protocol step — the synchronous path runs one, so
// the asynchronous path must too for drain-equivalence.
func TestDriverEmptyCallMarksStep(t *testing.T) {
	g := newGated()
	close(g.release)
	d := newDriver(t, g, 4, Block)
	if err := d.Enqueue(nil, nil); err != nil {
		t.Fatal(err)
	}
	drain(t, d)
	if got := g.applied(); len(got) != 1 || len(got[0]) != 0 {
		t.Fatalf("applied %v, want one empty batch", got)
	}
}

func TestDriverErrorPolicyAtomic(t *testing.T) {
	g := newGated()
	d := newDriver(t, g, 2, Error)
	// A sacrificial step keeps the worker busy so the buffer stays full.
	if err := d.Enqueue([]int{7}, []int64{1}); err != nil {
		t.Fatal(err)
	}
	<-g.started
	if err := d.Enqueue([]int{0, 1}, []int64{10, 11}); err != nil {
		t.Fatal(err)
	}
	// Two queued + two new nodes > depth: the whole call must bounce...
	err := d.Enqueue([]int{2, 3}, []int64{12, 13})
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow returned %v, want ErrQueueFull", err)
	}
	// ...without admitting its first update (atomic rejection).
	if st := d.Stats(); st.Enqueued != 3 || st.MaxQueue != 2 {
		t.Fatalf("rejected call leaked updates: %+v", st)
	}
	// Coalescing-only calls still succeed while full.
	if err := d.Enqueue([]int{1, 0}, []int64{21, 20}); err != nil {
		t.Fatalf("coalescing call rejected: %v", err)
	}
	close(g.release)
	drain(t, d)
	if got := g.applied(); len(got) != 2 || len(got[1]) != 2 || g.vals[1][0] != 20 || g.vals[1][1] != 21 {
		t.Fatalf("applied %v/%v, want the full batch [0 1]/[20 21] second", got, g.vals)
	}
}

func TestDriverDropOldest(t *testing.T) {
	var dropped []int
	g := newGated()
	d, err := New(Config{N: 8, Depth: 2, Policy: DropOldest, Apply: g.apply,
		OnDrop: func(id int, _ int64) { dropped = append(dropped, id) }})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	// A sacrificial step keeps the worker busy while the buffer overflows.
	if err := d.Enqueue([]int{0}, []int64{0}); err != nil {
		t.Fatal(err)
	}
	<-g.started
	for i, id := range []int{4, 5, 6, 7} { // depth 2: 4 then 5 must be evicted
		if err := d.Enqueue([]int{id}, []int64{int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	close(g.release)
	drain(t, d)
	if len(dropped) != 2 || dropped[0] != 4 || dropped[1] != 5 {
		t.Fatalf("dropped %v, want oldest-first [4 5]", dropped)
	}
	if st := d.Stats(); st.Dropped != 2 {
		t.Fatalf("stats %+v, want Dropped=2", st)
	}
	if got := g.applied(); len(got) != 2 || len(got[1]) != 2 || got[1][0] != 6 || got[1][1] != 7 {
		t.Fatalf("applied %v, want the surviving [6 7] second", got)
	}
}

// TestDriverBlockBackpressure pins the lossless policy: a producer
// hitting a full buffer waits for the worker instead of losing updates.
func TestDriverBlockBackpressure(t *testing.T) {
	g := newGated()
	d := newDriver(t, g, 1, Block)
	if err := d.Enqueue([]int{0}, []int64{1}); err != nil {
		t.Fatal(err)
	}
	<-g.started // worker busy with {0:1}; buffer empty again
	if err := d.Enqueue([]int{1}, []int64{2}); err != nil {
		t.Fatal(err) // fills the depth-1 buffer without blocking
	}
	unblocked := make(chan error, 1)
	go func() { unblocked <- d.Enqueue([]int{2}, []int64{3}) }()
	select {
	case err := <-unblocked:
		t.Fatalf("producer did not block on a full buffer (err=%v)", err)
	case <-time.After(50 * time.Millisecond):
	}
	close(g.release) // free-running: the worker drains, the producer gets in
	if err := <-unblocked; err != nil {
		t.Fatal(err)
	}
	drain(t, d)
	if st := d.Stats(); st.Dropped != 0 || st.Enqueued != 3 {
		t.Fatalf("Block lost updates: %+v", st)
	}
}

// TestDriverStickyError pins the terminal-error contract: after Apply
// fails once, the worker stops and every Enqueue, Drain and Err surfaces
// that same error.
func TestDriverStickyError(t *testing.T) {
	boom := errors.New("boom")
	g := newGated()
	g.err = boom
	close(g.release)
	d := newDriver(t, g, 4, Block)
	if err := d.Enqueue([]int{0}, []int64{1}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := d.Drain(ctx); !errors.Is(err, boom) {
		t.Fatalf("Drain = %v, want the terminal error", err)
	}
	if err := d.Enqueue([]int{0}, []int64{2}); !errors.Is(err, boom) {
		t.Fatalf("Enqueue after failure = %v, want the terminal error", err)
	}
	if err := d.Err(); !errors.Is(err, boom) {
		t.Fatalf("Err = %v", err)
	}
}

func TestDriverDrainContext(t *testing.T) {
	g := newGated() // the in-flight step only finishes once released
	d := newDriver(t, g, 4, Block)
	if err := d.Enqueue([]int{0}, []int64{1}); err != nil {
		t.Fatal(err)
	}
	<-g.started
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if err := d.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Drain = %v, want DeadlineExceeded", err)
	}
	close(g.release) // let Cleanup's Close finish the step
}

func TestDriverClose(t *testing.T) {
	applied := make(chan struct{})
	block := make(chan struct{})
	d, err := New(Config{N: 4, Depth: 4, Apply: func([]int, []int64) error {
		close(applied)
		<-block
		return nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Enqueue([]int{0}, []int64{1}); err != nil {
		t.Fatal(err)
	}
	<-applied
	closed := make(chan struct{})
	go func() { d.Close(); close(closed) }()
	select {
	case <-closed:
		t.Fatal("Close returned while a step was in flight")
	case <-time.After(50 * time.Millisecond):
	}
	close(block)
	<-closed
	if err := d.Enqueue([]int{0}, []int64{2}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Enqueue after Close = %v, want ErrClosed", err)
	}
	if err := d.Drain(context.Background()); !errors.Is(err, ErrClosed) {
		t.Fatalf("Drain after Close = %v, want ErrClosed", err)
	}
	d.Close() // idempotent
}

// TestDriverConcurrentProducersSoak is the -race soak the async tentpole
// demands: many producers with disjoint node sets hammer one driver
// whose worker drains into a real core engine, with Drain barriers and
// stats reads racing the whole time. Besides surviving the race
// detector, the final drained report must be the oracle of the last
// written values, and Block must have lost nothing.
func TestDriverConcurrentProducersSoak(t *testing.T) {
	const producers, perProducer, rounds = 4, 4, 300
	n := producers * perProducer
	eng := core.New(core.Config{N: n, K: 3, Seed: 7})
	var mu sync.Mutex // core.Monitor is not concurrency-safe
	d, err := New(Config{N: n, Depth: 5, Policy: Block, Apply: func(ids []int, vals []int64) error {
		mu.Lock()
		defer mu.Unlock()
		eng.ObserveDelta(ids, vals)
		return nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	final := make([]int64, n)
	var enqueued atomic.Int64
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			r := rng.New(uint64(p)+1, 99)
			base := p * perProducer
			for i := 0; i < rounds; i++ {
				id := base + int(r.Uint64n(perProducer))
				v := int64(r.Uint64n(1 << 20))
				if err := d.Enqueue([]int{id}, []int64{v}); err != nil {
					t.Errorf("producer %d: %v", p, err)
					return
				}
				final[id] = v // disjoint node sets: no write races
				enqueued.Add(1)
				if i%64 == 0 {
					_ = d.Stats()
					ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
					_ = d.Drain(ctx)
					cancel()
				}
			}
		}(p)
	}
	wg.Wait()
	drain(t, d)
	st := d.Stats()
	if st.Dropped != 0 {
		t.Fatalf("Block policy dropped %d updates", st.Dropped)
	}
	if st.Enqueued != enqueued.Load() {
		t.Fatalf("driver admitted %d updates, producers sent %d", st.Enqueued, enqueued.Load())
	}
	if st.MaxQueue > 5 {
		t.Fatalf("queue high-water %d exceeded depth 5", st.MaxQueue)
	}
	// After the final barrier the engine must sit on the oracle of the
	// last written values: Block + coalescing lost nothing but staleness.
	twin := core.New(core.Config{N: n, K: 3, Seed: 7})
	want := twin.Observe(final)
	mu.Lock()
	got := eng.AppendTop(nil)
	mu.Unlock()
	if len(got) != len(want) {
		t.Fatalf("drained report %v, oracle-fed twin %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("drained report %v, oracle-fed twin %v", got, want)
		}
	}
}
