// Package ingest decouples observation producers from protocol
// execution: the asynchronous ingestion column shared by every engine.
//
// A Driver owns a bounded coord.Pending coalescing buffer and one worker
// goroutine. Producers enqueue per-node observations; the worker takes
// the buffered batch as soon as one is pending and applies it as a
// single protocol step through the engine-specific Apply callback. While
// a step executes, further observations coalesce in the buffer —
// last-write-wins per node — so a slow protocol round (a violation
// burst, a FILTERRESET, a failover recovery) back-pressures ingestion
// into *fewer, fresher* steps instead of a growing backlog. The Drain
// barrier waits for the buffer to empty and the in-flight step to
// complete, recovering synchronous semantics on demand: an Enqueue
// followed immediately by Drain is equivalent, bit for bit, to a
// blocking observation call, which is what the equivalence-under-async
// suites in internal/sim pin for all four engines.
//
// The driver is engine-agnostic: Apply is a closure over
// core.Monitor.ObserveDelta, runtime.Runtime.ObserveDelta, or the
// networked engines' equivalents. For the networked engines the frames
// of a coalesced step ride the existing pipelined wire.Batch envelope,
// so coalescing composes with frame coalescing — one merged step costs
// one fan-out, not one per superseded observation.
package ingest

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/coord"
)

// Policy selects what Enqueue does when the buffer already holds Depth
// distinct pending nodes and a new node arrives. Observations of
// already-pending nodes always coalesce and can never overflow.
type Policy uint8

const (
	// Block waits for the worker to take the buffered batch, then
	// admits the observation. Lossless; producers inherit the hot
	// path's pace (real backpressure).
	Block Policy = iota
	// DropOldest evicts the oldest pending observation to admit the new
	// one. Lossy under sustained overload: the evicted node keeps its
	// previously applied value until it is observed again.
	DropOldest
	// Error rejects the whole Enqueue call with ErrQueueFull, admitting
	// none of its updates (atomic rejection).
	Error
)

// ErrQueueFull is returned (wrapped) by Enqueue under the Error policy
// when a call would push the buffer past its depth.
var ErrQueueFull = errors.New("ingest: queue full")

// ErrClosed is returned by Enqueue and Drain after Close.
var ErrClosed = errors.New("ingest: driver closed")

// Config parameterizes a Driver.
type Config struct {
	// N is the node count (ids in [0, N)).
	N int
	// Depth bounds the number of distinct nodes with a pending
	// observation (>= 1; capped at N).
	Depth int
	// Policy is the overflow policy.
	Policy Policy
	// Apply executes one protocol step over the taken batch (ids
	// ascending; the slices are worker-owned scratch, valid only for
	// the call). It runs on the worker goroutine. A non-nil error is
	// terminal: the driver stops applying and surfaces it from every
	// subsequent Enqueue and Drain.
	Apply func(ids []int, vals []int64) error
	// OnApply, when set, observes every taken batch just before Apply
	// runs, on the worker goroutine (the equivalence suites record the
	// applied trace through it). It must copy what it keeps and must
	// not call back into the driver.
	OnApply func(ids []int, vals []int64)
	// OnDrop, when set, observes every DropOldest eviction, on the
	// producer's goroutine with the driver locked; it must not call
	// back into the driver.
	OnDrop func(id int, val int64)
}

// Stats counts the driver's lifetime activity. Steps is the number of
// applied batches — under backlog it is smaller than the number of
// enqueued observation calls, and Coalesced counts exactly the updates
// that were superseded before a worker took them.
type Stats struct {
	Enqueued  int64 // updates admitted into the buffer
	Coalesced int64 // updates that overwrote a queued one
	Dropped   int64 // updates evicted by DropOldest
	Steps     int64 // batches taken and applied as protocol steps
	MaxQueue  int   // high-water mark of distinct pending nodes
}

// Driver is the asynchronous ingestion front of one engine. Enqueue may
// be called from any number of producer goroutines; Drain and Close
// from any goroutine. The zero value is unusable; construct with New.
type Driver struct {
	cfg Config

	mu       sync.Mutex
	c        *sync.Cond
	pend     *coord.Pending
	dirty    bool // a step is pending (possibly with an empty batch)
	inFlight bool // the worker is applying a batch
	err      error
	closed   bool
	stats    Stats

	done     chan struct{}
	takeIDs  []int
	takeVals []int64
}

// New validates cfg, starts the worker, and returns the driver. The
// caller must Close it to release the worker (pending observations are
// discarded; Drain first for a flush).
func New(cfg Config) (*Driver, error) {
	if cfg.N <= 0 {
		return nil, fmt.Errorf("ingest: need N > 0, got %d", cfg.N)
	}
	if cfg.Depth < 1 {
		return nil, fmt.Errorf("ingest: need Depth >= 1, got %d", cfg.Depth)
	}
	if cfg.Policy > Error {
		return nil, fmt.Errorf("ingest: unknown overflow policy %d", cfg.Policy)
	}
	if cfg.Apply == nil {
		return nil, errors.New("ingest: Apply must be set")
	}
	d := &Driver{
		cfg:      cfg,
		pend:     coord.NewPending(cfg.N, cfg.Depth),
		done:     make(chan struct{}),
		takeIDs:  make([]int, 0, min(cfg.Depth, cfg.N)),
		takeVals: make([]int64, 0, min(cfg.Depth, cfg.N)),
	}
	d.c = sync.NewCond(&d.mu)
	go d.run()
	return d, nil
}

// gate reports the state that refuses new work.
func (d *Driver) gate() error {
	if d.err != nil {
		return d.err
	}
	if d.closed {
		return ErrClosed
	}
	return nil
}

// Enqueue stages one observation call — vals[j] is node ids[j]'s new
// value — as (part of) a future protocol step and returns without
// waiting for execution. ids must be valid for the engine (the public
// boundary validates before enqueueing); they need not be sorted here,
// but duplicate ids within one call coalesce to the last value, exactly
// as across calls. An empty call still marks a step pending, so a
// drained "nothing changed" observation replays as the empty protocol
// step the synchronous path would have run.
//
// The call is atomic with respect to step boundaries unless the Block
// policy must wait mid-call (only possible when a single call carries
// more distinct new nodes than Depth): the updates of one call land in
// the same taken batch or coalesce into later ones, and under Error the
// whole call is admitted or rejected.
func (d *Driver) Enqueue(ids []int, vals []int64) error {
	if len(ids) != len(vals) {
		return fmt.Errorf("ingest: %d ids but %d values", len(ids), len(vals))
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.gate(); err != nil {
		return err
	}
	if d.cfg.Policy == Error {
		fresh := 0
		for _, id := range ids {
			if !d.pend.Has(id) {
				fresh++
			}
		}
		if d.pend.Len()+fresh > d.pend.Cap() {
			return fmt.Errorf("%w: %d queued + %d new > depth %d", ErrQueueFull, d.pend.Len(), fresh, d.pend.Cap())
		}
	}
	for j, id := range ids {
		if !d.pend.Has(id) && d.pend.Full() {
			switch d.cfg.Policy {
			case DropOldest:
				old, oldV := d.pend.EvictOldest()
				d.stats.Dropped++
				if d.cfg.OnDrop != nil {
					d.cfg.OnDrop(old, oldV)
				}
			default: // Block: hand the partial batch to the worker and wait
				for !d.pend.Has(id) && d.pend.Full() {
					d.dirty = true
					d.c.Broadcast()
					d.c.Wait()
					if err := d.gate(); err != nil {
						return err
					}
				}
			}
		}
		if d.pend.Put(id, vals[j]) {
			d.stats.Coalesced++
		}
		d.stats.Enqueued++
		if d.pend.Len() > d.stats.MaxQueue {
			d.stats.MaxQueue = d.pend.Len()
		}
	}
	d.dirty = true
	d.c.Broadcast()
	return nil
}

// Drain is the flush barrier: it blocks until every queued observation
// has been applied and no step is in flight, the driver fails (the
// terminal Apply error is returned), the driver closes, or ctx is done.
// After a nil return the engine is quiescent and its reports, ledgers
// and stats reflect every observation enqueued before the call —
// synchronous semantics on demand. Producers enqueueing concurrently
// with Drain can extend the wait arbitrarily; bound it with ctx.
func (d *Driver) Drain(ctx context.Context) error {
	if done := ctx.Done(); done != nil {
		stop := make(chan struct{})
		defer close(stop)
		go func() {
			select {
			case <-done:
				d.mu.Lock()
				d.c.Broadcast()
				d.mu.Unlock()
			case <-stop:
			}
		}()
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	for {
		if d.err != nil {
			return d.err
		}
		if d.closed {
			return ErrClosed
		}
		if !d.dirty && !d.inFlight {
			return nil
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		d.c.Wait()
	}
}

// Err returns the terminal Apply error, nil while the driver is healthy.
func (d *Driver) Err() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.err
}

// Stats returns a snapshot of the driver's counters.
func (d *Driver) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// Close stops the worker and wakes every blocked producer and drainer
// with ErrClosed. Observations still queued are discarded — Drain first
// to flush them. Close waits for an in-flight step to finish, so after
// it returns no goroutine of the driver touches the engine again; it is
// idempotent and safe to call concurrently.
func (d *Driver) Close() {
	d.mu.Lock()
	if !d.closed {
		d.closed = true
		d.c.Broadcast()
	}
	d.mu.Unlock()
	<-d.done
}

// run is the worker: it waits for a pending step, takes the coalesced
// batch, and applies it as one protocol step. Taking clears the buffer
// before Apply runs, so producers refill (and re-coalesce) concurrently
// with the execution — that window is exactly where the backlog of a
// slow step collapses into one fresh batch.
func (d *Driver) run() {
	defer close(d.done)
	d.mu.Lock()
	for {
		for !d.dirty && !d.closed && d.err == nil {
			d.c.Wait()
		}
		if d.closed || d.err != nil {
			d.mu.Unlock()
			return
		}
		d.takeIDs, d.takeVals = d.pend.Take(d.takeIDs[:0], d.takeVals[:0])
		d.dirty = false
		d.inFlight = true
		d.stats.Steps++
		d.c.Broadcast() // buffer space freed: wake Block-ed producers
		d.mu.Unlock()

		if d.cfg.OnApply != nil {
			d.cfg.OnApply(d.takeIDs, d.takeVals)
		}
		err := d.cfg.Apply(d.takeIDs, d.takeVals)

		d.mu.Lock()
		d.inFlight = false
		if err != nil && d.err == nil {
			d.err = err
		}
		d.c.Broadcast()
	}
}
