// Package rng provides a small, deterministic, splittable pseudo-random
// number generator used by every randomized component in this repository.
//
// The generator is a PCG-XSH-RR variant (64-bit state, 32-bit output) with
// an odd per-instance increment, which makes it cheap to derive independent
// substreams: each (seed, stream) pair yields a distinct sequence, so a
// simulation can hand every node its own generator and remain reproducible
// regardless of scheduling order. This property is essential for the
// equivalence tests between the sequential simulator and the
// sharded concurrent runtime.
//
// The package deliberately does not use math/rand: the paper's protocols
// require Bernoulli trials with success probability 2^r/N for possibly
// non-power-of-two N, and we want those trials to be exact (unbiased) and
// bit-for-bit reproducible across Go versions.
package rng

import (
	"errors"
	"math"
)

// Multiplier of the PCG-XSH-RR linear congruential core (from the PCG
// reference implementation).
const pcgMultiplier = 6364136223846793005

// RNG is a deterministic pseudo-random number generator. The zero value is
// not ready for use; construct instances with New or Split.
type RNG struct {
	state uint64
	inc   uint64 // always odd
}

// New returns a generator for the given seed and stream id. Different
// (seed, stream) pairs produce statistically independent sequences.
func New(seed, stream uint64) *RNG {
	r := &RNG{inc: stream<<1 | 1}
	// Standard PCG initialization: advance once, add seed, advance again.
	r.next()
	r.state += seed
	r.next()
	return r
}

// Split derives a child generator whose sequence is independent of the
// parent's future output. The child is seeded from the parent's stream so
// repeated Split calls with the same child ids are reproducible.
func (r *RNG) Split(child uint64) *RNG {
	return New(r.Uint64(), child<<1^r.inc)
}

// State returns the generator's internal (state, increment) pair. Together
// with FromState it lets checkpoint/restore machinery persist a generator
// mid-sequence: the restored generator continues the original's output
// exactly, which is what keeps a restored coordinator bit-identical to an
// uninterrupted run.
func (r *RNG) State() (state, inc uint64) { return r.state, r.inc }

// FromState rebuilds a generator from a State snapshot. The increment must
// be odd — every generator built by New or Split has one — so that the
// LCG core keeps its full period; restoring from untrusted bytes surfaces
// a bad increment as an error, never as a silently degraded generator.
func FromState(state, inc uint64) (*RNG, error) {
	if inc&1 == 0 {
		return nil, errors.New("rng: restored increment must be odd")
	}
	return &RNG{state: state, inc: inc}, nil
}

// next advances the LCG core and returns the pre-advance state.
func (r *RNG) next() uint64 {
	old := r.state
	r.state = old*pcgMultiplier + r.inc
	return old
}

// Uint32 returns a uniformly distributed 32-bit value.
func (r *RNG) Uint32() uint32 {
	old := r.next()
	xorshifted := uint32(((old >> 18) ^ old) >> 27)
	rot := uint32(old >> 59)
	return xorshifted>>rot | xorshifted<<((-rot)&31)
}

// Uint64 returns a uniformly distributed 64-bit value.
func (r *RNG) Uint64() uint64 {
	hi := uint64(r.Uint32())
	lo := uint64(r.Uint32())
	return hi<<32 | lo
}

// Int63 returns a uniformly distributed non-negative int64.
func (r *RNG) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
// Rejection sampling (Lemire-style threshold) removes modulo bias.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with non-positive n")
	}
	return int(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniform integer in [0, n). It panics if n == 0.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n called with zero n")
	}
	if n&(n-1) == 0 { // power of two: mask is exact
		return r.Uint64() & (n - 1)
	}
	// Rejection sampling on the largest multiple of n that fits in 64 bits.
	limit := -n % n // (2^64 - n) mod n == 2^64 mod n
	for {
		v := r.Uint64()
		if v >= limit {
			return v % n
		}
	}
}

// Int63n returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("rng: Int63n called with non-positive n")
	}
	return int64(r.Uint64n(uint64(n)))
}

// Float64 returns a uniform float64 in [0, 1) with 53 bits of precision.
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bernoulli performs an exact Bernoulli trial with success probability
// num/den. It panics if den == 0 or num > den. The trial consumes exactly
// the randomness of one Uint64n(den) draw, so counts stay comparable across
// engines.
func (r *RNG) Bernoulli(num, den uint64) bool {
	if den == 0 {
		panic("rng: Bernoulli with zero denominator")
	}
	if num > den {
		panic("rng: Bernoulli with probability > 1")
	}
	if num == den {
		return true
	}
	if num == 0 {
		return false
	}
	return r.Uint64n(den) < num
}

// BernoulliPow2 performs the paper's coin flip with success probability
// min(1, 2^r/N). The paper's node model (§2) only requires coins with these
// probabilities; this helper makes that capability explicit.
func (r *RNG) BernoulliPow2(round uint, n uint64) bool {
	if n == 0 {
		panic("rng: BernoulliPow2 with zero population")
	}
	if round >= 64 {
		return true
	}
	p := uint64(1) << round
	if p >= n {
		return true
	}
	return r.Bernoulli(p, n)
}

// Perm returns a uniformly random permutation of [0, n) using the
// Fisher-Yates shuffle.
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes the first n elements using the provided swap function.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// NormFloat64 returns a standard normal variate using the polar
// (Marsaglia) method. Deterministic given the generator state.
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		return u * math.Sqrt(-2*math.Log(s)/s)
	}
}

// ExpFloat64 returns an exponential variate with rate 1 (inverse CDF).
func (r *RNG) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}
