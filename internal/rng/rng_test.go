package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42, 7)
	b := New(42, 7)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("sequence diverged at %d: %d != %d", i, av, bv)
		}
	}
}

func TestStreamsDiffer(t *testing.T) {
	a := New(42, 1)
	b := New(42, 2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams with different ids collide too often: %d/1000", same)
	}
}

func TestSeedsDiffer(t *testing.T) {
	a := New(1, 7)
	b := New(2, 7)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds collide too often: %d/1000", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(9, 0)
	c1 := parent.Split(1)
	c2 := parent.Split(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if c1.Uint64() == c2.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split children collide too often: %d/1000", same)
	}
}

func TestSplitReproducible(t *testing.T) {
	p1 := New(9, 0)
	p2 := New(9, 0)
	c1 := p1.Split(5)
	c2 := p2.Split(5)
	for i := 0; i < 100; i++ {
		if c1.Uint64() != c2.Uint64() {
			t.Fatal("identical split ids must yield identical children")
		}
	}
}

func TestIntnRange(t *testing.T) {
	r := New(3, 3)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Intn(0)")
		}
	}()
	New(1, 1).Intn(0)
}

func TestUint64nUniformity(t *testing.T) {
	// Chi-squared style sanity check over 10 buckets.
	r := New(11, 4)
	const buckets, samples = 10, 100000
	counts := make([]int, buckets)
	for i := 0; i < samples; i++ {
		counts[r.Uint64n(buckets)]++
	}
	expect := float64(samples) / buckets
	chi2 := 0.0
	for _, c := range counts {
		d := float64(c) - expect
		chi2 += d * d / expect
	}
	// 9 degrees of freedom; 99.9th percentile ≈ 27.9.
	if chi2 > 27.9 {
		t.Fatalf("Uint64n looks non-uniform: chi2=%.2f counts=%v", chi2, counts)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(5, 5)
	sum := 0.0
	const samples = 100000
	for i := 0; i < samples; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
		sum += f
	}
	mean := sum / samples
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean suspicious: %v", mean)
	}
}

func TestBernoulliExact(t *testing.T) {
	r := New(6, 6)
	if !r.Bernoulli(5, 5) {
		t.Fatal("Bernoulli(5,5) must always succeed")
	}
	if r.Bernoulli(0, 5) {
		t.Fatal("Bernoulli(0,5) must always fail")
	}
	// Empirical frequency for p = 1/3.
	succ := 0
	const trials = 300000
	for i := 0; i < trials; i++ {
		if r.Bernoulli(1, 3) {
			succ++
		}
	}
	p := float64(succ) / trials
	if math.Abs(p-1.0/3) > 0.005 {
		t.Fatalf("Bernoulli(1,3) frequency off: %v", p)
	}
}

func TestBernoulliPanics(t *testing.T) {
	r := New(1, 1)
	for _, tc := range []struct{ num, den uint64 }{{1, 0}, {3, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("expected panic for Bernoulli(%d,%d)", tc.num, tc.den)
				}
			}()
			r.Bernoulli(tc.num, tc.den)
		}()
	}
}

func TestBernoulliPow2(t *testing.T) {
	r := New(7, 7)
	// Round large enough that 2^r >= n: always true.
	if !r.BernoulliPow2(10, 1024) {
		t.Fatal("p = 2^10/1024 = 1 must succeed")
	}
	if !r.BernoulliPow2(64, 3) {
		t.Fatal("round >= 64 must saturate to p = 1")
	}
	// p = 2^2/1000 = 1/250: measure frequency.
	succ := 0
	const trials = 500000
	for i := 0; i < trials; i++ {
		if r.BernoulliPow2(2, 1000) {
			succ++
		}
	}
	p := float64(succ) / trials
	if math.Abs(p-4.0/1000) > 0.0008 {
		t.Fatalf("BernoulliPow2(2,1000) frequency off: %v", p)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(8, 8)
	check := func(n uint8) bool {
		size := int(n%64) + 1
		p := r.Perm(size)
		seen := make([]bool, size)
		for _, v := range p {
			if v < 0 || v >= size || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPermUniformFirstElement(t *testing.T) {
	r := New(12, 3)
	const n, trials = 5, 50000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[r.Perm(n)[0]]++
	}
	for i, c := range counts {
		p := float64(c) / trials
		if math.Abs(p-1.0/n) > 0.01 {
			t.Fatalf("Perm first-element bias at %d: %v", i, p)
		}
	}
}

func TestShuffle(t *testing.T) {
	r := New(4, 9)
	s := []int{0, 1, 2, 3, 4, 5, 6, 7}
	r.Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] })
	seen := make(map[int]bool)
	for _, v := range s {
		if seen[v] {
			t.Fatalf("shuffle duplicated element %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 8 {
		t.Fatalf("shuffle lost elements: %v", s)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(13, 13)
	const samples = 200000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < samples; i++ {
		v := r.NormFloat64()
		sum += v
		sumsq += v * v
	}
	mean := sum / samples
	variance := sumsq/samples - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean off: %v", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance off: %v", variance)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := New(14, 14)
	const samples = 200000
	sum := 0.0
	for i := 0; i < samples; i++ {
		v := r.ExpFloat64()
		if v < 0 {
			t.Fatalf("exponential variate negative: %v", v)
		}
		sum += v
	}
	if mean := sum / samples; math.Abs(mean-1) > 0.02 {
		t.Fatalf("exponential mean off: %v", mean)
	}
}

func TestUint64nPowerOfTwoFastPath(t *testing.T) {
	r := New(15, 15)
	for i := 0; i < 1000; i++ {
		if v := r.Uint64n(16); v >= 16 {
			t.Fatalf("power-of-two path out of range: %d", v)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1, 1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkBernoulliPow2(b *testing.B) {
	r := New(1, 1)
	for i := 0; i < b.N; i++ {
		_ = r.BernoulliPow2(3, 1000)
	}
}
