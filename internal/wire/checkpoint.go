package wire

import (
	"errors"
	"fmt"
	"hash/crc32"
)

// Checkpoint envelope. A durable coordinator checkpoint is one
// self-describing frame: a generation number, the fingerprint of the
// engine that took it, the embedded MachineState (and, for the local
// engines, NodesState) snapshot frames, and the networked engines'
// last-value mirror — everything a dead coordinator process needs to be
// rebuilt by topk.Restore. Unlike the live protocol messages, a
// checkpoint's threat model includes the storage medium itself: the whole
// frame is sealed with a trailing CRC-32 (IEEE), and decoders verify the
// checksum before reading a single field, so a torn write or a flipped
// bit surfaces as ErrChecksum — never as a silently wrong restore.

// ErrChecksum reports a checkpoint frame whose trailing CRC-32 does not
// match its contents: the frame was torn mid-write or corrupted at rest.
// It is distinct from ErrTruncated/ErrMalformed so stores can tell
// storage corruption from framing bugs.
var ErrChecksum = errors.New("wire: checkpoint checksum mismatch")

// Engine fingerprints carried by Checkpoint.Engine. A checkpoint restores
// only into the engine kind that wrote it: the local engines persist a
// full Nodes bank, the networked engines persist the value mirror they
// replay through the Assign handshake instead.
const (
	EngineSeq   uint8 = 0 // sequential engine (internal/core)
	EngineConc  uint8 = 1 // sharded concurrent engine (internal/runtime)
	EngineNet   uint8 = 2 // networked engine (internal/netrun)
	EngineShard uint8 = 3 // multi-coordinator engine (internal/shardrun)
)

// Checkpoint is the wire form of one durable coordinator checkpoint.
// Machine always holds an embedded MachineState frame. Nodes holds the
// NodesState frame of the local engines' node bank (empty for the
// networked engines, whose node state lives in the peers). Last holds the
// networked engines' per-node last-value mirror (empty for the local
// engines, which restore exact node state instead of replaying).
type Checkpoint struct {
	Gen      uint64
	Engine   uint8
	Seed     uint64
	Distinct bool

	Machine []byte
	Nodes   []byte
	Last    []int64
}

// crcLen is the length of the little-endian CRC-32 trailer.
const crcLen = 4

// Append encodes c after dst, sealing the frame with its CRC-32 trailer.
// Engine must be a known fingerprint; Append panics otherwise.
func (c Checkpoint) Append(dst []byte) []byte {
	if c.Engine > EngineShard {
		panic("wire: unknown checkpoint engine fingerprint")
	}
	start := len(dst)
	dst = append(dst, TypeCheckpoint)
	dst = AppendUvarint(dst, c.Gen)
	dst = AppendUvarint(dst, uint64(c.Engine))
	dst = AppendUvarint(dst, c.Seed)
	var flags byte
	if c.Distinct {
		flags |= flagDistinct
	}
	dst = append(dst, flags)
	dst = AppendUvarint(dst, uint64(len(c.Machine)))
	dst = append(dst, c.Machine...)
	dst = AppendUvarint(dst, uint64(len(c.Nodes)))
	dst = append(dst, c.Nodes...)
	dst = AppendUvarint(dst, uint64(len(c.Last)))
	for _, v := range c.Last {
		dst = AppendVarint(dst, v)
	}
	sum := crc32.ChecksumIEEE(dst[start:])
	return append(dst, byte(sum), byte(sum>>8), byte(sum>>16), byte(sum>>24))
}

// Decode decodes a full Checkpoint frame into c, reusing slice capacity.
// The CRC-32 trailer is verified over the whole frame before any field is
// read; a mismatch yields ErrChecksum. The embedded Machine/Nodes frames
// are carried opaquely — their own decoders validate them on restore.
func (c *Checkpoint) Decode(p []byte) error {
	if len(p) < 1+crcLen {
		return ErrTruncated
	}
	body, tail := p[:len(p)-crcLen], p[len(p)-crcLen:]
	want := uint32(tail[0]) | uint32(tail[1])<<8 | uint32(tail[2])<<16 | uint32(tail[3])<<24
	if sum := crc32.ChecksumIEEE(body); sum != want {
		return fmt.Errorf("%w: computed 0x%08x, frame says 0x%08x", ErrChecksum, sum, want)
	}
	p, err := header(body, TypeCheckpoint)
	if err != nil {
		return err
	}
	if c.Gen, p, err = uvarintField(p); err != nil {
		return err
	}
	var u uint64
	if u, p, err = uvarintField(p); err != nil {
		return err
	}
	if u > uint64(EngineShard) {
		return fmt.Errorf("%w: unknown checkpoint engine fingerprint %d", ErrMalformed, u)
	}
	c.Engine = uint8(u)
	if c.Seed, p, err = uvarintField(p); err != nil {
		return err
	}
	if len(p) == 0 {
		return ErrTruncated
	}
	if p[0]&^flagDistinct != 0 {
		return fmt.Errorf("%w: unknown checkpoint flags 0x%02x", ErrMalformed, p[0])
	}
	c.Distinct = p[0]&flagDistinct != 0
	p = p[1:]
	if u, p, err = uvarintField(p); err != nil {
		return err
	}
	if u > uint64(len(p)) {
		return fmt.Errorf("%w: %d machine bytes in %d-byte frame", ErrMalformed, u, len(p))
	}
	c.Machine = append(c.Machine[:0], p[:u]...)
	p = p[u:]
	if u, p, err = uvarintField(p); err != nil {
		return err
	}
	if u > uint64(len(p)) {
		return fmt.Errorf("%w: %d nodes bytes in %d-byte frame", ErrMalformed, u, len(p))
	}
	c.Nodes = append(c.Nodes[:0], p[:u]...)
	p = p[u:]
	if u, p, err = uvarintField(p); err != nil {
		return err
	}
	if u > uint64(len(p)) { // every value takes >= 1 byte
		return fmt.Errorf("%w: %d last values in %d bytes", ErrMalformed, u, len(p))
	}
	c.Last = c.Last[:0]
	for i := uint64(0); i < u; i++ {
		var v int64
		if v, p, err = varintField(p); err != nil {
			return err
		}
		c.Last = append(c.Last, v)
	}
	return fin(p)
}
