// Package wire defines the binary wire format of the monitoring protocol:
// a compact varint codec plus one encoding per protocol message —
// observation delivery, sampler rounds and bids, winner assignment, filter
// (midpoint) broadcasts, and the join handshake. The networked engine in
// internal/netrun exchanges exactly these encodings over a
// transport.Link; the in-process engines use the same encodings to charge
// model bytes, so all three engines report identical byte ledgers.
//
// # Charged versus carried messages
//
// The paper's model (§2) charges a message O(log n + log ∆) bits: a node
// id plus one value. A small set of canonical messages carries exactly
// that content; they are the ones the comm ledgers charge, via the Size
// helpers:
//
//   - Bid: a node's protocol send — its id and key (TypeBid).
//   - Best: the coordinator's end-of-round broadcast of the running best
//     (TypeBest).
//   - Midpoint: the coordinator's filter-bound broadcast (TypeMidpoint).
//   - Bounds: a per-node interval assignment (TypeBounds; ordered
//     variant and interval baselines only), plus Query/Presence for the
//     gather and domain-search baselines.
//
// The remaining messages (Assign, Observe, Round, Reply, ...) are the
// engine's control plane: scheduling information a synchronized deployment
// has anyway (round numbers, population bounds, batched framing). The
// transport accounts their frame bytes separately (transport.LinkStats),
// which keeps the model's byte ledger comparable across engines while
// still measuring what actually crossed the wire.
//
// # Encoding
//
// All integers use LEB128 varints; signed values are zigzag-folded first
// so small magnitudes of either sign stay short. Every message starts with
// a one-byte type tag. Decoders never panic on malformed input: truncated
// or overlong frames yield ErrTruncated/ErrOverflow, unknown tags
// ErrUnknownType, and trailing garbage ErrTrailingBytes.
package wire

import "errors"

// Decode errors. Decoders return these (possibly wrapped) and never panic
// on malformed input.
var (
	// ErrTruncated reports a frame that ends mid-field.
	ErrTruncated = errors.New("wire: truncated message")
	// ErrOverflow reports a varint longer than 64 bits.
	ErrOverflow = errors.New("wire: varint overflows 64 bits")
	// ErrUnknownType reports an unrecognized message type byte.
	ErrUnknownType = errors.New("wire: unknown message type")
	// ErrTrailingBytes reports well-formed fields followed by extra bytes.
	ErrTrailingBytes = errors.New("wire: trailing bytes after message")
	// ErrMalformed reports a structurally invalid message (e.g. an element
	// count that cannot fit in the remaining frame).
	ErrMalformed = errors.New("wire: malformed message")
	// ErrNonCanonical reports a varint with redundant continuation bytes.
	// The codec admits exactly one encoding per value so that frames can
	// be compared and charged byte-for-byte.
	ErrNonCanonical = errors.New("wire: non-canonical varint")
)

// maxUvarintLen is the longest LEB128 encoding of a uint64 (10 bytes).
const maxUvarintLen = 10

// AppendUvarint appends the LEB128 encoding of x to dst and returns the
// extended slice.
func AppendUvarint(dst []byte, x uint64) []byte {
	for x >= 0x80 {
		dst = append(dst, byte(x)|0x80)
		x >>= 7
	}
	return append(dst, byte(x))
}

// Uvarint decodes a LEB128 value from the front of p, returning the value
// and the number of bytes consumed. It fails with ErrTruncated when p ends
// mid-varint, ErrOverflow when the encoding exceeds 64 bits (including
// overflowing bits in the tenth byte), and ErrNonCanonical when the final
// byte is a redundant zero (AppendUvarint never emits one).
func Uvarint(p []byte) (uint64, int, error) {
	var x uint64
	var shift uint
	for i, b := range p {
		if i >= maxUvarintLen {
			return 0, 0, ErrOverflow
		}
		if b < 0x80 {
			if i == maxUvarintLen-1 && b > 1 {
				return 0, 0, ErrOverflow
			}
			if b == 0 && i > 0 {
				return 0, 0, ErrNonCanonical
			}
			return x | uint64(b)<<shift, i + 1, nil
		}
		x |= uint64(b&0x7f) << shift
		shift += 7
	}
	return 0, 0, ErrTruncated
}

// SizeUvarint returns len(AppendUvarint(nil, x)) without encoding.
func SizeUvarint(x uint64) int {
	n := 1
	for x >= 0x80 {
		x >>= 7
		n++
	}
	return n
}

// zigzag folds a signed value into an unsigned one with small magnitudes
// mapping to small values: 0,-1,1,-2,2,... -> 0,1,2,3,4,...
func zigzag(x int64) uint64 { return uint64(x<<1) ^ uint64(x>>63) }

// unzigzag inverts zigzag.
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// AppendVarint appends the zigzag-LEB128 encoding of x to dst.
func AppendVarint(dst []byte, x int64) []byte {
	return AppendUvarint(dst, zigzag(x))
}

// Varint decodes a zigzag-LEB128 value from the front of p.
func Varint(p []byte) (int64, int, error) {
	u, n, err := Uvarint(p)
	if err != nil {
		return 0, 0, err
	}
	return unzigzag(u), n, nil
}

// SizeVarint returns len(AppendVarint(nil, x)) without encoding.
func SizeVarint(x int64) int { return SizeUvarint(zigzag(x)) }
