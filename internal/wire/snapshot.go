package wire

import "fmt"

// Snapshot messages. A coordinator checkpoint is two frames — one
// MachineState for the decision machine, one NodesState per hosted node
// bank — encoded with the same canonical varint codec as every protocol
// message, so checkpoints are comparable byte for byte and covered by the
// same decode→re-encode fuzz harness as the live protocol. The semantic
// validation (range shapes, membership invariants, ledger consistency)
// lives in internal/coord's Restore functions; the decoders here enforce
// only what canonical framing requires.

// Number of (phase, kind) ledger cells in a MachineState: the three
// algorithm phases (violation, handler, reset) times the three message
// kinds (up, down, bcast), in that row-major order.
const MachineLedgerCells = 9

// MachineState is the wire form of an idle coord.Machine: configuration,
// step counters, execution statistics, the tightening bounds, the current
// membership, and the per-phase message ledger. Counts[i] and Bytes[i]
// hold the ledger cell of phase i/3 and kind i%3.
type MachineState struct {
	N, K   int
	EpsNum uint64
	Step   int64
	Init   bool

	Steps, ViolationSteps, HandlerCalls, Resets, TopChanges int64

	TPlus, TMinus, CurLo, CurHi int64

	Top []int // current membership, strictly increasing

	Counts [MachineLedgerCells]int64
	Bytes  [MachineLedgerCells]int64
}

// Append encodes m after dst. Top must be strictly increasing and
// non-negative; Append panics otherwise, matching the Machine's invariant.
func (m MachineState) Append(dst []byte) []byte {
	dst = append(dst, TypeMachineState)
	dst = AppendUvarint(dst, uint64(m.N))
	dst = AppendUvarint(dst, uint64(m.K))
	dst = AppendUvarint(dst, m.EpsNum)
	dst = AppendUvarint(dst, uint64(m.Step))
	var flags byte
	if m.Init {
		flags |= flagInit
	}
	dst = append(dst, flags)
	dst = AppendUvarint(dst, uint64(m.Steps))
	dst = AppendUvarint(dst, uint64(m.ViolationSteps))
	dst = AppendUvarint(dst, uint64(m.HandlerCalls))
	dst = AppendUvarint(dst, uint64(m.Resets))
	dst = AppendUvarint(dst, uint64(m.TopChanges))
	dst = AppendVarint(dst, m.TPlus)
	dst = AppendVarint(dst, m.TMinus)
	dst = AppendVarint(dst, m.CurLo)
	dst = AppendVarint(dst, m.CurHi)
	dst = AppendUvarint(dst, uint64(len(m.Top)))
	prev := -1
	for _, id := range m.Top {
		if id <= prev {
			panic("wire: MachineState membership must be strictly increasing")
		}
		dst = AppendUvarint(dst, uint64(id-prev-1))
		prev = id
	}
	for _, c := range m.Counts {
		dst = AppendUvarint(dst, uint64(c))
	}
	for _, b := range m.Bytes {
		dst = AppendUvarint(dst, uint64(b))
	}
	return dst
}

// Decode decodes a full MachineState frame into m, reusing Top's capacity.
func (m *MachineState) Decode(p []byte) error {
	p, err := header(p, TypeMachineState)
	if err != nil {
		return err
	}
	var u uint64
	if u, p, err = uvarintField(p); err != nil {
		return err
	}
	m.N = int(u)
	if u, p, err = uvarintField(p); err != nil {
		return err
	}
	m.K = int(u)
	if m.EpsNum, p, err = uvarintField(p); err != nil {
		return err
	}
	if m.EpsNum >= MaxTolNum {
		return fmt.Errorf("%w: machine tolerance numerator %d out of range", ErrMalformed, m.EpsNum)
	}
	if u, p, err = uvarintField(p); err != nil {
		return err
	}
	m.Step = int64(u)
	if len(p) == 0 {
		return ErrTruncated
	}
	if p[0]&^flagInit != 0 {
		return fmt.Errorf("%w: unknown machine state flags 0x%02x", ErrMalformed, p[0])
	}
	m.Init = p[0]&flagInit != 0
	p = p[1:]
	for _, f := range []*int64{&m.Steps, &m.ViolationSteps, &m.HandlerCalls, &m.Resets, &m.TopChanges} {
		if u, p, err = uvarintField(p); err != nil {
			return err
		}
		*f = int64(u)
	}
	for _, f := range []*int64{&m.TPlus, &m.TMinus, &m.CurLo, &m.CurHi} {
		if *f, p, err = varintField(p); err != nil {
			return err
		}
	}
	if u, p, err = uvarintField(p); err != nil {
		return err
	}
	if u > uint64(len(p)) { // every membership gap takes >= 1 byte
		return fmt.Errorf("%w: %d members in %d bytes", ErrMalformed, u, len(p))
	}
	m.Top = m.Top[:0]
	prev := -1
	for i := uint64(0); i < u; i++ {
		var gap uint64
		if gap, p, err = uvarintField(p); err != nil {
			return err
		}
		id := prev + 1 + int(gap)
		if id <= prev { // gap overflowed int
			return fmt.Errorf("%w: membership id overflow", ErrMalformed)
		}
		m.Top = append(m.Top, id)
		prev = id
	}
	for i := range m.Counts {
		if u, p, err = uvarintField(p); err != nil {
			return err
		}
		m.Counts[i] = int64(u)
	}
	for i := range m.Bytes {
		if u, p, err = uvarintField(p); err != nil {
			return err
		}
		m.Bytes[i] = int64(u)
	}
	return fin(p)
}

// NodesState is the wire form of one coord.Nodes bank between steps: the
// bank's shape plus, for each hosted node in id order, its key, filter,
// order filter, membership flags, last violation step and generator state.
// Samplers are (re)initialized at round 0 of every execution, so a
// between-steps checkpoint carries none. All per-node slices are parallel,
// of length Hi-Lo.
type NodesState struct {
	N, Lo, Hi int
	EpsNum    uint64
	Distinct  bool

	Keys         []int64
	IvLo, IvHi   []int64
	OrdLo, OrdHi []int64
	Flags        []byte // FlagNodeInTop | FlagNodeWasTop | FlagNodeExtracted
	ViolStep     []int64
	RngState     []uint64
	RngInc       []uint64
}

// Per-node flag bits of NodesState.Flags.
const (
	FlagNodeInTop     = 1 << 0
	FlagNodeWasTop    = 1 << 1
	FlagNodeExtracted = 1 << 2

	nodeFlagMask = FlagNodeInTop | FlagNodeWasTop | FlagNodeExtracted
)

// MachineState flag bits.
const flagInit = 1 << 0 // MachineState: the time-0 reset already ran

// Append encodes m after dst. All per-node slices must have length Hi-Lo;
// Append panics otherwise, matching the bank's construction contract.
func (m NodesState) Append(dst []byte) []byte {
	n := m.Hi - m.Lo
	if len(m.Keys) != n || len(m.IvLo) != n || len(m.IvHi) != n ||
		len(m.OrdLo) != n || len(m.OrdHi) != n || len(m.Flags) != n ||
		len(m.ViolStep) != n || len(m.RngState) != n || len(m.RngInc) != n {
		panic("wire: NodesState per-node slices must all have length Hi-Lo")
	}
	dst = append(dst, TypeNodesState)
	dst = AppendUvarint(dst, uint64(m.Lo))
	dst = AppendUvarint(dst, uint64(m.Hi))
	dst = AppendUvarint(dst, uint64(m.N))
	dst = AppendUvarint(dst, m.EpsNum)
	var flags byte
	if m.Distinct {
		flags |= flagDistinct
	}
	dst = append(dst, flags)
	for i := 0; i < n; i++ {
		dst = AppendVarint(dst, m.Keys[i])
		dst = AppendVarint(dst, m.IvLo[i])
		dst = AppendVarint(dst, m.IvHi[i])
		dst = AppendVarint(dst, m.OrdLo[i])
		dst = AppendVarint(dst, m.OrdHi[i])
		if m.Flags[i]&^byte(nodeFlagMask) != 0 {
			panic("wire: unknown NodesState node flags")
		}
		dst = append(dst, m.Flags[i])
		dst = AppendVarint(dst, m.ViolStep[i])
		dst = AppendUvarint(dst, m.RngState[i])
		dst = AppendUvarint(dst, m.RngInc[i])
	}
	return dst
}

// Decode decodes a full NodesState frame into m, reusing slice capacity.
func (m *NodesState) Decode(p []byte) error {
	p, err := header(p, TypeNodesState)
	if err != nil {
		return err
	}
	var u uint64
	if u, p, err = uvarintField(p); err != nil {
		return err
	}
	m.Lo = int(u)
	if u, p, err = uvarintField(p); err != nil {
		return err
	}
	m.Hi = int(u)
	if u, p, err = uvarintField(p); err != nil {
		return err
	}
	m.N = int(u)
	if m.EpsNum, p, err = uvarintField(p); err != nil {
		return err
	}
	if m.EpsNum >= MaxTolNum {
		return fmt.Errorf("%w: nodes tolerance numerator %d out of range", ErrMalformed, m.EpsNum)
	}
	if len(p) == 0 {
		return ErrTruncated
	}
	if p[0]&^flagDistinct != 0 {
		return fmt.Errorf("%w: unknown nodes state flags 0x%02x", ErrMalformed, p[0])
	}
	m.Distinct = p[0]&flagDistinct != 0
	p = p[1:]
	if m.Lo < 0 || m.Hi < m.Lo || m.Hi > m.N {
		return fmt.Errorf("%w: nodes state range [%d, %d) of %d", ErrMalformed, m.Lo, m.Hi, m.N)
	}
	n := uint64(m.Hi - m.Lo)
	if 9*n > uint64(len(p)) { // every node entry takes >= 9 bytes
		return fmt.Errorf("%w: %d node entries in %d bytes", ErrMalformed, n, len(p))
	}
	m.Keys, m.IvLo, m.IvHi = m.Keys[:0], m.IvLo[:0], m.IvHi[:0]
	m.OrdLo, m.OrdHi, m.Flags = m.OrdLo[:0], m.OrdHi[:0], m.Flags[:0]
	m.ViolStep, m.RngState, m.RngInc = m.ViolStep[:0], m.RngState[:0], m.RngInc[:0]
	for i := uint64(0); i < n; i++ {
		var v int64
		if v, p, err = varintField(p); err != nil {
			return err
		}
		m.Keys = append(m.Keys, v)
		if v, p, err = varintField(p); err != nil {
			return err
		}
		m.IvLo = append(m.IvLo, v)
		if v, p, err = varintField(p); err != nil {
			return err
		}
		m.IvHi = append(m.IvHi, v)
		if v, p, err = varintField(p); err != nil {
			return err
		}
		m.OrdLo = append(m.OrdLo, v)
		if v, p, err = varintField(p); err != nil {
			return err
		}
		m.OrdHi = append(m.OrdHi, v)
		if len(p) == 0 {
			return ErrTruncated
		}
		if p[0]&^byte(nodeFlagMask) != 0 {
			return fmt.Errorf("%w: unknown node flags 0x%02x", ErrMalformed, p[0])
		}
		m.Flags = append(m.Flags, p[0])
		p = p[1:]
		if v, p, err = varintField(p); err != nil {
			return err
		}
		m.ViolStep = append(m.ViolStep, v)
		if u, p, err = uvarintField(p); err != nil {
			return err
		}
		m.RngState = append(m.RngState, u)
		if u, p, err = uvarintField(p); err != nil {
			return err
		}
		m.RngInc = append(m.RngInc, u)
	}
	return fin(p)
}
