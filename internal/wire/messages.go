package wire

import "fmt"

// Message type tags. Every encoded message is a one-byte tag followed by
// the message's varint-coded fields.
const (
	// TypeAssign is the coordinator's handshake: it assigns a joining peer
	// its contiguous node range and the monitor configuration.
	TypeAssign byte = 0x01
	// TypeReady acknowledges an Assign; the peer has built its node state.
	TypeReady byte = 0x02
	// TypeObserve delivers one dense observation step for a peer's range.
	TypeObserve byte = 0x03
	// TypeObserveDelta delivers one sparse observation step: only the
	// listed (strictly increasing) node ids changed.
	TypeObserveDelta byte = 0x04
	// TypeRound starts one sampler round of Algorithm 2 on a cohort.
	TypeRound byte = 0x05
	// TypeReply is a peer's batched answer to any command: violation
	// flags and the round's sampler bids.
	TypeReply byte = 0x06
	// TypeWinner notifies the extraction winner of its new membership.
	TypeWinner byte = 0x07
	// TypeMidpoint broadcasts the filter bound all nodes re-anchor on.
	TypeMidpoint byte = 0x08
	// TypeResetBegin clears extraction state ahead of a FILTERRESET.
	TypeResetBegin byte = 0x09
	// TypeShutdown asks a peer to exit its serve loop.
	TypeShutdown byte = 0x0a
	// TypeBid is the canonical charged form of one sampler send (id, key).
	// On the wire bids ride batched inside TypeReply.
	TypeBid byte = 0x0b
	// TypeBest is the canonical charged form of the coordinator's
	// end-of-round broadcast (round, running best).
	TypeBest byte = 0x0c
	// TypeQuery is the bare "send your key" broadcast of the gather-all
	// baseline protocols.
	TypeQuery byte = 0x0d
	// TypePresence is an id-only node reply (domain-search baseline).
	TypePresence byte = 0x0e
	// TypeBounds assigns one node an explicit filter interval — the
	// charged form of the ordered variant's order-filter installation and
	// of the interval baselines' per-node assignments.
	TypeBounds byte = 0x0f
	// TypeShardDigest is a shard sub-coordinator's answer to one delegated
	// protocol execution (internal/shardrun): the local winner plus a
	// summary of the messages the local execution charged.
	TypeShardDigest byte = 0x10
	// TypeApproxBounds broadcasts the (1±ε) filter band of the
	// ε-approximate mode: top-k nodes install [Lo, +inf], outsiders
	// [-inf, Hi]. It replaces TypeMidpoint on monitors with a non-zero
	// tolerance.
	TypeApproxBounds byte = 0x11
	// TypeBatch is the multi-frame envelope of the pipelined engines: a
	// sequence of complete protocol messages delivered and processed in
	// order, coalescing several commands (or their replies) into one
	// transport frame per link. Batches do not nest.
	TypeBatch byte = 0x12
	// TypeMachineState is a coordinator checkpoint: the idle-state fields
	// of a coord.Machine, canonically encoded so a restored coordinator
	// resumes bit-identically (see snapshot.go).
	TypeMachineState byte = 0x13
	// TypeNodesState is the node-side checkpoint companion: the per-node
	// state of one coord.Nodes bank between steps.
	TypeNodesState byte = 0x14
	// TypeStatsPoll asks a peer for its subtree's TreeStats. It is the
	// hierarchical engine's diagnostic plane: interior coordinators
	// forward it to their children and aggregate, so the root learns the
	// per-level coordination traffic and ladder absorption counters of
	// the whole tree with one poll per link.
	TypeStatsPoll byte = 0x15
	// TypeTreeStats answers a StatsPoll: the subtree's summed ladder
	// absorption counters plus one coordination-traffic entry per
	// coordinator level below the sender, deepest level first.
	TypeTreeStats byte = 0x16
	// TypeCheckpoint is the durable checkpoint envelope: a generation
	// number, the engine fingerprint, the embedded Machine/Nodes snapshot
	// frames and the coordinator's last-value mirror, sealed with a CRC-32
	// so torn or bit-rotted frames are rejected instead of restored (see
	// checkpoint.go and internal/ckpt).
	TypeCheckpoint byte = 0x17
)

// MaxTolNum is the exclusive upper bound on Assign.EpsNum: tolerance
// numerators are fixed-point with denominator 2^order.TolShift, so a
// valid ε < 1 has a numerator below 1<<order.TolShift. wire stays
// dependency-free, so the value is duplicated here; a wire test pins it
// to 1<<order.TolShift.
const MaxTolNum uint64 = 1 << 20

// Flag bits used by messages with a flags byte.
const (
	flagDistinct = 1 << 0 // Assign: DistinctValues mode
	flagLadder   = 1 << 1 // Assign: a per-level tolerance ladder follows
	flagIsTop    = 1 << 0 // Winner: winner joins the top-k set
	flagFull     = 1 << 0 // Midpoint: install [-inf, +inf] (k == n)
	flagTopViol  = 1 << 0 // Reply: some top-k node violated its filter
	flagOutViol  = 1 << 1 // Reply: some outsider violated its filter
	flagOK       = 1 << 0 // ShardDigest: the local cohort was non-empty
)

// MsgType returns the type tag of an encoded message.
func MsgType(p []byte) (byte, error) {
	if len(p) == 0 {
		return 0, ErrTruncated
	}
	return p[0], nil
}

// header consumes the expected type tag.
func header(p []byte, want byte) ([]byte, error) {
	if len(p) == 0 {
		return nil, ErrTruncated
	}
	if p[0] != want {
		return nil, fmt.Errorf("%w: got 0x%02x, want 0x%02x", ErrUnknownType, p[0], want)
	}
	return p[1:], nil
}

// fin rejects trailing bytes after a fully decoded message.
func fin(p []byte) error {
	if len(p) != 0 {
		return fmt.Errorf("%w: %d left", ErrTrailingBytes, len(p))
	}
	return nil
}

// uvarintField decodes one uvarint field and advances p.
func uvarintField(p []byte) (uint64, []byte, error) {
	v, n, err := Uvarint(p)
	if err != nil {
		return 0, nil, err
	}
	return v, p[n:], nil
}

// varintField decodes one zigzag varint field and advances p.
func varintField(p []byte) (int64, []byte, error) {
	v, n, err := Varint(p)
	if err != nil {
		return 0, nil, err
	}
	return v, p[n:], nil
}

// MaxLadder bounds the per-level tolerance ladder an Assign may carry: a
// coordinator tree deeper than this is far past any sane deployment (a
// binary tree of 32 levels already addresses 2^32 leaves), so longer
// ladders are rejected as malformed.
const MaxLadder = 32

// Assign is the coordinator→peer handshake message: the peer hosts nodes
// [Lo, Hi) of a monitor over N nodes with top-set size K, seeded protocol
// randomness, the configured tie-break mode, and the tolerance of the
// ε-approximate mode as the exact fixed-point numerator EpsNum =
// floor(ε·2^order.TolShift) (0 for exact monitoring).
//
// Ladder, when non-empty, carries the hierarchical engine's per-level
// tolerance numerators, tightest (node-local) level first: each entry
// must be <= the next and < EpsNum, so the bands they induce are nested
// inside the installed root band. An empty ladder encodes byte-identically
// to the pre-ladder format — flat and depth-1 deployments pay nothing.
type Assign struct {
	Lo, Hi, N, K int
	Seed         uint64
	EpsNum       uint64
	Distinct     bool
	Ladder       []uint64
}

// Append encodes m after dst.
func (m Assign) Append(dst []byte) []byte {
	dst = append(dst, TypeAssign)
	dst = AppendUvarint(dst, uint64(m.Lo))
	dst = AppendUvarint(dst, uint64(m.Hi))
	dst = AppendUvarint(dst, uint64(m.N))
	dst = AppendUvarint(dst, uint64(m.K))
	dst = AppendUvarint(dst, m.Seed)
	dst = AppendUvarint(dst, m.EpsNum)
	var flags byte
	if m.Distinct {
		flags |= flagDistinct
	}
	if len(m.Ladder) > 0 {
		flags |= flagLadder
	}
	dst = append(dst, flags)
	if len(m.Ladder) > 0 {
		dst = AppendUvarint(dst, uint64(len(m.Ladder)))
		for _, num := range m.Ladder {
			dst = AppendUvarint(dst, num)
		}
	}
	return dst
}

// DecodeAssign decodes a full Assign frame.
func DecodeAssign(p []byte) (Assign, error) {
	var m Assign
	p, err := header(p, TypeAssign)
	if err != nil {
		return m, err
	}
	var u uint64
	if u, p, err = uvarintField(p); err != nil {
		return m, err
	}
	m.Lo = int(u)
	if u, p, err = uvarintField(p); err != nil {
		return m, err
	}
	m.Hi = int(u)
	if u, p, err = uvarintField(p); err != nil {
		return m, err
	}
	m.N = int(u)
	if u, p, err = uvarintField(p); err != nil {
		return m, err
	}
	m.K = int(u)
	if m.Seed, p, err = uvarintField(p); err != nil {
		return m, err
	}
	if m.EpsNum, p, err = uvarintField(p); err != nil {
		return m, err
	}
	if m.EpsNum >= MaxTolNum {
		return m, fmt.Errorf("%w: assign tolerance numerator %d out of range", ErrMalformed, m.EpsNum)
	}
	if len(p) == 0 {
		return m, ErrTruncated
	}
	if p[0]&^(flagDistinct|flagLadder) != 0 {
		return m, fmt.Errorf("%w: unknown assign flags 0x%02x", ErrMalformed, p[0])
	}
	m.Distinct = p[0]&flagDistinct != 0
	hasLadder := p[0]&flagLadder != 0
	p = p[1:]
	if !hasLadder {
		return m, fin(p)
	}
	if u, p, err = uvarintField(p); err != nil {
		return m, err
	}
	if u == 0 || u > MaxLadder {
		return m, fmt.Errorf("%w: assign ladder of %d levels", ErrMalformed, u)
	}
	if u > uint64(len(p)) { // every numerator takes >= 1 byte
		return m, fmt.Errorf("%w: %d ladder levels in %d bytes", ErrMalformed, u, len(p))
	}
	m.Ladder = make([]uint64, 0, u)
	prev := uint64(0)
	for i := uint64(0); i < u; i++ {
		var num uint64
		if num, p, err = uvarintField(p); err != nil {
			return m, err
		}
		// Nested-band invariant: each level's tolerance widens monotonically
		// toward — but stays strictly below — the root tolerance, so the
		// induced bands are a chain B_0 ⊆ … ⊆ [Lo, Hi].
		if num < prev || num >= m.EpsNum {
			return m, fmt.Errorf("%w: assign ladder not monotone below the root tolerance (%d after %d, root %d)", ErrMalformed, num, prev, m.EpsNum)
		}
		m.Ladder = append(m.Ladder, num)
		prev = num
	}
	return m, fin(p)
}

// Observe delivers one dense observation step: Vals[i] is the new value of
// node Lo+i of the receiving peer's assigned range.
type Observe struct {
	Step int64
	Vals []int64
}

// Append encodes m after dst.
func (m Observe) Append(dst []byte) []byte {
	dst = append(dst, TypeObserve)
	dst = AppendUvarint(dst, uint64(m.Step))
	dst = AppendUvarint(dst, uint64(len(m.Vals)))
	for _, v := range m.Vals {
		dst = AppendVarint(dst, v)
	}
	return dst
}

// Decode decodes a full Observe frame into m, reusing m.Vals' capacity.
func (m *Observe) Decode(p []byte) error {
	p, err := header(p, TypeObserve)
	if err != nil {
		return err
	}
	var u uint64
	if u, p, err = uvarintField(p); err != nil {
		return err
	}
	m.Step = int64(u)
	if u, p, err = uvarintField(p); err != nil {
		return err
	}
	if u > uint64(len(p)) { // every value takes >= 1 byte
		return fmt.Errorf("%w: %d values in %d bytes", ErrMalformed, u, len(p))
	}
	m.Vals = m.Vals[:0]
	for i := uint64(0); i < u; i++ {
		var v int64
		if v, p, err = varintField(p); err != nil {
			return err
		}
		m.Vals = append(m.Vals, v)
	}
	return fin(p)
}

// ObserveDelta delivers one sparse observation step: node IDs[j] (a global
// id, strictly increasing) changed to Vals[j]; all other nodes repeat. The
// id sequence is gap-coded on the wire.
type ObserveDelta struct {
	Step int64
	IDs  []int
	Vals []int64
}

// Append encodes m after dst. IDs must be strictly increasing and
// non-negative; Append panics otherwise, matching the engines' input
// contract.
func (m ObserveDelta) Append(dst []byte) []byte {
	if len(m.IDs) != len(m.Vals) {
		panic("wire: ObserveDelta ids/vals length mismatch")
	}
	dst = append(dst, TypeObserveDelta)
	dst = AppendUvarint(dst, uint64(m.Step))
	dst = AppendUvarint(dst, uint64(len(m.IDs)))
	prev := -1
	for j, id := range m.IDs {
		if id <= prev {
			panic("wire: ObserveDelta ids must be strictly increasing")
		}
		dst = AppendUvarint(dst, uint64(id-prev-1))
		dst = AppendVarint(dst, m.Vals[j])
		prev = id
	}
	return dst
}

// Decode decodes a full ObserveDelta frame into m, reusing slice capacity.
func (m *ObserveDelta) Decode(p []byte) error {
	p, err := header(p, TypeObserveDelta)
	if err != nil {
		return err
	}
	var u uint64
	if u, p, err = uvarintField(p); err != nil {
		return err
	}
	m.Step = int64(u)
	if u, p, err = uvarintField(p); err != nil {
		return err
	}
	if 2*u > uint64(len(p))+1 { // every (gap, value) pair takes >= 2 bytes
		return fmt.Errorf("%w: %d deltas in %d bytes", ErrMalformed, u, len(p))
	}
	m.IDs, m.Vals = m.IDs[:0], m.Vals[:0]
	prev := -1
	for i := uint64(0); i < u; i++ {
		var gap uint64
		if gap, p, err = uvarintField(p); err != nil {
			return err
		}
		id := prev + 1 + int(gap)
		if id <= prev { // gap overflowed int
			return fmt.Errorf("%w: delta id overflow", ErrMalformed)
		}
		var v int64
		if v, p, err = varintField(p); err != nil {
			return err
		}
		m.IDs = append(m.IDs, id)
		m.Vals = append(m.Vals, v)
		prev = id
	}
	return fin(p)
}

// Round starts sampler round Round of one Algorithm 2 execution over the
// cohort selected by Tag, with the best key broadcast so far, the
// execution's population bound, and the observation step (cohort selection
// for violation protocols is per-step).
type Round struct {
	Tag   uint8
	Round int
	Best  int64
	Bound int
	Step  int64
}

// Append encodes m after dst.
func (m Round) Append(dst []byte) []byte {
	dst = append(dst, TypeRound, m.Tag)
	dst = AppendUvarint(dst, uint64(m.Round))
	dst = AppendVarint(dst, m.Best)
	dst = AppendUvarint(dst, uint64(m.Bound))
	return AppendUvarint(dst, uint64(m.Step))
}

// DecodeRound decodes a full Round frame.
func DecodeRound(p []byte) (Round, error) {
	var m Round
	p, err := header(p, TypeRound)
	if err != nil {
		return m, err
	}
	if len(p) == 0 {
		return m, ErrTruncated
	}
	m.Tag = p[0]
	p = p[1:]
	var u uint64
	if u, p, err = uvarintField(p); err != nil {
		return m, err
	}
	m.Round = int(u)
	if m.Best, p, err = varintField(p); err != nil {
		return m, err
	}
	if u, p, err = uvarintField(p); err != nil {
		return m, err
	}
	m.Bound = int(u)
	if u, p, err = uvarintField(p); err != nil {
		return m, err
	}
	m.Step = int64(u)
	return m, fin(p)
}

// Reply is a peer's batched answer to one command: filter-violation flags
// (observation commands) and sampler bids (round commands). Commands that
// produce neither send an empty Reply to keep the link in lockstep.
type Reply struct {
	TopViol, OutViol bool
	IDs              []int   // bidding node ids
	Keys             []int64 // keys parallel to IDs
}

// Append encodes m after dst.
func (m Reply) Append(dst []byte) []byte {
	if len(m.IDs) != len(m.Keys) {
		panic("wire: Reply ids/keys length mismatch")
	}
	var flags byte
	if m.TopViol {
		flags |= flagTopViol
	}
	if m.OutViol {
		flags |= flagOutViol
	}
	dst = append(dst, TypeReply, flags)
	dst = AppendUvarint(dst, uint64(len(m.IDs)))
	for j, id := range m.IDs {
		dst = AppendUvarint(dst, uint64(id))
		dst = AppendVarint(dst, m.Keys[j])
	}
	return dst
}

// Decode decodes a full Reply frame into m, reusing slice capacity.
func (m *Reply) Decode(p []byte) error {
	p, err := header(p, TypeReply)
	if err != nil {
		return err
	}
	if len(p) == 0 {
		return ErrTruncated
	}
	if p[0]&^(flagTopViol|flagOutViol) != 0 {
		return fmt.Errorf("%w: unknown reply flags 0x%02x", ErrMalformed, p[0])
	}
	m.TopViol = p[0]&flagTopViol != 0
	m.OutViol = p[0]&flagOutViol != 0
	p = p[1:]
	var u uint64
	if u, p, err = uvarintField(p); err != nil {
		return err
	}
	if 2*u > uint64(len(p))+1 { // every (id, key) pair takes >= 2 bytes
		return fmt.Errorf("%w: %d bids in %d bytes", ErrMalformed, u, len(p))
	}
	m.IDs, m.Keys = m.IDs[:0], m.Keys[:0]
	for i := uint64(0); i < u; i++ {
		var id uint64
		if id, p, err = uvarintField(p); err != nil {
			return err
		}
		var k int64
		if k, p, err = varintField(p); err != nil {
			return err
		}
		m.IDs = append(m.IDs, int(id))
		m.Keys = append(m.Keys, k)
	}
	return fin(p)
}

// Winner notifies the peer hosting node Target that it won the current
// extraction and whether it thereby joins the top-k set.
type Winner struct {
	Target int
	IsTop  bool
}

// Append encodes m after dst.
func (m Winner) Append(dst []byte) []byte {
	var flags byte
	if m.IsTop {
		flags |= flagIsTop
	}
	dst = append(dst, TypeWinner, flags)
	return AppendUvarint(dst, uint64(m.Target))
}

// DecodeWinner decodes a full Winner frame.
func DecodeWinner(p []byte) (Winner, error) {
	var m Winner
	p, err := header(p, TypeWinner)
	if err != nil {
		return m, err
	}
	if len(p) == 0 {
		return m, ErrTruncated
	}
	if p[0]&^flagIsTop != 0 {
		return m, fmt.Errorf("%w: unknown winner flags 0x%02x", ErrMalformed, p[0])
	}
	m.IsTop = p[0]&flagIsTop != 0
	p = p[1:]
	var u uint64
	if u, p, err = uvarintField(p); err != nil {
		return m, err
	}
	m.Target = int(u)
	return m, fin(p)
}

// Midpoint broadcasts the filter bound M: top-k nodes install [M, +inf],
// outsiders [-inf, M]. Full installs [-inf, +inf] everywhere (the k == n
// degenerate case); Mid is ignored then.
type Midpoint struct {
	Mid  int64
	Full bool
}

// Append encodes m after dst.
func (m Midpoint) Append(dst []byte) []byte {
	var flags byte
	if m.Full {
		flags |= flagFull
	}
	dst = append(dst, TypeMidpoint, flags)
	return AppendVarint(dst, m.Mid)
}

// DecodeMidpoint decodes a full Midpoint frame.
func DecodeMidpoint(p []byte) (Midpoint, error) {
	var m Midpoint
	p, err := header(p, TypeMidpoint)
	if err != nil {
		return m, err
	}
	if len(p) == 0 {
		return m, ErrTruncated
	}
	if p[0]&^flagFull != 0 {
		return m, fmt.Errorf("%w: unknown midpoint flags 0x%02x", ErrMalformed, p[0])
	}
	m.Full = p[0]&flagFull != 0
	p = p[1:]
	if m.Mid, p, err = varintField(p); err != nil {
		return m, err
	}
	return m, fin(p)
}

// ApproxBounds broadcasts the (1±ε) filter band of the ε-approximate
// mode: top-k nodes install [Lo, +inf], outsiders [-inf, Hi]. It is the
// tolerance-mode replacement for Midpoint — one broadcast still lets
// every node derive its new filter, it just carries both band ends
// explicitly because the coordinator may center the band off the exact
// midpoint.
type ApproxBounds struct {
	Lo, Hi int64
}

// Append encodes m after dst.
func (m ApproxBounds) Append(dst []byte) []byte {
	dst = append(dst, TypeApproxBounds)
	dst = AppendVarint(dst, m.Lo)
	return AppendVarint(dst, m.Hi)
}

// DecodeApproxBounds decodes a full ApproxBounds frame.
func DecodeApproxBounds(p []byte) (ApproxBounds, error) {
	var m ApproxBounds
	p, err := header(p, TypeApproxBounds)
	if err != nil {
		return m, err
	}
	if m.Lo, p, err = varintField(p); err != nil {
		return m, err
	}
	if m.Hi, p, err = varintField(p); err != nil {
		return m, err
	}
	if m.Lo > m.Hi {
		return m, fmt.Errorf("%w: approx bounds inverted: lo %d > hi %d", ErrMalformed, m.Lo, m.Hi)
	}
	return m, fin(p)
}

// Bid is the canonical charged form of one sampler send: the bidding
// node's id and its key. On the wire bids ride batched inside Reply; the
// standalone encoding exists so the comm ledgers charge exactly the bytes
// a per-message deployment would pay.
type Bid struct {
	ID  int
	Key int64
}

// Append encodes m after dst.
func (m Bid) Append(dst []byte) []byte {
	dst = append(dst, TypeBid)
	dst = AppendUvarint(dst, uint64(m.ID))
	return AppendVarint(dst, m.Key)
}

// DecodeBid decodes a full Bid frame.
func DecodeBid(p []byte) (Bid, error) {
	var m Bid
	p, err := header(p, TypeBid)
	if err != nil {
		return m, err
	}
	var u uint64
	if u, p, err = uvarintField(p); err != nil {
		return m, err
	}
	m.ID = int(u)
	if m.Key, p, err = varintField(p); err != nil {
		return m, err
	}
	return m, fin(p)
}

// Best is the canonical charged form of the coordinator's end-of-round
// broadcast: the round number and the best key seen so far (in the
// executing protocol's comparison domain). On the wire it rides inside the
// next Round command.
type Best struct {
	Round int
	Key   int64
}

// Append encodes m after dst.
func (m Best) Append(dst []byte) []byte {
	dst = append(dst, TypeBest)
	dst = AppendUvarint(dst, uint64(m.Round))
	return AppendVarint(dst, m.Key)
}

// DecodeBest decodes a full Best frame.
func DecodeBest(p []byte) (Best, error) {
	var m Best
	p, err := header(p, TypeBest)
	if err != nil {
		return m, err
	}
	var u uint64
	if u, p, err = uvarintField(p); err != nil {
		return m, err
	}
	m.Round = int(u)
	if m.Key, p, err = varintField(p); err != nil {
		return m, err
	}
	return m, fin(p)
}

// Presence is an id-only node reply ("my key exceeds your threshold"),
// charged by the domain-search baseline.
type Presence struct {
	ID int
}

// Append encodes m after dst.
func (m Presence) Append(dst []byte) []byte {
	dst = append(dst, TypePresence)
	return AppendUvarint(dst, uint64(m.ID))
}

// DecodePresence decodes a full Presence frame.
func DecodePresence(p []byte) (Presence, error) {
	var m Presence
	p, err := header(p, TypePresence)
	if err != nil {
		return m, err
	}
	var u uint64
	if u, p, err = uvarintField(p); err != nil {
		return m, err
	}
	m.ID = int(u)
	return m, fin(p)
}

// Bounds assigns node Target the explicit filter interval [Lo, Hi]. The
// midpoint-broadcast scheme of Algorithm 1 never needs it; the ordered
// (§5) variant and the interval baselines charge their per-node
// coordinator→node assignments in this form.
type Bounds struct {
	Target int
	Lo, Hi int64
}

// Append encodes m after dst.
func (m Bounds) Append(dst []byte) []byte {
	dst = append(dst, TypeBounds)
	dst = AppendUvarint(dst, uint64(m.Target))
	dst = AppendVarint(dst, m.Lo)
	return AppendVarint(dst, m.Hi)
}

// DecodeBounds decodes a full Bounds frame.
func DecodeBounds(p []byte) (Bounds, error) {
	var m Bounds
	p, err := header(p, TypeBounds)
	if err != nil {
		return m, err
	}
	var u uint64
	if u, p, err = uvarintField(p); err != nil {
		return m, err
	}
	m.Target = int(u)
	if m.Lo, p, err = varintField(p); err != nil {
		return m, err
	}
	if m.Hi, p, err = varintField(p); err != nil {
		return m, err
	}
	return m, fin(p)
}

// ShardDigest is a shard sub-coordinator's batched answer to one
// delegated protocol execution (internal/shardrun): whether any hosted
// node participated (OK), the local winner's id and key when one did, and
// the model messages the local execution charged — Ups sends totalling
// UpBytes encoded bytes plus Bcasts round broadcasts totalling BcastBytes
// — so the root can merge the shard's algorithm-ledger contribution
// without replaying the execution. When OK is false, ID and Key must be
// zero.
type ShardDigest struct {
	OK         bool
	ID         int
	Key        int64
	Ups        int64
	UpBytes    int64
	Bcasts     int64
	BcastBytes int64
}

// Append encodes m after dst.
func (m ShardDigest) Append(dst []byte) []byte {
	var flags byte
	if m.OK {
		flags |= flagOK
	}
	dst = append(dst, TypeShardDigest, flags)
	dst = AppendUvarint(dst, uint64(m.ID))
	dst = AppendVarint(dst, m.Key)
	dst = AppendUvarint(dst, uint64(m.Ups))
	dst = AppendUvarint(dst, uint64(m.UpBytes))
	dst = AppendUvarint(dst, uint64(m.Bcasts))
	return AppendUvarint(dst, uint64(m.BcastBytes))
}

// DecodeShardDigest decodes a full ShardDigest frame.
func DecodeShardDigest(p []byte) (ShardDigest, error) {
	var m ShardDigest
	p, err := header(p, TypeShardDigest)
	if err != nil {
		return m, err
	}
	if len(p) == 0 {
		return m, ErrTruncated
	}
	if p[0]&^flagOK != 0 {
		return m, fmt.Errorf("%w: unknown shard digest flags 0x%02x", ErrMalformed, p[0])
	}
	m.OK = p[0]&flagOK != 0
	p = p[1:]
	var u uint64
	if u, p, err = uvarintField(p); err != nil {
		return m, err
	}
	m.ID = int(u)
	if m.Key, p, err = varintField(p); err != nil {
		return m, err
	}
	if u, p, err = uvarintField(p); err != nil {
		return m, err
	}
	m.Ups = int64(u)
	if u, p, err = uvarintField(p); err != nil {
		return m, err
	}
	m.UpBytes = int64(u)
	if u, p, err = uvarintField(p); err != nil {
		return m, err
	}
	m.Bcasts = int64(u)
	if u, p, err = uvarintField(p); err != nil {
		return m, err
	}
	m.BcastBytes = int64(u)
	return m, fin(p)
}

// Batch is the multi-frame envelope: Frames holds complete encoded
// protocol messages that the receiver processes in order, exactly as if
// each had arrived in its own transport frame. The pipelined engines use
// it to ride queued ack-only commands (Winner, ResetBegin, Midpoint,
// ApproxBounds) along with the next command on the same link, and hosts
// answer an n-frame batch with an n-frame batch of the corresponding
// replies. Sub-frames must be non-empty and must not be batches
// themselves (no nesting).
type Batch struct {
	Frames [][]byte
}

// Append encodes m after dst. It panics on an empty or nested sub-frame,
// matching the engines' construction contract.
func (m Batch) Append(dst []byte) []byte {
	dst = append(dst, TypeBatch)
	dst = AppendUvarint(dst, uint64(len(m.Frames)))
	for _, f := range m.Frames {
		if len(f) == 0 {
			panic("wire: empty batch sub-frame")
		}
		if f[0] == TypeBatch {
			panic("wire: nested batch")
		}
		dst = AppendUvarint(dst, uint64(len(f)))
		dst = append(dst, f...)
	}
	return dst
}

// Decode decodes a full Batch frame into m, reusing Frames' capacity. The
// sub-frame slices alias p and are valid only as long as p is.
func (m *Batch) Decode(p []byte) error {
	p, err := header(p, TypeBatch)
	if err != nil {
		return err
	}
	var u uint64
	if u, p, err = uvarintField(p); err != nil {
		return err
	}
	if 2*u > uint64(len(p))+1 { // every sub-frame takes >= 2 bytes (len + type)
		return fmt.Errorf("%w: %d batch frames in %d bytes", ErrMalformed, u, len(p))
	}
	m.Frames = m.Frames[:0]
	for i := uint64(0); i < u; i++ {
		var l uint64
		if l, p, err = uvarintField(p); err != nil {
			return err
		}
		if l == 0 {
			return fmt.Errorf("%w: empty batch sub-frame", ErrMalformed)
		}
		if l > uint64(len(p)) {
			return fmt.Errorf("%w: batch sub-frame of %d bytes in %d", ErrMalformed, l, len(p))
		}
		if p[0] == TypeBatch {
			return fmt.Errorf("%w: nested batch", ErrMalformed)
		}
		m.Frames = append(m.Frames, p[:l])
		p = p[l:]
	}
	return fin(p)
}

// LevelIO is one coordinator level's coordination traffic in a TreeStats
// reply: command frames sent down to that level's children and reply
// frames received back up, with their encoded byte volumes. Batched
// commands count sub-frame by sub-frame, so the numbers are identical in
// pipelined and lockstep mode.
type LevelIO struct {
	Down, Up           int64
	DownBytes, UpBytes int64
}

// Add returns the component-wise sum a + o.
func (a LevelIO) Add(o LevelIO) LevelIO {
	return LevelIO{
		Down: a.Down + o.Down, Up: a.Up + o.Up,
		DownBytes: a.DownBytes + o.DownBytes, UpBytes: a.UpBytes + o.UpBytes,
	}
}

// TreeStats is a peer's answer to a StatsPoll, describing its whole
// subtree. Absorbs sums the per-level ladder absorption counters of every
// node bank below the sender (coord.Nodes.Absorbs); Levels carries one
// LevelIO per coordinator level strictly below the sender, deepest
// (leaf-facing) level first — a leaf shard reports no levels, an interior
// coordinator reports its children's levels followed by its own
// child-facing traffic. All counters are non-negative.
type TreeStats struct {
	Absorbs []int64
	Levels  []LevelIO
}

// Append encodes m after dst. It panics on a negative counter, matching
// the senders' construction contract (counters only ever increment).
func (m TreeStats) Append(dst []byte) []byte {
	dst = append(dst, TypeTreeStats)
	dst = AppendUvarint(dst, uint64(len(m.Absorbs)))
	for _, a := range m.Absorbs {
		if a < 0 {
			panic("wire: negative tree stats counter")
		}
		dst = AppendUvarint(dst, uint64(a))
	}
	dst = AppendUvarint(dst, uint64(len(m.Levels)))
	for _, lv := range m.Levels {
		if lv.Down < 0 || lv.Up < 0 || lv.DownBytes < 0 || lv.UpBytes < 0 {
			panic("wire: negative tree stats counter")
		}
		dst = AppendUvarint(dst, uint64(lv.Down))
		dst = AppendUvarint(dst, uint64(lv.Up))
		dst = AppendUvarint(dst, uint64(lv.DownBytes))
		dst = AppendUvarint(dst, uint64(lv.UpBytes))
	}
	return dst
}

// DecodeTreeStats decodes a full TreeStats frame into m, reusing slice
// capacity.
func (m *TreeStats) Decode(p []byte) error {
	p, err := header(p, TypeTreeStats)
	if err != nil {
		return err
	}
	var u uint64
	if u, p, err = uvarintField(p); err != nil {
		return err
	}
	if u > uint64(len(p)) { // every counter takes >= 1 byte
		return fmt.Errorf("%w: %d absorb counters in %d bytes", ErrMalformed, u, len(p))
	}
	m.Absorbs = m.Absorbs[:0]
	for i := uint64(0); i < u; i++ {
		var a uint64
		if a, p, err = uvarintField(p); err != nil {
			return err
		}
		if a > 1<<62 {
			return fmt.Errorf("%w: tree stats counter overflow", ErrMalformed)
		}
		m.Absorbs = append(m.Absorbs, int64(a))
	}
	if u, p, err = uvarintField(p); err != nil {
		return err
	}
	if 4*u > uint64(len(p))+3 { // every level takes >= 4 bytes
		return fmt.Errorf("%w: %d level entries in %d bytes", ErrMalformed, u, len(p))
	}
	m.Levels = m.Levels[:0]
	for i := uint64(0); i < u; i++ {
		var lv LevelIO
		fields := [4]*int64{&lv.Down, &lv.Up, &lv.DownBytes, &lv.UpBytes}
		for _, f := range fields {
			var v uint64
			if v, p, err = uvarintField(p); err != nil {
				return err
			}
			if v > 1<<62 {
				return fmt.Errorf("%w: tree stats counter overflow", ErrMalformed)
			}
			*f = int64(v)
		}
		m.Levels = append(m.Levels, lv)
	}
	return fin(p)
}

// AppendBare encodes one of the field-less messages (TypeReady,
// TypeResetBegin, TypeShutdown, TypeQuery, TypeStatsPoll) after dst.
func AppendBare(dst []byte, typ byte) []byte { return append(dst, typ) }

// DecodeBare checks a field-less frame of the expected type.
func DecodeBare(p []byte, typ byte) error {
	p, err := header(p, typ)
	if err != nil {
		return err
	}
	return fin(p)
}
