package wire

// The Size functions return the exact encoded length of the canonical
// charged messages without encoding them. The engines call these on their
// hot paths to fill the comm ledgers' bytes column, so they must stay
// allocation-free; the wire tests pin each one to len(Append(nil)).

// SizeBid returns the encoded size of Bid{id, key}.
func SizeBid(id int, key int64) int64 {
	return int64(1 + SizeUvarint(uint64(id)) + SizeVarint(key))
}

// SizeBest returns the encoded size of Best{round, key}.
func SizeBest(round int, key int64) int64 {
	return int64(1 + SizeUvarint(uint64(round)) + SizeVarint(key))
}

// SizeMidpoint returns the encoded size of Midpoint{mid, false}.
func SizeMidpoint(mid int64) int64 {
	return int64(2 + SizeVarint(mid))
}

// SizeApproxBounds returns the encoded size of ApproxBounds{lo, hi} —
// what the ε-approximate mode's band broadcast charges in place of a
// midpoint broadcast.
func SizeApproxBounds(lo, hi int64) int64 {
	return int64(1 + SizeVarint(lo) + SizeVarint(hi))
}

// SizeQuery returns the encoded size of the bare gather-all query
// broadcast (TypeQuery).
func SizeQuery() int64 { return 1 }

// SizePresence returns the encoded size of Presence{id}.
func SizePresence(id int) int64 {
	return int64(1 + SizeUvarint(uint64(id)))
}

// SizeBounds returns the encoded size of Bounds{target, lo, hi}.
func SizeBounds(target int, lo, hi int64) int64 {
	return int64(1 + SizeUvarint(uint64(target)) + SizeVarint(lo) + SizeVarint(hi))
}

// Size returns the encoded size of the digest without encoding it. The
// shard root charges it per digest on its coordination-overhead ledger.
func (m ShardDigest) Size() int64 {
	return int64(2 + SizeUvarint(uint64(m.ID)) + SizeVarint(m.Key) +
		SizeUvarint(uint64(m.Ups)) + SizeUvarint(uint64(m.UpBytes)) +
		SizeUvarint(uint64(m.Bcasts)) + SizeUvarint(uint64(m.BcastBytes)))
}
