package wire

import (
	"bytes"
	"testing"
)

// FuzzDecode throws arbitrary bytes at every decoder (mirroring
// internal/core's fuzz harness for the monitor): no input may panic, and
// any input a decoder accepts must re-encode to the identical frame —
// the codec admits exactly one encoding per message.
func FuzzDecode(f *testing.F) {
	seeds := [][]byte{
		{},
		{TypeAssign},
		Assign{Lo: 0, Hi: 4, N: 8, K: 2, Seed: 99, Distinct: true}.Append(nil),
		Assign{Lo: 0, Hi: 4, N: 8, K: 2, Seed: 99, EpsNum: 52428, Distinct: true}.Append(nil),
		Assign{Lo: 0, Hi: 4, N: 8, K: 2, Seed: 99, EpsNum: 52428, Ladder: []uint64{17476, 34952}}.Append(nil),
		TreeStats{Absorbs: []int64{7, 3}, Levels: []LevelIO{{Down: 9, Up: 9, DownBytes: 120, UpBytes: 44}}}.Append(nil),
		ApproxBounds{Lo: -1 << 30, Hi: 1 << 30}.Append(nil),
		Observe{Step: 3, Vals: []int64{5, -5}}.Append(nil),
		ObserveDelta{Step: 3, IDs: []int{1, 4}, Vals: []int64{-9, 9}}.Append(nil),
		Round{Tag: 1, Round: 2, Best: -3, Bound: 8, Step: 4}.Append(nil),
		Reply{OutViol: true, IDs: []int{2}, Keys: []int64{77}}.Append(nil),
		Winner{Target: 6, IsTop: true}.Append(nil),
		Midpoint{Mid: 1 << 40}.Append(nil),
		Bid{ID: 1, Key: 2}.Append(nil),
		Best{Round: 1, Key: 2}.Append(nil),
		Presence{ID: 3}.Append(nil),
		Bounds{Target: 2, Lo: -4, Hi: 4}.Append(nil),
		ShardDigest{OK: true, ID: 5, Key: -17, Ups: 3, UpBytes: 11, Bcasts: 4, BcastBytes: 13}.Append(nil),
		Batch{Frames: [][]byte{
			Winner{Target: 6, IsTop: true}.Append(nil),
			Round{Tag: 4, Round: 0, Best: -9, Bound: 16, Step: 5}.Append(nil),
		}}.Append(nil),
		MachineState{
			N: 8, K: 2, EpsNum: 52428, Step: 17, Init: true,
			Steps: 17, ViolationSteps: 4, HandlerCalls: 3, Resets: 2, TopChanges: 2,
			TPlus: 41, TMinus: 17, CurLo: 20, CurHi: 38,
			Top:    []int{1, 5},
			Counts: [MachineLedgerCells]int64{3, 0, 2, 5, 0, 1, 9, 0, 4},
			Bytes:  [MachineLedgerCells]int64{12, 0, 8, 20, 0, 4, 36, 0, 16},
		}.Append(nil),
		NodesState{
			N: 8, Lo: 2, Hi: 4, EpsNum: 0, Distinct: true,
			Keys: []int64{7, -3}, IvLo: []int64{5, -9}, IvHi: []int64{9, 0},
			OrdLo: []int64{-1 << 40, 0}, OrdHi: []int64{1 << 40, 0},
			Flags: []byte{1, 2}, ViolStep: []int64{-1, 16},
			RngState: []uint64{0xdeadbeef, 1}, RngInc: []uint64{3, 5},
		}.Append(nil),
		Checkpoint{Gen: 7, Engine: EngineNet, Seed: 3, Last: []int64{4, -4}}.Append(nil),
		AppendBare(nil, TypeShutdown),
		bytes.Repeat([]byte{0x80}, 32),
		bytes.Repeat([]byte{0xff}, 32),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		typ, err := MsgType(data)
		if err != nil {
			return
		}
		switch typ {
		case TypeAssign:
			if m, err := DecodeAssign(data); err == nil {
				roundTrip(t, data, m.Append(nil))
			}
		case TypeObserve:
			var m Observe
			if err := m.Decode(data); err == nil {
				roundTrip(t, data, m.Append(nil))
			}
		case TypeObserveDelta:
			var m ObserveDelta
			if err := m.Decode(data); err == nil {
				roundTrip(t, data, m.Append(nil))
			}
		case TypeRound:
			if m, err := DecodeRound(data); err == nil {
				roundTrip(t, data, m.Append(nil))
			}
		case TypeReply:
			var m Reply
			if err := m.Decode(data); err == nil {
				roundTrip(t, data, m.Append(nil))
			}
		case TypeWinner:
			if m, err := DecodeWinner(data); err == nil {
				roundTrip(t, data, m.Append(nil))
			}
		case TypeMidpoint:
			if m, err := DecodeMidpoint(data); err == nil {
				roundTrip(t, data, m.Append(nil))
			}
		case TypeBid:
			if m, err := DecodeBid(data); err == nil {
				roundTrip(t, data, m.Append(nil))
			}
		case TypeBest:
			if m, err := DecodeBest(data); err == nil {
				roundTrip(t, data, m.Append(nil))
			}
		case TypePresence:
			if m, err := DecodePresence(data); err == nil {
				roundTrip(t, data, m.Append(nil))
			}
		case TypeBounds:
			if m, err := DecodeBounds(data); err == nil {
				roundTrip(t, data, m.Append(nil))
			}
		case TypeShardDigest:
			if m, err := DecodeShardDigest(data); err == nil {
				roundTrip(t, data, m.Append(nil))
			}
		case TypeApproxBounds:
			if m, err := DecodeApproxBounds(data); err == nil {
				roundTrip(t, data, m.Append(nil))
			}
		case TypeBatch:
			var m Batch
			if err := m.Decode(data); err == nil {
				roundTrip(t, data, m.Append(nil))
			}
		case TypeMachineState:
			var m MachineState
			if err := m.Decode(data); err == nil {
				roundTrip(t, data, m.Append(nil))
			}
		case TypeNodesState:
			var m NodesState
			if err := m.Decode(data); err == nil {
				roundTrip(t, data, m.Append(nil))
			}
		case TypeTreeStats:
			var m TreeStats
			if err := m.Decode(data); err == nil {
				roundTrip(t, data, m.Append(nil))
			}
		case TypeCheckpoint:
			var m Checkpoint
			if err := m.Decode(data); err == nil {
				roundTrip(t, data, m.Append(nil))
			}
		case TypeReady, TypeResetBegin, TypeShutdown, TypeQuery, TypeStatsPoll:
			_ = DecodeBare(data, typ)
		}
	})
}

func roundTrip(t *testing.T, in, re []byte) {
	t.Helper()
	if !bytes.Equal(in, re) {
		t.Fatalf("re-encode mismatch:\n in %x\nout %x", in, re)
	}
}
