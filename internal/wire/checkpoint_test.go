package wire

import (
	"bytes"
	"errors"
	"hash/crc32"
	"testing"
)

func sampleCheckpoint() Checkpoint {
	mach := MachineState{
		N: 8, K: 2, EpsNum: 52428, Step: 17, Init: true,
		Steps: 17, ViolationSteps: 4, HandlerCalls: 3, Resets: 2, TopChanges: 2,
		TPlus: 41, TMinus: 17, CurLo: 20, CurHi: 38,
		Top:    []int{1, 5},
		Counts: [MachineLedgerCells]int64{3, 0, 2, 5, 0, 1, 9, 0, 4},
		Bytes:  [MachineLedgerCells]int64{12, 0, 8, 20, 0, 4, 36, 0, 16},
	}
	nodes := NodesState{
		N: 8, Lo: 0, Hi: 2, EpsNum: 52428, Distinct: true,
		Keys: []int64{7, -3}, IvLo: []int64{5, -9}, IvHi: []int64{9, 0},
		OrdLo: []int64{-1 << 40, 0}, OrdHi: []int64{1 << 40, 0},
		Flags: []byte{1, 0}, ViolStep: []int64{-1, 16},
		RngState: []uint64{0xdeadbeef, 1}, RngInc: []uint64{3, 5},
	}
	return Checkpoint{
		Gen: 42, Engine: EngineSeq, Seed: 99, Distinct: true,
		Machine: mach.Append(nil),
		Nodes:   nodes.Append(nil),
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	cases := []Checkpoint{
		sampleCheckpoint(),
		{Gen: 0, Engine: EngineNet, Seed: 7, Machine: []byte{TypeMachineState}, Last: []int64{5, -5, 0, 1 << 40}},
		{Gen: 1 << 60, Engine: EngineShard, Machine: []byte{0xff, 0x00}, Last: []int64{}},
		{Engine: EngineConc, Machine: []byte{}, Nodes: []byte{1, 2, 3}},
	}
	for i, c := range cases {
		frame := c.Append(nil)
		var got Checkpoint
		if err := got.Decode(frame); err != nil {
			t.Fatalf("case %d: decode: %v", i, err)
		}
		if got.Gen != c.Gen || got.Engine != c.Engine || got.Seed != c.Seed || got.Distinct != c.Distinct {
			t.Fatalf("case %d: header fields differ: got %+v want %+v", i, got, c)
		}
		if !bytes.Equal(got.Machine, c.Machine) || !bytes.Equal(got.Nodes, c.Nodes) {
			t.Fatalf("case %d: embedded frames differ", i)
		}
		if len(got.Last) != len(c.Last) {
			t.Fatalf("case %d: last mirror length %d, want %d", i, len(got.Last), len(c.Last))
		}
		for j := range got.Last {
			if got.Last[j] != c.Last[j] {
				t.Fatalf("case %d: last[%d] = %d, want %d", i, j, got.Last[j], c.Last[j])
			}
		}
		if re := got.Append(nil); !bytes.Equal(re, frame) {
			t.Fatalf("case %d: re-encode mismatch:\n in %x\nout %x", i, frame, re)
		}
	}
}

// TestCheckpointBitFlips verifies that flipping any single bit of a sealed
// frame makes the decoder reject it — the corruption model a durable
// store has to survive. Flips in the CRC trailer or the body both count.
func TestCheckpointBitFlips(t *testing.T) {
	frame := sampleCheckpoint().Append(nil)
	for i := range frame {
		for bit := 0; bit < 8; bit++ {
			mut := append([]byte(nil), frame...)
			mut[i] ^= 1 << bit
			var c Checkpoint
			if err := c.Decode(mut); err == nil {
				t.Fatalf("flip byte %d bit %d: decode accepted a corrupted frame", i, bit)
			}
		}
	}
}

// TestCheckpointTruncation verifies every prefix of a valid frame is
// rejected, and that a clean CRC failure is reported as ErrChecksum.
func TestCheckpointTruncation(t *testing.T) {
	frame := sampleCheckpoint().Append(nil)
	for n := 0; n < len(frame); n++ {
		var c Checkpoint
		if err := c.Decode(frame[:n]); err == nil {
			t.Fatalf("decode accepted a %d/%d-byte prefix", n, len(frame))
		}
	}
	// A frame long enough to carry a trailer but with mangled contents
	// must fail the checksum, not mis-parse.
	mut := append([]byte(nil), frame...)
	mut[len(mut)/2] ^= 0x40
	var c Checkpoint
	if err := c.Decode(mut); !errors.Is(err, ErrChecksum) {
		t.Fatalf("corrupt body: err = %v, want ErrChecksum", err)
	}
}

func TestCheckpointMalformed(t *testing.T) {
	// reseal recomputes the CRC trailer so the mutation reaches the field
	// decoders instead of being caught by the checksum.
	reseal := func(mutate func(c *Checkpoint) []byte) []byte {
		c := sampleCheckpoint()
		return mutate(&c)
	}
	engine := reseal(func(c *Checkpoint) []byte {
		frame := c.Append(nil)
		// Rebuild by hand with a bogus engine byte: tag, gen, engine.
		body := []byte{TypeCheckpoint}
		body = AppendUvarint(body, c.Gen)
		body = AppendUvarint(body, 9) // unknown fingerprint
		body = append(body, frame[1+SizeUvarint(c.Gen)+1:len(frame)-crcLen]...)
		return sealRaw(body)
	})
	var c Checkpoint
	if err := c.Decode(engine); !errors.Is(err, ErrMalformed) {
		t.Fatalf("unknown engine: err = %v, want ErrMalformed", err)
	}
	if err := c.Decode(sealRaw([]byte{TypeAssign, 0})); !errors.Is(err, ErrUnknownType) {
		t.Fatalf("wrong tag: err = %v, want ErrUnknownType", err)
	}
	// Machine-blob length pointing past the end of the frame.
	huge := []byte{TypeCheckpoint}
	huge = AppendUvarint(huge, 1)    // gen
	huge = AppendUvarint(huge, 0)    // engine
	huge = AppendUvarint(huge, 0)    // seed
	huge = append(huge, 0)           // flags
	huge = AppendUvarint(huge, 1000) // machine length far beyond the frame
	if err := c.Decode(sealRaw(huge)); !errors.Is(err, ErrMalformed) {
		t.Fatalf("oversized machine blob: err = %v, want ErrMalformed", err)
	}
}

// sealRaw appends a valid CRC-32 trailer to an arbitrary body, for
// building deliberately malformed-but-checksummed test frames.
func sealRaw(body []byte) []byte {
	sum := crc32.ChecksumIEEE(body)
	return append(append([]byte(nil), body...), byte(sum), byte(sum>>8), byte(sum>>16), byte(sum>>24))
}

// FuzzCheckpointDecode fuzzes the checkpoint envelope decoder: no input
// may panic, and any accepted input must re-encode to the identical frame
// (canonical codec), which also pins that truncation, garbage, and bit
// flips can never round-trip.
func FuzzCheckpointDecode(f *testing.F) {
	f.Add(sampleCheckpoint().Append(nil))
	f.Add(Checkpoint{Gen: 3, Engine: EngineNet, Seed: 1, Last: []int64{9, -9}}.Append(nil))
	f.Add(Checkpoint{Engine: EngineShard, Machine: []byte{0x13}}.Append(nil))
	f.Add([]byte{TypeCheckpoint})
	f.Add(bytes.Repeat([]byte{0xff}, 40))
	f.Fuzz(func(t *testing.T, data []byte) {
		var c Checkpoint
		if err := c.Decode(data); err == nil {
			roundTrip(t, data, c.Append(nil))
		}
	})
}
