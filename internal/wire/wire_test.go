package wire

import (
	"bytes"
	"errors"
	"math"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/order"
)

func TestUvarintRoundTrip(t *testing.T) {
	cases := []uint64{0, 1, 127, 128, 129, 1 << 14, 1<<14 - 1, 1 << 21, 1 << 63, math.MaxUint64}
	for _, x := range cases {
		enc := AppendUvarint(nil, x)
		if len(enc) != SizeUvarint(x) {
			t.Fatalf("SizeUvarint(%d) = %d, encoded %d", x, SizeUvarint(x), len(enc))
		}
		got, n, err := Uvarint(enc)
		if err != nil || got != x || n != len(enc) {
			t.Fatalf("Uvarint(%v) = %d, %d, %v; want %d", enc, got, n, err, x)
		}
	}
}

func TestUvarintProperty(t *testing.T) {
	check := func(x uint64, suffix []byte) bool {
		enc := AppendUvarint(nil, x)
		got, n, err := Uvarint(append(enc, suffix...))
		return err == nil && got == x && n == len(enc)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestVarintProperty(t *testing.T) {
	check := func(x int64) bool {
		enc := AppendVarint(nil, x)
		if len(enc) != SizeVarint(x) {
			return false
		}
		got, n, err := Varint(enc)
		return err == nil && got == x && n == len(enc)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestVarintExtremes(t *testing.T) {
	for _, x := range []int64{0, -1, 1, math.MinInt64, math.MaxInt64, math.MinInt64 + 1} {
		enc := AppendVarint(nil, x)
		got, _, err := Varint(enc)
		if err != nil || got != x {
			t.Fatalf("Varint round trip of %d: got %d, %v", x, got, err)
		}
	}
}

func TestUvarintTruncated(t *testing.T) {
	enc := AppendUvarint(nil, math.MaxUint64)
	for i := 0; i < len(enc); i++ {
		if _, _, err := Uvarint(enc[:i]); !errors.Is(err, ErrTruncated) {
			t.Fatalf("prefix %d: err = %v, want ErrTruncated", i, err)
		}
	}
}

func TestUvarintOverflow(t *testing.T) {
	// Eleven continuation bytes: longer than any valid uint64 encoding.
	long := bytes.Repeat([]byte{0x80}, 11)
	if _, _, err := Uvarint(long); !errors.Is(err, ErrOverflow) {
		t.Fatalf("err = %v, want ErrOverflow", err)
	}
	// Ten bytes whose last sets bits above 2^64.
	pad := append(bytes.Repeat([]byte{0x80}, 9), 0x7f)
	if _, _, err := Uvarint(pad); !errors.Is(err, ErrOverflow) {
		t.Fatalf("padded err = %v, want ErrOverflow", err)
	}
}

func TestUvarintNonCanonical(t *testing.T) {
	// {0x80, 0x00} is a two-byte encoding of 0; only {0x00} is valid.
	if _, _, err := Uvarint([]byte{0x80, 0x00}); !errors.Is(err, ErrNonCanonical) {
		t.Fatalf("err = %v, want ErrNonCanonical", err)
	}
	if v, n, err := Uvarint([]byte{0x00}); err != nil || v != 0 || n != 1 {
		t.Fatalf("canonical zero: %d, %d, %v", v, n, err)
	}
}

func TestAssignRoundTrip(t *testing.T) {
	check := func(lo, hi, n, k uint16, seed uint64, epsNum uint16, distinct bool) bool {
		in := Assign{Lo: int(lo), Hi: int(hi), N: int(n), K: int(k), Seed: seed, EpsNum: uint64(epsNum), Distinct: distinct}
		out, err := DecodeAssign(in.Append(nil))
		return err == nil && out.Lo == in.Lo && out.Hi == in.Hi && out.N == in.N &&
			out.K == in.K && out.Seed == in.Seed && out.EpsNum == in.EpsNum &&
			out.Distinct == in.Distinct && out.Ladder == nil
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAssignRejectsBadTolerance(t *testing.T) {
	// wire is dependency-free, so MaxTolNum duplicates order's fixed-point
	// resolution; this pin keeps the two in lockstep.
	if MaxTolNum != 1<<order.TolShift {
		t.Fatalf("MaxTolNum = %d, order.TolShift implies %d", MaxTolNum, uint64(1)<<order.TolShift)
	}
	frame := Assign{Lo: 0, Hi: 4, N: 8, K: 2, Seed: 1, EpsNum: MaxTolNum}.Append(nil)
	if _, err := DecodeAssign(frame); !errors.Is(err, ErrMalformed) {
		t.Fatalf("out-of-range tolerance numerator decoded: %v", err)
	}
	frame = Assign{Lo: 0, Hi: 4, N: 8, K: 2, Seed: 1, EpsNum: MaxTolNum - 1}.Append(nil)
	if _, err := DecodeAssign(frame); err != nil {
		t.Fatalf("maximal valid tolerance numerator rejected: %v", err)
	}
}

func TestAssignLadderRoundTrip(t *testing.T) {
	in := Assign{Lo: 0, Hi: 4, N: 16, K: 3, Seed: 7, EpsNum: 52428, Ladder: []uint64{0, 17476, 34952}}
	frame := in.Append(nil)
	out, err := DecodeAssign(frame)
	if err != nil {
		t.Fatalf("ladder assign rejected: %v", err)
	}
	if !reflect.DeepEqual(out.Ladder, in.Ladder) {
		t.Fatalf("ladder round trip: got %v, want %v", out.Ladder, in.Ladder)
	}
	if re := out.Append(nil); !bytes.Equal(re, frame) {
		t.Fatalf("ladder assign re-encode mismatch:\n in %x\nout %x", frame, re)
	}
}

// TestAssignLadderBackCompat pins the byte-identity promise of the
// flag-gated ladder: an Assign without one encodes exactly as the
// pre-ladder format did, so flat and depth-1 engines pay nothing.
func TestAssignLadderBackCompat(t *testing.T) {
	m := Assign{Lo: 2, Hi: 6, N: 8, K: 2, Seed: 99, EpsNum: 1024, Distinct: true}
	frame := m.Append(nil)
	want := []byte{TypeAssign}
	want = AppendUvarint(want, 2)
	want = AppendUvarint(want, 6)
	want = AppendUvarint(want, 8)
	want = AppendUvarint(want, 2)
	want = AppendUvarint(want, 99)
	want = AppendUvarint(want, 1024)
	want = append(want, 0x01) // flags: distinct only, no ladder bit
	if !bytes.Equal(frame, want) {
		t.Fatalf("ladder-free assign changed encoding:\ngot  %x\nwant %x", frame, want)
	}
}

func TestAssignRejectsBadLadder(t *testing.T) {
	base := Assign{Lo: 0, Hi: 4, N: 8, K: 2, Seed: 1, EpsNum: 1000}
	cases := []struct {
		name   string
		ladder []uint64
	}{
		{"non-monotone", []uint64{500, 300}},
		{"at root tolerance", []uint64{500, 1000}},
		{"above root tolerance", []uint64{1500}},
		{"too deep", make([]uint64, MaxLadder+1)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := base
			m.Ladder = tc.ladder
			if _, err := DecodeAssign(m.Append(nil)); !errors.Is(err, ErrMalformed) {
				t.Fatalf("bad ladder %v decoded: %v", tc.ladder, err)
			}
		})
	}
	// A ladder with no root tolerance has nothing to widen toward.
	m := base
	m.EpsNum = 0
	m.Ladder = []uint64{0}
	if _, err := DecodeAssign(m.Append(nil)); !errors.Is(err, ErrMalformed) {
		t.Fatalf("ladder under exact tolerance decoded: %v", err)
	}
}

func TestTreeStatsRoundTrip(t *testing.T) {
	in := TreeStats{
		Absorbs: []int64{12, 5, 0},
		Levels: []LevelIO{
			{Down: 40, Up: 40, DownBytes: 900, UpBytes: 410},
			{Down: 10, Up: 10, DownBytes: 220, UpBytes: 101},
		},
	}
	frame := in.Append(nil)
	var out TreeStats
	if err := out.Decode(frame); err != nil {
		t.Fatalf("tree stats rejected: %v", err)
	}
	if !reflect.DeepEqual(out.Absorbs, in.Absorbs) || !reflect.DeepEqual(out.Levels, in.Levels) {
		t.Fatalf("tree stats round trip: got %+v, want %+v", out, in)
	}
	// The empty reply of a leaf shard round-trips too.
	var leaf TreeStats
	frame = TreeStats{}.Append(nil)
	if err := leaf.Decode(frame); err != nil {
		t.Fatalf("leaf tree stats rejected: %v", err)
	}
	if len(leaf.Absorbs) != 0 || len(leaf.Levels) != 0 {
		t.Fatalf("leaf tree stats not empty: %+v", leaf)
	}
}

func TestStatsPollBare(t *testing.T) {
	frame := AppendBare(nil, TypeStatsPoll)
	if err := DecodeBare(frame, TypeStatsPoll); err != nil {
		t.Fatalf("stats poll rejected: %v", err)
	}
	if err := DecodeBare(append(frame, 1), TypeStatsPoll); !errors.Is(err, ErrTrailingBytes) {
		t.Fatalf("trailing bytes accepted: %v", err)
	}
}

func TestApproxBoundsRoundTrip(t *testing.T) {
	check := func(lo int64, width uint32) bool {
		hi := lo + int64(width)
		if hi < lo {
			hi = lo
		}
		in := ApproxBounds{Lo: lo, Hi: hi}
		out, err := DecodeApproxBounds(in.Append(nil))
		return err == nil && out == in
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeApproxBounds(ApproxBounds{Lo: 5, Hi: 4}.Append(nil)); !errors.Is(err, ErrMalformed) {
		t.Fatal("inverted approx bounds decoded")
	}
	// The charged size must equal the encoded length.
	for _, m := range []ApproxBounds{{0, 0}, {-1 << 50, 1 << 50}, {7, 1 << 20}} {
		if got, want := SizeApproxBounds(m.Lo, m.Hi), int64(len(m.Append(nil))); got != want {
			t.Fatalf("SizeApproxBounds(%d, %d) = %d, encoded %d", m.Lo, m.Hi, got, want)
		}
	}
}

func TestObserveRoundTrip(t *testing.T) {
	check := func(step uint32, vals []int64) bool {
		in := Observe{Step: int64(step), Vals: vals}
		var out Observe
		if err := out.Decode(in.Append(nil)); err != nil {
			return false
		}
		if out.Step != in.Step || len(out.Vals) != len(vals) {
			return false
		}
		for i := range vals {
			if out.Vals[i] != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestObserveEmpty(t *testing.T) {
	in := Observe{Step: 7}
	var out Observe
	out.Vals = make([]int64, 3) // decode must shrink, not keep stale values
	if err := out.Decode(in.Append(nil)); err != nil {
		t.Fatal(err)
	}
	if out.Step != 7 || len(out.Vals) != 0 {
		t.Fatalf("decoded %+v", out)
	}
}

func TestObserveDeltaRoundTrip(t *testing.T) {
	check := func(step uint32, gaps []uint8, vals []int64) bool {
		n := len(gaps)
		if len(vals) < n {
			n = len(vals)
		}
		in := ObserveDelta{Step: int64(step)}
		id := 0
		for i := 0; i < n; i++ {
			id += int(gaps[i]) + 1
			in.IDs = append(in.IDs, id)
			in.Vals = append(in.Vals, vals[i])
		}
		var out ObserveDelta
		if err := out.Decode(in.Append(nil)); err != nil {
			return false
		}
		if out.Step != in.Step || len(out.IDs) != len(in.IDs) {
			return false
		}
		for i := range in.IDs {
			if out.IDs[i] != in.IDs[i] || out.Vals[i] != in.Vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestObserveDeltaRejectsNonIncreasing(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on non-increasing ids")
		}
	}()
	ObserveDelta{IDs: []int{3, 3}, Vals: []int64{1, 2}}.Append(nil)
}

func TestRoundRoundTrip(t *testing.T) {
	check := func(tag uint8, r uint16, best int64, bound uint16, step uint32) bool {
		in := Round{Tag: tag, Round: int(r), Best: best, Bound: int(bound), Step: int64(step)}
		out, err := DecodeRound(in.Append(nil))
		return err == nil && out == in
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestReplyRoundTrip(t *testing.T) {
	check := func(topViol, outViol bool, ids []uint16, keys []int64) bool {
		n := len(ids)
		if len(keys) < n {
			n = len(keys)
		}
		in := Reply{TopViol: topViol, OutViol: outViol}
		for i := 0; i < n; i++ {
			in.IDs = append(in.IDs, int(ids[i]))
			in.Keys = append(in.Keys, keys[i])
		}
		var out Reply
		if err := out.Decode(in.Append(nil)); err != nil {
			return false
		}
		if out.TopViol != topViol || out.OutViol != outViol || len(out.IDs) != n {
			return false
		}
		for i := 0; i < n; i++ {
			if out.IDs[i] != in.IDs[i] || out.Keys[i] != in.Keys[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

// TestReplyZeroBids covers the empty-filter-set / no-sender case: a reply
// carrying flags but not a single bid.
func TestReplyZeroBids(t *testing.T) {
	in := Reply{TopViol: true}
	out := Reply{IDs: []int{9}, Keys: []int64{9}}
	if err := out.Decode(in.Append(nil)); err != nil {
		t.Fatal(err)
	}
	if !out.TopViol || out.OutViol || len(out.IDs) != 0 || len(out.Keys) != 0 {
		t.Fatalf("decoded %+v", out)
	}
}

func TestReplyExtremeKeys(t *testing.T) {
	in := Reply{IDs: []int{0, 1 << 30}, Keys: []int64{math.MinInt64, math.MaxInt64}}
	var out Reply
	if err := out.Decode(in.Append(nil)); err != nil {
		t.Fatal(err)
	}
	if out.Keys[0] != math.MinInt64 || out.Keys[1] != math.MaxInt64 {
		t.Fatalf("decoded keys %v", out.Keys)
	}
}

func TestWinnerMidpointBidBestPresence(t *testing.T) {
	w := Winner{Target: 17, IsTop: true}
	if got, err := DecodeWinner(w.Append(nil)); err != nil || got != w {
		t.Fatalf("winner: %+v, %v", got, err)
	}
	for _, m := range []Midpoint{{Mid: -5}, {Mid: math.MaxInt64}, {Full: true, Mid: 0}} {
		if got, err := DecodeMidpoint(m.Append(nil)); err != nil || got != m {
			t.Fatalf("midpoint: %+v, %v", got, err)
		}
	}
	b := Bid{ID: 3, Key: math.MinInt64}
	if got, err := DecodeBid(b.Append(nil)); err != nil || got != b {
		t.Fatalf("bid: %+v, %v", got, err)
	}
	be := Best{Round: 11, Key: -1}
	if got, err := DecodeBest(be.Append(nil)); err != nil || got != be {
		t.Fatalf("best: %+v, %v", got, err)
	}
	pr := Presence{ID: 1024}
	if got, err := DecodePresence(pr.Append(nil)); err != nil || got != pr {
		t.Fatalf("presence: %+v, %v", got, err)
	}
	bo := Bounds{Target: 5, Lo: math.MinInt64, Hi: math.MaxInt64}
	if got, err := DecodeBounds(bo.Append(nil)); err != nil || got != bo {
		t.Fatalf("bounds: %+v, %v", got, err)
	}
}

func TestShardDigestRoundTrip(t *testing.T) {
	digests := []ShardDigest{
		{},
		{OK: true, ID: 12, Key: -999, Ups: 7, UpBytes: 31, Bcasts: 5, BcastBytes: 40},
		{OK: true, ID: 1 << 20, Key: math.MaxInt64, Ups: 1 << 40, UpBytes: 1 << 41, Bcasts: 3, BcastBytes: 9},
	}
	for _, d := range digests {
		enc := d.Append(nil)
		got, err := DecodeShardDigest(enc)
		if err != nil || got != d {
			t.Fatalf("shard digest: %+v, %v", got, err)
		}
		if d.Size() != int64(len(enc)) {
			t.Fatalf("ShardDigest.Size() = %d, encoded %d", d.Size(), len(enc))
		}
	}
	if _, err := DecodeShardDigest([]byte{TypeShardDigest, 0x02, 0, 0, 0, 0, 0, 0}); !errors.Is(err, ErrMalformed) {
		t.Fatalf("unknown flags: %v", err)
	}
}

func TestBareMessages(t *testing.T) {
	for _, typ := range []byte{TypeReady, TypeResetBegin, TypeShutdown, TypeQuery} {
		if err := DecodeBare(AppendBare(nil, typ), typ); err != nil {
			t.Fatalf("bare 0x%02x: %v", typ, err)
		}
	}
	if err := DecodeBare([]byte{TypeReady, 0x00}, TypeReady); !errors.Is(err, ErrTrailingBytes) {
		t.Fatalf("trailing: %v", err)
	}
	if err := DecodeBare([]byte{TypeReady}, TypeShutdown); !errors.Is(err, ErrUnknownType) {
		t.Fatalf("wrong type: %v", err)
	}
}

// TestTruncatedFrames chops every valid frame at every length and asserts
// the decoders fail cleanly instead of panicking or succeeding.
func TestTruncatedFrames(t *testing.T) {
	frames := [][]byte{
		Assign{Lo: 2, Hi: 9, N: 16, K: 3, Seed: math.MaxUint64, Distinct: true}.Append(nil),
		Observe{Step: 5, Vals: []int64{1, -200, math.MaxInt64}}.Append(nil),
		ObserveDelta{Step: 5, IDs: []int{0, 7}, Vals: []int64{-1, 1 << 40}}.Append(nil),
		Round{Tag: 2, Round: 3, Best: math.MinInt64, Bound: 100, Step: 9}.Append(nil),
		Reply{TopViol: true, IDs: []int{1, 300}, Keys: []int64{-7, 7}}.Append(nil),
		Winner{Target: 300, IsTop: true}.Append(nil),
		Midpoint{Mid: -123456}.Append(nil),
		Bid{ID: 5, Key: -9}.Append(nil),
		Best{Round: 2, Key: 9}.Append(nil),
		Presence{ID: 99}.Append(nil),
		Bounds{Target: 3, Lo: -10, Hi: 10}.Append(nil),
		ShardDigest{OK: true, ID: 8, Key: -3, Ups: 6, UpBytes: 20, Bcasts: 4, BcastBytes: 12}.Append(nil),
		ApproxBounds{Lo: -4000, Hi: 4400}.Append(nil),
		Batch{Frames: [][]byte{
			Winner{Target: 3, IsTop: true}.Append(nil),
			Round{Tag: 4, Round: 0, Best: -1, Bound: 8, Step: 2}.Append(nil),
		}}.Append(nil),
	}
	for fi, frame := range frames {
		for cut := 0; cut < len(frame); cut++ {
			p := frame[:cut]
			var err error
			switch {
			case cut == 0:
				_, err = MsgType(p)
			default:
				err = decodeAny(p)
			}
			if err == nil {
				t.Fatalf("frame %d truncated at %d decoded successfully", fi, cut)
			}
		}
		// The full frame must decode.
		if err := decodeAny(frame); err != nil {
			t.Fatalf("frame %d: %v", fi, err)
		}
	}
}

// decodeAny dispatches a frame to its typed decoder, mirroring what a
// receive loop does.
func decodeAny(p []byte) error {
	typ, err := MsgType(p)
	if err != nil {
		return err
	}
	switch typ {
	case TypeAssign:
		_, err = DecodeAssign(p)
	case TypeObserve:
		var m Observe
		err = m.Decode(p)
	case TypeObserveDelta:
		var m ObserveDelta
		err = m.Decode(p)
	case TypeRound:
		_, err = DecodeRound(p)
	case TypeReply:
		var m Reply
		err = m.Decode(p)
	case TypeWinner:
		_, err = DecodeWinner(p)
	case TypeMidpoint:
		_, err = DecodeMidpoint(p)
	case TypeBid:
		_, err = DecodeBid(p)
	case TypeBest:
		_, err = DecodeBest(p)
	case TypePresence:
		_, err = DecodePresence(p)
	case TypeBounds:
		_, err = DecodeBounds(p)
	case TypeShardDigest:
		_, err = DecodeShardDigest(p)
	case TypeApproxBounds:
		_, err = DecodeApproxBounds(p)
	case TypeBatch:
		var m Batch
		err = m.Decode(p)
	case TypeReady, TypeResetBegin, TypeShutdown, TypeQuery:
		err = DecodeBare(p, typ)
	default:
		err = ErrUnknownType
	}
	return err
}

// TestSizesMatchEncodings pins every Size helper to the length of the
// encoding it claims to measure.
func TestSizesMatchEncodings(t *testing.T) {
	ids := []int{0, 1, 127, 128, 1 << 20}
	keys := []int64{0, -1, 1, 63, -64, math.MinInt64, math.MaxInt64}
	for _, id := range ids {
		for _, k := range keys {
			if got, want := SizeBid(id, k), int64(len(Bid{ID: id, Key: k}.Append(nil))); got != want {
				t.Fatalf("SizeBid(%d, %d) = %d, want %d", id, k, got, want)
			}
			if got, want := SizeBest(id, k), int64(len(Best{Round: id, Key: k}.Append(nil))); got != want {
				t.Fatalf("SizeBest(%d, %d) = %d, want %d", id, k, got, want)
			}
		}
		if got, want := SizePresence(id), int64(len(Presence{ID: id}.Append(nil))); got != want {
			t.Fatalf("SizePresence(%d) = %d, want %d", id, got, want)
		}
	}
	for _, k := range keys {
		if got, want := SizeMidpoint(k), int64(len(Midpoint{Mid: k}.Append(nil))); got != want {
			t.Fatalf("SizeMidpoint(%d) = %d, want %d", k, got, want)
		}
		if got, want := SizeBounds(7, k, -k), int64(len(Bounds{Target: 7, Lo: k, Hi: -k}.Append(nil))); got != want {
			t.Fatalf("SizeBounds(7, %d, %d) = %d, want %d", k, -k, got, want)
		}
	}
	if got := SizeQuery(); got != int64(len(AppendBare(nil, TypeQuery))) {
		t.Fatalf("SizeQuery() = %d", got)
	}
}

// TestBatchRoundTrip covers the multi-frame envelope: arbitrary message
// mixes survive a round trip with sub-frame boundaries intact, and the
// decoder reuses its Frames capacity.
func TestBatchRoundTrip(t *testing.T) {
	cases := [][][]byte{
		{}, // an empty batch is valid, if useless
		{AppendBare(nil, TypeResetBegin)},
		{
			Winner{Target: 5, IsTop: true}.Append(nil),
			Round{Tag: 4, Round: 0, Best: math.MinInt64, Bound: 1 << 16, Step: 77}.Append(nil),
		},
		{
			Midpoint{Mid: -9}.Append(nil),
			Observe{Step: 3, Vals: []int64{1, 2, 3}}.Append(nil),
			Reply{TopViol: true}.Append(nil),
		},
	}
	var m Batch
	for ci, frames := range cases {
		enc := Batch{Frames: frames}.Append(nil)
		if err := m.Decode(enc); err != nil {
			t.Fatalf("case %d: %v", ci, err)
		}
		if len(m.Frames) != len(frames) {
			t.Fatalf("case %d: %d sub-frames, want %d", ci, len(m.Frames), len(frames))
		}
		for i := range frames {
			if !bytes.Equal(m.Frames[i], frames[i]) {
				t.Fatalf("case %d sub-frame %d: %x vs %x", ci, i, m.Frames[i], frames[i])
			}
			if err := decodeAny(m.Frames[i]); err != nil {
				t.Fatalf("case %d sub-frame %d does not decode: %v", ci, i, err)
			}
		}
	}
}

// TestBatchRejectsMalformed: oversized counts, over-long sub-frames,
// empty sub-frames and nested batches all fail cleanly.
func TestBatchRejectsMalformed(t *testing.T) {
	var m Batch
	huge := append([]byte{TypeBatch}, AppendUvarint(nil, math.MaxUint32)...)
	if err := m.Decode(huge); !errors.Is(err, ErrMalformed) {
		t.Fatalf("huge count: %v, want ErrMalformed", err)
	}
	overlong := append([]byte{TypeBatch, 0x01}, AppendUvarint(nil, 100)...)
	overlong = append(overlong, TypeReady)
	if err := m.Decode(overlong); !errors.Is(err, ErrMalformed) {
		t.Fatalf("over-long sub-frame: %v, want ErrMalformed", err)
	}
	empty := []byte{TypeBatch, 0x01, 0x00}
	if err := m.Decode(empty); !errors.Is(err, ErrMalformed) {
		t.Fatalf("empty sub-frame: %v, want ErrMalformed", err)
	}
	inner := Batch{Frames: [][]byte{AppendBare(nil, TypeReady)}}.Append(nil)
	nested := Batch{}.Append(nil)[:1] // header only
	nested = AppendUvarint(nested, 1)
	nested = AppendUvarint(nested, uint64(len(inner)))
	nested = append(nested, inner...)
	if err := m.Decode(nested); !errors.Is(err, ErrMalformed) {
		t.Fatalf("nested batch: %v, want ErrMalformed", err)
	}
	trailing := append(Batch{Frames: [][]byte{AppendBare(nil, TypeReady)}}.Append(nil), 0x00)
	if err := m.Decode(trailing); !errors.Is(err, ErrTrailingBytes) {
		t.Fatalf("trailing bytes: %v, want ErrTrailingBytes", err)
	}
}

// TestMalformedCounts feeds length fields that exceed the frame. The
// decoders must reject them up front rather than over-allocating.
func TestMalformedCounts(t *testing.T) {
	huge := AppendUvarint(nil, math.MaxUint32)
	obs := append([]byte{TypeObserve, 0x01}, huge...) // step=1, count=2^32-1, no data
	var o Observe
	if err := o.Decode(obs); !errors.Is(err, ErrMalformed) {
		t.Fatalf("observe: %v, want ErrMalformed", err)
	}
	rep := append([]byte{TypeReply, 0x00}, huge...)
	var r Reply
	if err := r.Decode(rep); !errors.Is(err, ErrMalformed) {
		t.Fatalf("reply: %v, want ErrMalformed", err)
	}
	del := append([]byte{TypeObserveDelta, 0x01}, huge...)
	var d ObserveDelta
	if err := d.Decode(del); !errors.Is(err, ErrMalformed) {
		t.Fatalf("delta: %v, want ErrMalformed", err)
	}
}
