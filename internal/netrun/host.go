package netrun

import (
	"errors"
	"fmt"
	"io"

	"repro/internal/coord"
	"repro/internal/order"
	"repro/internal/transport"
	"repro/internal/wire"
)

// host is one peer's node range — a coord.Nodes bank holding exactly the
// paper's per-node state — plus the reusable buffers of its serve loop.
type host struct {
	bank *coord.Nodes

	obs   wire.Observe      // reusable decode scratch
	delta wire.ObserveDelta //
	batch wire.Batch        // reusable decode scratch for batched commands
	reply wire.Reply        // reusable reply being built
	buf   []byte            // reusable encode buffer

	rbuf  []byte   // batched replies, encoded back to back
	rlens []int    // their lengths
	views [][]byte // scratch for assembling the batch reply
}

// newBank validates an assignment and builds its node bank. The RNG
// stream layout must match core.New / runtime.New exactly — every engine
// derives node i's generator as the i-th Split of the same root — which
// coord.NewNodes guarantees by construction.
func newBank(a wire.Assign) (*coord.Nodes, error) {
	if a.N <= 0 || a.K < 1 || a.K > a.N {
		return nil, fmt.Errorf("netrun: bad assignment n=%d k=%d", a.N, a.K)
	}
	if a.Lo < 0 || a.Hi > a.N || a.Lo >= a.Hi {
		return nil, fmt.Errorf("netrun: bad assignment range [%d, %d) of %d", a.Lo, a.Hi, a.N)
	}
	tol, err := order.TolFromNum(a.EpsNum)
	if err != nil {
		return nil, fmt.Errorf("netrun: bad assignment: %w", err)
	}
	return coord.NewNodes(a.N, a.Lo, a.Hi, a.Seed, a.Distinct, tol), nil
}

// newHost builds the node state for an assignment.
func newHost(a wire.Assign) (*host, error) {
	bank, err := newBank(a)
	if err != nil {
		return nil, err
	}
	return &host{bank: bank}, nil
}

// handle processes one decoded command frame, filling h.reply. It returns
// false for TypeShutdown.
func (h *host) handle(frame []byte) (cont bool, err error) {
	typ, err := wire.MsgType(frame)
	if err != nil {
		return false, err
	}
	h.reply.TopViol, h.reply.OutViol = false, false
	h.reply.IDs, h.reply.Keys = h.reply.IDs[:0], h.reply.Keys[:0]
	lo, hi := h.bank.Lo(), h.bank.Hi()

	switch typ {
	case wire.TypeObserve:
		if err := h.obs.Decode(frame); err != nil {
			return false, err
		}
		if len(h.obs.Vals) != hi-lo {
			return false, fmt.Errorf("netrun: observe carries %d values for range [%d, %d)", len(h.obs.Vals), lo, hi)
		}
		for i, v := range h.obs.Vals {
			t, o, err := h.bank.Observe(lo+i, v, h.obs.Step)
			if err != nil {
				// An out-of-domain value from the wire must not panic the
				// host process; the serve loop surfaces the error and the
				// coordinator sees the link die.
				return false, err
			}
			h.reply.TopViol = h.reply.TopViol || t
			h.reply.OutViol = h.reply.OutViol || o
		}

	case wire.TypeObserveDelta:
		if err := h.delta.Decode(frame); err != nil {
			return false, err
		}
		for j, id := range h.delta.IDs {
			if id < lo || id >= hi {
				return false, fmt.Errorf("netrun: delta id %d outside range [%d, %d)", id, lo, hi)
			}
			t, o, err := h.bank.Observe(id, h.delta.Vals[j], h.delta.Step)
			if err != nil {
				return false, err
			}
			h.reply.TopViol = h.reply.TopViol || t
			h.reply.OutViol = h.reply.OutViol || o
		}

	case wire.TypeRound:
		m, err := wire.DecodeRound(frame)
		if err != nil {
			return false, err
		}
		h.bank.Round(m.Tag, m.Round, order.Key(m.Best), m.Bound, m.Step, func(id int, key order.Key) {
			h.reply.IDs = append(h.reply.IDs, id)
			h.reply.Keys = append(h.reply.Keys, int64(key))
		})

	case wire.TypeWinner:
		m, err := wire.DecodeWinner(frame)
		if err != nil {
			return false, err
		}
		if m.Target < lo || m.Target >= hi {
			return false, fmt.Errorf("netrun: winner %d outside range [%d, %d)", m.Target, lo, hi)
		}
		h.bank.Winner(m.Target, m.IsTop)

	case wire.TypeMidpoint:
		m, err := wire.DecodeMidpoint(frame)
		if err != nil {
			return false, err
		}
		h.bank.Midpoint(order.Key(m.Mid), m.Full)

	case wire.TypeApproxBounds:
		m, err := wire.DecodeApproxBounds(frame)
		if err != nil {
			return false, err
		}
		h.bank.ApplyBounds(order.Key(m.Lo), order.Key(m.Hi))

	case wire.TypeResetBegin:
		if err := wire.DecodeBare(frame, wire.TypeResetBegin); err != nil {
			return false, err
		}
		h.bank.ResetBegin()

	case wire.TypeShutdown:
		return false, nil

	default:
		return false, fmt.Errorf("%w: 0x%02x in serve loop", wire.ErrUnknownType, typ)
	}
	return true, nil
}

// respond processes one incoming transport frame — a single command, or a
// wire.Batch of commands from a pipelined coordinator — and stages the
// outgoing frame in h.buf. A batch of n commands is answered by a batch
// of the n corresponding replies, so the link stays in lockstep at the
// frame level and the coordinator can account acks sub-frame by
// sub-frame. It returns false for TypeShutdown (bare or inside a batch).
func (h *host) respond(frame []byte) (cont bool, err error) {
	typ, err := wire.MsgType(frame)
	if err != nil {
		return false, err
	}
	if typ == wire.TypeAssign {
		// Mid-stream reassignment (failover or a joining peer): rebuild the
		// bank from scratch for the new range and ack with Ready. The
		// coordinator quiesces the link first, so an Assign never arrives
		// inside a batch.
		a, err := wire.DecodeAssign(frame)
		if err != nil {
			return false, err
		}
		nb, err := newBank(a)
		if err != nil {
			return false, err
		}
		h.bank = nb
		h.buf = wire.AppendBare(h.buf[:0], wire.TypeReady)
		return true, nil
	}
	if typ != wire.TypeBatch {
		cont, err = h.handle(frame)
		if err != nil || !cont {
			return cont, err
		}
		h.buf = h.reply.Append(h.buf[:0])
		return true, nil
	}
	if err := h.batch.Decode(frame); err != nil {
		return false, err
	}
	h.rbuf, h.rlens = h.rbuf[:0], h.rlens[:0]
	for _, sub := range h.batch.Frames {
		cont, err := h.handle(sub)
		if err != nil {
			return false, err
		}
		if !cont {
			return false, nil // Shutdown inside a batch: no reply owed
		}
		old := len(h.rbuf)
		h.rbuf = h.reply.Append(h.rbuf)
		h.rlens = append(h.rlens, len(h.rbuf)-old)
	}
	h.views = h.views[:0]
	off := 0
	for _, l := range h.rlens {
		h.views = append(h.views, h.rbuf[off:off+l])
		off += l
	}
	h.buf = wire.Batch{Frames: h.views}.Append(h.buf[:0])
	return true, nil
}

// Serve runs the node-host side of the networked engine on one link: it
// waits for the coordinator's Assign, builds the local node range, and
// then answers every command with exactly one Reply — and every batch of
// commands with one batch of Replies — until the coordinator sends
// Shutdown (nil return) or the link dies. The coordinator hanging up
// (transport.ErrClosed) is also a clean exit: the engine closes links
// right after the shutdown frames.
//
// Serve never shares state with other goroutines; a process can host
// several ranges by running one Serve per link.
func Serve(link transport.Link) error {
	frame, err := link.Recv()
	if err != nil {
		// A link torn down before any engine attached (e.g. an unused
		// transport being closed) is a clean non-start, not a failure.
		if errors.Is(err, transport.ErrClosed) || errors.Is(err, io.EOF) {
			return nil
		}
		return fmt.Errorf("netrun: waiting for assignment: %w", err)
	}
	assign, err := wire.DecodeAssign(frame)
	if err != nil {
		return fmt.Errorf("netrun: bad assignment: %w", err)
	}
	h, err := newHost(assign)
	if err != nil {
		return err
	}
	if err := link.Send(wire.AppendBare(h.buf[:0], wire.TypeReady)); err != nil {
		return fmt.Errorf("netrun: acking assignment: %w", err)
	}
	for {
		frame, err := link.Recv()
		if err != nil {
			// A pipe close or a TCP EOF is the coordinator hanging up
			// after (or instead of) the shutdown frame: a clean exit.
			if errors.Is(err, transport.ErrClosed) || errors.Is(err, io.EOF) {
				return nil
			}
			return fmt.Errorf("netrun: serve loop: %w", err)
		}
		cont, err := h.respond(frame)
		if err != nil {
			return err
		}
		if !cont {
			return nil // Shutdown
		}
		if err := link.Send(h.buf); err != nil {
			// The coordinator tearing the link down between our Recv and
			// this reply is a hang-up, not a host failure.
			if errors.Is(err, transport.ErrClosed) || errors.Is(err, io.EOF) {
				return nil
			}
			return fmt.Errorf("netrun: sending reply: %w", err)
		}
	}
}
