package netrun

import (
	"errors"
	"fmt"
	"io"

	"repro/internal/filter"
	"repro/internal/order"
	"repro/internal/protocol"
	"repro/internal/rng"
	"repro/internal/transport"
	"repro/internal/wire"
)

// hnode is the distributed per-node state a peer process hosts: exactly
// the paper's node model — current key, assigned filter, membership
// knowledge from the last broadcast, and a private generator for the
// protocol's Bernoulli trials.
type hnode struct {
	id        int
	rng       *rng.RNG
	key       order.Key
	iv        filter.Interval
	inTop     bool
	wasTop    bool  // membership at the time of the last violation
	violStep  int64 // observation step of the last filter violation
	extracted bool
	sampler   protocol.Sampler
}

func (nd *hnode) participates(tag uint8, step int64) bool {
	switch tag {
	case tagViolMin:
		return nd.violStep == step && nd.wasTop
	case tagViolMax:
		return nd.violStep == step && !nd.wasTop
	case tagHandMin:
		return nd.inTop
	case tagHandMax:
		return !nd.inTop
	case tagReset:
		return !nd.extracted
	default:
		panic(fmt.Sprintf("netrun: unknown protocol tag %d", tag))
	}
}

// host is one peer's node range plus the reusable buffers of its serve
// loop.
type host struct {
	lo, hi   int
	distinct bool
	codec    order.Codec
	nodes    []hnode

	obs   wire.Observe      // reusable decode scratch
	delta wire.ObserveDelta //
	reply wire.Reply        // reusable reply being built
	buf   []byte            // reusable encode buffer
}

// newHost builds the node state for an assignment. The RNG stream layout
// must match core.New / runtime.New exactly — every engine derives node
// i's generator as the i-th Split of the same root — so the host walks
// the full split sequence and keeps its slice of it.
func newHost(a wire.Assign) (*host, error) {
	if a.N <= 0 || a.K < 1 || a.K > a.N {
		return nil, fmt.Errorf("netrun: bad assignment n=%d k=%d", a.N, a.K)
	}
	if a.Lo < 0 || a.Hi > a.N || a.Lo >= a.Hi {
		return nil, fmt.Errorf("netrun: bad assignment range [%d, %d) of %d", a.Lo, a.Hi, a.N)
	}
	h := &host{
		lo:       a.Lo,
		hi:       a.Hi,
		distinct: a.Distinct,
		codec:    order.NewCodec(a.N),
		nodes:    make([]hnode, a.Hi-a.Lo),
	}
	root := rng.New(a.Seed, 0xc02e)
	for i := 0; i < a.N; i++ {
		r := root.Split(uint64(i))
		if i < a.Lo || i >= a.Hi {
			continue
		}
		key := order.Key(0)
		if !a.Distinct {
			key = h.codec.Encode(0, i)
		}
		h.nodes[i-a.Lo] = hnode{
			id:       i,
			rng:      r,
			key:      key,
			iv:       filter.Full(),
			violStep: -1,
		}
	}
	return h, nil
}

// observeNode ingests one observation, runs the node-local filter check,
// and raises the reply's violation flags.
func (h *host) observeNode(nd *hnode, v int64, step int64) {
	if h.distinct {
		nd.key = order.Key(v)
	} else {
		nd.key = h.codec.Encode(v, nd.id)
	}
	if violated, _ := nd.iv.Violates(nd.key); violated {
		nd.violStep = step
		nd.wasTop = nd.inTop
		if nd.inTop {
			h.reply.TopViol = true
		} else {
			h.reply.OutViol = true
		}
	}
}

// handle processes one decoded command frame, filling h.reply. It returns
// false for TypeShutdown.
func (h *host) handle(frame []byte) (cont bool, err error) {
	typ, err := wire.MsgType(frame)
	if err != nil {
		return false, err
	}
	h.reply.TopViol, h.reply.OutViol = false, false
	h.reply.IDs, h.reply.Keys = h.reply.IDs[:0], h.reply.Keys[:0]

	switch typ {
	case wire.TypeObserve:
		if err := h.obs.Decode(frame); err != nil {
			return false, err
		}
		if len(h.obs.Vals) != h.hi-h.lo {
			return false, fmt.Errorf("netrun: observe carries %d values for range [%d, %d)", len(h.obs.Vals), h.lo, h.hi)
		}
		for i := range h.nodes {
			h.observeNode(&h.nodes[i], h.obs.Vals[i], h.obs.Step)
		}

	case wire.TypeObserveDelta:
		if err := h.delta.Decode(frame); err != nil {
			return false, err
		}
		for j, id := range h.delta.IDs {
			if id < h.lo || id >= h.hi {
				return false, fmt.Errorf("netrun: delta id %d outside range [%d, %d)", id, h.lo, h.hi)
			}
			h.observeNode(&h.nodes[id-h.lo], h.delta.Vals[j], h.delta.Step)
		}

	case wire.TypeRound:
		m, err := wire.DecodeRound(frame)
		if err != nil {
			return false, err
		}
		for i := range h.nodes {
			nd := &h.nodes[i]
			if !nd.participates(m.Tag, m.Step) {
				continue
			}
			if m.Round == 0 {
				k := nd.key
				if minimumTag(m.Tag) {
					k = order.Neg(k)
				}
				nd.sampler = protocol.NewSampler(k, m.Bound)
			}
			if nd.sampler.Round(order.Key(m.Best), uint(m.Round), nd.rng) {
				h.reply.IDs = append(h.reply.IDs, nd.id)
				h.reply.Keys = append(h.reply.Keys, int64(nd.key))
			}
		}

	case wire.TypeWinner:
		m, err := wire.DecodeWinner(frame)
		if err != nil {
			return false, err
		}
		if m.Target < h.lo || m.Target >= h.hi {
			return false, fmt.Errorf("netrun: winner %d outside range [%d, %d)", m.Target, h.lo, h.hi)
		}
		nd := &h.nodes[m.Target-h.lo]
		nd.extracted = true
		if m.IsTop {
			nd.inTop = true
		}

	case wire.TypeMidpoint:
		m, err := wire.DecodeMidpoint(frame)
		if err != nil {
			return false, err
		}
		for i := range h.nodes {
			nd := &h.nodes[i]
			switch {
			case m.Full:
				nd.iv = filter.Full()
			case nd.inTop:
				nd.iv = filter.AtLeast(order.Key(m.Mid))
			default:
				nd.iv = filter.AtMost(order.Key(m.Mid))
			}
		}

	case wire.TypeResetBegin:
		if err := wire.DecodeBare(frame, wire.TypeResetBegin); err != nil {
			return false, err
		}
		for i := range h.nodes {
			h.nodes[i].extracted = false
			h.nodes[i].inTop = false
		}

	case wire.TypeShutdown:
		return false, nil

	default:
		return false, fmt.Errorf("%w: 0x%02x in serve loop", wire.ErrUnknownType, typ)
	}
	return true, nil
}

// Serve runs the node-host side of the networked engine on one link: it
// waits for the coordinator's Assign, builds the local node range, and
// then answers every command with exactly one Reply until the coordinator
// sends Shutdown (nil return) or the link dies. The coordinator hanging
// up (transport.ErrClosed) is also a clean exit: the engine closes links
// right after the shutdown frames.
//
// Serve never shares state with other goroutines; a process can host
// several ranges by running one Serve per link.
func Serve(link transport.Link) error {
	frame, err := link.Recv()
	if err != nil {
		// A link torn down before any engine attached (e.g. an unused
		// transport being closed) is a clean non-start, not a failure.
		if errors.Is(err, transport.ErrClosed) || errors.Is(err, io.EOF) {
			return nil
		}
		return fmt.Errorf("netrun: waiting for assignment: %w", err)
	}
	assign, err := wire.DecodeAssign(frame)
	if err != nil {
		return fmt.Errorf("netrun: bad assignment: %w", err)
	}
	h, err := newHost(assign)
	if err != nil {
		return err
	}
	if err := link.Send(wire.AppendBare(h.buf[:0], wire.TypeReady)); err != nil {
		return fmt.Errorf("netrun: acking assignment: %w", err)
	}
	for {
		frame, err := link.Recv()
		if err != nil {
			// A pipe close or a TCP EOF is the coordinator hanging up
			// after (or instead of) the shutdown frame: a clean exit.
			if errors.Is(err, transport.ErrClosed) || errors.Is(err, io.EOF) {
				return nil
			}
			return fmt.Errorf("netrun: serve loop: %w", err)
		}
		cont, err := h.handle(frame)
		if err != nil {
			return err
		}
		if !cont {
			return nil // Shutdown
		}
		h.buf = h.reply.Append(h.buf[:0])
		if err := link.Send(h.buf); err != nil {
			return fmt.Errorf("netrun: sending reply: %w", err)
		}
	}
}
