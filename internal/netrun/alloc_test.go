package netrun

import (
	"testing"

	"repro/internal/stream"
)

// TestNetworkedObserveZeroAllocs extends the hot-path allocation
// regression (internal/core's TestObserveZeroAllocs) across the wire: a
// violation-free networked step over pipe links — engine encode, pooled
// pipe frames, host decode, node bank, reply encode, gather — must not
// allocate at all once every scratch buffer has warmed up, in either
// fan-out mode. This is what keeps a large, mostly-idle deployment free
// of GC pressure.
func TestNetworkedObserveZeroAllocs(t *testing.T) {
	for _, mode := range modes {
		t.Run(mode.name, func(t *testing.T) {
			const n, peers = 256, 4
			e := mustLoopback(t, Config{N: n, K: 4, Seed: 21, Lockstep: mode.lockstep}, peers)
			defer e.Close()

			// Dense steps on a calm walk: mostly violation-free, with the
			// occasional violation and reset to warm those buffers too.
			src := stream.NewRandomWalk(stream.WalkConfig{N: n, Lo: 0, Hi: 1 << 24, MaxStep: 8, Seed: 22})
			vals := make([]int64, n)
			for s := 0; s < 2000; s++ {
				src.Step(vals)
				e.Observe(vals)
			}
			if avg := testing.AllocsPerRun(500, func() {
				src.Step(vals)
				e.Observe(vals)
			}); avg != 0 {
				t.Errorf("dense networked Observe allocates %.2f per step, want 0", avg)
			}

			// The sparse path over a delta-native workload must be clean
			// as well.
			d := mustLoopback(t, Config{N: n, K: 4, Seed: 23, Lockstep: mode.lockstep}, peers)
			defer d.Close()
			dsrc := stream.NewSparseWalk(stream.SparseWalkConfig{
				N: n, Lo: 0, Hi: 1 << 24, MaxStep: 8, Changed: 3, Seed: 24,
			})
			ids := make([]int, n)
			dvals := make([]int64, n)
			for s := 0; s < 2000; s++ {
				c := dsrc.StepDelta(ids, dvals)
				d.ObserveDelta(ids[:c], dvals[:c])
			}
			if avg := testing.AllocsPerRun(500, func() {
				c := dsrc.StepDelta(ids, dvals)
				d.ObserveDelta(ids[:c], dvals[:c])
			}); avg != 0 {
				t.Errorf("sparse networked ObserveDelta allocates %.2f per step, want 0", avg)
			}
		})
	}
}
