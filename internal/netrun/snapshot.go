package netrun

import (
	"errors"
	"fmt"

	"repro/internal/coord"
	"repro/internal/order"
	"repro/internal/transport"
	"repro/internal/wire"
)

// Snapshot and Restore give the networked engine coordinator-process
// checkpointing. The node banks live in the peers and are rebuilt from
// scratch by the Assign handshake at any time, so a checkpoint carries
// only the coordinator's own execution: the machine frame plus the
// last-value mirror. Restore rebuilds the coordinator, replays the mirror
// through the same reassign/replay/reset cycle failover uses, and forces
// a FILTERRESET — the protocols are Las Vegas, so post-restore reports
// match the oracle immediately while the ledgers continue from the
// checkpoint plus the visible recovery cost (exactly as after a peer
// failover).

// Snapshot returns the machine frame and a copy of the node-value mirror,
// taken between steps. It fails on a closed or terminal engine and while
// recovery is pending — a checkpoint never captures a half-recovered
// execution.
func (e *Engine) Snapshot() (mach []byte, last []int64, err error) {
	if e.closed {
		return nil, nil, errors.New("netrun: snapshot after Close")
	}
	if e.err != nil {
		return nil, nil, fmt.Errorf("netrun: snapshot of a terminal engine: %w", e.err)
	}
	if e.pendingRecovery {
		return nil, nil, errors.New("netrun: snapshot with recovery pending")
	}
	machFrame, err := e.mach.Snapshot(nil)
	if err != nil {
		return nil, nil, err
	}
	return machFrame, append([]int64(nil), e.last...), nil
}

// Restore rebuilds a coordinator over links from a Snapshot taken under
// the same configuration. The frame is validated against cfg before any
// link is used; then the fresh engine handshakes as usual, adopts the
// restored machine and mirror, and runs the reassign/replay/reset cycle.
// A peer failing during that cycle leaves recovery pending (or the
// engine cleanly terminal), exactly as a mid-run failure would; the next
// observation call retries through the regular failover path.
func Restore(cfg Config, links []transport.Link, machFrame []byte, last []int64) (*Engine, error) {
	fail := func(err error) (*Engine, error) {
		for _, l := range links {
			l.Close()
		}
		return nil, err
	}
	tol, err := order.NewTol(cfg.Epsilon)
	if err != nil {
		return fail(fmt.Errorf("netrun: restore: %w", err))
	}
	var ms wire.MachineState
	if err := ms.Decode(machFrame); err != nil {
		return fail(fmt.Errorf("netrun: restore machine frame: %v", err))
	}
	if ms.N != cfg.N || ms.K != cfg.K {
		return fail(fmt.Errorf("netrun: checkpoint is for n=%d k=%d, config has n=%d k=%d", ms.N, ms.K, cfg.N, cfg.K))
	}
	if ms.EpsNum != tol.Num() {
		return fail(fmt.Errorf("netrun: checkpoint tolerance %d/2^20 differs from configured %d/2^20", ms.EpsNum, tol.Num()))
	}
	if len(last) != cfg.N {
		return fail(fmt.Errorf("netrun: checkpoint mirror has %d values for n=%d", len(last), cfg.N))
	}
	mach, err := coord.RestoreMachine(machFrame)
	if err != nil {
		return fail(fmt.Errorf("netrun: restore machine: %v", err))
	}
	e, err := New(cfg, links)
	if err != nil {
		return nil, err
	}
	e.mach = mach
	copy(e.last, last)
	e.step = mach.Step()
	if err := e.reassignReplayReset(); err != nil {
		// The failing peer is marked dead and recovery is pending; the
		// next observation call retries (or the engine is already cleanly
		// terminal). Either way the caller holds a usable engine whose
		// Health tells the story.
		return e, nil
	}
	return e, nil
}

// RestoreLoopback is Restore over fresh loopback links, the counterpart
// of NewLoopback for crash-restart tests and local monitors.
func RestoreLoopback(cfg Config, peers int, machFrame []byte, last []int64) (*Engine, error) {
	if peers < 1 || peers > cfg.N {
		return nil, fmt.Errorf("netrun: need 1 <= peers <= N, got %d peers for N=%d", peers, cfg.N)
	}
	return Restore(cfg, LoopbackLinks(peers), machFrame, last)
}
