package netrun

import (
	"strings"
	"testing"
	"time"

	"repro/internal/coord"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/stream"
	"repro/internal/transport"
)

// driven produces observation vectors that force communication every
// step: large, fast-moving values guarantee filter violations, so every
// peer's link carries traffic and a dead link is noticed promptly.
func driven(s int, vals []int64) {
	for i := range vals {
		vals[i] = int64((s*31+i*17)%1000) * 50
	}
}

// TestDeadLinkRecoversByMerge pins the recovery contract without a
// Redial factory: a link that dies mid-run must not panic or wedge the
// engine. The detecting step returns the last-good report and flags
// Health().Degraded; the next observation call merges the dead range
// into a survivor, replays values, forces a reset, and from that step
// on reports track the oracle again.
func TestDeadLinkRecoversByMerge(t *testing.T) {
	for _, mode := range modes {
		t.Run(mode.name, func(t *testing.T) {
			const n, k, seed = 12, 3, 7
			var events []coord.Event
			e, err := NewLoopback(Config{
				N: n, K: k, Seed: seed, Lockstep: mode.lockstep,
				RetryBackoff: time.Millisecond, // keep the backoff sleep out of the test budget
				OnEvent:      func(ev coord.Event) { events = append(events, ev) },
			}, 3)
			if err != nil {
				t.Fatal(err)
			}
			defer e.Close()

			src := stream.NewRandomWalk(stream.WalkConfig{N: n, Lo: 0, Hi: 1 << 16, MaxStep: 400, Seed: 9})
			vals := make([]int64, n)
			var lastGood []int
			for s := 0; s < 20; s++ {
				src.Step(vals)
				lastGood = append(lastGood[:0], e.Observe(vals)...)
			}
			if e.Err() != nil {
				t.Fatalf("healthy run reported error: %v", e.Err())
			}

			// Kill one peer's link underneath the engine, then force
			// communication until the failure is detected.
			e.peers[1].link.Close()
			detected := false
			for s := 0; s < 5 && !detected; s++ {
				driven(s, vals)
				got := e.Observe(vals)
				if h := e.Health(); h.Degraded {
					// The detecting step must hand back the last-good set,
					// never a half-updated one.
					if !equal(got, lastGood) {
						t.Fatalf("detecting step returned %v, want last-good %v", got, lastGood)
					}
					detected = true
				} else {
					lastGood = append(lastGood[:0], got...)
				}
			}
			if !detected {
				t.Fatal("dead link never surfaced as Degraded health")
			}

			// The next observation call recovers and processes its step:
			// reports must match the oracle from here on.
			for s := 5; s < 25; s++ {
				driven(s, vals)
				got := e.Observe(vals)
				if e.Err() != nil {
					t.Fatalf("step %d: recovery went terminal: %v", s, e.Err())
				}
				if want := sim.Oracle(vals, k); !equal(got, want) {
					t.Fatalf("step %d after recovery: got %v, want oracle %v", s, got, want)
				}
			}

			h := e.Health()
			if h.Terminal != nil || h.Degraded {
				t.Fatalf("recovered engine reports unhealthy: %+v", h)
			}
			if h.Failures == 0 || h.Recoveries != 1 {
				t.Fatalf("health counters off: %+v", h)
			}
			if len(h.Peers) != 2 {
				t.Fatalf("merge left %d peers, want 2: %+v", len(h.Peers), h.Peers)
			}
			lo := 0
			for _, p := range h.Peers {
				if p.Lo != lo {
					t.Fatalf("peer ranges not contiguous: %+v", h.Peers)
				}
				lo = p.Hi
			}
			if lo != n {
				t.Fatalf("peer ranges do not cover [0, %d): %+v", n, h.Peers)
			}
			wantKinds := map[coord.EventKind]bool{
				coord.EventPeerDown: false, coord.EventRangeMerged: false, coord.EventRecovered: false,
			}
			for _, ev := range events {
				if _, ok := wantKinds[ev.Kind]; ok {
					wantKinds[ev.Kind] = true
				}
			}
			for kind, seen := range wantKinds {
				if !seen {
					t.Errorf("event %v never delivered (got %v)", kind, events)
				}
			}

			// The sparse path must keep working on the merged membership.
			if d := e.ObserveDelta([]int{0}, []int64{1 << 30}); !equal(d, sim.Oracle(e.last, k)) {
				t.Fatalf("delta after recovery: got %v, want oracle %v", d, sim.Oracle(e.last, k))
			}
		})
	}
}

// TestDeadLinkRecoversByRedial: with a Redial factory the dead peer's
// exact range is handed to a fresh replacement link instead of being
// merged away, and the cohort size is preserved.
func TestDeadLinkRecoversByRedial(t *testing.T) {
	const n, k, seed = 12, 3, 5
	var events []coord.Event
	e, err := NewLoopback(Config{
		N: n, K: k, Seed: seed,
		Redial:       func() (transport.Link, error) { return LoopbackLink(), nil },
		RetryBackoff: time.Millisecond,
		OnEvent:      func(ev coord.Event) { events = append(events, ev) },
	}, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	vals := make([]int64, n)
	for s := 0; s < 10; s++ {
		driven(s, vals)
		e.Observe(vals)
	}
	before := e.Health()
	e.peers[2].link.Close()
	for s := 10; s < 30; s++ {
		driven(s, vals)
		got := e.Observe(vals)
		if e.Err() != nil {
			t.Fatalf("step %d: redial recovery went terminal: %v", s, e.Err())
		}
		if h := e.Health(); !h.Degraded {
			if want := sim.Oracle(vals, k); !equal(got, want) {
				t.Fatalf("step %d: got %v, want oracle %v", s, got, want)
			}
		}
	}
	h := e.Health()
	if h.Recoveries != 1 || len(h.Peers) != len(before.Peers) {
		t.Fatalf("redial recovery health off: %+v (before %+v)", h, before)
	}
	for i, p := range h.Peers {
		if p.Lo != before.Peers[i].Lo || p.Hi != before.Peers[i].Hi {
			t.Fatalf("redial changed ranges: %+v -> %+v", before.Peers, h.Peers)
		}
	}
	replaced := false
	for _, ev := range events {
		if ev.Kind == coord.EventPeerReplaced {
			replaced = true
		}
		if ev.Kind == coord.EventRangeMerged {
			t.Fatalf("redial recovery merged a range: %v", events)
		}
	}
	if !replaced {
		t.Fatalf("no EventPeerReplaced delivered: %v", events)
	}
}

// TestAllPeersLostIsTerminal: with no survivors and no Redial there is
// nothing to recover onto. The engine wedges cleanly: sticky Err, the
// last-good report keeps being returned, the ledger freezes, and Close
// stays safe.
func TestAllPeersLostIsTerminal(t *testing.T) {
	const n, k = 8, 2
	var events []coord.Event
	e, err := NewLoopback(Config{
		N: n, K: k, Seed: 3, RetryBackoff: time.Millisecond,
		OnEvent: func(ev coord.Event) { events = append(events, ev) },
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	vals := make([]int64, n)
	var lastGood []int
	for s := 0; s < 10; s++ {
		driven(s, vals)
		lastGood = append(lastGood[:0], e.Observe(vals)...)
	}
	e.peers[0].link.Close()
	for s := 10; s < 16; s++ {
		driven(s, vals)
		if got := e.Observe(vals); !equal(got, lastGood) {
			t.Fatalf("step %d: wedged engine changed its report: %v vs %v", s, got, lastGood)
		}
	}
	if e.Err() == nil {
		t.Fatal("losing the only peer did not go terminal")
	}
	h := e.Health()
	if h.Terminal == nil {
		t.Fatalf("terminal engine reports healthy: %+v", h)
	}
	counts := e.Counts()
	if got := e.ObserveDelta([]int{0}, []int64{1 << 30}); !equal(got, lastGood) {
		t.Fatalf("delta on wedged engine: got %v, want last-good %v", got, lastGood)
	}
	if after := e.Counts(); after != counts {
		t.Fatalf("wedged engine kept charging: %v -> %v", counts, after)
	}
	terminal := false
	for _, ev := range events {
		if ev.Kind == coord.EventTerminal {
			terminal = true
		}
	}
	if !terminal {
		t.Fatalf("no EventTerminal delivered: %v", events)
	}
	e.Close() // must not panic with the link already dead
}

// TestRetryBudgetExhaustion: a Redial factory that only produces dead
// links burns the whole retry budget and the engine then goes terminal
// with a descriptive error instead of retrying forever.
func TestRetryBudgetExhaustion(t *testing.T) {
	const n, k = 8, 2
	redials := 0
	e, err := NewLoopback(Config{
		N: n, K: k, Seed: 11,
		RetryBudget:  2,
		RetryBackoff: time.Millisecond,
		Redial: func() (transport.Link, error) {
			redials++
			a, b := transport.Pipe()
			b.Close() // born dead: the Assign handshake must fail
			return a, nil
		},
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	vals := make([]int64, n)
	for s := 0; s < 5; s++ {
		driven(s, vals)
		e.Observe(vals)
	}
	e.peers[0].link.Close()
	for s := 5; s < 10 && e.Err() == nil; s++ {
		driven(s, vals)
		e.Observe(vals)
	}
	if e.Err() == nil {
		t.Fatal("exhausted budget did not go terminal")
	}
	if !strings.Contains(e.Err().Error(), "recovery abandoned") {
		t.Fatalf("terminal error %q does not name the abandoned recovery", e.Err())
	}
	if redials < 2 {
		t.Fatalf("budget of 2 produced only %d redial attempts", redials)
	}
}

// TestConstructorRejectsBadConfig pins the panic-free constructor
// contract: invalid shapes surface as errors, and the engine closes the
// links it was handed so serve loops terminate.
func TestConstructorRejectsBadConfig(t *testing.T) {
	cases := []struct {
		name  string
		cfg   Config
		peers int
	}{
		{"zero-n", Config{N: 0, K: 1, Seed: 1}, 1},
		{"zero-k", Config{N: 4, K: 0, Seed: 1}, 1},
		{"k-gt-n", Config{N: 4, K: 5, Seed: 1}, 1},
		{"no-peers", Config{N: 4, K: 2, Seed: 1}, 0},
		{"peers-gt-n", Config{N: 4, K: 2, Seed: 1}, 5},
		{"bad-eps", Config{N: 4, K: 2, Seed: 1, Epsilon: -0.5}, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			links := make([]transport.Link, tc.peers)
			for i := range links {
				a, b := transport.Pipe()
				go Serve(b)
				links[i] = a
			}
			e, err := New(tc.cfg, links)
			if err == nil {
				e.Close()
				t.Fatal("invalid config accepted")
			}
			for i, l := range links {
				if sendErr := l.Send([]byte{0}); sendErr == nil {
					t.Fatalf("link %d left open after rejected New", i)
				}
			}
		})
	}
}

// TestAppendTopIsACopy is the aliasing regression: the slice AppendTop
// returns must be caller-owned — mutating it after later steps must not
// corrupt the engine (unlike the Top / Observe views, which are
// documented as engine-owned and read-only). A pristine sequential twin
// run in lockstep detects any corruption.
func TestAppendTopIsACopy(t *testing.T) {
	const n, k, seed = 10, 3, 5
	e := mustLoopback(t, Config{N: n, K: k, Seed: seed}, 2)
	defer e.Close()
	twin := core.New(core.Config{N: n, K: k, Seed: seed})

	srcA := stream.NewRandomWalk(stream.WalkConfig{N: n, Lo: 0, Hi: 1 << 16, MaxStep: 600, Seed: 6})
	srcB := stream.NewRandomWalk(stream.WalkConfig{N: n, Lo: 0, Hi: 1 << 16, MaxStep: 600, Seed: 6})
	va, vb := make([]int64, n), make([]int64, n)
	var copies [][]int
	for s := 0; s < 60; s++ {
		srcA.Step(va)
		srcB.Step(vb)
		topNet := e.Observe(va)
		topSeq := twin.Observe(vb)
		if !equal(topNet, topSeq) {
			t.Fatalf("step %d: reports diverged: net=%v seq=%v", s, topNet, topSeq)
		}
		copies = append(copies, e.AppendTop(nil))
		// Scribble over every copy taken so far: if any of them aliased
		// engine state, the next steps diverge from the twin.
		for _, c := range copies {
			for i := range c {
				c[i] = -7
			}
		}
	}
	if cs, cn := twin.Counts(), e.Counts(); cs != cn {
		t.Fatalf("counts diverged after mutations: seq=%v net=%v", cs, cn)
	}
}
