package netrun

import (
	"testing"

	"repro/internal/core"
	"repro/internal/stream"
)

// TestDeadLinkSurfacesError pins the failure contract: a link that dies
// mid-run must not panic the engine. The error is stored (Err), the
// last-good report keeps being returned, the ledger freezes, and Close
// stays safe.
func TestDeadLinkSurfacesError(t *testing.T) {
	const n, k, seed = 12, 3, 7
	e := NewLoopback(Config{N: n, K: k, Seed: seed}, 3)
	defer e.Close()

	src := stream.NewRandomWalk(stream.WalkConfig{N: n, Lo: 0, Hi: 1 << 16, MaxStep: 400, Seed: 9})
	vals := make([]int64, n)
	var lastGood []int
	for s := 0; s < 20; s++ {
		src.Step(vals)
		lastGood = e.AppendTop(lastGood[:0])
		lastGood = append(lastGood[:0], e.Observe(vals)...)
	}
	if e.Err() != nil {
		t.Fatalf("healthy run reported error: %v", e.Err())
	}

	// Kill one peer's link underneath the engine, then keep observing
	// values chosen to force communication.
	e.peers[1].link.Close()
	countsBefore := e.Counts()
	for s := 0; s < 5; s++ {
		for i := range vals {
			vals[i] = int64((s*31+i*17)%1000) * 50
		}
		got := e.Observe(vals)
		if !equal(got, lastGood) {
			t.Fatalf("report after dead link: got %v, want last-good %v", got, lastGood)
		}
	}
	if e.Err() == nil {
		t.Fatal("dead link did not surface as an error")
	}
	if d := e.ObserveDelta([]int{0}, []int64{1 << 30}); !equal(d, lastGood) {
		t.Fatalf("delta after dead link: got %v, want last-good %v", d, lastGood)
	}
	// A wedged engine must not keep charging model messages.
	if after := e.Counts(); after != countsBefore {
		t.Fatalf("wedged engine kept charging: %v -> %v", countsBefore, after)
	}
	e.Close() // must not panic with one link already dead
}

// TestAppendTopIsACopy is the aliasing regression: the slice AppendTop
// returns must be caller-owned — mutating it after later steps must not
// corrupt the engine (unlike the Top / Observe views, which are
// documented as engine-owned and read-only). A pristine sequential twin
// run in lockstep detects any corruption.
func TestAppendTopIsACopy(t *testing.T) {
	const n, k, seed = 10, 3, 5
	e := NewLoopback(Config{N: n, K: k, Seed: seed}, 2)
	defer e.Close()
	twin := core.New(core.Config{N: n, K: k, Seed: seed})

	srcA := stream.NewRandomWalk(stream.WalkConfig{N: n, Lo: 0, Hi: 1 << 16, MaxStep: 600, Seed: 6})
	srcB := stream.NewRandomWalk(stream.WalkConfig{N: n, Lo: 0, Hi: 1 << 16, MaxStep: 600, Seed: 6})
	va, vb := make([]int64, n), make([]int64, n)
	var copies [][]int
	for s := 0; s < 60; s++ {
		srcA.Step(va)
		srcB.Step(vb)
		topNet := e.Observe(va)
		topSeq := twin.Observe(vb)
		if !equal(topNet, topSeq) {
			t.Fatalf("step %d: reports diverged: net=%v seq=%v", s, topNet, topSeq)
		}
		copies = append(copies, e.AppendTop(nil))
		// Scribble over every copy taken so far: if any of them aliased
		// engine state, the next steps diverge from the twin.
		for _, c := range copies {
			for i := range c {
				c[i] = -7
			}
		}
	}
	if cs, cn := twin.Counts(), e.Counts(); cs != cn {
		t.Fatalf("counts diverged after mutations: seq=%v net=%v", cs, cn)
	}
}
