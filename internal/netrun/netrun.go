// Package netrun is the networked execution engine: it drives Algorithm 1
// over a transport.Link per peer, where each peer process hosts a
// contiguous range of the monitored nodes and everything the coordinator
// learns arrives in wire-encoded frames. With TCP links the monitor spans
// real processes (cmd/topkmon -serve / -join); with loopback pipes it runs
// in-process and is message-count- and byte-identical to the sequential
// engine, which the equivalence test in this package pins.
//
// # Relation to the other engines
//
// The coordinator's decision logic is the shared sans-I/O state machine of
// internal/coord; this package contributes only the substrate, executing
// the machine's effects as wire messages:
//
//	coord effect              netrun frames
//	(observation step)        wire.Observe / wire.ObserveDelta
//	EffExec (per round)       wire.Round
//	EffResetBegin             wire.ResetBegin
//	EffWinner                 wire.Winner
//	EffMidpoint               wire.Midpoint
//	EffBounds (ε mode)        wire.ApproxBounds
//	(reply to any command)    wire.Reply
//
// Every command is answered by exactly one Reply, so the links stay in
// lockstep and replies are processed in ascending peer (hence node id)
// order — the same deterministic order the other engines use, which is
// what makes the engines' randomness consume identically.
//
// # Accounting
//
// Model messages are charged exactly as in the other engines: one Up per
// sampler bid (wire.SizeBid bytes), one Bcast per protocol round
// (wire.SizeBest) and per midpoint broadcast (wire.SizeMidpoint). The
// engine's frames carry additional scheduling fields (round numbers,
// bounds, batching); their true framed volume is visible separately
// through TransportStats. The paper's Theorem 4.2 bounds the former; a
// deployment pays the latter.
//
// # Failure
//
// A link that dies or misbehaves mid-step does not panic: the engine
// records the error, abandons the step, and keeps returning the last
// successfully computed report. Err exposes the stored error so callers
// can decide — rebalancing ranges away from dead peers is future work
// (see ROADMAP).
package netrun

import (
	"fmt"

	"repro/internal/comm"
	"repro/internal/coord"
	"repro/internal/order"
	"repro/internal/protocol"
	"repro/internal/transport"
	"repro/internal/wire"
)

// Config mirrors core.Config for the networked engine.
type Config struct {
	N, K           int
	Seed           uint64
	DistinctValues bool
	// Epsilon selects the ε-approximate mode, exactly as in core.Config.
	// The tolerance rides to the peers in the Assign handshake (as its
	// exact fixed-point numerator), so their samplers and band installs
	// agree with the coordinator bit for bit.
	Epsilon float64
}

// peer is the coordinator's view of one node-hosting link.
type peer struct {
	link   transport.Link
	lo, hi int
	reply  wire.Reply // reusable decode target
}

// Engine is the networked monitor's coordinator. It satisfies
// sim.Algorithm and sim.DeltaAlgorithm. Like the other engines it is not
// safe for concurrent Observe calls (the model's time steps are globally
// ordered).
type Engine struct {
	cfg   Config
	mach  *coord.Machine
	peers []*peer

	step   int64
	closed bool
	err    error // first transport/protocol failure; sticky

	buf     []byte // reusable encode buffer
	touched []bool // peers hit by the current delta
}

// New performs the Assign/Ready handshake over the given links — peer i
// hosts the i-th contiguous node range — and returns the coordinator.
// It requires 1 <= len(links) <= N so every peer hosts at least one node.
// Callers must Close the engine to release the peers. On a handshake
// error New closes every link before returning: a half-handshaken link
// is in an indeterminate protocol state and cannot be reused.
func New(cfg Config, links []transport.Link) (*Engine, error) {
	if cfg.N <= 0 {
		panic("netrun: need N > 0")
	}
	if cfg.K < 1 || cfg.K > cfg.N {
		panic("netrun: need 1 <= K <= N")
	}
	if len(links) == 0 || len(links) > cfg.N {
		panic(fmt.Sprintf("netrun: need 1 <= peers <= N, got %d peers for N=%d", len(links), cfg.N))
	}
	tol, err := order.NewTol(cfg.Epsilon)
	if err != nil {
		panic("netrun: " + err.Error())
	}
	e := &Engine{
		cfg:     cfg,
		mach:    coord.New(coord.Config{N: cfg.N, K: cfg.K, Tol: tol}),
		touched: make([]bool, len(links)),
	}
	// Contiguous near-even ranges: the first rem peers take one extra
	// node. The range layout does not affect reports or ledgers, only
	// which link carries which frames.
	base, rem := cfg.N/len(links), cfg.N%len(links)
	lo := 0
	for i, link := range links {
		hi := lo + base
		if i < rem {
			hi++
		}
		e.peers = append(e.peers, &peer{link: link, lo: lo, hi: hi})
		lo = hi
	}
	fail := func(err error) (*Engine, error) {
		for _, l := range links {
			l.Close()
		}
		return nil, err
	}
	for _, p := range e.peers {
		e.buf = wire.Assign{
			Lo: p.lo, Hi: p.hi, N: cfg.N, K: cfg.K,
			Seed: cfg.Seed, EpsNum: tol.Num(), Distinct: cfg.DistinctValues,
		}.Append(e.buf[:0])
		if err := p.link.Send(e.buf); err != nil {
			return fail(fmt.Errorf("netrun: assigning [%d, %d): %w", p.lo, p.hi, err))
		}
	}
	for _, p := range e.peers {
		frame, err := p.link.Recv()
		if err != nil {
			return fail(fmt.Errorf("netrun: awaiting ready for [%d, %d): %w", p.lo, p.hi, err))
		}
		if err := wire.DecodeBare(frame, wire.TypeReady); err != nil {
			return fail(fmt.Errorf("netrun: peer [%d, %d) handshake: %w", p.lo, p.hi, err))
		}
	}
	return e, nil
}

// LoopbackLinks builds one pipe pair per peer with a Serve goroutine on
// the far end and returns the coordinator ends. It is the link factory
// behind both NewLoopback and topk.Loopback. A Serve goroutine exits
// cleanly when its link closes; any other serve error is a bug and
// panics.
func LoopbackLinks(peers int) []transport.Link {
	links := make([]transport.Link, peers)
	for i := range links {
		coordEnd, node := transport.Pipe()
		links[i] = coordEnd
		go func() {
			if err := Serve(node); err != nil {
				panic(fmt.Sprintf("netrun: loopback host: %v", err))
			}
		}()
	}
	return links
}

// NewLoopback builds an in-process engine over LoopbackLinks. It is the
// networked engine's default mode (topkmon -engine net) and the
// configuration the equivalence tests run.
func NewLoopback(cfg Config, peers int) *Engine {
	e, err := New(cfg, LoopbackLinks(peers))
	if err != nil {
		panic(fmt.Sprintf("netrun: loopback handshake: %v", err)) // pipes cannot fail benignly
	}
	return e
}

// Close sends every peer a Shutdown frame and closes the links.
// Idempotent.
func (e *Engine) Close() {
	if e.closed {
		return
	}
	e.closed = true
	for _, p := range e.peers {
		// Best effort: a peer that already vanished is being shut down
		// anyway.
		_ = p.link.Send(wire.AppendBare(e.buf[:0], wire.TypeShutdown))
		_ = p.link.Close()
	}
}

// Counts returns the total model message counts charged so far.
func (e *Engine) Counts() comm.Counts { return e.mach.Counts() }

// Ledger exposes the per-phase message and byte breakdown.
func (e *Engine) Ledger() *comm.Ledger { return e.mach.Ledger() }

// Bytes returns the total charged model bytes.
func (e *Engine) Bytes() comm.Bytes { return e.mach.Bytes() }

// Stats returns execution counters (maintained by the shared coordinator
// core, identical across engines for the same seed).
func (e *Engine) Stats() coord.Stats { return e.mach.Stats() }

// Err returns the first transport or protocol failure the engine hit, or
// nil. Once set, the engine is wedged: observation calls return the last
// successfully computed report without touching the links, and the ledger
// stops advancing. Close remains safe.
func (e *Engine) Err() error { return e.err }

// TransportStats sums the per-link transport statistics over all peers:
// the frames and framed bytes that actually crossed the links, control
// plane included.
func (e *Engine) TransportStats() transport.LinkStats {
	var s transport.LinkStats
	for _, p := range e.peers {
		s = s.Add(transport.StatsOf(p.link))
	}
	return s
}

// Peers returns the number of peer links.
func (e *Engine) Peers() int { return len(e.peers) }

// Top returns the current top-k ids ascending, as a read-only view owned
// by the engine: it is invalidated by the next step that changes the top
// set, and mutating it corrupts the engine (see AppendTop).
func (e *Engine) Top() []int { return e.mach.Top() }

// AppendTop appends the current top-k ids (ascending) to dst and returns
// the extended slice. The appended values are copies owned by the caller:
// they stay valid across later steps, and mutating them never affects the
// engine.
func (e *Engine) AppendTop(dst []int) []int { return e.mach.AppendTop(dst) }

// fail records an unrecoverable transport or protocol error; the engine
// returns last-good reports from here on.
func (e *Engine) fail(p *peer, op string, err error) error {
	e.err = fmt.Errorf("netrun: peer [%d, %d): %s: %w", p.lo, p.hi, op, err)
	return e.err
}

// send ships one pre-encoded frame to a peer.
func (e *Engine) send(p *peer, frame []byte, op string) error {
	if err := p.link.Send(frame); err != nil {
		return e.fail(p, op, err)
	}
	return nil
}

// recvReply reads and decodes a peer's mandatory Reply.
func (e *Engine) recvReply(p *peer, op string) error {
	frame, err := p.link.Recv()
	if err != nil {
		return e.fail(p, op, err)
	}
	if err := p.reply.Decode(frame); err != nil {
		return e.fail(p, op, err)
	}
	return nil
}

// broadcast ships the same frame to every peer and collects the replies
// in peer order.
func (e *Engine) broadcast(frame []byte, op string) error {
	for _, p := range e.peers {
		if err := e.send(p, frame, op); err != nil {
			return err
		}
	}
	for _, p := range e.peers {
		if err := e.recvReply(p, op); err != nil {
			return err
		}
	}
	return nil
}

// unicast routes a frame to the peer owning node id and awaits its reply.
func (e *Engine) unicast(id int, frame []byte, op string) error {
	for _, p := range e.peers {
		if id >= p.lo && id < p.hi {
			if err := e.send(p, frame, op); err != nil {
				return err
			}
			return e.recvReply(p, op)
		}
	}
	panic(fmt.Sprintf("netrun: no peer owns node %d", id))
}

// Observe processes one dense time step and returns the reported top-k
// ids ascending (a read-only view). It panics after Close; on a dead link
// it records the error (see Err) and returns the last-good report.
func (e *Engine) Observe(vals []int64) []int {
	if e.closed {
		panic("netrun: Observe after Close")
	}
	if len(vals) != e.cfg.N {
		panic(fmt.Sprintf("netrun: observed %d values for %d nodes", len(vals), e.cfg.N))
	}
	if e.err != nil {
		return e.mach.Top()
	}
	e.step = e.mach.BeginStep()
	for _, p := range e.peers {
		e.buf = wire.Observe{Step: e.step, Vals: vals[p.lo:p.hi]}.Append(e.buf[:0])
		if err := e.send(p, e.buf, "observe"); err != nil {
			return e.mach.Top()
		}
	}
	anyTop, anyOut := false, false
	for _, p := range e.peers {
		if err := e.recvReply(p, "observe"); err != nil {
			return e.mach.Top()
		}
		anyTop = anyTop || p.reply.TopViol
		anyOut = anyOut || p.reply.OutViol
	}
	return e.finishStep(anyTop, anyOut)
}

// ObserveDelta processes one sparse time step: vals[j] is node ids[j]'s
// new value, every other node repeats. ids must be strictly increasing.
// Only peers owning a touched node exchange frames, so a violation-free
// sparse step costs transport traffic proportional to the touched peers.
// Semantics match core.Monitor.ObserveDelta exactly; failure behaves as
// in Observe.
func (e *Engine) ObserveDelta(ids []int, vals []int64) []int {
	if e.closed {
		panic("netrun: ObserveDelta after Close")
	}
	if len(ids) != len(vals) {
		panic(fmt.Sprintf("netrun: delta has %d ids but %d values", len(ids), len(vals)))
	}
	prev := -1
	for _, id := range ids {
		if id <= prev || id >= e.cfg.N {
			panic(fmt.Sprintf("netrun: delta ids must be strictly increasing in [0, %d), got %d after %d", e.cfg.N, id, prev))
		}
		prev = id
	}
	if e.err != nil {
		return e.mach.Top()
	}
	e.step = e.mach.BeginStep()
	// Ship each peer its slice of the (sorted) delta.
	clear(e.touched)
	start := 0
	for pi, p := range e.peers {
		stop := start
		for stop < len(ids) && ids[stop] < p.hi {
			stop++
		}
		if stop > start {
			e.touched[pi] = true
			e.buf = wire.ObserveDelta{Step: e.step, IDs: ids[start:stop], Vals: vals[start:stop]}.Append(e.buf[:0])
			if err := e.send(p, e.buf, "observe-delta"); err != nil {
				return e.mach.Top()
			}
		}
		start = stop
	}
	anyTop, anyOut := false, false
	for pi, p := range e.peers {
		if !e.touched[pi] {
			continue
		}
		if err := e.recvReply(p, "observe-delta"); err != nil {
			return e.mach.Top()
		}
		anyTop = anyTop || p.reply.TopViol
		anyOut = anyOut || p.reply.OutViol
	}
	return e.finishStep(anyTop, anyOut)
}

// finishStep drives the coordinator machine through the rest of the step,
// executing its effects as frames. On a link failure it abandons the step
// (the error is stored) and returns the last-good report.
func (e *Engine) finishStep(anyTopViol, anyOutViol bool) []int {
	eff := e.mach.FinishStep(anyTopViol, anyOutViol)
	for eff.Kind != coord.EffDone {
		var err error
		switch eff.Kind {
		case coord.EffExec:
			var res protocol.Result
			if res, err = e.execProtocol(eff); err == nil {
				eff = e.mach.ExecDone(res.OK, res.ID, res.Key)
			}
		case coord.EffResetBegin:
			if err = e.broadcast(wire.AppendBare(e.buf[:0], wire.TypeResetBegin), "reset-begin"); err == nil {
				eff = e.mach.Ack()
			}
		case coord.EffWinner:
			e.buf = wire.Winner{Target: eff.Target, IsTop: eff.IsTop}.Append(e.buf[:0])
			if err = e.unicast(eff.Target, e.buf, "winner"); err == nil {
				eff = e.mach.Ack()
			}
		case coord.EffMidpoint:
			e.buf = wire.Midpoint{Mid: int64(eff.Mid), Full: eff.Full}.Append(e.buf[:0])
			if err = e.broadcast(e.buf, "midpoint"); err == nil {
				eff = e.mach.Ack()
			}
		case coord.EffBounds:
			e.buf = wire.ApproxBounds{Lo: int64(eff.Lo), Hi: int64(eff.Hi)}.Append(e.buf[:0])
			if err = e.broadcast(e.buf, "bounds"); err == nil {
				eff = e.mach.Ack()
			}
		default:
			panic(fmt.Sprintf("netrun: unknown coordinator effect %d", eff.Kind))
		}
		if err != nil {
			return e.mach.Top()
		}
	}
	return e.mach.Top()
}

// execProtocol runs one Algorithm 2 execution over the effect's cohort,
// charging Up per bid and Bcast per round exactly like the other engines.
func (e *Engine) execProtocol(eff coord.Effect) (protocol.Result, error) {
	ex := protocol.NewExec(eff.Bound, coord.MinimumTag(eff.Tag), e.mach.Recorder(eff.Phase), nil, e.step)
	for ex.More() {
		e.buf = wire.Round{Tag: eff.Tag, Round: ex.Round(), Best: int64(ex.Best()), Bound: eff.Bound, Step: e.step}.Append(e.buf[:0])
		for _, p := range e.peers {
			if err := e.send(p, e.buf, "round"); err != nil {
				return protocol.Result{}, err
			}
		}
		for _, p := range e.peers {
			if err := e.recvReply(p, "round"); err != nil {
				return protocol.Result{}, err
			}
			for j, id := range p.reply.IDs {
				ex.Bid(id, order.Key(p.reply.Keys[j]))
			}
		}
		ex.EndRound()
	}
	return ex.Result(), nil
}
