// Package netrun is the networked execution engine: it drives Algorithm 1
// over a transport.Link per peer, where each peer process hosts a
// contiguous range of the monitored nodes and everything the coordinator
// learns arrives in wire-encoded frames. With TCP links the monitor spans
// real processes (cmd/topkmon -serve / -join); with loopback pipes it runs
// in-process and is message-count- and byte-identical to the sequential
// engine, which the equivalence test in this package pins.
//
// # Relation to the other engines
//
// The coordinator's decision logic is the shared sans-I/O state machine of
// internal/coord; this package contributes only the substrate, executing
// the machine's effects as wire messages:
//
//	coord effect              netrun frames
//	(observation step)        wire.Observe / wire.ObserveDelta
//	EffExec (per round)       wire.Round
//	EffResetBegin             wire.ResetBegin
//	EffWinner                 wire.Winner
//	EffMidpoint               wire.Midpoint
//	EffBounds (ε mode)        wire.ApproxBounds
//	(reply to any command)    wire.Reply
//
// Every command is answered by exactly one Reply, so each link stays in
// lockstep and replies are processed in ascending peer (hence node id)
// order — the same deterministic order the other engines use, which is
// what makes the engines' randomness consume identically.
//
// # Pipelined fan-out
//
// By default the engine pipelines its I/O (Config.Lockstep disables it,
// restoring the strictly sequential per-peer request/reply cycle):
//
//   - Exchanges fan out first and gather afterwards: the engine sends one
//     frame to every involved peer, then one reader goroutine per link
//     collects the replies concurrently while the engine processes them
//     in ascending peer order. Wall-clock per exchange follows the
//     slowest peer, not the peer count.
//   - Ack-only commands are deferred and coalesced: ResetBegin, Winner,
//     Midpoint and ApproxBounds need no data back, so instead of paying a
//     round trip each they are queued per peer and ride in one
//     wire.Batch envelope with the next data-bearing frame to that peer
//     (the next protocol Round), with any remainder drained in one final
//     batched exchange at the end of the step. Hosts answer an n-frame
//     batch with an n-frame batch of replies, so links remain in
//     lockstep at the frame level.
//
// Determinism is unchanged: per link, commands and replies keep their
// exact order (a batch is processed sub-frame by sub-frame in order);
// across links the only join points are the gathers, which the engine
// processes in ascending peer order. Every node therefore sees the same
// command sequence, and the coordinator feeds the machine the same event
// sequence, as in lockstep mode — reports, counts, bytes and randomness
// consumption are bit-identical, which the equivalence tests pin.
//
// # Accounting
//
// Model messages are charged exactly as in the other engines: one Up per
// sampler bid (wire.SizeBid bytes), one Bcast per protocol round
// (wire.SizeBest) and per midpoint broadcast (wire.SizeMidpoint). The
// engine's frames carry additional scheduling fields (round numbers,
// bounds, batching); their true framed volume is visible separately
// through TransportStats. The paper's Theorem 4.2 bounds the former; a
// deployment pays the latter.
//
// # Failure and recovery
//
// Peers are fail-stop: a link that dies or misbehaves mid-step makes the
// engine abandon the step (returning the last-good report) and schedule
// recovery, which runs at the start of the next observation call. Recovery
// (1) redials a replacement for each dead peer when Config.Redial is set,
// or merges the dead range into a surviving neighbor otherwise, (2)
// re-runs the Assign handshake on every peer — hosts rebuild their node
// banks from scratch — (3) replays the coordinator-side mirror of the
// current node values, and (4) forces a FILTERRESET, after which reports
// match the oracle again. Failures and recoveries are surfaced through
// Health and the Config.OnEvent callback; Err reports only terminal
// degradation (retry budget exhausted, or no peers left). Late joiners
// attach mid-stream through Join, which splits the widest range using the
// same machinery.
//
// Rebuilt banks draw fresh RNG streams from the configured seed. The
// protocols are Las Vegas — randomness affects message counts, never
// reported sets — so post-recovery reports still match the oracle exactly,
// while ledgers may diverge from an undisturbed run (recovery cost is
// visible in the counters by design).
package netrun

import (
	"errors"
	"fmt"
	"runtime"
	"time"

	"repro/internal/comm"
	"repro/internal/coord"
	"repro/internal/order"
	"repro/internal/protocol"
	"repro/internal/rng"
	"repro/internal/transport"
	"repro/internal/wire"
)

// forceReaders makes pipelined engines spawn reader goroutines even
// without runtime parallelism; tests set it to exercise the concurrent
// gather deterministically on any machine.
var forceReaders = false

// useReaders reports whether the pipelined gather should run one reader
// goroutine per link. With a single processor the readers cannot overlap
// anything and their channel hops are pure context-switch overhead, so
// the engine then drains the (already fanned-out) replies directly in
// peer order instead — the frames are in flight either way, and the
// command coalescing is unaffected.
func useReaders() bool {
	return forceReaders || runtime.GOMAXPROCS(0) > 1
}

// Config mirrors core.Config for the networked engine.
type Config struct {
	N, K           int
	Seed           uint64
	DistinctValues bool
	// Epsilon selects the ε-approximate mode, exactly as in core.Config.
	// The tolerance rides to the peers in the Assign handshake (as its
	// exact fixed-point numerator), so their samplers and band installs
	// agree with the coordinator bit for bit.
	Epsilon float64
	// Lockstep disables the pipelined fan-out: every command is sent,
	// flushed and answered peer by peer, sequentially. The default (false)
	// is the pipelined engine; both modes are bit-identical in reports and
	// ledgers and differ only in wall-clock latency and transport framing.
	Lockstep bool

	// Redial, when set, is called during failover to obtain a replacement
	// link for a dead peer; the replacement adopts the dead peer's exact
	// node range. When nil (or when a redial fails), the range is merged
	// into a surviving neighbor instead.
	Redial func() (transport.Link, error)
	// RetryBudget bounds how many full recovery attempts the engine makes
	// before declaring itself terminally degraded. Zero selects the
	// default of 3.
	RetryBudget int
	// RetryBackoff is the base delay between recovery attempts; waits are
	// jittered around it and double per attempt. Zero selects 10ms.
	RetryBackoff time.Duration
	// OnEvent, when set, receives failover events (peer death, range
	// reassignment, recovery, terminal degradation) synchronously from the
	// engine's own goroutine. The callback must not call back into the
	// engine.
	OnEvent func(coord.Event)
}

// retryBudget returns the configured recovery-attempt bound.
func (c Config) retryBudget() int {
	if c.RetryBudget > 0 {
		return c.RetryBudget
	}
	return 3
}

// retryBackoff returns the configured base recovery backoff.
func (c Config) retryBackoff() time.Duration {
	if c.RetryBackoff > 0 {
		return c.RetryBackoff
	}
	return 10 * time.Millisecond
}

// recvResult is one reader goroutine's answer to a gather request.
type recvResult struct {
	frame []byte
	err   error
}

// peer is the coordinator's view of one node-hosting link.
type peer struct {
	link   transport.Link
	lo, hi int
	reply  wire.Reply // reusable decode target
	batch  wire.Batch // reusable decode target for batched replies

	// Pipelined gather: the reader goroutine performs one Recv per req
	// token and delivers the result (the frame aliases the link's receive
	// buffer, stable until the reader's next Recv — which cannot happen
	// before the engine requests it).
	req chan struct{}
	res chan recvResult

	// Deferred ack-only commands, encoded back to back in pendBuf with
	// their lengths in pendLens; they ride in a wire.Batch ahead of the
	// next data-bearing frame to this peer.
	pendBuf  []byte
	pendLens []int
	views    [][]byte // scratch for assembling batch sub-frame views

	// Failover bookkeeping. owed counts outstanding replies on the link
	// (the strict request/reply discipline keeps it 0 or 1 at any failure
	// point), so recovery knows whether a survivor's next frame is a stale
	// reply to drain before the reassignment handshake.
	owed     int
	dead     bool
	failures int64
}

// pending returns the number of queued ack-only commands.
func (p *peer) pending() int { return len(p.pendLens) }

// queue defers one encoded command until the next frame to this peer.
func (p *peer) queue(enc func([]byte) []byte) {
	old := len(p.pendBuf)
	p.pendBuf = enc(p.pendBuf)
	p.pendLens = append(p.pendLens, len(p.pendBuf)-old)
}

// Engine is the networked monitor's coordinator. It satisfies
// sim.Algorithm and sim.DeltaAlgorithm. Like the other engines it is not
// safe for concurrent Observe calls (the model's time steps are globally
// ordered).
type Engine struct {
	cfg   Config
	mach  *coord.Machine
	peers []*peer

	step    int64
	closed  bool
	readers bool  // pipelined gather runs reader goroutines
	err     error // terminal failure (recovery abandoned); sticky

	// Failover state: last mirrors every node's most recent value (what
	// recovery replays into rebuilt banks), pendingRecovery schedules a
	// recovery pass for the next observation call, and the counters feed
	// Health.
	last            []int64
	pendingRecovery bool
	failures        int64
	recoveries      int64
	rrng            *rng.RNG // jitters the recovery backoff schedule

	buf     []byte // reusable encode buffer
	bbuf    []byte // reusable batch-envelope encode buffer
	acks    []int  // per-peer deferred-command count of the current gather
	touched []bool // peers hit by the current delta
}

// New performs the Assign/Ready handshake over the given links — peer i
// hosts the i-th contiguous node range — and returns the coordinator.
// It requires 1 <= len(links) <= N so every peer hosts at least one node.
// Callers must Close the engine to release the peers. On a bad
// configuration or a handshake error New closes every link before
// returning: a half-handshaken link is in an indeterminate protocol state
// and cannot be reused.
func New(cfg Config, links []transport.Link) (*Engine, error) {
	fail := func(err error) (*Engine, error) {
		for _, l := range links {
			l.Close()
		}
		return nil, err
	}
	if cfg.N <= 0 {
		return fail(errors.New("netrun: need N > 0"))
	}
	if cfg.K < 1 || cfg.K > cfg.N {
		return fail(fmt.Errorf("netrun: need 1 <= K <= N, got K=%d N=%d", cfg.K, cfg.N))
	}
	if len(links) == 0 || len(links) > cfg.N {
		return fail(fmt.Errorf("netrun: need 1 <= peers <= N, got %d peers for N=%d", len(links), cfg.N))
	}
	tol, err := order.NewTol(cfg.Epsilon)
	if err != nil {
		return fail(fmt.Errorf("netrun: %w", err))
	}
	e := &Engine{
		cfg:     cfg,
		mach:    coord.New(coord.Config{N: cfg.N, K: cfg.K, Tol: tol}),
		last:    make([]int64, cfg.N),
		rrng:    rng.New(cfg.Seed, 0xbacc),
		acks:    make([]int, len(links)),
		touched: make([]bool, len(links)),
	}
	// Contiguous near-even ranges: the first rem peers take one extra
	// node. The range layout does not affect reports or ledgers, only
	// which link carries which frames.
	base, rem := cfg.N/len(links), cfg.N%len(links)
	lo := 0
	for i, link := range links {
		hi := lo + base
		if i < rem {
			hi++
		}
		e.peers = append(e.peers, &peer{link: link, lo: lo, hi: hi})
		lo = hi
	}
	for _, p := range e.peers {
		e.buf = wire.Assign{
			Lo: p.lo, Hi: p.hi, N: cfg.N, K: cfg.K,
			Seed: cfg.Seed, EpsNum: tol.Num(), Distinct: cfg.DistinctValues,
		}.Append(e.buf[:0])
		if err := p.link.Send(e.buf); err != nil {
			return fail(fmt.Errorf("netrun: assigning [%d, %d): %w", p.lo, p.hi, err))
		}
		if err := transport.Flush(p.link); err != nil {
			return fail(fmt.Errorf("netrun: assigning [%d, %d): %w", p.lo, p.hi, err))
		}
	}
	for _, p := range e.peers {
		frame, err := p.link.Recv()
		if err != nil {
			return fail(fmt.Errorf("netrun: awaiting ready for [%d, %d): %w", p.lo, p.hi, err))
		}
		if err := wire.DecodeBare(frame, wire.TypeReady); err != nil {
			return fail(fmt.Errorf("netrun: peer [%d, %d) handshake: %w", p.lo, p.hi, err))
		}
	}
	if !cfg.Lockstep {
		e.startReaders()
	}
	return e, nil
}

// startReaders spawns one gather goroutine per link (skipped without
// runtime parallelism; see useReaders). Each performs exactly one Recv
// per request token, so the frame it delivered stays untouched until the
// engine asks for the next one; a reader exits when its request channel
// closes (engine Close, or the peer's replacement during failover).
func (e *Engine) startReaders() {
	e.readers = useReaders()
	if !e.readers {
		return
	}
	for _, p := range e.peers {
		e.startReader(p)
	}
}

// startReader attaches a fresh reader goroutine to one peer. The result
// channel's capacity of one plus the owed <= 1 reply discipline guarantee
// the goroutine's final send never blocks, so closing the request channel
// always releases it.
func (e *Engine) startReader(p *peer) {
	p.req = make(chan struct{}, 1)
	p.res = make(chan recvResult, 1)
	go func(p *peer) {
		for range p.req {
			frame, err := p.link.Recv()
			//lint:topk ctxsend non-blocking: res has capacity 1 and the owed<=1 reply discipline guarantees a free slot; close(req) releases the loop
			p.res <- recvResult{frame: frame, err: err}
		}
	}(p)
}

// LoopbackLinks builds one pipe pair per peer with a Serve goroutine on
// the far end and returns the coordinator ends. It is the link factory
// behind both NewLoopback and topk.Loopback. A Serve goroutine exits
// cleanly when its link closes; on a host error it closes its link, which
// the coordinator observes as a dead peer and handles through the regular
// failover path — a hostile or buggy frame can no longer panic the
// process.
func LoopbackLinks(peers int) []transport.Link {
	links := make([]transport.Link, peers)
	for i := range links {
		links[i] = LoopbackLink()
	}
	return links
}

// LoopbackLink builds a single in-process host behind a pipe and returns
// the coordinator end: the loopback analogue of one remote peer dialing
// in, usable as a Config.Redial factory or a Join argument.
func LoopbackLink() transport.Link {
	coordEnd, node := transport.Pipe()
	go func() {
		if err := Serve(node); err != nil {
			node.Close()
		}
	}()
	return coordEnd
}

// NewLoopback builds an in-process engine over LoopbackLinks. It is the
// networked engine's default mode (topkmon -engine net) and the
// configuration the equivalence tests run.
func NewLoopback(cfg Config, peers int) (*Engine, error) {
	return New(cfg, LoopbackLinks(peers))
}

// Close sends every peer a Shutdown frame, closes the links and stops the
// reader goroutines. Queued ack-only commands are dropped — the hosts are
// going away with the coordinator. Idempotent.
func (e *Engine) Close() {
	if e.closed {
		return
	}
	e.closed = true
	for _, p := range e.peers {
		// Best effort: a peer that already vanished is being shut down
		// anyway.
		//lint:topk chargedsend Shutdown is a teardown control frame outside the model; the ledgers are final once Close begins
		_ = p.link.Send(wire.AppendBare(e.buf[:0], wire.TypeShutdown))
		_ = transport.Flush(p.link)
		_ = p.link.Close()
		if p.req != nil {
			close(p.req)
		}
	}
}

// Counts returns the total model message counts charged so far.
func (e *Engine) Counts() comm.Counts { return e.mach.Counts() }

// Ledger exposes the per-phase message and byte breakdown.
func (e *Engine) Ledger() *comm.Ledger { return e.mach.Ledger() }

// Bytes returns the total charged model bytes.
func (e *Engine) Bytes() comm.Bytes { return e.mach.Bytes() }

// Stats returns execution counters (maintained by the shared coordinator
// core, identical across engines for the same seed).
func (e *Engine) Stats() coord.Stats { return e.mach.Stats() }

// Err returns the engine's terminal failure, or nil. Recoverable peer
// failures do not set it (see Health); it becomes non-nil only once
// recovery is abandoned — retry budget exhausted or no peers left. Once
// set, the engine is wedged: observation calls return the last
// successfully computed report without touching the links, and the ledger
// stops advancing. Close remains safe.
func (e *Engine) Err() error { return e.err }

// Health reports the engine's failover state: terminal error (if any),
// whether a recovery is pending, cumulative failure/recovery counters and
// the live peer ranges.
func (e *Engine) Health() coord.Health {
	h := coord.Health{
		Terminal:   e.err,
		Degraded:   e.pendingRecovery,
		Failures:   e.failures,
		Recoveries: e.recoveries,
	}
	for _, p := range e.peers {
		h.Peers = append(h.Peers, coord.PeerHealth{Lo: p.lo, Hi: p.hi, Failures: p.failures})
	}
	return h
}

// TransportStats sums the per-link transport statistics over all peers:
// the frames and framed bytes that actually crossed the links, control
// plane included.
func (e *Engine) TransportStats() transport.LinkStats {
	var s transport.LinkStats
	for _, p := range e.peers {
		s = s.Add(transport.StatsOf(p.link))
	}
	return s
}

// Peers returns the number of peer links.
func (e *Engine) Peers() int { return len(e.peers) }

// Pipelined reports whether the engine runs the pipelined fan-out.
func (e *Engine) Pipelined() bool { return !e.cfg.Lockstep }

// Top returns the current top-k ids ascending, as a read-only view owned
// by the engine: it is invalidated by the next step that changes the top
// set, and mutating it corrupts the engine (see AppendTop).
func (e *Engine) Top() []int { return e.mach.Top() }

// AppendTop appends the current top-k ids (ascending) to dst and returns
// the extended slice. The appended values are copies owned by the caller:
// they stay valid across later steps, and mutating them never affects the
// engine.
func (e *Engine) AppendTop(dst []int) []int { return e.mach.AppendTop(dst) }

// emit delivers one failover event to the configured callback.
func (e *Engine) emit(ev coord.Event) {
	if e.cfg.OnEvent != nil {
		e.cfg.OnEvent(ev)
	}
}

// fail records a peer failure and schedules recovery: the peer is marked
// dead, the current step is abandoned (callers unwind returning the
// last-good report), and the next observation call runs the recovery
// pass. The engine stays usable — only abandoned recovery sets Err.
func (e *Engine) fail(p *peer, op string, err error) error {
	p.dead = true
	p.failures++
	e.failures++
	e.pendingRecovery = true
	e.emit(coord.Event{Kind: coord.EventPeerDown, Lo: p.lo, Hi: p.hi, Err: err})
	return fmt.Errorf("netrun: peer [%d, %d): %s: %w", p.lo, p.hi, op, err)
}

// terminal records an unrecoverable failure; the engine returns last-good
// reports from here on.
func (e *Engine) terminal(err error) {
	e.err = err
	e.emit(coord.Event{Kind: coord.EventTerminal, Lo: 0, Hi: e.cfg.N, Err: err})
}

// send ships one pre-encoded frame to a peer and flushes it (the
// lockstep data path, also used for the handshake). Every frame sent this
// way is a command owed exactly one reply.
func (e *Engine) send(p *peer, frame []byte, op string) error {
	//lint:topk chargedsend pure transmit wrapper: every caller ships a frame the coord machine charged when it emitted the effect
	if err := p.link.Send(frame); err != nil {
		return e.fail(p, op, err)
	}
	if err := transport.Flush(p.link); err != nil {
		return e.fail(p, op, err)
	}
	p.owed = 1
	return nil
}

// recvReply reads and decodes a peer's mandatory Reply (lockstep path).
func (e *Engine) recvReply(p *peer, op string) error {
	frame, err := p.link.Recv()
	if err != nil {
		return e.fail(p, op, err)
	}
	p.owed = 0
	if err := p.reply.Decode(frame); err != nil {
		return e.fail(p, op, err)
	}
	return nil
}

// sendCmd ships one data-bearing command to a peer on the pipelined path.
// Queued ack-only commands ride ahead of it in a wire.Batch envelope; the
// whole assembly is flushed as one transport frame. It records how many
// ack replies the next gather from this peer owes in e.acks.
func (e *Engine) sendCmd(pi int, frame []byte, op string) error {
	p := e.peers[pi]
	e.acks[pi] = p.pending()
	out := frame
	if p.pending() > 0 {
		p.views = p.views[:0]
		off := 0
		for _, l := range p.pendLens {
			p.views = append(p.views, p.pendBuf[off:off+l])
			off += l
		}
		p.views = append(p.views, frame)
		e.bbuf = wire.Batch{Frames: p.views}.Append(e.bbuf[:0])
		out = e.bbuf
		p.pendBuf, p.pendLens = p.pendBuf[:0], p.pendLens[:0]
	}
	//lint:topk chargedsend pure transmit wrapper: the data frame and the queued acks riding ahead of it were all charged by the machine effects that produced them
	if err := p.link.Send(out); err != nil {
		return e.fail(p, op, err)
	}
	if err := transport.Flush(p.link); err != nil {
		return e.fail(p, op, err)
	}
	p.owed = 1
	if p.req != nil {
		p.req <- struct{}{} // reader: start collecting the reply
	}
	return nil
}

// recvFrame collects one in-flight reply frame from a peer: from its
// reader goroutine when one is running, directly off the link otherwise
// (the fan-out already happened, so the frame is en route either way).
func (e *Engine) recvFrame(p *peer, op string) ([]byte, error) {
	if p.res != nil {
		r := <-p.res
		p.owed = 0
		if r.err != nil {
			return nil, e.fail(p, op, r.err)
		}
		return r.frame, nil
	}
	frame, err := p.link.Recv()
	p.owed = 0
	if err != nil {
		return nil, e.fail(p, op, err)
	}
	return frame, nil
}

// gather consumes one reply from a peer sendCmd fanned out to: the acks
// the batch owes first (empty Replies, decoded only to validate lockstep
// framing), then the data-bearing Reply into p.reply. Gathers must be
// consumed in ascending peer order.
func (e *Engine) gather(pi int, op string) error {
	p := e.peers[pi]
	frame, err := e.recvFrame(p, op)
	if err != nil {
		return err
	}
	if want := e.acks[pi]; want > 0 {
		if err := p.batch.Decode(frame); err != nil {
			return e.fail(p, op, err)
		}
		if got := len(p.batch.Frames); got != want+1 {
			return e.fail(p, op, fmt.Errorf("batched reply carries %d frames, want %d", got, want+1))
		}
		for _, ack := range p.batch.Frames[:want] {
			if err := p.reply.Decode(ack); err != nil {
				return e.fail(p, op, err)
			}
		}
		frame = p.batch.Frames[want]
	}
	if err := p.reply.Decode(frame); err != nil {
		return e.fail(p, op, err)
	}
	return nil
}

// broadcast ships the same frame to every peer strictly one peer at a
// time — send, await the reply, move on (lockstep only; the pipelined
// path fans out first, gathers concurrently, and defers its ack-only
// broadcasts into the next data-bearing exchange). This is the paper's
// literal command/ack cycle and the latency baseline the pipelined mode
// is measured against: per exchange it pays the peers' round trips in
// sum rather than in max.
func (e *Engine) broadcast(frame []byte, op string) error {
	for _, p := range e.peers {
		if err := e.send(p, frame, op); err != nil {
			return err
		}
		if err := e.recvReply(p, op); err != nil {
			return err
		}
	}
	return nil
}

// unicast routes a frame to the peer owning node id and awaits its reply
// (lockstep only; the pipelined path defers ack-only unicasts instead).
func (e *Engine) unicast(id int, frame []byte, op string) error {
	for _, p := range e.peers {
		if id >= p.lo && id < p.hi {
			if err := e.send(p, frame, op); err != nil {
				return err
			}
			return e.recvReply(p, op)
		}
	}
	panic(fmt.Sprintf("netrun: no peer owns node %d", id))
}

// owner returns the index of the peer hosting node id.
func (e *Engine) owner(id int) int {
	for pi, p := range e.peers {
		if id >= p.lo && id < p.hi {
			return pi
		}
	}
	panic(fmt.Sprintf("netrun: no peer owns node %d", id))
}

// queueAll defers one encoded broadcast command on every peer.
func (e *Engine) queueAll(enc func([]byte) []byte) {
	for _, p := range e.peers {
		p.queue(enc)
	}
}

// drainPending flushes every peer's queued ack-only commands as one final
// exchange: a single command goes out as a plain frame, several as one
// wire.Batch, and the matching (batched) acks are gathered concurrently.
// Called at the end of a pipelined step so that host state, reply framing
// and ledgers are step-aligned with lockstep mode.
func (e *Engine) drainPending() error {
	any := false
	for pi, p := range e.peers {
		e.acks[pi] = p.pending()
		if p.pending() == 0 {
			continue
		}
		any = true
		out := p.pendBuf
		if p.pending() > 1 {
			p.views = p.views[:0]
			off := 0
			for _, l := range p.pendLens {
				p.views = append(p.views, p.pendBuf[off:off+l])
				off += l
			}
			e.bbuf = wire.Batch{Frames: p.views}.Append(e.bbuf[:0])
			out = e.bbuf
		}
		p.pendBuf, p.pendLens = p.pendBuf[:0], p.pendLens[:0]
		//lint:topk chargedsend drains queued ack-only command frames; the machine charged each model message when the effect was emitted
		if err := p.link.Send(out); err != nil {
			return e.fail(p, "drain", err)
		}
		if err := transport.Flush(p.link); err != nil {
			return e.fail(p, "drain", err)
		}
		p.owed = 1
		if p.req != nil {
			p.req <- struct{}{}
		}
	}
	if !any {
		return nil
	}
	for pi, p := range e.peers {
		want := e.acks[pi]
		if want == 0 {
			continue
		}
		frame, err := e.recvFrame(p, "drain")
		if err != nil {
			return err
		}
		if want == 1 {
			if err := p.reply.Decode(frame); err != nil {
				return e.fail(p, "drain", err)
			}
			continue
		}
		if err := p.batch.Decode(frame); err != nil {
			return e.fail(p, "drain", err)
		}
		if got := len(p.batch.Frames); got != want {
			return e.fail(p, "drain", fmt.Errorf("batched ack carries %d frames, want %d", got, want))
		}
		for _, ack := range p.batch.Frames {
			if err := p.reply.Decode(ack); err != nil {
				return e.fail(p, "drain", err)
			}
		}
	}
	return nil
}

// Observe processes one dense time step and returns the reported top-k
// ids ascending (a read-only view). It panics after Close; on a dead link
// it records the error (see Err) and returns the last-good report.
func (e *Engine) Observe(vals []int64) []int {
	if e.closed {
		panic("netrun: Observe after Close")
	}
	if len(vals) != e.cfg.N {
		panic(fmt.Sprintf("netrun: observed %d values for %d nodes", len(vals), e.cfg.N))
	}
	if e.err != nil {
		return e.mach.Top()
	}
	if e.pendingRecovery && e.recoverNow() != nil {
		return e.mach.Top()
	}
	copy(e.last, vals)
	e.step = e.mach.BeginStep()
	for pi, p := range e.peers {
		e.buf = wire.Observe{Step: e.step, Vals: vals[p.lo:p.hi]}.Append(e.buf[:0])
		if err := e.sendObs(pi, "observe"); err != nil {
			return e.mach.Top()
		}
	}
	anyTop, anyOut := false, false
	for pi, p := range e.peers {
		if err := e.gatherObs(pi, "observe"); err != nil {
			return e.mach.Top()
		}
		anyTop = anyTop || p.reply.TopViol
		anyOut = anyOut || p.reply.OutViol
	}
	return e.finishStep(anyTop, anyOut)
}

// sendObs ships the observation frame staged in e.buf to peer pi. In
// lockstep mode the peer's reply is awaited on the spot (strict
// command/ack, one peer at a time); in pipelined mode the frame only
// fans out and gatherObs collects the reply later.
func (e *Engine) sendObs(pi int, op string) error {
	if e.cfg.Lockstep {
		if err := e.send(e.peers[pi], e.buf, op); err != nil {
			return err
		}
		return e.recvReply(e.peers[pi], op)
	}
	return e.sendCmd(pi, e.buf, op)
}

// gatherObs consumes peer pi's observation reply into its reply scratch.
// In lockstep mode sendObs already did; each peer holds its own decoded
// reply, so the caller's flag aggregation reads the same data either way.
func (e *Engine) gatherObs(pi int, op string) error {
	if e.cfg.Lockstep {
		return nil
	}
	return e.gather(pi, op)
}

// ObserveDelta processes one sparse time step: vals[j] is node ids[j]'s
// new value, every other node repeats. ids must be strictly increasing.
// Only peers owning a touched node exchange frames, so a violation-free
// sparse step costs transport traffic proportional to the touched peers.
// Semantics match core.Monitor.ObserveDelta exactly; failure behaves as
// in Observe.
func (e *Engine) ObserveDelta(ids []int, vals []int64) []int {
	if e.closed {
		panic("netrun: ObserveDelta after Close")
	}
	if len(ids) != len(vals) {
		panic(fmt.Sprintf("netrun: delta has %d ids but %d values", len(ids), len(vals)))
	}
	prev := -1
	for _, id := range ids {
		if id <= prev || id >= e.cfg.N {
			panic(fmt.Sprintf("netrun: delta ids must be strictly increasing in [0, %d), got %d after %d", e.cfg.N, id, prev))
		}
		prev = id
	}
	if e.err != nil {
		return e.mach.Top()
	}
	if e.pendingRecovery && e.recoverNow() != nil {
		return e.mach.Top()
	}
	for j, id := range ids {
		e.last[id] = vals[j]
	}
	e.step = e.mach.BeginStep()
	// Ship each peer its slice of the (sorted) delta.
	clear(e.touched)
	start := 0
	for pi, p := range e.peers {
		stop := start
		for stop < len(ids) && ids[stop] < p.hi {
			stop++
		}
		if stop > start {
			e.touched[pi] = true
			e.buf = wire.ObserveDelta{Step: e.step, IDs: ids[start:stop], Vals: vals[start:stop]}.Append(e.buf[:0])
			if err := e.sendObs(pi, "observe-delta"); err != nil {
				return e.mach.Top()
			}
		}
		start = stop
	}
	anyTop, anyOut := false, false
	for pi, p := range e.peers {
		if !e.touched[pi] {
			continue
		}
		if err := e.gatherObs(pi, "observe-delta"); err != nil {
			return e.mach.Top()
		}
		anyTop = anyTop || p.reply.TopViol
		anyOut = anyOut || p.reply.OutViol
	}
	return e.finishStep(anyTop, anyOut)
}

// finishStep drives the coordinator machine through the rest of the step,
// executing its effects as frames. On a link failure it abandons the step
// (the error is stored) and returns the last-good report.
//
// In pipelined mode the ack-only effects do not synchronize one by one:
// their commands are queued per peer, the machine is advanced immediately
// (the acks carry no information), and the queued frames ride with the
// next data-bearing exchange to each peer — ResetBegin and the k+1
// Winner notifications of a FILTERRESET coalesce into the first round of
// the following protocol execution, saving their round trips outright —
// while whatever is still queued when the machine reports EffDone (the
// trailing midpoint/bounds install) drains as one final batched exchange.
// Per-link command order is preserved exactly, so every node applies the
// same state transitions in the same places, and the step ends with hosts
// and ledgers in the same state as lockstep mode.
func (e *Engine) finishStep(anyTopViol, anyOutViol bool) []int {
	_ = e.runEffects(e.mach.FinishStep(anyTopViol, anyOutViol))
	return e.mach.Top()
}

// runEffects drives one effect chain — a step's FinishStep chain, or the
// forced FILTERRESET of a recovery — to EffDone, executing effects as
// frames and draining deferred commands at the end (pipelined mode). On a
// link failure it abandons the chain with the error recorded.
func (e *Engine) runEffects(eff coord.Effect) error {
	pipelined := !e.cfg.Lockstep
	for eff.Kind != coord.EffDone {
		var err error
		switch eff.Kind {
		case coord.EffExec:
			var res protocol.Result
			if res, err = e.execProtocol(eff); err == nil {
				eff = e.mach.ExecDone(res.OK, res.ID, res.Key)
			}
		case coord.EffResetBegin:
			if pipelined {
				e.queueAll(func(dst []byte) []byte { return wire.AppendBare(dst, wire.TypeResetBegin) })
				eff = e.mach.Ack()
				continue
			}
			if err = e.broadcast(wire.AppendBare(e.buf[:0], wire.TypeResetBegin), "reset-begin"); err == nil {
				eff = e.mach.Ack()
			}
		case coord.EffWinner:
			m := wire.Winner{Target: eff.Target, IsTop: eff.IsTop}
			if pipelined {
				e.peers[e.owner(eff.Target)].queue(m.Append)
				eff = e.mach.Ack()
				continue
			}
			e.buf = m.Append(e.buf[:0])
			if err = e.unicast(eff.Target, e.buf, "winner"); err == nil {
				eff = e.mach.Ack()
			}
		case coord.EffMidpoint:
			m := wire.Midpoint{Mid: int64(eff.Mid), Full: eff.Full}
			if pipelined {
				e.queueAll(m.Append)
				eff = e.mach.Ack()
				continue
			}
			e.buf = m.Append(e.buf[:0])
			if err = e.broadcast(e.buf, "midpoint"); err == nil {
				eff = e.mach.Ack()
			}
		case coord.EffBounds:
			m := wire.ApproxBounds{Lo: int64(eff.Lo), Hi: int64(eff.Hi)}
			if pipelined {
				e.queueAll(m.Append)
				eff = e.mach.Ack()
				continue
			}
			e.buf = m.Append(e.buf[:0])
			if err = e.broadcast(e.buf, "bounds"); err == nil {
				eff = e.mach.Ack()
			}
		default:
			panic(fmt.Sprintf("netrun: unknown coordinator effect %d", eff.Kind))
		}
		if err != nil {
			return err
		}
	}
	if pipelined {
		return e.drainPending()
	}
	return nil
}

// recoverNow runs the recovery pass scheduled by fail: abort whatever the
// machine had in flight, restore the peer set (redial or merge), rerun
// the Assign handshake everywhere, replay the mirrored node values, and
// force a FILTERRESET so membership is re-derived from live state. Each
// full attempt is retried with jittered exponential backoff up to the
// retry budget; exhausting it (or losing every peer) is terminal.
func (e *Engine) recoverNow() error {
	budget := e.cfg.retryBudget()
	backoff := e.cfg.retryBackoff()
	for attempt := 0; attempt < budget; attempt++ {
		if attempt > 0 {
			time.Sleep(backoff/2 + time.Duration(e.rrng.Uint64n(uint64(backoff))))
			if backoff < time.Second {
				backoff *= 2
			}
		}
		e.mach.Abort()
		if err := e.restorePeers(); err != nil {
			return err // all peers lost: already terminal
		}
		if err := e.reassignReplayReset(); err != nil {
			continue // a peer died during the attempt; retry
		}
		e.pendingRecovery = false
		e.recoveries++
		e.emit(coord.Event{Kind: coord.EventRecovered, Lo: 0, Hi: e.cfg.N})
		return nil
	}
	e.terminal(fmt.Errorf("netrun: recovery abandoned after %d attempts", budget))
	return e.err
}

// restorePeers fixes the peer set: every dead peer is either replaced by
// a freshly dialed link adopting its exact range (Config.Redial) or its
// range is merged into a surviving neighbor. Ranges stay contiguous and
// cover [0, N). Returns the terminal error if no peers survive.
func (e *Engine) restorePeers() error {
	for _, p := range e.peers {
		if !p.dead {
			continue
		}
		if p.req != nil {
			close(p.req)
			p.req, p.res = nil, nil
		}
		p.link.Close()
		if e.cfg.Redial == nil {
			continue
		}
		nl, err := e.cfg.Redial()
		if err != nil {
			continue // merge below
		}
		p.link = nl
		p.dead = false
		p.owed = 0
		p.pendBuf, p.pendLens = p.pendBuf[:0], p.pendLens[:0]
		if e.readers && !e.cfg.Lockstep {
			e.startReader(p)
		}
		e.emit(coord.Event{Kind: coord.EventPeerReplaced, Lo: p.lo, Hi: p.hi})
	}
	// Merge the still-dead ranges: into the preceding survivor when one
	// exists, otherwise into the next (a leading dead run extends the
	// first survivor's range downward).
	survivors := make([]*peer, 0, len(e.peers))
	orphanLo := -1
	for _, p := range e.peers {
		if p.dead {
			e.emit(coord.Event{Kind: coord.EventRangeMerged, Lo: p.lo, Hi: p.hi})
			if len(survivors) > 0 {
				survivors[len(survivors)-1].hi = p.hi
			} else if orphanLo == -1 {
				orphanLo = p.lo
			}
			continue
		}
		if orphanLo != -1 {
			p.lo = orphanLo
			orphanLo = -1
		}
		survivors = append(survivors, p)
	}
	if len(survivors) == 0 {
		e.terminal(errors.New("netrun: all peers lost"))
		return e.err
	}
	e.peers = survivors
	if len(e.acks) != len(e.peers) {
		e.acks = make([]int, len(e.peers))
		e.touched = make([]bool, len(e.peers))
	}
	return nil
}

// recoverRecv collects one frame during recovery, honoring a running
// reader goroutine's ownership of the link's receive side.
func (e *Engine) recoverRecv(p *peer) ([]byte, error) {
	if p.res != nil {
		r := <-p.res
		p.owed = 0
		return r.frame, r.err
	}
	frame, err := p.link.Recv()
	p.owed = 0
	return frame, err
}

// drainOwed consumes a survivor's outstanding reply to a command sent
// before the failure, so the link is quiescent ahead of the reassignment
// handshake. The strict request/reply discipline bounds this to one frame.
func (e *Engine) drainOwed(p *peer) error {
	if p.owed == 0 {
		return nil
	}
	if p.res != nil && p.req != nil {
		// The reader received its token when the command was sent; the
		// reply (or the link error) is already on its way to res.
		_, err := e.recoverRecv(p)
		return err
	}
	_, err := e.recoverRecv(p)
	return err
}

// reassignReplayReset is the uniform reconfiguration step shared by
// recovery and Join: quiesce every link, re-run the Assign handshake (the
// hosts rebuild their banks from scratch), replay the mirrored node
// values, and drive a forced FILTERRESET. Any peer failing here is marked
// dead and the error returned; the caller retries or gives up.
func (e *Engine) reassignReplayReset() error {
	tol := e.mach.Tol()
	for _, p := range e.peers {
		p.pendBuf, p.pendLens = p.pendBuf[:0], p.pendLens[:0]
		if err := e.drainOwed(p); err != nil {
			return e.fail(p, "recovery drain", err)
		}
	}
	// Assign fan-out: every host rebuilds its bank for its (possibly new)
	// range and answers Ready.
	for _, p := range e.peers {
		e.buf = wire.Assign{
			Lo: p.lo, Hi: p.hi, N: e.cfg.N, K: e.cfg.K,
			Seed: e.cfg.Seed, EpsNum: tol.Num(), Distinct: e.cfg.DistinctValues,
		}.Append(e.buf[:0])
		if err := p.link.Send(e.buf); err != nil {
			return e.fail(p, "reassign", err)
		}
		if err := transport.Flush(p.link); err != nil {
			return e.fail(p, "reassign", err)
		}
		p.owed = 1
		if p.req != nil {
			p.req <- struct{}{}
		}
	}
	for _, p := range e.peers {
		frame, err := e.recoverRecv(p)
		if err != nil {
			return e.fail(p, "reassign ready", err)
		}
		if err := wire.DecodeBare(frame, wire.TypeReady); err != nil {
			return e.fail(p, "reassign ready", err)
		}
	}
	// Replay the current value of every node from the coordinator-side
	// mirror. Rebuilt banks hold full filters, so no violations fire; the
	// replies' flags are deliberately discarded.
	for _, p := range e.peers {
		e.buf = wire.Observe{Step: e.mach.Step(), Vals: e.last[p.lo:p.hi]}.Append(e.buf[:0])
		if err := p.link.Send(e.buf); err != nil {
			return e.fail(p, "replay", err)
		}
		if err := transport.Flush(p.link); err != nil {
			return e.fail(p, "replay", err)
		}
		p.owed = 1
		if p.req != nil {
			p.req <- struct{}{}
		}
	}
	for _, p := range e.peers {
		frame, err := e.recoverRecv(p)
		if err != nil {
			return e.fail(p, "replay reply", err)
		}
		if err := p.reply.Decode(frame); err != nil {
			return e.fail(p, "replay reply", err)
		}
	}
	// Re-derive membership, filters and bounds from the replayed values.
	e.step = e.mach.Step()
	return e.runEffects(e.mach.ForceReset())
}

// Join attaches a late-joining peer mid-stream: the widest surviving
// range is split and its upper half handed to the new link, then the
// engine runs the same reassign/replay/reset cycle as failover so every
// bank and filter is consistent before the next step. Call it between
// observation calls only. On error the link is closed; a failure during
// the cycle leaves recovery pending for the next observation call.
func (e *Engine) Join(link transport.Link) error {
	if e.closed {
		link.Close()
		return errors.New("netrun: Join after Close")
	}
	if e.err != nil {
		link.Close()
		return e.err
	}
	if e.pendingRecovery {
		if err := e.recoverNow(); err != nil {
			link.Close()
			return err
		}
	}
	wi, width := -1, 1
	for i, p := range e.peers {
		if w := p.hi - p.lo; w > width {
			wi, width = i, w
		}
	}
	if wi == -1 {
		link.Close()
		return errors.New("netrun: no splittable range (every peer hosts a single node)")
	}
	w := e.peers[wi]
	mid := (w.lo + w.hi) / 2
	np := &peer{link: link, lo: mid, hi: w.hi}
	w.hi = mid
	e.peers = append(e.peers, nil)
	copy(e.peers[wi+2:], e.peers[wi+1:])
	e.peers[wi+1] = np
	e.acks = make([]int, len(e.peers))
	e.touched = make([]bool, len(e.peers))
	if e.readers && !e.cfg.Lockstep {
		e.startReader(np)
	}
	e.emit(coord.Event{Kind: coord.EventPeerJoined, Lo: np.lo, Hi: np.hi})
	e.mach.Abort()
	if err := e.reassignReplayReset(); err != nil {
		return fmt.Errorf("netrun: join: %w", err)
	}
	return nil
}

// execProtocol runs one Algorithm 2 execution over the effect's cohort,
// charging Up per bid and Bcast per round exactly like the other engines.
// Each round is one fan-out/gather exchange; in pipelined mode the first
// round's frames carry the commands queued since the last exchange.
func (e *Engine) execProtocol(eff coord.Effect) (protocol.Result, error) {
	ex := protocol.NewExec(eff.Bound, coord.MinimumTag(eff.Tag), e.mach.Recorder(eff.Phase), nil, e.step)
	for ex.More() {
		e.buf = wire.Round{Tag: eff.Tag, Round: ex.Round(), Best: int64(ex.Best()), Bound: eff.Bound, Step: e.step}.Append(e.buf[:0])
		for pi, p := range e.peers {
			var err error
			if e.cfg.Lockstep {
				// Strict command/ack: this peer's round completes before
				// the next peer even sees the command.
				if err = e.send(p, e.buf, "round"); err == nil {
					err = e.recvReply(p, "round")
				}
			} else {
				err = e.sendCmd(pi, e.buf, "round")
			}
			if err != nil {
				return protocol.Result{}, err
			}
		}
		for pi, p := range e.peers {
			if !e.cfg.Lockstep {
				if err := e.gather(pi, "round"); err != nil {
					return protocol.Result{}, err
				}
			}
			for j, id := range p.reply.IDs {
				ex.Bid(id, order.Key(p.reply.Keys[j]))
			}
		}
		ex.EndRound()
	}
	return ex.Result(), nil
}
