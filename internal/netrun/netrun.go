// Package netrun is the third execution engine: it drives Algorithm 1
// over a transport.Link per peer, where each peer process hosts a
// contiguous range of the monitored nodes and everything the coordinator
// learns arrives in wire-encoded frames. With TCP links the monitor spans
// real processes (cmd/topkmon -serve / -join); with loopback pipes it runs
// in-process and is message-count- and byte-identical to the sequential
// engine, which the equivalence test in this package pins.
//
// # Relation to the other engines
//
// The engine's coordinator logic mirrors internal/runtime step for step —
// the same cohorts, the same protocol rounds, the same recording points —
// with the batched channel commands replaced by wire messages:
//
//	runtime (channels)        netrun (frames)
//	shardCmd{cObserve}        wire.Observe
//	shardCmd{cObserveDelta}   wire.ObserveDelta
//	shardCmd{cRound}          wire.Round
//	shardReply                wire.Reply
//	shardCmd{cWinner}         wire.Winner
//	shardCmd{cMidpoint}       wire.Midpoint
//	shardCmd{cResetBegin}     wire.ResetBegin
//
// Every command is answered by exactly one Reply, so the links stay in
// lockstep and replies are processed in ascending peer (hence node id)
// order — the same deterministic order the other engines use, which is
// what makes the three engines' randomness consume identically.
//
// # Accounting
//
// Model messages are charged exactly as in the other engines: one Up per
// sampler bid (wire.SizeBid bytes), one Bcast per protocol round
// (wire.SizeBest) and per midpoint broadcast (wire.SizeMidpoint). The
// engine's frames carry additional scheduling fields (round numbers,
// bounds, batching); their true framed volume is visible separately
// through TransportStats. The paper's Theorem 4.2 bounds the former; a
// deployment pays the latter.
//
// The engine treats a failed or misbehaving link as fatal and panics;
// re-balancing ranges away from dead peers is future work (see ROADMAP).
package netrun

import (
	"fmt"

	"repro/internal/comm"
	"repro/internal/order"
	"repro/internal/protocol"
	"repro/internal/transport"
	"repro/internal/wire"
)

// Protocol cohort tags carried in wire.Round.Tag. The values match the
// cohort semantics of internal/runtime's protoTag.
const (
	tagViolMin uint8 = iota // violating former top-k nodes, minimum
	tagViolMax              // violating outsiders, maximum
	tagHandMin              // all top-k nodes, minimum
	tagHandMax              // all outsiders, maximum
	tagReset                // all not-yet-extracted nodes, maximum
)

func minimumTag(t uint8) bool { return t == tagViolMin || t == tagHandMin }

// Config mirrors core.Config for the networked engine.
type Config struct {
	N, K           int
	Seed           uint64
	DistinctValues bool
}

// peer is the coordinator's view of one node-hosting link.
type peer struct {
	link   transport.Link
	lo, hi int
	reply  wire.Reply // reusable decode target
}

// Engine is the networked monitor's coordinator. It satisfies
// sim.Algorithm and sim.DeltaAlgorithm. Like the other engines it is not
// safe for concurrent Observe calls (the model's time steps are globally
// ordered).
type Engine struct {
	cfg   Config
	led   comm.Ledger
	peers []*peer

	inTop  []bool
	top    []int
	keys   []order.Key // reset-extraction scratch
	tPlus  order.Key
	tMinus order.Key
	step   int64
	init   bool
	closed bool

	buf     []byte // reusable encode buffer
	touched []bool // peers hit by the current delta
}

// New performs the Assign/Ready handshake over the given links — peer i
// hosts the i-th contiguous node range — and returns the coordinator.
// It requires 1 <= len(links) <= N so every peer hosts at least one node.
// Callers must Close the engine to release the peers. On a handshake
// error New closes every link before returning: a half-handshaken link
// is in an indeterminate protocol state and cannot be reused.
func New(cfg Config, links []transport.Link) (*Engine, error) {
	if cfg.N <= 0 {
		panic("netrun: need N > 0")
	}
	if cfg.K < 1 || cfg.K > cfg.N {
		panic("netrun: need 1 <= K <= N")
	}
	if len(links) == 0 || len(links) > cfg.N {
		panic(fmt.Sprintf("netrun: need 1 <= peers <= N, got %d peers for N=%d", len(links), cfg.N))
	}
	e := &Engine{
		cfg:     cfg,
		inTop:   make([]bool, cfg.N),
		top:     make([]int, 0, cfg.K),
		touched: make([]bool, len(links)),
	}
	// Contiguous near-even ranges: the first rem peers take one extra
	// node. The range layout does not affect reports or ledgers, only
	// which link carries which frames.
	base, rem := cfg.N/len(links), cfg.N%len(links)
	lo := 0
	for i, link := range links {
		hi := lo + base
		if i < rem {
			hi++
		}
		e.peers = append(e.peers, &peer{link: link, lo: lo, hi: hi})
		lo = hi
	}
	fail := func(err error) (*Engine, error) {
		for _, l := range links {
			l.Close()
		}
		return nil, err
	}
	for _, p := range e.peers {
		e.buf = wire.Assign{
			Lo: p.lo, Hi: p.hi, N: cfg.N, K: cfg.K,
			Seed: cfg.Seed, Distinct: cfg.DistinctValues,
		}.Append(e.buf[:0])
		if err := p.link.Send(e.buf); err != nil {
			return fail(fmt.Errorf("netrun: assigning [%d, %d): %w", p.lo, p.hi, err))
		}
	}
	for _, p := range e.peers {
		frame, err := p.link.Recv()
		if err != nil {
			return fail(fmt.Errorf("netrun: awaiting ready for [%d, %d): %w", p.lo, p.hi, err))
		}
		if err := wire.DecodeBare(frame, wire.TypeReady); err != nil {
			return fail(fmt.Errorf("netrun: peer [%d, %d) handshake: %w", p.lo, p.hi, err))
		}
	}
	return e, nil
}

// LoopbackLinks builds one pipe pair per peer with a Serve goroutine on
// the far end and returns the coordinator ends. It is the link factory
// behind both NewLoopback and topk.Loopback. A Serve goroutine exits
// cleanly when its link closes; any other serve error is a bug and
// panics.
func LoopbackLinks(peers int) []transport.Link {
	links := make([]transport.Link, peers)
	for i := range links {
		coord, node := transport.Pipe()
		links[i] = coord
		go func() {
			if err := Serve(node); err != nil {
				panic(fmt.Sprintf("netrun: loopback host: %v", err))
			}
		}()
	}
	return links
}

// NewLoopback builds an in-process engine over LoopbackLinks. It is the
// networked engine's default mode (topkmon -engine net) and the
// configuration the equivalence tests run.
func NewLoopback(cfg Config, peers int) *Engine {
	e, err := New(cfg, LoopbackLinks(peers))
	if err != nil {
		panic(fmt.Sprintf("netrun: loopback handshake: %v", err)) // pipes cannot fail benignly
	}
	return e
}

// Close sends every peer a Shutdown frame and closes the links.
// Idempotent.
func (e *Engine) Close() {
	if e.closed {
		return
	}
	e.closed = true
	for _, p := range e.peers {
		// Best effort: a peer that already vanished is being shut down
		// anyway.
		_ = p.link.Send(wire.AppendBare(e.buf[:0], wire.TypeShutdown))
		_ = p.link.Close()
	}
}

// Counts returns the total model message counts charged so far.
func (e *Engine) Counts() comm.Counts { return e.led.Total() }

// Ledger exposes the per-phase message and byte breakdown.
func (e *Engine) Ledger() *comm.Ledger { return &e.led }

// Bytes returns the total charged model bytes.
func (e *Engine) Bytes() comm.Bytes { return e.led.TotalBytes() }

// TransportStats sums the per-link transport statistics over all peers:
// the frames and framed bytes that actually crossed the links, control
// plane included.
func (e *Engine) TransportStats() transport.LinkStats {
	var s transport.LinkStats
	for _, p := range e.peers {
		s = s.Add(transport.StatsOf(p.link))
	}
	return s
}

// Peers returns the number of peer links.
func (e *Engine) Peers() int { return len(e.peers) }

// Top returns the current top-k ids ascending, as a read-only view owned
// by the engine (see AppendTop).
func (e *Engine) Top() []int { return e.top }

// AppendTop appends the current top-k ids (ascending) to dst.
func (e *Engine) AppendTop(dst []int) []int { return append(dst, e.top...) }

// fatal reports an unrecoverable transport or protocol error.
func (e *Engine) fatal(p *peer, op string, err error) {
	panic(fmt.Sprintf("netrun: peer [%d, %d): %s: %v", p.lo, p.hi, op, err))
}

// send ships one pre-encoded frame to a peer.
func (e *Engine) send(p *peer, frame []byte, op string) {
	if err := p.link.Send(frame); err != nil {
		e.fatal(p, op, err)
	}
}

// recvReply reads and decodes a peer's mandatory Reply.
func (e *Engine) recvReply(p *peer, op string) {
	frame, err := p.link.Recv()
	if err != nil {
		e.fatal(p, op, err)
	}
	if err := p.reply.Decode(frame); err != nil {
		e.fatal(p, op, err)
	}
}

// broadcast ships the same frame to every peer and collects the replies
// in peer order.
func (e *Engine) broadcast(frame []byte, op string) {
	for _, p := range e.peers {
		e.send(p, frame, op)
	}
	for _, p := range e.peers {
		e.recvReply(p, op)
	}
}

// unicast routes a frame to the peer owning node id and awaits its reply.
func (e *Engine) unicast(id int, frame []byte, op string) {
	for _, p := range e.peers {
		if id >= p.lo && id < p.hi {
			e.send(p, frame, op)
			e.recvReply(p, op)
			return
		}
	}
	panic(fmt.Sprintf("netrun: no peer owns node %d", id))
}

// Observe processes one dense time step and returns the reported top-k
// ids ascending (a read-only view). It panics after Close or on a dead
// link.
func (e *Engine) Observe(vals []int64) []int {
	if e.closed {
		panic("netrun: Observe after Close")
	}
	if len(vals) != e.cfg.N {
		panic(fmt.Sprintf("netrun: observed %d values for %d nodes", len(vals), e.cfg.N))
	}
	e.step++
	for _, p := range e.peers {
		e.buf = wire.Observe{Step: e.step, Vals: vals[p.lo:p.hi]}.Append(e.buf[:0])
		e.send(p, e.buf, "observe")
	}
	anyTop, anyOut := false, false
	for _, p := range e.peers {
		e.recvReply(p, "observe")
		anyTop = anyTop || p.reply.TopViol
		anyOut = anyOut || p.reply.OutViol
	}
	return e.finishStep(anyTop, anyOut)
}

// ObserveDelta processes one sparse time step: vals[j] is node ids[j]'s
// new value, every other node repeats. ids must be strictly increasing.
// Only peers owning a touched node exchange frames, so a violation-free
// sparse step costs transport traffic proportional to the touched peers.
// Semantics match core.Monitor.ObserveDelta exactly.
func (e *Engine) ObserveDelta(ids []int, vals []int64) []int {
	if e.closed {
		panic("netrun: ObserveDelta after Close")
	}
	if len(ids) != len(vals) {
		panic(fmt.Sprintf("netrun: delta has %d ids but %d values", len(ids), len(vals)))
	}
	prev := -1
	for _, id := range ids {
		if id <= prev || id >= e.cfg.N {
			panic(fmt.Sprintf("netrun: delta ids must be strictly increasing in [0, %d), got %d after %d", e.cfg.N, id, prev))
		}
		prev = id
	}
	e.step++
	// Ship each peer its slice of the (sorted) delta.
	clear(e.touched)
	start := 0
	for pi, p := range e.peers {
		stop := start
		for stop < len(ids) && ids[stop] < p.hi {
			stop++
		}
		if stop > start {
			e.touched[pi] = true
			e.buf = wire.ObserveDelta{Step: e.step, IDs: ids[start:stop], Vals: vals[start:stop]}.Append(e.buf[:0])
			e.send(p, e.buf, "observe-delta")
		}
		start = stop
	}
	anyTop, anyOut := false, false
	for pi, p := range e.peers {
		if !e.touched[pi] {
			continue
		}
		e.recvReply(p, "observe-delta")
		anyTop = anyTop || p.reply.TopViol
		anyOut = anyOut || p.reply.OutViol
	}
	return e.finishStep(anyTop, anyOut)
}

// execProtocol runs one Algorithm 2 execution over the cohort selected by
// tag, charging Up per bid and Bcast per round exactly like the other
// engines.
func (e *Engine) execProtocol(tag uint8, bound int, rec comm.Recorder) (winID int, winKey order.Key, any bool) {
	rounds := protocol.Rounds(bound)
	best := order.NegInf // in the executing protocol's comparison domain
	winID = -1
	for r := 0; r < rounds; r++ {
		e.buf = wire.Round{Tag: tag, Round: r, Best: int64(best), Bound: bound, Step: e.step}.Append(e.buf[:0])
		for _, p := range e.peers {
			e.send(p, e.buf, "round")
		}
		for _, p := range e.peers {
			e.recvReply(p, "round")
			for j, id := range p.reply.IDs {
				key := order.Key(p.reply.Keys[j])
				comm.RecordSized(rec, comm.Up, 1, wire.SizeBid(id, int64(key)))
				any = true
				cmp := key
				if minimumTag(tag) {
					cmp = order.Neg(cmp)
				}
				if cmp > best {
					best = cmp
					winID = id
					winKey = key
				}
			}
		}
		comm.RecordSized(rec, comm.Bcast, 1, wire.SizeBest(r, int64(best)))
	}
	return winID, winKey, any
}

// finishStep runs the coordinator side of Algorithm 1 after the node-local
// filter checks of one step. It is runtime.Runtime.finishStep over frames.
func (e *Engine) finishStep(anyTopViol, anyOutViol bool) []int {
	if !e.init {
		e.reset()
		e.init = true
		return e.top
	}
	if !anyTopViol && !anyOutViol {
		return e.top
	}

	vrec := e.led.InPhase(comm.PhaseViolation)
	var minKey, maxKey order.Key
	minOK, maxOK := false, false
	if anyTopViol {
		_, minKey, minOK = e.execProtocol(tagViolMin, e.cfg.K, vrec)
	}
	if anyOutViol {
		_, maxKey, maxOK = e.execProtocol(tagViolMax, e.cfg.N-e.cfg.K, vrec)
	}

	hrec := e.led.InPhase(comm.PhaseHandler)
	if !maxOK {
		_, maxKey, maxOK = e.execProtocol(tagHandMax, e.cfg.N-e.cfg.K, hrec)
	} else {
		_, minKey, minOK = e.execProtocol(tagHandMin, e.cfg.K, hrec)
	}
	if minOK {
		e.tPlus = order.Min(e.tPlus, minKey)
	}
	if maxOK {
		e.tMinus = order.Max(e.tMinus, maxKey)
	}

	if e.tPlus < e.tMinus {
		e.reset()
		return e.top
	}
	mid := order.Midpoint(e.tMinus, e.tPlus)
	comm.RecordSized(hrec, comm.Bcast, 1, wire.SizeMidpoint(int64(mid)))
	e.buf = wire.Midpoint{Mid: int64(mid)}.Append(e.buf[:0])
	e.broadcast(e.buf, "midpoint")
	return e.top
}

// reset is FILTERRESET: k+1 maximum extractions with population bound n,
// then fresh midpoint filters.
func (e *Engine) reset() {
	rec := e.led.InPhase(comm.PhaseReset)
	e.broadcast(wire.AppendBare(e.buf[:0], wire.TypeResetBegin), "reset-begin")
	for i := range e.inTop {
		e.inTop[i] = false
	}
	want := e.cfg.K + 1
	if want > e.cfg.N {
		want = e.cfg.N
	}
	e.keys = e.keys[:0]
	for j := 0; j < want; j++ {
		id, key, any := e.execProtocol(tagReset, e.cfg.N, rec)
		if !any {
			panic("netrun: reset extraction found no participant")
		}
		isTop := j < e.cfg.K
		e.buf = wire.Winner{Target: id, IsTop: isTop}.Append(e.buf[:0])
		e.unicast(id, e.buf, "winner")
		if isTop {
			e.inTop[id] = true
		}
		e.keys = append(e.keys, key)
	}
	e.top = e.top[:0]
	for id, in := range e.inTop {
		if in {
			e.top = append(e.top, id)
		}
	}
	if e.cfg.K == e.cfg.N {
		e.tPlus = e.keys[len(e.keys)-1]
		e.tMinus = order.NegInf
		e.broadcast(wire.Midpoint{Full: true}.Append(e.buf[:0]), "midpoint-full")
		return
	}
	kth, kPlus1 := e.keys[e.cfg.K-1], e.keys[e.cfg.K]
	e.tPlus, e.tMinus = kth, kPlus1
	mid := order.Midpoint(kPlus1, kth)
	comm.RecordSized(rec, comm.Bcast, 1, wire.SizeMidpoint(int64(mid)))
	e.buf = wire.Midpoint{Mid: int64(mid)}.Append(e.buf[:0])
	e.broadcast(e.buf, "midpoint")
}
