package netrun

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/ingest"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/transport"
)

// The chaos suite drives the engine over fault-injecting links and
// enforces the failure contract end to end: every observation call
// returns promptly (a Faulty turns every fault into a cut, so nothing
// can hang), reports are never silently stale, and the engine either
// re-converges to the oracle after recovery or wedges with a clean
// terminal error.

const (
	chaosN     = 16
	chaosK     = 4
	chaosPeers = 4
)

// chaosEngine builds a loopback engine whose victim link is wrapped in
// the given fault plan.
func chaosEngine(lockstep, redial bool, victim int, plan transport.FaultPlan) (*Engine, error) {
	links := LoopbackLinks(chaosPeers)
	links[victim] = transport.NewFaulty(links[victim], plan)
	cfg := Config{N: chaosN, K: chaosK, Seed: 5, Lockstep: lockstep, RetryBackoff: time.Millisecond}
	if redial {
		cfg.Redial = func() (transport.Link, error) { return LoopbackLink(), nil }
	}
	return New(cfg, links)
}

// runChaos drives e for steps observation calls under the chaos
// contract. Healthy steps must match the oracle, except for a bounded
// corruption window right around a fault: an injected duplicate can
// poison the step it lands in and the step that detects the cut, never
// more. Degraded steps must return the last-good report; terminal
// engines must stay wedged on it.
func runChaos(t *testing.T, e *Engine, steps int) {
	t.Helper()
	vals := make([]int64, chaosN)
	suspect := 0
	var last []int
	for s := 0; s < steps; s++ {
		driven(s, vals)
		got := e.Observe(vals)
		if e.Err() != nil {
			for s2 := 1; s2 <= 5; s2++ {
				driven(steps+s2, vals)
				if again := e.Observe(vals); !equal(again, got) {
					t.Fatalf("terminal engine moved its report: %v -> %v", got, again)
				}
			}
			return
		}
		switch {
		case e.Health().Degraded:
			if last != nil && !equal(got, last) {
				t.Fatalf("step %d: degraded step returned %v, want last-good %v", s, got, last)
			}
			suspect = 0
		case equal(got, sim.Oracle(vals, chaosK)):
			suspect = 0
			last = append(last[:0], got...)
		default:
			suspect++
			if suspect > 2 {
				t.Fatalf("step %d: report stale for %d healthy steps: got %v, want %v",
					s, suspect, got, sim.Oracle(vals, chaosK))
			}
			last = append(last[:0], got...)
		}
	}
	if e.Health().Degraded {
		t.Fatal("run ended degraded: recovery never completed")
	}
	for s := steps; s < steps+5; s++ {
		driven(s, vals)
		if got := e.Observe(vals); !equal(got, sim.Oracle(vals, chaosK)) {
			t.Fatalf("step %d: post-run report %v != oracle %v", s, got, sim.Oracle(vals, chaosK))
		}
	}
}

// TestChaosFaultMatrix runs every fault flavor — cut, silent frame loss,
// duplicated frame, pure latency, loss under latency — against both
// fan-out modes. The op indices land mid-run, after the handshake's two
// operations. A delay-only plan injects no failure, so that run must
// stay fault-free and oracle-exact throughout.
func TestChaosFaultMatrix(t *testing.T) {
	plans := []struct {
		name  string
		plan  transport.FaultPlan
		steps int // delayed runs pay OS sleep granularity per op: keep them short
	}{
		{"kill", transport.FaultPlan{KillAt: 40}, 80},
		{"drop", transport.FaultPlan{DropAt: 41}, 80},
		{"dup", transport.FaultPlan{DupAt: 42}, 80},
		{"delay", transport.FaultPlan{Delay: 10 * time.Microsecond, Seed: 1}, 15},
		{"drop+delay", transport.FaultPlan{DropAt: 43, Delay: 10 * time.Microsecond, Seed: 2}, 30},
	}
	for _, mode := range modes {
		for _, tc := range plans {
			t.Run(mode.name+"/"+tc.name, func(t *testing.T) {
				e, err := chaosEngine(mode.lockstep, false, 2, tc.plan)
				if err != nil {
					t.Fatalf("fault fired during the handshake: %v", err)
				}
				defer e.Close()
				runChaos(t, e, tc.steps)
				h := e.Health()
				injects := tc.plan.KillAt != 0 || tc.plan.DropAt != 0 || tc.plan.DupAt != 0
				if injects && h.Failures == 0 {
					t.Fatalf("fault plan %+v never fired in 80 driven steps", tc.plan)
				}
				if !injects && (h.Failures != 0 || h.Recoveries != 0) {
					t.Fatalf("delay-only plan registered failures: %+v", h)
				}
			})
		}
	}
}

// TestChaosKillAtRandomStep kills one peer at a seeded random operation
// index, across fan-out modes, merge-vs-redial recovery, and the forced
// reader-goroutine gather path. A kill that lands inside the Assign
// handshake must surface as a clean constructor error.
func TestChaosKillAtRandomStep(t *testing.T) {
	for _, mode := range modes {
		for _, redial := range []bool{false, true} {
			for _, readers := range []bool{false, true} {
				name := mode.name + "/merge"
				if redial {
					name = mode.name + "/redial"
				}
				if readers {
					name += "/readers"
				}
				t.Run(name, func(t *testing.T) {
					if readers {
						if mode.lockstep {
							t.Skip("reader goroutines are a pipelined-only path")
						}
						forceReaders = true
						defer func() { forceReaders = false }()
					}
					r := rng.New(0xc4a05, uint64(len(name)))
					for trial := 0; trial < 4; trial++ {
						killOp := int64(1 + r.Uint64n(200))
						e, err := chaosEngine(mode.lockstep, redial, int(r.Uint64n(chaosPeers)), transport.FaultPlan{KillAt: killOp})
						if err != nil {
							continue // killed mid-handshake: clean error is the contract
						}
						runChaos(t, e, 100)
						e.Close()
					}
				})
			}
		}
	}
}

// TestChaosKillDuringDrain pins the asynchronous-ingestion × failover
// interaction: a peer dies while the ingest queue is non-empty and a
// protocol step is in flight (each dense call stages 16 nodes through a
// depth-4 Block buffer, so producers sit in mid-call waits whenever the
// worker stalls on a slow recovering step). The contract: no Drain may
// outlive its deadline — a kill during a drain must never hang the
// barrier — and after the driver is retired the engine must either
// re-converge to the oracle or stay wedged on a clean terminal error,
// which runChaos enforces.
func TestChaosKillDuringDrain(t *testing.T) {
	allIDs := make([]int, chaosN)
	for i := range allIDs {
		allIDs[i] = i
	}
	for _, mode := range modes {
		for _, redial := range []bool{false, true} {
			name := mode.name + "/merge"
			if redial {
				name = mode.name + "/redial"
			}
			t.Run(name, func(t *testing.T) {
				r := rng.New(0xd6a1, uint64(len(name)))
				for trial := 0; trial < 3; trial++ {
					killOp := int64(1 + r.Uint64n(250))
					e, err := chaosEngine(mode.lockstep, redial, int(r.Uint64n(chaosPeers)), transport.FaultPlan{KillAt: killOp})
					if err != nil {
						continue // killed mid-handshake: clean error is the contract
					}
					drv, err := ingest.New(ingest.Config{
						N: chaosN, Depth: 4, Policy: ingest.Block,
						Apply: func(ids []int, vals []int64) error {
							e.ObserveDelta(ids, vals)
							return e.Err()
						},
					})
					if err != nil {
						t.Fatal(err)
					}
					vals := make([]int64, chaosN)
					for s := 0; s < 60; s++ {
						driven(s, vals)
						if err := drv.Enqueue(allIDs, vals); err != nil {
							break // engine went terminal mid-burst; checked below
						}
						if s%13 == 5 {
							ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
							err := drv.Drain(ctx)
							cancel()
							if errors.Is(err, context.DeadlineExceeded) {
								t.Fatal("mid-run Drain hung with a killed peer")
							}
						}
					}
					ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
					err = drv.Drain(ctx)
					cancel()
					if errors.Is(err, context.DeadlineExceeded) {
						t.Fatal("final Drain hung: kill during drain wedged the worker")
					}
					if err != nil && e.Err() == nil {
						t.Fatalf("Drain failed without a terminal engine error: %v", err)
					}
					drv.Close()
					runChaos(t, e, 40)
					e.Close()
				}
			})
		}
	}
}

// TestChaosKillDuringHandshake pins the mid-Assign kill explicitly: the
// constructor must return an error (never hang or panic) whether the cut
// lands on the Assign send or on the Ready receive.
func TestChaosKillDuringHandshake(t *testing.T) {
	for _, killAt := range []int64{1, 2} {
		if _, err := chaosEngine(false, false, 0, transport.FaultPlan{KillAt: killAt}); err == nil {
			t.Fatalf("KillAt=%d during the handshake: New succeeded", killAt)
		}
	}
}

// TestJoinMidStream grows the cohort while the monitor runs: the widest
// range is split in half for the joiner, membership re-converges before
// the next report, and reports stay oracle-exact.
func TestJoinMidStream(t *testing.T) {
	for _, mode := range modes {
		t.Run(mode.name, func(t *testing.T) {
			const n, k = 12, 3
			e := mustLoopback(t, Config{N: n, K: k, Seed: 5, Lockstep: mode.lockstep, RetryBackoff: time.Millisecond}, 2)
			defer e.Close()
			vals := make([]int64, n)
			for s := 0; s < 15; s++ {
				driven(s, vals)
				e.Observe(vals)
			}
			if err := e.Join(LoopbackLink()); err != nil {
				t.Fatalf("Join: %v", err)
			}
			h := e.Health()
			if len(h.Peers) != 3 {
				t.Fatalf("join left %d peers, want 3: %+v", len(h.Peers), h.Peers)
			}
			lo := 0
			for _, p := range h.Peers {
				if p.Lo != lo {
					t.Fatalf("peer ranges not contiguous after join: %+v", h.Peers)
				}
				lo = p.Hi
			}
			if lo != n {
				t.Fatalf("peer ranges do not cover [0, %d) after join: %+v", n, h.Peers)
			}
			for s := 15; s < 40; s++ {
				driven(s, vals)
				if got := e.Observe(vals); !equal(got, sim.Oracle(vals, k)) {
					t.Fatalf("step %d after join: got %v, want oracle %v", s, got, sim.Oracle(vals, k))
				}
			}
		})
	}
}

// TestJoinDeadLinkRecovers: a joiner whose link dies inside the Join
// handshake must not wedge the engine — Join errors, the next
// observation call merges the stillborn peer away, and reports
// re-converge.
func TestJoinDeadLinkRecovers(t *testing.T) {
	const n, k = 12, 3
	e := mustLoopback(t, Config{N: n, K: k, Seed: 5, RetryBackoff: time.Millisecond}, 2)
	defer e.Close()
	vals := make([]int64, n)
	for s := 0; s < 10; s++ {
		driven(s, vals)
		e.Observe(vals)
	}
	a, b := transport.Pipe()
	b.Close()
	if err := e.Join(a); err == nil {
		t.Fatal("Join over a dead link succeeded")
	}
	for s := 10; s < 30; s++ {
		driven(s, vals)
		got := e.Observe(vals)
		if e.Err() != nil {
			t.Fatalf("step %d: failed join went terminal: %v", s, e.Err())
		}
		if !e.Health().Degraded {
			if want := sim.Oracle(vals, k); !equal(got, want) {
				t.Fatalf("step %d after failed join: got %v, want oracle %v", s, got, want)
			}
		}
	}
	h := e.Health()
	if h.Failures == 0 {
		t.Fatalf("failed join registered no failure: %+v", h)
	}
	lo := 0
	for _, p := range h.Peers {
		if p.Lo != lo {
			t.Fatalf("ranges not contiguous after failed join: %+v", h.Peers)
		}
		lo = p.Hi
	}
	if lo != n {
		t.Fatalf("ranges do not cover [0, %d) after failed join: %+v", n, h.Peers)
	}
}
