package netrun

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/stream"
	"repro/internal/transport"
)

// TestTCPPipelinedSoak is the concurrency soak of the pipelined engine
// over real TCP: a violation-heavy workload (IID redraws force protocol
// executions, resets, and batched Winner/ResetBegin/Midpoint coalescing
// nearly every step) drives the reader goroutines, the flush-before-read
// guard and the batch framing through a few hundred steps while a
// sequential twin checks every report and the final ledgers. CI runs this
// package under -race, which makes this test the soak the pipelined
// fan-out is gated on.
func TestTCPPipelinedSoak(t *testing.T) {
	forceReaders = true // exercise the concurrent gather on any machine
	defer func() { forceReaders = false }()
	const n, k, seed, steps, peers = 48, 6, 31, 300, 4
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ln, err := transport.Listen(ctx, "127.0.0.1:0")
	if err != nil {
		t.Skipf("cannot listen on loopback: %v", err)
	}
	defer ln.Close()

	serveErr := make(chan error, peers)
	for i := 0; i < peers; i++ {
		go func() {
			link, err := transport.Dial(ctx, ln.Addr())
			if err != nil {
				serveErr <- err
				return
			}
			serveErr <- Serve(link)
		}()
	}
	links, err := ln.AcceptN(peers)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(Config{N: n, K: k, Seed: seed}, links)
	if err != nil {
		t.Fatal(err)
	}

	seq := core.New(core.Config{N: n, K: k, Seed: seed})
	srcA := stream.NewIID(stream.IIDConfig{N: n, Seed: 77, Dist: stream.Uniform, Lo: 0, Hi: 1 << 20})
	srcB := stream.NewIID(stream.IIDConfig{N: n, Seed: 77, Dist: stream.Uniform, Lo: 0, Hi: 1 << 20})
	va, vb := make([]int64, n), make([]int64, n)
	for s := 0; s < steps; s++ {
		srcA.Step(va)
		srcB.Step(vb)
		if !equal(seq.Observe(va), eng.Observe(vb)) {
			t.Fatalf("step %d: reports differ under soak", s)
		}
	}
	if err := eng.Err(); err != nil {
		t.Fatalf("engine error under soak: %v", err)
	}
	if cs, cn := seq.Counts(), eng.Counts(); cs != cn {
		t.Fatalf("counts diverged under soak: seq=%v net=%v", cs, cn)
	}
	if bs, bn := seq.Ledger().TotalBytes(), eng.Bytes(); bs != bn {
		t.Fatalf("bytes diverged under soak: seq=%v net=%v", bs, bn)
	}
	eng.Close()
	for i := 0; i < peers; i++ {
		if err := <-serveErr; err != nil {
			t.Fatalf("peer serve loop: %v", err)
		}
	}
}
