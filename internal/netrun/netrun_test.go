package netrun

import (
	"context"
	"testing"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/stream"
	"repro/internal/transport"
)

// mustLoopback builds a loopback engine, failing the test on
// constructor errors (impossible for the valid configs used here).
func mustLoopback(tb testing.TB, cfg Config, peers int) *Engine {
	tb.Helper()
	e, err := NewLoopback(cfg, peers)
	if err != nil {
		tb.Fatalf("NewLoopback: %v", err)
	}
	return e
}

func equal(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// modes names the two fan-out modes every equivalence case runs under:
// the pipelined default and the sequential lockstep baseline, which must
// be indistinguishable in everything but wall clock and framing.
var modes = []struct {
	name     string
	lockstep bool
}{
	{"pipelined", false},
	{"lockstep", true},
}

// TestEquivalenceWithSequentialEngine is the acceptance check of the
// networked engine: over loopback links it must produce identical top-k
// reports, identical message counts AND identical charged bytes as the
// sequential engine at every step, for the same seed — per phase, not
// just in total — in both fan-out modes.
func TestEquivalenceWithSequentialEngine(t *testing.T) {
	cases := []struct {
		name  string
		n, k  int
		peers int
		src   func(n int) stream.Source
	}{
		{"walk-3peers", 12, 3, 3, func(n int) stream.Source {
			return stream.NewRandomWalk(stream.WalkConfig{N: n, Lo: 0, Hi: 100000, MaxStep: 400, Seed: 2})
		}},
		{"walk-1peer", 12, 3, 1, func(n int) stream.Source {
			return stream.NewRandomWalk(stream.WalkConfig{N: n, Lo: 0, Hi: 100000, MaxStep: 400, Seed: 2})
		}},
		{"walk-npeers", 12, 3, 12, func(n int) stream.Source {
			return stream.NewRandomWalk(stream.WalkConfig{N: n, Lo: 0, Hi: 100000, MaxStep: 400, Seed: 2})
		}},
		{"iid-uneven", 9, 2, 4, func(n int) stream.Source {
			return stream.NewIID(stream.IIDConfig{N: n, Seed: 3, Dist: stream.Uniform, Lo: 0, Hi: 1 << 20})
		}},
		{"rotation", 7, 1, 2, func(n int) stream.Source {
			return stream.NewRotation(stream.RotationConfig{N: n, Period: 4, Base: 10, Peak: 1000})
		}},
		{"twoband", 14, 4, 5, func(n int) stream.Source {
			return stream.NewTwoBand(stream.TwoBandConfig{N: n, K: 4, Seed: 5, Gap: 1 << 16, BandWidth: 1 << 8, MaxStep: 40, SwapEvery: 30})
		}},
		{"k-equals-n", 6, 6, 3, func(n int) stream.Source {
			return stream.NewIID(stream.IIDConfig{N: n, Seed: 6, Dist: stream.Uniform, Lo: 0, Hi: 1000})
		}},
	}
	for _, mode := range modes {
		for _, tc := range cases {
			t.Run(mode.name+"/"+tc.name, func(t *testing.T) {
				const seed, steps = 41, 200
				seq := core.New(core.Config{N: tc.n, K: tc.k, Seed: seed})
				net := mustLoopback(t, Config{N: tc.n, K: tc.k, Seed: seed, Lockstep: mode.lockstep}, tc.peers)
				defer net.Close()

				srcA, srcB := tc.src(tc.n), tc.src(tc.n)
				va, vb := make([]int64, tc.n), make([]int64, tc.n)
				for s := 0; s < steps; s++ {
					srcA.Step(va)
					srcB.Step(vb)
					topSeq := seq.Observe(va)
					topNet := net.Observe(vb)
					if !equal(topSeq, topNet) {
						t.Fatalf("step %d: reports differ: seq=%v net=%v", s, topSeq, topNet)
					}
					if cs, cn := seq.Counts(), net.Counts(); cs != cn {
						t.Fatalf("step %d: counts differ: seq=%v net=%v", s, cs, cn)
					}
					if bs, bn := seq.Ledger().TotalBytes(), net.Bytes(); bs != bn {
						t.Fatalf("step %d: bytes differ: seq=%v net=%v", s, bs, bn)
					}
				}
				for _, ph := range comm.Phases() {
					if cs, cn := seq.Ledger().PhaseCounts(ph), net.Ledger().PhaseCounts(ph); cs != cn {
						t.Fatalf("phase %v counts differ: seq=%v net=%v", ph, cs, cn)
					}
					if bs, bn := seq.Ledger().PhaseBytes(ph), net.Ledger().PhaseBytes(ph); bs != bn {
						t.Fatalf("phase %v bytes differ: seq=%v net=%v", ph, bs, bn)
					}
				}
				if total := net.Bytes().Total(); total == 0 {
					t.Fatal("charged byte ledger stayed empty")
				}
				if ts := net.TransportStats(); ts.SentFrames == 0 || ts.RecvFrames == 0 || ts.SentBytes == 0 {
					t.Fatalf("transport stats empty: %+v", ts)
				}
			})
		}
	}
}

// TestReaderGatherEquivalence pins the reader-goroutine gather path
// (normally engaged only with runtime parallelism) on any machine: with
// readers forced, the pipelined engine must stay bit-identical to the
// sequential engine through violations and resets.
func TestReaderGatherEquivalence(t *testing.T) {
	forceReaders = true
	defer func() { forceReaders = false }()
	const n, k, seed, steps, peers = 20, 4, 13, 200, 4
	seq := core.New(core.Config{N: n, K: k, Seed: seed})
	net := mustLoopback(t, Config{N: n, K: k, Seed: seed}, peers)
	defer net.Close()
	src := stream.NewIID(stream.IIDConfig{N: n, Seed: 3, Dist: stream.Uniform, Lo: 0, Hi: 1 << 20})
	vals := make([]int64, n)
	for s := 0; s < steps; s++ {
		src.Step(vals)
		if !equal(seq.Observe(vals), net.Observe(vals)) {
			t.Fatalf("step %d: reports differ with forced readers", s)
		}
	}
	if cs, cn := seq.Counts(), net.Counts(); cs != cn {
		t.Fatalf("counts differ with forced readers: seq=%v net=%v", cs, cn)
	}
	if bs, bn := seq.Ledger().TotalBytes(), net.Bytes(); bs != bn {
		t.Fatalf("bytes differ with forced readers: seq=%v net=%v", bs, bn)
	}
}

// TestPipelinedFramingCoalesces pins the transport-level effect of the
// batch envelope: on a violation-heavy workload the pipelined engine must
// move strictly fewer frames than the lockstep engine for the same
// (bit-identical) run, because ResetBegin/Winner/Midpoint commands ride
// inside batched frames instead of paying one frame (and one ack frame)
// each.
func TestPipelinedFramingCoalesces(t *testing.T) {
	const n, k, seed, steps, peers = 24, 4, 19, 150, 4
	run := func(lockstep bool) (transport.LinkStats, comm.Counts) {
		e := mustLoopback(t, Config{N: n, K: k, Seed: seed, Lockstep: lockstep}, peers)
		defer e.Close()
		src := stream.NewIID(stream.IIDConfig{N: n, Seed: 5, Dist: stream.Uniform, Lo: 0, Hi: 1 << 20})
		vals := make([]int64, n)
		for s := 0; s < steps; s++ {
			src.Step(vals)
			e.Observe(vals)
		}
		return e.TransportStats(), e.Counts()
	}
	pipe, pipeCounts := run(false)
	lock, lockCounts := run(true)
	if pipeCounts != lockCounts {
		t.Fatalf("model ledgers diverged: pipelined=%v lockstep=%v", pipeCounts, lockCounts)
	}
	if pipe.SentFrames >= lock.SentFrames {
		t.Fatalf("pipelined engine did not coalesce frames: %d sent vs lockstep %d", pipe.SentFrames, lock.SentFrames)
	}
	if pipe.RecvFrames >= lock.RecvFrames {
		t.Fatalf("pipelined engine did not coalesce replies: %d received vs lockstep %d", pipe.RecvFrames, lock.RecvFrames)
	}
}

// TestDistinctValuesEquivalence exercises the host's DistinctValues
// branch (raw keys, no tie-break injection) against the sequential
// engine. Values are pairwise distinct by construction: i + 1000·aᵢ with
// residues i < n < 1000 all different.
func TestDistinctValuesEquivalence(t *testing.T) {
	const n, k, seed, steps = 11, 3, 29, 250
	seq := core.New(core.Config{N: n, K: k, Seed: seed, DistinctValues: true})
	net := mustLoopback(t, Config{N: n, K: k, Seed: seed, DistinctValues: true}, 3)
	defer net.Close()

	vals := make([]int64, n)
	for s := 0; s < steps; s++ {
		for i := range vals {
			vals[i] = int64(i) + 1000*int64((s*(i+3)+7*i)%60)
		}
		a, b := seq.Observe(vals), net.Observe(vals)
		if !equal(a, b) {
			t.Fatalf("step %d: reports differ: seq=%v net=%v", s, a, b)
		}
		if cs, cn := seq.Counts(), net.Counts(); cs != cn {
			t.Fatalf("step %d: counts differ: seq=%v net=%v", s, cs, cn)
		}
		if bs, bn := seq.Ledger().TotalBytes(), net.Bytes(); bs != bn {
			t.Fatalf("step %d: bytes differ: seq=%v net=%v", s, bs, bn)
		}
	}
}

// TestNewClosesLinksOnHandshakeFailure pins the no-leak contract: a
// failed handshake must close every link so serve loops terminate.
func TestNewClosesLinksOnHandshakeFailure(t *testing.T) {
	a, b := transport.Pipe()
	b.Close() // peer gone before the handshake
	if _, err := New(Config{N: 4, K: 2, Seed: 1}, []transport.Link{a}); err == nil {
		t.Fatal("New succeeded over a dead link")
	}
	if err := a.Send([]byte{0}); err == nil {
		t.Fatal("link still open after failed New")
	}
}

// TestDeltaEquivalence drives the sparse ingestion path against the
// sequential engine's, interleaving sparse and dense steps.
func TestDeltaEquivalence(t *testing.T) {
	const n, k, seed, steps = 16, 4, 9, 300
	seq := core.New(core.Config{N: n, K: k, Seed: seed})
	net := mustLoopback(t, Config{N: n, K: k, Seed: seed}, 3)
	defer net.Close()

	srcA := stream.NewSparseWalk(stream.SparseWalkConfig{N: n, Changed: 3, MaxStep: 500, Lo: 0, Hi: 1 << 20, Seed: 11})
	srcB := stream.NewSparseWalk(stream.SparseWalkConfig{N: n, Changed: 3, MaxStep: 500, Lo: 0, Hi: 1 << 20, Seed: 11})
	ids := make([]int, n)
	vals := make([]int64, n)
	ids2 := make([]int, n)
	vals2 := make([]int64, n)
	dense := make([]int64, n)
	for s := 0; s < steps; s++ {
		c := srcA.StepDelta(ids, vals)
		c2 := srcB.StepDelta(ids2, vals2)
		if c != c2 {
			t.Fatalf("step %d: generator divergence", s)
		}
		for j := 0; j < c; j++ {
			dense[ids[j]] = vals[j]
		}
		var topSeq, topNet []int
		if s%7 == 3 { // interleave a dense step now and then
			topSeq = seq.Observe(dense)
			topNet = net.Observe(dense)
		} else {
			topSeq = seq.ObserveDelta(ids[:c], vals[:c])
			topNet = net.ObserveDelta(ids2[:c2], vals2[:c2])
		}
		if !equal(topSeq, topNet) {
			t.Fatalf("step %d: reports differ: seq=%v net=%v", s, topSeq, topNet)
		}
		if cs, cn := seq.Counts(), net.Counts(); cs != cn {
			t.Fatalf("step %d: counts differ: seq=%v net=%v", s, cs, cn)
		}
		if bs, bn := seq.Ledger().TotalBytes(), net.Bytes(); bs != bn {
			t.Fatalf("step %d: bytes differ: seq=%v net=%v", s, bs, bn)
		}
	}
}

// TestEmptyDeltaStep: a step in which nothing changed still advances time
// and must not touch any link beyond the first initialization step.
func TestEmptyDeltaStep(t *testing.T) {
	net := mustLoopback(t, Config{N: 8, K: 2, Seed: 1}, 2)
	defer net.Close()
	net.Observe(make([]int64, 8)) // init reset
	before := net.TransportStats()
	top1 := append([]int(nil), net.ObserveDelta(nil, nil)...)
	top2 := net.ObserveDelta([]int{}, []int64{})
	if !equal(top1, top2) {
		t.Fatalf("empty steps changed the report: %v vs %v", top1, top2)
	}
	if after := net.TransportStats(); after != before {
		t.Fatalf("empty delta steps moved frames: %+v -> %+v", before, after)
	}
}

// TestTCPEngine runs the full engine over real localhost TCP links with
// in-process Serve loops on the dialing side — the two-process topology
// of `topkmon -serve` / `-join`, collapsed into one test binary — in both
// fan-out modes.
func TestTCPEngine(t *testing.T) {
	for _, mode := range modes {
		t.Run(mode.name, func(t *testing.T) { testTCPEngine(t, mode.lockstep) })
	}
}

func testTCPEngine(t *testing.T, lockstep bool) {
	const n, k, seed, steps, peers = 10, 3, 17, 120, 2
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ln, err := transport.Listen(ctx, "127.0.0.1:0")
	if err != nil {
		t.Skipf("cannot listen on loopback: %v", err)
	}
	defer ln.Close()

	serveErr := make(chan error, peers)
	for i := 0; i < peers; i++ {
		go func() {
			link, err := transport.Dial(ctx, ln.Addr())
			if err != nil {
				serveErr <- err
				return
			}
			serveErr <- Serve(link)
		}()
	}
	links, err := ln.AcceptN(peers)
	if err != nil {
		t.Fatal(err)
	}
	net, err := New(Config{N: n, K: k, Seed: seed, Lockstep: lockstep}, links)
	if err != nil {
		t.Fatal(err)
	}

	seq := core.New(core.Config{N: n, K: k, Seed: seed})
	srcA := stream.NewRandomWalk(stream.WalkConfig{N: n, Lo: 0, Hi: 1 << 16, MaxStep: 300, Seed: 23})
	srcB := stream.NewRandomWalk(stream.WalkConfig{N: n, Lo: 0, Hi: 1 << 16, MaxStep: 300, Seed: 23})
	va, vb := make([]int64, n), make([]int64, n)
	for s := 0; s < steps; s++ {
		srcA.Step(va)
		srcB.Step(vb)
		if !equal(seq.Observe(va), net.Observe(vb)) {
			t.Fatalf("step %d: reports differ over TCP", s)
		}
	}
	if cs, cn := seq.Counts(), net.Counts(); cs != cn {
		t.Fatalf("counts differ over TCP: seq=%v net=%v", cs, cn)
	}
	if bs, bn := seq.Ledger().TotalBytes(), net.Bytes(); bs != bn {
		t.Fatalf("bytes differ over TCP: seq=%v net=%v", bs, bn)
	}
	ts := net.TransportStats()
	if ts.SentBytes == 0 || ts.RecvBytes == 0 {
		t.Fatalf("no TCP traffic recorded: %+v", ts)
	}
	net.Close()
	for i := 0; i < peers; i++ {
		if err := <-serveErr; err != nil {
			t.Fatalf("peer serve loop: %v", err)
		}
	}
}

// TestCloseIdempotent double-closes and verifies post-close observes
// panic.
func TestCloseIdempotent(t *testing.T) {
	net := mustLoopback(t, Config{N: 4, K: 1, Seed: 3}, 2)
	net.Observe([]int64{4, 3, 2, 1})
	net.Close()
	net.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("Observe after Close did not panic")
		}
	}()
	net.Observe([]int64{4, 3, 2, 1})
}
