package baseline

import (
	"sort"
	"testing"

	"repro/internal/order"
	"repro/internal/stream"
)

// algorithm is the common shape of all baselines under test.
type algorithm interface {
	Observe(vals []int64) []int
}

// oracle computes the true top-k ids ascending under the shared injection.
func oracle(vals []int64, k int) []int {
	codec := order.NewCodec(len(vals))
	keys := make([]order.Key, len(vals))
	for i, v := range vals {
		keys[i] = codec.Encode(v, i)
	}
	ids := make([]int, len(vals))
	for i := range ids {
		ids[i] = i
	}
	sort.Slice(ids, func(a, b int) bool { return keys[ids[a]] > keys[ids[b]] })
	top := append([]int(nil), ids[:k]...)
	sort.Ints(top)
	return top
}

func equal(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// checkExact drives an algorithm over a source and asserts exact top-k
// reports at every step.
func checkExact(t *testing.T, alg algorithm, src stream.Source, k, steps int) {
	t.Helper()
	vals := make([]int64, src.N())
	for s := 0; s < steps; s++ {
		src.Step(vals)
		got := alg.Observe(vals)
		want := oracle(vals, k)
		if !equal(got, want) {
			t.Fatalf("step %d: got %v want %v (vals=%v)", s, got, want, vals)
		}
	}
}

func walk(n int, seed uint64) stream.Source {
	return stream.NewRandomWalk(stream.WalkConfig{N: n, Lo: 0, Hi: 100000, MaxStep: 500, Seed: seed})
}

func iid(n int, seed uint64) stream.Source {
	return stream.NewIID(stream.IIDConfig{N: n, Seed: seed, Dist: stream.Uniform, Lo: 0, Hi: 1 << 20})
}

func TestNaiveExact(t *testing.T) {
	checkExact(t, NewNaive(10, 3, false), walk(10, 1), 3, 200)
	checkExact(t, NewNaive(10, 3, true), iid(10, 2), 3, 200)
}

func TestNaiveCountsEveryValue(t *testing.T) {
	b := NewNaive(5, 2, false)
	src := walk(5, 3)
	vals := make([]int64, 5)
	for s := 0; s < 100; s++ {
		src.Step(vals)
		b.Observe(vals)
	}
	if got := b.Counts().Up; got != 500 {
		t.Fatalf("naive should send n per step: %d", got)
	}
}

func TestNaiveSendOnChange(t *testing.T) {
	b := NewNaive(4, 1, true)
	c := stream.NewConst(stream.ConstConfig{N: 4, Values: []int64{1, 2, 3, 4}})
	vals := make([]int64, 4)
	for s := 0; s < 50; s++ {
		c.Step(vals)
		b.Observe(vals)
	}
	if got := b.Counts().Up; got != 4 {
		t.Fatalf("send-on-change with constant input should send once per node: %d", got)
	}
}

func TestPerRoundExact(t *testing.T) {
	checkExact(t, NewPerRound(12, 4, 7), iid(12, 8), 4, 150)
	checkExact(t, NewPerRound(12, 1, 9), walk(12, 10), 1, 150)
}

func TestPerRoundCostIndependentOfSimilarity(t *testing.T) {
	// Per-round recomputation pays every step even on constant input.
	b := NewPerRound(16, 2, 11)
	c := stream.NewConst(stream.ConstConfig{N: 16, Values: []int64{
		1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}})
	vals := make([]int64, 16)
	for s := 0; s < 100; s++ {
		c.Step(vals)
		b.Observe(vals)
	}
	perStep := float64(b.Counts().Total()) / 100
	if perStep < 2 {
		t.Fatalf("per-round should pay Θ(k log n) per step, got %.1f", perStep)
	}
}

func TestPointFilterExact(t *testing.T) {
	checkExact(t, NewPointFilter(10, 3), walk(10, 13), 3, 200)
}

func TestPointFilterQuietOnConstInput(t *testing.T) {
	b := NewPointFilter(6, 2)
	c := stream.NewConst(stream.ConstConfig{N: 6, Values: []int64{9, 8, 7, 6, 5, 4}})
	vals := make([]int64, 6)
	for s := 0; s < 50; s++ {
		c.Step(vals)
		b.Observe(vals)
	}
	// Init: 6 up + 6 down; afterwards silent.
	if got := b.Counts().Total(); got != 12 {
		t.Fatalf("point filter on constant input: %d messages, want 12", got)
	}
}

func TestPointFilterPaysPerChange(t *testing.T) {
	b := NewPointFilter(4, 1)
	src := walk(4, 15)
	vals := make([]int64, 4)
	for s := 0; s < 100; s++ {
		src.Step(vals)
		b.Observe(vals)
	}
	// Random walk changes nearly every node every step: cost ~ 2*n*steps.
	if got := b.Counts().Total(); got < 700 {
		t.Fatalf("point filter should pay per change: %d", got)
	}
}

func TestLamMidpointExact(t *testing.T) {
	checkExact(t, NewLamMidpoint(10, 3), walk(10, 17), 3, 300)
	checkExact(t, NewLamMidpoint(8, 2), iid(8, 18), 2, 200)
}

func TestLamMidpointExactOnCrossings(t *testing.T) {
	// Swapping bands force repeated order changes through the cascade.
	src := stream.NewTwoBand(stream.TwoBandConfig{N: 12, K: 4, Seed: 19, Gap: 100000, BandWidth: 900, MaxStep: 80, SwapEvery: 25})
	checkExact(t, NewLamMidpoint(12, 4), src, 4, 300)
}

func TestLamMidpointPaysForIrrelevantCrossings(t *testing.T) {
	// Two bottom-band nodes swapping order constantly never affect the
	// top-1, yet Lam-style full-order tracking keeps paying. Algorithm 1's
	// advantage (paper §3.1) is exactly to ignore these.
	const steps = 400
	rows := make([][]int64, steps)
	for s := range rows {
		a, b := int64(100), int64(200)
		if s%2 == 1 {
			a, b = b, a
		}
		rows[s] = []int64{1000000, a, b} // node 0 is always the top-1
	}
	lam := NewLamMidpoint(3, 1)
	checkExact(t, lam, stream.NewTraceSource(rows), 1, steps)
	perStep := float64(lam.Counts().Total()) / steps
	if perStep < 1 {
		t.Fatalf("lam should pay for bottom crossings: %.2f msgs/step", perStep)
	}
}

func TestBaselinePanics(t *testing.T) {
	for i, f := range []func(){
		func() { NewNaive(0, 1, false) },
		func() { NewNaive(3, 4, false) },
		func() { NewPerRound(3, 0, 1) },
		func() { NewPointFilter(-1, 1) },
		func() { NewLamMidpoint(2, 3) },
		func() { NewNaive(3, 1, false).Observe([]int64{1, 2}) },
		func() { NewPerRound(3, 1, 1).Observe([]int64{1}) },
		func() { NewPointFilter(3, 1).Observe([]int64{1}) },
		func() { NewLamMidpoint(3, 1).Observe([]int64{1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}
