// Package baseline implements the comparison algorithms the experiments
// measure Algorithm 1 against:
//
//   - Naive: every node forwards every observation (or every change) to
//     the coordinator — the strawman from the paper's §2.1.
//   - PerRound: recompute the top-k from scratch each step with k
//     executions of MAXIMUMPROTOCOL — the "classical analysis" algorithm
//     of §2.1, optimal up to a factor k on worst-case inputs but oblivious
//     to input similarity.
//   - PointFilter: a filter-based monitor whose filters are the degenerate
//     single-point intervals, isolating the value of *wide* filters
//     (ablation E12).
//   - LamMidpoint: the neighbor-midpoint strategy adapted from Lam et
//     al.'s dominance tracking — it maintains the full order of all n
//     nodes and therefore pays for order changes that cannot affect the
//     top-k, which is exactly why the paper develops Algorithm 1 instead
//     (§3.1).
//
// Every baseline reports exact top-k sets (they are all correct; they
// differ only in communication), implements the same Observe/Counts shape
// as core.Monitor, and breaks ties by smaller node id via the shared key
// injection.
package baseline

import (
	"fmt"
	"sort"

	"repro/internal/comm"
	"repro/internal/order"
	"repro/internal/protocol"
	"repro/internal/rng"
	"repro/internal/wire"
)

// topFromKeys returns the ids of the k largest keys, ascending.
func topFromKeys(keys []order.Key, k int) []int {
	ids := make([]int, len(keys))
	for i := range ids {
		ids[i] = i
	}
	sort.Slice(ids, func(a, b int) bool { return keys[ids[a]] > keys[ids[b]] })
	top := append([]int(nil), ids[:k]...)
	sort.Ints(top)
	return top
}

func checkNK(n, k int) {
	if n <= 0 {
		panic("baseline: need n > 0")
	}
	if k < 1 || k > n {
		panic("baseline: need 1 <= k <= n")
	}
}

// Naive forwards observations to the coordinator unconditionally. With
// SendOnChange it only forwards when a node's value differs from its
// previous one — still hopeless on continuously drifting inputs.
type Naive struct {
	n, k         int
	sendOnChange bool
	codec        order.Codec
	counter      comm.Counter
	keys         []order.Key
	prev         []int64
	init         bool
}

// NewNaive constructs the naive baseline.
func NewNaive(n, k int, sendOnChange bool) *Naive {
	checkNK(n, k)
	return &Naive{
		n: n, k: k, sendOnChange: sendOnChange,
		codec: order.NewCodec(n),
		keys:  make([]order.Key, n),
		prev:  make([]int64, n),
	}
}

// Observe processes one step and returns the exact top-k ids (ascending).
func (b *Naive) Observe(vals []int64) []int {
	if len(vals) != b.n {
		panic(fmt.Sprintf("baseline: observed %d values for %d nodes", len(vals), b.n))
	}
	for i, v := range vals {
		k := b.codec.Encode(v, i)
		if !b.init || !b.sendOnChange || v != b.prev[i] {
			b.counter.RecordSized(comm.Up, 1, wire.SizeBid(i, int64(k)))
		}
		b.prev[i] = v
		b.keys[i] = k
	}
	b.init = true
	return topFromKeys(b.keys, b.k)
}

// Counts returns total message counts.
func (b *Naive) Counts() comm.Counts { return b.counter.Snapshot() }

// Bytes returns total encoded message bytes.
func (b *Naive) Bytes() comm.Bytes { return b.counter.BytesSnapshot() }

// PerRound recomputes the top-k every step with k MAXIMUMPROTOCOL
// executions (population bound n each), as sketched in the paper's §2.1.
// Expected cost is Θ(k·log n) messages per step regardless of the input.
type PerRound struct {
	n, k    int
	codec   order.Codec
	counter comm.Counter
	rngs    []*rng.RNG
	keys    []order.Key
}

// NewPerRound constructs the per-round recomputation baseline.
func NewPerRound(n, k int, seed uint64) *PerRound {
	checkNK(n, k)
	b := &PerRound{
		n: n, k: k,
		codec: order.NewCodec(n),
		rngs:  make([]*rng.RNG, n),
		keys:  make([]order.Key, n),
	}
	root := rng.New(seed, 0x9e44)
	for i := range b.rngs {
		b.rngs[i] = root.Split(uint64(i))
	}
	return b
}

// Observe processes one step and returns the exact top-k ids (ascending).
func (b *PerRound) Observe(vals []int64) []int {
	if len(vals) != b.n {
		panic(fmt.Sprintf("baseline: observed %d values for %d nodes", len(vals), b.n))
	}
	parts := make([]protocol.Participant, b.n)
	for i, v := range vals {
		b.keys[i] = b.codec.Encode(v, i)
		parts[i] = protocol.Participant{ID: i, Key: b.keys[i], RNG: b.rngs[i]}
	}
	ranked := protocol.TopExtract(parts, b.k, b.n, &b.counter, nil, 0)
	top := make([]int, len(ranked))
	for i, r := range ranked {
		top[i] = r.ID
	}
	sort.Ints(top)
	return top
}

// Counts returns total message counts.
func (b *PerRound) Counts() comm.Counts { return b.counter.Snapshot() }

// Bytes returns total encoded message bytes.
func (b *PerRound) Bytes() comm.Bytes { return b.counter.BytesSnapshot() }

// PointFilter assigns every node the degenerate filter [v, v]: any change
// is a violation, reported with one Up message and acknowledged with one
// Down message installing the new point filter. It is "filter-based" in
// the letter of Definition 2.1 but gains nothing from the formalism — the
// ablation that shows wide filters, not filters per se, carry Algorithm
// 1's savings.
type PointFilter struct {
	n, k    int
	codec   order.Codec
	counter comm.Counter
	keys    []order.Key
	init    bool
}

// NewPointFilter constructs the point-filter ablation baseline.
func NewPointFilter(n, k int) *PointFilter {
	checkNK(n, k)
	return &PointFilter{n: n, k: k, codec: order.NewCodec(n), keys: make([]order.Key, n)}
}

// Observe processes one step and returns the exact top-k ids (ascending).
func (b *PointFilter) Observe(vals []int64) []int {
	if len(vals) != b.n {
		panic(fmt.Sprintf("baseline: observed %d values for %d nodes", len(vals), b.n))
	}
	for i, v := range vals {
		k := b.codec.Encode(v, i)
		if !b.init || k != b.keys[i] {
			b.counter.RecordSized(comm.Up, 1, wire.SizeBid(i, int64(k)))                // violation report with new value
			b.counter.RecordSized(comm.Down, 1, wire.SizeBounds(i, int64(k), int64(k))) // new point filter
			b.keys[i] = k
		}
	}
	b.init = true
	return topFromKeys(b.keys, b.k)
}

// Counts returns total message counts.
func (b *PointFilter) Counts() comm.Counts { return b.counter.Snapshot() }

// Bytes returns total encoded message bytes.
func (b *PointFilter) Bytes() comm.Bytes { return b.counter.BytesSnapshot() }

// LamMidpoint adapts the neighbor-midpoint strategy of Lam et al. (online
// dominance tracking) to one dimension: the coordinator knows the last
// reported key of every node and assigns each node the interval between
// the midpoints to its sorted-order neighbors. Any neighbor crossing —
// anywhere in the order, not just at the k-th boundary — triggers reports
// and filter updates, which is why this strategy is not competitive for
// Top-k-Position Monitoring (paper §3.1).
type LamMidpoint struct {
	n, k    int
	codec   order.Codec
	counter comm.Counter
	est     []order.Key // last key reported by each node
	lo, hi  []order.Key // current filter bounds per node
	init    bool
}

// NewLamMidpoint constructs the dominance-tracking baseline.
func NewLamMidpoint(n, k int) *LamMidpoint {
	checkNK(n, k)
	return &LamMidpoint{
		n: n, k: k,
		codec: order.NewCodec(n),
		est:   make([]order.Key, n),
		lo:    make([]order.Key, n),
		hi:    make([]order.Key, n),
	}
}

// Observe processes one step and returns the exact top-k ids (ascending).
func (b *LamMidpoint) Observe(vals []int64) []int {
	if len(vals) != b.n {
		panic(fmt.Sprintf("baseline: observed %d values for %d nodes", len(vals), b.n))
	}
	cur := make([]order.Key, b.n)
	for i, v := range vals {
		cur[i] = b.codec.Encode(v, i)
	}
	if !b.init {
		// Initialization: everyone reports once, filters installed.
		copy(b.est, cur)
		for i, k := range cur {
			b.counter.RecordSized(comm.Up, 1, wire.SizeBid(i, int64(k)))
		}
		b.assignFilters()
		b.init = true
		return topFromKeys(b.est, b.k)
	}
	// Violation cascade. Reassigning a midpoint filter can strand a
	// non-violating node outside its *new* interval; the model allows a
	// full protocol between observations, so those nodes report in turn
	// until the assignment stabilizes. A node whose estimate equals its
	// current key always contains itself, so each node reports at most
	// once per step and the cascade terminates.
	for {
		changed := false
		for i, k := range cur {
			if k < b.lo[i] || k > b.hi[i] {
				b.est[i] = k
				b.counter.RecordSized(comm.Up, 1, wire.SizeBid(i, int64(k))) // report new value
				changed = true
			}
		}
		if !changed {
			break
		}
		b.assignFilters()
	}
	return topFromKeys(b.est, b.k)
}

// assignFilters recomputes the neighbor-midpoint filters from est and
// charges one Down message per node whose filter actually changed.
func (b *LamMidpoint) assignFilters() {
	ids := make([]int, b.n)
	for i := range ids {
		ids[i] = i
	}
	sort.Slice(ids, func(a, c int) bool { return b.est[ids[a]] < b.est[ids[c]] })
	for pos, id := range ids {
		lo, hi := order.NegInf, order.PosInf
		if pos > 0 {
			lo = order.Midpoint(b.est[ids[pos-1]], b.est[id])
		}
		if pos < b.n-1 {
			// Keep neighbor intervals disjoint up to the shared boundary.
			hi = order.Midpoint(b.est[id], b.est[ids[pos+1]])
		}
		if lo != b.lo[id] || hi != b.hi[id] {
			b.lo[id], b.hi[id] = lo, hi
			b.counter.RecordSized(comm.Down, 1, wire.SizeBounds(id, int64(lo), int64(hi)))
		}
	}
}

// Counts returns total message counts.
func (b *LamMidpoint) Counts() comm.Counts { return b.counter.Snapshot() }

// Bytes returns total encoded message bytes.
func (b *LamMidpoint) Bytes() comm.Bytes { return b.counter.BytesSnapshot() }
