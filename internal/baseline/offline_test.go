package baseline

import (
	"testing"
	"testing/quick"

	"repro/internal/order"
	"repro/internal/rng"
	"repro/internal/stream"
)

// keysFromValues applies the shared injection.
func keysFromValues(vals [][]int64) [][]order.Key {
	codec := order.NewCodec(len(vals[0]))
	keys := make([][]order.Key, len(vals))
	for t, row := range vals {
		keys[t] = make([]order.Key, len(row))
		for i, v := range row {
			keys[t][i] = codec.Encode(v, i)
		}
	}
	return keys
}

func TestOptConstantInputSingleSegment(t *testing.T) {
	vals := make([][]int64, 50)
	for i := range vals {
		vals[i] = []int64{10, 20, 30, 40}
	}
	res := OptFromValues(vals, 2)
	if res.Segments != 1 {
		t.Fatalf("constant input needs 1 segment, got %d", res.Segments)
	}
	if len(res.Starts) != 1 || res.Starts[0] != 0 {
		t.Fatalf("starts: %v", res.Starts)
	}
}

func TestOptTopChangeForcesSegment(t *testing.T) {
	// Top-1 alternates between nodes 0 and 1 every step: a new segment is
	// unavoidable at every step.
	const steps = 10
	vals := make([][]int64, steps)
	for s := range vals {
		if s%2 == 0 {
			vals[s] = []int64{100, 50}
		} else {
			vals[s] = []int64{50, 100}
		}
	}
	res := OptFromValues(vals, 1)
	if res.Segments != steps {
		t.Fatalf("alternating top-1 needs %d segments, got %d", steps, res.Segments)
	}
}

func TestOptCrossingWithoutSetChange(t *testing.T) {
	// The top-k SET never changes, but the k-th/(k+1)-st values cross in
	// time: T+ dips below a later T−, forcing a cut even with a constant
	// set. Window [t0,t1] with top {0}: node 0 dips to 60 at t=1, node 1
	// rises to 70 at t=2 — no single boundary separates them over the
	// whole window.
	vals := [][]int64{
		{100, 50},
		{60, 50},
		{100, 70},
		{100, 70},
	}
	res := OptFromValues(vals, 1)
	if res.Segments != 2 {
		t.Fatalf("temporal crossing should force 2 segments, got %d", res.Segments)
	}
}

func TestOptKEqualsN(t *testing.T) {
	vals := make([][]int64, 20)
	for s := range vals {
		vals[s] = []int64{int64(s), int64(100 - s), int64(3 * s)}
	}
	res := OptFromValues(vals, 3)
	if res.Segments != 1 {
		t.Fatalf("k=n is always one segment, got %d", res.Segments)
	}
}

func TestOptCostModels(t *testing.T) {
	r := OptResult{Segments: 5}
	if r.FilterUpdates() != 5 {
		t.Fatalf("FilterUpdates: %d", r.FilterUpdates())
	}
	if r.RealisticMessages(3) != 25 {
		t.Fatalf("RealisticMessages: %d", r.RealisticMessages(3))
	}
}

func TestOptPanics(t *testing.T) {
	for i, f := range []func(){
		func() { Opt(nil, 1) },
		func() { Opt([][]order.Key{{1, 2}}, 0) },
		func() { Opt([][]order.Key{{1, 2}}, 3) },
		func() { OptFromValues(nil, 1) },
		func() { OptExact(nil, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestOptGreedyMatchesExactDP(t *testing.T) {
	// Property: greedy furthest-extension equals the exact DP optimum on
	// random small instances, for all k.
	r := rng.New(4242, 0)
	check := func(nRaw, tRaw, kRaw uint8) bool {
		n := int(nRaw%5) + 2
		steps := int(tRaw%15) + 1
		k := int(kRaw)%n + 1
		vals := make([][]int64, steps)
		cur := make([]int64, n)
		for i := range cur {
			cur[i] = r.Int63n(100)
		}
		for s := range vals {
			vals[s] = make([]int64, n)
			for i := range cur {
				cur[i] += r.Int63n(21) - 10
			}
			copy(vals[s], cur)
		}
		keys := keysFromValues(vals)
		return Opt(keys, k).Segments == OptExact(keys, k)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestOptSegmentsMonotoneInVolatility(t *testing.T) {
	// More volatile walks need at least as many segments, statistically.
	mk := func(step int64) int {
		src := stream.NewRandomWalk(stream.WalkConfig{N: 8, Lo: 0, Hi: 10000, MaxStep: step, Seed: 99})
		return OptFromValues(stream.Collect(src, 300), 2).Segments
	}
	calm, wild := mk(5), mk(2000)
	if calm > wild {
		t.Fatalf("calm walk (%d segments) should need <= wild walk (%d)", calm, wild)
	}
	if wild < 5 {
		t.Fatalf("wild walk should need several segments: %d", wild)
	}
}

func TestOptStartsAreSorted(t *testing.T) {
	src := stream.NewIID(stream.IIDConfig{N: 6, Seed: 5, Dist: stream.Uniform, Lo: 0, Hi: 1000})
	res := OptFromValues(stream.Collect(src, 100), 2)
	for i := 1; i < len(res.Starts); i++ {
		if res.Starts[i] <= res.Starts[i-1] {
			t.Fatalf("starts not increasing: %v", res.Starts)
		}
	}
	if len(res.Starts) != res.Segments {
		t.Fatalf("starts/segments mismatch: %d vs %d", len(res.Starts), res.Segments)
	}
}

func TestOptSegmentsFeasible(t *testing.T) {
	// Each greedy segment must itself satisfy the window condition.
	src := stream.NewBursty(stream.BurstyConfig{N: 7, Seed: 6, Lo: 0, Hi: 1 << 16, Noise: 10, BurstProb: 0.1, BurstMax: 10000})
	vals := stream.Collect(src, 200)
	keys := keysFromValues(vals)
	res := Opt(keys, 3)
	for si, start := range res.Starts {
		end := len(keys)
		if si+1 < len(res.Starts) {
			end = res.Starts[si+1]
		}
		inTop := topSet(keys[start], 3)
		tPlus, tMinus := order.PosInf, order.NegInf
		for t0 := start; t0 < end; t0++ {
			p, m := sideExtrema(keys[t0], inTop)
			tPlus = order.Min(tPlus, p)
			tMinus = order.Max(tMinus, m)
		}
		if tPlus < tMinus {
			t.Fatalf("segment %d [%d,%d) infeasible", si, start, end)
		}
	}
}
