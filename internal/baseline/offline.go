package baseline

import (
	"sort"

	"repro/internal/order"
)

// OptResult describes the optimal offline filter-setting schedule.
type OptResult struct {
	// Segments is the minimum number of filter assignments an offline
	// algorithm needs: time is partitioned into that many maximal windows,
	// each admitting one fixed valid filter set (constant top-k set and
	// T+ >= T− over the window, per Lemma 3.2 in both directions).
	Segments int
	// Starts lists the first time step of each segment; Starts[0] == 0.
	Starts []int
}

// FilterUpdates is the conservative cost the competitive-ratio experiments
// charge OPT: one message per filter assignment. The paper's analysis
// lower-bounds OPT exactly by its number of filter updates.
func (r OptResult) FilterUpdates() int { return r.Segments }

// RealisticMessages charges OPT a plausible real cost per assignment: one
// broadcast announcing the new midpoint/membership plus one unicast to
// each node that changes side, approximated by its worst case k+1. It is
// reported alongside the conservative bound in tables.
func (r OptResult) RealisticMessages(k int) int { return r.Segments * (k + 2) }

// Opt computes the minimum-segment offline schedule for the given key
// matrix (keys[t][i] is node i's key at step t, all keys at one step
// pairwise distinct) and top-set size k. It runs the greedy
// furthest-extension sweep, which is optimal for this interval-partition
// problem because window feasibility is closed under shrinking: if a
// window admits a fixed valid filter set, so does every sub-window, and
// the standard exchange argument applies. The property test in this
// package cross-checks the greedy against an exact dynamic program on
// small instances.
//
// Feasibility of a window [a, b] with top set S = top-k(a) requires
// min over t in [a,b], i in S of keys[t][i]  >=  max over t, j not in S,
// which simultaneously forces top-k(t) == S throughout the window.
func Opt(keys [][]order.Key, k int) OptResult {
	t := len(keys)
	if t == 0 {
		panic("baseline: Opt on empty horizon")
	}
	n := len(keys[0])
	if k < 1 || k > n {
		panic("baseline: Opt needs 1 <= k <= n")
	}
	res := OptResult{}
	for start := 0; start < t; {
		res.Segments++
		res.Starts = append(res.Starts, start)
		inTop := topSet(keys[start], k)
		tPlus, tMinus := sideExtrema(keys[start], inTop)
		end := start + 1
		for end < t {
			p, m := sideExtrema(keys[end], inTop)
			tPlus = order.Min(tPlus, p)
			tMinus = order.Max(tMinus, m)
			if tPlus < tMinus {
				break
			}
			end++
		}
		start = end
	}
	return res
}

// OptFromValues applies the shared tie-break injection before running Opt,
// so offline and online algorithms rank nodes identically.
func OptFromValues(vals [][]int64, k int) OptResult {
	if len(vals) == 0 {
		panic("baseline: OptFromValues on empty horizon")
	}
	codec := order.NewCodec(len(vals[0]))
	keys := make([][]order.Key, len(vals))
	for t, row := range vals {
		keys[t] = make([]order.Key, len(row))
		for i, v := range row {
			keys[t][i] = codec.Encode(v, i)
		}
	}
	return Opt(keys, k)
}

// topSet returns membership flags of the k largest keys.
func topSet(row []order.Key, k int) []bool {
	ids := make([]int, len(row))
	for i := range ids {
		ids[i] = i
	}
	sort.Slice(ids, func(a, b int) bool { return row[ids[a]] > row[ids[b]] })
	in := make([]bool, len(row))
	for _, id := range ids[:k] {
		in[id] = true
	}
	return in
}

// sideExtrema returns (min over top side, max over outside). An empty
// outside (k == n) yields order.NegInf for the max, making every window
// feasible.
func sideExtrema(row []order.Key, inTop []bool) (tPlus, tMinus order.Key) {
	tPlus, tMinus = order.PosInf, order.NegInf
	for i, k := range row {
		if inTop[i] {
			tPlus = order.Min(tPlus, k)
		} else {
			tMinus = order.Max(tMinus, k)
		}
	}
	return tPlus, tMinus
}

// OptExact computes the same minimum by dynamic programming in O(T^2 · n)
// time. It exists to validate the greedy; experiments use Opt.
func OptExact(keys [][]order.Key, k int) int {
	t := len(keys)
	if t == 0 {
		panic("baseline: OptExact on empty horizon")
	}
	// feasibleFrom[a] = largest b such that window [a, b] is feasible.
	feasibleFrom := make([]int, t)
	for a := 0; a < t; a++ {
		inTop := topSet(keys[a], k)
		tPlus, tMinus := sideExtrema(keys[a], inTop)
		b := a
		for b+1 < t {
			p, m := sideExtrema(keys[b+1], inTop)
			np, nm := order.Min(tPlus, p), order.Max(tMinus, m)
			if np < nm {
				break
			}
			tPlus, tMinus = np, nm
			b++
		}
		feasibleFrom[a] = b
	}
	// dp[a] = min segments covering [a, T).
	dp := make([]int, t+1)
	dp[t] = 0
	for a := t - 1; a >= 0; a-- {
		best := 1 + dp[a+1]
		for b := a + 1; b <= feasibleFrom[a]; b++ {
			if cand := 1 + dp[b+1]; cand < best {
				best = cand
			}
		}
		dp[a] = best
	}
	return dp[0]
}
