package ckpt

import (
	"errors"
	"sync"
)

// ErrKilled reports a write refused by a Faulty store that has reached
// its planned failure: the simulated coordinator crash is in effect and,
// fail-stop, every later write is refused too.
var ErrKilled = errors.New("ckpt: faulty store killed at planned write")

// FaultPlan schedules one injected storage failure, mirroring
// transport.FaultPlan: indices are 1-based counts of Save calls, zero
// disables the fault.
type FaultPlan struct {
	// KillAt is the Save call that fails. The store is fail-stop: the
	// failing Save and every Save after it return ErrKilled.
	KillAt int64
	// TornBytes persists that many leading bytes of the failing frame to
	// the inner store before failing — a write torn exactly at the crash
	// that still reached the medium. Zero persists nothing.
	TornBytes int
}

// Faulty wraps a Store and injects the planned failure, driving the
// crash-restart chaos suites: kill the coordinator mid-checkpoint (with
// or without a torn frame on the medium) and assert the restore path
// falls back to the last intact generation.
type Faulty struct {
	mu     sync.Mutex
	inner  Store
	plan   FaultPlan
	saves  int64
	killed bool
}

// NewFaulty wraps inner with plan.
func NewFaulty(inner Store, plan FaultPlan) *Faulty {
	return &Faulty{inner: inner, plan: plan}
}

// Save counts the call against the plan: before the planned kill it
// delegates, at the kill it optionally persists the torn prefix and
// fails, after it it keeps failing.
func (s *Faulty) Save(gen uint64, frame []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.killed {
		return ErrKilled
	}
	s.saves++
	if s.plan.KillAt > 0 && s.saves == s.plan.KillAt {
		s.killed = true
		if s.plan.TornBytes > 0 {
			n := min(s.plan.TornBytes, len(frame))
			// The torn prefix reaches the medium exactly as a real crash
			// mid-write would leave it; Load's validation must reject it.
			_ = s.inner.Save(gen, frame[:n])
		}
		return ErrKilled
	}
	return s.inner.Save(gen, frame)
}

// Load delegates to the inner store: the restore path after the simulated
// crash reads whatever the medium really holds.
func (s *Faulty) Load() (uint64, []byte, error) { return s.inner.Load() }

// Killed reports whether the planned failure has fired.
func (s *Faulty) Killed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.killed
}
