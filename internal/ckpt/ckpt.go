// Package ckpt stores durable coordinator checkpoints: sealed
// wire.Checkpoint frames written by the engines' Snapshot paths and read
// back by topk.Restore after a coordinator process crash.
//
// # Store contract
//
// A Store holds generation-numbered frames. Save must be atomic at the
// frame level — a reader never observes a half-written generation as that
// generation's content — and should retain a few older generations so a
// frame torn exactly at the crash falls back instead of losing the
// execution. Load returns the newest frame that passes envelope
// validation (intact CRC-32, matching generation number); it never
// returns bytes it has not validated, so a restore can only ever start
// from a frame that was written completely.
//
// Frames are validated with the wire.Checkpoint decoder: the CRC-32
// trailer rejects torn and bit-rotted frames, and a frame whose embedded
// generation disagrees with the generation it is filed under is stale
// (renamed, copied, or replayed) and equally rejected. Both surface as
// ErrCorrupt, never as a silent restore; a store with no frame at all
// reports ErrNoCheckpoint so callers can tell "fresh start" from
// "checkpoints exist but none are usable".
//
// Two backends ship here — Mem for tests and single-process use, File for
// crash-durable storage via write-temp + fsync + rename — plus Faulty, a
// fault-injecting wrapper that kills the store at a planned write to
// drive crash-restart chaos suites.
package ckpt

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/wire"
)

// Store is a durable checkpoint store. Implementations must be safe for
// concurrent use.
type Store interface {
	// Save files frame under generation gen, atomically and durably.
	Save(gen uint64, frame []byte) error
	// Load returns the newest stored frame that validates, with its
	// generation. It returns ErrNoCheckpoint when the store holds no
	// frame at all, and an ErrCorrupt-wrapping error when frames exist
	// but none validates.
	Load() (gen uint64, frame []byte, err error)
}

var (
	// ErrNoCheckpoint reports a store that holds no checkpoint frames.
	ErrNoCheckpoint = errors.New("ckpt: no checkpoint")
	// ErrCorrupt reports a checkpoint frame that failed validation: torn
	// mid-write, corrupted at rest, or filed under the wrong generation.
	// Corrupt frames are rejected, never restored.
	ErrCorrupt = errors.New("ckpt: corrupt checkpoint frame")
)

// keepGenerations bounds how many generations a backend retains: enough
// that a frame torn at the crash always leaves an intact predecessor,
// small enough that checkpoint storage stays O(1) over a long run.
const keepGenerations = 8

// validate decodes frame as a sealed checkpoint envelope filed under gen
// and reports an ErrCorrupt-wrapping error if anything is off.
func validate(gen uint64, frame []byte) error {
	var c wire.Checkpoint
	if err := c.Decode(frame); err != nil {
		return fmt.Errorf("%w: generation %d: %v", ErrCorrupt, gen, err)
	}
	if c.Gen != gen {
		return fmt.Errorf("%w: frame says generation %d, filed under %d", ErrCorrupt, c.Gen, gen)
	}
	return nil
}

// Mem is an in-memory Store: the newest keepGenerations frames, copied on
// Save and validated on Load. It is the test backend and the natural
// choice when durability across process restarts is handled elsewhere.
type Mem struct {
	mu     sync.Mutex
	gens   []uint64 // ascending
	frames [][]byte // parallel to gens
}

// NewMem returns an empty in-memory store.
func NewMem() *Mem { return &Mem{} }

// Save files a copy of frame under gen, replacing any frame already filed
// there and dropping generations beyond the retention bound.
func (m *Mem) Save(gen uint64, frame []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	cp := append([]byte(nil), frame...)
	for i, g := range m.gens {
		if g == gen {
			m.frames[i] = cp
			return nil
		}
	}
	m.gens = append(m.gens, gen)
	m.frames = append(m.frames, cp)
	for i := len(m.gens) - 1; i > 0 && m.gens[i] < m.gens[i-1]; i-- {
		m.gens[i], m.gens[i-1] = m.gens[i-1], m.gens[i]
		m.frames[i], m.frames[i-1] = m.frames[i-1], m.frames[i]
	}
	if len(m.gens) > keepGenerations {
		drop := len(m.gens) - keepGenerations
		m.gens = append(m.gens[:0], m.gens[drop:]...)
		m.frames = append(m.frames[:0], m.frames[drop:]...)
	}
	return nil
}

// Load returns a copy of the newest frame that validates.
func (m *Mem) Load() (uint64, []byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.gens) == 0 {
		return 0, nil, ErrNoCheckpoint
	}
	var firstErr error
	for i := len(m.gens) - 1; i >= 0; i-- {
		if err := validate(m.gens[i], m.frames[i]); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		return m.gens[i], append([]byte(nil), m.frames[i]...), nil
	}
	return 0, nil, firstErr
}
