package ckpt

import (
	"bytes"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/wire"
)

// frameFor builds a minimal sealed checkpoint frame for generation gen.
func frameFor(gen uint64) []byte {
	return wire.Checkpoint{Gen: gen, Engine: wire.EngineSeq, Seed: 7, Machine: []byte{1, 2, 3}}.Append(nil)
}

func TestMemStore(t *testing.T) {
	s := NewMem()
	if _, _, err := s.Load(); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("empty Load: %v, want ErrNoCheckpoint", err)
	}
	for gen := uint64(1); gen <= 3; gen++ {
		if err := s.Save(gen, frameFor(gen)); err != nil {
			t.Fatalf("Save(%d): %v", gen, err)
		}
	}
	gen, frame, err := s.Load()
	if err != nil || gen != 3 {
		t.Fatalf("Load = gen %d, err %v; want gen 3", gen, err)
	}
	if !bytes.Equal(frame, frameFor(3)) {
		t.Fatal("Load returned a different frame than saved")
	}
	// Saves arriving out of order still resolve to the numerically newest.
	if err := s.Save(2, frameFor(2)); err != nil {
		t.Fatalf("re-Save(2): %v", err)
	}
	if gen, _, _ := s.Load(); gen != 3 {
		t.Fatalf("after out-of-order save, Load = gen %d, want 3", gen)
	}
	// A corrupt newest frame falls back to the previous generation.
	if err := s.Save(4, frameFor(4)[:5]); err != nil {
		t.Fatalf("Save(torn): %v", err)
	}
	if gen, _, err := s.Load(); err != nil || gen != 3 {
		t.Fatalf("torn newest: Load = gen %d, err %v; want fallback to 3", gen, err)
	}
}

func TestMemStoreRetention(t *testing.T) {
	s := NewMem()
	for gen := uint64(1); gen <= 2*keepGenerations; gen++ {
		if err := s.Save(gen, frameFor(gen)); err != nil {
			t.Fatalf("Save(%d): %v", gen, err)
		}
	}
	if len(s.gens) != keepGenerations {
		t.Fatalf("retained %d generations, want %d", len(s.gens), keepGenerations)
	}
	if gen, _, err := s.Load(); err != nil || gen != 2*keepGenerations {
		t.Fatalf("Load = gen %d, err %v", gen, err)
	}
}

func TestFileStore(t *testing.T) {
	dir := t.TempDir()
	s, err := NewFile(filepath.Join(dir, "ckpts"))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Load(); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("empty Load: %v, want ErrNoCheckpoint", err)
	}
	for gen := uint64(1); gen <= 3; gen++ {
		if err := s.Save(gen, frameFor(gen)); err != nil {
			t.Fatalf("Save(%d): %v", gen, err)
		}
	}
	// A fresh store over the same directory — the crash-restart path —
	// sees the same newest frame.
	s2, err := NewFile(s.Dir())
	if err != nil {
		t.Fatal(err)
	}
	gen, frame, err := s2.Load()
	if err != nil || gen != 3 || !bytes.Equal(frame, frameFor(3)) {
		t.Fatalf("reopened Load = gen %d, err %v", gen, err)
	}
}

func TestFileStoreRetention(t *testing.T) {
	s, err := NewFile(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for gen := uint64(1); gen <= keepGenerations+5; gen++ {
		if err := s.Save(gen, frameFor(gen)); err != nil {
			t.Fatalf("Save(%d): %v", gen, err)
		}
	}
	gens, err := s.generations()
	if err != nil {
		t.Fatal(err)
	}
	if len(gens) != keepGenerations {
		t.Fatalf("retained %d generations, want %d", len(gens), keepGenerations)
	}
	if gens[len(gens)-1] != keepGenerations+5 {
		t.Fatalf("newest retained generation %d, want %d", gens[len(gens)-1], keepGenerations+5)
	}
}

func TestFileStoreTornAndStaleFrames(t *testing.T) {
	s, err := NewFile(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Save(1, frameFor(1)); err != nil {
		t.Fatal(err)
	}
	// Generation 2 is torn mid-write: a truncated frame under the final
	// name (as a non-atomic filesystem could leave it).
	if err := os.WriteFile(filepath.Join(s.Dir(), frameName(2)), frameFor(2)[:4], 0o644); err != nil {
		t.Fatal(err)
	}
	// Generation 3 is stale: a valid frame misfiled from generation 1.
	if err := os.WriteFile(filepath.Join(s.Dir(), frameName(3)), frameFor(1), 0o644); err != nil {
		t.Fatal(err)
	}
	gen, frame, err := s.Load()
	if err != nil || gen != 1 || !bytes.Equal(frame, frameFor(1)) {
		t.Fatalf("Load = gen %d, err %v; want fallback to intact generation 1", gen, err)
	}
	// With the only intact frame gone, corruption surfaces as ErrCorrupt,
	// never a silent restore.
	if err := os.Remove(filepath.Join(s.Dir(), frameName(1))); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Load(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("all-corrupt Load: %v, want ErrCorrupt", err)
	}
}

// TestFileStoreLatestValidProperty drives seeded random schedules of
// intact and torn writes and asserts Load always selects exactly the
// newest intact generation — the property the crash-restart path relies
// on.
func TestFileStoreLatestValidProperty(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		s, err := NewFile(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		wantGen := uint64(0)
		n := 3 + rng.Intn(keepGenerations-1) // stay within retention
		for gen := uint64(1); gen <= uint64(n); gen++ {
			frame := frameFor(gen)
			switch rng.Intn(3) {
			case 0: // intact write
				if err := s.Save(gen, frame); err != nil {
					t.Fatalf("seed %d: Save(%d): %v", seed, gen, err)
				}
				wantGen = gen
			case 1: // torn write under the final name
				if err := os.WriteFile(filepath.Join(s.Dir(), frameName(gen)), frame[:1+rng.Intn(len(frame)-1)], 0o644); err != nil {
					t.Fatal(err)
				}
			case 2: // bit flip at rest
				mut := append([]byte(nil), frame...)
				mut[rng.Intn(len(mut))] ^= byte(1 << rng.Intn(8))
				if err := os.WriteFile(filepath.Join(s.Dir(), frameName(gen)), mut, 0o644); err != nil {
					t.Fatal(err)
				}
			}
		}
		gen, frame, err := s.Load()
		switch {
		case wantGen == 0:
			if err == nil {
				t.Fatalf("seed %d: no intact generation, but Load returned gen %d", seed, gen)
			}
		case err != nil:
			t.Fatalf("seed %d: Load: %v (want gen %d)", seed, err, wantGen)
		case gen != wantGen || !bytes.Equal(frame, frameFor(wantGen)):
			t.Fatalf("seed %d: Load = gen %d, want newest intact %d", seed, gen, wantGen)
		}
	}
}

func TestFaultyStore(t *testing.T) {
	inner := NewMem()
	s := NewFaulty(inner, FaultPlan{KillAt: 2})
	if err := s.Save(1, frameFor(1)); err != nil {
		t.Fatalf("Save before the kill: %v", err)
	}
	if err := s.Save(2, frameFor(2)); !errors.Is(err, ErrKilled) {
		t.Fatalf("planned kill: %v, want ErrKilled", err)
	}
	if !s.Killed() {
		t.Fatal("Killed() = false after the planned kill")
	}
	// Fail-stop: later writes keep failing.
	if err := s.Save(3, frameFor(3)); !errors.Is(err, ErrKilled) {
		t.Fatalf("post-kill Save: %v, want ErrKilled", err)
	}
	// Nothing of generation 2 reached the medium.
	if gen, _, err := s.Load(); err != nil || gen != 1 {
		t.Fatalf("Load = gen %d, err %v; want 1", gen, err)
	}
}

func TestFaultyStoreTornWrite(t *testing.T) {
	inner := NewMem()
	s := NewFaulty(inner, FaultPlan{KillAt: 2, TornBytes: 6})
	if err := s.Save(1, frameFor(1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Save(2, frameFor(2)); !errors.Is(err, ErrKilled) {
		t.Fatalf("planned kill: %v, want ErrKilled", err)
	}
	// The torn prefix reached the medium but must never be restored:
	// Load falls back to the intact generation 1.
	if gen, frame, err := s.Load(); err != nil || gen != 1 || !bytes.Equal(frame, frameFor(1)) {
		t.Fatalf("Load = gen %d, err %v; want intact generation 1", gen, err)
	}
}
