package ckpt

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// File is a crash-durable Store backed by one file per generation in a
// directory. Save writes a temporary file, fsyncs it, renames it to its
// generation-numbered name and fsyncs the directory, so a crash at any
// instant leaves either the complete new frame or the previous state —
// never a half-frame under a final name (on a filesystem that honors the
// rename contract; Load's validation catches the ones that don't). Older
// generations are retained up to the package retention bound, so a frame
// corrupted in place falls back instead of losing the run.
type File struct {
	mu  sync.Mutex
	dir string
}

// framePrefix/frameSuffix shape the per-generation file names:
// ckpt-<generation as 16 hex digits>.bin.
const (
	framePrefix = "ckpt-"
	frameSuffix = ".bin"
	genDigits   = 16
)

// NewFile opens (creating if needed) a directory-backed store.
func NewFile(dir string) (*File, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &File{dir: dir}, nil
}

// Dir returns the backing directory.
func (f *File) Dir() string { return f.dir }

// frameName returns the final file name of generation gen.
func frameName(gen uint64) string {
	return framePrefix + fmt.Sprintf("%0*x", genDigits, gen) + frameSuffix
}

// parseFrameName extracts the generation from a frame file name.
func parseFrameName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, framePrefix) || !strings.HasSuffix(name, frameSuffix) {
		return 0, false
	}
	hex := strings.TrimSuffix(strings.TrimPrefix(name, framePrefix), frameSuffix)
	if len(hex) != genDigits {
		return 0, false
	}
	gen, err := strconv.ParseUint(hex, 16, 64)
	if err != nil {
		return 0, false
	}
	return gen, true
}

// Save writes frame under generation gen: temp file, fsync, rename,
// directory fsync, then best-effort pruning of generations beyond the
// retention bound.
func (f *File) Save(gen uint64, frame []byte) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	final := filepath.Join(f.dir, frameName(gen))
	tmp := final + ".tmp"
	w, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := w.Write(frame); err != nil {
		w.Close()
		os.Remove(tmp)
		return err
	}
	if err := w.Sync(); err != nil {
		w.Close()
		os.Remove(tmp)
		return err
	}
	if err := w.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return err
	}
	if d, err := os.Open(f.dir); err == nil {
		_ = d.Sync() // directory entry durability; best effort on filesystems without it
		d.Close()
	}
	f.prune()
	return nil
}

// prune removes the oldest generations beyond the retention bound and any
// stray temp files older than the newest frame. Best effort: pruning
// failures never fail a Save.
func (f *File) prune() {
	gens, _ := f.generations()
	if len(gens) <= keepGenerations {
		return
	}
	for _, gen := range gens[:len(gens)-keepGenerations] {
		_ = os.Remove(filepath.Join(f.dir, frameName(gen)))
	}
}

// generations lists the stored generations in ascending order.
func (f *File) generations() ([]uint64, error) {
	entries, err := os.ReadDir(f.dir)
	if err != nil {
		return nil, err
	}
	var gens []uint64
	for _, e := range entries {
		if gen, ok := parseFrameName(e.Name()); ok {
			gens = append(gens, gen)
		}
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i] < gens[j] })
	return gens, nil
}

// Load returns the newest stored frame that validates, skipping torn,
// corrupt, or misfiled frames. With frames present but none valid it
// reports the newest frame's validation error (wrapping ErrCorrupt);
// with no frames at all, ErrNoCheckpoint.
func (f *File) Load() (uint64, []byte, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	gens, err := f.generations()
	if err != nil {
		return 0, nil, err
	}
	if len(gens) == 0 {
		return 0, nil, ErrNoCheckpoint
	}
	var firstErr error
	for i := len(gens) - 1; i >= 0; i-- {
		frame, err := os.ReadFile(filepath.Join(f.dir, frameName(gens[i])))
		if err == nil {
			err = validate(gens[i], frame)
		}
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		return gens[i], frame, nil
	}
	return 0, nil, firstErr
}
