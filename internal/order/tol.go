package order

import (
	"fmt"
	"math/bits"
)

// TolShift is the fixed-point resolution of a Tol: a tolerance ε is
// stored as floor(ε·2^TolShift), so configured tolerances are quantized
// to multiples of 2^-20 ≈ 1e-6. Integer fixed-point (rather than float)
// keeps the band arithmetic exactly monotone over the whole key domain,
// which the approximation-validity argument relies on.
const TolShift = 20

// MaxDistinctValue is the largest observation magnitude representable in
// DistinctValues mode, where keys are the raw values: ±MaxInt64 and
// MinInt64 collide with the PosInf/NegInf sentinels and are rejected.
const MaxDistinctValue int64 = 1<<63 - 2

// Tol is a relative tolerance ε ∈ [0, 1) over the key domain, in exact
// fixed-point form. The zero value means ε = 0 (exact monitoring) and is
// ready to use.
//
// For a key x with magnitude |x|, Band(x) = floor(ε·|x|) is the absolute
// half-width of the (1±ε) band around x; WidenLo/WidenHi move x to the
// band's ends, saturating at the infinities. Both are non-decreasing in
// x (for ε < 1 the band grows by at most one per key step), which makes
// band membership a threshold predicate the Witness search below can
// binary-search over.
type Tol struct {
	num uint64 // floor(ε·2^TolShift), < 2^TolShift
}

// NewTol validates ε and returns its fixed-point form. NaN, negative and
// ≥ 1 tolerances are rejected.
func NewTol(eps float64) (Tol, error) {
	if !(eps >= 0) || eps >= 1 {
		return Tol{}, fmt.Errorf("order: tolerance must satisfy 0 <= eps < 1, got %v", eps)
	}
	return Tol{num: uint64(eps * (1 << TolShift))}, nil
}

// TolFromNum rebuilds a Tol from its wire form (the fixed-point
// numerator carried in wire.Assign).
func TolFromNum(num uint64) (Tol, error) {
	if num >= 1<<TolShift {
		return Tol{}, fmt.Errorf("order: tolerance numerator %d out of range", num)
	}
	return Tol{num: num}, nil
}

// Num returns the fixed-point numerator (the wire form).
func (t Tol) Num() uint64 { return t.num }

// Eps returns the effective tolerance as a float.
func (t Tol) Eps() float64 { return float64(t.num) / (1 << TolShift) }

// Zero reports whether the tolerance is exactly zero (exact monitoring).
func (t Tol) Zero() bool { return t.num == 0 }

// Band returns floor(ε·|k|), the absolute half-width of the tolerance
// band around k. Sentinels have no band.
func (t Tol) Band(k Key) int64 {
	if t.num == 0 || k == NegInf || k == PosInf {
		return 0
	}
	mag := uint64(k)
	if k < 0 {
		mag = -mag
	}
	hi, lo := bits.Mul64(mag, t.num)
	return int64(hi<<(64-TolShift) | lo>>TolShift)
}

// WidenHi returns the upper end k + Band(k) of the band around k,
// saturating at PosInf. It is non-decreasing in k and the identity at
// ε = 0 and on the sentinels.
func (t Tol) WidenHi(k Key) Key {
	if t.num == 0 || k == NegInf || k == PosInf {
		return k
	}
	b := Key(t.Band(k))
	if k > PosInf-b {
		return PosInf
	}
	return k + b
}

// WidenLo returns the lower end k - Band(k) of the band around k,
// saturating at NegInf. It is non-decreasing in k and the identity at
// ε = 0 and on the sentinels.
func (t Tol) WidenLo(k Key) Key {
	if t.num == 0 || k == NegInf || k == PosInf {
		return k
	}
	b := Key(t.Band(k))
	if k < NegInf+b {
		return NegInf
	}
	return k - b
}

// Ladder splits a root tolerance into `levels` monotonically widening
// per-level tolerances for a coordinator tree of that many link levels:
// level l (0 = node-local, the tightest) gets the numerator
// floor(num·(l+1)/(levels+1)), so the sequence is non-decreasing and
// strictly below the root tolerance, which remains level `levels`'s
// implicit band. A violation of the level-l band that still fits the
// level-(l+1) band re-anchors at that level of the tree and never
// climbs higher — the per-level ε budget of the hierarchical engine
// (internal/shardrun). Ladder returns nil for a zero tolerance or a
// non-positive level count: exact monitoring has no band to split.
func (t Tol) Ladder(levels int) []Tol {
	if t.num == 0 || levels <= 0 {
		return nil
	}
	ts := make([]Tol, levels)
	for l := 0; l < levels; l++ {
		ts[l] = Tol{num: t.num * uint64(l+1) / uint64(levels+1)}
	}
	return ts
}

// Witness searches for a threshold θ whose tolerance band covers both
// sides of a split: WidenLo(θ) <= minTop and maxOut <= WidenHi(θ),
// where minTop is the smallest key of the reported top set and maxOut
// the largest key outside it. Such a θ existing is exactly the ε-validity
// condition for a top-k report (the (1±ε)-band generalization of the
// paper's Lemma 2.2 separation); at ε = 0 it degenerates to the exact
// condition maxOut <= minTop. The returned θ is centered in the feasible
// threshold interval so freshly installed bands leave both sides slack.
func (t Tol) Witness(minTop, maxOut Key) (Key, bool) {
	if maxOut <= minTop {
		return Midpoint(maxOut, minTop), true
	}
	// Smallest θ with WidenHi(θ) >= maxOut. WidenHi is non-decreasing, so
	// feasibility is a threshold predicate; maxOut itself is feasible.
	lo, hi := NegInf, maxOut
	for {
		mid := Midpoint(lo, hi)
		if mid == lo {
			break
		}
		if t.WidenHi(mid) >= maxOut {
			hi = mid
		} else {
			lo = mid
		}
	}
	thMin := hi
	if t.WidenLo(thMin) > minTop {
		return 0, false // even the lowest covering threshold overshoots
	}
	// Largest θ with WidenLo(θ) <= minTop; thMin is feasible, PosInf not
	// (minTop is a real key).
	lo, hi = thMin, PosInf
	for {
		mid := Midpoint(lo, hi)
		if mid == lo {
			break
		}
		if t.WidenLo(mid) <= minTop {
			lo = mid
		} else {
			hi = mid
		}
	}
	return Midpoint(thMin, lo), true
}

// Separated reports whether a top set with minimum key minTop is a valid
// ε-approximation against an outside maximum key maxOut: some threshold's
// (1±ε) band covers both.
func (t Tol) Separated(minTop, maxOut Key) bool {
	_, ok := t.Witness(minTop, maxOut)
	return ok
}
