// Package order defines the totally ordered key domain the monitoring
// algorithms operate on.
//
// The paper assumes all observed values are pairwise distinct at every time
// step (§2). Real streams do not satisfy that, so this package provides an
// order-preserving injection from (value, node id) pairs into int64 keys:
//
//	key(v, i) = v*n + (n-1-i)
//
// for n nodes with ids 0..n-1. Two properties make this the right mapping:
//
//  1. It is strictly monotone in v for a fixed node, so a node can evaluate
//     its own filter locally by transforming only its own observations.
//  2. For equal values the node with the smaller id receives the larger
//     key, implementing the deterministic tie-break "lower id wins" that
//     the correctness oracle also uses.
//
// The injection multiplies the paper's ∆ (the k-th/(k+1)-st gap) by n,
// which only shifts the log ∆ term by log n and is documented in DESIGN.md.
package order

import "math"

// Key is a point in the totally ordered observation domain. The extreme
// values NegInf and PosInf act as the paper's −∞ and +∞ filter bounds and
// are never produced by Encode.
type Key int64

// Sentinels for unbounded filter ends.
const (
	NegInf Key = math.MinInt64
	PosInf Key = math.MaxInt64
)

// Codec maps (value, node id) pairs into keys for a fixed universe of n
// nodes. The zero value is unusable; construct with NewCodec.
type Codec struct {
	n int64
}

// NewCodec returns a codec for n nodes. It panics for n <= 0.
func NewCodec(n int) Codec {
	if n <= 0 {
		panic("order: codec needs at least one node")
	}
	return Codec{n: int64(n)}
}

// N returns the number of nodes the codec was built for.
func (c Codec) N() int { return int(c.n) }

// MaxValue is the largest raw value Encode accepts (symmetrically,
// -MaxValue is the smallest): the key of any admissible (value, id) pair
// neither overflows int64 nor lands on the PosInf/NegInf sentinels. The
// budget is MaxInt64-1 rather than MaxInt64 because at power-of-two n
// the extreme key value·n + (n-1) would otherwise equal PosInf exactly.
func (c Codec) MaxValue() int64 {
	return (math.MaxInt64 - 1 - (c.n - 1)) / c.n
}

// MaxValueFor is the one definition of the monitors' value-domain bound:
// the largest observation magnitude admissible for n nodes under the
// given tie-break mode. Every layer that validates observations — the
// public topk boundary, the engines, the wire-facing node hosts — derives
// its bound from here, so the layers cannot silently disagree.
func MaxValueFor(n int, distinct bool) int64 {
	if distinct {
		return MaxDistinctValue
	}
	return NewCodec(n).MaxValue()
}

// Encode maps a raw observation v at node id into its key. It panics if id
// is out of range or |v| exceeds MaxValue; callers are expected to bound
// their value universe (the paper's model also assumes bounded values so
// messages fit in O(log max v) bits).
func (c Codec) Encode(v int64, id int) Key {
	if id < 0 || int64(id) >= c.n {
		panic("order: node id out of range")
	}
	if v > c.MaxValue() || v < -c.MaxValue() {
		panic("order: value magnitude exceeds codec capacity")
	}
	return Key(v*c.n + (c.n - 1 - int64(id)))
}

// Decode recovers the raw value and node id from a key produced by Encode.
func (c Codec) Decode(k Key) (v int64, id int) {
	kk := int64(k)
	q := kk / c.n
	r := kk % c.n
	if r < 0 { // Go truncates toward zero; normalize to floor division.
		q--
		r += c.n
	}
	return q, int(c.n - 1 - r)
}

// Midpoint returns a key between lo and hi, rounded toward lo, without
// overflowing. It panics if lo > hi. Midpoint(lo, hi) == lo exactly when
// hi <= lo+1, which the monitor treats as "the gap is exhausted".
func Midpoint(lo, hi Key) Key {
	if lo > hi {
		panic("order: Midpoint with inverted bounds")
	}
	return lo + Key(uint64(hi-lo)/2)
}

// Less reports whether a orders strictly before b.
func Less(a, b Key) bool { return a < b }

// Max returns the larger of two keys.
func Max(a, b Key) Key {
	if a > b {
		return a
	}
	return b
}

// Min returns the smaller of two keys.
func Min(a, b Key) Key {
	if a < b {
		return a
	}
	return b
}

// Neg returns the order-reversing involution of k, mapping PosInf to NegInf
// and vice versa. MinimumProtocol is MaximumProtocol over negated keys;
// Neg is total on the sentinel range so that trick is safe.
func Neg(k Key) Key {
	switch k {
	case PosInf:
		return NegInf
	case NegInf:
		return PosInf
	default:
		return -k
	}
}
