package order

import (
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	c := NewCodec(16)
	check := func(v int32, idRaw uint8) bool {
		id := int(idRaw) % 16
		k := c.Encode(int64(v), id)
		gv, gid := c.Decode(k)
		return gv == int64(v) && gid == id
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeNegativeValues(t *testing.T) {
	c := NewCodec(4)
	k := c.Encode(-5, 2)
	v, id := c.Decode(k)
	if v != -5 || id != 2 {
		t.Fatalf("round trip of negative value: got (%d,%d)", v, id)
	}
}

func TestEncodeOrderPreserving(t *testing.T) {
	c := NewCodec(8)
	check := func(v1, v2 int32, id1Raw, id2Raw uint8) bool {
		id1, id2 := int(id1Raw)%8, int(id2Raw)%8
		if v1 == v2 && id1 == id2 {
			return true
		}
		k1, k2 := c.Encode(int64(v1), id1), c.Encode(int64(v2), id2)
		switch {
		case v1 < v2:
			return k1 < k2
		case v1 > v2:
			return k1 > k2
		default: // equal values: smaller id wins (gets larger key)
			return (id1 < id2) == (k1 > k2)
		}
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeInjective(t *testing.T) {
	c := NewCodec(5)
	seen := make(map[Key]struct{})
	for v := int64(-3); v <= 3; v++ {
		for id := 0; id < 5; id++ {
			k := c.Encode(v, id)
			if _, dup := seen[k]; dup {
				t.Fatalf("collision at v=%d id=%d", v, id)
			}
			seen[k] = struct{}{}
		}
	}
}

func TestEncodePanics(t *testing.T) {
	c := NewCodec(3)
	cases := []func(){
		func() { c.Encode(0, -1) },
		func() { c.Encode(0, 3) },
		func() { c.Encode(c.MaxValue()+1, 0) },
		func() { NewCodec(0) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestMaxValueBoundary(t *testing.T) {
	c := NewCodec(1000)
	// The extreme admissible values must not panic and must round trip.
	for _, v := range []int64{c.MaxValue(), -c.MaxValue()} {
		k := c.Encode(v, 999)
		gv, gid := c.Decode(k)
		if gv != v || gid != 999 {
			t.Fatalf("boundary round trip failed for %d: (%d,%d)", v, gv, gid)
		}
	}
}

// TestEncodeNeverProducesSentinels pins the sentinel-freedom contract at
// the extreme corners of the admissible domain. Power-of-two node counts
// are the regression: with the old bound (MaxInt64-(n-1))/n, the key of
// (MaxValue, id 0) equalled PosInf exactly whenever n divides 2^63.
func TestEncodeNeverProducesSentinels(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 7, 8, 64, 1000, 1 << 20} {
		c := NewCodec(n)
		mv := c.MaxValue()
		for _, tc := range []struct {
			v  int64
			id int
		}{{mv, 0}, {mv, n - 1}, {-mv, 0}, {-mv, n - 1}} {
			if k := c.Encode(tc.v, tc.id); k == PosInf || k == NegInf {
				t.Fatalf("n=%d: Encode(%d, %d) produced sentinel %d", n, tc.v, tc.id, k)
			}
		}
		if MaxValueFor(n, false) != mv {
			t.Fatalf("n=%d: MaxValueFor disagrees with Codec.MaxValue", n)
		}
	}
	if MaxValueFor(5, true) != MaxDistinctValue {
		t.Fatal("distinct-mode MaxValueFor mismatch")
	}
}

func TestMidpoint(t *testing.T) {
	cases := []struct{ lo, hi, want Key }{
		{0, 10, 5},
		{0, 1, 0},
		{5, 5, 5},
		{-10, 10, 0},
		{NegInf, PosInf, -1},
	}
	for _, c := range cases {
		if got := Midpoint(c.lo, c.hi); got != c.want {
			t.Fatalf("Midpoint(%d,%d) = %d, want %d", c.lo, c.hi, got, c.want)
		}
	}
}

func TestMidpointNoOverflow(t *testing.T) {
	m := Midpoint(PosInf-2, PosInf)
	if m != PosInf-1 {
		t.Fatalf("midpoint near PosInf: %d", m)
	}
	m = Midpoint(NegInf, NegInf+2)
	if m != NegInf+1 {
		t.Fatalf("midpoint near NegInf: %d", m)
	}
}

func TestMidpointInRangeProperty(t *testing.T) {
	check := func(a, b int64) bool {
		lo, hi := Key(a), Key(b)
		if lo > hi {
			lo, hi = hi, lo
		}
		m := Midpoint(lo, hi)
		return m >= lo && m <= hi
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMidpointPanicsInverted(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Midpoint(2, 1)
}

func TestMinMax(t *testing.T) {
	if Max(3, 5) != 5 || Max(5, 3) != 5 || Min(3, 5) != 3 || Min(5, 3) != 3 {
		t.Fatal("Min/Max broken")
	}
	if Max(NegInf, PosInf) != PosInf || Min(NegInf, PosInf) != NegInf {
		t.Fatal("Min/Max with sentinels broken")
	}
}

func TestNeg(t *testing.T) {
	if Neg(PosInf) != NegInf || Neg(NegInf) != PosInf {
		t.Fatal("sentinel negation broken")
	}
	if Neg(5) != -5 || Neg(Neg(5)) != 5 {
		t.Fatal("negation not involutive")
	}
}

func TestNegReversesOrder(t *testing.T) {
	check := func(a, b int64) bool {
		// Avoid the sentinel values themselves; Neg treats them specially.
		ka, kb := Key(a), Key(b)
		if ka == NegInf || kb == NegInf || ka == PosInf || kb == PosInf {
			return true
		}
		if ka == kb {
			return Neg(ka) == Neg(kb)
		}
		return (ka < kb) == (Neg(ka) > Neg(kb))
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLess(t *testing.T) {
	if !Less(1, 2) || Less(2, 1) || Less(2, 2) {
		t.Fatal("Less broken")
	}
}
