package order

import (
	"math"
	"math/rand"
	"testing"
)

func TestTolValidation(t *testing.T) {
	for _, eps := range []float64{-0.1, 1, 1.5, math.NaN(), math.Inf(1)} {
		if _, err := NewTol(eps); err == nil {
			t.Errorf("NewTol(%v) accepted", eps)
		}
	}
	for _, eps := range []float64{0, 0.01, 0.5, 0.999999} {
		tol, err := NewTol(eps)
		if err != nil {
			t.Fatalf("NewTol(%v): %v", eps, err)
		}
		if got := tol.Eps(); math.Abs(got-eps) > 1.0/(1<<TolShift) {
			t.Errorf("NewTol(%v).Eps() = %v, quantization too coarse", eps, got)
		}
		if _, err := TolFromNum(tol.Num()); err != nil {
			t.Errorf("TolFromNum round trip of %v: %v", eps, err)
		}
	}
	if _, err := TolFromNum(1 << TolShift); err == nil {
		t.Error("TolFromNum accepted an out-of-range numerator")
	}
}

func TestTolZeroIsIdentity(t *testing.T) {
	var tol Tol
	if !tol.Zero() {
		t.Fatal("zero value is not Zero")
	}
	for _, k := range []Key{NegInf, -5, 0, 5, PosInf} {
		if tol.WidenHi(k) != k || tol.WidenLo(k) != k || tol.Band(k) != 0 {
			t.Fatalf("zero tolerance moved key %d", k)
		}
	}
}

func TestTolBandBasics(t *testing.T) {
	tol, _ := NewTol(0.1)
	if b := tol.Band(1000); b < 99 || b > 100 {
		t.Fatalf("Band(1000) at eps=0.1: %d", b)
	}
	if tol.Band(-1000) != tol.Band(1000) {
		t.Fatal("band is not symmetric in |k|")
	}
	if tol.Band(NegInf) != 0 || tol.Band(PosInf) != 0 {
		t.Fatal("sentinels must have no band")
	}
	if tol.WidenHi(NegInf) != NegInf || tol.WidenLo(PosInf) != PosInf {
		t.Fatal("sentinels must be fixed points")
	}
	// Saturation near the domain ends instead of overflow.
	if got := tol.WidenHi(PosInf - 1); got != PosInf {
		t.Fatalf("WidenHi near PosInf = %d, want saturation", got)
	}
	if got := tol.WidenLo(NegInf + 1); got != NegInf {
		t.Fatalf("WidenLo near NegInf = %d, want saturation", got)
	}
}

// TestTolWidenMonotone is the property the Witness binary search relies
// on: both widen maps are non-decreasing, including across sign changes,
// saturation and the float-free fixed-point arithmetic.
func TestTolWidenMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, eps := range []float64{0.001, 0.05, 0.3, 0.999} {
		tol, _ := NewTol(eps)
		for trial := 0; trial < 2000; trial++ {
			a := Key(rng.Uint64())
			var step Key
			switch trial % 3 {
			case 0:
				step = 1
			case 1:
				step = Key(rng.Int63n(1 << 20))
			default:
				step = Key(rng.Int63())
			}
			b := a + step
			if b < a { // wrapped; skip
				continue
			}
			if tol.WidenHi(a) > tol.WidenHi(b) {
				t.Fatalf("eps=%v: WidenHi(%d)=%d > WidenHi(%d)=%d", eps, a, tol.WidenHi(a), b, tol.WidenHi(b))
			}
			if tol.WidenLo(a) > tol.WidenLo(b) {
				t.Fatalf("eps=%v: WidenLo(%d)=%d > WidenLo(%d)=%d", eps, a, tol.WidenLo(a), b, tol.WidenLo(b))
			}
		}
	}
}

// TestTolWitness checks the witness search against the definition: when
// a witness is reported it actually covers both sides, and when none is
// reported no threshold from a dense probe of the gap covers them.
func TestTolWitness(t *testing.T) {
	tol, _ := NewTol(0.1)
	cases := []struct {
		minTop, maxOut Key
		want           bool
	}{
		{100, 50, true},    // exactly separated
		{100, 100, true},   // touching
		{100, 105, true},   // overlap within the band
		{1000, 1099, true}, // ~10% above
		{1000, 1300, false},
		{100, 10000, false},
		{-100, -95, true}, // negative keys: band from |k|
		{-100, -50, false},
		{0, 1, false}, // no band near zero
	}
	for _, tc := range cases {
		th, ok := tol.Witness(tc.minTop, tc.maxOut)
		if ok != tc.want {
			t.Errorf("Witness(%d, %d) ok=%v, want %v", tc.minTop, tc.maxOut, ok, tc.want)
			continue
		}
		if ok && (tol.WidenLo(th) > tc.minTop || tol.WidenHi(th) < tc.maxOut) {
			t.Errorf("Witness(%d, %d) = %d does not cover: band [%d, %d]",
				tc.minTop, tc.maxOut, th, tol.WidenLo(th), tol.WidenHi(th))
		}
	}
}

// TestTolWitnessRandomized cross-checks Separated against brute force on
// a small key range.
func TestTolWitnessRandomized(t *testing.T) {
	tol, _ := NewTol(0.07)
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 500; trial++ {
		minTop := Key(rng.Int63n(4000) - 2000)
		maxOut := Key(rng.Int63n(4000) - 2000)
		got := tol.Separated(minTop, maxOut)
		want := false
		for th := Key(-2600); th <= 2600 && !want; th++ {
			if tol.WidenLo(th) <= minTop && maxOut <= tol.WidenHi(th) {
				want = true
			}
		}
		if got != want {
			t.Fatalf("Separated(%d, %d) = %v, brute force %v", minTop, maxOut, got, want)
		}
	}
}

func TestTolZeroWitnessIsExact(t *testing.T) {
	var tol Tol
	if !tol.Separated(5, 5) || !tol.Separated(5, 4) {
		t.Fatal("exact separation rejected at eps=0")
	}
	if tol.Separated(5, 6) {
		t.Fatal("overlap accepted at eps=0")
	}
}

// TestTolLadder pins the per-level ε budget of the hierarchical engine:
// levels widen monotonically, stay strictly below the root tolerance
// (so the induced bands nest inside the installed root band), and the
// degenerate configurations produce no ladder at all.
func TestTolLadder(t *testing.T) {
	tol, err := NewTol(0.05)
	if err != nil {
		t.Fatal(err)
	}
	for levels := 1; levels <= 5; levels++ {
		ts := tol.Ladder(levels)
		if len(ts) != levels {
			t.Fatalf("Ladder(%d) has %d levels", levels, len(ts))
		}
		prev := uint64(0)
		for l, lt := range ts {
			if lt.Num() < prev {
				t.Fatalf("Ladder(%d) not monotone at level %d: %d after %d", levels, l, lt.Num(), prev)
			}
			if lt.Num() >= tol.Num() {
				t.Fatalf("Ladder(%d) level %d reaches the root tolerance: %d >= %d", levels, l, lt.Num(), tol.Num())
			}
			prev = lt.Num()
		}
		// The top level approaches the root tolerance: levels/(levels+1) of it.
		if want := tol.Num() * uint64(levels) / uint64(levels+1); ts[levels-1].Num() != want {
			t.Fatalf("Ladder(%d) top level %d, want %d", levels, ts[levels-1].Num(), want)
		}
	}
	if Ladder := (Tol{}).Ladder(3); Ladder != nil {
		t.Fatalf("zero tolerance grew a ladder: %v", Ladder)
	}
	if Ladder := tol.Ladder(0); Ladder != nil {
		t.Fatalf("zero levels grew a ladder: %v", Ladder)
	}
}

// TestTolLadderBandsNest checks the geometric consequence the node banks
// rely on: for any anchor key, each level's band is contained in the
// next wider level's band.
func TestTolLadderBandsNest(t *testing.T) {
	tol, err := NewTol(0.1)
	if err != nil {
		t.Fatal(err)
	}
	ts := tol.Ladder(3)
	for _, k := range []Key{0, 1, 1000, 1 << 30, -5, -(1 << 40)} {
		for l := 0; l+1 < len(ts); l++ {
			if ts[l].WidenLo(k) < ts[l+1].WidenLo(k) || ts[l].WidenHi(k) > ts[l+1].WidenHi(k) {
				t.Fatalf("level %d band [%d, %d] not inside level %d band [%d, %d] at k=%d",
					l, ts[l].WidenLo(k), ts[l].WidenHi(k), l+1, ts[l+1].WidenLo(k), ts[l+1].WidenHi(k), k)
			}
		}
		last := ts[len(ts)-1]
		if last.WidenLo(k) < tol.WidenLo(k) || last.WidenHi(k) > tol.WidenHi(k) {
			t.Fatalf("top ladder band escapes the root band at k=%d", k)
		}
	}
}
