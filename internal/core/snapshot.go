package core

import (
	"fmt"

	"repro/internal/coord"
	"repro/internal/filter"
	"repro/internal/order"
	"repro/internal/rng"
	"repro/internal/wire"
)

// Snapshot and Restore give the sequential engine idle-point
// checkpointing: between observation steps the monitor's whole execution
// is its coord.Machine plus the node-local keys, filters and generator
// states, so a checkpoint is one MachineState frame and one synthesized
// NodesState frame over nodes [0, n). Restore rebuilds a monitor that
// resumes bit-identically — same reports, same ledgers, same randomness —
// to one that never stopped; the determinism pin in topk's checkpoint
// suite asserts exactly that.

// Snapshot encodes the monitor's state between steps: the machine frame
// and a NodesState frame carrying every node's key, filter interval,
// membership flag and generator state. It fails if a step is in flight.
func (m *Monitor) Snapshot() (mach, nodes []byte, err error) {
	machFrame, err := m.mach.Snapshot(nil)
	if err != nil {
		return nil, nil, err
	}
	n := m.cfg.N
	s := wire.NodesState{
		N: n, Lo: 0, Hi: n,
		EpsNum:   m.tol.Num(),
		Distinct: m.cfg.DistinctValues,
		Keys:     make([]int64, n),
		IvLo:     make([]int64, n),
		IvHi:     make([]int64, n),
		OrdLo:    make([]int64, n),
		OrdHi:    make([]int64, n),
		Flags:    make([]byte, n),
		ViolStep: make([]int64, n),
		RngState: make([]uint64, n),
		RngInc:   make([]uint64, n),
	}
	for i := 0; i < n; i++ {
		s.Keys[i] = int64(m.keys[i])
		iv := m.fs.Interval(i)
		s.IvLo[i], s.IvHi[i] = int64(iv.Lo), int64(iv.Hi)
		// The sequential engine has no order filters or extraction state
		// between steps; the slots encode their inert values.
		s.OrdLo[i], s.OrdHi[i] = int64(order.NegInf), int64(order.PosInf)
		if m.fs.InTop(i) {
			s.Flags[i] = wire.FlagNodeInTop
		}
		s.ViolStep[i] = -1
		s.RngState[i], s.RngInc[i] = m.rngs[i].State()
	}
	return machFrame, s.Append(nil), nil
}

// Restore rebuilds a monitor from Snapshot frames taken under the same
// configuration. Every frame field is validated against cfg before any
// state is installed; a mismatch or malformed frame yields an error,
// never a partially restored monitor.
func Restore(cfg Config, machFrame, nodesFrame []byte) (*Monitor, error) {
	if cfg.N <= 0 || cfg.K < 1 || cfg.K > cfg.N {
		return nil, fmt.Errorf("core: restore config needs 1 <= K <= N, got n=%d k=%d", cfg.N, cfg.K)
	}
	tol, err := order.NewTol(cfg.Epsilon)
	if err != nil {
		return nil, fmt.Errorf("core: restore: %v", err)
	}
	var ms wire.MachineState
	if err := ms.Decode(machFrame); err != nil {
		return nil, fmt.Errorf("core: restore machine frame: %v", err)
	}
	if ms.N != cfg.N || ms.K != cfg.K {
		return nil, fmt.Errorf("core: checkpoint is for n=%d k=%d, config has n=%d k=%d", ms.N, ms.K, cfg.N, cfg.K)
	}
	if ms.EpsNum != tol.Num() {
		return nil, fmt.Errorf("core: checkpoint tolerance %d/2^20 differs from configured %d/2^20", ms.EpsNum, tol.Num())
	}
	mach, err := coord.RestoreMachine(machFrame)
	if err != nil {
		return nil, fmt.Errorf("core: restore machine: %v", err)
	}
	var s wire.NodesState
	if err := s.Decode(nodesFrame); err != nil {
		return nil, fmt.Errorf("core: restore nodes frame: %v", err)
	}
	if s.N != cfg.N || s.Lo != 0 || s.Hi != cfg.N {
		return nil, fmt.Errorf("core: checkpoint bank covers [%d, %d) of %d, want [0, %d)", s.Lo, s.Hi, s.N, cfg.N)
	}
	if s.EpsNum != tol.Num() {
		return nil, fmt.Errorf("core: checkpoint bank tolerance %d/2^20 differs from configured %d/2^20", s.EpsNum, tol.Num())
	}
	if s.Distinct != cfg.DistinctValues {
		return nil, fmt.Errorf("core: checkpoint distinct-values mode %v differs from configured %v", s.Distinct, cfg.DistinctValues)
	}
	top := mach.Top()
	if len(top) != 0 && len(top) != cfg.K {
		return nil, fmt.Errorf("core: checkpoint membership has %d ids, want 0 or %d", len(top), cfg.K)
	}
	m := New(cfg)
	for i := 0; i < cfg.N; i++ {
		iv := filter.Interval{Lo: order.Key(s.IvLo[i]), Hi: order.Key(s.IvHi[i])}
		if iv.Empty() {
			return nil, fmt.Errorf("core: checkpoint filter %d is empty [%d, %d]", i, s.IvLo[i], s.IvHi[i])
		}
		r, err := rng.FromState(s.RngState[i], s.RngInc[i])
		if err != nil {
			return nil, fmt.Errorf("core: checkpoint generator %d: %v", i, err)
		}
		m.keys[i] = order.Key(s.Keys[i])
		m.fs.SetInterval(i, iv)
		m.rngs[i] = r
	}
	// Membership is restored from the machine (the authority); before the
	// time-0 reset has run it is empty and the filter set stays empty too.
	if len(top) == cfg.K {
		m.fs.SetMembership(top)
	}
	m.mach = mach
	m.step = mach.Step()
	return m, nil
}
