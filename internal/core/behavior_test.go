package core

import (
	"testing"

	"repro/internal/comm"
	"repro/internal/order"
	"repro/internal/stream"
)

// TestMonitorCommonModeGrowth documents the algorithm's known expensive
// regime: when every node's value rises in lockstep (monotone common-mode
// drift), outside nodes keep crossing any fixed midpoint, T− keeps rising
// past the stale T+, and resets recur. Reports must remain exact; cost is
// allowed to be high.
func TestMonitorCommonModeGrowth(t *testing.T) {
	const n, k, steps = 12, 3, 300
	m := New(Config{N: n, K: k, Seed: 81})
	vals := make([]int64, n)
	base := make([]int64, n)
	for i := range base {
		base[i] = int64((n - i) * 1000) // fixed order, distinct levels
	}
	for s := 0; s < steps; s++ {
		for i := range vals {
			vals[i] = base[i] + int64(s)*700 // strong common-mode climb
		}
		got := m.Observe(vals)
		if want := oracleTop(m, vals); !equalInts(got, want) {
			t.Fatalf("step %d: got %v want %v", s, got, want)
		}
	}
	st := m.Stats()
	// TopChanges counts the init transition (empty -> first report), so a
	// workload with a fixed order reports exactly 1.
	if st.TopChanges != 1 {
		t.Fatalf("fixed order must never change the set after init: %+v", st)
	}
	if st.Resets < 5 {
		t.Fatalf("common-mode growth should force recurring resets, got %d", st.Resets)
	}
}

// TestMonitorCommonModeWithinFilters verifies the flip side: common-mode
// drift smaller than the k/k+1 gap stays inside the filters and is free.
func TestMonitorCommonModeWithinFilters(t *testing.T) {
	const n, k = 8, 2
	m := New(Config{N: n, K: k, Seed: 82})
	vals := make([]int64, n)
	for s := 0; s < 100; s++ {
		for i := range vals {
			// Gap between adjacent nodes is 10000; total drift is < 300.
			vals[i] = int64((n-i)*10000) + int64(s%3)
		}
		m.Observe(vals)
	}
	afterInit := m.Counts().Total()
	for s := 0; s < 200; s++ {
		for i := range vals {
			vals[i] = int64((n-i)*10000) + int64(s%3)
		}
		m.Observe(vals)
	}
	if m.Counts().Total() != afterInit {
		t.Fatalf("small common-mode drift should be free: %d -> %d", afterInit, m.Counts().Total())
	}
}

// TestMonitorExtremeMagnitudes drives values near the codec capacity.
func TestMonitorExtremeMagnitudes(t *testing.T) {
	const n, k = 4, 2
	m := New(Config{N: n, K: k, Seed: 83})
	lim := order.NewCodec(n).MaxValue()
	rows := [][]int64{
		{lim, -lim, lim - 5, -lim + 5},
		{lim - 1, -lim + 1, lim - 4, -lim + 4},
		{-lim, lim, -lim + 7, lim - 7},
		{0, 1, -1, 2},
	}
	for s, vals := range rows {
		got := m.Observe(vals)
		if want := oracleTop(m, vals); !equalInts(got, want) {
			t.Fatalf("step %d: got %v want %v", s, got, want)
		}
	}
}

// TestMonitorEncodeAllOverflowPanics documents the capacity boundary.
func TestMonitorEncodeAllOverflowPanics(t *testing.T) {
	m := New(Config{N: 4, K: 1, Seed: 84})
	lim := order.NewCodec(4).MaxValue()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic beyond codec capacity")
		}
	}()
	m.Observe([]int64{lim + 1, 0, 0, 0})
}

// TestMonitorViolationStepsAccounting cross-checks the stats counters
// against the phase ledger: every violation step implies handler traffic,
// and steps without violations charge nothing.
func TestMonitorViolationStepsAccounting(t *testing.T) {
	const n, k, steps = 10, 2, 400
	m := New(Config{N: n, K: k, Seed: 85})
	src := stream.NewBursty(stream.BurstyConfig{N: n, Seed: 86, Lo: 0, Hi: 1 << 20, Noise: 2, BurstProb: 0.03, BurstMax: 1 << 16})
	vals := make([]int64, n)
	var prevTotal int64
	var chargedSteps int64
	for s := 0; s < steps; s++ {
		src.Step(vals)
		m.Observe(vals)
		if cur := m.Counts().Total(); cur != prevTotal {
			chargedSteps++
			prevTotal = cur
		}
	}
	st := m.Stats()
	// Every charged step after init is a violation step; init adds one.
	if chargedSteps > st.ViolationSteps+1 {
		t.Fatalf("charged on %d steps but only %d violation steps", chargedSteps, st.ViolationSteps)
	}
	if st.HandlerCalls != st.ViolationSteps {
		t.Fatalf("each violation step should invoke the handler exactly once: %+v", st)
	}
	if st.Resets > st.HandlerCalls+1 {
		t.Fatalf("resets (%d) cannot exceed handler calls (+init): %+v", st.Resets, st)
	}
}

// TestMonitorRegimeWorkload runs the Markov volatility workload end to
// end: exact reports, and the calm phases must be cheaper than the wild
// ones.
func TestMonitorRegimeWorkload(t *testing.T) {
	const n, k, steps = 16, 3, 1500
	g := stream.NewRegime(stream.RegimeConfig{N: n, Seed: 87, Lo: 0, Hi: 1 << 20, CalmStep: 1, WildStep: 1 << 16, SwitchProb: 0.02})
	m := New(Config{N: n, K: k, Seed: 88})
	vals := make([]int64, n)
	var calmCost, wildCost, calmSteps, wildSteps float64
	var prev int64
	for s := 0; s < steps; s++ {
		g.Step(vals)
		got := m.Observe(vals)
		if want := oracleTop(m, vals); !equalInts(got, want) {
			t.Fatalf("step %d: got %v want %v", s, got, want)
		}
		cost := float64(m.Counts().Total() - prev)
		prev = m.Counts().Total()
		if g.Wild() {
			wildCost += cost
			wildSteps++
		} else {
			calmCost += cost
			calmSteps++
		}
	}
	if calmSteps == 0 || wildSteps == 0 {
		t.Skip("chain stayed in one regime for this seed")
	}
	if wildCost/wildSteps <= calmCost/calmSteps {
		t.Fatalf("wild regime should cost more per step: calm=%.2f wild=%.2f",
			calmCost/calmSteps, wildCost/wildSteps)
	}
}

// TestMonitorTraceMatchesLedger replays the event trace and cross-checks
// it against the ledger totals, tying the two accounting mechanisms
// together.
func TestMonitorTraceMatchesLedger(t *testing.T) {
	tr := comm.NewTrace(1 << 20)
	const n, k = 8, 2
	m := New(Config{N: n, K: k, Seed: 89, Trace: tr})
	src := stream.NewIID(stream.IIDConfig{N: n, Seed: 90, Dist: stream.Uniform, Lo: 0, Hi: 1 << 18})
	vals := make([]int64, n)
	for s := 0; s < 50; s++ {
		src.Step(vals)
		m.Observe(vals)
	}
	if tr.Dropped() != 0 {
		t.Fatal("trace overflowed")
	}
	var ups, bcasts int64
	for _, e := range tr.Events() {
		switch e.Kind {
		case comm.Up:
			ups++
		case comm.Bcast:
			bcasts++
		}
	}
	tot := m.Ledger().Total()
	if ups != tot.Up || bcasts != tot.Bcast {
		t.Fatalf("trace (%d up, %d bcast) vs ledger (%d up, %d bcast)", ups, bcasts, tot.Up, tot.Bcast)
	}
}
