package core

import (
	"testing"

	"repro/internal/comm"
	"repro/internal/rng"
)

// walkVals drives a deterministic random walk over n nodes.
func walkVals(r *rng.RNG, vals []int64) {
	for i := range vals {
		vals[i] += int64(r.Intn(7)) - 3
	}
}

// TestSnapshotRestoreBitIdentical pins the core checkpoint contract: a
// monitor restored from an idle-point snapshot resumes bit-identically —
// reports, message and byte ledgers, stats, and the randomness streams —
// to an uninterrupted twin, at ε=0 and ε>0.
func TestSnapshotRestoreBitIdentical(t *testing.T) {
	for _, eps := range []float64{0, 0.05} {
		cfg := Config{N: 24, K: 4, Seed: 11, Epsilon: eps}
		twin := New(cfg)
		live := New(cfg)

		wr := rng.New(99, 1)
		vals := make([]int64, cfg.N)
		for step := 0; step < 40; step++ {
			walkVals(wr, vals)
			twin.Observe(vals)
			live.Observe(vals)
		}

		machFrame, nodesFrame, err := live.Snapshot()
		if err != nil {
			t.Fatalf("eps=%v: snapshot: %v", eps, err)
		}
		restored, err := Restore(cfg, machFrame, nodesFrame)
		if err != nil {
			t.Fatalf("eps=%v: restore: %v", eps, err)
		}

		for step := 0; step < 60; step++ {
			walkVals(wr, vals)
			want := twin.Observe(vals)
			got := restored.Observe(vals)
			if len(want) != len(got) {
				t.Fatalf("eps=%v step %d: report %v, twin %v", eps, step, got, want)
			}
			for i := range want {
				if want[i] != got[i] {
					t.Fatalf("eps=%v step %d: report %v, twin %v", eps, step, got, want)
				}
			}
		}
		if twin.Counts() != restored.Counts() || twin.Bytes() != restored.Bytes() {
			t.Fatalf("eps=%v: ledgers diverged: twin %v/%v, restored %v/%v",
				eps, twin.Counts(), twin.Bytes(), restored.Counts(), restored.Bytes())
		}
		if twin.Stats() != restored.Stats() {
			t.Fatalf("eps=%v: stats diverged: twin %+v, restored %+v", eps, twin.Stats(), restored.Stats())
		}
		for _, p := range comm.Phases() {
			if twin.Ledger().PhaseCounts(p) != restored.Ledger().PhaseCounts(p) ||
				twin.Ledger().PhaseBytes(p) != restored.Ledger().PhaseBytes(p) {
				t.Fatalf("eps=%v: phase %v ledger diverged", eps, p)
			}
		}
	}
}

// TestRestoreRejectsMismatch pins that a frame never restores into a
// configuration it was not taken under.
func TestRestoreRejectsMismatch(t *testing.T) {
	cfg := Config{N: 8, K: 2, Seed: 3}
	m := New(cfg)
	vals := make([]int64, cfg.N)
	for i := range vals {
		vals[i] = int64(i * 10)
	}
	m.Observe(vals)
	mach, nodes, err := m.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{N: 9, K: 2, Seed: 3},
		{N: 8, K: 3, Seed: 3},
		{N: 8, K: 2, Seed: 3, Epsilon: 0.1},
		{N: 8, K: 2, Seed: 3, DistinctValues: true},
	}
	for i, b := range bad {
		if _, err := Restore(b, mach, nodes); err == nil {
			t.Fatalf("case %d: restore accepted a mismatched config %+v", i, b)
		}
	}
	if _, err := Restore(cfg, mach[:len(mach)-1], nodes); err == nil {
		t.Fatal("restore accepted a truncated machine frame")
	}
	if _, err := Restore(cfg, mach, nodes[:len(nodes)-1]); err == nil {
		t.Fatal("restore accepted a truncated nodes frame")
	}
}
