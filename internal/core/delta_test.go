package core

import (
	"sort"
	"testing"

	"repro/internal/rng"
	"repro/internal/stream"
)

// TestDeltaDenseEquivalence is the sparse-path property test: an arbitrary
// interleaving of Observe and ObserveDelta must match a dense-only monitor
// with the same seed report-for-report and message-count-for-message-count.
func TestDeltaDenseEquivalence(t *testing.T) {
	cases := []struct {
		name string
		n, k int
	}{
		{"small", 9, 2},
		{"mid", 24, 5},
		{"k-equals-n", 6, 6},
		{"k-1", 13, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			const seed, steps = 99, 400
			ref := New(Config{N: tc.n, K: tc.k, Seed: seed})
			sut := New(Config{N: tc.n, K: tc.k, Seed: seed})

			r := rng.New(7, 0xde17a)
			// Dense state starts at 0 everywhere, matching the monitors'
			// convention for never-observed nodes.
			dense := make([]int64, tc.n)
			ids := make([]int, 0, tc.n)
			vals := make([]int64, 0, tc.n)
			for s := 0; s < steps; s++ {
				// Mutate a random subset (possibly empty) of nodes.
				ids, vals = ids[:0], vals[:0]
				for id := 0; id < tc.n; id++ {
					if r.Float64() < 0.3 {
						dense[id] += r.Int63n(2001) - 1000
						ids = append(ids, id)
						vals = append(vals, dense[id])
					}
				}
				refTop := ref.Observe(dense)
				var sutTop []int
				if r.Float64() < 0.5 {
					sutTop = sut.Observe(dense)
				} else {
					sutTop = sut.ObserveDelta(ids, vals)
				}
				if !equalInts(refTop, sutTop) {
					t.Fatalf("step %d: reports differ: dense=%v mixed=%v", s, refTop, sutTop)
				}
				if cr, cs := ref.Counts(), sut.Counts(); cr != cs {
					t.Fatalf("step %d: counts differ: dense=%v mixed=%v", s, cr, cs)
				}
				if rs, ss := ref.Stats(), sut.Stats(); rs != ss {
					t.Fatalf("step %d: stats differ: dense=%+v mixed=%+v", s, rs, ss)
				}
			}
		})
	}
}

// TestDeltaAgainstOracle drives the sparse path alone over a delta-native
// workload and checks every report against a locally computed oracle.
func TestDeltaAgainstOracle(t *testing.T) {
	const n, k, steps = 40, 6, 500
	m := New(Config{N: n, K: k, Seed: 3})
	src := stream.NewSparseWalk(stream.SparseWalkConfig{
		N: n, Lo: 0, Hi: 1 << 20, MaxStep: 1 << 12, Changed: 3, Seed: 4,
	})
	ids := make([]int, n)
	vals := make([]int64, n)
	dense := make([]int64, n)
	for s := 0; s < steps; s++ {
		c := src.StepDelta(ids, vals)
		for j := 0; j < c; j++ {
			dense[ids[j]] = vals[j]
		}
		got := m.ObserveDelta(ids[:c], vals[:c])
		want := oracleIDs(m, dense, k)
		if !equalInts(got, want) {
			t.Fatalf("step %d: got %v want %v", s, got, want)
		}
		if err := m.Filters().Validate(m.Keys()); err != nil {
			t.Fatalf("step %d: %v", s, err)
		}
	}
}

func oracleIDs(m *Monitor, vals []int64, k int) []int {
	keys := make([]int64, len(vals))
	for i, v := range vals {
		keys[i] = int64(m.codec.Encode(v, i))
	}
	ids := make([]int, len(vals))
	for i := range ids {
		ids[i] = i
	}
	sort.Slice(ids, func(a, b int) bool { return keys[ids[a]] > keys[ids[b]] })
	top := append([]int(nil), ids[:k]...)
	sort.Ints(top)
	return top
}

// TestEmptyDeltaStep asserts that a step where nothing changed is legal,
// free, and does not disturb the report.
func TestEmptyDeltaStep(t *testing.T) {
	m := New(Config{N: 5, K: 2, Seed: 11})
	m.Observe([]int64{50, 40, 30, 20, 10})
	before := m.Counts()
	top := append([]int(nil), m.Top()...)
	for s := 0; s < 20; s++ {
		got := m.ObserveDelta(nil, nil)
		if !equalInts(got, top) {
			t.Fatalf("empty delta changed report: %v -> %v", top, got)
		}
	}
	if m.Counts() != before {
		t.Fatalf("empty delta steps cost messages: %v -> %v", before, m.Counts())
	}
	if m.Stats().Steps != 21 {
		t.Fatalf("steps not counted: %d", m.Stats().Steps)
	}
}

// TestObserveDeltaPanics pins the input validation of the sparse path.
func TestObserveDeltaPanics(t *testing.T) {
	for i, f := range []func(m *Monitor){
		func(m *Monitor) { m.ObserveDelta([]int{0, 0}, []int64{1, 2}) }, // duplicate
		func(m *Monitor) { m.ObserveDelta([]int{2, 1}, []int64{1, 2}) }, // unsorted
		func(m *Monitor) { m.ObserveDelta([]int{5}, []int64{1}) },       // out of range
		func(m *Monitor) { m.ObserveDelta([]int{0}, []int64{1, 2}) },    // length mismatch
		func(m *Monitor) { m.ObserveDelta([]int{-1}, []int64{1}) },      // negative id
	} {
		m := New(Config{N: 4, K: 1, Seed: 1})
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: expected panic", i)
				}
			}()
			f(m)
		}()
	}
}

// TestObserveZeroAllocs is the allocation regression test for the hot
// path: after the scratch buffers have warmed up, a step on a calm
// random-walk workload — violation-free steps plus the occasional
// violation and reset — must not allocate at all.
func TestObserveZeroAllocs(t *testing.T) {
	const n = 256
	m := New(Config{N: n, K: 4, Seed: 21})
	src := stream.NewRandomWalk(stream.WalkConfig{N: n, Lo: 0, Hi: 1 << 24, MaxStep: 8, Seed: 22})
	vals := make([]int64, n)
	for s := 0; s < 2000; s++ { // warm up every scratch buffer, incl. resets
		src.Step(vals)
		m.Observe(vals)
	}
	if avg := testing.AllocsPerRun(500, func() {
		src.Step(vals)
		m.Observe(vals)
	}); avg != 0 {
		t.Fatalf("dense Observe allocates %.2f per step, want 0", avg)
	}

	// The sparse path over a delta-native workload must be clean as well.
	sm := New(Config{N: n, K: 4, Seed: 23})
	dsrc := stream.NewSparseWalk(stream.SparseWalkConfig{
		N: n, Lo: 0, Hi: 1 << 24, MaxStep: 8, Changed: 3, Seed: 24,
	})
	ids := make([]int, n)
	dvals := make([]int64, n)
	for s := 0; s < 2000; s++ {
		c := dsrc.StepDelta(ids, dvals)
		sm.ObserveDelta(ids[:c], dvals[:c])
	}
	if avg := testing.AllocsPerRun(500, func() {
		c := dsrc.StepDelta(ids, dvals)
		sm.ObserveDelta(ids[:c], dvals[:c])
	}); avg != 0 {
		t.Fatalf("sparse ObserveDelta allocates %.2f per step, want 0", avg)
	}
}
