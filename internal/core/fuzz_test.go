package core

import (
	"sort"
	"testing"

	"repro/internal/order"
)

// decodeWorkload turns fuzzer bytes into a small monitoring instance:
// the first bytes pick n and k, the rest become observation deltas.
func decodeWorkload(data []byte) (n, k int, matrix [][]int64) {
	if len(data) < 3 {
		return 0, 0, nil
	}
	n = int(data[0]%8) + 1
	k = int(data[1])%n + 1
	cur := make([]int64, n)
	for i := range cur {
		cur[i] = int64(i * 3)
	}
	rest := data[2:]
	steps := len(rest)/n + 1
	matrix = make([][]int64, 0, steps)
	for off := 0; off < len(rest); off += n {
		row := make([]int64, n)
		for i := 0; i < n; i++ {
			idx := off + i
			if idx < len(rest) {
				// Deltas in [-64, 63], scaled to create occasional jumps.
				d := int64(int8(rest[idx]))
				if d%7 == 0 {
					d *= 100
				}
				cur[i] += d
			}
			row[i] = cur[i]
		}
		matrix = append(matrix, row)
	}
	return n, k, matrix
}

func fuzzOracle(vals []int64, k int) []int {
	codec := order.NewCodec(len(vals))
	keys := make([]order.Key, len(vals))
	for i, v := range vals {
		keys[i] = codec.Encode(v, i)
	}
	ids := make([]int, len(vals))
	for i := range ids {
		ids[i] = i
	}
	sort.Slice(ids, func(a, b int) bool { return keys[ids[a]] > keys[ids[b]] })
	top := append([]int(nil), ids[:k]...)
	sort.Ints(top)
	return top
}

// FuzzMonitorObserve feeds arbitrary byte-derived workloads through the
// monitor and cross-checks every report against the oracle plus the
// Lemma 2.2 filter invariant. Run with `go test -fuzz=FuzzMonitorObserve`;
// the seed corpus also runs under plain `go test`.
func FuzzMonitorObserve(f *testing.F) {
	f.Add([]byte{4, 2, 1, 2, 3, 4, 250, 6, 7, 8, 9, 10, 110, 12})
	f.Add([]byte{1, 1, 0})
	f.Add([]byte{8, 8, 255, 0, 255, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9})
	f.Add([]byte{3, 2, 7, 14, 21, 28, 35, 42, 49, 56, 63, 70})
	f.Fuzz(func(t *testing.T, data []byte) {
		n, k, matrix := decodeWorkload(data)
		if n == 0 || len(matrix) == 0 {
			t.Skip()
		}
		m := New(Config{N: n, K: k, Seed: 99})
		keys := make([]order.Key, n)
		for s, vals := range matrix {
			got := m.Observe(vals)
			if want := fuzzOracle(vals, k); !equalInts(got, want) {
				t.Fatalf("step %d (n=%d k=%d): got %v want %v vals %v", s, n, k, got, want, vals)
			}
			m.EncodeAll(vals, keys)
			if err := m.Filters().Validate(keys); err != nil {
				t.Fatalf("step %d: %v", s, err)
			}
		}
	})
}

// FuzzDeltaDenseEquivalence drives two monitors over the same byte-derived
// workload — one through dense Observe, one through a fuzzer-chosen
// interleaving of Observe and ObserveDelta — and requires identical
// reports, message counts, and stats at every step. Each step's
// interleaving choice is read back out of the input bytes, so the fuzzer
// explores sparse/dense switch points (including runs of consecutive
// sparse steps) together with value patterns.
func FuzzDeltaDenseEquivalence(f *testing.F) {
	f.Add([]byte{4, 2, 1, 2, 3, 4, 250, 6, 7, 8, 9, 10, 110, 12})
	f.Add([]byte{1, 1, 0})
	f.Add([]byte{6, 3, 255, 0, 255, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11})
	f.Fuzz(func(t *testing.T, data []byte) {
		n, k, matrix := decodeWorkload(data)
		if n == 0 || len(matrix) == 0 {
			t.Skip()
		}
		ref := New(Config{N: n, K: k, Seed: 99})
		sut := New(Config{N: n, K: k, Seed: 99})
		prev := make([]int64, n) // both monitors' nodes start at 0
		ids := make([]int, 0, n)
		vals := make([]int64, 0, n)
		for s, row := range matrix {
			refTop := ref.Observe(row)
			var sutTop []int
			if data[(2+s)%len(data)]&1 == 0 { // fuzzer-driven interleaving choice
				ids, vals = ids[:0], vals[:0]
				for i, v := range row {
					if v != prev[i] {
						ids = append(ids, i)
						vals = append(vals, v)
					}
				}
				sutTop = sut.ObserveDelta(ids, vals)
			} else {
				sutTop = sut.Observe(row)
			}
			copy(prev, row)
			if !equalInts(refTop, sutTop) {
				t.Fatalf("step %d (n=%d k=%d): dense %v sparse %v", s, n, k, refTop, sutTop)
			}
			if ref.Counts() != sut.Counts() {
				t.Fatalf("step %d: counts diverged: %v vs %v", s, ref.Counts(), sut.Counts())
			}
			if ref.Stats() != sut.Stats() {
				t.Fatalf("step %d: stats diverged: %+v vs %+v", s, ref.Stats(), sut.Stats())
			}
		}
	})
}

// FuzzOrderedMonitorObserve does the same for the ordered variant,
// checking the full rank order.
func FuzzOrderedMonitorObserve(f *testing.F) {
	f.Add([]byte{4, 2, 1, 2, 3, 4, 250, 6, 7, 8, 9, 10, 110, 12})
	f.Add([]byte{5, 4, 9, 9, 9, 9, 9, 1, 1, 1, 1, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		n, k, matrix := decodeWorkload(data)
		if n == 0 || len(matrix) == 0 {
			t.Skip()
		}
		om := NewOrdered(Config{N: n, K: k, Seed: 199})
		for s, vals := range matrix {
			got := om.Observe(vals)
			want := orderedOracle(om, vals)
			if !equalInts(got, want) {
				t.Fatalf("step %d (n=%d k=%d): ranks %v want %v vals %v", s, n, k, got, want, vals)
			}
		}
	})
}
