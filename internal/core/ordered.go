package core

import (
	"maps"
	"sort"

	"repro/internal/comm"
	"repro/internal/filter"
	"repro/internal/order"
	"repro/internal/wire"
)

// OrderedMonitor implements the extension the paper sketches as future
// work in §5: keep the coordinator informed not only of the top-k *set*
// but of the *ranking* of those k nodes by value. The paper conjectures
// that combining the neighbor-midpoint strategy of Lam et al. with its
// maximum protocol yields a competitive algorithm for this variant; this
// implementation realizes exactly that combination:
//
//   - The k-boundary (who is in the top set) is maintained by Algorithm 1
//     unchanged: one midpoint M separates the sides, violations run the
//     min/max protocols, T+/T− drive midpoint updates and resets.
//   - Within the top band, every member additionally carries an
//     order-filter: the interval between the midpoints to its ranking
//     neighbors' last-reported values (the Lam et al. strategy restricted
//     to k nodes). A member whose value leaves its order-filter reports
//     it; the coordinator re-sorts its estimates, reassigns the midpoint
//     intervals, and lets the cascade settle — all within one model time
//     step, as the model permits.
//
// Rank reports are exact at every step: order-filters guarantee the
// estimated ranking equals the true ranking of the band (same argument as
// for the dominance tracker), and membership exactness is Algorithm 1's.
type OrderedMonitor struct {
	inner *Monitor

	// Order-tracking state for the current top band.
	est     map[int]order.Key // member id -> last reported key
	ordLo   map[int]order.Key // member id -> order-filter bounds
	ordHi   map[int]order.Key
	ordered []int // member ids, rank 1 first
}

// NewOrdered creates an ordered top-k monitor. The Config is interpreted
// exactly as for New.
func NewOrdered(cfg Config) *OrderedMonitor {
	return &OrderedMonitor{
		inner: New(cfg),
		est:   make(map[int]order.Key),
		ordLo: make(map[int]order.Key),
		ordHi: make(map[int]order.Key),
	}
}

// N returns the node count.
func (om *OrderedMonitor) N() int { return om.inner.N() }

// K returns the monitored top set size.
func (om *OrderedMonitor) K() int { return om.inner.K() }

// Counts returns the total message counts (boundary plus order layers).
func (om *OrderedMonitor) Counts() comm.Counts { return om.inner.Counts() }

// Bytes returns the total encoded size of the charged messages.
func (om *OrderedMonitor) Bytes() comm.Bytes { return om.inner.Bytes() }

// Ledger exposes the message ledger. Order-layer traffic is attributed to
// the handler phase (it is coordinator-driven repair work).
func (om *OrderedMonitor) Ledger() *comm.Ledger { return om.inner.Ledger() }

// Stats returns the boundary layer's execution counters.
func (om *OrderedMonitor) Stats() Stats { return om.inner.Stats() }

// Top returns the current top-k ids ordered by rank (largest value
// first). The slice is freshly allocated.
func (om *OrderedMonitor) Top() []int {
	return append([]int(nil), om.ordered...)
}

// Observe processes one time step and returns the top-k ids ordered by
// rank, largest first.
func (om *OrderedMonitor) Observe(vals []int64) []int {
	resetsBefore := om.inner.Stats().Resets
	om.inner.Observe(vals)

	members := om.inner.fs.Top()
	keys := om.inner.keys

	if om.inner.Stats().Resets != resetsBefore || len(om.ordered) == 0 {
		// Membership may have changed (or this is the first step): the
		// FILTERRESET extractions already revealed every member's value
		// to the coordinator, so rebuilding the order layer costs nothing
		// beyond what Algorithm 1 paid.
		om.rebuild(members, keys)
		return om.Top()
	}

	// Membership unchanged: settle the order-filter cascade within the
	// band. Values are fixed during the inter-step protocol, each member
	// reports at most once (after reporting, its estimate equals its
	// current key, which its own midpoint interval always contains), so
	// the loop terminates after at most k iterations.
	rec := om.inner.mach.Recorder(comm.PhaseHandler)
	for {
		changed := false
		for _, id := range om.ordered {
			k := keys[id]
			if k < om.ordLo[id] || k > om.ordHi[id] {
				om.est[id] = k
				comm.RecordSized(rec, comm.Up, 1, wire.SizeBid(id, int64(k)))
				changed = true
			}
		}
		if !changed {
			break
		}
		om.assignOrderFilters(rec)
	}
	return om.Top()
}

// rebuild reinitializes the order layer from current keys after a
// membership change. The estimates come from the reset's protocol
// results, so no additional messages are charged for learning them;
// installing the fresh order-filters rides on the reset broadcast.
func (om *OrderedMonitor) rebuild(members []int, keys []order.Key) {
	clear(om.est)
	clear(om.ordLo)
	clear(om.ordHi)
	om.ordered = om.ordered[:0]
	for _, id := range members {
		om.est[id] = keys[id]
		om.ordered = append(om.ordered, id)
	}
	om.sortByEst()
	om.setFilterBounds()
}

// assignOrderFilters re-sorts the band by estimate and reassigns midpoint
// intervals, charging one Down message per member whose interval changed.
func (om *OrderedMonitor) assignOrderFilters(rec comm.Recorder) {
	om.sortByEst()
	// maps.Clone rather than a hand-rolled range: the copy is
	// order-independent either way, but the deterministic-core analyzer
	// (topklint determinism) rightly refuses to see a raw map iteration
	// here and the clone states the intent exactly.
	oldLo := maps.Clone(om.ordLo)
	oldHi := maps.Clone(om.ordHi)
	om.setFilterBounds()
	for _, id := range om.ordered {
		if om.ordLo[id] != oldLo[id] || om.ordHi[id] != oldHi[id] {
			comm.RecordSized(rec, comm.Down, 1, wire.SizeBounds(id, int64(om.ordLo[id]), int64(om.ordHi[id])))
		}
	}
}

// sortByEst orders the band by estimated key, descending (rank 1 first).
func (om *OrderedMonitor) sortByEst() {
	sort.Slice(om.ordered, func(a, b int) bool {
		return om.est[om.ordered[a]] > om.est[om.ordered[b]]
	})
}

// setFilterBounds installs the neighbor-midpoint intervals for the
// current ranking. The bottom member's lower bound and the top member's
// upper bound are unbounded: the k-boundary of Algorithm 1 already fences
// the band from the outside.
func (om *OrderedMonitor) setFilterBounds() {
	for pos, id := range om.ordered {
		lo, hi := order.NegInf, order.PosInf
		if pos > 0 {
			above := om.ordered[pos-1]
			hi = order.Midpoint(om.est[id], om.est[above])
		}
		if pos < len(om.ordered)-1 {
			below := om.ordered[pos+1]
			lo = order.Midpoint(om.est[below], om.est[id])
		}
		om.ordLo[id], om.ordHi[id] = lo, hi
	}
}

// OrderFilter exposes a member's current order-filter for invariant
// checks in tests. ok is false for non-members.
func (om *OrderedMonitor) OrderFilter(id int) (iv filter.Interval, ok bool) {
	lo, okLo := om.ordLo[id]
	hi, okHi := om.ordHi[id]
	if !okLo || !okHi {
		return filter.Interval{}, false
	}
	return filter.Interval{Lo: lo, Hi: hi}, true
}
