package core

import (
	"testing"

	"repro/internal/order"
	"repro/internal/sim"
	"repro/internal/stream"
)

// TestEpsFilterInvariant asserts the ε-mode counterpart of the exact
// engine's per-step filter invariant: after every step, each node's key
// lies inside its installed filter and the membership is ε-separated
// from the excluded nodes (filter.Set.ValidateEps) — the invariant the
// DESIGN.md validity argument rests on. It also requires the tolerance
// to have actually been exercised: on this workload some steps must
// report a set that differs from the exact top-k (while staying
// ε-valid), otherwise the run would prove nothing about the bands.
func TestEpsFilterInvariant(t *testing.T) {
	const n, k, steps, eps = 24, 4, 600, 0.05
	tol, err := order.NewTol(eps)
	if err != nil {
		t.Fatal(err)
	}
	m := New(Config{N: n, K: k, Seed: 13, Epsilon: eps})
	src := stream.NewRandomWalk(stream.WalkConfig{N: n, Lo: 1 << 20, Hi: 1 << 21, MaxStep: 1 << 13, Seed: 29})
	vals := make([]int64, n)
	approxSteps := 0
	for s := 0; s < steps; s++ {
		src.Step(vals)
		top := m.Observe(vals)
		if err := m.Filters().ValidateEps(m.Keys(), tol); err != nil {
			t.Fatalf("step %d: ε filter invariant broken: %v", s, err)
		}
		if !equalInts(top, sim.Oracle(vals, k)) {
			if !sim.EpsValid(vals, top, k, eps) {
				t.Fatalf("step %d: report %v neither exact nor ε-valid", s, top)
			}
			approxSteps++
		}
	}
	if approxSteps == 0 {
		t.Fatal("every report was exactly the oracle set: the bands never absorbed a crossing, workload too tame")
	}
}
