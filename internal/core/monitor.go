// Package core implements the paper's primary contribution: the
// filter-based online algorithm for Top-k-Position Monitoring
// (Algorithm 1). A Monitor plays both roles of the model — the coordinator
// state machine and the per-node filter checks — against observation
// vectors supplied one time step at a time, and accounts every message the
// model would charge.
//
// The flow per time step follows the paper exactly:
//
//  1. Every node checks its filter locally. Nodes that were in top-k at the
//     previous step and now violate run MINIMUMPROTOCOL(k) among
//     themselves; violating outsiders run MAXIMUMPROTOCOL(n-k).
//  2. If anything was communicated, FILTERVIOLATIONHANDLER completes the
//     picture: if no outsider communicated, it runs MAXIMUMPROTOCOL over
//     all outsiders; otherwise it runs MINIMUMPROTOCOL over all top-k
//     nodes. It then lowers T+ / raises T− with the learned extrema.
//  3. If T+ < T− the top-k set may have changed and FILTERRESET recomputes
//     the top k+1 values from scratch (k+1 maximum-protocol executions)
//     and reinstalls midpoint filters. Otherwise the handler broadcasts a
//     new midpoint of [T−, T+] and the filters tighten around it.
//
// The monitor reports the top-k node ids after every step; the sequence of
// reports is exact at all times (the protocols are Las Vegas), which the
// simulation oracle asserts step by step in tests.
package core

import (
	"fmt"

	"repro/internal/comm"
	"repro/internal/filter"
	"repro/internal/order"
	"repro/internal/protocol"
	"repro/internal/rng"
)

// Config parameterizes a Monitor.
type Config struct {
	// N is the number of nodes, K the size of the monitored top set
	// (1 <= K <= N).
	N, K int
	// Seed drives all protocol randomness; runs are reproducible given it.
	Seed uint64
	// DistinctValues asserts that the caller guarantees pairwise distinct
	// observations at every time step (the paper's model assumption). When
	// false (the default), the monitor applies the order-preserving
	// injection key = v*n + (n-1-i), breaking ties by smaller node id.
	DistinctValues bool
	// UseGather replaces every MAXIMUMPROTOCOL / MINIMUMPROTOCOL execution
	// with the naive gather-all protocol (M(n) = n instead of O(log n)).
	// The filter logic is unchanged. This isolates the contribution of the
	// randomized protocol in the ablation experiment E12.
	UseGather bool
	// Trace, when non-nil, captures communication events for debugging.
	Trace *comm.Trace
}

// Stats exposes counters describing a monitor's execution so far.
type Stats struct {
	Steps          int64 // observation steps processed
	ViolationSteps int64 // steps in which at least one filter was violated
	HandlerCalls   int64 // FILTERVIOLATIONHANDLER executions
	Resets         int64 // FILTERRESET executions (including initialization)
	// TopChanges counts steps whose reported set differed from the
	// previous step's, including the initial transition from the empty
	// pre-observation state to the first report.
	TopChanges int64
}

// Monitor runs Algorithm 1. Create with New; it is not safe for concurrent
// use (the goroutine-per-node engine lives in internal/runtime).
type Monitor struct {
	cfg   Config
	codec order.Codec
	fs    *filter.Set
	led   *comm.Ledger

	rngs []*rng.RNG  // per-node protocol randomness
	keys []order.Key // node-local current keys (scratch, rewritten per step)

	tPlus  order.Key // T+(t0, t): min over top-k values since last reset
	tMinus order.Key // T−(t0, t): max over outside values since last reset

	step  int64
	init  bool
	stats Stats
}

// New validates the configuration and returns a monitor. The first
// Observe call performs the paper's time-0 FILTERRESET initialization.
func New(cfg Config) *Monitor {
	if cfg.N <= 0 {
		panic("core: monitor needs N > 0")
	}
	if cfg.K < 1 || cfg.K > cfg.N {
		panic("core: monitor needs 1 <= K <= N")
	}
	m := &Monitor{
		cfg:   cfg,
		codec: order.NewCodec(cfg.N),
		fs:    filter.NewSet(cfg.N, cfg.K),
		led:   &comm.Ledger{},
		rngs:  make([]*rng.RNG, cfg.N),
		keys:  make([]order.Key, cfg.N),
	}
	root := rng.New(cfg.Seed, 0xc02e)
	for i := range m.rngs {
		m.rngs[i] = root.Split(uint64(i))
	}
	return m
}

// N returns the node count.
func (m *Monitor) N() int { return m.cfg.N }

// K returns the monitored top set size.
func (m *Monitor) K() int { return m.cfg.K }

// Ledger returns the monitor's message ledger (total and per-phase counts).
func (m *Monitor) Ledger() *comm.Ledger { return m.led }

// Counts returns the monitor's total message counts. It is the accessor
// the sim.Algorithm interface expects; the per-phase breakdown remains
// available through Ledger.
func (m *Monitor) Counts() comm.Counts { return m.led.Total() }

// Stats returns execution counters.
func (m *Monitor) Stats() Stats { return m.stats }

// Filters exposes the current filter assignment for invariant checking.
func (m *Monitor) Filters() *filter.Set { return m.fs }

// Top returns the currently reported top-k node ids in ascending order.
func (m *Monitor) Top() []int { return m.fs.Top() }

// EncodeAll maps a raw observation vector into the monitor's key domain,
// applying the tie-break injection unless DistinctValues is set. The
// correctness oracle uses it to rank nodes exactly as the monitor does.
func (m *Monitor) EncodeAll(vals []int64, keys []order.Key) {
	if len(vals) != m.cfg.N || len(keys) != m.cfg.N {
		panic("core: EncodeAll length mismatch")
	}
	for i, v := range vals {
		if m.cfg.DistinctValues {
			keys[i] = order.Key(v)
		} else {
			keys[i] = m.codec.Encode(v, i)
		}
	}
}

// Observe processes one time step of observations (vals[i] is node i's new
// value) and returns the top-k node ids in ascending order. The returned
// slice is freshly allocated.
func (m *Monitor) Observe(vals []int64) []int {
	if len(vals) != m.cfg.N {
		panic(fmt.Sprintf("core: observed %d values for %d nodes", len(vals), m.cfg.N))
	}
	m.EncodeAll(vals, m.keys)
	m.step++
	m.stats.Steps++

	prevTop := m.fs.Top()

	if !m.init {
		m.filterReset()
		m.init = true
	} else {
		m.handleStep()
	}

	top := m.fs.Top()
	if !equalInts(prevTop, top) {
		m.stats.TopChanges++
	}
	return top
}

// handleStep performs Algorithm 1 lines 2-14 for one time step.
func (m *Monitor) handleStep() {
	// Node-local filter checks (line 3). With k == n all filters are
	// [−∞, +∞] and this loop never fires.
	var violTop, violOut []protocol.Participant
	for id := 0; id < m.cfg.N; id++ {
		if violated, _ := m.fs.Interval(id).Violates(m.keys[id]); !violated {
			continue
		}
		p := protocol.Participant{ID: id, Key: m.keys[id], RNG: m.rngs[id]}
		if m.fs.InTop(id) {
			violTop = append(violTop, p)
		} else {
			violOut = append(violOut, p)
		}
	}
	if len(violTop) == 0 && len(violOut) == 0 {
		return
	}
	m.stats.ViolationSteps++
	rec := m.led.InPhase(comm.PhaseViolation)

	// Lines 4-8: violating former top-k nodes determine their minimum;
	// violating outsiders determine their maximum. Population bounds are k
	// and n-k respectively, which the nodes know from the last broadcast.
	var minRes, maxRes protocol.Result
	if len(violTop) > 0 {
		minRes = m.minProto(violTop, m.cfg.K, rec)
	}
	if len(violOut) > 0 {
		maxRes = m.maxProto(violOut, m.cfg.N-m.cfg.K, rec)
	}
	m.violationHandler(minRes, maxRes)
}

// violationHandler is FILTERVIOLATIONHANDLER (Algorithm 1 lines 15-35).
func (m *Monitor) violationHandler(minRes, maxRes protocol.Result) {
	m.stats.HandlerCalls++
	rec := m.led.InPhase(comm.PhaseHandler)

	if !maxRes.OK {
		// Line 23: learn the maximum over all current outsiders.
		maxRes = m.maxProto(m.side(false), m.cfg.N-m.cfg.K, rec)
	} else {
		// Line 25: learn the minimum over all current top-k nodes. The
		// paper runs this even when the violation phase already produced a
		// minimum over the violating subset.
		minRes = m.minProto(m.side(true), m.cfg.K, rec)
	}

	// Lines 27-28: tighten the running extrema. With k == n the outside
	// side is empty and maxRes stays !OK, but that configuration never
	// violates, so reaching here implies both results are valid.
	if minRes.OK {
		m.tPlus = order.Min(m.tPlus, minRes.Key)
	}
	if maxRes.OK {
		m.tMinus = order.Max(m.tMinus, maxRes.Key)
	}

	if m.tPlus < m.tMinus {
		m.filterReset() // line 30
		return
	}
	// Lines 32-33: broadcast the midpoint of [T−, T+]; nodes re-anchor
	// their filters around it.
	mid := order.Midpoint(m.tMinus, m.tPlus)
	rec.Record(comm.Bcast, 1)
	m.cfg.Trace.Append(comm.Event{Step: m.step, Kind: comm.Bcast, From: comm.Coordinator, To: comm.Everyone, Payload: int64(mid), Note: "midpoint"})
	m.fs.AssignMidpoint(mid)
}

// filterReset is FILTERRESET (Algorithm 1 lines 36-42): determine the k+1
// largest values via repeated MAXIMUMPROTOCOL executions with population
// bound n, then install fresh midpoint filters.
func (m *Monitor) filterReset() {
	m.stats.Resets++
	rec := m.led.InPhase(comm.PhaseReset)

	all := make([]protocol.Participant, m.cfg.N)
	for id := 0; id < m.cfg.N; id++ {
		all[id] = protocol.Participant{ID: id, Key: m.keys[id], RNG: m.rngs[id]}
	}
	want := m.cfg.K + 1
	if want > m.cfg.N {
		want = m.cfg.N // k == n: there is no (k+1)-st value
	}
	ranked := protocol.TopExtractWith(all, want, func(ps []protocol.Participant) protocol.Result {
		return m.maxProto(ps, m.cfg.N, rec)
	})

	top := make([]int, m.cfg.K)
	for i := 0; i < m.cfg.K; i++ {
		top[i] = ranked[i].ID
	}
	m.fs.SetMembership(top)

	if m.cfg.K == m.cfg.N {
		// Degenerate case: every node is in the top set; filters are
		// unconstrained and the monitor never communicates again.
		m.tPlus = ranked[len(ranked)-1].Key
		m.tMinus = order.NegInf
		m.fs.AssignMidpoint(0) // installs [−∞, +∞] for k == n
		return
	}

	kth := ranked[m.cfg.K-1].Key
	kPlus1 := ranked[m.cfg.K].Key
	m.tPlus, m.tMinus = kth, kPlus1
	mid := order.Midpoint(kPlus1, kth)
	// Line 41: one broadcast lets every node derive its new filter (nodes
	// in the announced top set take [M, +∞], everyone else [−∞, M]).
	rec.Record(comm.Bcast, 1)
	m.cfg.Trace.Append(comm.Event{Step: m.step, Kind: comm.Bcast, From: comm.Coordinator, To: comm.Everyone, Payload: int64(mid), Note: "filter reset"})
	m.fs.AssignMidpoint(mid)
}

// maxProto dispatches the maximum protocol per the UseGather ablation flag.
func (m *Monitor) maxProto(parts []protocol.Participant, bound int, rec comm.Recorder) protocol.Result {
	if m.cfg.UseGather {
		return protocol.GatherAll(parts, rec, m.cfg.Trace, m.step)
	}
	return protocol.Maximum(parts, bound, rec, m.cfg.Trace, m.step)
}

// minProto dispatches the minimum protocol per the UseGather ablation flag.
func (m *Monitor) minProto(parts []protocol.Participant, bound int, rec comm.Recorder) protocol.Result {
	if m.cfg.UseGather {
		return protocol.GatherAllMin(parts, rec, m.cfg.Trace, m.step)
	}
	return protocol.Minimum(parts, bound, rec, m.cfg.Trace, m.step)
}

// side collects the current participants of one side: top-k members when
// top is true, outsiders otherwise.
func (m *Monitor) side(top bool) []protocol.Participant {
	var out []protocol.Participant
	for id := 0; id < m.cfg.N; id++ {
		if m.fs.InTop(id) == top {
			out = append(out, protocol.Participant{ID: id, Key: m.keys[id], RNG: m.rngs[id]})
		}
	}
	return out
}

// Keys exposes the key vector of the last observed step (for invariant
// checks in tests).
func (m *Monitor) Keys() []order.Key {
	out := make([]order.Key, len(m.keys))
	copy(out, m.keys)
	return out
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
