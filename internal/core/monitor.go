// Package core implements the paper's primary contribution: the
// filter-based online algorithm for Top-k-Position Monitoring
// (Algorithm 1). A Monitor plays both roles of the model — the coordinator
// and the per-node filter checks — against observation vectors supplied
// one time step at a time, and accounts every message the model would
// charge.
//
// The coordinator's decision logic — violation handling, T+/T− tightening,
// midpoint broadcasts, FILTERRESET — lives in the sans-I/O state machine
// of internal/coord, which this package (like every other engine) merely
// drives. The Monitor's own job is the node side and the substrate: it
// holds the node-local keys, filters and generators, selects protocol
// cohorts, and executes the machine's effects by direct procedure calls
// (protocol executions via internal/protocol, which also serves the
// UseGather ablation and optional tracing).
//
// The flow per time step follows the paper exactly:
//
//  1. Every node checks its filter locally. Nodes that were in top-k at the
//     previous step and now violate run MINIMUMPROTOCOL(k) among
//     themselves; violating outsiders run MAXIMUMPROTOCOL(n-k).
//  2. If anything was communicated, FILTERVIOLATIONHANDLER completes the
//     picture: if no outsider communicated, it runs MAXIMUMPROTOCOL over
//     all outsiders; otherwise it runs MINIMUMPROTOCOL over all top-k
//     nodes. It then lowers T+ / raises T− with the learned extrema.
//  3. If T+ < T− the top-k set may have changed and FILTERRESET recomputes
//     the top k+1 values from scratch (k+1 maximum-protocol executions)
//     and reinstalls midpoint filters. Otherwise the handler broadcasts a
//     new midpoint of [T−, T+] and the filters tighten around it.
//
// The monitor reports the top-k node ids after every step; the sequence of
// reports is exact at all times (the protocols are Las Vegas), which the
// simulation oracle asserts step by step in tests.
package core

import (
	"fmt"

	"repro/internal/comm"
	"repro/internal/coord"
	"repro/internal/filter"
	"repro/internal/order"
	"repro/internal/protocol"
	"repro/internal/rng"
)

// Config parameterizes a Monitor.
type Config struct {
	// N is the number of nodes, K the size of the monitored top set
	// (1 <= K <= N).
	N, K int
	// Seed drives all protocol randomness; runs are reproducible given it.
	Seed uint64
	// DistinctValues asserts that the caller guarantees pairwise distinct
	// observations at every time step (the paper's model assumption). When
	// false (the default), the monitor applies the order-preserving
	// injection key = v*n + (n-1-i), breaking ties by smaller node id.
	DistinctValues bool
	// Epsilon selects the ε-approximate mode (0 <= Epsilon < 1): filters
	// widen to (1±ε) bands, violation steps whose learned extrema still
	// fit one band skip the FILTERRESET, and violation/handler protocol
	// executions run with ε-tolerant samplers. Reports are then valid
	// ε-approximations of the top-k (sim.EpsValid) rather than exact; 0
	// (the default) is bit-identical to the exact algorithm.
	Epsilon float64
	// UseGather replaces every MAXIMUMPROTOCOL / MINIMUMPROTOCOL execution
	// with the naive gather-all protocol (M(n) = n instead of O(log n)).
	// The filter logic is unchanged. This isolates the contribution of the
	// randomized protocol in the ablation experiment E12.
	UseGather bool
	// Trace, when non-nil, captures communication events for debugging.
	Trace *comm.Trace
}

// Stats exposes counters describing a monitor's execution so far. It is
// the coordinator core's Stats type; every engine reports it identically
// for the same seed.
type Stats = coord.Stats

// Monitor runs Algorithm 1. Create with New; it is not safe for concurrent
// use (the concurrent engine lives in internal/runtime).
//
// The monitor is allocation-free in steady state: every per-step buffer —
// violator cohorts, protocol participants, sampler state, extraction
// results — is owned by the monitor and reused, and the filter set keeps
// the reported top-k slice cached. A violation-free step via ObserveDelta
// costs O(#changed nodes) and zero heap allocations.
type Monitor struct {
	cfg   Config
	codec order.Codec
	tol   order.Tol
	fs    *filter.Set
	mach  *coord.Machine

	rngs []*rng.RNG  // per-node protocol randomness
	keys []order.Key // node-local current keys (rewritten as deltas arrive)

	step int64

	// Reusable scratch buffers; see the type comment.
	allIDs    []int                  // 0..n-1, the dense delta
	violTop   []protocol.Participant // violating former top-k nodes
	violOut   []protocol.Participant // violating outsiders
	parts     []protocol.Participant // side() / reset participant scratch
	remaining []protocol.Participant // reset extraction view into parts
	topBuf    []int                  // membership install scratch
	pscratch  protocol.Scratch
	inReset   bool // a FILTERRESET is in flight this step
}

// New validates the configuration and returns a monitor. The first
// Observe or ObserveDelta call performs the paper's time-0 FILTERRESET
// initialization; until a node's first delta arrives it is treated as
// holding the value 0.
func New(cfg Config) *Monitor {
	if cfg.N <= 0 {
		panic("core: monitor needs N > 0")
	}
	if cfg.K < 1 || cfg.K > cfg.N {
		panic("core: monitor needs 1 <= K <= N")
	}
	tol, err := order.NewTol(cfg.Epsilon)
	if err != nil {
		panic("core: " + err.Error())
	}
	m := &Monitor{
		cfg:    cfg,
		codec:  order.NewCodec(cfg.N),
		tol:    tol,
		fs:     filter.NewSet(cfg.N, cfg.K),
		mach:   coord.New(coord.Config{N: cfg.N, K: cfg.K, Tol: tol}),
		rngs:   make([]*rng.RNG, cfg.N),
		keys:   make([]order.Key, cfg.N),
		allIDs: make([]int, cfg.N),
		topBuf: make([]int, 0, cfg.K),
	}
	root := rng.New(cfg.Seed, 0xc02e)
	for i := range m.rngs {
		m.rngs[i] = root.Split(uint64(i))
		m.allIDs[i] = i
		m.keys[i] = m.encode(0, i)
	}
	return m
}

// MaxValue returns the largest observation magnitude the monitor accepts
// (symmetrically, -MaxValue is the smallest): order.MaxValueFor of the
// monitor's configuration. The public boundary (package topk) validates
// against it and returns an error; this internal engine panics, as for
// its other input contracts.
func (m *Monitor) MaxValue() int64 {
	return order.MaxValueFor(m.cfg.N, m.cfg.DistinctValues)
}

// encode maps one observation into the key domain per the DistinctValues
// mode. Out-of-domain values panic in either mode: Encode's own range
// check covers the injection, and the distinct path must reject the
// values that would collide with the ±∞ sentinels instead of silently
// corrupting the order.
func (m *Monitor) encode(v int64, id int) order.Key {
	if m.cfg.DistinctValues {
		if v > order.MaxDistinctValue || v < -order.MaxDistinctValue {
			panic(fmt.Sprintf("core: node %d value %d collides with the key-domain sentinels", id, v))
		}
		return order.Key(v)
	}
	return m.codec.Encode(v, id)
}

// N returns the node count.
func (m *Monitor) N() int { return m.cfg.N }

// K returns the monitored top set size.
func (m *Monitor) K() int { return m.cfg.K }

// Ledger returns the monitor's message ledger (total and per-phase counts).
func (m *Monitor) Ledger() *comm.Ledger { return m.mach.Ledger() }

// Counts returns the monitor's total message counts. It is the accessor
// the sim.Algorithm interface expects; the per-phase breakdown remains
// available through Ledger.
func (m *Monitor) Counts() comm.Counts { return m.mach.Counts() }

// Bytes returns the total encoded size of the charged messages (the
// sim.ByteCounter accessor).
func (m *Monitor) Bytes() comm.Bytes { return m.mach.Bytes() }

// Stats returns execution counters.
func (m *Monitor) Stats() Stats { return m.mach.Stats() }

// Filters exposes the current filter assignment for invariant checking.
func (m *Monitor) Filters() *filter.Set { return m.fs }

// Top returns the currently reported top-k node ids in ascending order.
// The returned slice is a read-only view owned by the monitor; it is
// invalidated by the next observation that changes the top set, and
// mutating it corrupts the monitor. Use AppendTop to copy.
func (m *Monitor) Top() []int { return m.fs.Top() }

// AppendTop appends the currently reported top-k ids (ascending) to dst
// and returns the extended slice. The appended values are copies owned by
// the caller: they stay valid across later steps, and mutating them never
// affects the monitor.
func (m *Monitor) AppendTop(dst []int) []int { return m.fs.AppendTop(dst) }

// EncodeAll maps a raw observation vector into the monitor's key domain,
// applying the tie-break injection unless DistinctValues is set. The
// correctness oracle uses it to rank nodes exactly as the monitor does.
func (m *Monitor) EncodeAll(vals []int64, keys []order.Key) {
	if len(vals) != m.cfg.N || len(keys) != m.cfg.N {
		panic("core: EncodeAll length mismatch")
	}
	for i, v := range vals {
		keys[i] = m.encode(v, i)
	}
}

// Observe processes one time step of observations (vals[i] is node i's new
// value) and returns the top-k node ids in ascending order. The returned
// slice is a read-only view owned by the monitor, valid until the next
// step that changes the top set; use AppendTop to copy. Observe is the
// dense form of ObserveDelta: every node is treated as touched.
func (m *Monitor) Observe(vals []int64) []int {
	if len(vals) != m.cfg.N {
		panic(fmt.Sprintf("core: observed %d values for %d nodes", len(vals), m.cfg.N))
	}
	return m.ObserveDelta(m.allIDs, vals)
}

// ObserveDelta processes one time step in which only the nodes listed in
// ids changed their values: vals[j] is node ids[j]'s new observation, and
// every other node repeats its previous value. ids must be strictly
// increasing; both slices may be empty (a step where nothing changed) and
// are not retained. The step costs O(len(ids)) plus any protocol work and
// performs no heap allocation when no filter is violated.
//
// Sparse and dense ingestion are interchangeable: feeding the same logical
// value sequence through any mix of Observe and ObserveDelta yields
// identical reports and identical message counts, because a node whose
// value did not change can never newly violate its filter (the monitor
// maintains the invariant that after every step each node's value lies
// inside its assigned filter).
func (m *Monitor) ObserveDelta(ids []int, vals []int64) []int {
	if len(ids) != len(vals) {
		panic(fmt.Sprintf("core: delta has %d ids but %d values", len(ids), len(vals)))
	}
	// Validate fully before mutating any key, so a panic on bad input
	// leaves the monitor untouched (matching the runtime engine).
	prev := -1
	for _, id := range ids {
		if id <= prev || id >= m.cfg.N {
			panic(fmt.Sprintf("core: delta ids must be strictly increasing in [0, %d), got %d after %d", m.cfg.N, id, prev))
		}
		prev = id
	}
	for j, id := range ids {
		m.keys[id] = m.encode(vals[j], id)
	}
	m.step = m.mach.BeginStep()

	// Node-local filter checks (Algorithm 1 line 3), restricted to the
	// touched nodes: an untouched node's value lies inside its filter by
	// the per-step invariant. With k == n all filters are [−∞, +∞] and
	// this loop never fires.
	m.violTop, m.violOut = m.violTop[:0], m.violOut[:0]
	for _, id := range ids {
		if violated, _ := m.fs.Interval(id).Violates(m.keys[id]); !violated {
			continue
		}
		p := protocol.Participant{ID: id, Key: m.keys[id], RNG: m.rngs[id]}
		if m.fs.InTop(id) {
			m.violTop = append(m.violTop, p)
		} else {
			m.violOut = append(m.violOut, p)
		}
	}

	eff := m.mach.FinishStep(len(m.violTop) > 0, len(m.violOut) > 0)
	for eff.Kind != coord.EffDone {
		switch eff.Kind {
		case coord.EffExec:
			res := m.exec(eff)
			eff = m.mach.ExecDone(res.OK, res.ID, res.Key)
		case coord.EffResetBegin:
			m.beginReset()
			eff = m.mach.Ack()
		case coord.EffWinner:
			m.extract(eff.Target)
			eff = m.mach.Ack()
		case coord.EffMidpoint, coord.EffBounds:
			m.installMidpoint(eff)
			eff = m.mach.Ack()
		default:
			panic(fmt.Sprintf("core: unknown coordinator effect %d", eff.Kind))
		}
	}
	return m.fs.Top()
}

// exec runs one protocol execution over the effect's cohort, dispatching
// per the UseGather ablation flag. Violation and handler executions run
// with the monitor's tolerance (a no-op at ε=0); reset extractions are
// always exact (see coord.TolerantTag).
func (m *Monitor) exec(eff coord.Effect) protocol.Result {
	parts := m.cohort(eff.Tag)
	rec := m.mach.Recorder(eff.Phase)
	tol := m.tol
	if !coord.TolerantTag(eff.Tag) {
		tol = order.Tol{}
	}
	switch {
	case m.cfg.UseGather && coord.MinimumTag(eff.Tag):
		return protocol.GatherAllMin(parts, rec, m.cfg.Trace, m.step)
	case m.cfg.UseGather:
		return protocol.GatherAll(parts, rec, m.cfg.Trace, m.step)
	case coord.MinimumTag(eff.Tag):
		return m.pscratch.MinimumTol(parts, eff.Bound, tol, rec, m.cfg.Trace, m.step)
	default:
		return m.pscratch.MaximumTol(parts, eff.Bound, tol, rec, m.cfg.Trace, m.step)
	}
}

// cohort materializes the participant set of one protocol tag. Violator
// cohorts were collected during the step's filter checks; handler cohorts
// are one membership side; the reset cohort is the not-yet-extracted
// remainder maintained by beginReset/extract.
func (m *Monitor) cohort(tag uint8) []protocol.Participant {
	switch tag {
	case coord.TagViolMin:
		return m.violTop
	case coord.TagViolMax:
		return m.violOut
	case coord.TagHandMin:
		return m.side(true)
	case coord.TagHandMax:
		return m.side(false)
	case coord.TagReset:
		return m.remaining
	default:
		panic(fmt.Sprintf("core: unknown protocol tag %d", tag))
	}
}

// side collects the current participants of one side into a reused buffer:
// top-k members when top is true, outsiders otherwise. The buffer is valid
// until the next side or beginReset call.
func (m *Monitor) side(top bool) []protocol.Participant {
	m.parts = m.parts[:0]
	for id := 0; id < m.cfg.N; id++ {
		if m.fs.InTop(id) == top {
			m.parts = append(m.parts, protocol.Participant{ID: id, Key: m.keys[id], RNG: m.rngs[id]})
		}
	}
	return m.parts
}

// beginReset starts FILTERRESET's extraction sequence: all nodes become
// candidates again.
func (m *Monitor) beginReset() {
	m.inReset = true
	m.parts = m.parts[:0]
	for id := 0; id < m.cfg.N; id++ {
		m.parts = append(m.parts, protocol.Participant{ID: id, Key: m.keys[id], RNG: m.rngs[id]})
	}
	m.remaining = m.parts
}

// extract shift-removes an extraction winner from the remaining
// candidates. Removal must preserve the id-ascending participant order:
// with duplicate keys (possible in DistinctValues mode when the caller's
// distinctness promise is not yet established, e.g. before every node has
// observed) the protocol breaks ties by iteration order, and the
// concurrent engine always iterates non-extracted nodes id-ascending.
func (m *Monitor) extract(id int) {
	for i := range m.remaining {
		if m.remaining[i].ID == id {
			m.remaining = append(m.remaining[:i], m.remaining[i+1:]...)
			return
		}
	}
	panic(fmt.Sprintf("core: extraction winner %d not among remaining candidates", id))
}

// installMidpoint applies a midpoint (or ε-mode band) broadcast: after a
// reset it first installs the machine's freshly extracted membership
// (SetMembership does not retain its input), then re-anchors every
// filter.
func (m *Monitor) installMidpoint(eff coord.Effect) {
	payload := int64(eff.Mid)
	note, resetNote := "midpoint", "filter reset"
	if eff.Kind == coord.EffBounds {
		payload = int64(eff.Lo)
		note, resetNote = "bounds", "filter reset bounds"
		if m.cfg.Trace != nil {
			// Band installs carry Lo as the payload and the upper end in
			// the note, so ε-mode traces stay distinguishable from
			// point-midpoint installs and both ends are recoverable.
			note = fmt.Sprintf("bounds hi=%d", eff.Hi)
			resetNote = fmt.Sprintf("filter reset bounds hi=%d", eff.Hi)
		}
	}
	if m.inReset {
		m.inReset = false
		m.topBuf = m.mach.AppendTop(m.topBuf[:0])
		m.fs.SetMembership(m.topBuf)
		if !eff.Full {
			m.cfg.Trace.Append(comm.Event{Step: m.step, Kind: comm.Bcast, From: comm.Coordinator, To: comm.Everyone, Payload: payload, Note: resetNote})
		}
	} else {
		m.cfg.Trace.Append(comm.Event{Step: m.step, Kind: comm.Bcast, From: comm.Coordinator, To: comm.Everyone, Payload: payload, Note: note})
	}
	switch {
	case eff.Full:
		// k == n: AssignMidpoint installs [−∞, +∞] regardless of the bound.
		m.fs.AssignMidpoint(0)
	case eff.Kind == coord.EffBounds:
		m.fs.AssignBand(eff.Lo, eff.Hi)
	default:
		m.fs.AssignMidpoint(eff.Mid)
	}
}

// Keys exposes the key vector of the last observed step (for invariant
// checks in tests).
func (m *Monitor) Keys() []order.Key {
	out := make([]order.Key, len(m.keys))
	copy(out, m.keys)
	return out
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
