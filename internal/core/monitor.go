// Package core implements the paper's primary contribution: the
// filter-based online algorithm for Top-k-Position Monitoring
// (Algorithm 1). A Monitor plays both roles of the model — the coordinator
// state machine and the per-node filter checks — against observation
// vectors supplied one time step at a time, and accounts every message the
// model would charge.
//
// The flow per time step follows the paper exactly:
//
//  1. Every node checks its filter locally. Nodes that were in top-k at the
//     previous step and now violate run MINIMUMPROTOCOL(k) among
//     themselves; violating outsiders run MAXIMUMPROTOCOL(n-k).
//  2. If anything was communicated, FILTERVIOLATIONHANDLER completes the
//     picture: if no outsider communicated, it runs MAXIMUMPROTOCOL over
//     all outsiders; otherwise it runs MINIMUMPROTOCOL over all top-k
//     nodes. It then lowers T+ / raises T− with the learned extrema.
//  3. If T+ < T− the top-k set may have changed and FILTERRESET recomputes
//     the top k+1 values from scratch (k+1 maximum-protocol executions)
//     and reinstalls midpoint filters. Otherwise the handler broadcasts a
//     new midpoint of [T−, T+] and the filters tighten around it.
//
// The monitor reports the top-k node ids after every step; the sequence of
// reports is exact at all times (the protocols are Las Vegas), which the
// simulation oracle asserts step by step in tests.
package core

import (
	"fmt"

	"repro/internal/comm"
	"repro/internal/filter"
	"repro/internal/order"
	"repro/internal/protocol"
	"repro/internal/rng"
	"repro/internal/wire"
)

// Config parameterizes a Monitor.
type Config struct {
	// N is the number of nodes, K the size of the monitored top set
	// (1 <= K <= N).
	N, K int
	// Seed drives all protocol randomness; runs are reproducible given it.
	Seed uint64
	// DistinctValues asserts that the caller guarantees pairwise distinct
	// observations at every time step (the paper's model assumption). When
	// false (the default), the monitor applies the order-preserving
	// injection key = v*n + (n-1-i), breaking ties by smaller node id.
	DistinctValues bool
	// UseGather replaces every MAXIMUMPROTOCOL / MINIMUMPROTOCOL execution
	// with the naive gather-all protocol (M(n) = n instead of O(log n)).
	// The filter logic is unchanged. This isolates the contribution of the
	// randomized protocol in the ablation experiment E12.
	UseGather bool
	// Trace, when non-nil, captures communication events for debugging.
	Trace *comm.Trace
}

// Stats exposes counters describing a monitor's execution so far.
type Stats struct {
	Steps          int64 // observation steps processed
	ViolationSteps int64 // steps in which at least one filter was violated
	HandlerCalls   int64 // FILTERVIOLATIONHANDLER executions
	Resets         int64 // FILTERRESET executions (including initialization)
	// TopChanges counts steps whose reported set differed from the
	// previous step's, including the initial transition from the empty
	// pre-observation state to the first report.
	TopChanges int64
}

// Monitor runs Algorithm 1. Create with New; it is not safe for concurrent
// use (the concurrent engine lives in internal/runtime).
//
// The monitor is allocation-free in steady state: every per-step buffer —
// violator cohorts, protocol participants, sampler state, extraction
// results — is owned by the monitor and reused, and the filter set keeps
// the reported top-k slice cached. A violation-free step via ObserveDelta
// costs O(#changed nodes) and zero heap allocations.
type Monitor struct {
	cfg   Config
	codec order.Codec
	fs    *filter.Set
	led   *comm.Ledger

	rngs []*rng.RNG  // per-node protocol randomness
	keys []order.Key // node-local current keys (rewritten as deltas arrive)

	tPlus  order.Key // T+(t0, t): min over top-k values since last reset
	tMinus order.Key // T−(t0, t): max over outside values since last reset

	step  int64
	init  bool
	stats Stats

	// Pre-built phase recorders (constructing one per step would box an
	// interface value on the heap).
	recViol  comm.Recorder
	recHand  comm.Recorder
	recReset comm.Recorder

	// Reusable scratch buffers; see the type comment.
	allIDs     []int                  // 0..n-1, the dense delta
	violTop    []protocol.Participant // violating former top-k nodes
	violOut    []protocol.Participant // violating outsiders
	parts      []protocol.Participant // side() / filterReset participant scratch
	rankedIDs  []int                  // filterReset extraction order
	rankedKeys []order.Key
	pscratch   protocol.Scratch
}

// New validates the configuration and returns a monitor. The first
// Observe or ObserveDelta call performs the paper's time-0 FILTERRESET
// initialization; until a node's first delta arrives it is treated as
// holding the value 0.
func New(cfg Config) *Monitor {
	if cfg.N <= 0 {
		panic("core: monitor needs N > 0")
	}
	if cfg.K < 1 || cfg.K > cfg.N {
		panic("core: monitor needs 1 <= K <= N")
	}
	m := &Monitor{
		cfg:    cfg,
		codec:  order.NewCodec(cfg.N),
		fs:     filter.NewSet(cfg.N, cfg.K),
		led:    &comm.Ledger{},
		rngs:   make([]*rng.RNG, cfg.N),
		keys:   make([]order.Key, cfg.N),
		allIDs: make([]int, cfg.N),
	}
	m.recViol = m.led.InPhase(comm.PhaseViolation)
	m.recHand = m.led.InPhase(comm.PhaseHandler)
	m.recReset = m.led.InPhase(comm.PhaseReset)
	root := rng.New(cfg.Seed, 0xc02e)
	for i := range m.rngs {
		m.rngs[i] = root.Split(uint64(i))
		m.allIDs[i] = i
		m.keys[i] = m.encode(0, i)
	}
	return m
}

// encode maps one observation into the key domain per the DistinctValues
// mode.
func (m *Monitor) encode(v int64, id int) order.Key {
	if m.cfg.DistinctValues {
		return order.Key(v)
	}
	return m.codec.Encode(v, id)
}

// N returns the node count.
func (m *Monitor) N() int { return m.cfg.N }

// K returns the monitored top set size.
func (m *Monitor) K() int { return m.cfg.K }

// Ledger returns the monitor's message ledger (total and per-phase counts).
func (m *Monitor) Ledger() *comm.Ledger { return m.led }

// Counts returns the monitor's total message counts. It is the accessor
// the sim.Algorithm interface expects; the per-phase breakdown remains
// available through Ledger.
func (m *Monitor) Counts() comm.Counts { return m.led.Total() }

// Bytes returns the total encoded size of the charged messages (the
// sim.ByteCounter accessor).
func (m *Monitor) Bytes() comm.Bytes { return m.led.TotalBytes() }

// Stats returns execution counters.
func (m *Monitor) Stats() Stats { return m.stats }

// Filters exposes the current filter assignment for invariant checking.
func (m *Monitor) Filters() *filter.Set { return m.fs }

// Top returns the currently reported top-k node ids in ascending order.
// The returned slice is a read-only view owned by the monitor; it is
// invalidated by the next observation that changes the top set. Use
// AppendTop to copy.
func (m *Monitor) Top() []int { return m.fs.Top() }

// AppendTop appends the currently reported top-k ids (ascending) to dst
// and returns the extended slice.
func (m *Monitor) AppendTop(dst []int) []int { return m.fs.AppendTop(dst) }

// EncodeAll maps a raw observation vector into the monitor's key domain,
// applying the tie-break injection unless DistinctValues is set. The
// correctness oracle uses it to rank nodes exactly as the monitor does.
func (m *Monitor) EncodeAll(vals []int64, keys []order.Key) {
	if len(vals) != m.cfg.N || len(keys) != m.cfg.N {
		panic("core: EncodeAll length mismatch")
	}
	for i, v := range vals {
		keys[i] = m.encode(v, i)
	}
}

// Observe processes one time step of observations (vals[i] is node i's new
// value) and returns the top-k node ids in ascending order. The returned
// slice is a read-only view owned by the monitor, valid until the next
// step that changes the top set; use AppendTop to copy. Observe is the
// dense form of ObserveDelta: every node is treated as touched.
func (m *Monitor) Observe(vals []int64) []int {
	if len(vals) != m.cfg.N {
		panic(fmt.Sprintf("core: observed %d values for %d nodes", len(vals), m.cfg.N))
	}
	return m.ObserveDelta(m.allIDs, vals)
}

// ObserveDelta processes one time step in which only the nodes listed in
// ids changed their values: vals[j] is node ids[j]'s new observation, and
// every other node repeats its previous value. ids must be strictly
// increasing; both slices may be empty (a step where nothing changed) and
// are not retained. The step costs O(len(ids)) plus any protocol work and
// performs no heap allocation when no filter is violated.
//
// Sparse and dense ingestion are interchangeable: feeding the same logical
// value sequence through any mix of Observe and ObserveDelta yields
// identical reports and identical message counts, because a node whose
// value did not change can never newly violate its filter (the monitor
// maintains the invariant that after every step each node's value lies
// inside its assigned filter).
func (m *Monitor) ObserveDelta(ids []int, vals []int64) []int {
	if len(ids) != len(vals) {
		panic(fmt.Sprintf("core: delta has %d ids but %d values", len(ids), len(vals)))
	}
	// Validate fully before mutating any key, so a panic on bad input
	// leaves the monitor untouched (matching the runtime engine).
	prev := -1
	for _, id := range ids {
		if id <= prev || id >= m.cfg.N {
			panic(fmt.Sprintf("core: delta ids must be strictly increasing in [0, %d), got %d after %d", m.cfg.N, id, prev))
		}
		prev = id
	}
	for j, id := range ids {
		m.keys[id] = m.encode(vals[j], id)
	}
	m.step++
	m.stats.Steps++

	prevGen := m.fs.Generation()
	if !m.init {
		m.filterReset()
		m.init = true
	} else {
		m.handleStep(ids)
	}
	if m.fs.Generation() != prevGen {
		m.stats.TopChanges++
	}
	return m.fs.Top()
}

// handleStep performs Algorithm 1 lines 2-14 for one time step in which
// exactly the nodes in ids changed.
func (m *Monitor) handleStep(ids []int) {
	// Node-local filter checks (line 3), restricted to the touched nodes:
	// an untouched node's value lies inside its filter by the per-step
	// invariant. With k == n all filters are [−∞, +∞] and this loop never
	// fires.
	m.violTop, m.violOut = m.violTop[:0], m.violOut[:0]
	for _, id := range ids {
		if violated, _ := m.fs.Interval(id).Violates(m.keys[id]); !violated {
			continue
		}
		p := protocol.Participant{ID: id, Key: m.keys[id], RNG: m.rngs[id]}
		if m.fs.InTop(id) {
			m.violTop = append(m.violTop, p)
		} else {
			m.violOut = append(m.violOut, p)
		}
	}
	if len(m.violTop) == 0 && len(m.violOut) == 0 {
		return
	}
	m.stats.ViolationSteps++

	// Lines 4-8: violating former top-k nodes determine their minimum;
	// violating outsiders determine their maximum. Population bounds are k
	// and n-k respectively, which the nodes know from the last broadcast.
	var minRes, maxRes protocol.Result
	if len(m.violTop) > 0 {
		minRes = m.minProto(m.violTop, m.cfg.K, m.recViol)
	}
	if len(m.violOut) > 0 {
		maxRes = m.maxProto(m.violOut, m.cfg.N-m.cfg.K, m.recViol)
	}
	m.violationHandler(minRes, maxRes)
}

// violationHandler is FILTERVIOLATIONHANDLER (Algorithm 1 lines 15-35).
func (m *Monitor) violationHandler(minRes, maxRes protocol.Result) {
	m.stats.HandlerCalls++
	rec := m.recHand

	if !maxRes.OK {
		// Line 23: learn the maximum over all current outsiders.
		maxRes = m.maxProto(m.side(false), m.cfg.N-m.cfg.K, rec)
	} else {
		// Line 25: learn the minimum over all current top-k nodes. The
		// paper runs this even when the violation phase already produced a
		// minimum over the violating subset.
		minRes = m.minProto(m.side(true), m.cfg.K, rec)
	}

	// Lines 27-28: tighten the running extrema. With k == n the outside
	// side is empty and maxRes stays !OK, but that configuration never
	// violates, so reaching here implies both results are valid.
	if minRes.OK {
		m.tPlus = order.Min(m.tPlus, minRes.Key)
	}
	if maxRes.OK {
		m.tMinus = order.Max(m.tMinus, maxRes.Key)
	}

	if m.tPlus < m.tMinus {
		m.filterReset() // line 30
		return
	}
	// Lines 32-33: broadcast the midpoint of [T−, T+]; nodes re-anchor
	// their filters around it.
	mid := order.Midpoint(m.tMinus, m.tPlus)
	comm.RecordSized(rec, comm.Bcast, 1, wire.SizeMidpoint(int64(mid)))
	m.cfg.Trace.Append(comm.Event{Step: m.step, Kind: comm.Bcast, From: comm.Coordinator, To: comm.Everyone, Payload: int64(mid), Note: "midpoint"})
	m.fs.AssignMidpoint(mid)
}

// filterReset is FILTERRESET (Algorithm 1 lines 36-42): determine the k+1
// largest values via repeated MAXIMUMPROTOCOL executions with population
// bound n, then install fresh midpoint filters. All extraction state lives
// in reusable monitor-owned buffers.
func (m *Monitor) filterReset() {
	m.stats.Resets++
	rec := m.recReset

	m.parts = m.parts[:0]
	for id := 0; id < m.cfg.N; id++ {
		m.parts = append(m.parts, protocol.Participant{ID: id, Key: m.keys[id], RNG: m.rngs[id]})
	}
	want := m.cfg.K + 1
	if want > m.cfg.N {
		want = m.cfg.N // k == n: there is no (k+1)-st value
	}
	// Repeated extraction as in protocol.TopExtract, with the winner
	// shift-removed from a reused buffer. Removal must preserve the
	// id-ascending participant order: with duplicate keys (possible in
	// DistinctValues mode when the caller's distinctness promise is not
	// yet established, e.g. before every node has observed) the protocol
	// breaks ties by iteration order, and the concurrent engine always
	// iterates non-extracted nodes id-ascending.
	m.rankedIDs, m.rankedKeys = m.rankedIDs[:0], m.rankedKeys[:0]
	remaining := m.parts
	for e := 0; e < want; e++ {
		res := m.maxProto(remaining, m.cfg.N, rec)
		m.rankedIDs = append(m.rankedIDs, res.ID)
		m.rankedKeys = append(m.rankedKeys, res.Key)
		for i := range remaining {
			if remaining[i].ID == res.ID {
				remaining = append(remaining[:i], remaining[i+1:]...)
				break
			}
		}
	}

	m.fs.SetMembership(m.rankedIDs[:m.cfg.K]) // SetMembership does not retain its input

	if m.cfg.K == m.cfg.N {
		// Degenerate case: every node is in the top set; filters are
		// unconstrained and the monitor never communicates again.
		m.tPlus = m.rankedKeys[len(m.rankedKeys)-1]
		m.tMinus = order.NegInf
		m.fs.AssignMidpoint(0) // installs [−∞, +∞] for k == n
		return
	}

	kth := m.rankedKeys[m.cfg.K-1]
	kPlus1 := m.rankedKeys[m.cfg.K]
	m.tPlus, m.tMinus = kth, kPlus1
	mid := order.Midpoint(kPlus1, kth)
	// Line 41: one broadcast lets every node derive its new filter (nodes
	// in the announced top set take [M, +∞], everyone else [−∞, M]).
	comm.RecordSized(rec, comm.Bcast, 1, wire.SizeMidpoint(int64(mid)))
	m.cfg.Trace.Append(comm.Event{Step: m.step, Kind: comm.Bcast, From: comm.Coordinator, To: comm.Everyone, Payload: int64(mid), Note: "filter reset"})
	m.fs.AssignMidpoint(mid)
}

// maxProto dispatches the maximum protocol per the UseGather ablation flag.
func (m *Monitor) maxProto(parts []protocol.Participant, bound int, rec comm.Recorder) protocol.Result {
	if m.cfg.UseGather {
		return protocol.GatherAll(parts, rec, m.cfg.Trace, m.step)
	}
	return m.pscratch.Maximum(parts, bound, rec, m.cfg.Trace, m.step)
}

// minProto dispatches the minimum protocol per the UseGather ablation flag.
func (m *Monitor) minProto(parts []protocol.Participant, bound int, rec comm.Recorder) protocol.Result {
	if m.cfg.UseGather {
		return protocol.GatherAllMin(parts, rec, m.cfg.Trace, m.step)
	}
	return m.pscratch.Minimum(parts, bound, rec, m.cfg.Trace, m.step)
}

// side collects the current participants of one side into a reused buffer:
// top-k members when top is true, outsiders otherwise. The buffer is valid
// until the next side or filterReset call.
func (m *Monitor) side(top bool) []protocol.Participant {
	m.parts = m.parts[:0]
	for id := 0; id < m.cfg.N; id++ {
		if m.fs.InTop(id) == top {
			m.parts = append(m.parts, protocol.Participant{ID: id, Key: m.keys[id], RNG: m.rngs[id]})
		}
	}
	return m.parts
}

// Keys exposes the key vector of the last observed step (for invariant
// checks in tests).
func (m *Monitor) Keys() []order.Key {
	out := make([]order.Key, len(m.keys))
	copy(out, m.keys)
	return out
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
