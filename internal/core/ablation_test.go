package core

import (
	"testing"

	"repro/internal/stream"
)

func TestMonitorGatherAblationExact(t *testing.T) {
	m := New(Config{N: 10, K: 3, Seed: 51, UseGather: true})
	src := stream.NewRandomWalk(stream.WalkConfig{N: 10, Lo: 0, Hi: 50000, MaxStep: 300, Seed: 52})
	runChecked(t, m, src, 250)
}

func TestMonitorGatherAblationCostsMore(t *testing.T) {
	// With M(n) = n instead of O(log n), the same workload must cost more
	// at scale. Use an IID workload so protocols run constantly.
	const n, steps = 64, 150
	run := func(gather bool) int64 {
		m := New(Config{N: n, K: 2, Seed: 53, UseGather: gather})
		src := stream.NewIID(stream.IIDConfig{N: n, Seed: 54, Dist: stream.Uniform, Lo: 0, Hi: 1 << 24})
		vals := make([]int64, n)
		for s := 0; s < steps; s++ {
			src.Step(vals)
			m.Observe(vals)
		}
		return m.Ledger().Total().Total()
	}
	sampled, gathered := run(false), run(true)
	if gathered <= sampled {
		t.Fatalf("gather-all (%d msgs) should cost more than sampled protocol (%d msgs)", gathered, sampled)
	}
}

func TestMonitorGatherAblationKEqualsN(t *testing.T) {
	m := New(Config{N: 4, K: 4, Seed: 55, UseGather: true})
	src := stream.NewIID(stream.IIDConfig{N: 4, Seed: 56, Dist: stream.Uniform, Lo: 0, Hi: 1000})
	runChecked(t, m, src, 50)
}
