package core

import (
	"sort"
	"testing"

	"repro/internal/order"
	"repro/internal/stream"
)

// orderedOracle returns the true top-k ids by rank (largest first) under
// the monitor's key mapping.
func orderedOracle(om *OrderedMonitor, vals []int64) []int {
	keys := make([]order.Key, om.N())
	om.inner.EncodeAll(vals, keys)
	ids := make([]int, om.N())
	for i := range ids {
		ids[i] = i
	}
	sort.Slice(ids, func(a, b int) bool { return keys[ids[a]] > keys[ids[b]] })
	return append([]int(nil), ids[:om.K()]...)
}

// runOrderedChecked asserts exact rank reports at every step.
func runOrderedChecked(t *testing.T, om *OrderedMonitor, src stream.Source, steps int) {
	t.Helper()
	vals := make([]int64, om.N())
	for s := 0; s < steps; s++ {
		src.Step(vals)
		got := om.Observe(vals)
		want := orderedOracle(om, vals)
		if !equalInts(got, want) {
			t.Fatalf("step %d: ranked top-k %v, oracle %v (vals=%v)", s, got, want, vals)
		}
	}
}

func TestOrderedMonitorWalkExact(t *testing.T) {
	om := NewOrdered(Config{N: 12, K: 4, Seed: 61})
	src := stream.NewRandomWalk(stream.WalkConfig{N: 12, Lo: 0, Hi: 100000, MaxStep: 400, Seed: 62})
	runOrderedChecked(t, om, src, 400)
}

func TestOrderedMonitorIIDExact(t *testing.T) {
	om := NewOrdered(Config{N: 10, K: 3, Seed: 63})
	src := stream.NewIID(stream.IIDConfig{N: 10, Seed: 64, Dist: stream.Uniform, Lo: 0, Hi: 1 << 20})
	runOrderedChecked(t, om, src, 250)
}

func TestOrderedMonitorTwoBandSwapsExact(t *testing.T) {
	om := NewOrdered(Config{N: 16, K: 5, Seed: 65})
	src := stream.NewTwoBand(stream.TwoBandConfig{N: 16, K: 5, Seed: 66, Gap: 1 << 16, BandWidth: 1 << 8, MaxStep: 30, SwapEvery: 40})
	runOrderedChecked(t, om, src, 300)
}

func TestOrderedMonitorRotationExact(t *testing.T) {
	om := NewOrdered(Config{N: 8, K: 2, Seed: 67})
	src := stream.NewRotation(stream.RotationConfig{N: 8, Period: 3, Base: 100, Peak: 10000})
	runOrderedChecked(t, om, src, 200)
}

func TestOrderedMonitorK1(t *testing.T) {
	om := NewOrdered(Config{N: 6, K: 1, Seed: 68})
	src := stream.NewBursty(stream.BurstyConfig{N: 6, Seed: 69, Lo: 0, Hi: 1 << 20, Noise: 5, BurstProb: 0.05, BurstMax: 1 << 16})
	runOrderedChecked(t, om, src, 200)
}

func TestOrderedMonitorKEqualsN(t *testing.T) {
	// With k = n the boundary layer is silent and the order layer alone
	// tracks the full ranking (the Lam et al. regime).
	om := NewOrdered(Config{N: 5, K: 5, Seed: 70})
	src := stream.NewRandomWalk(stream.WalkConfig{N: 5, Lo: 0, Hi: 10000, MaxStep: 200, Seed: 71})
	runOrderedChecked(t, om, src, 250)
}

func TestOrderedCostsAtLeastSetMonitoring(t *testing.T) {
	// Rank information is strictly more than set information; on a
	// workload with heavy intra-band churn the ordered monitor must spend
	// more and the plain monitor must stay cheap.
	const n, k, steps = 16, 4, 500
	src1 := stream.NewTwoBand(stream.TwoBandConfig{N: n, K: k, Seed: 72, Gap: 1 << 18, BandWidth: 1 << 12, MaxStep: 1 << 10})
	src2 := stream.NewTwoBand(stream.TwoBandConfig{N: n, K: k, Seed: 72, Gap: 1 << 18, BandWidth: 1 << 12, MaxStep: 1 << 10})
	om := NewOrdered(Config{N: n, K: k, Seed: 73})
	m := New(Config{N: n, K: k, Seed: 73})
	vals := make([]int64, n)
	for s := 0; s < steps; s++ {
		src1.Step(vals)
		om.Observe(vals)
	}
	for s := 0; s < steps; s++ {
		src2.Step(vals)
		m.Observe(vals)
	}
	ordCost, setCost := om.Counts().Total(), m.Counts().Total()
	if ordCost <= setCost {
		t.Fatalf("ordered (%d) should cost more than set-only (%d) under band churn", ordCost, setCost)
	}
	if setCost*3 < ordCost && setCost > 100 {
		// Sanity ceiling: order info within the band should not explode
		// beyond a small multiple on k=4.
		t.Logf("ordered/set cost ratio: %.1f", float64(ordCost)/float64(setCost))
	}
}

func TestOrderedOrderFilterAccessors(t *testing.T) {
	om := NewOrdered(Config{N: 6, K: 2, Seed: 74})
	om.Observe([]int64{60, 50, 40, 30, 20, 10})
	members := om.Top()
	if len(members) != 2 || members[0] != 0 || members[1] != 1 {
		t.Fatalf("rank order wrong: %v", members)
	}
	if _, ok := om.OrderFilter(members[0]); !ok {
		t.Fatal("member should expose an order filter")
	}
	if _, ok := om.OrderFilter(5); ok {
		t.Fatal("non-member should not expose an order filter")
	}
	// Order filters of adjacent ranks must not overlap beyond a point.
	top, _ := om.OrderFilter(members[0])
	second, _ := om.OrderFilter(members[1])
	if second.Hi > top.Lo {
		t.Fatalf("rank filters overlap: %v vs %v", top, second)
	}
}

func TestOrderedTopIsCopy(t *testing.T) {
	om := NewOrdered(Config{N: 4, K: 2, Seed: 75})
	om.Observe([]int64{4, 3, 2, 1})
	got := om.Top()
	got[0] = 99
	if om.Top()[0] == 99 {
		t.Fatal("Top must return a copy")
	}
}

func TestOrderedDeterministic(t *testing.T) {
	run := func() int64 {
		om := NewOrdered(Config{N: 10, K: 3, Seed: 76})
		src := stream.NewRandomWalk(stream.WalkConfig{N: 10, Lo: 0, Hi: 50000, MaxStep: 900, Seed: 77})
		vals := make([]int64, 10)
		for s := 0; s < 200; s++ {
			src.Step(vals)
			om.Observe(vals)
		}
		return om.Counts().Total()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("ordered monitor not deterministic: %d vs %d", a, b)
	}
}
