package core

import (
	"sort"
	"testing"

	"repro/internal/comm"
	"repro/internal/order"
	"repro/internal/stream"
)

// oracleTop computes the true top-k ids (ascending) under the monitor's
// own key mapping.
func oracleTop(m *Monitor, vals []int64) []int {
	keys := make([]order.Key, m.N())
	m.EncodeAll(vals, keys)
	ids := make([]int, m.N())
	for i := range ids {
		ids[i] = i
	}
	sort.Slice(ids, func(a, b int) bool { return keys[ids[a]] > keys[ids[b]] })
	top := append([]int(nil), ids[:m.K()]...)
	sort.Ints(top)
	return top
}

// runChecked drives the monitor over a source for steps steps, asserting
// exact correctness and filter validity (Lemma 2.2) after every step.
func runChecked(t *testing.T, m *Monitor, src stream.Source, steps int) {
	t.Helper()
	vals := make([]int64, m.N())
	keys := make([]order.Key, m.N())
	for s := 0; s < steps; s++ {
		src.Step(vals)
		got := m.Observe(vals)
		want := oracleTop(m, vals)
		if !equalInts(got, want) {
			t.Fatalf("step %d: reported top-k %v, oracle %v (vals=%v)", s, got, want, vals)
		}
		m.EncodeAll(vals, keys)
		if err := m.Filters().Validate(keys); err != nil {
			t.Fatalf("step %d: invalid filter set: %v", s, err)
		}
		if m.Filters().CountTop() != m.K() {
			t.Fatalf("step %d: membership size %d", s, m.Filters().CountTop())
		}
	}
}

func TestMonitorRandomWalkExact(t *testing.T) {
	m := New(Config{N: 16, K: 3, Seed: 1})
	src := stream.NewRandomWalk(stream.WalkConfig{N: 16, Lo: 0, Hi: 10000, MaxStep: 50, Seed: 2})
	runChecked(t, m, src, 400)
	if m.Stats().Steps != 400 {
		t.Fatalf("steps: %+v", m.Stats())
	}
}

func TestMonitorIIDExact(t *testing.T) {
	// IID uniform redraws force constant violations — the stress case.
	m := New(Config{N: 12, K: 4, Seed: 3})
	src := stream.NewIID(stream.IIDConfig{N: 12, Seed: 4, Dist: stream.Uniform, Lo: 0, Hi: 1 << 20})
	runChecked(t, m, src, 250)
	if m.Stats().Resets < 2 {
		t.Fatalf("IID workload should force resets: %+v", m.Stats())
	}
}

func TestMonitorRotationExact(t *testing.T) {
	m := New(Config{N: 8, K: 1, Seed: 5})
	src := stream.NewRotation(stream.RotationConfig{N: 8, Period: 3, Base: 100, Peak: 1000})
	runChecked(t, m, src, 200)
	if m.Stats().TopChanges < 50 {
		t.Fatalf("rotation should change top-1 often: %+v", m.Stats())
	}
}

func TestMonitorTwoBandExact(t *testing.T) {
	m := New(Config{N: 20, K: 5, Seed: 6})
	src := stream.NewTwoBand(stream.TwoBandConfig{N: 20, K: 5, Seed: 7, Gap: 100000, BandWidth: 1000, MaxStep: 30, SwapEvery: 40})
	runChecked(t, m, src, 300)
}

func TestMonitorBurstyExact(t *testing.T) {
	m := New(Config{N: 10, K: 2, Seed: 8})
	src := stream.NewBursty(stream.BurstyConfig{N: 10, Seed: 9, Lo: 0, Hi: 1 << 24, Noise: 5, BurstProb: 0.02, BurstMax: 1 << 20})
	runChecked(t, m, src, 300)
}

func TestMonitorConstCommunicatesOnceThenSilent(t *testing.T) {
	m := New(Config{N: 8, K: 2, Seed: 10})
	vals := []int64{10, 20, 30, 40, 50, 60, 70, 80}
	src := stream.NewConst(stream.ConstConfig{N: 8, Values: vals})
	runChecked(t, m, src, 5)
	afterInit := m.Ledger().Total().Total()
	runChecked(t, m, src, 100)
	if got := m.Ledger().Total().Total(); got != afterInit {
		t.Fatalf("constant input must cost nothing after init: %d -> %d", afterInit, got)
	}
	if m.Stats().Resets != 1 {
		t.Fatalf("only the init reset should run: %+v", m.Stats())
	}
}

func TestMonitorKEqualsN(t *testing.T) {
	m := New(Config{N: 5, K: 5, Seed: 11})
	src := stream.NewIID(stream.IIDConfig{N: 5, Seed: 12, Dist: stream.Uniform, Lo: 0, Hi: 1000})
	runChecked(t, m, src, 100)
	// After initialization the filters are unconstrained: zero traffic.
	afterInit := m.Ledger().Total().Total()
	runChecked(t, m, src, 100)
	if got := m.Ledger().Total().Total(); got != afterInit {
		t.Fatalf("k=n must be silent after init: %d -> %d", afterInit, got)
	}
}

func TestMonitorK1N1(t *testing.T) {
	m := New(Config{N: 1, K: 1, Seed: 13})
	src := stream.NewIID(stream.IIDConfig{N: 1, Seed: 14, Dist: stream.Uniform, Lo: 0, Hi: 100})
	runChecked(t, m, src, 50)
	if got := m.Top(); len(got) != 1 || got[0] != 0 {
		t.Fatalf("single node top: %v", got)
	}
}

func TestMonitorKEqualsNMinus1(t *testing.T) {
	m := New(Config{N: 6, K: 5, Seed: 15})
	src := stream.NewRandomWalk(stream.WalkConfig{N: 6, Lo: 0, Hi: 5000, MaxStep: 100, Seed: 16})
	runChecked(t, m, src, 200)
}

func TestMonitorDistinctValuesMode(t *testing.T) {
	// Rotation emits duplicate base values, so construct a distinct-value
	// trace: a shifted permutation per step.
	rows := make([][]int64, 100)
	for t0 := range rows {
		rows[t0] = make([]int64, 7)
		for i := range rows[t0] {
			rows[t0][i] = int64((i*13+t0*7)%101)*100 + int64(i)
		}
	}
	m := New(Config{N: 7, K: 2, Seed: 17, DistinctValues: true})
	runChecked(t, m, stream.NewTraceSource(rows), 100)
}

func TestMonitorDeterministic(t *testing.T) {
	run := func() (comm.Counts, Stats) {
		m := New(Config{N: 10, K: 3, Seed: 21})
		src := stream.NewRandomWalk(stream.WalkConfig{N: 10, Lo: 0, Hi: 10000, MaxStep: 200, Seed: 22})
		vals := make([]int64, 10)
		for s := 0; s < 200; s++ {
			src.Step(vals)
			m.Observe(vals)
		}
		return m.Ledger().Total(), m.Stats()
	}
	c1, s1 := run()
	c2, s2 := run()
	if c1 != c2 || s1 != s2 {
		t.Fatalf("non-deterministic run: %v/%v vs %v/%v", c1, s1, c2, s2)
	}
}

func TestMonitorPhaseBreakdownConsistent(t *testing.T) {
	m := New(Config{N: 16, K: 4, Seed: 23})
	src := stream.NewBursty(stream.BurstyConfig{N: 16, Seed: 24, Lo: 0, Hi: 1 << 20, Noise: 3, BurstProb: 0.05, BurstMax: 1 << 18})
	vals := make([]int64, 16)
	for s := 0; s < 300; s++ {
		src.Step(vals)
		m.Observe(vals)
	}
	var phaseSum int64
	for _, p := range comm.Phases() {
		phaseSum += m.Ledger().PhaseCounts(p).Total()
	}
	if total := m.Ledger().Total().Total(); phaseSum != total {
		t.Fatalf("phase sum %d != total %d", phaseSum, total)
	}
	if m.Ledger().PhaseCounts(comm.PhaseReset).Total() == 0 {
		t.Fatal("initialization reset should have cost something")
	}
}

func TestMonitorFewMessagesOnSimilarInputs(t *testing.T) {
	// The motivating claim (§2.1): on slowly-changing inputs the filter
	// algorithm communicates much less than recomputing every round. The
	// naive per-step cost would be >= n*steps; we demand at least 10x less.
	const n, steps = 32, 1000
	m := New(Config{N: n, K: 3, Seed: 25})
	src := stream.NewTwoBand(stream.TwoBandConfig{N: n, K: 3, Seed: 26, Gap: 1 << 20, BandWidth: 1 << 10, MaxStep: 4})
	vals := make([]int64, n)
	for s := 0; s < steps; s++ {
		src.Step(vals)
		m.Observe(vals)
	}
	if got := m.Ledger().Total().Total(); got > n*steps/10 {
		t.Fatalf("filter algorithm too chatty on similar inputs: %d messages", got)
	}
}

func TestMonitorTraceCaptures(t *testing.T) {
	tr := comm.NewTrace(10000)
	m := New(Config{N: 8, K: 2, Seed: 27, Trace: tr})
	src := stream.NewIID(stream.IIDConfig{N: 8, Seed: 28, Dist: stream.Uniform, Lo: 0, Hi: 1 << 16})
	vals := make([]int64, 8)
	for s := 0; s < 20; s++ {
		src.Step(vals)
		m.Observe(vals)
	}
	if tr.Len() == 0 {
		t.Fatal("trace should record events")
	}
}

func TestMonitorPanics(t *testing.T) {
	for i, f := range []func(){
		func() { New(Config{N: 0, K: 1}) },
		func() { New(Config{N: 3, K: 0}) },
		func() { New(Config{N: 3, K: 4}) },
		func() { New(Config{N: 3, K: 1}).Observe([]int64{1, 2}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestMonitorEncodeAllMismatchPanics(t *testing.T) {
	m := New(Config{N: 3, K: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.EncodeAll([]int64{1, 2, 3}, make([]order.Key, 2))
}

func TestMonitorStatsProgression(t *testing.T) {
	m := New(Config{N: 8, K: 2, Seed: 31})
	src := stream.NewIID(stream.IIDConfig{N: 8, Seed: 32, Dist: stream.Uniform, Lo: 0, Hi: 1 << 20})
	vals := make([]int64, 8)
	for s := 0; s < 100; s++ {
		src.Step(vals)
		m.Observe(vals)
	}
	st := m.Stats()
	if st.Steps != 100 || st.Resets < 1 || st.HandlerCalls > st.ViolationSteps {
		t.Fatalf("stats inconsistent: %+v", st)
	}
}

func TestMonitorKeysSnapshot(t *testing.T) {
	m := New(Config{N: 3, K: 1, Seed: 33})
	m.Observe([]int64{5, 10, 1})
	ks := m.Keys()
	if len(ks) != 3 {
		t.Fatalf("keys: %v", ks)
	}
	ks[0] = 999 // mutating the snapshot must not affect the monitor
	ks2 := m.Keys()
	if ks2[0] == 999 {
		t.Fatal("Keys must return a copy")
	}
}

func TestMonitorNegativeValues(t *testing.T) {
	m := New(Config{N: 5, K: 2, Seed: 35})
	src := stream.NewRandomWalk(stream.WalkConfig{N: 5, Lo: -10000, Hi: -100, MaxStep: 50, Seed: 36})
	runChecked(t, m, src, 200)
}

func TestMonitorManyTies(t *testing.T) {
	// All nodes share the same value at every step: pure tie-break regime
	// for the injection. The top-k must be the k smallest ids.
	m := New(Config{N: 9, K: 3, Seed: 37})
	src := stream.NewConst(stream.ConstConfig{N: 9, Values: []int64{7, 7, 7, 7, 7, 7, 7, 7, 7}})
	runChecked(t, m, src, 30)
	if got := m.Top(); !equalInts(got, []int{0, 1, 2}) {
		t.Fatalf("tie-break top: %v", got)
	}
}
