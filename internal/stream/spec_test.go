package stream

import (
	"strings"
	"testing"
)

func TestFromSpecAllPresets(t *testing.T) {
	for _, name := range Names() {
		src, err := FromSpec(Spec{Name: name, N: 16, K: 2, Steps: 100, Seed: 1})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if src.N() != 16 {
			t.Fatalf("%s: N=%d", name, src.N())
		}
		vals := make([]int64, 16)
		for s := 0; s < 50; s++ {
			src.Step(vals)
		}
	}
}

func TestFromSpecDefaults(t *testing.T) {
	// K and Steps default sensibly.
	src, err := FromSpec(Spec{Name: "twoband", N: 32, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	vals := make([]int64, 32)
	src.Step(vals)

	// Tiny n still gets K >= 1.
	if _, err := FromSpec(Spec{Name: "walk", N: 2, Seed: 3}); err != nil {
		t.Fatal(err)
	}
}

func TestFromSpecErrors(t *testing.T) {
	cases := []Spec{
		{Name: "walk", N: 0},
		{Name: "walk", N: 4, K: 5},
		{Name: "nope", N: 4},
		{Name: "twoband", N: 4, K: 4}, // band presets need K < N
		{Name: "converging", N: 4, K: 4},
	}
	for i, s := range cases {
		if _, err := FromSpec(s); err == nil {
			t.Fatalf("case %d: expected error", i)
		}
	}
	_, err := FromSpec(Spec{Name: "bogus", N: 4})
	if err == nil || !strings.Contains(err.Error(), "valid:") {
		t.Fatalf("unknown-name error should list presets: %v", err)
	}
}

func TestNamesStable(t *testing.T) {
	a, b := Names(), Names()
	if len(a) < 6 {
		t.Fatalf("too few presets: %v", a)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Names() not stable")
		}
	}
	for i := 1; i < len(a); i++ {
		if a[i] <= a[i-1] {
			t.Fatalf("Names() not sorted: %v", a)
		}
	}
}

func TestFromSpecDeterministic(t *testing.T) {
	for _, name := range Names() {
		s1, err1 := FromSpec(Spec{Name: name, N: 8, K: 2, Steps: 100, Seed: 9})
		s2, err2 := FromSpec(Spec{Name: name, N: 8, K: 2, Steps: 100, Seed: 9})
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		a, b := make([]int64, 8), make([]int64, 8)
		for step := 0; step < 60; step++ {
			s1.Step(a)
			s2.Step(b)
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("%s: diverged at step %d node %d", name, step, i)
				}
			}
		}
	}
}
