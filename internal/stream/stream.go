// Package stream provides the workload generators for all experiments: the
// input side of the monitoring problem. A Source produces, per time step,
// one integer observation for each of n nodes. Generators cover the regimes
// the paper discusses — "similar" slowly-changing inputs where filters pay
// off (§2.1), adversarial inputs where the top position rotates every step,
// and controlled-gap workloads that let experiments sweep the paper's ∆
// parameter — plus replayable traces.
//
// All generators are deterministic given a seed (see internal/rng), so every
// experiment in the repository is reproducible bit for bit.
package stream

import (
	"fmt"
	"math"

	"repro/internal/rng"
)

// Source generates observations for n nodes, one slice per time step.
type Source interface {
	// N returns the number of nodes this source feeds.
	N() int
	// Step writes the next observation of node i into vals[i]. It panics if
	// len(vals) != N(). Successive calls advance time.
	Step(vals []int64)
}

// Collect runs a source for steps time steps and returns the full matrix,
// indexed [t][node]. Intended for offline algorithms and tests.
func Collect(s Source, steps int) [][]int64 {
	out := make([][]int64, steps)
	for t := range out {
		out[t] = make([]int64, s.N())
		s.Step(out[t])
	}
	return out
}

func checkLen(n int, vals []int64) {
	if len(vals) != n {
		panic(fmt.Sprintf("stream: Step buffer has %d slots, source has %d nodes", len(vals), n))
	}
}

func clamp(v, lo, hi int64) int64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// WalkConfig parameterizes RandomWalk.
type WalkConfig struct {
	N       int   // number of nodes
	Lo, Hi  int64 // inclusive value range; walks are clamped to it
	MaxStep int64 // per-step increments are uniform in [-MaxStep, +MaxStep]
	Seed    uint64
	// SpreadLo/SpreadHi bound the uniform initial placement. Leaving both
	// zero selects the full [Lo, Hi] range (a deliberate all-zero start is
	// expressed as Lo=Hi=0 with a wider walk range being impossible anyway,
	// since initial values are clamped into [Lo, Hi]).
	SpreadLo int64
	SpreadHi int64
}

// RandomWalk is the paper's "similar inputs" regime: every node performs an
// independent bounded random walk, so consecutive observations are close and
// a filter-based algorithm should communicate rarely.
type RandomWalk struct {
	cfg  WalkConfig
	cur  []int64
	rngs []*rng.RNG
	init bool
}

// NewRandomWalk validates the configuration and returns a generator.
func NewRandomWalk(cfg WalkConfig) *RandomWalk {
	if cfg.N <= 0 {
		panic("stream: RandomWalk needs N > 0")
	}
	if cfg.Hi < cfg.Lo {
		panic("stream: RandomWalk has empty value range")
	}
	if cfg.MaxStep < 0 {
		panic("stream: RandomWalk needs MaxStep >= 0")
	}
	if cfg.SpreadLo == 0 && cfg.SpreadHi == 0 {
		cfg.SpreadLo, cfg.SpreadHi = cfg.Lo, cfg.Hi
	}
	if cfg.SpreadHi < cfg.SpreadLo {
		panic("stream: RandomWalk has inverted initial spread")
	}
	w := &RandomWalk{cfg: cfg, cur: make([]int64, cfg.N), rngs: make([]*rng.RNG, cfg.N)}
	root := rng.New(cfg.Seed, 0x57a1c)
	for i := range w.rngs {
		w.rngs[i] = root.Split(uint64(i))
	}
	return w
}

// N implements Source.
func (w *RandomWalk) N() int { return w.cfg.N }

// Step implements Source.
func (w *RandomWalk) Step(vals []int64) {
	checkLen(w.cfg.N, vals)
	if !w.init {
		span := w.cfg.SpreadHi - w.cfg.SpreadLo + 1
		for i := range w.cur {
			w.cur[i] = clamp(w.cfg.SpreadLo+w.rngs[i].Int63n(span), w.cfg.Lo, w.cfg.Hi)
		}
		w.init = true
	} else {
		for i := range w.cur {
			delta := int64(0)
			if w.cfg.MaxStep > 0 {
				delta = w.rngs[i].Int63n(2*w.cfg.MaxStep+1) - w.cfg.MaxStep
			}
			w.cur[i] = clamp(w.cur[i]+delta, w.cfg.Lo, w.cfg.Hi)
		}
	}
	copy(vals, w.cur)
}

// IIDConfig parameterizes IID.
type IIDConfig struct {
	N    int
	Seed uint64
	// Dist selects the marginal distribution.
	Dist Distribution
	// Lo/Hi bound uniform draws (inclusive). For Gaussian, Mean/Std apply
	// and results are rounded and clamped to [Lo, Hi]. For Zipf, values are
	// Hi / rank^S, giving a heavy-tailed marginal on [Lo, Hi].
	Lo, Hi    int64
	Mean, Std float64
	S         float64 // Zipf exponent, > 0
}

// Distribution enumerates the IID marginals.
type Distribution int

// Supported IID distributions.
const (
	Uniform Distribution = iota
	Gaussian
	Zipf
)

// IID draws every node's observation independently anew each step: the
// "dissimilar inputs" regime where filters cannot help much and per-round
// recomputation is near-optimal (paper §2.1 worst-case discussion).
type IID struct {
	cfg  IIDConfig
	rngs []*rng.RNG
}

// NewIID validates the configuration and returns a generator.
func NewIID(cfg IIDConfig) *IID {
	if cfg.N <= 0 {
		panic("stream: IID needs N > 0")
	}
	if cfg.Hi < cfg.Lo {
		panic("stream: IID has empty value range")
	}
	if cfg.Dist == Zipf && cfg.S <= 0 {
		panic("stream: Zipf needs exponent S > 0")
	}
	g := &IID{cfg: cfg, rngs: make([]*rng.RNG, cfg.N)}
	root := rng.New(cfg.Seed, 0x11d)
	for i := range g.rngs {
		g.rngs[i] = root.Split(uint64(i))
	}
	return g
}

// N implements Source.
func (g *IID) N() int { return g.cfg.N }

// Step implements Source.
func (g *IID) Step(vals []int64) {
	checkLen(g.cfg.N, vals)
	span := g.cfg.Hi - g.cfg.Lo + 1
	for i := range vals {
		r := g.rngs[i]
		switch g.cfg.Dist {
		case Uniform:
			vals[i] = g.cfg.Lo + r.Int63n(span)
		case Gaussian:
			v := int64(math.Round(g.cfg.Mean + g.cfg.Std*r.NormFloat64()))
			vals[i] = clamp(v, g.cfg.Lo, g.cfg.Hi)
		case Zipf:
			// Log-uniform rank (density ∝ 1/rank, the Zipf(1) shape), then
			// emit Hi/rank^S: a heavy-tailed marginal on [Lo, Hi] for the
			// Babcock-Olston style workload, with S tuning the tail.
			rank := math.Exp(r.Float64() * math.Log(float64(span)))
			v := int64(float64(g.cfg.Hi) / math.Pow(rank, g.cfg.S))
			vals[i] = clamp(v, g.cfg.Lo, g.cfg.Hi)
		default:
			panic("stream: unknown distribution")
		}
	}
}

// BurstyConfig parameterizes Bursty.
type BurstyConfig struct {
	N         int
	Seed      uint64
	Lo, Hi    int64
	Noise     int64 // small per-step jitter, uniform in [-Noise, +Noise]
	BurstProb float64
	BurstMax  int64 // burst jumps are uniform in [-BurstMax, +BurstMax]
}

// Bursty behaves like a slow walk punctuated by rare large jumps, modelling
// sensors with regime changes. It stresses FILTERRESET without making every
// step adversarial.
type Bursty struct {
	cfg  BurstyConfig
	cur  []int64
	rngs []*rng.RNG
	init bool
}

// NewBursty validates the configuration and returns a generator.
func NewBursty(cfg BurstyConfig) *Bursty {
	if cfg.N <= 0 {
		panic("stream: Bursty needs N > 0")
	}
	if cfg.Hi < cfg.Lo {
		panic("stream: Bursty has empty value range")
	}
	if cfg.BurstProb < 0 || cfg.BurstProb > 1 {
		panic("stream: BurstProb outside [0,1]")
	}
	b := &Bursty{cfg: cfg, cur: make([]int64, cfg.N), rngs: make([]*rng.RNG, cfg.N)}
	root := rng.New(cfg.Seed, 0xb0b)
	for i := range b.rngs {
		b.rngs[i] = root.Split(uint64(i))
	}
	return b
}

// N implements Source.
func (b *Bursty) N() int { return b.cfg.N }

// Step implements Source.
func (b *Bursty) Step(vals []int64) {
	checkLen(b.cfg.N, vals)
	if !b.init {
		span := b.cfg.Hi - b.cfg.Lo + 1
		for i := range b.cur {
			b.cur[i] = b.cfg.Lo + b.rngs[i].Int63n(span)
		}
		b.init = true
	} else {
		for i := range b.cur {
			r := b.rngs[i]
			var delta int64
			if r.Float64() < b.cfg.BurstProb && b.cfg.BurstMax > 0 {
				delta = r.Int63n(2*b.cfg.BurstMax+1) - b.cfg.BurstMax
			} else if b.cfg.Noise > 0 {
				delta = r.Int63n(2*b.cfg.Noise+1) - b.cfg.Noise
			}
			b.cur[i] = clamp(b.cur[i]+delta, b.cfg.Lo, b.cfg.Hi)
		}
	}
	copy(vals, b.cur)
}

// RotationConfig parameterizes Rotation.
type RotationConfig struct {
	N      int
	Period int   // every Period steps the peak moves to the next node
	Base   int64 // value of non-peak nodes
	Peak   int64 // value of the current peak node; must exceed Base
}

// Rotation is the adversarial workload from the paper's §2.1 worst-case
// discussion: the identity of the maximum changes round-robin, forcing any
// correct algorithm to communicate persistently. With Period = 1 the top-1
// position changes every single step.
type Rotation struct {
	cfg  RotationConfig
	step int
}

// NewRotation validates the configuration and returns a generator.
func NewRotation(cfg RotationConfig) *Rotation {
	if cfg.N <= 0 {
		panic("stream: Rotation needs N > 0")
	}
	if cfg.Period <= 0 {
		panic("stream: Rotation needs Period > 0")
	}
	if cfg.Peak <= cfg.Base {
		panic("stream: Rotation needs Peak > Base")
	}
	return &Rotation{cfg: cfg}
}

// N implements Source.
func (r *Rotation) N() int { return r.cfg.N }

// Step implements Source.
func (r *Rotation) Step(vals []int64) {
	checkLen(r.cfg.N, vals)
	peak := (r.step / r.cfg.Period) % r.cfg.N
	for i := range vals {
		if i == peak {
			vals[i] = r.cfg.Peak
		} else {
			vals[i] = r.cfg.Base
		}
	}
	r.step++
}

// TwoBandConfig parameterizes TwoBand.
type TwoBandConfig struct {
	N    int
	K    int // nodes 0..K-1 start in the top band
	Seed uint64
	// Gap is the distance between the bands' centers; it controls the
	// paper's ∆ (the k-th/(k+1)-st value difference) for experiment E4.
	Gap int64
	// BandWidth is each band's half-width; in-band values random walk with
	// the given MaxStep.
	BandWidth int64
	MaxStep   int64
	// SwapEvery > 0 makes the lowest top-band node and the highest
	// bottom-band node exchange bands every SwapEvery steps, forcing top-k
	// set changes at a controlled rate. 0 disables swaps.
	SwapEvery int
}

// TwoBand maintains a top band of K nodes and a bottom band of N-K nodes
// separated by a configurable gap. It is the workload that controls ∆ in
// the competitive-ratio experiments.
type TwoBand struct {
	cfg     TwoBandConfig
	center  []int64 // per-node band center
	cur     []int64
	rngs    []*rng.RNG
	inTop   []bool
	step    int
	topC    int64
	botC    int64
	started bool
}

// NewTwoBand validates the configuration and returns a generator.
func NewTwoBand(cfg TwoBandConfig) *TwoBand {
	if cfg.N <= 0 || cfg.K <= 0 || cfg.K > cfg.N {
		panic("stream: TwoBand needs 0 < K <= N")
	}
	if cfg.Gap <= 2*cfg.BandWidth {
		panic("stream: TwoBand gap must exceed the band widths to keep bands disjoint")
	}
	if cfg.BandWidth < 0 || cfg.MaxStep < 0 {
		panic("stream: TwoBand needs non-negative widths")
	}
	tb := &TwoBand{
		cfg:    cfg,
		center: make([]int64, cfg.N),
		cur:    make([]int64, cfg.N),
		rngs:   make([]*rng.RNG, cfg.N),
		inTop:  make([]bool, cfg.N),
		topC:   cfg.Gap, // top band centered at Gap, bottom at 0
		botC:   0,
	}
	root := rng.New(cfg.Seed, 0x2ba)
	for i := range tb.rngs {
		tb.rngs[i] = root.Split(uint64(i))
		if i < cfg.K {
			tb.inTop[i] = true
			tb.center[i] = tb.topC
		} else {
			tb.center[i] = tb.botC
		}
		tb.cur[i] = tb.center[i]
	}
	return tb
}

// N implements Source.
func (tb *TwoBand) N() int { return tb.cfg.N }

// Step implements Source.
func (tb *TwoBand) Step(vals []int64) {
	checkLen(tb.cfg.N, vals)
	if tb.started && tb.cfg.SwapEvery > 0 && tb.step%tb.cfg.SwapEvery == 0 {
		tb.swapExtremes()
	}
	for i := range tb.cur {
		var delta int64
		if tb.cfg.MaxStep > 0 {
			delta = tb.rngs[i].Int63n(2*tb.cfg.MaxStep+1) - tb.cfg.MaxStep
		}
		lo := tb.center[i] - tb.cfg.BandWidth
		hi := tb.center[i] + tb.cfg.BandWidth
		tb.cur[i] = clamp(tb.cur[i]+delta, lo, hi)
	}
	tb.started = true
	tb.step++
	copy(vals, tb.cur)
}

// swapExtremes moves the currently lowest top-band node to the bottom band
// and the highest bottom-band node to the top band.
func (tb *TwoBand) swapExtremes() {
	loTop, hiBot := -1, -1
	for i := range tb.cur {
		if tb.inTop[i] {
			if loTop < 0 || tb.cur[i] < tb.cur[loTop] {
				loTop = i
			}
		} else {
			if hiBot < 0 || tb.cur[i] > tb.cur[hiBot] {
				hiBot = i
			}
		}
	}
	if loTop < 0 || hiBot < 0 {
		return // single-band configuration (K == N)
	}
	tb.inTop[loTop], tb.inTop[hiBot] = false, true
	tb.center[loTop], tb.center[hiBot] = tb.botC, tb.topC
	tb.cur[loTop], tb.cur[hiBot] = tb.botC, tb.topC
}

// ConstConfig parameterizes Const.
type ConstConfig struct {
	N      int
	Values []int64 // len N; emitted unchanged every step
}

// Const emits the same observation vector forever: the best case for any
// filter-based algorithm (zero steady-state communication).
type Const struct{ cfg ConstConfig }

// NewConst validates the configuration and returns a generator.
func NewConst(cfg ConstConfig) *Const {
	if cfg.N <= 0 {
		panic("stream: Const needs N > 0")
	}
	if len(cfg.Values) != cfg.N {
		panic("stream: Const needs exactly N values")
	}
	return &Const{cfg: cfg}
}

// N implements Source.
func (c *Const) N() int { return c.cfg.N }

// Step implements Source.
func (c *Const) Step(vals []int64) {
	checkLen(c.cfg.N, vals)
	copy(vals, c.cfg.Values)
}
