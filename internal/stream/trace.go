package stream

import (
	"bufio"
	"encoding/csv"
	"encoding/gob"
	"fmt"
	"io"
	"strconv"
)

// TraceSource replays a recorded observation matrix, indexed [t][node].
// When the trace is exhausted the final row repeats forever (a stalled
// sensor fleet), so monitors never observe a shrinking universe.
type TraceSource struct {
	rows [][]int64
	t    int
}

// NewTraceSource wraps a matrix as a Source. All rows must have equal,
// positive width and the matrix must be non-empty.
func NewTraceSource(rows [][]int64) *TraceSource {
	if len(rows) == 0 || len(rows[0]) == 0 {
		panic("stream: empty trace")
	}
	n := len(rows[0])
	for i, r := range rows {
		if len(r) != n {
			panic(fmt.Sprintf("stream: trace row %d has %d columns, want %d", i, len(r), n))
		}
	}
	return &TraceSource{rows: rows}
}

// N implements Source.
func (ts *TraceSource) N() int { return len(ts.rows[0]) }

// Len returns the number of recorded steps.
func (ts *TraceSource) Len() int { return len(ts.rows) }

// Step implements Source.
func (ts *TraceSource) Step(vals []int64) {
	checkLen(ts.N(), vals)
	idx := ts.t
	if idx >= len(ts.rows) {
		idx = len(ts.rows) - 1
	} else {
		ts.t++
	}
	copy(vals, ts.rows[idx])
}

// Rewind restarts replay from the first step.
func (ts *TraceSource) Rewind() { ts.t = 0 }

// WriteCSV serializes a trace matrix as CSV, one time step per row.
func WriteCSV(w io.Writer, rows [][]int64) error {
	cw := csv.NewWriter(w)
	rec := make([]string, 0, 16)
	for _, row := range rows {
		rec = rec[:0]
		for _, v := range row {
			rec = append(rec, strconv.FormatInt(v, 10))
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("stream: writing CSV trace: %w", err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("stream: flushing CSV trace: %w", err)
	}
	return nil
}

// ReadCSV parses a trace matrix from CSV produced by WriteCSV.
func ReadCSV(r io.Reader) ([][]int64, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1 // validated below with a clearer error
	var rows [][]int64
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("stream: reading CSV trace: %w", err)
		}
		if len(rows) > 0 && len(rec) != len(rows[0]) {
			return nil, fmt.Errorf("stream: CSV row %d has %d columns, want %d", len(rows), len(rec), len(rows[0]))
		}
		row := make([]int64, len(rec))
		for i, f := range rec {
			v, err := strconv.ParseInt(f, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("stream: CSV row %d column %d: %w", len(rows), i, err)
			}
			row[i] = v
		}
		rows = append(rows, row)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("stream: CSV trace is empty")
	}
	return rows, nil
}

// WriteGob serializes a trace matrix in the compact gob format.
func WriteGob(w io.Writer, rows [][]int64) error {
	bw := bufio.NewWriter(w)
	if err := gob.NewEncoder(bw).Encode(rows); err != nil {
		return fmt.Errorf("stream: encoding gob trace: %w", err)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("stream: flushing gob trace: %w", err)
	}
	return nil
}

// ReadGob parses a trace matrix written by WriteGob.
func ReadGob(r io.Reader) ([][]int64, error) {
	var rows [][]int64
	if err := gob.NewDecoder(bufio.NewReader(r)).Decode(&rows); err != nil {
		return nil, fmt.Errorf("stream: decoding gob trace: %w", err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("stream: gob trace is empty")
	}
	return rows, nil
}
