package stream

import "repro/internal/rng"

// ConvergingConfig parameterizes Converging.
type ConvergingConfig struct {
	N    int
	K    int // nodes 0..K-1 form the upper band
	Seed uint64
	// Gap is the widest separation of the two band centers; it determines
	// the paper's ∆ for this workload.
	Gap int64
	// MinGap is the closest approach of the band centers. It must stay
	// above 2*Jitter+2 so the bands never cross and the top-k set never
	// changes — which keeps the offline OPT at a single filter assignment
	// while the online algorithm must keep tightening midpoints.
	MinGap int64
	// HalvingSteps is how many steps the band distance stays at each
	// halving level; the descent is geometric (Gap, Gap/2, Gap/4, ...,
	// MinGap), so one converge-diverge cycle takes
	// 2 * HalvingSteps * ceil(log2(Gap/MinGap)) steps.
	HalvingSteps int
	// Jitter is the half-width of each node's in-band random walk.
	Jitter int64
}

// Converging keeps the lower band static and halves the distance of the
// upper band toward it level by level, then doubles it back up. It is the
// ∆-sweep workload of experiment E4: every descent forces the monitor
// through ~log2(Gap/MinGap) midpoint violations — one per halving level,
// because each FILTERVIOLATIONHANDLER call re-anchors the midpoint halfway
// into the remaining distance and the next halving level crosses it again —
// while a clairvoyant offline algorithm covers the whole horizon with a
// single filter assignment just below the upper band's lowest excursion
// (the bands never cross, so the top-k set is constant and Lemma 3.2's
// feasibility condition holds globally; validated against baseline.Opt).
//
// Two design points matter. The descent is geometric rather than linear: a
// linear approach crosses all remaining midpoint levels in a single step
// once its per-step motion exceeds the half-distance, capping the observed
// cost at log(period) instead of log ∆. And the lower band stays static:
// if both bands converged symmetrically toward the center, the midpoint
// installed at initialization would remain valid forever and the monitor
// would never communicate again.
type Converging struct {
	cfg    ConvergingConfig
	levels int
	rngs   []*rng.RNG
	off    []int64 // per-node jitter offset, random walk in [-Jitter, +Jitter]
	step   int
}

// NewConverging validates the configuration and returns a generator.
func NewConverging(cfg ConvergingConfig) *Converging {
	if cfg.N <= 0 || cfg.K <= 0 || cfg.K >= cfg.N {
		panic("stream: Converging needs 0 < K < N")
	}
	if cfg.HalvingSteps <= 0 {
		panic("stream: Converging needs HalvingSteps > 0")
	}
	if cfg.Jitter < 0 {
		panic("stream: Converging needs Jitter >= 0")
	}
	if cfg.MinGap <= 2*cfg.Jitter+1 {
		panic("stream: Converging MinGap must exceed 2*Jitter+1 to keep bands disjoint")
	}
	if cfg.Gap < cfg.MinGap {
		panic("stream: Converging needs Gap >= MinGap")
	}
	c := &Converging{cfg: cfg, rngs: make([]*rng.RNG, cfg.N), off: make([]int64, cfg.N)}
	for d := cfg.Gap; d > cfg.MinGap; d >>= 1 {
		c.levels++
	}
	if c.levels == 0 {
		c.levels = 1
	}
	root := rng.New(cfg.Seed, 0xc0741)
	for i := range c.rngs {
		c.rngs[i] = root.Split(uint64(i))
	}
	return c
}

// N implements Source.
func (c *Converging) N() int { return c.cfg.N }

// CycleLen returns the number of steps of one full converge-diverge cycle.
func (c *Converging) CycleLen() int { return 2 * c.levels * c.cfg.HalvingSteps }

// Levels returns the number of halving levels of one descent,
// ceil(log2(Gap/MinGap)) (at least 1).
func (c *Converging) Levels() int { return c.levels }

// distance returns the band separation at the given phase of the cycle.
func (c *Converging) distance(phase int) int64 {
	half := c.levels * c.cfg.HalvingSteps
	level := phase / c.cfg.HalvingSteps // 0..levels-1 descending
	if phase >= half {                  // ascending mirror
		level = (2*half - 1 - phase) / c.cfg.HalvingSteps
	}
	d := c.cfg.Gap >> uint(level)
	if d < c.cfg.MinGap {
		d = c.cfg.MinGap
	}
	return d
}

// Step implements Source.
func (c *Converging) Step(vals []int64) {
	checkLen(c.cfg.N, vals)
	d := c.distance(c.step % c.CycleLen())
	const base = int64(1) << 20 // keeps all values positive for any Jitter
	botC := base
	topC := base + d
	for i := range vals {
		if c.cfg.Jitter > 0 {
			c.off[i] += c.rngs[i].Int63n(3) - 1 // lazy ±1 walk
			if c.off[i] > c.cfg.Jitter {
				c.off[i] = c.cfg.Jitter
			}
			if c.off[i] < -c.cfg.Jitter {
				c.off[i] = -c.cfg.Jitter
			}
		}
		if i < c.cfg.K {
			vals[i] = topC + c.off[i]
		} else {
			vals[i] = botC + c.off[i]
		}
	}
	c.step++
}
