package stream

import (
	"sort"

	"repro/internal/rng"
)

// DeltaSource is a workload generator that can report, per time step, only
// the nodes whose observation changed — the sparse form the monitors'
// ObserveDelta ingestion consumes. For generators that implement both
// interfaces, Step and StepDelta advance the same underlying trajectory:
// any interleaving of the two produces the same value sequence.
type DeltaSource interface {
	// N returns the number of nodes this source feeds.
	N() int
	// StepDelta advances one time step and writes the ids of the changed
	// nodes (strictly ascending) and their new values into the prefixes of
	// ids and vals, returning how many entries were written. Both buffers
	// must have length >= N(). Nodes not listed kept their previous value;
	// before the first step every node is considered to hold 0.
	StepDelta(ids []int, vals []int64) int
}

// StepDelta implements DeltaSource: it advances the walk exactly as Step
// does (consuming identical randomness, so Step and StepDelta calls may be
// interleaved freely) but reports only the nodes whose clamped value
// actually moved. The first step reports every node.
func (w *RandomWalk) StepDelta(ids []int, vals []int64) int {
	if len(ids) < w.cfg.N || len(vals) < w.cfg.N {
		panic("stream: StepDelta buffers must have length >= N")
	}
	if !w.init {
		span := w.cfg.SpreadHi - w.cfg.SpreadLo + 1
		for i := range w.cur {
			w.cur[i] = clamp(w.cfg.SpreadLo+w.rngs[i].Int63n(span), w.cfg.Lo, w.cfg.Hi)
			ids[i] = i
			vals[i] = w.cur[i]
		}
		w.init = true
		return w.cfg.N
	}
	written := 0
	for i := range w.cur {
		delta := int64(0)
		if w.cfg.MaxStep > 0 {
			delta = w.rngs[i].Int63n(2*w.cfg.MaxStep+1) - w.cfg.MaxStep
		}
		next := clamp(w.cur[i]+delta, w.cfg.Lo, w.cfg.Hi)
		if next != w.cur[i] {
			w.cur[i] = next
			ids[written] = i
			vals[written] = next
			written++
		}
	}
	return written
}

// SparseWalkConfig parameterizes SparseWalk.
type SparseWalkConfig struct {
	N       int
	Lo, Hi  int64 // inclusive value range; moves are clamped to it
	MaxStep int64 // per-move increments are uniform in [-MaxStep, +MaxStep]
	// Changed is how many (distinct, uniformly chosen) nodes attempt a
	// move per step, 1 <= Changed <= N. Nodes whose draw is a zero move
	// (or clamped in place at a range edge) are not reported, so a step
	// may emit fewer than Changed entries. The remaining nodes repeat
	// their value.
	Changed int
	Seed    uint64
}

// SparseWalk is the delta-native workload: each step, a small uniformly
// random subset of nodes performs one bounded random-walk move while all
// others hold still. It models the million-stream regime where the
// per-step update volume, not n, is the natural cost unit, and is the
// workload behind the BenchmarkMonitorDelta speedup target.
type SparseWalk struct {
	cfg  SparseWalkConfig
	cur  []int64
	idx  []int // permutation scratch for distinct-subset selection
	r    *rng.RNG
	init bool
}

// NewSparseWalk validates the configuration and returns a generator.
func NewSparseWalk(cfg SparseWalkConfig) *SparseWalk {
	if cfg.N <= 0 {
		panic("stream: SparseWalk needs N > 0")
	}
	if cfg.Hi < cfg.Lo {
		panic("stream: SparseWalk has empty value range")
	}
	if cfg.MaxStep < 0 {
		panic("stream: SparseWalk needs MaxStep >= 0")
	}
	if cfg.Changed < 1 || cfg.Changed > cfg.N {
		panic("stream: SparseWalk needs 1 <= Changed <= N")
	}
	sw := &SparseWalk{
		cfg: cfg,
		cur: make([]int64, cfg.N),
		idx: make([]int, cfg.N),
		r:   rng.New(cfg.Seed, 0x5b1e),
	}
	for i := range sw.idx {
		sw.idx[i] = i
	}
	return sw
}

// N implements Source and DeltaSource.
func (sw *SparseWalk) N() int { return sw.cfg.N }

// Step implements Source by advancing the same trajectory StepDelta
// drives and emitting the full dense vector.
func (sw *SparseWalk) Step(vals []int64) {
	checkLen(sw.cfg.N, vals)
	sw.advance(nil, nil)
	copy(vals, sw.cur)
}

// StepDelta implements DeltaSource.
func (sw *SparseWalk) StepDelta(ids []int, vals []int64) int {
	if len(ids) < sw.cfg.N || len(vals) < sw.cfg.N {
		panic("stream: StepDelta buffers must have length >= N")
	}
	return sw.advance(ids, vals)
}

// advance moves the trajectory one step. With non-nil buffers it records
// the changed (id, value) pairs, ascending by id, and returns the count.
func (sw *SparseWalk) advance(ids []int, vals []int64) int {
	if !sw.init {
		span := sw.cfg.Hi - sw.cfg.Lo + 1
		for i := range sw.cur {
			sw.cur[i] = sw.cfg.Lo + sw.r.Int63n(span)
		}
		sw.init = true
		if ids == nil {
			return 0
		}
		for i, v := range sw.cur {
			ids[i] = i
			vals[i] = v
		}
		return sw.cfg.N
	}
	// Choose Changed distinct nodes by partial Fisher-Yates over the
	// persistent index permutation, then emit them in ascending order.
	c := sw.cfg.Changed
	for j := 0; j < c; j++ {
		k := j + sw.r.Intn(sw.cfg.N-j)
		sw.idx[j], sw.idx[k] = sw.idx[k], sw.idx[j]
	}
	sort.Ints(sw.idx[:c])
	written := 0
	for _, id := range sw.idx[:c] {
		var delta int64
		if sw.cfg.MaxStep > 0 {
			delta = sw.r.Int63n(2*sw.cfg.MaxStep+1) - sw.cfg.MaxStep
		}
		next := clamp(sw.cur[id]+delta, sw.cfg.Lo, sw.cfg.Hi)
		if next == sw.cur[id] {
			continue // zero move or clamped in place: value did not change
		}
		sw.cur[id] = next
		if ids != nil {
			ids[written] = id
			vals[written] = next
			written++
		}
	}
	return written
}
