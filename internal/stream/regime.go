package stream

import "repro/internal/rng"

// RegimeConfig parameterizes Regime.
type RegimeConfig struct {
	N    int
	Seed uint64
	// Lo/Hi bound all values.
	Lo, Hi int64
	// CalmStep and WildStep are the per-step walk magnitudes of the two
	// regimes (wild should exceed calm).
	CalmStep, WildStep int64
	// SwitchProb is the per-step probability of toggling the global
	// regime (a two-state Markov chain).
	SwitchProb float64
}

// Regime is a Markov regime-switching workload: all nodes random-walk,
// but the walk magnitude toggles between a calm and a wild regime
// according to a two-state Markov chain shared by the fleet. It models
// markets or sensor fields with volatility clustering and exercises the
// monitor's transition between its cheap (filters hold for long runs) and
// expensive (frequent violations) modes within a single run.
type Regime struct {
	cfg  RegimeConfig
	cur  []int64
	rngs []*rng.RNG
	ctl  *rng.RNG
	wild bool
	init bool
}

// NewRegime validates the configuration and returns a generator.
func NewRegime(cfg RegimeConfig) *Regime {
	if cfg.N <= 0 {
		panic("stream: Regime needs N > 0")
	}
	if cfg.Hi < cfg.Lo {
		panic("stream: Regime has empty value range")
	}
	if cfg.CalmStep < 0 || cfg.WildStep < cfg.CalmStep {
		panic("stream: Regime needs 0 <= CalmStep <= WildStep")
	}
	if cfg.SwitchProb < 0 || cfg.SwitchProb > 1 {
		panic("stream: Regime SwitchProb outside [0,1]")
	}
	g := &Regime{cfg: cfg, cur: make([]int64, cfg.N), rngs: make([]*rng.RNG, cfg.N)}
	root := rng.New(cfg.Seed, 0x4e61)
	g.ctl = root.Split(1 << 32)
	for i := range g.rngs {
		g.rngs[i] = root.Split(uint64(i))
	}
	return g
}

// N implements Source.
func (g *Regime) N() int { return g.cfg.N }

// Wild reports whether the generator is currently in the wild regime.
func (g *Regime) Wild() bool { return g.wild }

// Step implements Source.
func (g *Regime) Step(vals []int64) {
	checkLen(g.cfg.N, vals)
	if !g.init {
		span := g.cfg.Hi - g.cfg.Lo + 1
		for i := range g.cur {
			g.cur[i] = g.cfg.Lo + g.rngs[i].Int63n(span)
		}
		g.init = true
	} else {
		if g.ctl.Float64() < g.cfg.SwitchProb {
			g.wild = !g.wild
		}
		step := g.cfg.CalmStep
		if g.wild {
			step = g.cfg.WildStep
		}
		for i := range g.cur {
			var delta int64
			if step > 0 {
				delta = g.rngs[i].Int63n(2*step+1) - step
			}
			g.cur[i] = clamp(g.cur[i]+delta, g.cfg.Lo, g.cfg.Hi)
		}
	}
	copy(vals, g.cur)
}
