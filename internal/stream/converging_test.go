package stream

import "testing"

func TestConvergingBandsNeverCross(t *testing.T) {
	c := NewConverging(ConvergingConfig{N: 10, K: 3, Seed: 1, Gap: 100000, MinGap: 50, HalvingSteps: 5, Jitter: 10})
	vals := make([]int64, 10)
	for s := 0; s < 3*c.CycleLen(); s++ {
		c.Step(vals)
		minTop, maxBot := vals[0], vals[3]
		for i := 0; i < 3; i++ {
			if vals[i] < minTop {
				minTop = vals[i]
			}
		}
		for i := 3; i < 10; i++ {
			if vals[i] > maxBot {
				maxBot = vals[i]
			}
		}
		if minTop <= maxBot {
			t.Fatalf("step %d: bands crossed (minTop=%d maxBot=%d)", s, minTop, maxBot)
		}
	}
}

func TestConvergingReachesExtremes(t *testing.T) {
	c := NewConverging(ConvergingConfig{N: 4, K: 2, Seed: 2, Gap: 1 << 14, MinGap: 100, HalvingSteps: 3, Jitter: 0})
	vals := make([]int64, 4)
	minSep, maxSep := int64(1)<<62, int64(0)
	for s := 0; s < c.CycleLen()+1; s++ {
		c.Step(vals)
		sep := vals[0] - vals[2] // band separation (no jitter)
		if sep < minSep {
			minSep = sep
		}
		if sep > maxSep {
			maxSep = sep
		}
	}
	if minSep > 200 {
		t.Fatalf("never converged: min separation %d", minSep)
	}
	if maxSep < 1<<14 {
		t.Fatalf("never reached full gap: max separation %d", maxSep)
	}
}

func TestConvergingGeometricLadder(t *testing.T) {
	c := NewConverging(ConvergingConfig{N: 2, K: 1, Seed: 3, Gap: 1 << 10, MinGap: 4, HalvingSteps: 2, Jitter: 0})
	if c.Levels() != 8 { // 1024 -> 512 -> ... -> 8 (> 4): 8 levels above MinGap
		t.Fatalf("levels: %d", c.Levels())
	}
	vals := make([]int64, 2)
	var seps []int64
	for s := 0; s < c.CycleLen(); s++ {
		c.Step(vals)
		seps = append(seps, vals[0]-vals[1])
	}
	// First HalvingSteps steps at Gap, next at Gap/2, etc.
	if seps[0] != 1<<10 || seps[1] != 1<<10 {
		t.Fatalf("level 0: %v", seps[:4])
	}
	if seps[2] != 1<<9 {
		t.Fatalf("level 1: %d", seps[2])
	}
	// Each level exactly halves the previous one on the descent.
	for l := 1; l < c.Levels(); l++ {
		if seps[2*l] != seps[2*(l-1)]/2 {
			t.Fatalf("descent level %d: %d vs %d", l, seps[2*l], seps[2*(l-1)])
		}
	}
	// Ascent mirrors the descent.
	for s := 0; s < c.CycleLen()/2; s++ {
		if seps[s] != seps[c.CycleLen()-1-s] {
			t.Fatalf("cycle not symmetric at %d: %d vs %d", s, seps[s], seps[c.CycleLen()-1-s])
		}
	}
}

func TestConvergingPeriodicity(t *testing.T) {
	c := NewConverging(ConvergingConfig{N: 2, K: 1, Seed: 3, Gap: 1000, MinGap: 10, HalvingSteps: 4, Jitter: 0})
	period := c.CycleLen()
	vals := make([]int64, 2)
	var seps []int64
	for s := 0; s < 3*period; s++ {
		c.Step(vals)
		seps = append(seps, vals[0]-vals[1])
	}
	for s := 0; s < 2*period; s++ {
		if seps[s] != seps[s+period] {
			t.Fatalf("separation not periodic at %d: %d vs %d", s, seps[s], seps[s+period])
		}
	}
}

func TestConvergingPositiveValues(t *testing.T) {
	c := NewConverging(ConvergingConfig{N: 6, K: 2, Seed: 4, Gap: 5000, MinGap: 60, HalvingSteps: 4, Jitter: 20})
	vals := make([]int64, 6)
	for s := 0; s < 2*c.CycleLen(); s++ {
		c.Step(vals)
		for i, v := range vals {
			if v < 0 {
				t.Fatalf("step %d node %d negative value %d", s, i, v)
			}
		}
	}
}

func TestConvergingPanics(t *testing.T) {
	cases := []ConvergingConfig{
		{N: 2, K: 2, Gap: 100, MinGap: 10, HalvingSteps: 10},           // K >= N
		{N: 3, K: 1, Gap: 100, MinGap: 10, HalvingSteps: 0},            // halving steps
		{N: 3, K: 1, Gap: 100, MinGap: 5, HalvingSteps: 10, Jitter: 3}, // min gap vs jitter
		{N: 3, K: 1, Gap: 5, MinGap: 10, HalvingSteps: 10},             // gap < min gap
		{N: 3, K: 1, Gap: 100, MinGap: 10, HalvingSteps: 10, Jitter: -1},
	}
	for i, cfg := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: expected panic", i)
				}
			}()
			NewConverging(cfg)
		}()
	}
}
