package stream

import "testing"

func TestRegimeBounds(t *testing.T) {
	g := NewRegime(RegimeConfig{N: 8, Seed: 1, Lo: 0, Hi: 10000, CalmStep: 2, WildStep: 500, SwitchProb: 0.05})
	vals := make([]int64, 8)
	for s := 0; s < 1000; s++ {
		g.Step(vals)
		for i, v := range vals {
			if v < 0 || v > 10000 {
				t.Fatalf("step %d node %d out of range: %d", s, i, v)
			}
		}
	}
}

func TestRegimeSwitches(t *testing.T) {
	g := NewRegime(RegimeConfig{N: 2, Seed: 2, Lo: 0, Hi: 1 << 30, CalmStep: 1, WildStep: 1000, SwitchProb: 0.1})
	vals := make([]int64, 2)
	sawWild, sawCalm := false, false
	for s := 0; s < 500; s++ {
		g.Step(vals)
		if g.Wild() {
			sawWild = true
		} else {
			sawCalm = true
		}
	}
	if !sawWild || !sawCalm {
		t.Fatalf("chain did not visit both regimes: wild=%v calm=%v", sawWild, sawCalm)
	}
}

func TestRegimeVolatilityDiffers(t *testing.T) {
	g := NewRegime(RegimeConfig{N: 4, Seed: 3, Lo: 0, Hi: 1 << 40, CalmStep: 1, WildStep: 10000, SwitchProb: 0.02})
	prev := make([]int64, 4)
	cur := make([]int64, 4)
	g.Step(prev)
	var calmMoves, wildMoves, calmSteps, wildSteps float64
	for s := 0; s < 3000; s++ {
		g.Step(cur)
		var move float64
		for i := range cur {
			d := cur[i] - prev[i]
			if d < 0 {
				d = -d
			}
			move += float64(d)
		}
		if g.Wild() {
			wildMoves += move
			wildSteps++
		} else {
			calmMoves += move
			calmSteps++
		}
		copy(prev, cur)
	}
	if calmSteps == 0 || wildSteps == 0 {
		t.Skip("chain stayed in one regime for this seed")
	}
	if wildMoves/wildSteps < 100*(calmMoves/calmSteps) {
		t.Fatalf("wild regime not wilder: calm=%.1f wild=%.1f", calmMoves/calmSteps, wildMoves/wildSteps)
	}
}

func TestRegimeDeterministic(t *testing.T) {
	cfg := RegimeConfig{N: 4, Seed: 4, Lo: 0, Hi: 1000, CalmStep: 1, WildStep: 50, SwitchProb: 0.1}
	a, b := NewRegime(cfg), NewRegime(cfg)
	va, vb := make([]int64, 4), make([]int64, 4)
	for s := 0; s < 200; s++ {
		a.Step(va)
		b.Step(vb)
		for i := range va {
			if va[i] != vb[i] {
				t.Fatalf("diverged at step %d", s)
			}
		}
	}
}

func TestRegimePanics(t *testing.T) {
	cases := []RegimeConfig{
		{N: 0, Lo: 0, Hi: 1},
		{N: 1, Lo: 2, Hi: 1},
		{N: 1, Lo: 0, Hi: 1, CalmStep: 5, WildStep: 2},
		{N: 1, Lo: 0, Hi: 1, SwitchProb: 1.5},
	}
	for i, cfg := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: expected panic", i)
				}
			}()
			NewRegime(cfg)
		}()
	}
}
