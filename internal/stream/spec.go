package stream

import (
	"fmt"
	"sort"
	"strings"
)

// Spec identifies a named workload preset plus the parameters every
// preset shares. The presets are the workload families used across the
// CLIs (topkmon, tracegen) and experiments; FromSpec keeps their
// parameterization in one place.
type Spec struct {
	// Name selects the preset; see Names for the list.
	Name string
	// N is the node count.
	N int
	// K is the intended top-set size; band presets place K nodes in the
	// upper band. If 0, max(1, N/8) is used.
	K int
	// Steps is the intended horizon; presets that schedule periodic events
	// (band swaps) derive their period from it. If 0, 1000 is used.
	Steps int
	// Seed drives the preset's randomness.
	Seed uint64
}

// Names lists the available workload presets in stable order.
func Names() []string {
	names := make([]string, 0, len(presets))
	for name := range presets {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

var presets = map[string]func(Spec) Source{
	"walk": func(s Spec) Source {
		return NewRandomWalk(WalkConfig{N: s.N, Lo: 0, Hi: 1 << 20, MaxStep: 64, Seed: s.Seed})
	},
	"iid": func(s Spec) Source {
		return NewIID(IIDConfig{N: s.N, Seed: s.Seed, Dist: Uniform, Lo: 0, Hi: 1 << 20})
	},
	"gauss": func(s Spec) Source {
		return NewIID(IIDConfig{N: s.N, Seed: s.Seed, Dist: Gaussian, Lo: 0, Hi: 1 << 20, Mean: 1 << 19, Std: 1 << 16})
	},
	"zipf": func(s Spec) Source {
		return NewIID(IIDConfig{N: s.N, Seed: s.Seed, Dist: Zipf, Lo: 1, Hi: 1 << 24, S: 1.1})
	},
	"bursty": func(s Spec) Source {
		return NewBursty(BurstyConfig{N: s.N, Seed: s.Seed, Lo: 0, Hi: 1 << 22, Noise: 4, BurstProb: 0.02, BurstMax: 1 << 18})
	},
	"rotation": func(s Spec) Source {
		return NewRotation(RotationConfig{N: s.N, Period: 5, Base: 100, Peak: 100000})
	},
	"regime": func(s Spec) Source {
		return NewRegime(RegimeConfig{N: s.N, Seed: s.Seed, Lo: 0, Hi: 1 << 22, CalmStep: 2, WildStep: 1 << 12, SwitchProb: 0.01})
	},
	"twoband": func(s Spec) Source {
		swap := s.Steps / 10
		if swap < 1 {
			swap = 1
		}
		return NewTwoBand(TwoBandConfig{N: s.N, K: s.K, Seed: s.Seed, Gap: 1 << 16, BandWidth: 1 << 8, MaxStep: 8, SwapEvery: swap})
	},
	"converging": func(s Spec) Source {
		return NewConverging(ConvergingConfig{N: s.N, K: s.K, Seed: s.Seed, Gap: 1 << 24, MinGap: 60, HalvingSteps: 6, Jitter: 8})
	},
}

// FromSpec instantiates a workload preset. Unknown names return an error
// listing the valid ones.
func FromSpec(s Spec) (Source, error) {
	if s.N <= 0 {
		return nil, fmt.Errorf("stream: spec needs N > 0, got %d", s.N)
	}
	if s.K == 0 {
		s.K = s.N / 8
		if s.K < 1 {
			s.K = 1
		}
	}
	if s.K < 1 || s.K > s.N {
		return nil, fmt.Errorf("stream: spec needs 1 <= K <= N, got K=%d N=%d", s.K, s.N)
	}
	if s.K == s.N && (s.Name == "twoband" || s.Name == "converging") {
		return nil, fmt.Errorf("stream: preset %q needs K < N", s.Name)
	}
	if s.Steps == 0 {
		s.Steps = 1000
	}
	mk, ok := presets[s.Name]
	if !ok {
		return nil, fmt.Errorf("stream: unknown workload %q (valid: %s)", s.Name, strings.Join(Names(), ", "))
	}
	return mk(s), nil
}
