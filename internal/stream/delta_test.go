package stream

import (
	"testing"
)

// TestRandomWalkStepDeltaParity checks that StepDelta reports exactly the
// entries in which the dense trajectory moved, and that interleaving Step
// and StepDelta advances one and the same trajectory.
func TestRandomWalkStepDeltaParity(t *testing.T) {
	cfg := WalkConfig{N: 17, Lo: 0, Hi: 1000, MaxStep: 3, Seed: 5}
	dense, sparse := NewRandomWalk(cfg), NewRandomWalk(cfg)

	vals := make([]int64, cfg.N)
	ids := make([]int, cfg.N)
	dvals := make([]int64, cfg.N)
	mirror := make([]int64, cfg.N)
	for s := 0; s < 300; s++ {
		dense.Step(vals)
		c := sparse.StepDelta(ids, dvals)
		if s == 0 && c != cfg.N {
			t.Fatalf("first StepDelta reported %d of %d nodes", c, cfg.N)
		}
		prev := -1
		for j := 0; j < c; j++ {
			if ids[j] <= prev {
				t.Fatalf("step %d: delta ids not strictly increasing: %v", s, ids[:c])
			}
			prev = ids[j]
			if s > 0 && mirror[ids[j]] == dvals[j] {
				t.Fatalf("step %d: node %d reported unchanged value %d", s, ids[j], dvals[j])
			}
			mirror[ids[j]] = dvals[j]
		}
		for i := range mirror {
			if mirror[i] != vals[i] {
				t.Fatalf("step %d: node %d: sparse mirror %d, dense %d", s, i, mirror[i], vals[i])
			}
		}
	}
}

// TestSparseWalkDelta checks the cardinality, ordering, and range
// guarantees of the delta-native generator.
func TestSparseWalkDelta(t *testing.T) {
	cfg := SparseWalkConfig{N: 50, Lo: 0, Hi: 10000, MaxStep: 9, Changed: 7, Seed: 8}
	sw := NewSparseWalk(cfg)
	ids := make([]int, cfg.N)
	vals := make([]int64, cfg.N)

	if c := sw.StepDelta(ids, vals); c != cfg.N {
		t.Fatalf("first step reported %d nodes, want all %d", c, cfg.N)
	}
	mirror := make([]int64, cfg.N)
	copy(mirror, vals)
	total := 0
	for s := 0; s < 200; s++ {
		c := sw.StepDelta(ids, vals)
		if c > cfg.Changed {
			t.Fatalf("step %d: reported %d nodes, want at most %d", s, c, cfg.Changed)
		}
		total += c
		prev := -1
		for j := 0; j < c; j++ {
			if ids[j] <= prev {
				t.Fatalf("step %d: ids not strictly increasing: %v", s, ids[:c])
			}
			prev = ids[j]
			if vals[j] < cfg.Lo || vals[j] > cfg.Hi {
				t.Fatalf("step %d: value %d outside [%d, %d]", s, vals[j], cfg.Lo, cfg.Hi)
			}
			if mirror[ids[j]] == vals[j] {
				t.Fatalf("step %d: node %d reported unchanged value %d", s, ids[j], vals[j])
			}
			mirror[ids[j]] = vals[j]
		}
	}
	if total < 150*cfg.Changed/2 {
		t.Fatalf("suspiciously few changes emitted over 200 steps: %d", total)
	}
}

// TestSparseWalkStepMatchesStepDelta checks that the dense Step view and
// the sparse StepDelta view describe the same trajectory.
func TestSparseWalkStepMatchesStepDelta(t *testing.T) {
	cfg := SparseWalkConfig{N: 25, Lo: 0, Hi: 5000, MaxStep: 11, Changed: 4, Seed: 12}
	dense, sparse := NewSparseWalk(cfg), NewSparseWalk(cfg)
	vals := make([]int64, cfg.N)
	ids := make([]int, cfg.N)
	dvals := make([]int64, cfg.N)
	mirror := make([]int64, cfg.N)
	for s := 0; s < 150; s++ {
		dense.Step(vals)
		c := sparse.StepDelta(ids, dvals)
		for j := 0; j < c; j++ {
			mirror[ids[j]] = dvals[j]
		}
		for i := range mirror {
			if mirror[i] != vals[i] {
				t.Fatalf("step %d: node %d: sparse %d dense %d", s, i, mirror[i], vals[i])
			}
		}
	}
}

// TestSparseWalkPanics pins configuration validation.
func TestSparseWalkPanics(t *testing.T) {
	for i, cfg := range []SparseWalkConfig{
		{N: 0, Lo: 0, Hi: 1, Changed: 1},
		{N: 5, Lo: 1, Hi: 0, Changed: 1},
		{N: 5, Lo: 0, Hi: 1, MaxStep: -1, Changed: 1},
		{N: 5, Lo: 0, Hi: 1, Changed: 0},
		{N: 5, Lo: 0, Hi: 1, Changed: 6},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: expected panic", i)
				}
			}()
			NewSparseWalk(cfg)
		}()
	}
	sw := NewSparseWalk(SparseWalkConfig{N: 5, Lo: 0, Hi: 10, Changed: 2, Seed: 1})
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic for short buffers")
			}
		}()
		sw.StepDelta(make([]int, 2), make([]int64, 5))
	}()
}
