package stream

import (
	"testing"
)

func TestRandomWalkBounds(t *testing.T) {
	w := NewRandomWalk(WalkConfig{N: 10, Lo: 0, Hi: 100, MaxStep: 5, Seed: 1})
	vals := make([]int64, 10)
	for s := 0; s < 500; s++ {
		w.Step(vals)
		for i, v := range vals {
			if v < 0 || v > 100 {
				t.Fatalf("step %d node %d out of range: %d", s, i, v)
			}
		}
	}
}

func TestRandomWalkStepSize(t *testing.T) {
	w := NewRandomWalk(WalkConfig{N: 4, Lo: -1000, Hi: 1000, MaxStep: 3, Seed: 2})
	prev := make([]int64, 4)
	cur := make([]int64, 4)
	w.Step(prev)
	for s := 0; s < 200; s++ {
		w.Step(cur)
		for i := range cur {
			d := cur[i] - prev[i]
			if d < -3 || d > 3 {
				t.Fatalf("step %d node %d moved by %d > MaxStep", s, i, d)
			}
		}
		copy(prev, cur)
	}
}

func TestRandomWalkDeterministic(t *testing.T) {
	cfg := WalkConfig{N: 5, Lo: 0, Hi: 50, MaxStep: 2, Seed: 7}
	a, b := NewRandomWalk(cfg), NewRandomWalk(cfg)
	va, vb := make([]int64, 5), make([]int64, 5)
	for s := 0; s < 100; s++ {
		a.Step(va)
		b.Step(vb)
		for i := range va {
			if va[i] != vb[i] {
				t.Fatalf("walks diverged at step %d node %d", s, i)
			}
		}
	}
}

func TestRandomWalkSpread(t *testing.T) {
	w := NewRandomWalk(WalkConfig{N: 100, Lo: 0, Hi: 1000, MaxStep: 0, Seed: 3, SpreadLo: 400, SpreadHi: 600})
	vals := make([]int64, 100)
	w.Step(vals)
	for i, v := range vals {
		if v < 400 || v > 600 {
			t.Fatalf("node %d initial value %d outside spread", i, v)
		}
	}
}

func TestRandomWalkPanics(t *testing.T) {
	cases := []WalkConfig{
		{N: 0, Lo: 0, Hi: 1},
		{N: 1, Lo: 5, Hi: 4},
		{N: 1, Lo: 0, Hi: 1, MaxStep: -1},
	}
	for i, cfg := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: expected panic", i)
				}
			}()
			NewRandomWalk(cfg)
		}()
	}
}

func TestStepBufferLengthChecked(t *testing.T) {
	w := NewRandomWalk(WalkConfig{N: 3, Lo: 0, Hi: 10, MaxStep: 1, Seed: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for wrong buffer length")
		}
	}()
	w.Step(make([]int64, 2))
}

func TestIIDUniformRange(t *testing.T) {
	g := NewIID(IIDConfig{N: 20, Seed: 1, Dist: Uniform, Lo: 10, Hi: 20})
	vals := make([]int64, 20)
	for s := 0; s < 200; s++ {
		g.Step(vals)
		for i, v := range vals {
			if v < 10 || v > 20 {
				t.Fatalf("node %d value %d out of range", i, v)
			}
		}
	}
}

func TestIIDGaussianClamped(t *testing.T) {
	g := NewIID(IIDConfig{N: 10, Seed: 2, Dist: Gaussian, Lo: 0, Hi: 100, Mean: 50, Std: 100})
	vals := make([]int64, 10)
	for s := 0; s < 100; s++ {
		g.Step(vals)
		for _, v := range vals {
			if v < 0 || v > 100 {
				t.Fatalf("gaussian value %d escaped clamp", v)
			}
		}
	}
}

func TestIIDZipfHeavyTail(t *testing.T) {
	g := NewIID(IIDConfig{N: 1000, Seed: 3, Dist: Zipf, Lo: 1, Hi: 1 << 20, S: 1.2})
	vals := make([]int64, 1000)
	g.Step(vals)
	small, large := 0, 0
	for _, v := range vals {
		if v < 1 || v > 1<<20 {
			t.Fatalf("zipf value %d out of range", v)
		}
		if v <= 16 {
			small++
		}
		if v >= 1<<16 {
			large++
		}
	}
	if small == 0 || large == 0 {
		t.Fatalf("zipf marginal not heavy tailed: small=%d large=%d", small, large)
	}
	if small <= large {
		t.Fatalf("zipf should favor small values: small=%d large=%d", small, large)
	}
}

func TestIIDPanics(t *testing.T) {
	cases := []IIDConfig{
		{N: 0, Lo: 0, Hi: 1},
		{N: 1, Lo: 2, Hi: 1},
		{N: 1, Lo: 0, Hi: 1, Dist: Zipf, S: 0},
	}
	for i, cfg := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: expected panic", i)
				}
			}()
			NewIID(cfg)
		}()
	}
}

func TestBurstyMostlyQuiet(t *testing.T) {
	b := NewBursty(BurstyConfig{N: 10, Seed: 4, Lo: 0, Hi: 1 << 20, Noise: 1, BurstProb: 0.01, BurstMax: 10000})
	prev := make([]int64, 10)
	cur := make([]int64, 10)
	b.Step(prev)
	bigJumps, total := 0, 0
	for s := 0; s < 1000; s++ {
		b.Step(cur)
		for i := range cur {
			d := cur[i] - prev[i]
			if d < 0 {
				d = -d
			}
			if d > 1 {
				bigJumps++
			}
			total++
		}
		copy(prev, cur)
	}
	frac := float64(bigJumps) / float64(total)
	if frac > 0.03 {
		t.Fatalf("too many bursts: %v", frac)
	}
	if bigJumps == 0 {
		t.Fatal("expected at least one burst in 10000 node-steps at p=0.01")
	}
}

func TestBurstyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewBursty(BurstyConfig{N: 1, Lo: 0, Hi: 1, BurstProb: 1.5})
}

func TestRotationMovesPeak(t *testing.T) {
	r := NewRotation(RotationConfig{N: 4, Period: 2, Base: 10, Peak: 100})
	vals := make([]int64, 4)
	wantPeaks := []int{0, 0, 1, 1, 2, 2, 3, 3, 0, 0}
	for s, want := range wantPeaks {
		r.Step(vals)
		peak := -1
		for i, v := range vals {
			switch v {
			case 100:
				if peak >= 0 {
					t.Fatalf("step %d: two peaks", s)
				}
				peak = i
			case 10:
			default:
				t.Fatalf("step %d: unexpected value %d", s, v)
			}
		}
		if peak != want {
			t.Fatalf("step %d: peak at %d, want %d", s, peak, want)
		}
	}
}

func TestRotationPanics(t *testing.T) {
	cases := []RotationConfig{
		{N: 0, Period: 1, Base: 0, Peak: 1},
		{N: 1, Period: 0, Base: 0, Peak: 1},
		{N: 1, Period: 1, Base: 5, Peak: 5},
	}
	for i, cfg := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: expected panic", i)
				}
			}()
			NewRotation(cfg)
		}()
	}
}

func TestTwoBandSeparation(t *testing.T) {
	tb := NewTwoBand(TwoBandConfig{N: 10, K: 3, Seed: 5, Gap: 1000, BandWidth: 100, MaxStep: 10})
	vals := make([]int64, 10)
	for s := 0; s < 300; s++ {
		tb.Step(vals)
		// Without swaps, nodes 0..2 must always be strictly above nodes 3..9.
		minTop, maxBot := vals[0], vals[3]
		for i := 0; i < 3; i++ {
			if vals[i] < minTop {
				minTop = vals[i]
			}
		}
		for i := 3; i < 10; i++ {
			if vals[i] > maxBot {
				maxBot = vals[i]
			}
		}
		if minTop <= maxBot {
			t.Fatalf("step %d: bands overlap (minTop=%d maxBot=%d)", s, minTop, maxBot)
		}
	}
}

func TestTwoBandSwapChangesMembership(t *testing.T) {
	tb := NewTwoBand(TwoBandConfig{N: 6, K: 2, Seed: 6, Gap: 1000, BandWidth: 10, MaxStep: 1, SwapEvery: 50})
	vals := make([]int64, 6)
	topAt := func() map[int]bool {
		set := make(map[int]bool)
		// top-2 nodes by value
		a, b := -1, -1
		for i, v := range vals {
			if a < 0 || v > vals[a] {
				a, b = i, a
			} else if b < 0 || v > vals[b] {
				b = i
			}
		}
		set[a], set[b] = true, true
		return set
	}
	tb.Step(vals)
	initial := topAt()
	changed := false
	for s := 0; s < 200; s++ {
		tb.Step(vals)
		now := topAt()
		for k := range now {
			if !initial[k] {
				changed = true
			}
		}
	}
	if !changed {
		t.Fatal("SwapEvery should change top-k membership over 200 steps")
	}
}

func TestTwoBandPanics(t *testing.T) {
	cases := []TwoBandConfig{
		{N: 5, K: 0, Gap: 100, BandWidth: 1},
		{N: 5, K: 6, Gap: 100, BandWidth: 1},
		{N: 5, K: 2, Gap: 10, BandWidth: 10}, // gap too small
	}
	for i, cfg := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: expected panic", i)
				}
			}()
			NewTwoBand(cfg)
		}()
	}
}

func TestConst(t *testing.T) {
	c := NewConst(ConstConfig{N: 3, Values: []int64{5, 1, 9}})
	vals := make([]int64, 3)
	for s := 0; s < 10; s++ {
		c.Step(vals)
		if vals[0] != 5 || vals[1] != 1 || vals[2] != 9 {
			t.Fatalf("const changed: %v", vals)
		}
	}
}

func TestConstPanics(t *testing.T) {
	for i, f := range []func(){
		func() { NewConst(ConstConfig{N: 0}) },
		func() { NewConst(ConstConfig{N: 2, Values: []int64{1}}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestCollect(t *testing.T) {
	c := NewConst(ConstConfig{N: 2, Values: []int64{3, 4}})
	m := Collect(c, 5)
	if len(m) != 5 {
		t.Fatalf("rows: %d", len(m))
	}
	for _, row := range m {
		if row[0] != 3 || row[1] != 4 {
			t.Fatalf("row wrong: %v", row)
		}
	}
}
