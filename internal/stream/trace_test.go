package stream

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestTraceSourceReplay(t *testing.T) {
	rows := [][]int64{{1, 2}, {3, 4}, {5, 6}}
	ts := NewTraceSource(rows)
	if ts.N() != 2 || ts.Len() != 3 {
		t.Fatalf("dims: N=%d Len=%d", ts.N(), ts.Len())
	}
	vals := make([]int64, 2)
	for i, want := range rows {
		ts.Step(vals)
		if vals[0] != want[0] || vals[1] != want[1] {
			t.Fatalf("step %d: got %v want %v", i, vals, want)
		}
	}
	// Exhausted trace repeats the last row.
	ts.Step(vals)
	if vals[0] != 5 || vals[1] != 6 {
		t.Fatalf("exhausted trace should repeat last row: %v", vals)
	}
}

func TestTraceSourceRewind(t *testing.T) {
	ts := NewTraceSource([][]int64{{1}, {2}})
	vals := make([]int64, 1)
	ts.Step(vals)
	ts.Step(vals)
	ts.Rewind()
	ts.Step(vals)
	if vals[0] != 1 {
		t.Fatalf("rewind failed: %v", vals)
	}
}

func TestTraceSourcePanics(t *testing.T) {
	for i, f := range []func(){
		func() { NewTraceSource(nil) },
		func() { NewTraceSource([][]int64{{}}) },
		func() { NewTraceSource([][]int64{{1, 2}, {3}}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestCSVRoundTrip(t *testing.T) {
	rows := [][]int64{{1, -2, 3}, {4, 5, -6}}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0][1] != -2 || got[1][2] != -6 {
		t.Fatalf("round trip: %v", got)
	}
}

func TestCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("")); err == nil {
		t.Fatal("empty CSV should error")
	}
	if _, err := ReadCSV(strings.NewReader("1,2\n3\n")); err == nil {
		t.Fatal("ragged CSV should error")
	}
	if _, err := ReadCSV(strings.NewReader("1,abc\n")); err == nil {
		t.Fatal("non-numeric CSV should error")
	}
}

func TestGobRoundTrip(t *testing.T) {
	rows := [][]int64{{9, 8}, {7, 6}, {5, 4}}
	var buf bytes.Buffer
	if err := WriteGob(&buf, rows); err != nil {
		t.Fatal(err)
	}
	got, err := ReadGob(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[2][1] != 4 {
		t.Fatalf("round trip: %v", got)
	}
}

func TestGobErrors(t *testing.T) {
	if _, err := ReadGob(strings.NewReader("garbage")); err == nil {
		t.Fatal("garbage gob should error")
	}
}

func TestCSVGobEquivalentProperty(t *testing.T) {
	r := rng.New(77, 1)
	check := func(rowsRaw, colsRaw uint8) bool {
		rows := int(rowsRaw%10) + 1
		cols := int(colsRaw%6) + 1
		m := make([][]int64, rows)
		for i := range m {
			m[i] = make([]int64, cols)
			for j := range m[i] {
				m[i][j] = r.Int63() - r.Int63()
			}
		}
		var cbuf, gbuf bytes.Buffer
		if WriteCSV(&cbuf, m) != nil || WriteGob(&gbuf, m) != nil {
			return false
		}
		fromCSV, err1 := ReadCSV(&cbuf)
		fromGob, err2 := ReadGob(&gbuf)
		if err1 != nil || err2 != nil {
			return false
		}
		for i := range m {
			for j := range m[i] {
				if fromCSV[i][j] != m[i][j] || fromGob[i][j] != m[i][j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestCollectThenReplayMatchesSource(t *testing.T) {
	cfg := WalkConfig{N: 6, Lo: 0, Hi: 1000, MaxStep: 7, Seed: 12}
	recorded := Collect(NewRandomWalk(cfg), 50)
	replay := NewTraceSource(recorded)
	fresh := NewRandomWalk(cfg)
	a, b := make([]int64, 6), make([]int64, 6)
	for s := 0; s < 50; s++ {
		replay.Step(a)
		fresh.Step(b)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("replay diverged at step %d node %d", s, i)
			}
		}
	}
}
