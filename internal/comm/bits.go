package comm

import "math/bits"

// The paper's model (§2) allows a message at time t to carry at most
// O(log n + log max_i v_i) bits: a node id plus one value. The helpers
// here translate recorded events into bit costs so experiments can report
// bit volumes next to message counts. They deliberately use the
// information-theoretic minimum widths (no framing overhead), which makes
// the bit numbers lower bounds for any real encoding.

// ValueBits returns the bits needed for a signed payload value: magnitude
// bits plus one sign bit.
func ValueBits(v int64) int {
	if v < 0 {
		// Careful with MinInt64: negate in unsigned space.
		return bits.Len64(uint64(-(v + 1))) + 1
	}
	return bits.Len64(uint64(v)) + 1
}

// IDBits returns the bits needed to address one of n nodes.
func IDBits(n int) int {
	if n <= 1 {
		return 1
	}
	return bits.Len(uint(n - 1))
}

// EventBits estimates the bit cost of one recorded event under the
// model's message format: an Up message carries the sender id and its
// value; Down and Bcast messages carry a value (filter bound or midpoint)
// — the receivers of a broadcast are implicit.
func EventBits(e Event, n int) int {
	switch e.Kind {
	case Up:
		return IDBits(n) + ValueBits(e.Payload)
	case Down, Bcast:
		return ValueBits(e.Payload)
	default:
		return ValueBits(e.Payload)
	}
}

// TraceBits sums EventBits over every retained event of a trace. The
// trace must not have dropped events for the total to be meaningful;
// callers should size the trace capacity accordingly and check Dropped.
func TraceBits(t *Trace, n int) int64 {
	var total int64
	for _, e := range t.Events() {
		total += int64(EventBits(e, n))
	}
	return total
}
