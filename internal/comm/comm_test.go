package comm

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterBasics(t *testing.T) {
	var c Counter
	c.Record(Up, 3)
	c.Record(Down, 2)
	c.Record(Bcast, 1)
	c.Record(Up, 4)
	if got := c.Get(Up); got != 7 {
		t.Fatalf("Up = %d, want 7", got)
	}
	if got := c.Total(); got != 10 {
		t.Fatalf("Total = %d, want 10", got)
	}
	s := c.Snapshot()
	if s.Up != 7 || s.Down != 2 || s.Bcast != 1 || s.Total() != 10 {
		t.Fatalf("snapshot wrong: %+v", s)
	}
}

func TestCounterReset(t *testing.T) {
	var c Counter
	c.Record(Up, 5)
	c.Reset()
	if c.Total() != 0 {
		t.Fatalf("total after reset: %d", c.Total())
	}
}

func TestCounterPanics(t *testing.T) {
	var c Counter
	for _, f := range []func(){
		func() { c.Record(Up, -1) },
		func() { c.Record(Kind(99), 1) },
		func() { c.Get(Kind(-1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Record(Up, 1)
			}
		}()
	}
	wg.Wait()
	if got := c.Get(Up); got != workers*per {
		t.Fatalf("concurrent count = %d, want %d", got, workers*per)
	}
}

func TestCountsArithmetic(t *testing.T) {
	a := Counts{Up: 5, Down: 3, Bcast: 2}
	b := Counts{Up: 1, Down: 1, Bcast: 1}
	if d := a.Sub(b); d != (Counts{Up: 4, Down: 2, Bcast: 1}) {
		t.Fatalf("Sub: %+v", d)
	}
	if s := a.Add(b); s != (Counts{Up: 6, Down: 4, Bcast: 3}) {
		t.Fatalf("Add: %+v", s)
	}
	if !strings.Contains(a.String(), "total=10") {
		t.Fatalf("String: %s", a)
	}
}

func TestKindString(t *testing.T) {
	if Up.String() != "up" || Down.String() != "down" || Bcast.String() != "bcast" {
		t.Fatal("kind names wrong")
	}
	if !strings.Contains(Kind(42).String(), "42") {
		t.Fatal("unknown kind should include number")
	}
	if len(Kinds()) != 3 {
		t.Fatal("Kinds() should list 3 kinds")
	}
}

func TestLedgerPhases(t *testing.T) {
	var l Ledger
	l.InPhase(PhaseViolation).Record(Up, 2)
	l.InPhase(PhaseHandler).Record(Bcast, 1)
	l.InPhase(PhaseReset).Record(Up, 4)
	l.Record(Down, 1) // unattributed

	if tot := l.Total(); tot.Total() != 8 {
		t.Fatalf("ledger total = %d, want 8", tot.Total())
	}
	if v := l.PhaseCounts(PhaseViolation); v.Up != 2 || v.Total() != 2 {
		t.Fatalf("violation phase: %+v", v)
	}
	if h := l.PhaseCounts(PhaseHandler); h.Bcast != 1 {
		t.Fatalf("handler phase: %+v", h)
	}
	if r := l.PhaseCounts(PhaseReset); r.Up != 4 {
		t.Fatalf("reset phase: %+v", r)
	}
	// Phase sums exclude the unattributed Down message.
	sum := int64(0)
	for _, p := range Phases() {
		sum += l.PhaseCounts(p).Total()
	}
	if sum != 7 {
		t.Fatalf("phase sum = %d, want 7", sum)
	}
}

func TestLedgerReset(t *testing.T) {
	var l Ledger
	l.InPhase(PhaseReset).Record(Up, 3)
	l.Reset()
	if l.Total().Total() != 0 || l.PhaseCounts(PhaseReset).Total() != 0 {
		t.Fatal("ledger reset incomplete")
	}
}

func TestLedgerPanicsOnBadPhase(t *testing.T) {
	var l Ledger
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	l.InPhase(Phase(99))
}

func TestPhaseString(t *testing.T) {
	if PhaseViolation.String() != "violation" || PhaseHandler.String() != "handler" || PhaseReset.String() != "reset" {
		t.Fatal("phase names wrong")
	}
	if !strings.Contains(Phase(9).String(), "9") {
		t.Fatal("unknown phase should include number")
	}
}

func TestDiscard(t *testing.T) {
	Discard.Record(Up, 100) // must not panic or affect anything
}

func TestTee(t *testing.T) {
	var a, b Counter
	r := Tee(&a, &b)
	r.Record(Up, 2)
	if a.Get(Up) != 2 || b.Get(Up) != 2 {
		t.Fatal("tee did not forward to all recorders")
	}
}

func TestTraceBasics(t *testing.T) {
	tr := NewTrace(10)
	tr.Append(Event{Step: 1, Kind: Up, From: 3, To: Coordinator, Payload: 42})
	tr.Append(Event{Step: 2, Kind: Bcast, From: Coordinator, To: Everyone, Payload: 7, Note: "midpoint"})
	evs := tr.Events()
	if len(evs) != 2 || tr.Len() != 2 {
		t.Fatalf("event count: %d", len(evs))
	}
	if evs[0].Payload != 42 || evs[1].Note != "midpoint" {
		t.Fatalf("events wrong: %+v", evs)
	}
	s := tr.String()
	if !strings.Contains(s, "node3->coord") || !strings.Contains(s, "coord->*") {
		t.Fatalf("trace rendering: %s", s)
	}
}

func TestTraceRingBuffer(t *testing.T) {
	tr := NewTrace(3)
	for i := int64(0); i < 5; i++ {
		tr.Append(Event{Step: i})
	}
	evs := tr.Events()
	if len(evs) != 3 {
		t.Fatalf("retained %d events, want 3", len(evs))
	}
	if evs[0].Step != 2 || evs[2].Step != 4 {
		t.Fatalf("ring order wrong: %+v", evs)
	}
	if tr.Dropped() != 2 {
		t.Fatalf("dropped = %d, want 2", tr.Dropped())
	}
}

func TestTraceNilSafe(t *testing.T) {
	var tr *Trace
	tr.Append(Event{})
	if tr.Events() != nil || tr.Len() != 0 || tr.Dropped() != 0 {
		t.Fatal("nil trace should be inert")
	}
}

func TestTracePanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewTrace(0)
}

func TestTraceConcurrent(t *testing.T) {
	tr := NewTrace(100)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				tr.Append(Event{Step: int64(w*100 + i)})
			}
		}(w)
	}
	wg.Wait()
	if tr.Len() != 100 {
		t.Fatalf("trace length %d, want 100", tr.Len())
	}
	if tr.Dropped() != 300 {
		t.Fatalf("dropped %d, want 300", tr.Dropped())
	}
}
