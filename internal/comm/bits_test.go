package comm

import (
	"math"
	"testing"
	"testing/quick"
)

func TestValueBits(t *testing.T) {
	cases := map[int64]int{
		0:    1, // sign bit only
		1:    2,
		7:    4,
		8:    5,
		-1:   1, // len64(0)+1
		-8:   4,
		1023: 11,
	}
	for v, want := range cases {
		if got := ValueBits(v); got != want {
			t.Fatalf("ValueBits(%d) = %d, want %d", v, got, want)
		}
	}
}

func TestValueBitsExtremes(t *testing.T) {
	if got := ValueBits(math.MaxInt64); got != 64 {
		t.Fatalf("MaxInt64: %d", got)
	}
	if got := ValueBits(math.MinInt64); got != 64 {
		t.Fatalf("MinInt64: %d", got)
	}
}

func TestValueBitsSymmetryProperty(t *testing.T) {
	// |ValueBits(v) - ValueBits(-v)| <= 1 for all v (two's complement
	// asymmetry only).
	check := func(v int64) bool {
		if v == math.MinInt64 {
			return true
		}
		d := ValueBits(v) - ValueBits(-v)
		return d >= -1 && d <= 1
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIDBits(t *testing.T) {
	cases := map[int]int{1: 1, 2: 1, 3: 2, 4: 2, 5: 3, 1024: 10, 1025: 11}
	for n, want := range cases {
		if got := IDBits(n); got != want {
			t.Fatalf("IDBits(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestEventBits(t *testing.T) {
	n := 16 // 4 id bits
	up := Event{Kind: Up, From: 3, Payload: 7}
	if got := EventBits(up, n); got != 4+4 {
		t.Fatalf("up bits: %d", got)
	}
	bc := Event{Kind: Bcast, Payload: 7}
	if got := EventBits(bc, n); got != 4 {
		t.Fatalf("bcast bits: %d", got)
	}
	dn := Event{Kind: Down, To: 2, Payload: 0}
	if got := EventBits(dn, n); got != 1 {
		t.Fatalf("down bits: %d", got)
	}
}

func TestTraceBits(t *testing.T) {
	tr := NewTrace(10)
	tr.Append(Event{Kind: Up, From: 1, Payload: 7}) // 4 + 4 with n=16
	tr.Append(Event{Kind: Bcast, Payload: 1023})    // 11
	if got := TraceBits(tr, 16); got != 8+11 {
		t.Fatalf("trace bits: %d", got)
	}
}
