package comm

import "testing"

func TestCounterBytes(t *testing.T) {
	var c Counter
	c.RecordSized(Up, 2, 10)
	c.RecordSized(Bcast, 1, 3)
	c.Record(Up, 1) // count-only: bytes unchanged
	if got := c.Snapshot(); got.Up != 3 || got.Bcast != 1 {
		t.Fatalf("counts %+v", got)
	}
	b := c.BytesSnapshot()
	if b.Up != 10 || b.Bcast != 3 || b.Down != 0 || b.Total() != 13 {
		t.Fatalf("bytes %+v", b)
	}
	c.Reset()
	if b := c.BytesSnapshot(); b.Total() != 0 {
		t.Fatalf("bytes after reset %+v", b)
	}
}

func TestLedgerBytesByPhase(t *testing.T) {
	var l Ledger
	l.InPhase(PhaseViolation).(SizedRecorder).RecordSized(Up, 1, 7)
	RecordSized(l.InPhase(PhaseReset), Bcast, 1, 5)
	if got := l.TotalBytes(); got.Up != 7 || got.Bcast != 5 {
		t.Fatalf("total bytes %+v", got)
	}
	if got := l.PhaseBytes(PhaseViolation); got.Up != 7 || got.Total() != 7 {
		t.Fatalf("violation bytes %+v", got)
	}
	if got := l.PhaseBytes(PhaseReset); got.Bcast != 5 || got.Total() != 5 {
		t.Fatalf("reset bytes %+v", got)
	}
	if got := l.PhaseBytes(PhaseHandler); got.Total() != 0 {
		t.Fatalf("handler bytes %+v", got)
	}
}

// TestRecordSizedFallback exercises the degradation path for recorders
// that only count messages.
func TestRecordSizedFallback(t *testing.T) {
	calls := 0
	r := countOnly{n: &calls}
	RecordSized(r, Up, 2, 100)
	if calls != 2 {
		t.Fatalf("fallback recorded %d", calls)
	}
	// Discard and Tee must accept sized events without panicking.
	RecordSized(Discard, Down, 1, 1)
	var a, b Counter
	RecordSized(Tee(&a, &b, r), Up, 1, 9)
	if a.GetBytes(Up) != 9 || b.GetBytes(Up) != 9 || calls != 3 {
		t.Fatalf("tee bytes %d/%d calls %d", a.GetBytes(Up), b.GetBytes(Up), calls)
	}
}

type countOnly struct{ n *int }

func (c countOnly) Record(_ Kind, n int64) { *c.n += int(n) }
