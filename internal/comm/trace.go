package comm

import (
	"fmt"
	"strings"
	"sync"
)

// Event is one communication event retained by a Trace. From/To use node
// ids, with Coordinator as the coordinator pseudo-id and Everyone as the
// broadcast destination.
type Event struct {
	Step    int64 // simulation time step the event occurred in
	Kind    Kind
	From    int
	To      int
	Payload int64 // protocol-specific payload (usually an order.Key)
	Note    string
}

// Pseudo node ids used in Event.From / Event.To.
const (
	Coordinator = -1
	Everyone    = -2
)

// String renders the event for debugging output.
func (e Event) String() string {
	name := func(id int) string {
		switch id {
		case Coordinator:
			return "coord"
		case Everyone:
			return "*"
		default:
			return fmt.Sprintf("node%d", id)
		}
	}
	s := fmt.Sprintf("t=%d %s %s->%s payload=%d", e.Step, e.Kind, name(e.From), name(e.To), e.Payload)
	if e.Note != "" {
		s += " (" + e.Note + ")"
	}
	return s
}

// Trace is a bounded in-memory log of communication events. When the
// capacity is exceeded the oldest events are dropped (ring buffer), so a
// long simulation can keep a trace attached without unbounded growth.
// A nil *Trace is valid and records nothing, which lets hot paths guard
// with a single nil check.
type Trace struct {
	mu      sync.Mutex
	cap     int
	events  []Event
	start   int // index of the oldest event within events
	dropped int64
}

// NewTrace creates a trace retaining at most capacity events. It panics
// for non-positive capacities.
func NewTrace(capacity int) *Trace {
	if capacity <= 0 {
		panic("comm: trace capacity must be positive")
	}
	return &Trace{cap: capacity}
}

// Append records an event. Safe for concurrent use; nil receiver is a no-op.
func (t *Trace) Append(e Event) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.events) < t.cap {
		t.events = append(t.events, e)
		return
	}
	t.events[t.start] = e
	t.start = (t.start + 1) % t.cap
	t.dropped++
}

// Events returns the retained events in chronological order.
func (t *Trace) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, 0, len(t.events))
	for i := 0; i < len(t.events); i++ {
		out = append(out, t.events[(t.start+i)%len(t.events)])
	}
	return out
}

// Dropped returns how many events were evicted due to the capacity bound.
func (t *Trace) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Len returns the number of retained events.
func (t *Trace) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// String renders the whole retained trace, one event per line.
func (t *Trace) String() string {
	var b strings.Builder
	for _, e := range t.Events() {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}
