// Package comm models the communication substrate of the continuous
// distributed monitoring model (Cormode et al.) that the paper builds on:
// n nodes that can each exchange unicast messages with a single coordinator,
// plus a coordinator-side broadcast channel that reaches every node at once.
// Every message — unicast in either direction or broadcast — has unit cost
// and instantaneous delivery.
//
// The package does not move bytes; both execution engines (the sequential
// simulator in internal/sim and the goroutine runtime in internal/runtime)
// deliver payloads themselves and use this package purely for accounting:
// typed message kinds, cheap counters, per-phase ledgers and an optional
// bounded event trace. Keeping accounting separate from delivery is what
// lets the two engines share the protocol logic and then be checked for
// message-count equivalence in tests.
package comm

import (
	"fmt"
	"sync/atomic"
)

// Kind classifies a message by direction, mirroring the three communication
// methods of the paper's model (§2).
type Kind int

const (
	// Up is a node-to-coordinator unicast message.
	Up Kind = iota
	// Down is a coordinator-to-node unicast message.
	Down
	// Bcast is a coordinator broadcast received by all nodes; the model
	// charges it one unit regardless of n.
	Bcast

	numKinds
)

// String returns a short human-readable name for the kind.
func (k Kind) String() string {
	switch k {
	case Up:
		return "up"
	case Down:
		return "down"
	case Bcast:
		return "bcast"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Kinds lists all message kinds in a stable order.
func Kinds() []Kind { return []Kind{Up, Down, Bcast} }

// Recorder receives message-count events. Counter and phase-scoped views
// implement it; protocol code only depends on this interface.
type Recorder interface {
	// Record accounts for n messages of the given kind. n must be >= 0.
	Record(kind Kind, n int64)
}

// SizedRecorder is a Recorder that additionally tracks the encoded size
// of the messages it counts. Counter, Ledger and the phase views all
// implement it; use the package-level RecordSized helper to stay
// compatible with count-only recorders.
type SizedRecorder interface {
	Recorder
	// RecordSized accounts for n messages of the given kind totalling the
	// given number of encoded payload bytes. n and bytes must be >= 0.
	RecordSized(kind Kind, n, bytes int64)
}

// RecordSized records n messages of the given kind totalling bytes encoded
// bytes on r, falling back to count-only recording when r does not track
// bytes. It is the call protocol code uses so that byte accounting is
// optional for recorder implementations.
func RecordSized(r Recorder, kind Kind, n, bytes int64) {
	if sr, ok := r.(SizedRecorder); ok {
		sr.RecordSized(kind, n, bytes)
		return
	}
	r.Record(kind, n)
}

// Counter accumulates message counts and encoded byte volumes by kind.
// The zero value is ready to use. All methods are safe for concurrent
// use, so the goroutine runtime can share one counter across node
// goroutines.
type Counter struct {
	counts [numKinds]atomic.Int64
	bytes  [numKinds]atomic.Int64
}

// Record implements Recorder. Count-only recording leaves the bytes
// column untouched.
func (c *Counter) Record(kind Kind, n int64) {
	if n < 0 {
		panic("comm: negative message count")
	}
	if kind < 0 || kind >= numKinds {
		panic("comm: unknown message kind")
	}
	c.counts[kind].Add(n)
}

// RecordSized implements SizedRecorder.
func (c *Counter) RecordSized(kind Kind, n, bytes int64) {
	if bytes < 0 {
		panic("comm: negative byte count")
	}
	c.Record(kind, n)
	c.bytes[kind].Add(bytes)
}

// Get returns the count for one kind.
func (c *Counter) Get(kind Kind) int64 {
	if kind < 0 || kind >= numKinds {
		panic("comm: unknown message kind")
	}
	return c.counts[kind].Load()
}

// Total returns the number of messages of all kinds; each broadcast counts
// as one message, matching the paper's unit-cost model.
func (c *Counter) Total() int64 {
	var t int64
	for i := range c.counts {
		t += c.counts[i].Load()
	}
	return t
}

// GetBytes returns the encoded byte volume recorded for one kind.
func (c *Counter) GetBytes(kind Kind) int64 {
	if kind < 0 || kind >= numKinds {
		panic("comm: unknown message kind")
	}
	return c.bytes[kind].Load()
}

// Snapshot returns the current counts as a plain value.
func (c *Counter) Snapshot() Counts {
	var s Counts
	s.Up = c.Get(Up)
	s.Down = c.Get(Down)
	s.Bcast = c.Get(Bcast)
	return s
}

// BytesSnapshot returns the current byte volumes as a plain value.
func (c *Counter) BytesSnapshot() Bytes {
	var b Bytes
	b.Up = c.GetBytes(Up)
	b.Down = c.GetBytes(Down)
	b.Bcast = c.GetBytes(Bcast)
	return b
}

// Reset zeroes all counts and byte volumes.
func (c *Counter) Reset() {
	for i := range c.counts {
		c.counts[i].Store(0)
		c.bytes[i].Store(0)
	}
}

// Counts is an immutable snapshot of a Counter.
type Counts struct {
	Up    int64
	Down  int64
	Bcast int64
}

// Total returns the sum over all kinds.
func (c Counts) Total() int64 { return c.Up + c.Down + c.Bcast }

// Sub returns the component-wise difference c - o. Useful for measuring the
// cost of a phase as the delta between two snapshots.
func (c Counts) Sub(o Counts) Counts {
	return Counts{Up: c.Up - o.Up, Down: c.Down - o.Down, Bcast: c.Bcast - o.Bcast}
}

// Add returns the component-wise sum c + o.
func (c Counts) Add(o Counts) Counts {
	return Counts{Up: c.Up + o.Up, Down: c.Down + o.Down, Bcast: c.Bcast + o.Bcast}
}

// String renders the snapshot compactly.
func (c Counts) String() string {
	return fmt.Sprintf("up=%d down=%d bcast=%d total=%d", c.Up, c.Down, c.Bcast, c.Total())
}

// Bytes is the byte-volume companion of Counts: the encoded size of the
// charged messages, by kind. The sizes come from the canonical wire
// encodings (internal/wire), so every engine — sequential, sharded
// concurrent, networked — reports the identical Bytes for the same seed.
type Bytes struct {
	Up    int64
	Down  int64
	Bcast int64
}

// Total returns the byte sum over all kinds.
func (b Bytes) Total() int64 { return b.Up + b.Down + b.Bcast }

// Sub returns the component-wise difference b - o.
func (b Bytes) Sub(o Bytes) Bytes {
	return Bytes{Up: b.Up - o.Up, Down: b.Down - o.Down, Bcast: b.Bcast - o.Bcast}
}

// Add returns the component-wise sum b + o.
func (b Bytes) Add(o Bytes) Bytes {
	return Bytes{Up: b.Up + o.Up, Down: b.Down + o.Down, Bcast: b.Bcast + o.Bcast}
}

// String renders the snapshot compactly.
func (b Bytes) String() string {
	return fmt.Sprintf("upB=%d downB=%d bcastB=%d totalB=%d", b.Up, b.Down, b.Bcast, b.Total())
}

// Phase labels a stage of Algorithm 1 for cost-breakdown accounting
// (experiment E11). The labels follow the procedures in the paper's
// pseudocode.
type Phase int

const (
	// PhaseViolation covers the protocols started by filter-violating nodes
	// (Algorithm 1 lines 2-10).
	PhaseViolation Phase = iota
	// PhaseHandler covers the coordinator-initiated protocol completing the
	// missing side plus the midpoint broadcast (lines 15-34, excluding reset).
	PhaseHandler
	// PhaseReset covers FILTERRESET (lines 36-42), including initialization.
	PhaseReset

	numPhases
)

// String returns the phase name used in tables.
func (p Phase) String() string {
	switch p {
	case PhaseViolation:
		return "violation"
	case PhaseHandler:
		return "handler"
	case PhaseReset:
		return "reset"
	default:
		return fmt.Sprintf("phase(%d)", int(p))
	}
}

// Phases lists all phases in a stable order.
func Phases() []Phase { return []Phase{PhaseViolation, PhaseHandler, PhaseReset} }

// Ledger is a Counter with an additional per-phase breakdown. The zero
// value is ready to use.
type Ledger struct {
	total  Counter
	phases [numPhases]Counter
}

// Record implements Recorder, attributing to no particular phase. Prefer
// InPhase for attributed recording; bare Record still updates the total.
func (l *Ledger) Record(kind Kind, n int64) { l.total.Record(kind, n) }

// RecordSized implements SizedRecorder, attributing to no particular phase.
func (l *Ledger) RecordSized(kind Kind, n, bytes int64) { l.total.RecordSized(kind, n, bytes) }

// InPhase returns a Recorder that attributes messages to the given phase
// while also updating the ledger total.
func (l *Ledger) InPhase(p Phase) Recorder {
	if p < 0 || p >= numPhases {
		panic("comm: unknown phase")
	}
	return phaseRecorder{ledger: l, phase: p}
}

// Total returns the ledger's overall counter snapshot.
func (l *Ledger) Total() Counts { return l.total.Snapshot() }

// TotalBytes returns the ledger's overall byte-volume snapshot.
func (l *Ledger) TotalBytes() Bytes { return l.total.BytesSnapshot() }

// PhaseCounts returns the snapshot attributed to phase p.
func (l *Ledger) PhaseCounts(p Phase) Counts {
	if p < 0 || p >= numPhases {
		panic("comm: unknown phase")
	}
	return l.phases[p].Snapshot()
}

// PhaseBytes returns the byte-volume snapshot attributed to phase p.
func (l *Ledger) PhaseBytes(p Phase) Bytes {
	if p < 0 || p >= numPhases {
		panic("comm: unknown phase")
	}
	return l.phases[p].BytesSnapshot()
}

// Reset zeroes the ledger.
func (l *Ledger) Reset() {
	l.total.Reset()
	for i := range l.phases {
		l.phases[i].Reset()
	}
}

type phaseRecorder struct {
	ledger *Ledger
	phase  Phase
}

func (r phaseRecorder) Record(kind Kind, n int64) {
	r.ledger.total.Record(kind, n)
	r.ledger.phases[r.phase].Record(kind, n)
}

func (r phaseRecorder) RecordSized(kind Kind, n, bytes int64) {
	r.ledger.total.RecordSized(kind, n, bytes)
	r.ledger.phases[r.phase].RecordSized(kind, n, bytes)
}

// Discard is a Recorder that drops all events. It is handy for protocol
// executions whose cost must not be charged (e.g. oracle computations).
var Discard Recorder = discard{}

type discard struct{}

func (discard) Record(Kind, int64) {}

func (discard) RecordSized(Kind, int64, int64) {}

// Tee returns a Recorder that forwards every event to all of rs.
func Tee(rs ...Recorder) Recorder { return tee(rs) }

type tee []Recorder

func (t tee) Record(kind Kind, n int64) {
	for _, r := range t {
		r.Record(kind, n)
	}
}

func (t tee) RecordSized(kind Kind, n, bytes int64) {
	for _, r := range t {
		RecordSized(r, kind, n, bytes)
	}
}
