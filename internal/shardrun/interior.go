package shardrun

import (
	"errors"
	"fmt"
	"io"

	"repro/internal/comm"
	"repro/internal/coord"
	"repro/internal/order"
	"repro/internal/transport"
	"repro/internal/wire"
)

// kid is an interior relay's view of one child subtree link: the absolute
// node range the subtree serves, plus the staging arena that assembles
// the child's share of the current exchange. The reply views alias the
// child's receive buffer and stay valid until that link's next Recv,
// which relay guarantees happens only after the exchange is combined.
type kid struct {
	link   transport.Link
	lo, hi int // absolute node range served by the subtree

	batch wire.Batch // decode scratch for batched replies

	stage   []byte   // staged outgoing sub-frames (arena)
	lens    []int    // sub-frame lengths within the arena
	views   [][]byte // scratch for assembling the outgoing batch
	replies [][]byte // reply sub-frames of the current exchange
	cursor  int      // next reply sub-frame to consume
}

// stageRaw stages one pre-encoded sub-frame verbatim.
func (k *kid) stageRaw(frame []byte) {
	k.stage = append(k.stage, frame...)
	k.lens = append(k.lens, len(frame))
}

// stageEnc stages one sub-frame produced by an append-encoder.
func (k *kid) stageEnc(enc func([]byte) []byte) {
	old := len(k.stage)
	k.stage = enc(k.stage)
	k.lens = append(k.lens, len(k.stage)-old)
}

// next consumes this child's next reply sub-frame.
func (k *kid) next() []byte {
	f := k.replies[k.cursor]
	k.cursor++
	return f
}

// planEntry records, for one parent sub-frame, which children contribute
// replies and how to combine them (digest merge for Round, flag OR for
// everything else).
type planEntry struct {
	typ     byte
	tag     uint8 // Round only: selects the merge direction
	targets []int // contributing kid indices, ascending
}

// interior is one stateless relay level of the coordinator tree: it owns
// no node bank and makes no protocol decisions. It re-splits assignments,
// routes commands down, and folds replies up — violation flags by OR,
// shard digests by the same associative merge the root applies (charge
// sums plus the first-in-order extremum), so a subtree is externally
// indistinguishable from a single wider shard. Its only state beyond the
// child ranges is a comm.Counter over the child-facing coordination
// frames, reported one LevelIO per tree level through the StatsPoll
// diagnostic exchange.
type interior struct {
	parent  transport.Link
	kids    []*kid
	lo, hi  int          // currently assigned absolute range
	counter comm.Counter // child-facing coordination traffic (one tree level)

	obs   wire.Observe      // decode scratch
	delta wire.ObserveDelta //
	batch wire.Batch        // decode scratch for parent batches
	stats wire.TreeStats    // decode scratch for child stats replies

	plan  []planEntry
	one   [][]byte // single-frame relay scratch
	buf   []byte   // outgoing parent frame (or reply arena for batches)
	bbuf  []byte   // batch-envelope encode scratch
	rlens []int    // reply sub-frame lengths within buf
	views [][]byte // scratch for assembling the parent batch reply
	ids   []int    // per-child delta routing scratch
	vals  []int64  //

	absorbs []int64 // stats aggregation scratch
	levels  []wire.LevelIO
}

// owner returns the index of the child subtree owning node id, or -1.
func (r *interior) owner(id int) int {
	for ki, k := range r.kids {
		if id >= k.lo && id < k.hi {
			return ki
		}
	}
	return -1
}

// entry appends a reused plan entry and returns it.
func (r *interior) entry(typ byte) *planEntry {
	if len(r.plan) < cap(r.plan) {
		r.plan = r.plan[:len(r.plan)+1]
	} else {
		r.plan = append(r.plan, planEntry{})
	}
	pe := &r.plan[len(r.plan)-1]
	pe.typ = typ
	pe.tag = 0
	pe.targets = pe.targets[:0]
	return pe
}

// shutdownKids forwards Shutdown to every child and closes the links, so
// leaves exit their serve loops cleanly before the pipes go away.
func (r *interior) shutdownKids() {
	for _, k := range r.kids {
		//lint:topk chargedsend Shutdown is a teardown control frame outside the model; nothing is charged once the subtree is being dismantled
		_ = k.link.Send(wire.AppendBare(r.bbuf[:0], wire.TypeShutdown))
		_ = transport.Flush(k.link)
		_ = k.link.Close()
	}
}

// reassign handles an Assign from the parent: re-split the range among
// the children with the same base/rem rule the root uses, run the
// Assign/Ready handshake down the subtree, and ack Ready up. An
// assignment narrower than the child count shuts the surplus children
// down for good — the subsequent re-split keeps every survivor non-empty
// (mid-stream narrowing happens only through root-side range merges,
// which never widen again).
func (r *interior) reassign(m wire.Assign) error {
	width := m.Hi - m.Lo
	if width <= 0 {
		return fmt.Errorf("shardrun: interior assigned empty range [%d, %d)", m.Lo, m.Hi)
	}
	if width < len(r.kids) {
		for _, k := range r.kids[width:] {
			_ = k.link.Send(wire.AppendBare(r.bbuf[:0], wire.TypeShutdown))
			_ = transport.Flush(k.link)
			_ = k.link.Close()
		}
		r.kids = r.kids[:width]
	}
	r.lo, r.hi = m.Lo, m.Hi
	base, rem := width/len(r.kids), width%len(r.kids)
	lo := m.Lo
	ka := m // per-child assignment: same population, narrower range
	for i, k := range r.kids {
		k.lo = lo
		k.hi = lo + base
		if i < rem {
			k.hi++
		}
		lo = k.hi
		ka.Lo, ka.Hi = k.lo, k.hi
		r.buf = ka.Append(r.buf[:0])
		if err := k.link.Send(r.buf); err != nil {
			return fmt.Errorf("shardrun: interior assign [%d, %d): %w", k.lo, k.hi, err)
		}
		if err := transport.Flush(k.link); err != nil {
			return fmt.Errorf("shardrun: interior assign [%d, %d): %w", k.lo, k.hi, err)
		}
		r.counter.RecordSized(comm.Down, 1, int64(len(r.buf)))
	}
	for _, k := range r.kids {
		frame, err := k.link.Recv()
		if err != nil {
			return fmt.Errorf("shardrun: interior ready [%d, %d): %w", k.lo, k.hi, err)
		}
		if err := wire.DecodeBare(frame, wire.TypeReady); err != nil {
			return fmt.Errorf("shardrun: interior ready [%d, %d): %w", k.lo, k.hi, err)
		}
		r.counter.RecordSized(comm.Up, 1, int64(len(frame)))
	}
	r.buf = wire.AppendBare(r.buf[:0], wire.TypeReady)
	return nil
}

// pollStats answers the StatsPoll diagnostic: gather every child's
// TreeStats, sum the absorption counters elementwise, sum the per-level
// IO of the deeper levels elementwise, and append this relay's own
// child-facing counter as one more level (deepest level first). The poll
// exchange itself is deliberately not charged anywhere — diagnostics must
// not perturb the numbers they report — so it is visible only in the
// transport statistics.
func (r *interior) pollStats() error {
	for _, k := range r.kids {
		//lint:topk chargedsend StatsPoll is deliberately uncharged diagnostics: polling must not perturb the ledgers it reports (see pollStats doc)
		if err := k.link.Send(wire.AppendBare(r.bbuf[:0], wire.TypeStatsPoll)); err != nil {
			return fmt.Errorf("shardrun: interior stats poll: %w", err)
		}
		if err := transport.Flush(k.link); err != nil {
			return fmt.Errorf("shardrun: interior stats poll: %w", err)
		}
	}
	r.absorbs = r.absorbs[:0]
	r.levels = r.levels[:0]
	for _, k := range r.kids {
		frame, err := k.link.Recv()
		if err != nil {
			return fmt.Errorf("shardrun: interior stats reply: %w", err)
		}
		if err := r.stats.Decode(frame); err != nil {
			return fmt.Errorf("shardrun: interior stats reply: %w", err)
		}
		for i, a := range r.stats.Absorbs {
			if i < len(r.absorbs) {
				r.absorbs[i] += a
			} else {
				r.absorbs = append(r.absorbs, a)
			}
		}
		for i, lv := range r.stats.Levels {
			if i < len(r.levels) {
				r.levels[i] = r.levels[i].Add(lv)
			} else {
				r.levels = append(r.levels, lv)
			}
		}
	}
	r.levels = append(r.levels, wire.LevelIO{
		Down:      r.counter.Get(comm.Down),
		Up:        r.counter.Get(comm.Up),
		DownBytes: r.counter.GetBytes(comm.Down),
		UpBytes:   r.counter.GetBytes(comm.Up),
	})
	r.buf = wire.TreeStats{Absorbs: r.absorbs, Levels: r.levels}.Append(r.buf[:0])
	return nil
}

// mergeDigests folds the targets' digests exactly as the root's
// execDelegated does: charges sum, the extremum wins, and among ties the
// first in ascending range order — the merge is associative, so any
// nesting of relays reports what a flat root would compute from the
// leaves directly.
func (r *interior) mergeDigests(pe *planEntry) (wire.ShardDigest, error) {
	minimum := coord.MinimumTag(pe.tag)
	best := order.NegInf
	var out wire.ShardDigest
	for _, ki := range pe.targets {
		k := r.kids[ki]
		d, err := wire.DecodeShardDigest(k.next())
		if err != nil {
			return out, fmt.Errorf("shardrun: interior digest [%d, %d): %w", k.lo, k.hi, err)
		}
		if d.Ups < 0 || d.UpBytes < 0 || d.Bcasts < 0 || d.BcastBytes < 0 {
			return out, fmt.Errorf("shardrun: interior digest [%d, %d): negative charges %+v", k.lo, k.hi, d)
		}
		if d.OK && (d.ID < k.lo || d.ID >= k.hi) {
			return out, fmt.Errorf("shardrun: interior digest winner %d outside range [%d, %d)", d.ID, k.lo, k.hi)
		}
		out.Ups += d.Ups
		out.UpBytes += d.UpBytes
		out.Bcasts += d.Bcasts
		out.BcastBytes += d.BcastBytes
		if !d.OK {
			continue
		}
		cmp := order.Key(d.Key)
		if minimum {
			cmp = order.Neg(cmp)
		}
		if cmp > best {
			best = cmp
			out.OK = true
			out.ID = d.ID
			out.Key = d.Key
		}
	}
	return out, nil
}

// relay routes one parent exchange — a single command or the sub-frames
// of a batch — through the subtree in three pipelined strokes: stage
// every child's share, fan everything out (so sibling subtrees work
// concurrently), then gather and combine in child order. Each child
// receives at most one frame per parent frame, preserving the one
// outstanding frame per link invariant at every level, and a batch of n
// commands costs one round trip per tree level instead of n.
func (r *interior) relay(frames [][]byte, batched bool) (cont bool, err error) {
	for _, k := range r.kids {
		k.stage, k.lens = k.stage[:0], k.lens[:0]
	}
	r.plan = r.plan[:0]
	for _, sub := range frames {
		typ, err := wire.MsgType(sub)
		if err != nil {
			return false, err
		}
		pe := r.entry(typ)
		switch typ {
		case wire.TypeResetBegin:
			if err := wire.DecodeBare(sub, wire.TypeResetBegin); err != nil {
				return false, err
			}
			for ki := range r.kids {
				r.kids[ki].stageRaw(sub)
				pe.targets = append(pe.targets, ki)
			}

		case wire.TypeMidpoint:
			if _, err := wire.DecodeMidpoint(sub); err != nil {
				return false, err
			}
			for ki := range r.kids {
				r.kids[ki].stageRaw(sub)
				pe.targets = append(pe.targets, ki)
			}

		case wire.TypeApproxBounds:
			if _, err := wire.DecodeApproxBounds(sub); err != nil {
				return false, err
			}
			for ki := range r.kids {
				r.kids[ki].stageRaw(sub)
				pe.targets = append(pe.targets, ki)
			}

		case wire.TypeWinner:
			m, err := wire.DecodeWinner(sub)
			if err != nil {
				return false, err
			}
			ki := r.owner(m.Target)
			if ki < 0 {
				return false, fmt.Errorf("shardrun: winner %d outside interior range [%d, %d)", m.Target, r.lo, r.hi)
			}
			r.kids[ki].stageRaw(sub)
			pe.targets = append(pe.targets, ki)

		case wire.TypeObserve:
			if err := r.obs.Decode(sub); err != nil {
				return false, err
			}
			if len(r.obs.Vals) != r.hi-r.lo {
				return false, fmt.Errorf("shardrun: observe carries %d values for interior range [%d, %d)", len(r.obs.Vals), r.lo, r.hi)
			}
			for ki, k := range r.kids {
				k.stageEnc(wire.Observe{Step: r.obs.Step, Vals: r.obs.Vals[k.lo-r.lo : k.hi-r.lo]}.Append)
				pe.targets = append(pe.targets, ki)
			}

		case wire.TypeObserveDelta:
			if err := r.delta.Decode(sub); err != nil {
				return false, err
			}
			for _, id := range r.delta.IDs {
				if id < r.lo || id >= r.hi {
					return false, fmt.Errorf("shardrun: delta id %d outside interior range [%d, %d)", id, r.lo, r.hi)
				}
			}
			for ki, k := range r.kids {
				r.ids, r.vals = r.ids[:0], r.vals[:0]
				for j, id := range r.delta.IDs {
					if id >= k.lo && id < k.hi {
						r.ids = append(r.ids, id)
						r.vals = append(r.vals, r.delta.Vals[j])
					}
				}
				if len(r.ids) == 0 {
					continue
				}
				k.stageEnc(wire.ObserveDelta{Step: r.delta.Step, IDs: r.ids, Vals: r.vals}.Append)
				pe.targets = append(pe.targets, ki)
			}

		case wire.TypeRound:
			m, err := wire.DecodeRound(sub)
			if err != nil {
				return false, err
			}
			pe.tag = m.Tag
			for ki := range r.kids {
				r.kids[ki].stageRaw(sub)
				pe.targets = append(pe.targets, ki)
			}

		case wire.TypeShutdown:
			r.shutdownKids()
			return false, nil

		default:
			return false, fmt.Errorf("%w: 0x%02x in interior relay", wire.ErrUnknownType, typ)
		}
	}

	// Fan out: every child subtree starts working before the first reply
	// is awaited. The envelope buffer is reusable across children because
	// the transport consumes the frame synchronously in Send.
	for _, k := range r.kids {
		n := len(k.lens)
		if n == 0 {
			continue
		}
		out := k.stage
		if n > 1 {
			k.views = k.views[:0]
			off := 0
			for _, l := range k.lens {
				k.views = append(k.views, k.stage[off:off+l])
				off += l
			}
			r.bbuf = wire.Batch{Frames: k.views}.Append(r.bbuf[:0])
			out = r.bbuf
		}
		for _, l := range k.lens {
			r.counter.RecordSized(comm.Down, 1, int64(l))
		}
		if err := k.link.Send(out); err != nil {
			return false, fmt.Errorf("shardrun: interior send [%d, %d): %w", k.lo, k.hi, err)
		}
		if err := transport.Flush(k.link); err != nil {
			return false, fmt.Errorf("shardrun: interior send [%d, %d): %w", k.lo, k.hi, err)
		}
	}

	for _, k := range r.kids {
		n := len(k.lens)
		k.cursor = 0
		k.replies = k.replies[:0]
		if n == 0 {
			continue
		}
		frame, err := k.link.Recv()
		if err != nil {
			return false, fmt.Errorf("shardrun: interior gather [%d, %d): %w", k.lo, k.hi, err)
		}
		if n == 1 {
			k.replies = append(k.replies, frame)
		} else {
			if err := k.batch.Decode(frame); err != nil {
				return false, fmt.Errorf("shardrun: interior gather [%d, %d): %w", k.lo, k.hi, err)
			}
			if got := len(k.batch.Frames); got != n {
				return false, fmt.Errorf("shardrun: interior gather [%d, %d): batched reply carries %d frames, want %d", k.lo, k.hi, got, n)
			}
			k.replies = append(k.replies, k.batch.Frames...)
		}
		for _, rf := range k.replies {
			r.counter.RecordSized(comm.Up, 1, int64(len(rf)))
		}
	}

	r.buf, r.rlens = r.buf[:0], r.rlens[:0]
	var rep wire.Reply
	for i := range r.plan {
		pe := &r.plan[i]
		old := len(r.buf)
		if pe.typ == wire.TypeRound {
			d, err := r.mergeDigests(pe)
			if err != nil {
				return false, err
			}
			r.buf = d.Append(r.buf)
		} else {
			topViol, outViol := false, false
			for _, ki := range pe.targets {
				k := r.kids[ki]
				if err := rep.Decode(k.next()); err != nil {
					return false, fmt.Errorf("shardrun: interior reply [%d, %d): %w", k.lo, k.hi, err)
				}
				topViol = topViol || rep.TopViol
				outViol = outViol || rep.OutViol
			}
			r.buf = wire.Reply{TopViol: topViol, OutViol: outViol}.Append(r.buf)
		}
		r.rlens = append(r.rlens, len(r.buf)-old)
	}
	if batched {
		r.views = r.views[:0]
		off := 0
		for _, l := range r.rlens {
			r.views = append(r.views, r.buf[off:off+l])
			off += l
		}
		// The sub-frames alias r.buf; assemble the envelope elsewhere and
		// swap so r.buf holds the outgoing frame on return.
		r.bbuf = wire.Batch{Frames: r.views}.Append(r.bbuf[:0])
		r.buf, r.bbuf = r.bbuf, r.buf
	}
	return true, nil
}

// respond processes one parent frame and stages the outgoing frame in
// r.buf. It returns false for Shutdown (children already shut down, no
// reply owed).
func (r *interior) respond(frame []byte) (cont bool, err error) {
	typ, err := wire.MsgType(frame)
	if err != nil {
		return false, err
	}
	switch typ {
	case wire.TypeAssign:
		m, err := wire.DecodeAssign(frame)
		if err != nil {
			return false, err
		}
		return true, r.reassign(m)
	case wire.TypeStatsPoll:
		if err := wire.DecodeBare(frame, wire.TypeStatsPoll); err != nil {
			return false, err
		}
		return true, r.pollStats()
	case wire.TypeShutdown:
		r.shutdownKids()
		return false, nil
	case wire.TypeBatch:
		if err := r.batch.Decode(frame); err != nil {
			return false, err
		}
		return r.relay(r.batch.Frames, true)
	default:
		r.one = append(r.one[:0], frame)
		return r.relay(r.one, false)
	}
}

// ServeInterior runs one interior coordinator of the tree on a link to
// its parent: it waits for the parent's Assign, re-splits the range among
// its child subtrees, and from then on relays every command down and
// every folded reply up until the parent sends Shutdown or hangs up
// (both clean exits, closing the children so the whole subtree unwinds).
// Any child or protocol failure is returned after closing the children —
// the parent observes the dead link and handles the loss of the whole
// subtree through the regular failover path, exactly as it would a
// single dead shard.
func ServeInterior(parent transport.Link, children []transport.Link) error {
	if len(children) == 0 {
		return errors.New("shardrun: interior needs at least one child")
	}
	r := &interior{parent: parent}
	for _, c := range children {
		r.kids = append(r.kids, &kid{link: c})
	}
	defer func() {
		for _, k := range r.kids {
			_ = k.link.Close()
		}
	}()
	clean := func(err error) bool {
		return errors.Is(err, transport.ErrClosed) || errors.Is(err, io.EOF)
	}
	first := true
	for {
		frame, err := parent.Recv()
		if err != nil {
			if clean(err) {
				return nil
			}
			return fmt.Errorf("shardrun: interior serve loop: %w", err)
		}
		if first {
			if typ, terr := wire.MsgType(frame); terr != nil || typ != wire.TypeAssign {
				return fmt.Errorf("shardrun: interior expects an assignment first (type error %v)", terr)
			}
			first = false
		}
		cont, err := r.respond(frame)
		if err != nil {
			return err
		}
		if !cont {
			return nil
		}
		if err := parent.Send(r.buf); err != nil {
			if clean(err) {
				return nil
			}
			return fmt.Errorf("shardrun: interior sending reply: %w", err)
		}
	}
}
