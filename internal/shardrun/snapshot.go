package shardrun

import (
	"errors"
	"fmt"

	"repro/internal/coord"
	"repro/internal/order"
	"repro/internal/transport"
	"repro/internal/wire"
)

// Snapshot and Restore give the sharded (and hierarchical) engine
// coordinator-process checkpointing, exactly as in netrun: the node banks
// live behind the shard links and are rebuilt from scratch by the Assign
// handshake, so a checkpoint carries only the root's own execution — the
// machine frame plus the last-value mirror. Restore rebuilds the root,
// replays the mirror through the same reassign/replay/reset cycle
// failover uses, and forces a FILTERRESET; the Las Vegas argument makes
// post-restore reports match the oracle immediately while the ledgers
// continue from the checkpoint plus the visible recovery cost.

// Snapshot returns the machine frame and a copy of the node-value mirror,
// taken between steps. It fails on a closed or terminal engine and while
// recovery is pending — a checkpoint never captures a half-recovered
// execution.
func (e *Engine) Snapshot() (mach []byte, last []int64, err error) {
	if e.closed {
		return nil, nil, errors.New("shardrun: snapshot after Close")
	}
	if e.err != nil {
		return nil, nil, fmt.Errorf("shardrun: snapshot of a terminal engine: %w", e.err)
	}
	if e.pendingRecovery {
		return nil, nil, errors.New("shardrun: snapshot with recovery pending")
	}
	machFrame, err := e.mach.Snapshot(nil)
	if err != nil {
		return nil, nil, err
	}
	return machFrame, append([]int64(nil), e.last...), nil
}

// Restore rebuilds a root over links from a Snapshot taken under the same
// configuration (including the same Tree shape — the frame is agnostic,
// but the mirror replay fans out over whatever links cfg declares). The
// frame is validated against cfg before any link is used; then the fresh
// engine handshakes as usual, adopts the restored machine and mirror, and
// runs the reassign/replay/reset cycle. A shard failing during that cycle
// leaves recovery pending (or the engine cleanly terminal), exactly as a
// mid-run failure would; the next observation call retries through the
// regular failover path.
func Restore(cfg Config, links []transport.Link, machFrame []byte, last []int64) (*Engine, error) {
	fail := func(err error) (*Engine, error) {
		for _, l := range links {
			l.Close()
		}
		return nil, err
	}
	tol, err := order.NewTol(cfg.Epsilon)
	if err != nil {
		return fail(fmt.Errorf("shardrun: restore: %w", err))
	}
	var ms wire.MachineState
	if err := ms.Decode(machFrame); err != nil {
		return fail(fmt.Errorf("shardrun: restore machine frame: %v", err))
	}
	if ms.N != cfg.N || ms.K != cfg.K {
		return fail(fmt.Errorf("shardrun: checkpoint is for n=%d k=%d, config has n=%d k=%d", ms.N, ms.K, cfg.N, cfg.K))
	}
	if ms.EpsNum != tol.Num() {
		return fail(fmt.Errorf("shardrun: checkpoint tolerance %d/2^20 differs from configured %d/2^20", ms.EpsNum, tol.Num()))
	}
	if len(last) != cfg.N {
		return fail(fmt.Errorf("shardrun: checkpoint mirror has %d values for n=%d", len(last), cfg.N))
	}
	mach, err := coord.RestoreMachine(machFrame)
	if err != nil {
		return fail(fmt.Errorf("shardrun: restore machine: %v", err))
	}
	e, err := New(cfg, links)
	if err != nil {
		return nil, err
	}
	e.mach = mach
	copy(e.last, last)
	e.step = mach.Step()
	if err := e.reassignReplayReset(); err != nil {
		// The failing shard is marked dead and recovery is pending; the
		// next observation call retries (or the engine is already cleanly
		// terminal). Either way the caller holds a usable engine whose
		// Health tells the story.
		return e, nil
	}
	return e, nil
}

// RestoreLoopback is Restore over fresh loopback shard links, the
// counterpart of NewLoopback for crash-restart tests and local monitors.
func RestoreLoopback(cfg Config, shards int, machFrame []byte, last []int64) (*Engine, error) {
	if shards < 1 || shards > cfg.N {
		return nil, fmt.Errorf("shardrun: need 1 <= shards <= N, got %d shards for N=%d", shards, cfg.N)
	}
	return Restore(cfg, LoopbackLinks(shards), machFrame, last)
}

// RestoreLoopbackTree is Restore over fresh loopback subtrees, the
// counterpart of NewLoopbackTree: the root holds branch links, each to a
// LoopbackSubtree of depth-1 further levels. Unless the caller supplies
// its own Redial, a dead subtree is redialed as a fresh subtree of the
// same shape.
func RestoreLoopbackTree(cfg Config, branch, depth int, machFrame []byte, last []int64) (*Engine, error) {
	cfg.Tree = Tree{Branch: branch, Depth: depth}
	if _, err := cfg.Tree.Leaves(); err != nil {
		return nil, err
	}
	if cfg.Redial == nil {
		cfg.Redial = func() (transport.Link, error) {
			return LoopbackSubtree(branch, depth), nil
		}
	}
	links := make([]transport.Link, branch)
	for i := range links {
		links[i] = LoopbackSubtree(branch, depth)
	}
	return Restore(cfg, links, machFrame, last)
}
