// Package shardrun shards the coordinator itself: S sub-coordinators each
// own a contiguous node range, and a root merge layer maintains the
// global top-k from per-shard candidate sets. It removes the paper's
// single sequential coordinator as the scalability ceiling while keeping
// the reported top-k exact at every step — the direction of the
// domain-monitoring follow-up (Bemmann et al., arXiv:1706.03568) and the
// distributed top-k data structure of Biermeier et al. (arXiv:1709.07259).
//
// # Architecture
//
// The root runs the same sans-I/O decision machine (internal/coord) as
// every other engine; what changes is the execution substrate for
// protocol executions. Where the flat engines run Algorithm 2 round by
// round over all n nodes, the root delegates each execution to its shards:
// every shard runs the complete protocol over its local cohort (with the
// global population bound, so shard-local randomness matches the flat
// engines' at S=1) and answers with one wire.ShardDigest — its local
// winner plus a summary of the charges the local execution incurred. The
// root merges the S digests by key, which over the course of a
// FILTERRESET's k+1 repeated extractions is exactly a k-merge on
// order.Key of the per-shard candidate streams.
//
// By default the root pipelines the delegation exactly like the networked
// engine (Config.Lockstep disables it): one delegated-execution request
// fans out to every shard first — each frame carrying the shard's queued
// ack-only commands (ResetBegin, Winner, Midpoint, ApproxBounds) in a
// wire.Batch envelope — and the digests are gathered concurrently by one
// reader goroutine per link while the root merges them in ascending shard
// order. Independent shards therefore run their local protocol executions
// in parallel between digest merges, and a FILTERRESET costs one
// synchronization point per extraction instead of one per command.
//
// Exactness is inherited from Algorithm 1: the hierarchical execution
// computes the same extrema (each local protocol is Las Vegas-exact, and
// max over shard maxima is the global max), so membership decisions,
// T+/T− and filters evolve as in the flat algorithm. At S=1 the engine is
// bit-identical to the sequential engine — reports, counts, bytes,
// per-phase — which the equivalence tests pin. At S>1 reports stay exact
// while the charged message counts grow with S (each shard pays its own
// protocol rounds); that growth is the coordination overhead the
// shard-overhead benchmark measures.
//
// One caveat inherits the model's distinctness assumption: exactness is
// exactness of the key order. In the default mode the tie-break
// injection makes all keys distinct, so the merged winner is unique and
// S>1 reports equal the flat engines' exactly. In DistinctValues mode a
// caller that transiently breaks the distinctness promise (e.g. nodes
// still holding the default 0 before their first sparse delta) can have
// tied keys, and the root — which merges digests in shard order — may
// resolve such a tie differently than a flat engine's global bid order
// would. The report is still a correct top-k of the tied key multiset;
// only the choice among tied nodes can differ, exactly as the paper's
// model leaves it undefined.
//
// # Accounting
//
// Two ledgers, deliberately separate:
//
//   - The algorithm ledger (Counts/Bytes/Ledger) charges model messages
//     exactly as the other engines do — node bids and protocol-round or
//     midpoint broadcasts — with per-shard charges merged in from the
//     digests. At S=1 it equals the sequential engine's ledger bit for
//     bit.
//   - The overhead ledger (Overhead/OverheadBytes) charges the root↔shard
//     coordination frames themselves via the same comm.SizedRecorder
//     machinery: every root→shard command as a Down of its encoded size,
//     every shard→root reply or digest as an Up. This is the price of
//     sharding the coordinator, the quantity to weigh against the root's
//     S-fold fan-in reduction. Coalesced commands are charged sub-frame
//     by sub-frame — the batch envelope itself is transport framing,
//     visible in TransportStats — so the overhead ledger is identical in
//     pipelined and lockstep mode.
//
// Shards speak the existing wire protocol (Assign/Observe/ObserveDelta/
// Winner/Midpoint/ResetBegin/Reply, batched or not) plus two
// reinterpretations: a wire.Round frame from the root means "run this
// whole execution locally" and is answered by the one new message,
// wire.ShardDigest.
//
// # Hierarchical trees
//
// Config.Tree generalizes the star into an arbitrary-depth coordinator
// tree: each of the root's Branch links may lead to an interior
// coordinator (ServeInterior) that splits its range across Branch
// children of its own, down to Branch^Depth leaf shards. Interiors are
// stateless relays — they route commands by child range, batch
// sub-frames per link, and k-merge their children's digests into one
// digest up, exactly the root's merge; because that merge is
// associative, any tree shape is bit-identical to the flat star over
// the same leaves in reports and the algorithm ledger, and at Depth 1
// the engine is the flat engine. The overhead ledger keeps charging
// only the root's own links (fan-in Branch instead of Branch^Depth);
// each interior level's traffic lives in its own counter, polled
// uncharged through the tree by Engine.TreeStats. With Epsilon set and
// Depth >= 2 the Assign handshake carries a monotone ladder of
// tightened tolerances (order.Tol.Ladder): leaves track nested
// (1±ε·l/(d+1)) bands inside the real filter and count each band exit
// per level (TreeStats().Absorbs) without ever changing what the
// protocol does. See DESIGN.md "Hierarchical coordination & the
// per-level ε budget".
//
// # Failure and recovery
//
// Shards are fail-stop and the root recovers from their loss exactly as
// netrun does from a peer's (see that package's "Failure and recovery"
// section): a dead link abandons the step, and the next observation call
// redials or merges the dead range, re-runs the Assign handshake, replays
// the mirrored node values and forces a FILTERRESET. Health, Err, Join and
// the Config failover knobs carry the same contracts as netrun's.
package shardrun

import (
	"errors"
	"fmt"
	"runtime"
	"time"

	"repro/internal/comm"
	"repro/internal/coord"
	"repro/internal/order"
	"repro/internal/rng"
	"repro/internal/transport"
	"repro/internal/wire"
)

// forceReaders makes pipelined roots spawn reader goroutines even
// without runtime parallelism; tests set it to exercise the concurrent
// gather deterministically on any machine.
var forceReaders = false

// useReaders mirrors netrun's rule: reader goroutines only pay off when
// the runtime can actually run them in parallel; otherwise the root
// drains the fanned-out replies directly in shard order.
func useReaders() bool {
	return forceReaders || runtime.GOMAXPROCS(0) > 1
}

// Config mirrors core.Config for the sharded engine.
type Config struct {
	N, K           int
	Seed           uint64
	DistinctValues bool
	// Epsilon selects the ε-approximate mode, exactly as in core.Config;
	// the tolerance rides to the shards in the Assign handshake.
	Epsilon float64
	// Lockstep disables the pipelined fan-out: every command is sent,
	// flushed and answered shard by shard, sequentially. Both modes are
	// bit-identical in reports and in both ledgers; they differ only in
	// wall-clock latency and transport framing.
	Lockstep bool
	// Tree declares the links to be subtree roots of a hierarchical
	// coordinator (see Tree): New then requires exactly Tree.Branch links
	// and at least Tree.Branch^Tree.Depth nodes, and — in the ε mode at
	// Depth >= 2 — ships the per-level tolerance ladder to the leaves in
	// the Assign handshake. The zero value keeps the flat star.
	Tree Tree

	// Redial, RetryBudget, RetryBackoff and OnEvent carry netrun's failover
	// contracts, applied to shard links.
	Redial       func() (transport.Link, error)
	RetryBudget  int
	RetryBackoff time.Duration
	OnEvent      func(coord.Event)
}

// retryBudget returns the configured recovery-attempt bound.
func (c Config) retryBudget() int {
	if c.RetryBudget > 0 {
		return c.RetryBudget
	}
	return 3
}

// retryBackoff returns the configured base recovery backoff.
func (c Config) retryBackoff() time.Duration {
	if c.RetryBackoff > 0 {
		return c.RetryBackoff
	}
	return 10 * time.Millisecond
}

// recvResult is one reader goroutine's answer to a gather request.
type recvResult struct {
	frame []byte
	err   error
}

// shardPeer is the root's view of one sub-coordinator link.
type shardPeer struct {
	link   transport.Link
	lo, hi int
	reply  wire.Reply // reusable decode target
	batch  wire.Batch // reusable decode target for batched replies

	// Pipelined gather: one Recv per request token (see netrun).
	req chan struct{}
	res chan recvResult

	// Deferred ack-only commands awaiting the next data-bearing frame.
	pendBuf  []byte
	pendLens []int
	views    [][]byte

	// Failover bookkeeping (see netrun.peer): strict request/reply keeps
	// owed 0 or 1 at any failure point.
	owed     int
	dead     bool
	failures int64
}

// pending returns the number of queued ack-only commands.
func (p *shardPeer) pending() int { return len(p.pendLens) }

// queue defers one encoded command until the next frame to this shard.
func (p *shardPeer) queue(enc func([]byte) []byte) {
	old := len(p.pendBuf)
	p.pendBuf = enc(p.pendBuf)
	p.pendLens = append(p.pendLens, len(p.pendBuf)-old)
}

// Engine is the root coordinator of the sharded monitor. It satisfies
// sim.Algorithm and sim.DeltaAlgorithm. Like the other engines it is not
// safe for concurrent Observe calls.
type Engine struct {
	cfg      Config
	mach     *coord.Machine
	peers    []*shardPeer
	overhead comm.Counter // root↔shard coordination frames

	step    int64
	closed  bool
	readers bool  // pipelined gather runs reader goroutines
	err     error // terminal failure (recovery abandoned); sticky

	// Failover state, mirroring netrun.Engine's.
	last            []int64
	pendingRecovery bool
	failures        int64
	recoveries      int64
	rrng            *rng.RNG

	buf     []byte // reusable encode buffer
	bbuf    []byte // reusable batch-envelope encode buffer
	acks    []int  // per-shard deferred-command count of the current gather
	touched []bool // shards hit by the current delta

	// Hierarchical mode (Config.Tree): the per-level tolerance ladder
	// shipped in every Assign, and the decode scratch for stats polls.
	ladder    []uint64
	treeStats wire.TreeStats
}

// New performs the Assign/Ready handshake over the given links — shard i
// owns the i-th contiguous node range — and returns the root. It requires
// 1 <= len(links) <= N so every shard owns at least one node. Callers
// must Close the engine. On a handshake error New closes every link
// before returning.
func New(cfg Config, links []transport.Link) (*Engine, error) {
	fail := func(err error) (*Engine, error) {
		for _, l := range links {
			l.Close()
		}
		return nil, err
	}
	if cfg.N <= 0 {
		return fail(errors.New("shardrun: need N > 0"))
	}
	if cfg.K < 1 || cfg.K > cfg.N {
		return fail(fmt.Errorf("shardrun: need 1 <= K <= N, got K=%d N=%d", cfg.K, cfg.N))
	}
	if len(links) == 0 || len(links) > cfg.N {
		return fail(fmt.Errorf("shardrun: need 1 <= shards <= N, got %d shards for N=%d", len(links), cfg.N))
	}
	tol, err := order.NewTol(cfg.Epsilon)
	if err != nil {
		return fail(fmt.Errorf("shardrun: %w", err))
	}
	var ladder []uint64
	if !cfg.Tree.zero() {
		leaves, err := cfg.Tree.Leaves()
		if err != nil {
			return fail(err)
		}
		if len(links) != cfg.Tree.Branch {
			return fail(fmt.Errorf("shardrun: tree branch %d needs exactly %d links, got %d", cfg.Tree.Branch, cfg.Tree.Branch, len(links)))
		}
		if leaves > cfg.N {
			return fail(fmt.Errorf("shardrun: tree %d^%d has %d leaves for N=%d nodes", cfg.Tree.Branch, cfg.Tree.Depth, leaves, cfg.N))
		}
		// Per-level ε tightening: levels strictly below the root run
		// monotonically tightened bands, widening toward the configured ε
		// at the root. The ladder is diagnostic — leaves count per-level
		// band exits (TreeStats) while the protocol filters stay anchored
		// on the root tolerance — so depth 1 (and ε = 0) ships none and
		// stays bit-identical to the flat star.
		if cfg.Tree.Depth >= 2 {
			for _, t := range tol.Ladder(cfg.Tree.Depth) {
				ladder = append(ladder, t.Num())
			}
		}
	}
	e := &Engine{
		cfg:     cfg,
		mach:    coord.New(coord.Config{N: cfg.N, K: cfg.K, Tol: tol}),
		last:    make([]int64, cfg.N),
		rrng:    rng.New(cfg.Seed, 0xbacd),
		acks:    make([]int, len(links)),
		touched: make([]bool, len(links)),
		ladder:  ladder,
	}
	base, rem := cfg.N/len(links), cfg.N%len(links)
	lo := 0
	for i, link := range links {
		hi := lo + base
		if i < rem {
			hi++
		}
		e.peers = append(e.peers, &shardPeer{link: link, lo: lo, hi: hi})
		lo = hi
	}
	for _, p := range e.peers {
		e.buf = wire.Assign{
			Lo: p.lo, Hi: p.hi, N: cfg.N, K: cfg.K,
			Seed: cfg.Seed, EpsNum: tol.Num(), Distinct: cfg.DistinctValues,
			Ladder: e.ladder,
		}.Append(e.buf[:0])
		if err := e.send(p, e.buf, "assign"); err != nil {
			return fail(err)
		}
	}
	for _, p := range e.peers {
		frame, err := e.recv(p, "ready")
		if err != nil {
			return fail(err)
		}
		if err := wire.DecodeBare(frame, wire.TypeReady); err != nil {
			return fail(fmt.Errorf("shardrun: shard [%d, %d) handshake: %w", p.lo, p.hi, err))
		}
	}
	if !cfg.Lockstep {
		e.startReaders()
	}
	return e, nil
}

// startReaders spawns one gather goroutine per link (see netrun: one Recv
// per request token; exits when the request channel closes). Skipped
// without runtime parallelism — the root then drains the fanned-out
// replies directly in shard order (netrun.useReaders explains why).
func (e *Engine) startReaders() {
	e.readers = useReaders()
	if !e.readers {
		return
	}
	for _, p := range e.peers {
		e.startReader(p)
	}
}

// startReader attaches a fresh reader goroutine to one shard link (see
// netrun.startReader for the release argument).
func (e *Engine) startReader(p *shardPeer) {
	p.req = make(chan struct{}, 1)
	p.res = make(chan recvResult, 1)
	go func(p *shardPeer) {
		for range p.req {
			frame, err := p.link.Recv()
			//lint:topk ctxsend non-blocking: res has capacity 1 and the owed<=1 reply discipline guarantees a free slot; close(req) releases the loop
			p.res <- recvResult{frame: frame, err: err}
		}
	}(p)
}

// LoopbackLinks builds one pipe pair per shard with a ServeShard
// goroutine on the far end and returns the root ends. A serve goroutine
// exits cleanly when its link closes; on a shard error it closes its
// link, which the root observes as a dead shard and handles through the
// regular failover path.
func LoopbackLinks(shards int) []transport.Link {
	links := make([]transport.Link, shards)
	for i := range links {
		links[i] = LoopbackLink()
	}
	return links
}

// LoopbackLink builds a single in-process shard behind a pipe and returns
// the root end, usable as a Config.Redial factory or a Join argument.
func LoopbackLink() transport.Link {
	rootEnd, shardEnd := transport.Pipe()
	go func() {
		if err := ServeShard(shardEnd); err != nil {
			shardEnd.Close()
		}
	}()
	return rootEnd
}

// NewLoopback builds an in-process sharded engine over LoopbackLinks. It
// is the engine behind topk.Config.Shards and topkmon -shards.
func NewLoopback(cfg Config, shards int) (*Engine, error) {
	return New(cfg, LoopbackLinks(shards))
}

// Close sends every shard a Shutdown frame, closes the links and stops
// the reader goroutines. Queued ack-only commands are dropped.
// Idempotent.
func (e *Engine) Close() {
	if e.closed {
		return
	}
	e.closed = true
	for _, p := range e.peers {
		//lint:topk chargedsend Shutdown is a teardown control frame outside the model; the ledgers are final once Close begins
		_ = p.link.Send(wire.AppendBare(e.buf[:0], wire.TypeShutdown))
		_ = transport.Flush(p.link)
		_ = p.link.Close()
		if p.req != nil {
			close(p.req)
		}
	}
}

// Counts returns the algorithm ledger's total model message counts.
func (e *Engine) Counts() comm.Counts { return e.mach.Counts() }

// Bytes returns the algorithm ledger's total charged model bytes.
func (e *Engine) Bytes() comm.Bytes { return e.mach.Bytes() }

// Ledger exposes the algorithm ledger's per-phase breakdown.
func (e *Engine) Ledger() *comm.Ledger { return e.mach.Ledger() }

// Stats returns execution counters (maintained by the shared coordinator
// core, identical across engines for the same seed).
func (e *Engine) Stats() coord.Stats { return e.mach.Stats() }

// Overhead returns the coordination frame counts of the root↔shard layer:
// Down counts root→shard commands, Up counts shard→root replies and
// digests. This traffic is what sharding the coordinator costs on top of
// the algorithm ledger. Coalesced commands count individually, so the
// numbers are mode-independent.
func (e *Engine) Overhead() comm.Counts { return e.overhead.Snapshot() }

// OverheadBytes returns the encoded byte volume of the coordination
// frames.
func (e *Engine) OverheadBytes() comm.Bytes { return e.overhead.BytesSnapshot() }

// Err returns the engine's terminal failure, or nil. Recoverable shard
// failures do not set it (see Health); it becomes non-nil only once
// recovery is abandoned. Once set, the engine is wedged: observation
// calls return the last successfully computed report without touching the
// links. Close remains safe.
func (e *Engine) Err() error { return e.err }

// Health reports the root's failover state, as netrun.Engine.Health does.
func (e *Engine) Health() coord.Health {
	h := coord.Health{
		Terminal:   e.err,
		Degraded:   e.pendingRecovery,
		Failures:   e.failures,
		Recoveries: e.recoveries,
	}
	for _, p := range e.peers {
		h.Peers = append(h.Peers, coord.PeerHealth{Lo: p.lo, Hi: p.hi, Failures: p.failures})
	}
	return h
}

// TransportStats sums the per-link transport statistics over all shards.
func (e *Engine) TransportStats() transport.LinkStats {
	var s transport.LinkStats
	for _, p := range e.peers {
		s = s.Add(transport.StatsOf(p.link))
	}
	return s
}

// Shards returns the number of shard sub-coordinators.
func (e *Engine) Shards() int { return len(e.peers) }

// Pipelined reports whether the root runs the pipelined fan-out.
func (e *Engine) Pipelined() bool { return !e.cfg.Lockstep }

// Top returns the current top-k ids ascending, as a read-only view owned
// by the engine: it is invalidated by the next step that changes the top
// set, and mutating it corrupts the engine (see AppendTop).
func (e *Engine) Top() []int { return e.mach.Top() }

// AppendTop appends the current top-k ids (ascending) to dst and returns
// the extended slice. The appended values are copies owned by the caller.
func (e *Engine) AppendTop(dst []int) []int { return e.mach.AppendTop(dst) }

// emit delivers one failover event to the configured callback.
func (e *Engine) emit(ev coord.Event) {
	if e.cfg.OnEvent != nil {
		e.cfg.OnEvent(ev)
	}
}

// fail records a shard failure and schedules recovery (see netrun.fail):
// only abandoned recovery sets Err.
func (e *Engine) fail(p *shardPeer, op string, err error) error {
	p.dead = true
	p.failures++
	e.failures++
	e.pendingRecovery = true
	e.emit(coord.Event{Kind: coord.EventPeerDown, Lo: p.lo, Hi: p.hi, Err: err})
	return fmt.Errorf("shardrun: shard [%d, %d): %s: %w", p.lo, p.hi, op, err)
}

// terminal records an unrecoverable failure.
func (e *Engine) terminal(err error) {
	e.err = err
	e.emit(coord.Event{Kind: coord.EventTerminal, Lo: 0, Hi: e.cfg.N, Err: err})
}

// send ships one pre-encoded frame to a shard and flushes it, charging it
// as one Down coordination message of its encoded size (the lockstep data
// path, also used for the handshake).
func (e *Engine) send(p *shardPeer, frame []byte, op string) error {
	if err := p.link.Send(frame); err != nil {
		return e.fail(p, op, err)
	}
	if err := transport.Flush(p.link); err != nil {
		return e.fail(p, op, err)
	}
	p.owed = 1
	e.overhead.RecordSized(comm.Down, 1, int64(len(frame)))
	return nil
}

// recv reads one frame from a shard, charging it as one Up coordination
// message of its encoded size (lockstep path).
func (e *Engine) recv(p *shardPeer, op string) ([]byte, error) {
	frame, err := p.link.Recv()
	p.owed = 0
	if err != nil {
		return nil, e.fail(p, op, err)
	}
	e.overhead.RecordSized(comm.Up, 1, int64(len(frame)))
	return frame, nil
}

// recvReply reads and decodes a shard's plain Reply (lockstep path).
func (e *Engine) recvReply(p *shardPeer, op string) error {
	frame, err := e.recv(p, op)
	if err != nil {
		return err
	}
	if err := p.reply.Decode(frame); err != nil {
		return e.fail(p, op, err)
	}
	return nil
}

// sendCmd ships one data-bearing command to a shard on the pipelined
// path, with that shard's queued ack-only commands riding ahead of it in
// a wire.Batch envelope. Every sub-frame is charged to the overhead
// ledger individually, exactly as lockstep mode charges the same commands
// as separate frames. e.acks records the acks the next gather owes.
func (e *Engine) sendCmd(pi int, frame []byte, op string) error {
	p := e.peers[pi]
	e.acks[pi] = p.pending()
	out := frame
	if p.pending() > 0 {
		p.views = p.views[:0]
		off := 0
		for _, l := range p.pendLens {
			p.views = append(p.views, p.pendBuf[off:off+l])
			e.overhead.RecordSized(comm.Down, 1, int64(l))
			off += l
		}
		p.views = append(p.views, frame)
		e.bbuf = wire.Batch{Frames: p.views}.Append(e.bbuf[:0])
		out = e.bbuf
		p.pendBuf, p.pendLens = p.pendBuf[:0], p.pendLens[:0]
	}
	if err := p.link.Send(out); err != nil {
		return e.fail(p, op, err)
	}
	if err := transport.Flush(p.link); err != nil {
		return e.fail(p, op, err)
	}
	p.owed = 1
	e.overhead.RecordSized(comm.Down, 1, int64(len(frame)))
	if p.req != nil {
		p.req <- struct{}{}
	}
	return nil
}

// recvFrame collects one in-flight reply frame from a shard: from its
// reader goroutine when one is running, directly off the link otherwise.
func (e *Engine) recvFrame(p *shardPeer, op string) ([]byte, error) {
	if p.res != nil {
		r := <-p.res
		p.owed = 0
		if r.err != nil {
			return nil, e.fail(p, op, r.err)
		}
		return r.frame, nil
	}
	frame, err := p.link.Recv()
	p.owed = 0
	if err != nil {
		return nil, e.fail(p, op, err)
	}
	return frame, nil
}

// gather consumes one reply frame from a shard whose reader was signalled
// by sendCmd: the owed acks first (validated, charged individually), then
// the data-bearing payload, which is returned for the caller to decode
// (a Reply for observation exchanges, a ShardDigest for delegated
// executions). Gathers must be consumed in ascending shard order.
func (e *Engine) gather(pi int, op string) ([]byte, error) {
	p := e.peers[pi]
	frame, err := e.recvFrame(p, op)
	if err != nil {
		return nil, err
	}
	if want := e.acks[pi]; want > 0 {
		if err := p.batch.Decode(frame); err != nil {
			return nil, e.fail(p, op, err)
		}
		if got := len(p.batch.Frames); got != want+1 {
			return nil, e.fail(p, op, fmt.Errorf("batched reply carries %d frames, want %d", got, want+1))
		}
		for _, ack := range p.batch.Frames[:want] {
			if err := p.reply.Decode(ack); err != nil {
				return nil, e.fail(p, op, err)
			}
			e.overhead.RecordSized(comm.Up, 1, int64(len(ack)))
		}
		frame = p.batch.Frames[want]
	}
	e.overhead.RecordSized(comm.Up, 1, int64(len(frame)))
	return frame, nil
}

// gatherReply consumes one gather and decodes its payload as a Reply.
func (e *Engine) gatherReply(pi int, op string) error {
	frame, err := e.gather(pi, op)
	if err != nil {
		return err
	}
	p := e.peers[pi]
	if err := p.reply.Decode(frame); err != nil {
		return e.fail(p, op, err)
	}
	return nil
}

// broadcast ships the same frame to every shard strictly one shard at a
// time — send, await the reply, move on (lockstep only; the pipelined
// path fans out first, gathers concurrently, and defers its ack-only
// broadcasts into the next exchange).
func (e *Engine) broadcast(frame []byte, op string) error {
	for _, p := range e.peers {
		if err := e.send(p, frame, op); err != nil {
			return err
		}
		if err := e.recvReply(p, op); err != nil {
			return err
		}
	}
	return nil
}

// unicast routes a frame to the shard owning node id and awaits its plain
// reply (lockstep only).
func (e *Engine) unicast(id int, frame []byte, op string) error {
	for _, p := range e.peers {
		if id >= p.lo && id < p.hi {
			if err := e.send(p, frame, op); err != nil {
				return err
			}
			return e.recvReply(p, op)
		}
	}
	panic(fmt.Sprintf("shardrun: no shard owns node %d", id))
}

// owner returns the index of the shard owning node id.
func (e *Engine) owner(id int) int {
	for pi, p := range e.peers {
		if id >= p.lo && id < p.hi {
			return pi
		}
	}
	panic(fmt.Sprintf("shardrun: no shard owns node %d", id))
}

// queueAll defers one encoded broadcast command on every shard.
func (e *Engine) queueAll(enc func([]byte) []byte) {
	for _, p := range e.peers {
		p.queue(enc)
	}
}

// drainPending flushes every shard's queued ack-only commands as one
// final exchange (see netrun.drainPending), charging commands and acks to
// the overhead ledger sub-frame by sub-frame so the ledger matches
// lockstep mode at every step boundary.
func (e *Engine) drainPending() error {
	any := false
	for pi, p := range e.peers {
		e.acks[pi] = p.pending()
		if p.pending() == 0 {
			continue
		}
		any = true
		out := p.pendBuf
		if p.pending() > 1 {
			p.views = p.views[:0]
			off := 0
			for _, l := range p.pendLens {
				p.views = append(p.views, p.pendBuf[off:off+l])
				off += l
			}
			e.bbuf = wire.Batch{Frames: p.views}.Append(e.bbuf[:0])
			out = e.bbuf
		}
		for _, l := range p.pendLens {
			e.overhead.RecordSized(comm.Down, 1, int64(l))
		}
		p.pendBuf, p.pendLens = p.pendBuf[:0], p.pendLens[:0]
		if err := p.link.Send(out); err != nil {
			return e.fail(p, "drain", err)
		}
		if err := transport.Flush(p.link); err != nil {
			return e.fail(p, "drain", err)
		}
		p.owed = 1
		if p.req != nil {
			p.req <- struct{}{}
		}
	}
	if !any {
		return nil
	}
	for pi, p := range e.peers {
		want := e.acks[pi]
		if want == 0 {
			continue
		}
		frame, err := e.recvFrame(p, "drain")
		if err != nil {
			return err
		}
		if want == 1 {
			if err := p.reply.Decode(frame); err != nil {
				return e.fail(p, "drain", err)
			}
			e.overhead.RecordSized(comm.Up, 1, int64(len(frame)))
			continue
		}
		if err := p.batch.Decode(frame); err != nil {
			return e.fail(p, "drain", err)
		}
		if got := len(p.batch.Frames); got != want {
			return e.fail(p, "drain", fmt.Errorf("batched ack carries %d frames, want %d", got, want))
		}
		for _, ack := range p.batch.Frames {
			if err := p.reply.Decode(ack); err != nil {
				return e.fail(p, "drain", err)
			}
			e.overhead.RecordSized(comm.Up, 1, int64(len(ack)))
		}
	}
	return nil
}

// sendObs ships the observation frame staged in e.buf to shard pi. In
// lockstep mode the shard's reply is awaited on the spot (strict
// command/ack, one shard at a time); in pipelined mode the frame only
// fans out and gatherObs collects the reply later.
func (e *Engine) sendObs(pi int, op string) error {
	if e.cfg.Lockstep {
		if err := e.send(e.peers[pi], e.buf, op); err != nil {
			return err
		}
		return e.recvReply(e.peers[pi], op)
	}
	return e.sendCmd(pi, e.buf, op)
}

// gatherObs consumes shard pi's observation reply into its reply
// scratch; in lockstep mode sendObs already did.
func (e *Engine) gatherObs(pi int, op string) error {
	if e.cfg.Lockstep {
		return nil
	}
	return e.gatherReply(pi, op)
}

// Observe processes one dense time step and returns the reported top-k
// ids ascending (a read-only view). It panics after Close; on a dead link
// it records the error (see Err) and returns the last-good report.
func (e *Engine) Observe(vals []int64) []int {
	if e.closed {
		panic("shardrun: Observe after Close")
	}
	if len(vals) != e.cfg.N {
		panic(fmt.Sprintf("shardrun: observed %d values for %d nodes", len(vals), e.cfg.N))
	}
	if e.err != nil {
		return e.mach.Top()
	}
	if e.pendingRecovery && e.recoverNow() != nil {
		return e.mach.Top()
	}
	copy(e.last, vals)
	e.step = e.mach.BeginStep()
	for pi, p := range e.peers {
		e.buf = wire.Observe{Step: e.step, Vals: vals[p.lo:p.hi]}.Append(e.buf[:0])
		if err := e.sendObs(pi, "observe"); err != nil {
			return e.mach.Top()
		}
	}
	anyTop, anyOut := false, false
	for pi, p := range e.peers {
		if err := e.gatherObs(pi, "observe"); err != nil {
			return e.mach.Top()
		}
		anyTop = anyTop || p.reply.TopViol
		anyOut = anyOut || p.reply.OutViol
	}
	return e.finishStep(anyTop, anyOut)
}

// ObserveDelta processes one sparse time step: vals[j] is node ids[j]'s
// new value, every other node repeats. ids must be strictly increasing.
// Only shards owning a touched node exchange observation frames; protocol
// work still reaches every shard (cohort membership is node-local).
// Semantics match core.Monitor.ObserveDelta exactly.
func (e *Engine) ObserveDelta(ids []int, vals []int64) []int {
	if e.closed {
		panic("shardrun: ObserveDelta after Close")
	}
	if len(ids) != len(vals) {
		panic(fmt.Sprintf("shardrun: delta has %d ids but %d values", len(ids), len(vals)))
	}
	prev := -1
	for _, id := range ids {
		if id <= prev || id >= e.cfg.N {
			panic(fmt.Sprintf("shardrun: delta ids must be strictly increasing in [0, %d), got %d after %d", e.cfg.N, id, prev))
		}
		prev = id
	}
	if e.err != nil {
		return e.mach.Top()
	}
	if e.pendingRecovery && e.recoverNow() != nil {
		return e.mach.Top()
	}
	for j, id := range ids {
		e.last[id] = vals[j]
	}
	e.step = e.mach.BeginStep()
	clear(e.touched)
	start := 0
	for pi, p := range e.peers {
		stop := start
		for stop < len(ids) && ids[stop] < p.hi {
			stop++
		}
		if stop > start {
			e.touched[pi] = true
			e.buf = wire.ObserveDelta{Step: e.step, IDs: ids[start:stop], Vals: vals[start:stop]}.Append(e.buf[:0])
			if err := e.sendObs(pi, "observe-delta"); err != nil {
				return e.mach.Top()
			}
		}
		start = stop
	}
	anyTop, anyOut := false, false
	for pi, p := range e.peers {
		if !e.touched[pi] {
			continue
		}
		if err := e.gatherObs(pi, "observe-delta"); err != nil {
			return e.mach.Top()
		}
		anyTop = anyTop || p.reply.TopViol
		anyOut = anyOut || p.reply.OutViol
	}
	return e.finishStep(anyTop, anyOut)
}

// finishStep drives the coordinator machine, delegating every protocol
// execution to the shards and merging their digests. In pipelined mode
// the ack-only effects are queued per shard and ride ahead of the next
// delegated execution — a FILTERRESET costs one exchange per extraction
// instead of 2k+4 — with the trailing midpoint/bounds install drained as
// one final batched exchange, exactly as in netrun (see that package's
// determinism argument).
func (e *Engine) finishStep(anyTopViol, anyOutViol bool) []int {
	_ = e.runEffects(e.mach.FinishStep(anyTopViol, anyOutViol))
	return e.mach.Top()
}

// runEffects drives one effect chain — a step's FinishStep chain, or the
// forced FILTERRESET of a recovery — to EffDone (see netrun.runEffects).
func (e *Engine) runEffects(eff coord.Effect) error {
	pipelined := !e.cfg.Lockstep
	for eff.Kind != coord.EffDone {
		var err error
		switch eff.Kind {
		case coord.EffExec:
			var ok bool
			var id int
			var key order.Key
			if ok, id, key, err = e.execDelegated(eff); err == nil {
				eff = e.mach.ExecDone(ok, id, key)
			}
		case coord.EffResetBegin:
			if pipelined {
				e.queueAll(func(dst []byte) []byte { return wire.AppendBare(dst, wire.TypeResetBegin) })
				eff = e.mach.Ack()
				continue
			}
			if err = e.broadcast(wire.AppendBare(e.buf[:0], wire.TypeResetBegin), "reset-begin"); err == nil {
				eff = e.mach.Ack()
			}
		case coord.EffWinner:
			m := wire.Winner{Target: eff.Target, IsTop: eff.IsTop}
			if pipelined {
				e.peers[e.owner(eff.Target)].queue(m.Append)
				eff = e.mach.Ack()
				continue
			}
			e.buf = m.Append(e.buf[:0])
			if err = e.unicast(eff.Target, e.buf, "winner"); err == nil {
				eff = e.mach.Ack()
			}
		case coord.EffMidpoint:
			m := wire.Midpoint{Mid: int64(eff.Mid), Full: eff.Full}
			if pipelined {
				e.queueAll(m.Append)
				eff = e.mach.Ack()
				continue
			}
			e.buf = m.Append(e.buf[:0])
			if err = e.broadcast(e.buf, "midpoint"); err == nil {
				eff = e.mach.Ack()
			}
		case coord.EffBounds:
			m := wire.ApproxBounds{Lo: int64(eff.Lo), Hi: int64(eff.Hi)}
			if pipelined {
				e.queueAll(m.Append)
				eff = e.mach.Ack()
				continue
			}
			e.buf = m.Append(e.buf[:0])
			if err = e.broadcast(e.buf, "bounds"); err == nil {
				eff = e.mach.Ack()
			}
		default:
			panic(fmt.Sprintf("shardrun: unknown coordinator effect %d", eff.Kind))
		}
		if err != nil {
			return err
		}
	}
	if pipelined {
		return e.drainPending()
	}
	return nil
}

// recoverNow runs the recovery pass scheduled by fail, with netrun's
// contract: redial or merge, reassign, replay, forced FILTERRESET, under
// a jittered-backoff retry budget.
func (e *Engine) recoverNow() error {
	budget := e.cfg.retryBudget()
	backoff := e.cfg.retryBackoff()
	for attempt := 0; attempt < budget; attempt++ {
		if attempt > 0 {
			time.Sleep(backoff/2 + time.Duration(e.rrng.Uint64n(uint64(backoff))))
			if backoff < time.Second {
				backoff *= 2
			}
		}
		e.mach.Abort()
		if err := e.restorePeers(); err != nil {
			return err // all shards lost: already terminal
		}
		if err := e.reassignReplayReset(); err != nil {
			continue // a shard died during the attempt; retry
		}
		e.pendingRecovery = false
		e.recoveries++
		e.emit(coord.Event{Kind: coord.EventRecovered, Lo: 0, Hi: e.cfg.N})
		return nil
	}
	e.terminal(fmt.Errorf("shardrun: recovery abandoned after %d attempts", budget))
	return e.err
}

// restorePeers replaces or merges every dead shard (see
// netrun.restorePeers; the logic is identical).
func (e *Engine) restorePeers() error {
	for _, p := range e.peers {
		if !p.dead {
			continue
		}
		if p.req != nil {
			close(p.req)
			p.req, p.res = nil, nil
		}
		p.link.Close()
		if e.cfg.Redial == nil {
			continue
		}
		nl, err := e.cfg.Redial()
		if err != nil {
			continue // merge below
		}
		p.link = nl
		p.dead = false
		p.owed = 0
		p.pendBuf, p.pendLens = p.pendBuf[:0], p.pendLens[:0]
		if e.readers && !e.cfg.Lockstep {
			e.startReader(p)
		}
		e.emit(coord.Event{Kind: coord.EventPeerReplaced, Lo: p.lo, Hi: p.hi})
	}
	survivors := make([]*shardPeer, 0, len(e.peers))
	orphanLo := -1
	for _, p := range e.peers {
		if p.dead {
			e.emit(coord.Event{Kind: coord.EventRangeMerged, Lo: p.lo, Hi: p.hi})
			if len(survivors) > 0 {
				survivors[len(survivors)-1].hi = p.hi
			} else if orphanLo == -1 {
				orphanLo = p.lo
			}
			continue
		}
		if orphanLo != -1 {
			p.lo = orphanLo
			orphanLo = -1
		}
		survivors = append(survivors, p)
	}
	if len(survivors) == 0 {
		e.terminal(errors.New("shardrun: all shards lost"))
		return e.err
	}
	e.peers = survivors
	if len(e.acks) != len(e.peers) {
		e.acks = make([]int, len(e.peers))
		e.touched = make([]bool, len(e.peers))
	}
	return nil
}

// recoverRecv collects one frame during recovery, honoring a running
// reader goroutine's ownership of the link's receive side.
func (e *Engine) recoverRecv(p *shardPeer) ([]byte, error) {
	if p.res != nil {
		r := <-p.res
		p.owed = 0
		return r.frame, r.err
	}
	frame, err := p.link.Recv()
	p.owed = 0
	return frame, err
}

// drainOwed consumes a survivor's outstanding pre-failure reply so the
// link is quiescent ahead of the reassignment handshake.
func (e *Engine) drainOwed(p *shardPeer) error {
	if p.owed == 0 {
		return nil
	}
	_, err := e.recoverRecv(p)
	return err
}

// reassignReplayReset is the uniform reconfiguration step shared by
// recovery and Join (see netrun.reassignReplayReset). Recovery frames are
// charged to the overhead ledger like any other coordination traffic.
func (e *Engine) reassignReplayReset() error {
	tol := e.mach.Tol()
	for _, p := range e.peers {
		p.pendBuf, p.pendLens = p.pendBuf[:0], p.pendLens[:0]
		if err := e.drainOwed(p); err != nil {
			return e.fail(p, "recovery drain", err)
		}
	}
	for _, p := range e.peers {
		e.buf = wire.Assign{
			Lo: p.lo, Hi: p.hi, N: e.cfg.N, K: e.cfg.K,
			Seed: e.cfg.Seed, EpsNum: tol.Num(), Distinct: e.cfg.DistinctValues,
			Ladder: e.ladder,
		}.Append(e.buf[:0])
		if err := p.link.Send(e.buf); err != nil {
			return e.fail(p, "reassign", err)
		}
		if err := transport.Flush(p.link); err != nil {
			return e.fail(p, "reassign", err)
		}
		p.owed = 1
		e.overhead.RecordSized(comm.Down, 1, int64(len(e.buf)))
		if p.req != nil {
			p.req <- struct{}{}
		}
	}
	for _, p := range e.peers {
		frame, err := e.recoverRecv(p)
		if err != nil {
			return e.fail(p, "reassign ready", err)
		}
		if err := wire.DecodeBare(frame, wire.TypeReady); err != nil {
			return e.fail(p, "reassign ready", err)
		}
		e.overhead.RecordSized(comm.Up, 1, int64(len(frame)))
	}
	for _, p := range e.peers {
		e.buf = wire.Observe{Step: e.mach.Step(), Vals: e.last[p.lo:p.hi]}.Append(e.buf[:0])
		if err := p.link.Send(e.buf); err != nil {
			return e.fail(p, "replay", err)
		}
		if err := transport.Flush(p.link); err != nil {
			return e.fail(p, "replay", err)
		}
		p.owed = 1
		e.overhead.RecordSized(comm.Down, 1, int64(len(e.buf)))
		if p.req != nil {
			p.req <- struct{}{}
		}
	}
	for _, p := range e.peers {
		frame, err := e.recoverRecv(p)
		if err != nil {
			return e.fail(p, "replay reply", err)
		}
		if err := p.reply.Decode(frame); err != nil {
			return e.fail(p, "replay reply", err)
		}
		e.overhead.RecordSized(comm.Up, 1, int64(len(frame)))
	}
	e.step = e.mach.Step()
	return e.runEffects(e.mach.ForceReset())
}

// Join attaches a late-joining shard mid-stream by splitting the widest
// surviving range, with netrun.Join's contract.
func (e *Engine) Join(link transport.Link) error {
	if e.closed {
		link.Close()
		return errors.New("shardrun: Join after Close")
	}
	if e.err != nil {
		link.Close()
		return e.err
	}
	if e.pendingRecovery {
		if err := e.recoverNow(); err != nil {
			link.Close()
			return err
		}
	}
	wi, width := -1, 1
	for i, p := range e.peers {
		if w := p.hi - p.lo; w > width {
			wi, width = i, w
		}
	}
	if wi == -1 {
		link.Close()
		return errors.New("shardrun: no splittable range (every shard hosts a single node)")
	}
	w := e.peers[wi]
	mid := (w.lo + w.hi) / 2
	np := &shardPeer{link: link, lo: mid, hi: w.hi}
	w.hi = mid
	e.peers = append(e.peers, nil)
	copy(e.peers[wi+2:], e.peers[wi+1:])
	e.peers[wi+1] = np
	e.acks = make([]int, len(e.peers))
	e.touched = make([]bool, len(e.peers))
	if e.readers && !e.cfg.Lockstep {
		e.startReader(np)
	}
	e.emit(coord.Event{Kind: coord.EventPeerJoined, Lo: np.lo, Hi: np.hi})
	e.mach.Abort()
	if err := e.reassignReplayReset(); err != nil {
		return fmt.Errorf("shardrun: join: %w", err)
	}
	return nil
}

// execDelegated fans one protocol execution out to all shards and merges
// the digests in ascending shard (hence node id) order: the merged
// extremum of per-shard extrema is the global extremum, and each shard's
// local charges are folded into the algorithm ledger. In pipelined mode
// the S local executions run concurrently — the fan-out completes before
// the first digest is awaited — which is what lets a fixed node
// population speed up with the shard count.
func (e *Engine) execDelegated(eff coord.Effect) (ok bool, id int, key order.Key, err error) {
	e.buf = wire.Round{Tag: eff.Tag, Round: 0, Best: int64(order.NegInf), Bound: eff.Bound, Step: e.step}.Append(e.buf[:0])
	if !e.cfg.Lockstep {
		// Fan out first: every shard starts its local protocol before the
		// first digest is awaited, so the S executions run concurrently.
		for pi := range e.peers {
			if err := e.sendCmd(pi, e.buf, "exec"); err != nil {
				return false, 0, 0, err
			}
		}
	}
	rec := e.mach.Recorder(eff.Phase)
	minimum := coord.MinimumTag(eff.Tag)
	best := order.NegInf // comparison domain
	id = -1
	for pi, p := range e.peers {
		var frame []byte
		var err error
		if e.cfg.Lockstep {
			// Strict delegation: visit the shards sequentially, each local
			// execution completing before the next one starts.
			if err = e.send(p, e.buf, "exec"); err != nil {
				return false, 0, 0, err
			}
			frame, err = e.recv(p, "exec")
		} else {
			frame, err = e.gather(pi, "exec")
		}
		if err != nil {
			return false, 0, 0, err
		}
		d, derr := wire.DecodeShardDigest(frame)
		if derr != nil {
			return false, 0, 0, e.fail(p, "exec", derr)
		}
		if d.Ups < 0 || d.UpBytes < 0 || d.Bcasts < 0 || d.BcastBytes < 0 {
			return false, 0, 0, e.fail(p, "exec", fmt.Errorf("negative digest charges %+v", d))
		}
		if d.OK && (d.ID < p.lo || d.ID >= p.hi) {
			// A winner a shard does not own would corrupt membership (or
			// panic the unicast); treat it as the shard misbehaving.
			return false, 0, 0, e.fail(p, "exec", fmt.Errorf("digest winner %d outside shard range [%d, %d)", d.ID, p.lo, p.hi))
		}
		comm.RecordSized(rec, comm.Up, d.Ups, d.UpBytes)
		comm.RecordSized(rec, comm.Bcast, d.Bcasts, d.BcastBytes)
		if !d.OK {
			continue
		}
		ok = true
		cmp := order.Key(d.Key)
		if minimum {
			cmp = order.Neg(cmp)
		}
		if cmp > best {
			best = cmp
			id = d.ID
			key = order.Key(d.Key)
		}
	}
	return ok, id, key, nil
}
