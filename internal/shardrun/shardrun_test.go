package shardrun

import (
	"context"
	"testing"
	"time"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/stream"
	"repro/internal/transport"
)

// mustLoopback builds a loopback engine, failing the test on
// constructor errors (impossible for the valid configs used here).
func mustLoopback(tb testing.TB, cfg Config, shards int) *Engine {
	tb.Helper()
	e, err := NewLoopback(cfg, shards)
	if err != nil {
		tb.Fatalf("NewLoopback: %v", err)
	}
	return e
}

func equal(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// modes names the two fan-out modes the equivalence cases run under.
var modes = []struct {
	name     string
	lockstep bool
}{
	{"pipelined", false},
	{"lockstep", true},
}

// TestSingleShardBitIdentical is the anchor of the sharded engine: with
// S=1 the delegation layer must be completely transparent — reports,
// message counts, charged bytes and the per-phase ledgers all equal the
// sequential engine's bit for bit, at every step, in both fan-out modes.
func TestSingleShardBitIdentical(t *testing.T) {
	for _, mode := range modes {
		t.Run(mode.name, func(t *testing.T) { testSingleShardBitIdentical(t, mode.lockstep) })
	}
}

func testSingleShardBitIdentical(t *testing.T, lockstep bool) {
	const n, k, seed, steps = 13, 4, 41, 250
	seq := core.New(core.Config{N: n, K: k, Seed: seed})
	sh := mustLoopback(t, Config{N: n, K: k, Seed: seed, Lockstep: lockstep}, 1)
	defer sh.Close()

	srcA := stream.NewRandomWalk(stream.WalkConfig{N: n, Lo: 0, Hi: 100000, MaxStep: 400, Seed: 2})
	srcB := stream.NewRandomWalk(stream.WalkConfig{N: n, Lo: 0, Hi: 100000, MaxStep: 400, Seed: 2})
	va, vb := make([]int64, n), make([]int64, n)
	for s := 0; s < steps; s++ {
		srcA.Step(va)
		srcB.Step(vb)
		topSeq := seq.Observe(va)
		topSh := sh.Observe(vb)
		if !equal(topSeq, topSh) {
			t.Fatalf("step %d: reports differ: seq=%v shard=%v", s, topSeq, topSh)
		}
		if cs, cn := seq.Counts(), sh.Counts(); cs != cn {
			t.Fatalf("step %d: counts differ: seq=%v shard=%v", s, cs, cn)
		}
		if bs, bn := seq.Ledger().TotalBytes(), sh.Bytes(); bs != bn {
			t.Fatalf("step %d: bytes differ: seq=%v shard=%v", s, bs, bn)
		}
	}
	for _, ph := range comm.Phases() {
		if cs, cn := seq.Ledger().PhaseCounts(ph), sh.Ledger().PhaseCounts(ph); cs != cn {
			t.Fatalf("phase %v counts differ: seq=%v shard=%v", ph, cs, cn)
		}
		if bs, bn := seq.Ledger().PhaseBytes(ph), sh.Ledger().PhaseBytes(ph); bs != bn {
			t.Fatalf("phase %v bytes differ: seq=%v shard=%v", ph, bs, bn)
		}
	}
	if seq.Stats() != sh.Stats() {
		t.Fatalf("stats differ: seq=%+v shard=%+v", seq.Stats(), sh.Stats())
	}
	if sh.Overhead().Total() == 0 || sh.OverheadBytes().Total() == 0 {
		t.Fatal("coordination overhead ledger stayed empty")
	}
}

// TestMultiShardReportEquivalence runs the matrix S ∈ {1, 2, 4} over
// loopback pipes: reports must equal the sequential engine's at every
// step for every shard count (message counts legitimately differ for
// S > 1 — each shard pays its own protocol rounds).
func TestMultiShardReportEquivalence(t *testing.T) {
	cases := []struct {
		name string
		n, k int
		src  func(n int) stream.Source
	}{
		{"walk", 12, 3, func(n int) stream.Source {
			return stream.NewRandomWalk(stream.WalkConfig{N: n, Lo: 0, Hi: 100000, MaxStep: 400, Seed: 2})
		}},
		{"iid", 9, 2, func(n int) stream.Source {
			return stream.NewIID(stream.IIDConfig{N: n, Seed: 3, Dist: stream.Uniform, Lo: 0, Hi: 1 << 20})
		}},
		{"rotation", 7, 1, func(n int) stream.Source {
			return stream.NewRotation(stream.RotationConfig{N: n, Period: 4, Base: 10, Peak: 1000})
		}},
		{"twoband", 14, 4, func(n int) stream.Source {
			return stream.NewTwoBand(stream.TwoBandConfig{N: n, K: 4, Seed: 5, Gap: 1 << 16, BandWidth: 1 << 8, MaxStep: 40, SwapEvery: 30})
		}},
		{"k-equals-n", 6, 6, func(n int) stream.Source {
			return stream.NewIID(stream.IIDConfig{N: n, Seed: 6, Dist: stream.Uniform, Lo: 0, Hi: 1000})
		}},
	}
	for _, mode := range modes {
		for _, tc := range cases {
			for _, shards := range []int{1, 2, 4} {
				if shards > tc.n {
					continue
				}
				t.Run(mode.name+"/"+tc.name, func(t *testing.T) {
					const seed, steps = 41, 200
					seq := core.New(core.Config{N: tc.n, K: tc.k, Seed: seed})
					sh := mustLoopback(t, Config{N: tc.n, K: tc.k, Seed: seed, Lockstep: mode.lockstep}, shards)
					defer sh.Close()

					srcA, srcB := tc.src(tc.n), tc.src(tc.n)
					va, vb := make([]int64, tc.n), make([]int64, tc.n)
					for s := 0; s < steps; s++ {
						srcA.Step(va)
						srcB.Step(vb)
						topSeq := seq.Observe(va)
						topSh := sh.Observe(vb)
						if !equal(topSeq, topSh) {
							t.Fatalf("S=%d step %d: reports differ: seq=%v shard=%v", shards, s, topSeq, topSh)
						}
					}
					if sh.Err() != nil {
						t.Fatalf("S=%d: engine error: %v", shards, sh.Err())
					}
				})
			}
		}
	}
}

// TestReaderGatherEquivalence pins the reader-goroutine gather path
// (normally engaged only with runtime parallelism) on any machine: with
// readers forced, the pipelined root must stay bit-identical to the
// sequential engine at S=1 and report-exact at S=4.
func TestReaderGatherEquivalence(t *testing.T) {
	forceReaders = true
	defer func() { forceReaders = false }()
	const n, k, seed, steps = 20, 4, 13, 200
	for _, shards := range []int{1, 4} {
		seq := core.New(core.Config{N: n, K: k, Seed: seed})
		sh := mustLoopback(t, Config{N: n, K: k, Seed: seed}, shards)
		src := stream.NewIID(stream.IIDConfig{N: n, Seed: 3, Dist: stream.Uniform, Lo: 0, Hi: 1 << 20})
		vals := make([]int64, n)
		for s := 0; s < steps; s++ {
			src.Step(vals)
			if !equal(seq.Observe(vals), sh.Observe(vals)) {
				t.Fatalf("S=%d step %d: reports differ with forced readers", shards, s)
			}
		}
		if shards == 1 {
			if cs, cn := seq.Counts(), sh.Counts(); cs != cn {
				t.Fatalf("counts differ with forced readers: seq=%v shard=%v", cs, cn)
			}
		}
		sh.Close()
	}
}

// TestOverheadModeIndependent pins the sub-frame charging rule: the
// root↔shard overhead ledger must be identical in pipelined and lockstep
// mode — batching coalesces transport frames, never coordination
// messages.
func TestOverheadModeIndependent(t *testing.T) {
	const n, k, seed, steps = 16, 4, 3, 200
	for _, shards := range []int{1, 2, 4} {
		run := func(lockstep bool) (comm.Counts, comm.Bytes, transport.LinkStats) {
			sh := mustLoopback(t, Config{N: n, K: k, Seed: seed, Lockstep: lockstep}, shards)
			defer sh.Close()
			src := stream.NewIID(stream.IIDConfig{N: n, Seed: 8, Dist: stream.Uniform, Lo: 0, Hi: 1 << 20})
			vals := make([]int64, n)
			for s := 0; s < steps; s++ {
				src.Step(vals)
				sh.Observe(vals)
			}
			return sh.Overhead(), sh.OverheadBytes(), sh.TransportStats()
		}
		pc, pb, pt := run(false)
		lc, lb, lt := run(true)
		if pc != lc || pb != lb {
			t.Fatalf("S=%d: overhead differs across modes: pipelined=%v/%v lockstep=%v/%v", shards, pc, pb, lc, lb)
		}
		// The transport, by contrast, must show the coalescing.
		if pt.SentFrames >= lt.SentFrames {
			t.Fatalf("S=%d: pipelined root did not coalesce frames: %d vs %d", shards, pt.SentFrames, lt.SentFrames)
		}
	}
}

// TestDeltaEquivalence drives the sparse ingestion path with S=2 against
// the sequential engine, interleaving sparse and dense steps.
func TestDeltaEquivalence(t *testing.T) {
	const n, k, seed, steps = 16, 4, 9, 300
	seq := core.New(core.Config{N: n, K: k, Seed: seed})
	sh := mustLoopback(t, Config{N: n, K: k, Seed: seed}, 2)
	defer sh.Close()

	srcA := stream.NewSparseWalk(stream.SparseWalkConfig{N: n, Changed: 3, MaxStep: 500, Lo: 0, Hi: 1 << 20, Seed: 11})
	srcB := stream.NewSparseWalk(stream.SparseWalkConfig{N: n, Changed: 3, MaxStep: 500, Lo: 0, Hi: 1 << 20, Seed: 11})
	ids, vals := make([]int, n), make([]int64, n)
	ids2, vals2 := make([]int, n), make([]int64, n)
	dense := make([]int64, n)
	for s := 0; s < steps; s++ {
		c := srcA.StepDelta(ids, vals)
		c2 := srcB.StepDelta(ids2, vals2)
		if c != c2 {
			t.Fatalf("step %d: generator divergence", s)
		}
		for j := 0; j < c; j++ {
			dense[ids[j]] = vals[j]
		}
		var topSeq, topSh []int
		if s%7 == 3 { // interleave a dense step now and then
			topSeq = seq.Observe(dense)
			topSh = sh.Observe(dense)
		} else {
			topSeq = seq.ObserveDelta(ids[:c], vals[:c])
			topSh = sh.ObserveDelta(ids2[:c2], vals2[:c2])
		}
		if !equal(topSeq, topSh) {
			t.Fatalf("step %d: reports differ: seq=%v shard=%v", s, topSeq, topSh)
		}
	}
}

// TestDistinctValuesEquivalence exercises the shard agents' raw-key mode
// at S=3 against the sequential engine.
func TestDistinctValuesEquivalence(t *testing.T) {
	const n, k, seed, steps = 11, 3, 29, 250
	seq := core.New(core.Config{N: n, K: k, Seed: seed, DistinctValues: true})
	sh := mustLoopback(t, Config{N: n, K: k, Seed: seed, DistinctValues: true}, 3)
	defer sh.Close()

	vals := make([]int64, n)
	for s := 0; s < steps; s++ {
		for i := range vals {
			vals[i] = int64(i) + 1000*int64((s*(i+3)+7*i)%60)
		}
		a, b := seq.Observe(vals), sh.Observe(vals)
		if !equal(a, b) {
			t.Fatalf("step %d: reports differ: seq=%v shard=%v", s, a, b)
		}
	}
}

// TestTCPShards runs the full matrix S ∈ {1, 2, 4} over real localhost
// TCP links with ServeShard loops on the dialing side — the distributed
// deployment topology, collapsed into one test binary — in both fan-out
// modes. At S=1 the ledger equality extends over TCP.
func TestTCPShards(t *testing.T) {
	for _, mode := range modes {
		t.Run(mode.name, func(t *testing.T) { testTCPShards(t, mode.lockstep) })
	}
}

func testTCPShards(t *testing.T, lockstep bool) {
	for _, shards := range []int{1, 2, 4} {
		const n, k, seed, steps = 10, 3, 17, 120
		ctx, cancel := context.WithCancel(context.Background())
		ln, err := transport.Listen(ctx, "127.0.0.1:0")
		if err != nil {
			cancel()
			t.Skipf("cannot listen on loopback: %v", err)
		}

		serveErr := make(chan error, shards)
		for i := 0; i < shards; i++ {
			go func() {
				link, err := transport.Dial(ctx, ln.Addr())
				if err != nil {
					serveErr <- err
					return
				}
				serveErr <- ServeShard(link)
			}()
		}
		links, err := ln.AcceptN(shards)
		if err != nil {
			t.Fatal(err)
		}
		sh, err := New(Config{N: n, K: k, Seed: seed, Lockstep: lockstep}, links)
		if err != nil {
			t.Fatal(err)
		}

		seq := core.New(core.Config{N: n, K: k, Seed: seed})
		srcA := stream.NewRandomWalk(stream.WalkConfig{N: n, Lo: 0, Hi: 1 << 16, MaxStep: 300, Seed: 23})
		srcB := stream.NewRandomWalk(stream.WalkConfig{N: n, Lo: 0, Hi: 1 << 16, MaxStep: 300, Seed: 23})
		va, vb := make([]int64, n), make([]int64, n)
		for s := 0; s < steps; s++ {
			srcA.Step(va)
			srcB.Step(vb)
			if !equal(seq.Observe(va), sh.Observe(vb)) {
				t.Fatalf("S=%d step %d: reports differ over TCP", shards, s)
			}
		}
		if shards == 1 {
			if cs, cn := seq.Counts(), sh.Counts(); cs != cn {
				t.Fatalf("S=1 counts differ over TCP: seq=%v shard=%v", cs, cn)
			}
			if bs, bn := seq.Ledger().TotalBytes(), sh.Bytes(); bs != bn {
				t.Fatalf("S=1 bytes differ over TCP: seq=%v shard=%v", bs, bn)
			}
		}
		if ts := sh.TransportStats(); ts.SentBytes == 0 || ts.RecvBytes == 0 {
			t.Fatalf("S=%d: no TCP traffic recorded: %+v", shards, ts)
		}
		sh.Close()
		for i := 0; i < shards; i++ {
			if err := <-serveErr; err != nil {
				t.Fatalf("S=%d shard serve loop: %v", shards, err)
			}
		}
		ln.Close()
		cancel()
	}
}

// TestOverheadGrowsWithShards pins the direction of the coordination
// cost: more shards means more root↔shard frames for the same workload.
func TestOverheadGrowsWithShards(t *testing.T) {
	const n, k, seed, steps = 16, 4, 3, 150
	frames := make([]int64, 0, 3)
	for _, shards := range []int{1, 2, 4} {
		sh := mustLoopback(t, Config{N: n, K: k, Seed: seed}, shards)
		src := stream.NewRandomWalk(stream.WalkConfig{N: n, Lo: 0, Hi: 1 << 16, MaxStep: 500, Seed: 8})
		vals := make([]int64, n)
		for s := 0; s < steps; s++ {
			src.Step(vals)
			sh.Observe(vals)
		}
		frames = append(frames, sh.Overhead().Total())
		sh.Close()
	}
	if !(frames[0] < frames[1] && frames[1] < frames[2]) {
		t.Fatalf("overhead not increasing with S: %v", frames)
	}
}

// TestDeadShardRecovers mirrors the netrun recovery contract for the
// sharded engine: a dead shard link degrades health for one observation
// call, then the next call merges its range into a survivor and reports
// track the oracle again. Losing the only shard with no Redial goes
// terminal instead.
func TestDeadShardRecovers(t *testing.T) {
	const n, k = 12, 3
	sh := mustLoopback(t, Config{N: n, K: k, Seed: 7, RetryBackoff: time.Millisecond}, 3)
	defer sh.Close()
	src := stream.NewRandomWalk(stream.WalkConfig{N: n, Lo: 0, Hi: 1 << 16, MaxStep: 400, Seed: 9})
	vals := make([]int64, n)
	var lastGood []int
	for s := 0; s < 10; s++ {
		src.Step(vals)
		lastGood = append(lastGood[:0], sh.Observe(vals)...)
	}
	sh.peers[2].link.Close()
	drive := func(s int) {
		for i := range vals {
			vals[i] = int64((s*13+i*7)%100) * 500
		}
	}
	detected := false
	for s := 0; s < 5 && !detected; s++ {
		drive(s)
		got := sh.Observe(vals)
		if sh.Health().Degraded {
			if !equal(got, lastGood) {
				t.Fatalf("detecting step returned %v, want last-good %v", got, lastGood)
			}
			detected = true
		} else {
			lastGood = append(lastGood[:0], got...)
		}
	}
	if !detected {
		t.Fatal("dead shard never surfaced as Degraded health")
	}
	for s := 5; s < 25; s++ {
		drive(s)
		got := sh.Observe(vals)
		if sh.Err() != nil {
			t.Fatalf("step %d: recovery went terminal: %v", s, sh.Err())
		}
		if want := sim.Oracle(vals, k); !equal(got, want) {
			t.Fatalf("step %d after recovery: got %v, want oracle %v", s, got, want)
		}
	}
	h := sh.Health()
	if h.Recoveries != 1 || len(h.Peers) != 2 {
		t.Fatalf("recovery health off: %+v", h)
	}
	// Recovery coordination is charged to the overhead ledger, never the
	// model ledger: overall counts must still satisfy the model's shape.
	if sh.Overhead().Total() == 0 {
		t.Fatal("recovery charged nothing to the overhead ledger")
	}
}

// TestLastShardLostIsTerminal: no survivors and no Redial wedges the
// sharded engine cleanly.
func TestLastShardLostIsTerminal(t *testing.T) {
	const n, k = 8, 2
	sh := mustLoopback(t, Config{N: n, K: k, Seed: 3, RetryBackoff: time.Millisecond}, 1)
	defer sh.Close()
	vals := make([]int64, n)
	var lastGood []int
	for s := 0; s < 8; s++ {
		for i := range vals {
			vals[i] = int64((s*13+i*7)%100) * 500
		}
		lastGood = append(lastGood[:0], sh.Observe(vals)...)
	}
	sh.peers[0].link.Close()
	for s := 8; s < 14; s++ {
		for i := range vals {
			vals[i] = int64((s*13+i*7)%100) * 500
		}
		if got := sh.Observe(vals); !equal(got, lastGood) {
			t.Fatalf("wedged engine changed its report: %v vs %v", got, lastGood)
		}
	}
	if sh.Err() == nil {
		t.Fatal("losing the only shard did not go terminal")
	}
	if sh.Health().Terminal == nil {
		t.Fatal("terminal engine reports healthy")
	}
}

// TestCloseIdempotent double-closes and verifies post-close observes
// panic.
func TestCloseIdempotent(t *testing.T) {
	sh := mustLoopback(t, Config{N: 4, K: 1, Seed: 3}, 2)
	sh.Observe([]int64{4, 3, 2, 1})
	sh.Close()
	sh.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("Observe after Close did not panic")
		}
	}()
	sh.Observe([]int64{4, 3, 2, 1})
}
