package shardrun

import (
	"errors"
	"fmt"
	"io"

	"repro/internal/comm"
	"repro/internal/coord"
	"repro/internal/order"
	"repro/internal/protocol"
	"repro/internal/transport"
	"repro/internal/wire"
)

// agent is one shard sub-coordinator: it hosts a contiguous node range
// (a coord.Nodes bank) and executes whole protocol executions locally on
// the root's behalf, reporting only the local winner and a charge summary
// in a ShardDigest.
type agent struct {
	bank *coord.Nodes
	led  comm.Counter // per-execution local charges, reset before each exec

	obs   wire.Observe      // reusable decode scratch
	delta wire.ObserveDelta //
	batch wire.Batch        // reusable decode scratch for batched commands
	reply wire.Reply        // reusable reply being built
	buf   []byte            // reusable encode buffer; holds the outgoing frame

	bbuf  []byte   // second encode buffer for assembling batch replies
	rlens []int    // batched reply lengths within the arena
	views [][]byte // scratch for assembling the batch reply
}

// newShardBank validates an assignment and builds its node bank, exactly
// as netrun's hosts do.
func newShardBank(a wire.Assign) (*coord.Nodes, error) {
	if a.N <= 0 || a.K < 1 || a.K > a.N {
		return nil, fmt.Errorf("shardrun: bad assignment n=%d k=%d", a.N, a.K)
	}
	if a.Lo < 0 || a.Hi > a.N || a.Lo >= a.Hi {
		return nil, fmt.Errorf("shardrun: bad assignment range [%d, %d) of %d", a.Lo, a.Hi, a.N)
	}
	tol, err := order.TolFromNum(a.EpsNum)
	if err != nil {
		return nil, fmt.Errorf("shardrun: bad assignment: %w", err)
	}
	bank := coord.NewNodes(a.N, a.Lo, a.Hi, a.Seed, a.Distinct, tol)
	if len(a.Ladder) > 0 {
		// Hierarchical ε mode: the leaf tracks the tightened per-level
		// bands of the coordinator tree above it. The ladder only feeds
		// the absorption diagnostics — the protocol filters stay anchored
		// on the root tolerance, so reports are unchanged.
		ladder := make([]order.Tol, len(a.Ladder))
		for i, num := range a.Ladder {
			if ladder[i], err = order.TolFromNum(num); err != nil {
				return nil, fmt.Errorf("shardrun: bad assignment ladder: %w", err)
			}
		}
		bank.SetLadder(ladder)
	}
	return bank, nil
}

// exec runs one full delegated protocol execution over the local cohort
// and returns its digest. The local rounds follow Algorithm 2 with the
// global population bound the root supplies, so at S=1 the execution —
// randomness, charges, winner — is bit-identical to the flat engines'.
func (a *agent) exec(m wire.Round) wire.ShardDigest {
	a.led.Reset()
	ex := protocol.NewExec(m.Bound, coord.MinimumTag(m.Tag), &a.led, nil, m.Step)
	for ex.More() {
		r, best := ex.Round(), ex.Best()
		a.bank.Round(m.Tag, r, best, m.Bound, m.Step, func(id int, key order.Key) {
			ex.Bid(id, key)
		})
		ex.EndRound()
	}
	res := ex.Result()
	d := wire.ShardDigest{
		Ups:        a.led.Get(comm.Up),
		UpBytes:    a.led.GetBytes(comm.Up),
		Bcasts:     a.led.Get(comm.Bcast),
		BcastBytes: a.led.GetBytes(comm.Bcast),
	}
	if res.OK {
		d.OK = true
		d.ID = res.ID
		d.Key = int64(res.Key)
	}
	return d
}

// handle processes one decoded command frame and appends the outgoing
// reply frame to dst, returning the extended slice. It returns false for
// TypeShutdown.
func (a *agent) handle(frame, dst []byte) (out []byte, cont bool, err error) {
	typ, err := wire.MsgType(frame)
	if err != nil {
		return dst, false, err
	}
	a.reply.TopViol, a.reply.OutViol = false, false
	a.reply.IDs, a.reply.Keys = a.reply.IDs[:0], a.reply.Keys[:0]
	lo, hi := a.bank.Lo(), a.bank.Hi()

	switch typ {
	case wire.TypeObserve:
		if err := a.obs.Decode(frame); err != nil {
			return dst, false, err
		}
		if len(a.obs.Vals) != hi-lo {
			return dst, false, fmt.Errorf("shardrun: observe carries %d values for range [%d, %d)", len(a.obs.Vals), lo, hi)
		}
		for i, v := range a.obs.Vals {
			t, o, err := a.bank.Observe(lo+i, v, a.obs.Step)
			if err != nil {
				// Out-of-domain values from the wire surface as a serve-loop
				// error (the root sees the link die), never as a panic.
				return dst, false, err
			}
			a.reply.TopViol = a.reply.TopViol || t
			a.reply.OutViol = a.reply.OutViol || o
		}

	case wire.TypeObserveDelta:
		if err := a.delta.Decode(frame); err != nil {
			return dst, false, err
		}
		for j, id := range a.delta.IDs {
			if id < lo || id >= hi {
				return dst, false, fmt.Errorf("shardrun: delta id %d outside range [%d, %d)", id, lo, hi)
			}
			t, o, err := a.bank.Observe(id, a.delta.Vals[j], a.delta.Step)
			if err != nil {
				return dst, false, err
			}
			a.reply.TopViol = a.reply.TopViol || t
			a.reply.OutViol = a.reply.OutViol || o
		}

	case wire.TypeRound:
		// A Round frame from the root is a delegated execution request:
		// run the whole local protocol for the tag and answer with a
		// digest instead of a per-round Reply.
		m, err := wire.DecodeRound(frame)
		if err != nil {
			return dst, false, err
		}
		return a.exec(m).Append(dst), true, nil

	case wire.TypeWinner:
		m, err := wire.DecodeWinner(frame)
		if err != nil {
			return dst, false, err
		}
		if m.Target < lo || m.Target >= hi {
			return dst, false, fmt.Errorf("shardrun: winner %d outside range [%d, %d)", m.Target, lo, hi)
		}
		a.bank.Winner(m.Target, m.IsTop)

	case wire.TypeMidpoint:
		m, err := wire.DecodeMidpoint(frame)
		if err != nil {
			return dst, false, err
		}
		a.bank.Midpoint(order.Key(m.Mid), m.Full)

	case wire.TypeApproxBounds:
		m, err := wire.DecodeApproxBounds(frame)
		if err != nil {
			return dst, false, err
		}
		a.bank.ApplyBounds(order.Key(m.Lo), order.Key(m.Hi))

	case wire.TypeResetBegin:
		if err := wire.DecodeBare(frame, wire.TypeResetBegin); err != nil {
			return dst, false, err
		}
		a.bank.ResetBegin()

	case wire.TypeStatsPoll:
		// Diagnostics: report the per-level absorption counters. A leaf
		// contributes no link counters of its own — interior relays add a
		// LevelIO entry per tree level on the way up.
		if err := wire.DecodeBare(frame, wire.TypeStatsPoll); err != nil {
			return dst, false, err
		}
		return wire.TreeStats{Absorbs: a.bank.Absorbs()}.Append(dst), true, nil

	case wire.TypeShutdown:
		return dst, false, nil

	default:
		return dst, false, fmt.Errorf("%w: 0x%02x in shard serve loop", wire.ErrUnknownType, typ)
	}
	return a.reply.Append(dst), true, nil
}

// respond processes one incoming transport frame — a single command, or a
// wire.Batch of commands from a pipelined root — and stages the outgoing
// frame in a.buf. A batch of n commands is answered by a batch of the n
// corresponding replies (acks first, then the digest or reply of the
// data-bearing command), so the root can account every coordination
// message individually. It returns false for TypeShutdown.
func (a *agent) respond(frame []byte) (cont bool, err error) {
	typ, err := wire.MsgType(frame)
	if err != nil {
		return false, err
	}
	if typ == wire.TypeAssign {
		// Mid-stream reassignment (failover or a joining shard): rebuild the
		// bank for the new range and ack with Ready. The root quiesces the
		// link first, so an Assign never arrives inside a batch.
		m, err := wire.DecodeAssign(frame)
		if err != nil {
			return false, err
		}
		nb, err := newShardBank(m)
		if err != nil {
			return false, err
		}
		a.bank = nb
		a.buf = wire.AppendBare(a.buf[:0], wire.TypeReady)
		return true, nil
	}
	if typ != wire.TypeBatch {
		a.buf, cont, err = a.handle(frame, a.buf[:0])
		return cont, err
	}
	if err := a.batch.Decode(frame); err != nil {
		return false, err
	}
	a.buf, a.rlens = a.buf[:0], a.rlens[:0]
	for _, sub := range a.batch.Frames {
		old := len(a.buf)
		var cont bool
		a.buf, cont, err = a.handle(sub, a.buf)
		if err != nil {
			return false, err
		}
		if !cont {
			return false, nil // Shutdown inside a batch: no reply owed
		}
		a.rlens = append(a.rlens, len(a.buf)-old)
	}
	a.views = a.views[:0]
	off := 0
	for _, l := range a.rlens {
		a.views = append(a.views, a.buf[off:off+l])
		off += l
	}
	// The sub-frames alias a.buf, so assemble the envelope in a second
	// buffer and swap — a.buf must hold the outgoing frame on return.
	a.bbuf = wire.Batch{Frames: a.views}.Append(a.bbuf[:0])
	a.buf, a.bbuf = a.bbuf, a.buf
	return true, nil
}

// ServeShard runs one shard sub-coordinator on a link to the root: it
// waits for the root's Assign, builds the local node range, and answers
// every command — observation slices with violation-flag Replies,
// delegated protocol executions (Round frames) with ShardDigests, and
// Winner/Midpoint/ResetBegin installs with empty Replies, batches with
// batches — until the root sends Shutdown (nil return) or the link dies.
// The root hanging up is a clean exit, as in netrun.Serve.
func ServeShard(link transport.Link) error {
	frame, err := link.Recv()
	if err != nil {
		if errors.Is(err, transport.ErrClosed) || errors.Is(err, io.EOF) {
			return nil
		}
		return fmt.Errorf("shardrun: waiting for assignment: %w", err)
	}
	assign, err := wire.DecodeAssign(frame)
	if err != nil {
		return fmt.Errorf("shardrun: bad assignment: %w", err)
	}
	bank, err := newShardBank(assign)
	if err != nil {
		return err
	}
	a := &agent{bank: bank}
	if err := link.Send(wire.AppendBare(a.buf[:0], wire.TypeReady)); err != nil {
		return fmt.Errorf("shardrun: acking assignment: %w", err)
	}
	for {
		frame, err := link.Recv()
		if err != nil {
			if errors.Is(err, transport.ErrClosed) || errors.Is(err, io.EOF) {
				return nil
			}
			return fmt.Errorf("shardrun: shard serve loop: %w", err)
		}
		cont, err := a.respond(frame)
		if err != nil {
			return err
		}
		if !cont {
			return nil // Shutdown
		}
		if err := link.Send(a.buf); err != nil {
			if errors.Is(err, transport.ErrClosed) || errors.Is(err, io.EOF) {
				return nil
			}
			return fmt.Errorf("shardrun: sending shard reply: %w", err)
		}
	}
}
