package shardrun

import (
	"fmt"

	"repro/internal/comm"
	"repro/internal/transport"
	"repro/internal/wire"
)

// Tree configures the hierarchical coordinator: instead of the root
// fanning out to S leaf shards directly, it talks to Branch interior
// coordinators, each the root of its own subtree, Depth link levels deep.
// The leaves are the only protocol participants — interiors are stateless
// relays (ServeInterior) that re-split assignments downward and fold
// replies upward with the same associative merges the root applies — so
// a tree of any shape reports exactly what a flat engine over the same
// leaf partition would, while the root's fan-in stays at Branch links
// where the flat engine needs Branch^Depth.
//
// The zero Tree means flat: New treats the links as direct shard links,
// exactly as before.
type Tree struct {
	// Branch is the fan-out of the root and of every interior node (>= 2).
	Branch int
	// Depth is the number of link levels below the root (>= 1). Depth 1
	// is the flat star — bit-identical to not configuring a tree — and
	// each additional level multiplies the leaf count by Branch.
	Depth int
}

// zero reports whether no tree is configured.
func (t Tree) zero() bool { return t == Tree{} }

// Leaves returns Branch^Depth, the number of leaf shards the tree
// serves, or an error when the shape is invalid or the count overflows.
func (t Tree) Leaves() (int, error) {
	if t.Branch < 2 {
		return 0, fmt.Errorf("shardrun: tree branch %d < 2", t.Branch)
	}
	if t.Depth < 1 {
		return 0, fmt.Errorf("shardrun: tree depth %d < 1", t.Depth)
	}
	leaves := 1
	for i := 0; i < t.Depth; i++ {
		if leaves > (1<<30)/t.Branch {
			return 0, fmt.Errorf("shardrun: tree %d^%d overflows", t.Branch, t.Depth)
		}
		leaves *= t.Branch
	}
	return leaves, nil
}

// LoopbackSubtree builds one in-process subtree depth link levels deep —
// a single leaf shard at depth 1, an interior relay over branch
// recursively built subtrees otherwise — and returns the parent end,
// usable as a root link, a Config.Redial factory, or a Join argument. A
// serve goroutine that fails closes its link, which the level above
// observes as a dead subtree.
func LoopbackSubtree(branch, depth int) transport.Link {
	if depth <= 1 {
		return LoopbackLink()
	}
	parentEnd, serveEnd := transport.Pipe()
	children := make([]transport.Link, branch)
	for i := range children {
		children[i] = LoopbackSubtree(branch, depth-1)
	}
	go func() {
		if err := ServeInterior(serveEnd, children); err != nil {
			serveEnd.Close()
		}
	}()
	return parentEnd
}

// NewLoopbackTree builds an in-process hierarchical engine: the root
// holds branch links, each to a LoopbackSubtree of depth-1 further
// levels, serving branch^depth leaf shards in total. Unless the caller
// supplies its own Redial, a dead subtree is redialed as a fresh subtree
// of the same shape. It is the engine behind topk.Config.Tree and
// topkmon -tree.
func NewLoopbackTree(cfg Config, branch, depth int) (*Engine, error) {
	cfg.Tree = Tree{Branch: branch, Depth: depth}
	if _, err := cfg.Tree.Leaves(); err != nil {
		return nil, err
	}
	if cfg.Redial == nil {
		cfg.Redial = func() (transport.Link, error) {
			return LoopbackSubtree(branch, depth), nil
		}
	}
	links := make([]transport.Link, branch)
	for i := range links {
		links[i] = LoopbackSubtree(branch, depth)
	}
	return New(cfg, links)
}

// Tree returns the configured tree shape (the zero Tree when flat).
func (e *Engine) Tree() Tree { return e.cfg.Tree }

// Leaves returns the number of leaf shards the engine serves: the
// configured tree's leaf count, or the direct link count when flat.
func (e *Engine) Leaves() int {
	if e.cfg.Tree.zero() {
		return len(e.peers)
	}
	n, err := e.cfg.Tree.Leaves()
	if err != nil { // validated in New; kept total for the zero value
		return len(e.peers)
	}
	return n
}

// TreeStats polls the tree's diagnostic plane and returns the aggregated
// hierarchy statistics: Absorbs[l] counts the observations that left the
// level-l tightened band across all leaves (per-level ε mode only, see
// order.Tol.Ladder), and Levels holds one coordination-traffic summary
// per tree level, deepest first, with the root's own overhead ledger as
// the last entry. The poll itself is deliberately uncharged — it rides
// outside the protocol and the overhead ledger, visible only in
// TransportStats — so polling does not perturb what it measures. On a
// flat engine the result degenerates to leaf absorption counters (empty
// without a ladder) plus the single root level.
//
// The engine must be quiescent — between observation steps, as for any
// other accessor — and a pending recovery is run first, exactly as an
// observation call would. A link failure during the poll is handled by
// the regular failover path and reported as an error.
func (e *Engine) TreeStats() (wire.TreeStats, error) {
	var out wire.TreeStats
	if e.closed {
		return out, fmt.Errorf("shardrun: TreeStats after Close")
	}
	if e.err != nil {
		return out, e.err
	}
	if e.pendingRecovery {
		if err := e.recoverNow(); err != nil {
			return out, err
		}
	}
	for _, p := range e.peers {
		e.buf = wire.AppendBare(e.buf[:0], wire.TypeStatsPoll)
		if err := p.link.Send(e.buf); err != nil {
			return out, e.fail(p, "stats poll", err)
		}
		if err := transport.Flush(p.link); err != nil {
			return out, e.fail(p, "stats poll", err)
		}
		p.owed = 1
		if p.req != nil {
			p.req <- struct{}{}
		}
	}
	for _, p := range e.peers {
		frame, err := e.recoverRecv(p)
		if err != nil {
			return out, e.fail(p, "stats reply", err)
		}
		if err := e.treeStats.Decode(frame); err != nil {
			return out, e.fail(p, "stats reply", err)
		}
		for i, a := range e.treeStats.Absorbs {
			if i < len(out.Absorbs) {
				out.Absorbs[i] += a
			} else {
				out.Absorbs = append(out.Absorbs, a)
			}
		}
		for i, lv := range e.treeStats.Levels {
			if i < len(out.Levels) {
				out.Levels[i] = out.Levels[i].Add(lv)
			} else {
				out.Levels = append(out.Levels, lv)
			}
		}
	}
	out.Levels = append(out.Levels, wire.LevelIO{
		Down:      e.overhead.Get(comm.Down),
		Up:        e.overhead.Get(comm.Up),
		DownBytes: e.overhead.GetBytes(comm.Down),
		UpBytes:   e.overhead.GetBytes(comm.Up),
	})
	return out, nil
}
