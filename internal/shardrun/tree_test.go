package shardrun

import (
	"context"
	"testing"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/stream"
	"repro/internal/transport"
)

// mustTree builds a loopback tree engine, failing the test on
// constructor errors.
func mustTree(tb testing.TB, cfg Config, branch, depth int) *Engine {
	tb.Helper()
	e, err := NewLoopbackTree(cfg, branch, depth)
	if err != nil {
		tb.Fatalf("NewLoopbackTree: %v", err)
	}
	return e
}

// TestTreeDepthOneBitIdentical anchors the tree against the flat engine:
// a depth-1 tree is the flat star by construction — no interiors, no
// ladder — so reports, both ledgers, the per-phase breakdowns and the
// behavioural stats must equal a flat Shards=branch engine's bit for
// bit, in both fan-out modes.
func TestTreeDepthOneBitIdentical(t *testing.T) {
	for _, mode := range modes {
		t.Run(mode.name, func(t *testing.T) {
			const n, k, seed, steps = 13, 4, 41, 250
			cfg := Config{N: n, K: k, Seed: seed, Lockstep: mode.lockstep, Epsilon: 0.05}
			flat := mustLoopback(t, cfg, 3)
			defer flat.Close()
			tree := mustTree(t, cfg, 3, 1)
			defer tree.Close()

			srcA := stream.NewRandomWalk(stream.WalkConfig{N: n, Lo: 0, Hi: 100000, MaxStep: 400, Seed: 2})
			srcB := stream.NewRandomWalk(stream.WalkConfig{N: n, Lo: 0, Hi: 100000, MaxStep: 400, Seed: 2})
			va, vb := make([]int64, n), make([]int64, n)
			for s := 0; s < steps; s++ {
				srcA.Step(va)
				srcB.Step(vb)
				if !equal(flat.Observe(va), tree.Observe(vb)) {
					t.Fatalf("step %d: reports differ", s)
				}
			}
			if flat.Counts() != tree.Counts() || flat.Bytes() != tree.Bytes() {
				t.Fatalf("algorithm ledgers differ: %v/%v vs %v/%v", flat.Counts(), flat.Bytes(), tree.Counts(), tree.Bytes())
			}
			if flat.Overhead() != tree.Overhead() || flat.OverheadBytes() != tree.OverheadBytes() {
				t.Fatalf("overhead ledgers differ: %v/%v vs %v/%v", flat.Overhead(), flat.OverheadBytes(), tree.Overhead(), tree.OverheadBytes())
			}
			for _, ph := range comm.Phases() {
				if flat.Ledger().PhaseCounts(ph) != tree.Ledger().PhaseCounts(ph) {
					t.Fatalf("phase %v counts differ", ph)
				}
				if flat.Ledger().PhaseBytes(ph) != tree.Ledger().PhaseBytes(ph) {
					t.Fatalf("phase %v bytes differ", ph)
				}
			}
			if flat.Stats() != tree.Stats() {
				t.Fatalf("stats differ: %+v vs %+v", flat.Stats(), tree.Stats())
			}
		})
	}
}

// treeShapes is the equivalence matrix: every tree shape paired with the
// flat engine serving the same leaf count, with N chosen divisible so
// the composed base/rem splits produce identical leaf ranges.
var treeShapes = []struct {
	name          string
	n, k          int
	branch, depth int
	flat          int
}{
	{"2^2", 16, 4, 2, 2, 4},
	{"3^2", 18, 5, 3, 2, 9},
	{"2^3", 16, 3, 2, 3, 8},
}

// TestTreeFlatEquivalence is the tentpole invariant: a depth-d tree is
// externally indistinguishable from the flat engine over the same leaf
// partition. Reports match at every step (dense and sparse ingestion
// interleaved), the reported set is ε-valid at every step, and the
// algorithm ledger — counts, bytes, per-phase — matches exactly, while
// the root's own fan-in stays at branch links.
func TestTreeFlatEquivalence(t *testing.T) {
	for _, mode := range modes {
		for _, eps := range []float64{0, 0.05} {
			for _, tc := range treeShapes {
				name := mode.name + "/" + tc.name
				if eps > 0 {
					name += "/eps"
				}
				t.Run(name, func(t *testing.T) {
					const seed, steps = 41, 300
					cfg := Config{N: tc.n, K: tc.k, Seed: seed, Lockstep: mode.lockstep, Epsilon: eps}
					flat := mustLoopback(t, cfg, tc.flat)
					defer flat.Close()
					tree := mustTree(t, cfg, tc.branch, tc.depth)
					defer tree.Close()
					if got := tree.Shards(); got != tc.branch {
						t.Fatalf("root fan-in is %d links, want exactly branch=%d", got, tc.branch)
					}
					if got := tree.Leaves(); got != tc.flat {
						t.Fatalf("tree serves %d leaves, want %d", got, tc.flat)
					}

					srcA := stream.NewRandomWalk(stream.WalkConfig{N: tc.n, Lo: 0, Hi: 1 << 18, MaxStep: 700, Seed: 5})
					srcB := stream.NewRandomWalk(stream.WalkConfig{N: tc.n, Lo: 0, Hi: 1 << 18, MaxStep: 700, Seed: 5})
					va, vb := make([]int64, tc.n), make([]int64, tc.n)
					prev := make([]int64, tc.n)
					ids := make([]int, 0, tc.n)
					dv := make([]int64, 0, tc.n)
					for s := 0; s < steps; s++ {
						srcA.Step(va)
						srcB.Step(vb)
						var topFlat, topTree []int
						if s%2 == 0 {
							topFlat = flat.Observe(va)
							topTree = tree.Observe(vb)
						} else {
							// Sparse ingestion: ship only the changed ids, on
							// both engines, interleaved with the dense path.
							ids, dv = ids[:0], dv[:0]
							for i, v := range vb {
								if v != prev[i] {
									ids = append(ids, i)
									dv = append(dv, v)
								}
							}
							topFlat = flat.ObserveDelta(ids, dv)
							topTree = tree.ObserveDelta(ids, dv)
						}
						copy(prev, vb)
						if !equal(topFlat, topTree) {
							t.Fatalf("step %d: reports differ: flat=%v tree=%v", s, topFlat, topTree)
						}
						if !sim.EpsValid(vb, topTree, tc.k, eps) {
							t.Fatalf("step %d: tree report %v not ε-valid at eps=%v", s, topTree, eps)
						}
						if cf, ct := flat.Counts(), tree.Counts(); cf != ct {
							t.Fatalf("step %d: counts differ: flat=%v tree=%v", s, cf, ct)
						}
						if bf, bt := flat.Bytes(), tree.Bytes(); bf != bt {
							t.Fatalf("step %d: bytes differ: flat=%v tree=%v", s, bf, bt)
						}
					}
					for _, ph := range comm.Phases() {
						if flat.Ledger().PhaseCounts(ph) != tree.Ledger().PhaseCounts(ph) {
							t.Fatalf("phase %v counts differ", ph)
						}
						if flat.Ledger().PhaseBytes(ph) != tree.Ledger().PhaseBytes(ph) {
							t.Fatalf("phase %v bytes differ", ph)
						}
					}
					if flat.Stats() != tree.Stats() {
						t.Fatalf("stats differ: flat=%+v tree=%+v", flat.Stats(), tree.Stats())
					}
					if tree.Err() != nil {
						t.Fatalf("tree engine error: %v", tree.Err())
					}
				})
			}
		}
	}
}

// TestTreeExactInSim runs the deepest shape under the sim harness with
// the oracle checked every step: report-exactness holds at any tree
// shape, and the top-change trajectory equals the sequential engine's.
func TestTreeExactInSim(t *testing.T) {
	const n, k, seed, steps = 16, 4, 31, 400
	cfg := sim.Config{Steps: steps, K: k, CheckEvery: 1}
	seq := core.New(core.Config{N: n, K: k, Seed: seed})
	seqRep := sim.Run(seq, stream.NewRandomWalk(stream.WalkConfig{N: n, Lo: 0, Hi: 1 << 18, MaxStep: 700, Seed: 5}), cfg)

	tree := mustTree(t, Config{N: n, K: k, Seed: seed}, 2, 3)
	treeRep := sim.Run(tree, stream.NewRandomWalk(stream.WalkConfig{N: n, Lo: 0, Hi: 1 << 18, MaxStep: 700, Seed: 5}), cfg)
	tree.Close()
	if treeRep.Errors != 0 {
		t.Fatalf("depth-3 tree: %d oracle mismatches", treeRep.Errors)
	}
	if treeRep.TopChanges != seqRep.TopChanges {
		t.Fatalf("top-change trajectories differ: %d vs %d", treeRep.TopChanges, seqRep.TopChanges)
	}
}

// TestTCPTree runs a depth-2 tree with the root↔interior hop over real
// localhost TCP — interiors dial in, each relaying to its leaf subtrees
// over in-process pipes — in both fan-out modes and with a live ε
// ladder, so the laddered Assign and the relayed frames cross a real
// network boundary.
func TestTCPTree(t *testing.T) {
	for _, mode := range modes {
		t.Run(mode.name, func(t *testing.T) {
			const n, k, seed, steps, branch = 12, 3, 17, 120, 2
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			ln, err := transport.Listen(ctx, "127.0.0.1:0")
			if err != nil {
				t.Skipf("cannot listen on loopback: %v", err)
			}
			defer ln.Close()

			serveErr := make(chan error, branch)
			for i := 0; i < branch; i++ {
				go func() {
					link, err := transport.Dial(ctx, ln.Addr())
					if err != nil {
						serveErr <- err
						return
					}
					children := make([]transport.Link, branch)
					for j := range children {
						children[j] = LoopbackSubtree(branch, 1)
					}
					serveErr <- ServeInterior(link, children)
				}()
			}
			links, err := ln.AcceptN(branch)
			if err != nil {
				t.Fatal(err)
			}
			tree, err := New(Config{
				N: n, K: k, Seed: seed, Lockstep: mode.lockstep, Epsilon: 0.05,
				Tree: Tree{Branch: branch, Depth: 2},
			}, links)
			if err != nil {
				t.Fatal(err)
			}

			flat := mustLoopback(t, Config{N: n, K: k, Seed: seed, Lockstep: mode.lockstep, Epsilon: 0.05}, branch*branch)
			defer flat.Close()
			srcA := stream.NewRandomWalk(stream.WalkConfig{N: n, Lo: 0, Hi: 1 << 16, MaxStep: 300, Seed: 23})
			srcB := stream.NewRandomWalk(stream.WalkConfig{N: n, Lo: 0, Hi: 1 << 16, MaxStep: 300, Seed: 23})
			va, vb := make([]int64, n), make([]int64, n)
			for s := 0; s < steps; s++ {
				srcA.Step(va)
				srcB.Step(vb)
				if !equal(flat.Observe(va), tree.Observe(vb)) {
					t.Fatalf("step %d: reports differ over TCP", s)
				}
			}
			if cf, ct := flat.Counts(), tree.Counts(); cf != ct {
				t.Fatalf("counts differ over TCP: flat=%v tree=%v", cf, ct)
			}
			if ts := tree.TransportStats(); ts.SentBytes == 0 || ts.RecvBytes == 0 {
				t.Fatalf("no TCP traffic recorded: %+v", ts)
			}
			tree.Close()
			for i := 0; i < branch; i++ {
				if err := <-serveErr; err != nil {
					t.Fatalf("interior serve loop: %v", err)
				}
			}
		})
	}
}

// TestTreeStatsProfile pins the diagnostic plane: a depth-2 ε tree
// reports one absorption counter per level below the root (nested, so
// level 0 sees at least every exit level 1 sees), one LevelIO per tree
// level with the root's overhead ledger last, and the poll itself is
// free — it must not move the overhead ledger it reports.
func TestTreeStatsProfile(t *testing.T) {
	const n, k, seed, steps, branch, depth = 16, 4, 7, 400, 2, 2
	tree := mustTree(t, Config{N: n, K: k, Seed: seed, Epsilon: 0.2}, branch, depth)
	defer tree.Close()

	src := stream.NewRandomWalk(stream.WalkConfig{N: n, Lo: 0, Hi: 1 << 16, MaxStep: 900, Seed: 9})
	vals := make([]int64, n)
	for s := 0; s < steps; s++ {
		src.Step(vals)
		tree.Observe(vals)
	}
	over, overB := tree.Overhead(), tree.OverheadBytes()
	ts, err := tree.TreeStats()
	if err != nil {
		t.Fatal(err)
	}
	if len(ts.Absorbs) != depth {
		t.Fatalf("got %d absorption levels, want depth=%d", len(ts.Absorbs), depth)
	}
	if ts.Absorbs[0] < ts.Absorbs[1] {
		t.Fatalf("absorption not monotone across nested bands: %v", ts.Absorbs)
	}
	if ts.Absorbs[0] == 0 {
		t.Fatalf("tightest band absorbed nothing over %d drifting steps: %v", steps, ts.Absorbs)
	}
	if len(ts.Levels) != depth {
		t.Fatalf("got %d traffic levels, want %d (interiors + root)", len(ts.Levels), depth)
	}
	root := ts.Levels[len(ts.Levels)-1]
	if root.Down != over.Down || root.Up != over.Up || root.DownBytes != overB.Down || root.UpBytes != overB.Up {
		t.Fatalf("root level %+v disagrees with overhead ledger %v/%v", root, over, overB)
	}
	if ts.Levels[0].Down <= root.Down {
		t.Fatalf("leaf-facing level (%d frames) should carry more frames than the root's %d links (%d frames)", ts.Levels[0].Down, branch, root.Down)
	}
	if tree.Overhead() != over || tree.OverheadBytes() != overB {
		t.Fatal("stats poll perturbed the overhead ledger")
	}
	// Polls are cumulative reads, not resets.
	ts2, err := tree.TreeStats()
	if err != nil {
		t.Fatal(err)
	}
	if len(ts2.Absorbs) != depth || ts2.Absorbs[0] != ts.Absorbs[0] {
		t.Fatalf("second poll disagrees: %v vs %v", ts2.Absorbs, ts.Absorbs)
	}

	// A flat engine degenerates to no absorption levels and the root's
	// ledger as the single traffic level.
	flat := mustLoopback(t, Config{N: n, K: k, Seed: seed, Epsilon: 0.2}, 4)
	defer flat.Close()
	fts, err := flat.TreeStats()
	if err != nil {
		t.Fatal(err)
	}
	if len(fts.Absorbs) != 0 || len(fts.Levels) != 1 {
		t.Fatalf("flat engine stats: %+v, want no absorbs and exactly the root level", fts)
	}
}

// TestTreeConfigRejected pins the constructor contract for bad shapes:
// branch below 2, non-positive depth, a link count that disagrees with
// the branch, and more leaves than nodes are all rejected with every
// link closed.
func TestTreeConfigRejected(t *testing.T) {
	bad := []Config{
		{N: 16, K: 4, Tree: Tree{Branch: 1, Depth: 2}},
		{N: 16, K: 4, Tree: Tree{Branch: 2, Depth: 0}},
		{N: 4, K: 2, Tree: Tree{Branch: 2, Depth: 3}}, // 8 leaves > 4 nodes
	}
	for i, cfg := range bad {
		if _, err := New(cfg, LoopbackLinks(2)); err == nil {
			t.Fatalf("case %d: bad tree %+v accepted", i, cfg.Tree)
		}
	}
	// Link count must equal the branch.
	if _, err := New(Config{N: 16, K: 4, Tree: Tree{Branch: 2, Depth: 2}}, LoopbackLinks(3)); err == nil {
		t.Fatal("3 links accepted for branch 2")
	}
}
