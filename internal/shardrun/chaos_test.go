package shardrun

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/ingest"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/transport"
)

// The sharded engine's chaos suite mirrors netrun's: fault-injected
// links must never hang, panic, or leave reports silently stale — every
// run either re-converges to the oracle after recovery or wedges with a
// clean terminal error.

const (
	chaosN      = 16
	chaosK      = 4
	chaosShards = 4
)

// driven fills vals with large fast-moving values that force
// communication on every shard every step.
func driven(s int, vals []int64) {
	for i := range vals {
		vals[i] = int64((s*31+i*17)%1000) * 50
	}
}

// chaosEngine builds a loopback engine whose victim shard link is
// wrapped in the given fault plan.
func chaosEngine(lockstep, redial bool, victim int, plan transport.FaultPlan) (*Engine, error) {
	links := LoopbackLinks(chaosShards)
	links[victim] = transport.NewFaulty(links[victim], plan)
	cfg := Config{N: chaosN, K: chaosK, Seed: 5, Lockstep: lockstep, RetryBackoff: time.Millisecond}
	if redial {
		cfg.Redial = func() (transport.Link, error) { return LoopbackLink(), nil }
	}
	return New(cfg, links)
}

// runChaos drives e under the chaos contract (see netrun's runChaos):
// healthy steps track the oracle outside a two-step corruption window
// around a fault, degraded steps return last-good, terminal engines stay
// wedged.
func runChaos(t *testing.T, e *Engine, steps int) {
	t.Helper()
	vals := make([]int64, chaosN)
	suspect := 0
	var last []int
	for s := 0; s < steps; s++ {
		driven(s, vals)
		got := e.Observe(vals)
		if e.Err() != nil {
			for s2 := 1; s2 <= 5; s2++ {
				driven(steps+s2, vals)
				if again := e.Observe(vals); !equal(again, got) {
					t.Fatalf("terminal engine moved its report: %v -> %v", got, again)
				}
			}
			return
		}
		switch {
		case e.Health().Degraded:
			if last != nil && !equal(got, last) {
				t.Fatalf("step %d: degraded step returned %v, want last-good %v", s, got, last)
			}
			suspect = 0
		case equal(got, sim.Oracle(vals, chaosK)):
			suspect = 0
			last = append(last[:0], got...)
		default:
			suspect++
			if suspect > 2 {
				t.Fatalf("step %d: report stale for %d healthy steps: got %v, want %v",
					s, suspect, got, sim.Oracle(vals, chaosK))
			}
			last = append(last[:0], got...)
		}
	}
	if e.Health().Degraded {
		t.Fatal("run ended degraded: recovery never completed")
	}
	for s := steps; s < steps+5; s++ {
		driven(s, vals)
		if got := e.Observe(vals); !equal(got, sim.Oracle(vals, chaosK)) {
			t.Fatalf("step %d: post-run report %v != oracle %v", s, got, sim.Oracle(vals, chaosK))
		}
	}
}

// TestChaosFaultMatrix runs every fault flavor against both fan-out
// modes of the sharded root.
func TestChaosFaultMatrix(t *testing.T) {
	plans := []struct {
		name  string
		plan  transport.FaultPlan
		steps int // delayed runs pay OS sleep granularity per op: keep them short
	}{
		{"kill", transport.FaultPlan{KillAt: 40}, 80},
		{"drop", transport.FaultPlan{DropAt: 41}, 80},
		{"dup", transport.FaultPlan{DupAt: 42}, 80},
		{"delay", transport.FaultPlan{Delay: 10 * time.Microsecond, Seed: 1}, 15},
		{"drop+delay", transport.FaultPlan{DropAt: 43, Delay: 10 * time.Microsecond, Seed: 2}, 30},
	}
	for _, mode := range modes {
		for _, tc := range plans {
			t.Run(mode.name+"/"+tc.name, func(t *testing.T) {
				e, err := chaosEngine(mode.lockstep, false, 2, tc.plan)
				if err != nil {
					t.Fatalf("fault fired during the handshake: %v", err)
				}
				defer e.Close()
				runChaos(t, e, tc.steps)
				h := e.Health()
				injects := tc.plan.KillAt != 0 || tc.plan.DropAt != 0 || tc.plan.DupAt != 0
				if injects && h.Failures == 0 {
					t.Fatalf("fault plan %+v never fired in %d driven steps", tc.plan, tc.steps)
				}
				if !injects && (h.Failures != 0 || h.Recoveries != 0) {
					t.Fatalf("delay-only plan registered failures: %+v", h)
				}
			})
		}
	}
}

// TestChaosKillAtRandomStep kills one shard at a seeded random operation
// index across fan-out modes and merge-vs-redial recovery. A kill inside
// the Assign handshake must surface as a clean constructor error.
func TestChaosKillAtRandomStep(t *testing.T) {
	for _, mode := range modes {
		for _, redial := range []bool{false, true} {
			name := mode.name + "/merge"
			if redial {
				name = mode.name + "/redial"
			}
			t.Run(name, func(t *testing.T) {
				r := rng.New(0xc4a06, uint64(len(name)))
				for trial := 0; trial < 3; trial++ {
					killOp := int64(1 + r.Uint64n(200))
					e, err := chaosEngine(mode.lockstep, redial, int(r.Uint64n(chaosShards)), transport.FaultPlan{KillAt: killOp})
					if err != nil {
						continue // killed mid-handshake: clean error is the contract
					}
					runChaos(t, e, 80)
					e.Close()
				}
			})
		}
	}
}

// TestChaosKillDuringDrain mirrors netrun's async × failover regression
// on the sharded root: a shard dies while the ingest queue is non-empty
// and a step is in flight, no Drain barrier may outlive its deadline,
// and the engine must end re-converged to the oracle or cleanly
// terminal (runChaos enforces both outcomes).
func TestChaosKillDuringDrain(t *testing.T) {
	allIDs := make([]int, chaosN)
	for i := range allIDs {
		allIDs[i] = i
	}
	for _, mode := range modes {
		for _, redial := range []bool{false, true} {
			name := mode.name + "/merge"
			if redial {
				name = mode.name + "/redial"
			}
			t.Run(name, func(t *testing.T) {
				r := rng.New(0xd6a2, uint64(len(name)))
				for trial := 0; trial < 3; trial++ {
					killOp := int64(1 + r.Uint64n(250))
					e, err := chaosEngine(mode.lockstep, redial, int(r.Uint64n(chaosShards)), transport.FaultPlan{KillAt: killOp})
					if err != nil {
						continue // killed mid-handshake: clean error is the contract
					}
					drv, err := ingest.New(ingest.Config{
						N: chaosN, Depth: 4, Policy: ingest.Block,
						Apply: func(ids []int, vals []int64) error {
							e.ObserveDelta(ids, vals)
							return e.Err()
						},
					})
					if err != nil {
						t.Fatal(err)
					}
					vals := make([]int64, chaosN)
					for s := 0; s < 60; s++ {
						driven(s, vals)
						if err := drv.Enqueue(allIDs, vals); err != nil {
							break // engine went terminal mid-burst; checked below
						}
						if s%13 == 5 {
							ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
							err := drv.Drain(ctx)
							cancel()
							if errors.Is(err, context.DeadlineExceeded) {
								t.Fatal("mid-run Drain hung with a killed shard")
							}
						}
					}
					ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
					err = drv.Drain(ctx)
					cancel()
					if errors.Is(err, context.DeadlineExceeded) {
						t.Fatal("final Drain hung: kill during drain wedged the worker")
					}
					if err != nil && e.Err() == nil {
						t.Fatalf("Drain failed without a terminal engine error: %v", err)
					}
					drv.Close()
					runChaos(t, e, 40)
					e.Close()
				}
			})
		}
	}
}

// TestChaosKillDuringHandshake pins the mid-Assign kill on the sharded
// constructor.
func TestChaosKillDuringHandshake(t *testing.T) {
	for _, killAt := range []int64{1, 2} {
		if _, err := chaosEngine(false, false, 0, transport.FaultPlan{KillAt: killAt}); err == nil {
			t.Fatalf("KillAt=%d during the handshake: New succeeded", killAt)
		}
	}
}

// TestJoinMidStream grows the shard cohort mid-run: the widest range is
// split for the joiner and reports stay oracle-exact afterwards.
func TestJoinMidStream(t *testing.T) {
	for _, mode := range modes {
		t.Run(mode.name, func(t *testing.T) {
			const n, k = 12, 3
			e := mustLoopback(t, Config{N: n, K: k, Seed: 5, Lockstep: mode.lockstep, RetryBackoff: time.Millisecond}, 2)
			defer e.Close()
			vals := make([]int64, n)
			for s := 0; s < 15; s++ {
				driven(s, vals)
				e.Observe(vals)
			}
			if err := e.Join(LoopbackLink()); err != nil {
				t.Fatalf("Join: %v", err)
			}
			h := e.Health()
			if len(h.Peers) != 3 {
				t.Fatalf("join left %d shards, want 3: %+v", len(h.Peers), h.Peers)
			}
			lo := 0
			for _, p := range h.Peers {
				if p.Lo != lo {
					t.Fatalf("shard ranges not contiguous after join: %+v", h.Peers)
				}
				lo = p.Hi
			}
			if lo != n {
				t.Fatalf("shard ranges do not cover [0, %d) after join: %+v", n, h.Peers)
			}
			for s := 15; s < 40; s++ {
				driven(s, vals)
				if got := e.Observe(vals); !equal(got, sim.Oracle(vals, k)) {
					t.Fatalf("step %d after join: got %v, want oracle %v", s, got, sim.Oracle(vals, k))
				}
			}
		})
	}
}

// chaosTree builds a loopback depth-2 tree engine whose victim subtree
// link — the root↔interior hop — is wrapped in the given fault plan, so
// a fired fault takes out a whole interior coordinator and everything
// below it. Redial replaces the lost subtree with a fresh one of the
// same shape.
func chaosTree(lockstep, redial bool, victim int, plan transport.FaultPlan) (*Engine, error) {
	const branch, depth = 2, 2
	links := make([]transport.Link, branch)
	for i := range links {
		links[i] = LoopbackSubtree(branch, depth)
	}
	links[victim] = transport.NewFaulty(links[victim], plan)
	cfg := Config{
		N: chaosN, K: chaosK, Seed: 5, Lockstep: lockstep,
		RetryBackoff: time.Millisecond, Tree: Tree{Branch: branch, Depth: depth},
	}
	if !redial {
		// NewLoopbackTree would install the subtree factory; a merge-only
		// engine must explicitly decline redials.
		return New(cfg, links)
	}
	cfg.Redial = func() (transport.Link, error) { return LoopbackSubtree(branch, depth), nil }
	return New(cfg, links)
}

// TestChaosKillInteriorCoordinator kills an interior coordinator — not a
// leaf — mid-stream, across fan-out modes and merge-vs-redial recovery:
// the root sees the whole subtree as one dead peer, and the run must
// either re-converge to the oracle (redial rebuilds the subtree, merge
// folds its range into the sibling subtree) or go cleanly terminal via
// Health — never hang and never serve stale reports past the suspect
// window (runChaos enforces all of it).
func TestChaosKillInteriorCoordinator(t *testing.T) {
	for _, mode := range modes {
		for _, redial := range []bool{false, true} {
			name := mode.name + "/merge"
			if redial {
				name = mode.name + "/redial"
			}
			t.Run(name, func(t *testing.T) {
				r := rng.New(0x7ee5, uint64(len(name)))
				for trial := 0; trial < 3; trial++ {
					killOp := int64(1 + r.Uint64n(200))
					e, err := chaosTree(mode.lockstep, redial, int(r.Uint64n(2)), transport.FaultPlan{KillAt: killOp})
					if err != nil {
						continue // killed mid-handshake: clean error is the contract
					}
					runChaos(t, e, 80)
					h := e.Health()
					if h.Failures == 0 {
						t.Fatalf("KillAt=%d never fired in 80 driven steps", killOp)
					}
					e.Close()
				}
			})
		}
	}
}

// TestChaosInteriorFaultMatrix drives the remaining fault flavors
// through the root↔interior hop: drops and duplicated frames must be
// survived (or end terminal) exactly as on a flat shard link.
func TestChaosInteriorFaultMatrix(t *testing.T) {
	plans := []struct {
		name string
		plan transport.FaultPlan
	}{
		{"drop", transport.FaultPlan{DropAt: 41}},
		{"dup", transport.FaultPlan{DupAt: 42}},
	}
	for _, mode := range modes {
		for _, tc := range plans {
			t.Run(mode.name+"/"+tc.name, func(t *testing.T) {
				e, err := chaosTree(mode.lockstep, true, 1, tc.plan)
				if err != nil {
					t.Fatalf("fault fired during the handshake: %v", err)
				}
				defer e.Close()
				runChaos(t, e, 80)
				if h := e.Health(); h.Failures == 0 {
					t.Fatalf("fault plan %+v never fired in 80 driven steps", tc.plan)
				}
			})
		}
	}
}
