// Package stats implements the small statistics toolkit used by the
// experiment harness: summary statistics, quantiles, histograms, ordinary
// least squares (including logarithmic fits), and bootstrap confidence
// intervals. Everything is stdlib-only and deterministic given an explicit
// random source where resampling is involved.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds the usual descriptive statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	Var    float64 // unbiased sample variance
	Std    float64
	Min    float64
	Max    float64
	Median float64
	P90    float64
	P99    float64
}

// Summarize computes a Summary of xs. It returns a zero Summary for an
// empty sample.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	sum := 0.0
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(s.N)
	if s.N > 1 {
		ss := 0.0
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Var = ss / float64(s.N-1)
		s.Std = math.Sqrt(s.Var)
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Median = Quantile(sorted, 0.5)
	s.P90 = Quantile(sorted, 0.90)
	s.P99 = Quantile(sorted, 0.99)
	return s
}

// Mean returns the arithmetic mean of xs (0 for an empty sample).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the unbiased sample variance (0 for n < 2).
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(len(xs)-1)
}

// StdDev returns the sample standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Quantile returns the q-quantile (0 <= q <= 1) of a sorted sample using
// linear interpolation between order statistics. It panics if the sample is
// empty or q is outside [0, 1].
func Quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		panic("stats: Quantile of empty sample")
	}
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("stats: quantile %v outside [0,1]", q))
	}
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// QuantileUnsorted sorts a copy of xs and returns the q-quantile.
func QuantileUnsorted(xs []float64, q float64) float64 {
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return Quantile(sorted, q)
}

// MeanCI returns the mean of xs together with a normal-approximation
// confidence half-width at the given z value (z = 1.96 for 95%).
func MeanCI(xs []float64, z float64) (mean, halfWidth float64) {
	mean = Mean(xs)
	if len(xs) < 2 {
		return mean, 0
	}
	halfWidth = z * StdDev(xs) / math.Sqrt(float64(len(xs)))
	return mean, halfWidth
}

// GeometricMean returns the geometric mean of strictly positive samples.
// Non-positive entries cause a panic because the quantity is undefined.
func GeometricMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			panic("stats: GeometricMean requires positive samples")
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// Gini returns the Gini coefficient of a non-negative sample: 0 for a
// perfectly even distribution, approaching 1 as a single element takes
// everything. It panics on negative entries and returns 0 for samples
// with at most one element or zero sum.
func Gini(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	var sum, weighted float64
	for i, x := range sorted {
		if x < 0 {
			panic("stats: Gini requires non-negative samples")
		}
		sum += x
		weighted += float64(i+1) * x
	}
	if sum == 0 {
		return 0
	}
	n := float64(len(sorted))
	return (2*weighted)/(n*sum) - (n+1)/n
}

// Fit holds the result of a simple linear regression y ≈ Slope*x + Intercept.
type Fit struct {
	Slope     float64
	Intercept float64
	R2        float64
}

// LinearFit performs ordinary least squares of ys against xs. It panics on
// mismatched lengths and returns a zero fit for fewer than two points.
func LinearFit(xs, ys []float64) Fit {
	if len(xs) != len(ys) {
		panic("stats: LinearFit length mismatch")
	}
	n := float64(len(xs))
	if len(xs) < 2 {
		return Fit{}
	}
	var sx, sy, sxx, sxy, syy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
		syy += ys[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return Fit{Intercept: sy / n}
	}
	slope := (n*sxy - sx*sy) / den
	intercept := (sy - slope*sx) / n
	// Coefficient of determination.
	ssTot := syy - sy*sy/n
	ssRes := 0.0
	for i := range xs {
		r := ys[i] - (slope*xs[i] + intercept)
		ssRes += r * r
	}
	r2 := 1.0
	if ssTot > 0 {
		r2 = 1 - ssRes/ssTot
	}
	return Fit{Slope: slope, Intercept: intercept, R2: r2}
}

// LogXFit fits y ≈ Slope*log2(x) + Intercept. All xs must be positive.
// This is the fit used to verify the paper's O(log n) message bounds.
func LogXFit(xs, ys []float64) Fit {
	lx := make([]float64, len(xs))
	for i, x := range xs {
		if x <= 0 {
			panic("stats: LogXFit requires positive x")
		}
		lx[i] = math.Log2(x)
	}
	return LinearFit(lx, ys)
}

// Histogram is a fixed-width bucket histogram over [Lo, Hi).
type Histogram struct {
	Lo, Hi   float64
	Counts   []int
	Under    int // samples below Lo
	Over     int // samples >= Hi
	NSamples int
}

// NewHistogram creates a histogram with the given bucket count over
// [lo, hi). It panics for non-positive bucket counts or an empty range.
func NewHistogram(lo, hi float64, buckets int) *Histogram {
	if buckets <= 0 {
		panic("stats: histogram needs at least one bucket")
	}
	if hi <= lo {
		panic("stats: histogram range is empty")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, buckets)}
}

// Add records one sample.
func (h *Histogram) Add(x float64) {
	h.NSamples++
	switch {
	case x < h.Lo:
		h.Under++
	case x >= h.Hi:
		h.Over++
	default:
		idx := int(float64(len(h.Counts)) * (x - h.Lo) / (h.Hi - h.Lo))
		if idx == len(h.Counts) { // guard against floating point edge
			idx--
		}
		h.Counts[idx]++
	}
}

// BucketBounds returns the [lo, hi) range of bucket i.
func (h *Histogram) BucketBounds(i int) (float64, float64) {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + float64(i)*w, h.Lo + float64(i+1)*w
}

// TailFraction returns the fraction of samples at or above x.
func (h *Histogram) TailFraction(x float64) float64 {
	if h.NSamples == 0 {
		return 0
	}
	tail := h.Over
	for i := range h.Counts {
		lo, _ := h.BucketBounds(i)
		if lo >= x {
			tail += h.Counts[i]
		}
	}
	return float64(tail) / float64(h.NSamples)
}

// Bootstrap computes a percentile bootstrap confidence interval for the
// mean of xs using the supplied uniform source (a func returning values in
// [0, n)). resamples controls the bootstrap iteration count.
func Bootstrap(xs []float64, resamples int, intn func(int) int, lo, hi float64) (cilo, cihi float64) {
	if len(xs) == 0 || resamples <= 0 {
		return 0, 0
	}
	means := make([]float64, resamples)
	for r := 0; r < resamples; r++ {
		sum := 0.0
		for i := 0; i < len(xs); i++ {
			sum += xs[intn(len(xs))]
		}
		means[r] = sum / float64(len(xs))
	}
	sort.Float64s(means)
	return Quantile(means, lo), Quantile(means, hi)
}
