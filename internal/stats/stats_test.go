package stats

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Fatalf("unexpected summary: %+v", s)
	}
	if !almostEqual(s.Var, 2.5, 1e-12) {
		t.Fatalf("variance: got %v want 2.5", s.Var)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 {
		t.Fatalf("empty summary should be zero: %+v", s)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{7})
	if s.Mean != 7 || s.Median != 7 || s.Std != 0 || s.P99 != 7 {
		t.Fatalf("single-sample summary wrong: %+v", s)
	}
}

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); !almostEqual(m, 5, 1e-12) {
		t.Fatalf("mean: %v", m)
	}
	// Population variance is 4; unbiased sample variance is 32/7.
	if v := Variance(xs); !almostEqual(v, 32.0/7, 1e-12) {
		t.Fatalf("variance: %v", v)
	}
}

func TestQuantile(t *testing.T) {
	sorted := []float64{10, 20, 30, 40}
	cases := []struct{ q, want float64 }{
		{0, 10}, {1, 40}, {0.5, 25}, {1.0 / 3, 20},
	}
	for _, c := range cases {
		if got := Quantile(sorted, c.q); !almostEqual(got, c.want, 1e-9) {
			t.Fatalf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestQuantilePanics(t *testing.T) {
	for _, f := range []func(){
		func() { Quantile(nil, 0.5) },
		func() { Quantile([]float64{1}, 1.5) },
		func() { Quantile([]float64{1}, -0.1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestQuantileMonotone(t *testing.T) {
	r := rng.New(1, 1)
	check := func(seedByte uint8) bool {
		n := int(seedByte%20) + 2
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.Float64() * 100
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0001; q += 0.1 {
			qq := math.Min(q, 1)
			v := QuantileUnsorted(xs, qq)
			if v < prev-1e-9 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMeanCI(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	mean, hw := MeanCI(xs, 1.96)
	if !almostEqual(mean, 5.5, 1e-12) {
		t.Fatalf("mean: %v", mean)
	}
	if hw <= 0 {
		t.Fatalf("half width should be positive: %v", hw)
	}
	_, hw1 := MeanCI([]float64{3}, 1.96)
	if hw1 != 0 {
		t.Fatalf("single sample CI should be 0: %v", hw1)
	}
}

func TestGeometricMean(t *testing.T) {
	if g := GeometricMean([]float64{1, 4}); !almostEqual(g, 2, 1e-12) {
		t.Fatalf("geometric mean: %v", g)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on non-positive sample")
		}
	}()
	GeometricMean([]float64{1, 0})
}

func TestLinearFitExact(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{5, 7, 9, 11} // y = 2x + 3
	f := LinearFit(xs, ys)
	if !almostEqual(f.Slope, 2, 1e-9) || !almostEqual(f.Intercept, 3, 1e-9) {
		t.Fatalf("fit: %+v", f)
	}
	if !almostEqual(f.R2, 1, 1e-9) {
		t.Fatalf("R2 should be 1 for exact fit: %v", f.R2)
	}
}

func TestLinearFitDegenerate(t *testing.T) {
	// Vertical data (all same x) should not blow up.
	f := LinearFit([]float64{2, 2, 2}, []float64{1, 2, 3})
	if f.Slope != 0 || !almostEqual(f.Intercept, 2, 1e-9) {
		t.Fatalf("degenerate fit: %+v", f)
	}
	if got := LinearFit([]float64{1}, []float64{1}); got != (Fit{}) {
		t.Fatalf("underdetermined fit should be zero: %+v", got)
	}
}

func TestLinearFitMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	LinearFit([]float64{1, 2}, []float64{1})
}

func TestLogXFit(t *testing.T) {
	// y = 3*log2(x) + 1 exactly.
	xs := []float64{2, 4, 8, 16, 32}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3*math.Log2(x) + 1
	}
	f := LogXFit(xs, ys)
	if !almostEqual(f.Slope, 3, 1e-9) || !almostEqual(f.Intercept, 1, 1e-9) {
		t.Fatalf("log fit: %+v", f)
	}
}

func TestLogXFitPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	LogXFit([]float64{0, 1}, []float64{1, 2})
}

func TestLinearFitNoise(t *testing.T) {
	r := rng.New(2, 2)
	xs := make([]float64, 200)
	ys := make([]float64, 200)
	for i := range xs {
		xs[i] = float64(i)
		ys[i] = 0.5*xs[i] + 10 + r.NormFloat64()*0.1
	}
	f := LinearFit(xs, ys)
	if !almostEqual(f.Slope, 0.5, 0.01) || !almostEqual(f.Intercept, 10, 0.5) {
		t.Fatalf("noisy fit off: %+v", f)
	}
	if f.R2 < 0.99 {
		t.Fatalf("R2 too low for tight noise: %v", f.R2)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{-1, 0, 1.9, 2, 9.99, 10, 42} {
		h.Add(x)
	}
	if h.Under != 1 || h.Over != 2 {
		t.Fatalf("under/over wrong: %+v", h)
	}
	if h.Counts[0] != 2 { // 0 and 1.9
		t.Fatalf("bucket 0: %v", h.Counts)
	}
	if h.Counts[1] != 1 { // 2
		t.Fatalf("bucket 1: %v", h.Counts)
	}
	if h.Counts[4] != 1 { // 9.99
		t.Fatalf("bucket 4: %v", h.Counts)
	}
	if h.NSamples != 7 {
		t.Fatalf("NSamples: %d", h.NSamples)
	}
}

func TestHistogramBucketBounds(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	lo, hi := h.BucketBounds(2)
	if lo != 4 || hi != 6 {
		t.Fatalf("bounds: [%v, %v)", lo, hi)
	}
}

func TestHistogramTailFraction(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 10; i++ {
		h.Add(float64(i) + 0.5)
	}
	if f := h.TailFraction(5); !almostEqual(f, 0.5, 1e-9) {
		t.Fatalf("tail fraction: %v", f)
	}
	if f := h.TailFraction(10); f != 0 {
		t.Fatalf("tail at upper bound should be over-count only: %v", f)
	}
}

func TestHistogramPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewHistogram(0, 10, 0) },
		func() { NewHistogram(5, 5, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestBootstrapCoversMean(t *testing.T) {
	r := rng.New(3, 3)
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = 5 + r.NormFloat64()
	}
	lo, hi := Bootstrap(xs, 500, r.Intn, 0.025, 0.975)
	if lo > 5 || hi < 5 {
		// The interval misses the true mean with small probability; a fixed
		// seed makes this deterministic, so failure indicates a real bug.
		t.Fatalf("bootstrap CI [%v, %v] misses true mean 5", lo, hi)
	}
	if lo >= hi {
		t.Fatalf("degenerate CI: [%v, %v]", lo, hi)
	}
}

func TestBootstrapEmpty(t *testing.T) {
	lo, hi := Bootstrap(nil, 100, func(int) int { return 0 }, 0.025, 0.975)
	if lo != 0 || hi != 0 {
		t.Fatalf("empty bootstrap should be zero: [%v, %v]", lo, hi)
	}
}

func TestGini(t *testing.T) {
	if g := Gini([]float64{1, 1, 1, 1}); !almostEqual(g, 0, 1e-12) {
		t.Fatalf("uniform gini: %v", g)
	}
	// One element takes everything: gini = (n-1)/n.
	if g := Gini([]float64{0, 0, 0, 10}); !almostEqual(g, 0.75, 1e-12) {
		t.Fatalf("concentrated gini: %v", g)
	}
	if g := Gini([]float64{5}); g != 0 {
		t.Fatalf("single-sample gini: %v", g)
	}
	if g := Gini([]float64{0, 0}); g != 0 {
		t.Fatalf("zero-sum gini: %v", g)
	}
	// More skew means higher gini.
	if Gini([]float64{1, 2, 3, 4}) >= Gini([]float64{0, 0, 1, 9}) {
		t.Fatal("gini should grow with skew")
	}
}

func TestGiniPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Gini([]float64{1, -1})
}
