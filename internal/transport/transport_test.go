package transport

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/wire"
)

func TestPipeRoundTrip(t *testing.T) {
	a, b := Pipe()
	defer a.Close()

	want := [][]byte{{}, {1}, {2, 3, 4}, bytes.Repeat([]byte{0xab}, 1000)}
	for _, p := range want {
		if err := a.Send(p); err != nil {
			t.Fatal(err)
		}
	}
	for _, p := range want {
		got, err := b.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, p) {
			t.Fatalf("got %v, want %v", got, p)
		}
	}
	// Reply direction.
	if err := b.Send([]byte{9}); err != nil {
		t.Fatal(err)
	}
	if got, err := a.Recv(); err != nil || !bytes.Equal(got, []byte{9}) {
		t.Fatalf("reply: %v, %v", got, err)
	}
}

func TestPipeSendCopies(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	buf := []byte{1, 2, 3}
	if err := a.Send(buf); err != nil {
		t.Fatal(err)
	}
	buf[0] = 99 // caller reuses its buffer immediately
	got, err := b.Recv()
	if err != nil || got[0] != 1 {
		t.Fatalf("got %v, %v", got, err)
	}
}

func TestPipeStats(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	payload := bytes.Repeat([]byte{1}, 200) // 2-byte uvarint prefix
	if err := a.Send(payload); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Recv(); err != nil {
		t.Fatal(err)
	}
	wantBytes := int64(len(payload) + wire.SizeUvarint(200))
	if s := StatsOf(a); s.SentFrames != 1 || s.SentBytes != wantBytes {
		t.Fatalf("a stats %+v, want %d bytes", s, wantBytes)
	}
	if s := StatsOf(b); s.RecvFrames != 1 || s.RecvBytes != wantBytes {
		t.Fatalf("b stats %+v", s)
	}
}

func TestPipeCloseUnblocksAndDrains(t *testing.T) {
	a, b := Pipe()
	if err := a.Send([]byte{7}); err != nil {
		t.Fatal(err)
	}
	a.Close()
	// In-flight frame still delivered...
	if got, err := b.Recv(); err != nil || !bytes.Equal(got, []byte{7}) {
		t.Fatalf("drain: %v, %v", got, err)
	}
	// ...then the closed state surfaces, on both ends.
	if _, err := b.Recv(); !errors.Is(err, ErrClosed) {
		t.Fatalf("recv after close: %v", err)
	}
	if err := b.Send([]byte{1}); !errors.Is(err, ErrClosed) {
		t.Fatalf("send after close: %v", err)
	}
	a.Close() // idempotent
}

func TestPipeCloseUnblocksPendingRecv(t *testing.T) {
	a, b := Pipe()
	errc := make(chan error, 1)
	go func() {
		_, err := b.Recv()
		errc <- err
	}()
	time.Sleep(10 * time.Millisecond)
	a.Close()
	select {
	case err := <-errc:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("pending recv: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Recv did not unblock on Close")
	}
}

func startTCP(t *testing.T) (*Listener, context.CancelFunc) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	ln, err := Listen(ctx, "127.0.0.1:0")
	if err != nil {
		cancel()
		t.Skipf("cannot listen on loopback: %v", err)
	}
	t.Cleanup(func() { cancel(); ln.Close() })
	return ln, cancel
}

func TestTCPRoundTrip(t *testing.T) {
	ln, _ := startTCP(t)

	var wg sync.WaitGroup
	wg.Add(1)
	var serverErr error
	go func() {
		defer wg.Done()
		lk, err := ln.Accept()
		if err != nil {
			serverErr = err
			return
		}
		for {
			p, err := lk.Recv()
			if err != nil {
				return // client closed
			}
			echo := append([]byte{0xee}, p...)
			if err := lk.Send(echo); err != nil {
				serverErr = err
				return
			}
		}
	}()

	client, err := Dial(context.Background(), ln.Addr())
	if err != nil {
		t.Fatal(err)
	}
	payloads := [][]byte{{}, {1, 2, 3}, bytes.Repeat([]byte{0x42}, 100000)}
	for _, p := range payloads {
		if err := client.Send(p); err != nil {
			t.Fatal(err)
		}
		got, err := client.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(p)+1 || got[0] != 0xee || !bytes.Equal(got[1:], p) {
			t.Fatalf("echo mismatch for %d-byte payload", len(p))
		}
	}
	s := StatsOf(client)
	if s.SentFrames != int64(len(payloads)) || s.RecvFrames != int64(len(payloads)) {
		t.Fatalf("stats %+v", s)
	}
	client.Close()
	wg.Wait()
	if serverErr != nil {
		t.Fatal(serverErr)
	}
}

func TestTCPGarbagePrefix(t *testing.T) {
	ln, _ := startTCP(t)
	got := make(chan error, 1)
	go func() {
		lk, err := ln.Accept()
		if err != nil {
			got <- err
			return
		}
		_, err = lk.Recv()
		got <- err
	}()
	raw, err := net.Dial("tcp", ln.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	// An 11-byte continuation run can never be a valid length prefix.
	if _, err := raw.Write(bytes.Repeat([]byte{0xff}, 11)); err != nil {
		t.Fatal(err)
	}
	if err := <-got; !errors.Is(err, wire.ErrOverflow) {
		t.Fatalf("garbage prefix: %v, want ErrOverflow", err)
	}
}

func TestTCPOversizedFrameRejected(t *testing.T) {
	ln, _ := startTCP(t)
	got := make(chan error, 1)
	go func() {
		lk, err := ln.Accept()
		if err != nil {
			got <- err
			return
		}
		_, err = lk.Recv()
		got <- err
	}()
	raw, err := net.Dial("tcp", ln.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	if _, err := raw.Write(wire.AppendUvarint(nil, MaxFrame+1)); err != nil {
		t.Fatal(err)
	}
	if err := <-got; err == nil || errors.Is(err, io.EOF) {
		t.Fatalf("oversized frame: %v, want explicit rejection", err)
	}
}

func TestTCPTruncatedFrame(t *testing.T) {
	ln, _ := startTCP(t)
	got := make(chan error, 1)
	go func() {
		lk, err := ln.Accept()
		if err != nil {
			got <- err
			return
		}
		_, err = lk.Recv()
		got <- err
	}()
	raw, err := net.Dial("tcp", ln.Addr())
	if err != nil {
		t.Fatal(err)
	}
	// Promise 100 bytes, deliver 3, hang up.
	frame := append(wire.AppendUvarint(nil, 100), 1, 2, 3)
	if _, err := raw.Write(frame); err != nil {
		t.Fatal(err)
	}
	raw.Close()
	if err := <-got; !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("truncated frame: %v, want ErrUnexpectedEOF", err)
	}
}

// TestTCPFlushDelivers pins the buffered-send contract: frames buffered
// by Send cross the wire once Flush is called, and several Sends coalesce
// into one flush.
func TestTCPFlushDelivers(t *testing.T) {
	ln, _ := startTCP(t)
	got := make(chan []byte, 3)
	go func() {
		lk, err := ln.Accept()
		if err != nil {
			close(got)
			return
		}
		for i := 0; i < 3; i++ {
			p, err := lk.Recv()
			if err != nil {
				close(got)
				return
			}
			got <- append([]byte(nil), p...)
		}
	}()
	client, err := Dial(context.Background(), ln.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	for i := byte(0); i < 3; i++ {
		if err := client.Send([]byte{i, i + 1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := Flush(client); err != nil {
		t.Fatal(err)
	}
	for i := byte(0); i < 3; i++ {
		p, ok := <-got
		if !ok {
			t.Fatal("server side failed")
		}
		if !bytes.Equal(p, []byte{i, i + 1}) {
			t.Fatalf("frame %d: got %v", i, p)
		}
	}
}

// TestTCPFlushBeforeRead pins the deadlock guard: a strict request/reply
// cycle that never calls Flush must still make progress, because Recv
// flushes the link's own buffered writes before blocking. Without the
// guard both sides would block forever, each waiting for a request or
// reply still sitting in the other side's write buffer.
func TestTCPFlushBeforeRead(t *testing.T) {
	ln, _ := startTCP(t)
	serverErr := make(chan error, 1)
	go func() {
		lk, err := ln.Accept()
		if err != nil {
			serverErr <- err
			return
		}
		for {
			p, err := lk.Recv()
			if err != nil {
				serverErr <- nil // client hung up: clean exit
				return
			}
			// Send buffers the reply; the loop's next Recv must push it
			// out before blocking for the next request.
			if err := lk.Send(append([]byte{0xaa}, p...)); err != nil {
				serverErr <- err
				return
			}
		}
	}()
	client, err := Dial(context.Background(), ln.Addr())
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		for i := byte(0); i < 20; i++ {
			// No explicit Flush anywhere: Recv must release the request.
			if err := client.Send([]byte{i}); err != nil {
				done <- err
				return
			}
			p, err := client.Recv()
			if err != nil {
				done <- err
				return
			}
			if !bytes.Equal(p, []byte{0xaa, i}) {
				done <- errors.New("echo mismatch")
				return
			}
		}
		done <- nil
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("request/reply cycle deadlocked: Recv did not flush buffered writes")
	}
	client.Close()
	if err := <-serverErr; err != nil {
		t.Fatal(err)
	}
}

// TestPipeFlushNoop: pipes transmit on Send, so Flush is a no-op and the
// generic Flush helper accepts them.
func TestPipeFlushNoop(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	if err := a.Send([]byte{1}); err != nil {
		t.Fatal(err)
	}
	if err := Flush(a); err != nil {
		t.Fatal(err)
	}
	if p, err := b.Recv(); err != nil || !bytes.Equal(p, []byte{1}) {
		t.Fatalf("got %v, %v", p, err)
	}
}

// TestPipeRecvRecycles pins the buffer-reuse contract the engines' hot
// path relies on: a steady-state request/reply cycle over a pipe performs
// no heap allocation, and the slice Recv returned stays untouched until
// the receiver's next Recv.
func TestPipeRecvRecycles(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	payload := []byte{1, 2, 3, 4}
	echo := func() {
		if err := a.Send(payload); err != nil {
			t.Fatal(err)
		}
		p, err := b.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if err := b.Send(p); err != nil {
			t.Fatal(err)
		}
		if _, err := a.Recv(); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 8; i++ { // warm the free lists up
		echo()
	}
	if avg := testing.AllocsPerRun(200, echo); avg != 0 {
		t.Fatalf("steady-state pipe round trip allocates %.2f per cycle, want 0", avg)
	}
	// Stability until the next Recv: the frame must not be recycled out
	// from under the caller while it still holds it.
	if err := a.Send([]byte{9, 9}); err != nil {
		t.Fatal(err)
	}
	held, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	snapshot := append([]byte(nil), held...)
	if err := a.Send([]byte{7, 7}); err != nil { // sender may reuse other buffers
		t.Fatal(err)
	}
	if !bytes.Equal(held, snapshot) {
		t.Fatalf("held frame mutated before next Recv: %v vs %v", held, snapshot)
	}
}

// TestTCPContextShutdown exercises the graceful-exit path: cancelling the
// listen context closes the listener and every accepted link.
func TestTCPContextShutdown(t *testing.T) {
	ln, cancel := startTCP(t)

	accepted := make(chan Link, 1)
	go func() {
		lk, err := ln.Accept()
		if err != nil {
			close(accepted)
			return
		}
		accepted <- lk
	}()
	client, err := Dial(context.Background(), ln.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	server, ok := <-accepted
	if !ok {
		t.Fatal("accept failed")
	}

	recvDone := make(chan error, 1)
	go func() {
		_, err := server.Recv()
		recvDone <- err
	}()
	cancel()
	select {
	case err := <-recvDone:
		if err == nil {
			t.Fatal("server recv survived context cancellation")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("context cancellation did not unblock server recv")
	}
	if _, err := ln.Accept(); err == nil {
		t.Fatal("accept succeeded after shutdown")
	}
}
