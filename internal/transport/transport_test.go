package transport

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/wire"
)

func TestPipeRoundTrip(t *testing.T) {
	a, b := Pipe()
	defer a.Close()

	want := [][]byte{{}, {1}, {2, 3, 4}, bytes.Repeat([]byte{0xab}, 1000)}
	for _, p := range want {
		if err := a.Send(p); err != nil {
			t.Fatal(err)
		}
	}
	for _, p := range want {
		got, err := b.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, p) {
			t.Fatalf("got %v, want %v", got, p)
		}
	}
	// Reply direction.
	if err := b.Send([]byte{9}); err != nil {
		t.Fatal(err)
	}
	if got, err := a.Recv(); err != nil || !bytes.Equal(got, []byte{9}) {
		t.Fatalf("reply: %v, %v", got, err)
	}
}

func TestPipeSendCopies(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	buf := []byte{1, 2, 3}
	if err := a.Send(buf); err != nil {
		t.Fatal(err)
	}
	buf[0] = 99 // caller reuses its buffer immediately
	got, err := b.Recv()
	if err != nil || got[0] != 1 {
		t.Fatalf("got %v, %v", got, err)
	}
}

func TestPipeStats(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	payload := bytes.Repeat([]byte{1}, 200) // 2-byte uvarint prefix
	if err := a.Send(payload); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Recv(); err != nil {
		t.Fatal(err)
	}
	wantBytes := int64(len(payload) + wire.SizeUvarint(200))
	if s := StatsOf(a); s.SentFrames != 1 || s.SentBytes != wantBytes {
		t.Fatalf("a stats %+v, want %d bytes", s, wantBytes)
	}
	if s := StatsOf(b); s.RecvFrames != 1 || s.RecvBytes != wantBytes {
		t.Fatalf("b stats %+v", s)
	}
}

func TestPipeCloseUnblocksAndDrains(t *testing.T) {
	a, b := Pipe()
	if err := a.Send([]byte{7}); err != nil {
		t.Fatal(err)
	}
	a.Close()
	// In-flight frame still delivered...
	if got, err := b.Recv(); err != nil || !bytes.Equal(got, []byte{7}) {
		t.Fatalf("drain: %v, %v", got, err)
	}
	// ...then the closed state surfaces, on both ends.
	if _, err := b.Recv(); !errors.Is(err, ErrClosed) {
		t.Fatalf("recv after close: %v", err)
	}
	if err := b.Send([]byte{1}); !errors.Is(err, ErrClosed) {
		t.Fatalf("send after close: %v", err)
	}
	a.Close() // idempotent
}

func TestPipeCloseUnblocksPendingRecv(t *testing.T) {
	a, b := Pipe()
	errc := make(chan error, 1)
	go func() {
		_, err := b.Recv()
		errc <- err
	}()
	time.Sleep(10 * time.Millisecond)
	a.Close()
	select {
	case err := <-errc:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("pending recv: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Recv did not unblock on Close")
	}
}

func startTCP(t *testing.T) (*Listener, context.CancelFunc) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	ln, err := Listen(ctx, "127.0.0.1:0")
	if err != nil {
		cancel()
		t.Skipf("cannot listen on loopback: %v", err)
	}
	t.Cleanup(func() { cancel(); ln.Close() })
	return ln, cancel
}

func TestTCPRoundTrip(t *testing.T) {
	ln, _ := startTCP(t)

	var wg sync.WaitGroup
	wg.Add(1)
	var serverErr error
	go func() {
		defer wg.Done()
		lk, err := ln.Accept()
		if err != nil {
			serverErr = err
			return
		}
		for {
			p, err := lk.Recv()
			if err != nil {
				return // client closed
			}
			echo := append([]byte{0xee}, p...)
			if err := lk.Send(echo); err != nil {
				serverErr = err
				return
			}
		}
	}()

	client, err := Dial(context.Background(), ln.Addr())
	if err != nil {
		t.Fatal(err)
	}
	payloads := [][]byte{{}, {1, 2, 3}, bytes.Repeat([]byte{0x42}, 100000)}
	for _, p := range payloads {
		if err := client.Send(p); err != nil {
			t.Fatal(err)
		}
		got, err := client.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(p)+1 || got[0] != 0xee || !bytes.Equal(got[1:], p) {
			t.Fatalf("echo mismatch for %d-byte payload", len(p))
		}
	}
	s := StatsOf(client)
	if s.SentFrames != int64(len(payloads)) || s.RecvFrames != int64(len(payloads)) {
		t.Fatalf("stats %+v", s)
	}
	client.Close()
	wg.Wait()
	if serverErr != nil {
		t.Fatal(serverErr)
	}
}

func TestTCPGarbagePrefix(t *testing.T) {
	ln, _ := startTCP(t)
	got := make(chan error, 1)
	go func() {
		lk, err := ln.Accept()
		if err != nil {
			got <- err
			return
		}
		_, err = lk.Recv()
		got <- err
	}()
	raw, err := net.Dial("tcp", ln.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	// An 11-byte continuation run can never be a valid length prefix.
	if _, err := raw.Write(bytes.Repeat([]byte{0xff}, 11)); err != nil {
		t.Fatal(err)
	}
	if err := <-got; !errors.Is(err, wire.ErrOverflow) {
		t.Fatalf("garbage prefix: %v, want ErrOverflow", err)
	}
}

func TestTCPOversizedFrameRejected(t *testing.T) {
	ln, _ := startTCP(t)
	got := make(chan error, 1)
	go func() {
		lk, err := ln.Accept()
		if err != nil {
			got <- err
			return
		}
		_, err = lk.Recv()
		got <- err
	}()
	raw, err := net.Dial("tcp", ln.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	if _, err := raw.Write(wire.AppendUvarint(nil, MaxFrame+1)); err != nil {
		t.Fatal(err)
	}
	if err := <-got; err == nil || errors.Is(err, io.EOF) {
		t.Fatalf("oversized frame: %v, want explicit rejection", err)
	}
}

func TestTCPTruncatedFrame(t *testing.T) {
	ln, _ := startTCP(t)
	got := make(chan error, 1)
	go func() {
		lk, err := ln.Accept()
		if err != nil {
			got <- err
			return
		}
		_, err = lk.Recv()
		got <- err
	}()
	raw, err := net.Dial("tcp", ln.Addr())
	if err != nil {
		t.Fatal(err)
	}
	// Promise 100 bytes, deliver 3, hang up.
	frame := append(wire.AppendUvarint(nil, 100), 1, 2, 3)
	if _, err := raw.Write(frame); err != nil {
		t.Fatal(err)
	}
	raw.Close()
	if err := <-got; !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("truncated frame: %v, want ErrUnexpectedEOF", err)
	}
}

// TestTCPContextShutdown exercises the graceful-exit path: cancelling the
// listen context closes the listener and every accepted link.
func TestTCPContextShutdown(t *testing.T) {
	ln, cancel := startTCP(t)

	accepted := make(chan Link, 1)
	go func() {
		lk, err := ln.Accept()
		if err != nil {
			close(accepted)
			return
		}
		accepted <- lk
	}()
	client, err := Dial(context.Background(), ln.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	server, ok := <-accepted
	if !ok {
		t.Fatal("accept failed")
	}

	recvDone := make(chan error, 1)
	go func() {
		_, err := server.Recv()
		recvDone <- err
	}()
	cancel()
	select {
	case err := <-recvDone:
		if err == nil {
			t.Fatal("server recv survived context cancellation")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("context cancellation did not unblock server recv")
	}
	if _, err := ln.Accept(); err == nil {
		t.Fatal("accept succeeded after shutdown")
	}
}
